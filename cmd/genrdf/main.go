// Command genrdf generates one of the paper's benchmark datasets as an
// N-Triples file, optionally with a SPARQL query workload.
//
// Usage:
//
//	genrdf -dataset uniprot -out uniprot.nt
//	genrdf -dataset shop -scale 0.5 -queries 10 -workload-out queries.rq
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ping/internal/gmark"
	"ping/internal/rdf"
)

func main() {
	var (
		dataset     = flag.String("dataset", "uniprot", "dataset name (uniprot, shop, shop100, social, lubm, yago, dbpedia)")
		scale       = flag.Float64("scale", 1, "scale multiplier on the dataset's standard size")
		seed        = flag.Int64("seed", 42, "generator seed")
		out         = flag.String("out", "", "output N-Triples file (default: <dataset>.nt)")
		queries     = flag.Int("queries", 0, "also generate this many queries per star/chain/complex bucket")
		workloadOut = flag.String("workload-out", "", "output file for the workload (default: <dataset>-queries.rq)")
	)
	flag.Parse()

	spec := gmark.DatasetByName(*dataset)
	if spec == nil {
		fmt.Fprintf(os.Stderr, "genrdf: unknown dataset %q\n", *dataset)
		os.Exit(1)
	}
	data := spec.Schema.Generate(spec.Scale**scale, *seed)

	path := *out
	if path == "" {
		path = *dataset + ".nt"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genrdf: %v\n", err)
		os.Exit(1)
	}
	n, err := rdf.WriteNTriples(f, data.Graph)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "genrdf: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d triples, %d bytes\n", path, data.Graph.Len(), n)

	if *queries > 0 {
		cfg := gmark.StandardWorkloadConfig(*dataset, *queries)
		wl := data.GenerateWorkload(cfg, *seed+1)
		var b strings.Builder
		for _, lq := range wl.All() {
			fmt.Fprintf(&b, "# shape: %s\n%s\n\n", lq.Shape, lq.Query)
		}
		wpath := *workloadOut
		if wpath == "" {
			wpath = *dataset + "-queries.rq"
		}
		if err := os.WriteFile(wpath, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "genrdf: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d star, %d chain, %d complex queries\n",
			wpath, len(wl.Star), len(wl.Chain), len(wl.Complex))
	}
}
