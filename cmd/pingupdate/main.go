// Command pingupdate applies triple additions and/or removals to a store
// produced by pingload, using the incremental maintenance algorithm
// (the paper's §6.2 future-work item) instead of repartitioning. The
// hierarchy is reshaped on the fly: updates that introduce or remove
// characteristic sets can deepen or flatten levels, and only the affected
// instances' rows move.
//
// Usage:
//
//	pingupdate -store ./uniprot-store -add new.nt
//	pingupdate -store ./uniprot-store -remove old.nt -add new.nt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ping/internal/dfs"
	"ping/internal/hpart"
	"ping/internal/rdf"
)

func main() {
	var (
		store = flag.String("store", "", "store directory written by pingload (required)")
		addNT = flag.String("add", "", "N-Triples file with triples to add")
		remNT = flag.String("remove", "", "N-Triples file with triples to remove")
	)
	flag.Parse()
	if *store == "" || (*addNT == "" && *remNT == "") {
		flag.Usage()
		os.Exit(2)
	}

	fs, err := dfs.OpenOnDisk(*store)
	if err != nil {
		fatal(err)
	}
	lay, err := hpart.Load(fs, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("store: %d levels, %d triples\n", lay.NumLevels, lay.TotalTriples())

	m, err := hpart.NewMaintainer(lay)
	if err != nil {
		fatal(err)
	}
	add, err := loadDelta(*addNT, lay.Dict)
	if err != nil {
		fatal(err)
	}
	remove, err := loadDelta(*remNT, lay.Dict)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	if err := m.Apply(add, remove); err != nil {
		fatal(err)
	}
	// Persist the (possibly grown) dictionary and namespace.
	if err := lay.SaveDict(); err != nil {
		fatal(err)
	}
	if err := fs.SaveManifest(); err != nil {
		fatal(err)
	}
	fmt.Printf("applied +%d/-%d triples in %v\n", len(add), len(remove), time.Since(start))
	fmt.Printf("store now: %d levels, %d triples\n", lay.NumLevels, lay.TotalTriples())
	for i, n := range lay.LevelTriples {
		fmt.Printf("  L%-2d %d triples\n", i+1, n)
	}
}

// loadDelta parses an N-Triples file, interning terms into the store's
// dictionary.
func loadDelta(path string, dict *rdf.Dict) ([]rdf.Triple, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g := &rdf.Graph{Dict: dict}
	if err := rdf.ParseNTriplesInto(f, g); err != nil {
		return nil, err
	}
	return g.Triples, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pingupdate: %v\n", err)
	os.Exit(1)
}
