// Command pingprof renders a continuous-profiling capture directory
// (written by pingd -profile-dir or pingbench -profile-dir) as a
// per-fingerprint CPU report: which query classes the process actually
// spent its CPU on, straight from pprof label aggregation.
//
// Usage:
//
//	pingprof -dir /var/lib/pingd/profiles
//	pingprof -dir bench/profiles -top 10 -by stage
//	pingprof -dir bench/profiles -json
//
// -by selects the pprof label to aggregate on: query_fp (default),
// stage, or trace_id. The unlabeled row is CPU outside any labeled
// region (GC, capture itself, request plumbing before labeling).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"ping/internal/obs/prof"
)

func main() {
	var (
		dir     = flag.String("dir", "", "profile capture directory (required)")
		top     = flag.Int("top", 20, "rows to print (0 = all)")
		by      = flag.String("by", prof.LabelQueryFP, "pprof label key to aggregate CPU by (query_fp, stage, trace_id)")
		jsonOut = flag.Bool("json", false, "emit the report as JSON instead of a table")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "pingprof: -dir is required")
		flag.Usage()
		os.Exit(2)
	}

	rows, unlabeled, err := prof.AggregateCPUDir(*dir, *by)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pingprof: %v\n", err)
		os.Exit(1)
	}
	var labeled int64
	for _, r := range rows {
		labeled += r.CPUNanos
	}
	total := labeled + unlabeled
	if *top > 0 && len(rows) > *top {
		rows = rows[:*top]
	}

	if *jsonOut {
		type row struct {
			Value      string  `json:"value"`
			CPUSeconds float64 `json:"cpu_seconds"`
			Share      float64 `json:"share"`
		}
		out := struct {
			Label            string  `json:"label"`
			Rows             []row   `json:"rows"`
			UnlabeledSeconds float64 `json:"unlabeled_seconds"`
			TotalSeconds     float64 `json:"total_seconds"`
			LabeledShare     float64 `json:"labeled_share"`
		}{Label: *by, Rows: []row{}}
		for _, r := range rows {
			out.Rows = append(out.Rows, row{r.Value, secs(r.CPUNanos), share(r.CPUNanos, total)})
		}
		out.UnlabeledSeconds = secs(unlabeled)
		out.TotalSeconds = secs(total)
		out.LabeledShare = share(labeled, total)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "pingprof: %v\n", err)
			os.Exit(1)
		}
		return
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s\tcpu\tshare\n", *by)
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%.1f%%\n", r.Value, time.Duration(r.CPUNanos).Round(time.Millisecond), 100*share(r.CPUNanos, total))
	}
	fmt.Fprintf(w, "(unlabeled)\t%v\t%.1f%%\n", time.Duration(unlabeled).Round(time.Millisecond), 100*share(unlabeled, total))
	w.Flush()
	fmt.Printf("total %v across %s, %.1f%% labeled\n",
		time.Duration(total).Round(time.Millisecond), *dir, 100*share(labeled, total))
}

func secs(ns int64) float64 { return float64(ns) / 1e9 }

func share(part, total int64) float64 {
	if total <= 0 {
		return 0
	}
	return float64(part) / float64(total)
}
