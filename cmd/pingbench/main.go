// Command pingbench runs the paper's evaluation experiments and prints
// paper-style tables and series.
//
// Usage:
//
//	pingbench -exp fig6 -datasets uniprot,shop
//	pingbench -exp all -md -out EXPERIMENTS.md
//	pingbench -exp none -json-out bench/ -datasets uniprot,shop
//
// Experiments: table1, fig5, fig6, fig7, fig8, fig9, table2, ablation,
// all, or none (skip the tables; useful with -json-out).
//
// -json-out DIR additionally writes one machine-readable
// BENCH_<dataset>.json per dataset: the per-query step latencies,
// coverage curve, and exact-answer time. -metrics-addr exposes the
// run's metrics (/metrics, /debug/vars, pprof) while it executes.
//
// -profile-dir DIR captures continuous CPU and heap profiles into DIR
// while the experiments run (same bounded rotation as pingd). Every
// query execution is pprof-labeled with its workload fingerprint, so
// `pingprof -dir DIR` afterwards attributes the run's CPU per query
// class.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ping/internal/harness"
	"ping/internal/obs"
	"ping/internal/obs/prof"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id ("+strings.Join(harness.ExperimentIDs, ", ")+", all, or none)")
		datasets    = flag.String("datasets", "", "comma-separated dataset subset (default: all)")
		workers     = flag.Int("workers", 4, "dataflow workers (simulated cluster cores)")
		perBucket   = flag.Int("queries", 5, "queries per star/chain/complex bucket")
		scale       = flag.Float64("scale", 1, "dataset scale multiplier")
		seed        = flag.Int64("seed", 42, "generator seed")
		md          = flag.Bool("md", false, "render as EXPERIMENTS.md markdown")
		out         = flag.String("out", "", "write output to a file instead of stdout")
		jsonOut     = flag.String("json-out", "", "directory to write machine-readable BENCH_<dataset>.json reports into")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and pprof on this address while running (e.g. :9090)")
		dictMode    = flag.String("dict", "on", "dictionary-encoded resident blocks (on|off); off keeps cached sub-partitions as raw pair slices")

		profileDir      = flag.String("profile-dir", "", "capture continuous CPU+heap profiles into this directory while running")
		profileInterval = flag.Duration("profile-interval", 15*time.Second, "continuous profile capture cadence")
		profileWindow   = flag.Duration("profile-cpu-window", 5*time.Second, "CPU profiling window per capture")
		profileMax      = flag.Int("profile-max-files", 3, "rotated profile generations kept per kind")
	)
	flag.Parse()
	if *dictMode != "on" && *dictMode != "off" {
		fatal(fmt.Errorf("-dict must be on or off, got %q", *dictMode))
	}

	if *metricsAddr != "" {
		_, lnAddr, err := obs.Serve(*metricsAddr, obs.Default)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", lnAddr)
	}

	if *profileDir != "" {
		capt, err := prof.StartCapture(prof.CaptureConfig{
			Dir:       *profileDir,
			Interval:  *profileInterval,
			CPUWindow: *profileWindow,
			MaxFiles:  *profileMax,
			Registry:  obs.Default,
			// A run shorter than the interval still leaves one profile
			// behind: the window opens now and Close keeps it.
			CaptureOnStart: true,
		})
		if err != nil {
			fatal(err)
		}
		// Close flushes the in-flight capture so the last window of the
		// run is on disk before the process exits.
		defer capt.Close()
		fmt.Fprintf(os.Stderr, "profiling into %s (every %s, %s CPU window)\n",
			*profileDir, *profileInterval, *profileWindow)
	}

	suite := harness.NewSuite(*workers, *perBucket, *scale, *seed)
	suite.DictOff = *dictMode == "off"
	var names []string
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	}

	var reports []*harness.Report
	var err error
	switch *exp {
	case "none":
		// Tables skipped: -json-out (or just the metrics endpoint) is the
		// only output.
	case "all":
		reports, err = suite.RunAll(names)
	default:
		var r *harness.Report
		r, err = suite.Run(*exp, names)
		if r != nil {
			reports = append(reports, r)
		}
	}
	if err != nil {
		fatal(err)
	}

	if *jsonOut != "" {
		if err := os.MkdirAll(*jsonOut, 0o755); err != nil {
			fatal(err)
		}
		jsonNames := names
		if len(jsonNames) == 0 {
			jsonNames = harness.AllDatasetNames
		}
		for _, name := range jsonNames {
			rep, err := suite.BenchJSON(name)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
			path := filepath.Join(*jsonOut, "BENCH_"+name+".json")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			err = rep.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d queries)\n", path, len(rep.Queries))
		}
	}

	if *exp == "none" {
		return
	}

	var text string
	if *md {
		text = harness.Markdown(suite.Describe(), reports)
	} else {
		var b strings.Builder
		for _, r := range reports {
			b.WriteString(r.String())
			b.WriteString("\n")
		}
		text = b.String()
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
		return
	}
	fmt.Print(text)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pingbench: %v\n", err)
	os.Exit(1)
}
