// Command pingbench runs the paper's evaluation experiments and prints
// paper-style tables and series.
//
// Usage:
//
//	pingbench -exp fig6 -datasets uniprot,shop
//	pingbench -exp all -md -out EXPERIMENTS.md
//
// Experiments: table1, fig5, fig6, fig7, fig8, fig9, table2, ablation, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ping/internal/harness"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id ("+strings.Join(harness.ExperimentIDs, ", ")+" or all)")
		datasets  = flag.String("datasets", "", "comma-separated dataset subset (default: all)")
		workers   = flag.Int("workers", 4, "dataflow workers (simulated cluster cores)")
		perBucket = flag.Int("queries", 5, "queries per star/chain/complex bucket")
		scale     = flag.Float64("scale", 1, "dataset scale multiplier")
		seed      = flag.Int64("seed", 42, "generator seed")
		md        = flag.Bool("md", false, "render as EXPERIMENTS.md markdown")
		out       = flag.String("out", "", "write output to a file instead of stdout")
	)
	flag.Parse()

	suite := harness.NewSuite(*workers, *perBucket, *scale, *seed)
	var names []string
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	}

	var reports []*harness.Report
	var err error
	if *exp == "all" {
		reports, err = suite.RunAll(names)
	} else {
		var r *harness.Report
		r, err = suite.Run(*exp, names)
		if r != nil {
			reports = append(reports, r)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pingbench: %v\n", err)
		os.Exit(1)
	}

	var text string
	if *md {
		text = harness.Markdown(suite.Describe(), reports)
	} else {
		var b strings.Builder
		for _, r := range reports {
			b.WriteString(r.String())
			b.WriteString("\n")
		}
		text = b.String()
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pingbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
		return
	}
	fmt.Print(text)
}
