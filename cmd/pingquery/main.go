// Command pingquery answers a SPARQL BGP query over a store produced by
// pingload, either progressively (default) — printing per-slice progress
// the way PING's PQA delivers it — or exactly in one shot with -exact.
//
// Usage:
//
//	pingquery -store ./uniprot-store -query 'SELECT * WHERE { ?x <...p> ?y }'
//	pingquery -store ./uniprot-store -file q.rq -exact
//	pingquery -store ./uniprot-store -file q.rq -strategy largest
//	pingquery -store ./uniprot-store -file q.rq -failure-policy degrade -timeout 30s
//	pingquery -store ./uniprot-store -file q.rq -metrics-addr :0 -trace-out trace.json
//	pingquery -store ./uniprot-store -file q.rq -explain          # static plan
//	pingquery -store ./uniprot-store -file q.rq -analyze -json    # plan + actuals
//	pingquery -store ./uniprot-store -file q.rq -budget-steps 2 -cursor-out q.cur
//	pingquery -store ./uniprot-store -resume q.cur -cursor-out q.cur   # next segment
//	pingquery -server http://localhost:8080 -file q.rq -budget-steps 2 # remote, traced
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ping/internal/cursor"
	"ping/internal/dataflow"
	"ping/internal/dfs"
	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/ping"
	"ping/internal/sparql"
	"ping/internal/workload"
)

func main() {
	var (
		store    = flag.String("store", "", "store directory written by pingload (required)")
		queryStr = flag.String("query", "", "SPARQL query text")
		file     = flag.String("file", "", "file containing the SPARQL query")
		exact    = flag.Bool("exact", false, "exact query answering (one shot) instead of progressive")
		strategy = flag.String("strategy", "level", "slice order: level, product, largest, smallest")
		workers  = flag.Int("workers", 4, "dataflow workers")
		maxRows  = flag.Int("rows", 20, "print at most this many result rows (0 = all)")
		useBloom = flag.Bool("bloom", false, "use sub-partition Bloom filters for level pruning (store must be built with -blooms)")
		explain  = flag.Bool("explain", false, "print the query plan (slice schedule, join order, predicted rows) and exit without running")
		analyze  = flag.Bool("analyze", false, "run the query and print the plan annotated with actual rows, cache hits and timings")
		planJSON = flag.Bool("json", false, "with -explain/-analyze, emit the plan as JSON instead of text")
		policy   = flag.String("failure-policy", "failfast", "storage failure handling: failfast (abort on unreadable sub-partition) or degrade (skip it; answers stay a sound subset)")
		retries  = flag.Int("retries", 2, "extra replica-failover rounds per block read (-1 disables retries)")
		timeout  = flag.Duration("timeout", 0, "overall query deadline, e.g. 30s (0 = none)")

		budgetSteps    = flag.Int("budget-steps", 0, "run at most this many PQA steps, then pause with a cursor (0 = no bound)")
		budgetRows     = flag.Int64("budget-rows", 0, "load at most this many predicted rows — the run keeps the longest schedule prefix that fits (0 = no bound)")
		budgetDeadline = flag.Duration("budget-deadline", 0, "pause at the first step boundary past this elapsed time (0 = no bound)")
		cursorOut      = flag.String("cursor-out", "", "write the resumable cursor record here when the run pauses")
		resume         = flag.String("resume", "", "resume from a cursor record written by -cursor-out (the query text comes from the cursor; -query/-file may be omitted)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and pprof on this address while the query runs (e.g. :9090 or :0)")
		metricsHold = flag.Duration("metrics-hold", 0, "keep the metrics endpoint up this long after the query finishes (for scraping short queries)")
		traceOut    = flag.String("trace-out", "", "write the query's span tree as indented JSON to this file")
		server      = flag.String("server", "", "stream the query against a running pingd at this base URL instead of a local store (propagates a traceparent)")
	)
	flag.Parse()
	if *server != "" {
		text := *queryStr
		if *file != "" {
			data, err := os.ReadFile(*file)
			if err != nil {
				fatal(err)
			}
			text = string(data)
		}
		if text == "" {
			flag.Usage()
			os.Exit(2)
		}
		budget := ping.Budget{MaxSteps: *budgetSteps, MaxLoadedRows: *budgetRows, Deadline: *budgetDeadline}
		if err := runRemote(*server, text, budget, *timeout, *maxRows > 0, *traceOut); err != nil {
			fatal(err)
		}
		return
	}
	if *store == "" || (*queryStr == "" && *file == "" && *resume == "") {
		flag.Usage()
		os.Exit(2)
	}

	// A resumed run carries its own query text, lineage bookkeeping, and
	// strategy in the cursor record.
	var rec *cursor.Record
	if *resume != "" {
		data, err := os.ReadFile(*resume)
		if err != nil {
			fatal(err)
		}
		if rec, err = cursor.DecodeRecord(data); err != nil {
			fatal(err)
		}
	}

	text := *queryStr
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		text = string(data)
	}
	if text == "" && rec != nil {
		text = rec.Checkpoint.Query
	}
	q, err := sparql.Parse(text)
	if err != nil {
		fatal(err)
	}

	fs, err := dfs.OpenOnDisk(*store)
	if err != nil {
		fatal(err)
	}
	fs.SetRetryPolicy(*retries, 500*time.Microsecond, 50*time.Millisecond)
	lay, err := hpart.Load(fs, nil)
	if err != nil {
		fatal(err)
	}

	opts := ping.Options{Context: dataflow.NewContext(*workers), UseBloomPruning: *useBloom}
	switch *strategy {
	case "level":
		opts.Strategy = ping.LevelCumulative
	case "product":
		opts.Strategy = ping.ProductOrder
	case "largest":
		opts.Strategy = ping.LargestFirst
	case "smallest":
		opts.Strategy = ping.SmallestFirst
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	switch *policy {
	case "failfast":
		opts.FailurePolicy = ping.FailFast
	case "degrade":
		opts.FailurePolicy = ping.Degrade
	default:
		fatal(fmt.Errorf("unknown failure policy %q (want failfast or degrade)", *policy))
	}
	proc := ping.NewProcessor(lay, opts)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *metricsAddr != "" {
		_, lnAddr, err := obs.Serve(*metricsAddr, obs.Default)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", lnAddr)
		if *metricsHold > 0 {
			defer func() {
				fmt.Fprintf(os.Stderr, "holding metrics endpoint for %v\n", *metricsHold)
				time.Sleep(*metricsHold)
			}()
		}
	}

	var root *obs.Span
	if *traceOut != "" {
		ctx, root = obs.NewTrace(ctx, "pingquery")
		root.SetAttr("store", *store)
		defer func() {
			root.End()
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			err = root.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
		}()
	}

	if *explain || *analyze {
		var plan *ping.Plan
		if *analyze {
			plan, _, err = proc.Analyze(ctx, q)
		} else {
			plan, err = proc.Explain(q)
		}
		if err != nil {
			fatal(err)
		}
		plan.Fingerprint = workload.Fingerprint(q)
		if *planJSON {
			err = plan.WriteJSON(os.Stdout)
		} else {
			err = plan.WriteText(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("query (%s, %d patterns) over %d levels:\n%s\n\n",
		sparql.Classify(q), len(q.Patterns)+len(q.Paths), lay.NumLevels, q)

	if *exact {
		start := time.Now()
		res, err := proc.EQAFull(ctx, q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("EQA: %d answers in %v (%d rows loaded, %d joins)\n\n",
			res.Answers.Card(), time.Since(start), res.Stats.InputRows, res.Stats.Joins)
		printRelation(lay, res.Answers, *maxRows)
		if !res.Exact {
			printDegradedBanner(res.MissingSubParts)
		}
		return
	}

	budget := ping.Budget{
		MaxSteps:      *budgetSteps,
		MaxLoadedRows: *budgetRows,
		Deadline:      *budgetDeadline,
	}
	var last ping.StepResult
	var stepAnswers []int
	fn := func(st ping.StepResult, _ *ping.Checkpoint) bool {
		last = st
		stepAnswers = append(stepAnswers, st.Answers.Card())
		degraded := ""
		if st.Degraded {
			degraded = fmt.Sprintf(" [degraded: %d sub-partitions missing]", len(st.MissingSubParts))
		}
		fmt.Printf("slice %d (levels up to %d): +%d sub-partitions, %d rows loaded, %d answers (+%d) in %v%s\n",
			st.Step, st.MaxLevel, len(st.NewSubParts), st.RowsLoadedCum,
			st.Answers.Card(), st.NewAnswers, st.ElapsedCum, degraded)
		if st.NewAnswers > 0 {
			printRelation(lay, st.Answers, *maxRows)
		}
		return true
	}

	start := time.Now()
	var st *ping.RunStatus
	if rec != nil {
		fmt.Printf("resuming after step %d of a prior run (%d segments so far)\n\n",
			rec.Checkpoint.StepsDone, rec.Segments)
		st, err = proc.PQAResumeRun(ctx, nil, &rec.Checkpoint, budget, fn)
		if errors.Is(err, ping.ErrSnapshotMismatch) {
			fatal(fmt.Errorf("%v\nthe store changed since the cursor was written; rerun without -resume", err))
		}
	} else {
		st, err = proc.PQARun(ctx, q, budget, fn)
	}
	if err != nil {
		fatal(err)
	}
	if last.Degraded {
		printDegradedBanner(last.MissingSubParts)
	}
	if st.Done {
		if rec != nil {
			fmt.Printf("lineage complete after %d segments\n", rec.Segments+1)
		}
		return
	}

	// Paused under budget: persist the cursor so a later invocation can
	// pick up where this one stopped.
	if rec == nil {
		id, err := cursor.NewID()
		if err != nil {
			fatal(err)
		}
		rec = &cursor.Record{ID: id, Fingerprint: workload.Fingerprint(q)}
	}
	rec.Checkpoint = *st.Checkpoint
	rec.Segments++
	rec.LatencyNS += int64(time.Since(start))
	rec.StepAnswers = append(rec.StepAnswers, stepAnswers...)
	fmt.Printf("paused after step %d/%d (%s): %d answers so far — a sound subset of the exact result\n",
		st.StepsDone, st.PlannedSteps, st.Reason, st.Checkpoint.PrevAnswers)
	if *cursorOut == "" {
		fmt.Println("no -cursor-out given; the remaining steps cannot be resumed")
		return
	}
	if err := os.WriteFile(*cursorOut, cursor.EncodeRecord(rec), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("cursor written to %s\nresume with: pingquery -store %s -resume %s\n",
		*cursorOut, *store, *cursorOut)
}

// printDegradedBanner warns that the answer is a sound subset, not the
// exact result, and lists what could not be read.
func printDegradedBanner(missing []hpart.SubPartKey) {
	fmt.Println("*** DEGRADED ANSWER ***")
	fmt.Println("some sub-partitions were unreadable after all retries; the answers above")
	fmt.Println("are a sound subset of the exact result (Lemma 4.4), not the exact result.")
	fmt.Printf("missing sub-partitions (%d):", len(missing))
	for _, k := range missing {
		fmt.Printf(" %s", k)
	}
	fmt.Println()
}

func printRelation(lay *hpart.Layout, rel *engine.Relation, maxRows int) {
	fmt.Printf("  ?%s\n", strings.Join(rel.Vars, "\t?"))
	n := rel.Card()
	if maxRows > 0 && n > maxRows {
		n = maxRows
	}
	dv := lay.DictView()
	for _, row := range rel.Rows[:n] {
		parts := make([]string, len(row))
		for i, id := range row {
			parts[i] = dv.TermString(id)
		}
		fmt.Printf("  %s\n", strings.Join(parts, "\t"))
	}
	if n < rel.Card() {
		fmt.Printf("  ... (%d more)\n", rel.Card()-n)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pingquery: %v\n", err)
	os.Exit(1)
}
