package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"ping/internal/obs"
	"ping/internal/ping"
)

// runRemote streams the query against a running pingd instead of a
// local store. The client roots a trace and propagates it as a W3C
// traceparent header, so the daemon continues the same trace: its
// exported spans, wide event, and metric exemplars all carry this
// invocation's trace ID.
func runRemote(server, text string, budget ping.Budget, timeout time.Duration, bindings bool, traceOut string) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	ctx, root := obs.NewTrace(ctx, "pingquery")
	root.SetAttr("server", server)
	defer func() {
		root.End()
		if traceOut == "" {
			return
		}
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			return
		}
		err = root.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", traceOut)
	}()
	fmt.Fprintf(os.Stderr, "trace %s\n", root.TraceID())

	params := url.Values{}
	if budget.MaxSteps > 0 {
		params.Set("max_steps", strconv.Itoa(budget.MaxSteps))
	}
	if budget.MaxLoadedRows > 0 {
		params.Set("max_rows", strconv.FormatInt(budget.MaxLoadedRows, 10))
	}
	if budget.Deadline > 0 {
		params.Set("deadline", budget.Deadline.String())
	}
	if bindings {
		params.Set("bindings", "1")
	}
	u := strings.TrimRight(server, "/") + "/query"
	if len(params) > 0 {
		u += "?" + params.Encode()
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, strings.NewReader(text))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/sparql-query")
	obs.InjectTraceparent(req, root.SpanContext())

	span := root.StartChild("http-query")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		span.End()
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		span.End()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}

	// The response is NDJSON, one line per progressive step followed by a
	// done/paused/error line; relay it verbatim — each line is already a
	// self-describing JSON document.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		fmt.Println(sc.Text())
		lines++
	}
	span.SetAttr("lines", lines)
	span.End()
	return sc.Err()
}
