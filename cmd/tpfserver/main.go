// Command tpfserver serves an N-Triples file through the Triple Pattern
// Fragments interface (the §2.4 restricted-server family): GET
// /fragment?s=&p=&o=&page=N returns one JSON page of matching triples.
// The server never joins — that burden falls on a smart client, which is
// exactly the architecture the paper contrasts PING against.
//
// The process also exposes /metrics (Prometheus text format),
// /debug/vars, and the pprof handlers on the same listener, logs every
// request, and shuts down gracefully on SIGINT/SIGTERM (in-flight
// fragment requests get up to 5s to drain).
//
// Usage:
//
//	tpfserver -in uniprot.nt -addr :8080 -page 100
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ping/internal/baseline/tpf"
	"ping/internal/obs"
	"ping/internal/rdf"
)

// shutdownGrace bounds how long in-flight requests may drain after a
// termination signal.
const shutdownGrace = 5 * time.Second

func main() {
	var (
		in   = flag.String("in", "", "input N-Triples file (required)")
		addr = flag.String("addr", ":8080", "listen address")
		page = flag.Int("page", tpf.PageSize, "fragment page size")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	g, err := rdf.ParseFile(f, rdf.DetectFormat(*in))
	f.Close()
	if err != nil {
		fatal(err)
	}
	g.Dedup()
	srv := tpf.NewServer(g, *page)

	logger := log.New(os.Stderr, "tpfserver: ", log.LstdFlags)
	mux := http.NewServeMux()
	mux.Handle("/fragment", obs.Instrument(obs.Default, "/fragment", logger.Printf, srv.Handler()))
	mux.Handle("/", obs.Handler(obs.Default))

	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	fmt.Printf("serving %d triples on %s (page size %d)\n", g.Len(), *addr, *page)
	fmt.Printf("try: curl '%s/fragment?p=%%3C...%%3E'   metrics: curl '%s/metrics'\n", *addr, *addr)

	select {
	case err := <-errc:
		// Listener failed before any signal (e.g. port in use).
		fatal(err)
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining for up to %v", shutdownGrace)
	shCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		logger.Printf("forced shutdown: %v", err)
		httpSrv.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	logger.Printf("shut down cleanly")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tpfserver: %v\n", err)
	os.Exit(1)
}
