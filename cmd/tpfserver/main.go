// Command tpfserver serves an N-Triples file through the Triple Pattern
// Fragments interface (the §2.4 restricted-server family): GET
// /fragment?s=&p=&o=&page=N returns one JSON page of matching triples.
// The server never joins — that burden falls on a smart client, which is
// exactly the architecture the paper contrasts PING against.
//
// Usage:
//
//	tpfserver -in uniprot.nt -addr :8080 -page 100
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"ping/internal/baseline/tpf"
	"ping/internal/rdf"
)

func main() {
	var (
		in   = flag.String("in", "", "input N-Triples file (required)")
		addr = flag.String("addr", ":8080", "listen address")
		page = flag.Int("page", tpf.PageSize, "fragment page size")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	g, err := rdf.ParseFile(f, rdf.DetectFormat(*in))
	f.Close()
	if err != nil {
		fatal(err)
	}
	g.Dedup()
	srv := tpf.NewServer(g, *page)
	fmt.Printf("serving %d triples on %s (page size %d)\n", g.Len(), *addr, *page)
	fmt.Printf("try: curl '%s/fragment?p=%%3C...%%3E'\n", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tpfserver: %v\n", err)
	os.Exit(1)
}
