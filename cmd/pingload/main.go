// Command pingload runs PING's partitioner (Algorithm 1) over an
// N-Triples file and persists the hierarchical partitioning — levels,
// vertical sub-partitions, VP/SI/OI indexes, and the term dictionary —
// into an on-disk DFS directory that pingquery can open.
//
// Usage:
//
//	pingload -in uniprot.nt -store ./uniprot-store
package main

import (
	"flag"
	"fmt"
	"os"

	"ping/internal/dataflow"
	"ping/internal/dfs"
	"ping/internal/hpart"
	"ping/internal/rdf"
)

func main() {
	var (
		in          = flag.String("in", "", "input N-Triples file (required)")
		store       = flag.String("store", "", "output store directory (required)")
		datanodes   = flag.Int("datanodes", 4, "simulated DFS data nodes")
		repl        = flag.Int("replication", 1, "DFS block replication factor")
		distributed = flag.Bool("distributed", false, "run Algorithm 1 as a dataflow job (the paper's Spark mode)")
		workers     = flag.Int("workers", 4, "dataflow workers for -distributed")
		blooms      = flag.Bool("blooms", false, "also build per-sub-partition Bloom filters (§6.2 extension)")
	)
	flag.Parse()
	if *in == "" || *store == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	g, err := rdf.ParseFile(f, rdf.DetectFormat(*in))
	f.Close()
	if err != nil {
		fatal(err)
	}
	g.Dedup()
	fmt.Printf("parsed %d triples, %d terms\n", g.Len(), g.Dict.Len())

	fs, err := dfs.NewOnDisk(*store, dfs.Config{DataNodes: *datanodes, Replication: *repl})
	if err != nil {
		fatal(err)
	}
	opts := hpart.Options{FS: fs, BuildBlooms: *blooms}
	var lay *hpart.Layout
	if *distributed {
		lay, err = hpart.PartitionDistributed(g, dataflow.NewContext(*workers), opts)
	} else {
		lay, err = hpart.Partition(g, opts)
	}
	if err != nil {
		fatal(err)
	}
	if err := lay.SaveDict(); err != nil {
		fatal(err)
	}
	if err := fs.SaveManifest(); err != nil {
		fatal(err)
	}

	fmt.Printf("partitioned into %d levels in %v\n", lay.NumLevels, lay.PreprocessTime)
	for i, n := range lay.LevelTriples {
		fmt.Printf("  L%-2d %d triples\n", i+1, n)
	}
	u := fs.Usage()
	fmt.Printf("store: %d files, %s logical, %s physical (replication %d)\n",
		u.Files, size(u.LogicalBytes), size(u.PhysicalBytes), *repl)
}

func size(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pingload: %v\n", err)
	os.Exit(1)
}
