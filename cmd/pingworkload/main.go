// Command pingworkload summarizes a workload snapshot captured by pingd
// (-workload-out, or GET /workload?format=ndjson): a table of query
// fingerprints with their traffic and latency aggregates, sorted by the
// chosen column. It is the offline half of the workload profiler — the
// input to workload-aware tuning decisions (which shapes recur, which of
// them progressive answering serves poorly).
//
// With -events the input is a wide-event stream (pingd -wide-events)
// instead of an aggregate snapshot: the per-lineage events are replayed
// through a fresh profiler, producing the same aggregates the live
// server would have — so raw telemetry files can be mined offline.
//
// Usage:
//
//	pingworkload -in workload.ndjson -top 10
//	pingworkload -events -in events.ndjson -sort count
//	curl -s localhost:8080/workload?format=ndjson | pingworkload -sort p95
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"ping/internal/obs"
	"ping/internal/workload"
)

func main() {
	var (
		in     = flag.String("in", "-", "workload NDJSON snapshot file (-: stdin)")
		events = flag.Bool("events", false, "treat the input as a wide-event stream (pingd -wide-events) and aggregate it")
		top    = flag.Int("top", 0, "print only the first N fingerprints (0 = all)")
		sortBy = flag.String("sort", "total", "sort column: total, mean, p95, max, count, errors")
	)
	flag.Parse()

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	var stats []workload.FingerprintStats
	if *events {
		prof, n, err := workload.ReplayEvents(r, workload.Options{Metrics: obs.NewRegistry()})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "replayed %d wide event(s)\n", n)
		stats = prof.Snapshot()
	} else {
		var err error
		stats, err = workload.ReadNDJSON(r)
		if err != nil {
			fatal(err)
		}
	}

	key := func(s workload.FingerprintStats) float64 {
		switch *sortBy {
		case "total":
			return s.TotalMs
		case "mean":
			return s.MeanMs
		case "p95":
			return s.P95Ms
		case "max":
			return s.MaxMs
		case "count":
			return float64(s.Count)
		case "errors":
			return float64(s.Errors)
		default:
			fatal(fmt.Errorf("unknown sort column %q", *sortBy))
			return 0
		}
	}
	sort.SliceStable(stats, func(i, j int) bool { return key(stats[i]) > key(stats[j]) })
	if *top > 0 && *top < len(stats) {
		stats = stats[:*top]
	}

	var totalQ, totalErr int64
	var totalMs float64
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "FINGERPRINT\tSHAPE\tCOUNT\tERR\tDEG\tTOTAL ms\tMEAN ms\tP50 ms\tP95 ms\tP99 ms\tSTEPS→1st\tCANONICAL")
	for _, s := range stats {
		totalQ += s.Count
		totalErr += s.Errors
		totalMs += s.TotalMs
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.1f\t%s\n",
			s.Fingerprint, s.Shape, s.Count, s.Errors, s.Degraded,
			s.TotalMs, s.MeanMs, s.P50Ms, s.P95Ms, s.P99Ms,
			s.MeanStepsToFirst, oneLine(s.Canonical, 60))
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
	fmt.Printf("\n%d fingerprint(s), %d query(ies), %d error(s), %.2f ms total\n",
		len(stats), totalQ, totalErr, totalMs)
}

// oneLine flattens and truncates the canonical query for table display.
func oneLine(s string, max int) string {
	out := make([]rune, 0, len(s))
	space := false
	for _, r := range s {
		if r == '\n' || r == '\t' || r == ' ' {
			space = true
			continue
		}
		if space && len(out) > 0 {
			out = append(out, ' ')
		}
		space = false
		out = append(out, r)
	}
	if len(out) > max {
		out = append(out[:max-1], '…')
	}
	return string(out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pingworkload: %v\n", err)
	os.Exit(1)
}
