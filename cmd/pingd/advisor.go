package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"ping/internal/advisor"
	"ping/internal/hpart"
)

// adviserState is the server's online-advisor slot: the most recent
// recommendation, guarded separately from maintMu so /advisor GETs never
// wait behind an update batch.
type adviserState struct {
	mu       sync.Mutex
	latest   *advisor.Advice
	computed time.Time
	applied  int64 // epochs published by advisor applies
	lastErr  string
}

// advise recomputes a recommendation from the live workload profile
// against the current epoch and caches it as the latest.
func (s *server) advise() (*advisor.Advice, error) {
	lay := s.store.Current()
	adv, err := advisor.Analyze(lay, s.profiler.Snapshot(), advisor.Config{
		TopK:     s.cfg.AdviseTop,
		Strategy: s.cfg.Strategy,
	})
	s.adviser.mu.Lock()
	defer s.adviser.mu.Unlock()
	if err != nil {
		s.adviser.lastErr = err.Error()
		return nil, err
	}
	s.adviser.latest = adv
	s.adviser.computed = time.Now()
	s.adviser.lastErr = ""
	return adv, nil
}

// applyAdvice installs a recommendation through the single-writer
// maintainer, exactly like an update batch: one copy-on-write epoch,
// dictionary and manifest persisted afterwards. Stale advice (computed
// against an older epoch's signature) is rejected — the caller should
// re-advise first.
func (s *server) applyAdvice(adv *advisor.Advice) error {
	if adv.Empty() {
		return nil
	}
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	cur := s.store.Current()
	if sig := fmt.Sprintf("%016x", cur.Signature()); sig != adv.Signature {
		return fmt.Errorf("advice is stale: analyzed signature %s, store is now %s", adv.Signature, sig)
	}
	if s.maint == nil {
		m, err := hpart.NewStoreMaintainer(s.store)
		if err != nil {
			return err
		}
		s.maint = m
	}
	if err := adv.Apply(s.maint); err != nil {
		// The failed epoch was never published; rebuild the maintainer's
		// bookkeeping on the next writer, as handleUpdate does.
		s.maint = nil
		return err
	}
	s.updates.Inc()
	s.adviser.mu.Lock()
	s.adviser.applied++
	s.adviser.mu.Unlock()
	if s.cfg.Persist != nil {
		if err := s.store.Current().SaveDict(); err != nil {
			return err
		}
		if err := s.cfg.Persist.SaveManifest(); err != nil {
			return err
		}
	}
	return nil
}

// advisorResponse is the /advisor document: the latest recommendation
// plus the apply bookkeeping.
type advisorResponse struct {
	Advice *advisor.Advice `json:"advice"`
	// ComputedAt is when Advice was analyzed (RFC 3339; empty when no
	// analysis has run yet).
	ComputedAt string `json:"computed_at,omitempty"`
	// Applied counts advisor-published epochs since startup.
	Applied int64 `json:"applied"`
	// Error carries the last analysis failure, if the latest run failed.
	Error string `json:"error,omitempty"`
}

// handleAdvisor serves the online advisor. GET returns the latest
// recommendation, analyzing on first use; POST re-analyzes, and with
// ?apply=1 also installs the result as a new epoch.
func (s *server) handleAdvisor(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.adviser.mu.Lock()
		cached := s.adviser.latest
		s.adviser.mu.Unlock()
		if cached == nil {
			if _, err := s.advise(); err != nil {
				http.Error(w, fmt.Sprintf("advise: %v", err), http.StatusInternalServerError)
				return
			}
		}
	case http.MethodPost:
		adv, err := s.advise()
		if err != nil {
			http.Error(w, fmt.Sprintf("advise: %v", err), http.StatusInternalServerError)
			return
		}
		if r.URL.Query().Get("apply") == "1" {
			if err := s.applyAdvice(adv); err != nil {
				http.Error(w, fmt.Sprintf("apply: %v", err), http.StatusInternalServerError)
				return
			}
		}
	default:
		http.Error(w, "GET the latest advice, or POST (?apply=1) to re-analyze", http.StatusMethodNotAllowed)
		return
	}

	s.adviser.mu.Lock()
	resp := advisorResponse{
		Advice:  s.adviser.latest,
		Applied: s.adviser.applied,
		Error:   s.adviser.lastErr,
	}
	if !s.adviser.computed.IsZero() {
		resp.ComputedAt = s.adviser.computed.UTC().Format(time.RFC3339)
	}
	s.adviser.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// startAdvisor runs the online advise loop: every interval, re-analyze
// the live workload; when apply is set and the advice recommends a
// change, publish it as a new epoch. The returned function stops the
// loop. Analysis failures are logged and retried next tick — the loop
// must outlive a transient bad snapshot.
func (s *server) startAdvisor(interval time.Duration, apply bool, logf func(format string, args ...any)) func() {
	if interval <= 0 {
		return func() {}
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				adv, err := s.advise()
				if err != nil {
					logf("advisor: analyze: %v", err)
					continue
				}
				if !apply || adv.Empty() {
					continue
				}
				if err := s.applyAdvice(adv); err != nil {
					logf("advisor: apply: %v", err)
					continue
				}
				logf("advisor: applied %d merge(s), %d join reduction(s); epoch %d",
					len(adv.Merges), len(adv.Joins), s.store.Current().Epoch())
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}
