package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"regexp"
	"strings"
	"testing"
	"time"

	"ping/internal/engine"
	"ping/internal/ping"
	"ping/internal/sparql"
	"ping/internal/workload"
)

// TestWorkloadAggregatesAlphaEquivalent is the acceptance test of the
// workload profiler wiring: two syntactically different but α-equivalent
// queries served by /query aggregate under one fingerprint at /workload.
func TestWorkloadAggregatesAlphaEquivalent(t *testing.T) {
	_, ts, _ := newTestServer(t, serverConfig{})

	const qa = `SELECT * WHERE { ?x <p0> ?y . ?y <p1> ?z }`
	const qb = `SELECT * WHERE { ?a <p0> ?b . ?b <p1> ?c }`
	for _, qs := range []string{qa, qb} {
		resp, err := http.Get(queryURL(ts.URL, qs))
		if err != nil {
			t.Fatal(err)
		}
		lines := readLines(t, resp.Body)
		resp.Body.Close()
		if done := lines[len(lines)-1]; !done.Done {
			t.Fatalf("query %q never finished: %+v", qs, done)
		}
	}

	resp, err := http.Get(ts.URL + "/workload")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wl workloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Fingerprints) != 1 {
		t.Fatalf("got %d fingerprints, want 1 (α-equivalent queries must share one)", len(wl.Fingerprints))
	}
	st := wl.Fingerprints[0]
	if st.Count != 2 {
		t.Fatalf("fingerprint count = %d, want 2", st.Count)
	}
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(st.Fingerprint) {
		t.Fatalf("malformed fingerprint %q", st.Fingerprint)
	}
	if want := workload.Fingerprint(sparql.MustParse(qa)); st.Fingerprint != want {
		t.Fatalf("fingerprint %q, want %q", st.Fingerprint, want)
	}
	if st.Shape == "" || st.Canonical == "" {
		t.Fatalf("missing shape/canonical: %+v", st)
	}
	if st.MeanSteps <= 0 || st.LastAnswers <= 0 {
		t.Fatalf("per-run aggregates missing: %+v", st)
	}
	if len(st.Coverage) == 0 || st.Coverage[len(st.Coverage)-1] != 1 {
		t.Fatalf("coverage curve %v, want non-empty ending at 1", st.Coverage)
	}
	if st.MeanStepsToFirst <= 0 || st.MeanCoverageAtFirst <= 0 {
		t.Fatalf("first-answer aggregates missing: %+v", st)
	}

	// The NDJSON form round-trips through the snapshot reader.
	nr, err := http.Get(ts.URL + "/workload?top=1&format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer nr.Body.Close()
	stats, err := workload.ReadNDJSON(nr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Fingerprint != st.Fingerprint {
		t.Fatalf("NDJSON snapshot %+v, want the same single fingerprint", stats)
	}
}

// TestExplainHandler covers /explain in both static and ?analyze=1
// modes, both formats, and the 400 paths.
func TestExplainHandler(t *testing.T) {
	_, ts, g := newTestServer(t, serverConfig{})

	const qs = `SELECT * WHERE { ?x <p0> ?y . ?y <p1> ?z }`
	oracle := engine.Naive(g, sparql.MustParse(qs)).Distinct().Card()
	explainURL := func(extra string) string {
		return ts.URL + "/explain?q=" + url.QueryEscape(qs) + extra
	}

	resp, err := http.Get(explainURL(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status %d", resp.StatusCode)
	}
	var plan ping.Plan
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatal(err)
	}
	if plan.Analyzed {
		t.Fatal("static explain must not run the query")
	}
	if !plan.Safe || len(plan.Steps) == 0 || len(plan.Patterns) != 2 {
		t.Fatalf("implausible plan: %+v", plan)
	}
	if plan.Fingerprint != workload.Fingerprint(sparql.MustParse(qs)) {
		t.Fatalf("plan fingerprint %q not the workload fingerprint", plan.Fingerprint)
	}

	ar, err := http.Get(explainURL("&analyze=1"))
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Body.Close()
	var analyzed ping.Plan
	if err := json.NewDecoder(ar.Body).Decode(&analyzed); err != nil {
		t.Fatal(err)
	}
	if !analyzed.Analyzed || !analyzed.Exact {
		t.Fatalf("analyze did not run: %+v", analyzed)
	}
	if analyzed.Answers != oracle {
		t.Fatalf("analyzed answers %d, want oracle %d", analyzed.Answers, oracle)
	}
	last := analyzed.Steps[len(analyzed.Steps)-1]
	if last.Coverage != 1 || last.ActualRows < 0 {
		t.Fatalf("last analyzed step %+v, want coverage 1", last)
	}

	tr, err := http.Get(explainURL("&format=text"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(tr.Body)
	tr.Body.Close()
	if !strings.Contains(string(body), "EXPLAIN") || !strings.Contains(string(body), "join order:") {
		t.Fatalf("text plan missing sections:\n%s", body)
	}

	for _, u := range []string{ts.URL + "/explain", ts.URL + "/explain?q=NOT+SPARQL"} {
		br, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, br.Body)
		br.Body.Close()
		if br.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", u, br.StatusCode)
		}
	}
}

// TestStreamingFlushWithTracing verifies that with tracing enabled each
// step line is flushed to the client before the run continues, and that
// the completed trace tree (query → pqa → slice) lands in /traces.
func TestStreamingFlushWithTracing(t *testing.T) {
	srv, ts, _ := newTestServer(t, serverConfig{Trace: true, TraceBuffer: 4})

	const qs = `SELECT * WHERE { ?x <p0> ?y . ?y <p0> ?z }`
	firstStep := make(chan struct{})
	gate := make(chan struct{})
	released := false
	srv.setStepHook(func() {
		select {
		case <-firstStep:
		default:
			close(firstStep)
			<-gate
		}
	})
	defer func() {
		if !released {
			close(gate)
		}
	}()

	resp, err := http.Get(queryURL(ts.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	select {
	case <-firstStep:
	case <-time.After(10 * time.Second):
		t.Fatal("query never delivered its first step")
	}

	// The run is parked inside the hook; the first step line must already
	// be readable — per-step flushing survives the instrumentation and
	// tracing wrappers.
	type read struct {
		line string
		err  error
	}
	rc := make(chan read, 1)
	br := bufio.NewReader(resp.Body)
	go func() {
		l, err := br.ReadString('\n')
		rc <- read{l, err}
	}()
	select {
	case r := <-rc:
		if r.err != nil {
			t.Fatalf("reading first step line: %v", r.err)
		}
		var l line
		if err := json.Unmarshal([]byte(r.line), &l); err != nil {
			t.Fatalf("first line not JSON: %q", r.line)
		}
		if l.Step != 1 {
			t.Fatalf("first flushed line is step %d, want 1", l.Step)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("step line was not flushed while the run is mid-flight")
	}

	released = true
	close(gate)
	srv.setStepHook(nil)
	if _, err := io.Copy(io.Discard, br); err != nil {
		t.Fatal(err)
	}

	tresp, err := http.Get(ts.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	raw, _ := io.ReadAll(tresp.Body)
	var traces struct {
		Dropped int64             `json:"dropped"`
		Traces  []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal(raw, &traces); err != nil {
		t.Fatalf("bad /traces document: %v\n%s", err, raw)
	}
	if len(traces.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces.Traces))
	}
	tree := string(traces.Traces[0])
	for _, want := range []string{`"name": "query"`, `"name": "pqa"`, `"name": "slice"`, `"fingerprint"`} {
		if !strings.Contains(tree, want) {
			t.Fatalf("trace tree missing %s:\n%s", want, tree)
		}
	}
}

// TestTracesDisabled: without -trace the endpoint 404s instead of
// serving an empty document.
func TestTracesDisabled(t *testing.T) {
	_, ts, _ := newTestServer(t, serverConfig{})
	resp, err := http.Get(ts.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/traces status %d, want 404", resp.StatusCode)
	}
}

// TestSlowQueryLogEndToEnd is the acceptance test of the slow-query log:
// a query over the threshold emits exactly one NDJSON record, a query
// under it emits none.
func TestSlowQueryLogEndToEnd(t *testing.T) {
	const qs = `SELECT * WHERE { ?x <p0> ?y . ?y <p1> ?z }`

	// Threshold 1ns: every real query is over it.
	var buf bytes.Buffer
	slow := workload.NewSlowLog(&buf, time.Nanosecond)
	_, ts, _ := newTestServer(t, serverConfig{SlowLog: slow})
	resp, err := http.Get(queryURL(ts.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	lines := readLines(t, resp.Body)
	resp.Body.Close()
	done := lines[len(lines)-1]

	if got := slow.Emitted(); got != 1 {
		t.Fatalf("slow log emitted %d records, want exactly 1", got)
	}
	recs := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(recs) != 1 {
		t.Fatalf("slow log holds %d lines, want exactly 1:\n%s", len(recs), buf.String())
	}
	var rec workload.SlowQuery
	if err := json.Unmarshal([]byte(recs[0]), &rec); err != nil {
		t.Fatalf("bad slow-log record: %v\n%s", err, recs[0])
	}
	if rec.Fingerprint != workload.Fingerprint(sparql.MustParse(qs)) {
		t.Fatalf("record fingerprint %q not the query's", rec.Fingerprint)
	}
	if rec.Query != qs || rec.Canonical == "" {
		t.Fatalf("record query/canonical wrong: %+v", rec)
	}
	if rec.LatencyMs <= 0 || rec.ThresholdMs > rec.LatencyMs {
		t.Fatalf("record timings wrong: %+v", rec)
	}
	if rec.Plan == nil || rec.Plan.Steps != done.Steps || len(rec.StepMs) != done.Steps {
		t.Fatalf("record plan/step timings don't match the run (%d steps): %+v", done.Steps, rec)
	}
	if rec.Answers != done.Answers || rec.Error != "" {
		t.Fatalf("record outcome doesn't match the run: %+v", rec)
	}

	// Threshold 1h: the same query emits nothing.
	var quiet bytes.Buffer
	slow2 := workload.NewSlowLog(&quiet, time.Hour)
	_, ts2, _ := newTestServer(t, serverConfig{SlowLog: slow2})
	resp2, err := http.Get(queryURL(ts2.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	readLines(t, resp2.Body)
	resp2.Body.Close()
	if slow2.Emitted() != 0 || quiet.Len() != 0 {
		t.Fatalf("fast query logged as slow:\n%s", quiet.String())
	}
}

// TestDashboardHandler: the dashboard serves self-contained HTML that
// polls the JSON endpoints.
func TestDashboardHandler(t *testing.T) {
	_, ts, _ := newTestServer(t, serverConfig{})
	resp, err := http.Get(ts.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/dashboard status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type %q, want text/html", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"pingd dashboard", "/workload?top=15", "/stats", "<svg"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("dashboard HTML missing %q", want)
		}
	}
}
