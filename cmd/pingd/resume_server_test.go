package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"ping/internal/cursor"
	"ping/internal/dfs"
	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// rline is the union of all NDJSON line shapes, cursor fields included.
type rline struct {
	Step         int    `json:"step"`
	Epoch        uint64 `json:"epoch"`
	Answers      int    `json:"answers"`
	Cursor       string `json:"cursor"`
	Done         bool   `json:"done"`
	Steps        int    `json:"steps"`
	Exact        bool   `json:"exact"`
	Segments     int    `json:"segments"`
	Restarted    bool   `json:"restarted"`
	Paused       bool   `json:"paused"`
	Reason       string `json:"reason"`
	PlannedSteps int    `json:"planned_steps"`
	Error        string `json:"error"`
}

func readRLines(t *testing.T, body io.Reader) []rline {
	t.Helper()
	var out []rline
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l rline
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if l.Error != "" {
			t.Fatalf("in-band error: %s", l.Error)
		}
		out = append(out, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func getRLines(t *testing.T, u string) []rline {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", u, resp.StatusCode, b)
	}
	return readRLines(t, resp.Body)
}

// TestBudgetPauseAndResumeServer drives a query through the HTTP surface
// one step per segment: every /query and /resume response must end in a
// paused line with a usable cursor until the final segment completes
// with the oracle answer set — and the completed lineage must release
// every pin and count once in the workload profiler.
func TestBudgetPauseAndResumeServer(t *testing.T) {
	srv, ts, g := newTestServer(t, serverConfig{MaxInflight: 2, MaxQueue: 2})

	const qs = `SELECT * WHERE { ?x <p0> ?y . ?y <p0> ?z }`
	oracle := engine.Naive(g, sparql.MustParse(qs)).Distinct().Card()

	// Uninterrupted run first: total steps and the reference answer count.
	full := getRLines(t, queryURL(ts.URL, qs))
	fdone := full[len(full)-1]
	if !fdone.Done || fdone.Answers != oracle {
		t.Fatalf("uninterrupted run: %+v, want done with %d answers", fdone, oracle)
	}
	totalSteps := fdone.Steps
	if totalSteps < 2 {
		t.Fatalf("need a multi-step query, got %d steps", totalSteps)
	}

	lines := getRLines(t, queryURL(ts.URL, qs)+"&max_steps=1")
	segments := 1
	var done rline
	for {
		last := lines[len(lines)-1]
		if last.Done {
			done = last
			break
		}
		if !last.Paused || last.Cursor == "" {
			t.Fatalf("segment %d ended without pause or cursor: %+v", segments, last)
		}
		if last.Reason != "budget-steps" {
			t.Fatalf("segment %d pause reason %q, want budget-steps", segments, last.Reason)
		}
		if last.Steps != segments {
			t.Fatalf("segment %d paused at lineage step %d", segments, last.Steps)
		}
		// Every step line must carry a resume token too.
		for _, l := range lines {
			if !l.Paused && !l.Done && l.Cursor == "" {
				t.Fatalf("step line without cursor token: %+v", l)
			}
		}
		lines = getRLines(t, ts.URL+"/resume?cursor="+url.QueryEscape(last.Cursor)+"&max_steps=1")
		segments++
		if first := lines[0]; first.Step != last.Steps+1 {
			t.Fatalf("segment %d resumed at step %d, want %d", segments, first.Step, last.Steps+1)
		}
		if segments > totalSteps+2 {
			t.Fatalf("lineage did not terminate after %d segments", segments)
		}
	}
	if segments != totalSteps {
		t.Fatalf("lineage took %d segments, want one per step (%d)", segments, totalSteps)
	}
	if done.Answers != oracle || !done.Exact {
		t.Fatalf("resumed lineage done: %+v, want exact %d answers", done, oracle)
	}
	if done.Segments != totalSteps {
		t.Fatalf("done line reports %d segments, want %d", done.Segments, totalSteps)
	}

	// Everything released: no cursors, no leases, no pins.
	if cs := srv.cursors.Stats(); cs.Active != 0 {
		t.Fatalf("cursors still active after completion: %+v", cs)
	}
	st := srv.store.Stats()
	if st.ActiveLeases != 0 || st.PinnedQueries != 0 {
		t.Fatalf("store still pinned after completion: %+v", st)
	}

	// The lineage counts ONCE in the workload profiler (the uninterrupted
	// run is a second observation of the same fingerprint), with the
	// segment count averaged in.
	snap := srv.profiler.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("profiler tracks %d fingerprints, want 1", len(snap))
	}
	fs := snap[0]
	if fs.Count != 2 {
		t.Fatalf("fingerprint count %d, want 2 (one per lineage, not per segment)", fs.Count)
	}
	wantMean := float64(1+totalSteps) / 2
	if fs.MeanSegments != wantMean {
		t.Fatalf("mean segments %v, want %v", fs.MeanSegments, wantMean)
	}
}

// TestResumeAfterDisconnect drops the client mid-run and resumes from
// the token on the last delivered step line.
func TestResumeAfterDisconnect(t *testing.T) {
	srv, ts, g := newTestServer(t, serverConfig{MaxInflight: 2})

	const qs = `SELECT * WHERE { ?x <p0> ?y . ?y <p0> ?z }`
	oracle := engine.Naive(g, sparql.MustParse(qs)).Distinct().Card()

	firstStep := make(chan struct{})
	gate := make(chan struct{})
	srv.setStepHook(func() {
		select {
		case <-firstStep:
		default:
			close(firstStep)
			<-gate
		}
	})

	resp, err := http.Get(queryURL(ts.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-firstStep:
	case <-time.After(10 * time.Second):
		t.Fatal("query never delivered its first step")
	}
	// The first line is already flushed; read it, then vanish.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first step line")
	}
	var step1 rline
	if err := json.Unmarshal(sc.Bytes(), &step1); err != nil {
		t.Fatal(err)
	}
	if step1.Cursor == "" {
		t.Fatalf("first step line has no cursor token: %+v", step1)
	}
	resp.Body.Close() // disconnect: cancels the request context
	// Give the cancellation a moment to propagate to the handler before
	// unblocking it; if it loses the race anyway, the run just pauses a
	// step or two later — the assertions below only need SOME completed
	// prefix to be parked.
	time.Sleep(200 * time.Millisecond)
	close(gate)
	srv.setStepHook(nil)

	// The handler notices at the next step boundary and parks the run.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if cs := srv.cursors.Stats(); cs.Active == 1 && cs.Busy == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("disconnected query never parked: %+v", srv.cursors.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	lines := getRLines(t, ts.URL+"/resume?cursor="+url.QueryEscape(step1.Cursor))
	done := lines[len(lines)-1]
	if !done.Done || done.Answers != oracle || !done.Exact {
		t.Fatalf("resume after disconnect: %+v, want exact %d answers", done, oracle)
	}
	if done.Segments != 2 || done.Restarted {
		t.Fatalf("done line %+v, want 2 segments without restart", done)
	}
	if lines[0].Step < 2 {
		t.Fatalf("resume started at step %d; the pre-disconnect prefix was lost", lines[0].Step)
	}
}

// TestOverloadResponse pins the 429 contract: Retry-After header plus a
// machine-readable JSON body.
func TestOverloadResponse(t *testing.T) {
	srv, ts, _ := newTestServer(t, serverConfig{MaxInflight: 1, MaxQueue: 0})

	const qs = `SELECT * WHERE { ?x <p0> ?y }`
	firstStep := make(chan struct{})
	gate := make(chan struct{})
	srv.setStepHook(func() {
		select {
		case <-firstStep:
		default:
			close(firstStep)
			<-gate
		}
	})
	defer close(gate)

	resp, err := http.Get(queryURL(ts.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	select {
	case <-firstStep:
	case <-time.After(10 * time.Second):
		t.Fatal("query never delivered its first step")
	}

	resp2, err := http.Get(queryURL(ts.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429", resp2.StatusCode)
	}
	if ra := resp2.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	var body struct {
		Error string `json:"error"`
		Queue int    `json:"queue"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil {
		t.Fatalf("429 body is not JSON: %v", err)
	}
	if body.Error != "overloaded" {
		t.Fatalf("429 body %+v, want error=overloaded", body)
	}
}

// TestResumeValidation covers the /resume error statuses.
func TestResumeValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, serverConfig{})

	cases := []struct {
		url  string
		want int
	}{
		{ts.URL + "/resume", http.StatusBadRequest},                             // no token
		{ts.URL + "/resume?cursor=garbage", http.StatusBadRequest},              // unparsable
		{ts.URL + "/resume?cursor=pqc.AAAA", http.StatusBadRequest},             // truncated
		{ts.URL + "/resume?cursor=" + mintUnknownToken(t), http.StatusNotFound}, // well-formed, unknown
	}
	for _, c := range cases {
		resp, err := http.Get(c.url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Fatalf("%s: status %d, want %d", c.url, resp.StatusCode, c.want)
		}
	}
}

func mintUnknownToken(t *testing.T) string {
	t.Helper()
	id, err := cursor.NewID()
	if err != nil {
		t.Fatal(err)
	}
	return url.QueryEscape(cursor.Token(id, 1))
}

// TestDrainCheckpointRestart is the crash-survival path end to end: a
// SIGTERM-style drain pauses an in-flight query as a cursor, the cursor
// hibernates to the on-disk store, the whole daemon is torn down, a new
// daemon reopens the store cold — and the client's token still resumes
// the lineage to the exact oracle answer set, without a restart (the
// reloaded layout's signature matches the checkpoint).
func TestDrainCheckpointRestart(t *testing.T) {
	g := testGraph(1, 60, 5)
	dir := t.TempDir()
	fs, err := dfs.NewOnDisk(dir, dfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := hpart.Partition(g, hpart.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := lay.SaveDict(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveManifest(); err != nil {
		t.Fatal(err)
	}

	const qs = `SELECT * WHERE { ?x <p0> ?y . ?y <p0> ?z }`
	oracle := engine.Naive(g, sparql.MustParse(qs)).Distinct().Card()

	srv := newServer(hpart.NewStore(lay), serverConfig{
		MaxInflight: 2, Persist: fs, Metrics: obs.NewRegistry(),
	})
	ts := httptest.NewServer(srv.handler(nil))

	firstStep := make(chan struct{})
	gate := make(chan struct{})
	srv.setStepHook(func() {
		select {
		case <-firstStep:
		default:
			close(firstStep)
			<-gate
		}
	})

	resp, err := http.Get(queryURL(ts.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-firstStep:
	case <-time.After(10 * time.Second):
		t.Fatal("query never delivered its first step")
	}
	// SIGTERM arrives: drain, let the run pause at its next boundary.
	srv.beginDrain()
	close(gate)
	srv.setStepHook(nil)

	lines := readRLines(t, resp.Body)
	resp.Body.Close()
	paused := lines[len(lines)-1]
	if !paused.Paused || paused.Reason != "draining" || paused.Cursor == "" {
		t.Fatalf("drained query did not pause with a cursor: %+v", paused)
	}

	// Shutdown path: hibernate everything, then kill the process.
	n, err := srv.cursors.HibernateAll()
	if err != nil || n != 1 {
		t.Fatalf("HibernateAll = (%d, %v), want (1, nil)", n, err)
	}
	ts.Close()

	// Cold restart: reopen the store from disk into a brand-new server.
	fs2, err := dfs.OpenOnDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	lay2, err := hpart.Load(fs2, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := newServer(hpart.NewStore(lay2), serverConfig{
		MaxInflight: 2, Persist: fs2, Metrics: obs.NewRegistry(),
	})
	ts2 := httptest.NewServer(srv2.handler(nil))
	defer ts2.Close()

	res := getRLines(t, ts2.URL+"/resume?cursor="+url.QueryEscape(paused.Cursor))
	done := res[len(res)-1]
	if !done.Done || done.Answers != oracle || !done.Exact {
		t.Fatalf("resume across restart: %+v, want exact %d answers", done, oracle)
	}
	if done.Restarted {
		t.Fatal("unchanged store resumed with restarted:true; layout signature check is broken")
	}
	if res[0].Step != paused.Steps+1 {
		t.Fatalf("post-restart resume started at step %d, want %d", res[0].Step, paused.Steps+1)
	}
	if cs := srv2.cursors.Stats(); cs.Active != 0 {
		t.Fatalf("cursor not retired after completion: %+v", cs)
	}
}

// TestExpiredLeaseRestartsOnCurrentEpoch exercises the lease-expiry
// contract: a paused cursor whose TTL lease has lapsed must not block
// epoch GC, and resuming it after the data changed restarts the lineage
// on the current snapshot with restarted:true and the NEW oracle answers.
func TestExpiredLeaseRestartsOnCurrentEpoch(t *testing.T) {
	srv, ts, g := newTestServer(t, serverConfig{MaxInflight: 2, CursorTTL: time.Hour})

	var (
		mu     sync.Mutex
		offset time.Duration
	)
	srv.store.SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return time.Now().Add(offset)
	})

	const qs = `SELECT * WHERE { ?x <p0> ?y . ?y <p0> ?z }`

	lines := getRLines(t, queryURL(ts.URL, qs)+"&max_steps=1")
	paused := lines[len(lines)-1]
	if !paused.Paused || paused.Cursor == "" {
		t.Fatalf("budgeted query did not pause: %+v", paused)
	}
	if st := srv.store.Stats(); st.ActiveLeases != 1 {
		t.Fatalf("paused cursor holds %d leases, want 1", st.ActiveLeases)
	}

	// The client dies. Its lease outlives it only until the TTL.
	mu.Lock()
	offset = srv.cursors.TTL() + time.Minute
	mu.Unlock()

	// An update publishes a new epoch; the expired lease must not pin the
	// old one.
	delta := "<s0> <p0> <s1> .\n<s1> <p0> <s2> .\n<s200> <p0> <s0> .\n"
	ur, err := http.Post(ts.URL+"/update?op=add", "application/n-triples", strings.NewReader(delta))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, ur.Body)
	ur.Body.Close()
	if ur.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", ur.StatusCode)
	}
	st := srv.store.Stats()
	if st.LeasesExpired < 1 {
		t.Fatalf("expired lease not collected: %+v", st)
	}
	if st.RetiredFiles != 0 {
		t.Fatalf("expired lease still blocks GC: %d retired files held", st.RetiredFiles)
	}

	// Oracle on the updated graph.
	g.Add(rdf.NewIRI("s0"), rdf.NewIRI("p0"), rdf.NewIRI("s1"))
	g.Add(rdf.NewIRI("s1"), rdf.NewIRI("p0"), rdf.NewIRI("s2"))
	g.Add(rdf.NewIRI("s200"), rdf.NewIRI("p0"), rdf.NewIRI("s0"))
	oracle := engine.Naive(g, sparql.MustParse(qs)).Distinct().Card()

	res := getRLines(t, ts.URL+"/resume?cursor="+url.QueryEscape(paused.Cursor))
	done := res[len(res)-1]
	if !done.Done || !done.Restarted {
		t.Fatalf("resume after expiry: %+v, want done with restarted:true", done)
	}
	if done.Answers != oracle {
		t.Fatalf("restarted lineage answered %d, want current-epoch oracle %d", done.Answers, oracle)
	}
	if done.Epoch != 1 {
		t.Fatalf("restarted lineage ran on epoch %d, want 1", done.Epoch)
	}
	// Every line of the restarted segment is marked.
	for _, l := range res {
		if !l.Restarted {
			t.Fatalf("restarted segment line without restarted flag: %+v", l)
		}
	}
	if cs := srv.cursors.Stats(); cs.Active != 0 {
		t.Fatalf("cursor not retired: %+v", cs)
	}
	if st := srv.store.Stats(); st.ActiveLeases != 0 || st.PinnedQueries != 0 {
		t.Fatalf("pins left after restarted completion: %+v", st)
	}
}

// TestBudgetRowsAndDeadlineParams sanity-checks the other two budget
// dimensions through the HTTP surface.
func TestBudgetRowsAndDeadlineParams(t *testing.T) {
	_, ts, g := newTestServer(t, serverConfig{MaxInflight: 2})

	const qs = `SELECT * WHERE { ?x <p0> ?y . ?y <p0> ?z }`
	oracle := engine.Naive(g, sparql.MustParse(qs)).Distinct().Card()

	// A 1-row budget still makes progress (at least one step per segment)
	// and the lineage still terminates with the oracle answers.
	lines := getRLines(t, queryURL(ts.URL, qs)+"&max_rows=1")
	segs := 1
	for !lines[len(lines)-1].Done {
		last := lines[len(lines)-1]
		if !last.Paused || last.Reason != "budget-rows" {
			t.Fatalf("segment ended oddly: %+v", last)
		}
		lines = getRLines(t, ts.URL+"/resume?cursor="+url.QueryEscape(last.Cursor)+"&max_rows=1")
		if segs++; segs > 50 {
			t.Fatal("row-budgeted lineage did not terminate")
		}
	}
	if done := lines[len(lines)-1]; done.Answers != oracle {
		t.Fatalf("row-budgeted lineage answered %d, want %d", done.Answers, oracle)
	}

	// Bad budget values are 400s.
	for _, bad := range []string{"&max_steps=x", "&max_rows=-1", "&deadline=soon"} {
		resp, err := http.Get(queryURL(ts.URL, qs) + bad)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("budget %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
