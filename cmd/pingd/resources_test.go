package main

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ping/internal/obs"
	"ping/internal/sparql"
	"ping/internal/workload"
)

// TestResourceLedgerFlowsToResourcesAndEvents runs queries and checks
// the measured cost surfaces everywhere the tentpole promises: the
// /resources endpoint, the wide-event stream, and — replayed through
// workload.ReplayEvents — the offline profiler, with the ledger fields
// agreeing between live and replayed aggregates.
func TestResourceLedgerFlowsToResourcesAndEvents(t *testing.T) {
	eventBuf := &lockedBuffer{}
	reg := obs.NewRegistry()
	events := obs.NewEventLog(eventBuf, 64, reg)
	srv, ts, _ := newTestServer(t, serverConfig{Metrics: reg, Events: events, RowLimit: 5})

	const qs = `SELECT * WHERE { ?x <p0> ?y }`
	for i := 0; i < 3; i++ {
		resp, err := http.Get(queryURL(ts.URL, qs) + "&bindings=1")
		if err != nil {
			t.Fatal(err)
		}
		lines := readObsLines(t, resp.Body)
		resp.Body.Close()
		if last := lines[len(lines)-1]; !last.Done {
			t.Fatalf("query did not complete: %+v", last)
		}
	}

	// /resources serves the ledger aggregates.
	resp, err := http.Get(ts.URL + "/resources?top=5")
	if err != nil {
		t.Fatal(err)
	}
	var doc resourcesResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(doc.Top) == 0 {
		t.Fatal("/resources returned no fingerprints")
	}
	top := doc.Top[0]
	if top.Count != 3 {
		t.Errorf("top consumer count = %d, want 3", top.Count)
	}
	if top.TaskSeconds <= 0 {
		t.Errorf("task_seconds = %v, want > 0 (dataflow tasks ran)", top.TaskSeconds)
	}
	if top.RowsLoaded <= 0 {
		t.Errorf("rows_loaded = %d, want > 0", top.RowsLoaded)
	}
	if top.DictDecodes <= 0 {
		t.Errorf("dict_decodes = %d, want > 0 (bindings were decoded)", top.DictDecodes)
	}
	if top.CacheBytesPinned <= 0 {
		t.Errorf("cache_bytes_pinned = %d, want > 0", top.CacheBytesPinned)
	}
	if top.PeakRelationRows <= 0 {
		t.Errorf("peak_relation_rows = %d, want > 0", top.PeakRelationRows)
	}

	// ?top= validation and NDJSON mirror the /workload contract.
	if r, _ := http.Get(ts.URL + "/resources?top=bogus"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad top: status %d, want 400", r.StatusCode)
	}
	if r, err := http.Get(ts.URL + "/resources?format=ndjson"); err != nil || r.Header.Get("Content-Type") != "application/x-ndjson" {
		t.Errorf("ndjson format: %v %q", err, r.Header.Get("Content-Type"))
	}

	// Wide events carry the ledger, and replay reconstructs the same
	// aggregates offline.
	if err := events.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadWideEvents(strings.NewReader(eventBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d wide events, want 3", len(evs))
	}
	for _, ev := range evs {
		if ev.TaskMs <= 0 || ev.RowsLoaded <= 0 || ev.DictDecodes <= 0 || ev.CacheBytesPinned <= 0 || ev.PeakRelationRows <= 0 {
			t.Fatalf("wide event missing ledger fields: %+v", ev)
		}
	}
	replayed, n, err := workload.ReplayEvents(strings.NewReader(eventBuf.String()), workload.Options{Metrics: obs.NewRegistry()})
	if err != nil || n != 3 {
		t.Fatalf("replay: %v (%d events)", err, n)
	}
	live := srv.profiler.TopByCost(1)[0]
	rep := replayed.TopByCost(1)[0]
	if rep.Fingerprint != live.Fingerprint {
		t.Fatalf("replayed top fp %s, live %s", rep.Fingerprint, live.Fingerprint)
	}
	if rep.RowsLoaded != live.RowsLoaded || rep.BytesDecoded != live.BytesDecoded ||
		rep.StorageBytesRead != live.StorageBytesRead || rep.DictDecodes != live.DictDecodes ||
		rep.CacheBytesPinned != live.CacheBytesPinned || rep.PeakRelationRows != live.PeakRelationRows {
		t.Errorf("replayed ledger fields diverge:\nlive %+v\nrep  %+v", live, rep)
	}
	if math.Abs(rep.TaskSeconds-live.TaskSeconds) > 1e-6 {
		t.Errorf("replayed task_seconds %v, live %v", rep.TaskSeconds, live.TaskSeconds)
	}
}

// TestResourcesReportsProfileCPU checks /resources serves exactly the
// per-fingerprint CPU the profile parser fed in — the endpoint and a
// consumer re-aggregating the captured profiles see the same numbers.
func TestResourcesReportsProfileCPU(t *testing.T) {
	srv, ts, _ := newTestServer(t, serverConfig{})

	const qs = `SELECT * WHERE { ?x <p0> ?y }`
	resp, err := http.Get(queryURL(ts.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	readObsLines(t, resp.Body)
	resp.Body.Close()

	q, _ := sparql.Parse(qs)
	fp := workload.FingerprintCanonical(workload.Canonical(q))
	srv.profiler.AddProfileCPU(fp, 123*time.Millisecond)

	r2, err := http.Get(ts.URL + "/resources?top=1")
	if err != nil {
		t.Fatal(err)
	}
	var doc resourcesResponse
	if err := json.NewDecoder(r2.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if len(doc.Top) == 0 || doc.Top[0].Fingerprint != fp {
		t.Fatalf("profile-CPU fingerprint not ranked first: %+v", doc.Top)
	}
	if got := doc.Top[0].ProfileCPUSeconds; math.Abs(got-0.123) > 1e-9 {
		t.Errorf("profile_cpu_seconds = %v, want 0.123", got)
	}
}

// TestCostAdmissionShedsMeasuredExpensiveQueries: once a fingerprint's
// measured cost is known and the inflight cost budget is full, further
// queries of that class get 429 with reason "cost"; unknown
// fingerprints still admit.
func TestCostAdmissionShedsMeasuredExpensiveQueries(t *testing.T) {
	srv, ts, _ := newTestServer(t, serverConfig{
		AdmissionCPU: 100 * time.Millisecond,
		MaxInflight:  4,
	})

	const qs = `SELECT * WHERE { ?x <p0> ?y }`
	// Establish the fingerprint (count=1), then declare it expensive.
	resp, err := http.Get(queryURL(ts.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	readObsLines(t, resp.Body)
	resp.Body.Close()
	q, _ := sparql.Parse(qs)
	fp := workload.FingerprintCanonical(workload.Canonical(q))
	srv.profiler.AddProfileCPU(fp, time.Second) // 1s per run >> 100ms budget

	if est := srv.profiler.EstimateCost(fp); est <= srv.cfg.AdmissionCPU {
		t.Fatalf("estimate %v not over budget %v", est, srv.cfg.AdmissionCPU)
	}

	// Hold one instance of the class inflight, stalled at its first step.
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce bool
	srv.setStepHook(func() {
		if !hookOnce {
			hookOnce = true
			close(entered)
			<-release
		}
	})
	defer srv.setStepHook(nil)
	errc := make(chan error, 1)
	go func() {
		r, err := http.Get(queryURL(ts.URL, qs))
		if err == nil {
			readObsLines(t, r.Body)
			r.Body.Close()
		}
		errc <- err
	}()
	<-entered

	// Second instance: the measured class would double-book the budget.
	r2, err := http.Get(queryURL(ts.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	body := map[string]any{}
	_ = json.NewDecoder(r2.Body).Decode(&body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expensive class admitted: status %d (%v)", r2.StatusCode, body)
	}
	if body["reason"] != "cost" {
		t.Errorf(`reject reason = %v, want "cost"`, body["reason"])
	}
	if srv.costRejected.Value() != 1 {
		t.Errorf("pingd_cost_rejected_total = %d, want 1", srv.costRejected.Value())
	}

	// A different (unmeasured) fingerprint admits regardless.
	r3, err := http.Get(queryURL(ts.URL, `SELECT * WHERE { ?a <p1> ?b }`))
	if err != nil {
		t.Fatal(err)
	}
	readObsLines(t, r3.Body)
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("unknown fingerprint shed: status %d", r3.StatusCode)
	}

	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	// With the class no longer inflight, it admits again (cur == 0 always
	// admits: the budget sheds concurrency, not the class outright).
	r4, err := http.Get(queryURL(ts.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	readObsLines(t, r4.Body)
	r4.Body.Close()
	if r4.StatusCode != http.StatusOK {
		t.Fatalf("lone over-budget query rejected: status %d", r4.StatusCode)
	}
}

// TestAdminSplitListeners: with splitHandlers the query surface and the
// introspection surface are disjoint — /resources, /traces and the obs
// fallback (/metrics) answer only on the admin mux.
func TestAdminSplitListeners(t *testing.T) {
	srv, _, _ := newTestServer(t, serverConfig{Trace: true})
	public, admin := srv.splitHandlers(nil)
	pub := httptest.NewServer(public)
	adm := httptest.NewServer(admin)
	t.Cleanup(pub.Close)
	t.Cleanup(adm.Close)

	status := func(base, path string) int {
		t.Helper()
		r, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		return r.StatusCode
	}

	if s := status(pub.URL, "/query?q="+"SELECT%20*%20WHERE%20%7B%20%3Fx%20%3Cp0%3E%20%3Fy%20%7D"); s != http.StatusOK {
		t.Errorf("public /query = %d, want 200", s)
	}
	for _, path := range []string{"/resources", "/traces", "/metrics"} {
		if s := status(pub.URL, path); s != http.StatusNotFound {
			t.Errorf("public %s = %d, want 404 (admin-only)", path, s)
		}
	}
	if s := status(adm.URL, "/resources"); s != http.StatusOK {
		t.Errorf("admin /resources = %d, want 200", s)
	}
	if s := status(adm.URL, "/traces"); s != http.StatusOK {
		t.Errorf("admin /traces = %d, want 200", s)
	}
	if s := status(adm.URL, "/metrics"); s != http.StatusOK {
		t.Errorf("admin /metrics = %d, want 200", s)
	}
}

// TestDashboardEscapesHostileStrings is the XSS regression for the
// dashboard: query text (attacker-controlled) is interpolated into
// HTML attribute values (title="..."), so the client-side esc() must
// neutralize quotes, not just angle brackets.
func TestDashboardEscapesHostileStrings(t *testing.T) {
	_, ts, _ := newTestServer(t, serverConfig{})

	// A parseable query whose literal carries an attribute-breakout
	// payload: a double quote closes title="...", then an event handler.
	hostile := `SELECT * WHERE { ?x <p0> "x\" onmouseover='alert(1)'<img src=x>" }`
	resp, err := http.Get(queryURL(ts.URL, hostile))
	if err != nil {
		t.Fatal(err)
	}
	readObsLines(t, resp.Body)
	resp.Body.Close()

	// The hostile text really reaches the dashboard's data source.
	wl, err := http.Get(ts.URL + "/workload")
	if err != nil {
		t.Fatal(err)
	}
	var doc workloadResponse
	if err := json.NewDecoder(wl.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	wl.Body.Close()
	found := false
	for _, f := range doc.Fingerprints {
		if strings.Contains(f.Canonical, "onmouseover") {
			found = true
		}
	}
	if !found {
		t.Fatal("hostile query text never reached the workload snapshot — test is vacuous")
	}

	// The served dashboard's escaper neutralizes attribute breakouts:
	// both quote characters must be rewritten, and every attribute
	// interpolation must go through esc().
	page, err := http.Get(ts.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(page.Body)
	if err != nil {
		t.Fatal(err)
	}
	page.Body.Close()
	html := string(raw)
	for _, want := range []string{`&quot;`, `&#39;`} {
		if !strings.Contains(html, want) {
			t.Errorf("dashboard esc() does not emit %s — attribute injection is back", want)
		}
	}
	for i := 0; ; {
		j := strings.Index(html[i:], `title="' + `)
		if j < 0 {
			break
		}
		i += j + len(`title="' + `)
		if !strings.HasPrefix(html[i:], "esc(") {
			t.Errorf("unescaped interpolation into a title attribute at offset %d: %q", i, html[i:min(i+40, len(html))])
		}
	}
}
