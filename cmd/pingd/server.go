package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ping/internal/cursor"
	"ping/internal/dataflow"
	"ping/internal/dfs"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/obs/prof"
	"ping/internal/obs/slo"
	"ping/internal/ping"
	"ping/internal/rdf"
	"ping/internal/sparql"
	"ping/internal/workload"
)

// serverConfig carries the daemon's tunables.
type serverConfig struct {
	// Workers is the dataflow pool size of each query.
	Workers int
	// MaxInflight bounds concurrently executing queries; MaxQueue bounds
	// how many more may wait for a slot. Beyond that /query returns 429.
	MaxInflight int
	MaxQueue    int
	// QueryTimeout is the per-query deadline, queue wait included
	// (0 = none). A run that times out mid-flight parks as a cursor, so
	// the work already done stays resumable.
	QueryTimeout time.Duration
	// RowLimit caps the bindings included per step line when the client
	// asks for them (0 = never include bindings).
	RowLimit int
	// Strategy, FailurePolicy and UseBloomPruning configure query
	// processing exactly as in pingquery.
	Strategy        ping.SliceStrategy
	FailurePolicy   ping.FailurePolicy
	UseBloomPruning bool
	// Persist, when non-nil, is the on-disk file system whose manifest
	// (and the dictionary) is saved after each successful update.
	Persist *dfs.FS
	// CursorFS is the durable layer for hibernated cursors (default:
	// Persist). Nil with nil Persist keeps cursors memory-only.
	CursorFS *dfs.FS
	// CursorTTL bounds how long a paused query stays resumable (and how
	// long its epoch lease pins the snapshot); CursorIdleEvict is the
	// in-memory idle time before a cursor hibernates to CursorFS;
	// MaxCursors caps the cursor table. Zero = cursor.Config defaults.
	CursorTTL       time.Duration
	CursorIdleEvict time.Duration
	MaxCursors      int
	// Metrics receives the daemon's and the processors' series
	// (nil: obs.Default).
	Metrics *obs.Registry
	// SlowLog, when non-nil, receives a structured NDJSON record for
	// every query slower than its threshold.
	SlowLog *workload.SlowLog
	// MaxFingerprints bounds the workload profiler store (<=0: default).
	MaxFingerprints int
	// Trace retains per-query trace trees in a bounded ring served at
	// /traces. TraceSample keeps 1 in N queries (<=1: all); TraceBuffer
	// is the ring capacity (<=0: 64). A request carrying a valid
	// traceparent header is always traced, regardless of sampling.
	Trace       bool
	TraceSample int
	TraceBuffer int
	// Events, when non-nil, receives one wide query event per completed
	// lineage (the canonical per-query telemetry record).
	Events *obs.EventLog
	// SpanSink, when non-nil, receives every finished query trace as
	// flattened span NDJSON (one line per span).
	SpanSink *obs.AsyncSink
	// SLO evaluates the daemon's service-level objectives over the
	// lineage stream (nil: an engine with the default objectives).
	SLO *slo.Engine
	// AdviseTop is how many hot fingerprints the online layout advisor
	// optimizes for (<=0: the advisor default).
	AdviseTop int
	// AdmissionCPU, when positive, turns on cost-based admission: the
	// estimated CPU cost of all inflight queries (per-fingerprint
	// measurement from the resource ledger and captured profiles) may
	// not exceed this many CPU-seconds; excess queries get 429. Unknown
	// fingerprints always admit — shedding is by *measured* cost.
	AdmissionCPU time.Duration
}

// defaultObjectives are the SLOs pingd evaluates when the caller does
// not supply an engine: latency, the paper's two progressiveness
// signals (steps to first answer, coverage at budget exhaustion), and
// availability.
func defaultObjectives() []*slo.Objective {
	return []*slo.Objective{
		slo.Latency("latency", 0.99, 2*time.Second),
		slo.FirstAnswerSteps("first-answer", 0.95, 3),
		slo.CoverageAtBudget("coverage-at-budget", 0.95, 0.5),
		slo.Availability("availability", 0.999),
	}
}

// server is the pingd HTTP surface over one epoch store. Queries pin
// snapshots (each request builds a cheap processor with its own dataflow
// pool, so cancellation never crosses requests); updates go through the
// single snapshot-mode maintainer guarded by maintMu. Interrupted or
// budget-bounded queries park as durable cursors in the cursor manager
// and resume via /resume.
type server struct {
	store *hpart.Store
	cfg   serverConfig

	// sem holds one token per executing query; queue holds one token per
	// admitted-but-waiting query.
	sem   chan struct{}
	queue chan struct{}

	maintMu sync.Mutex
	maint   *hpart.Maintainer

	reg      *obs.Registry
	rejected *obs.Counter
	updates  *obs.Counter
	decodes  *obs.Counter

	// inflightCost tracks the summed estimated CPU nanoseconds of
	// admitted queries when cost-based admission (AdmissionCPU) is on.
	inflightCost atomic.Int64
	costRejected *obs.Counter

	profiler *workload.Profiler
	slow     *workload.SlowLog
	sampler  *obs.Sampler
	traces   *obs.SpanBuffer
	events   *obs.EventLog
	spans    *obs.AsyncSink
	slo      *slo.Engine

	// adviser caches the latest layout recommendation served at
	// /advisor and refreshed by the -advise-interval loop.
	adviser adviserState

	cursors *cursor.Manager
	// draining flips on SIGTERM: in-flight runs pause at their next step
	// boundary and park as cursors instead of running to completion.
	draining atomic.Bool

	// stepHook, when set (tests only), runs after each delivered step
	// line, with the response already flushed. Set and cleared via
	// setStepHook; handlers read it through the atomic slot.
	stepHook atomic.Pointer[func()]
}

// setStepHook installs (or, with nil, removes) the per-step test hook.
func (s *server) setStepHook(fn func()) {
	if fn == nil {
		s.stepHook.Store(nil)
		return
	}
	s.stepHook.Store(&fn)
}

func newServer(store *hpart.Store, cfg serverConfig) *server {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	reg.Describe("pingd_rejected_total", "queries rejected by admission control (HTTP 429)")
	reg.Describe("pingd_cost_rejected_total", "queries shed by cost-based admission (measured CPU over budget)")
	reg.Describe("pingd_updates_total", "update batches applied and published as new epochs")
	reg.Describe("ping_dict_decodes_total", "integer IDs decoded to terms at NDJSON emission")
	cursorFS := cfg.CursorFS
	if cursorFS == nil {
		cursorFS = cfg.Persist
	}
	var persist func() error
	if cursorFS != nil && cursorFS == cfg.Persist {
		// Hibernated records only survive a restart if the manifest
		// knows about them.
		persist = cursorFS.SaveManifest
	}
	s := &server{
		store:        store,
		cfg:          cfg,
		sem:          make(chan struct{}, cfg.MaxInflight),
		queue:        make(chan struct{}, cfg.MaxQueue),
		reg:          reg,
		rejected:     reg.Counter("pingd_rejected_total", nil),
		costRejected: reg.Counter("pingd_cost_rejected_total", nil),
		updates:      reg.Counter("pingd_updates_total", nil),
		decodes:      reg.Counter("ping_dict_decodes_total", nil),
		profiler:     workload.NewProfiler(workload.Options{Metrics: reg, MaxFingerprints: cfg.MaxFingerprints}),
		slow:         cfg.SlowLog,
		events:       cfg.Events,
		spans:        cfg.SpanSink,
		slo:          cfg.SLO,
		cursors: cursor.New(cursor.Config{
			FS:         cursorFS,
			TTL:        cfg.CursorTTL,
			IdleEvict:  cfg.CursorIdleEvict,
			MaxCursors: cfg.MaxCursors,
			Store:      store,
			Metrics:    reg,
			Persist:    persist,
		}),
	}
	if cfg.Trace {
		s.sampler = obs.NewSampler(cfg.TraceSample)
		s.traces = obs.NewSpanBuffer(cfg.TraceBuffer)
	}
	if s.slo == nil {
		s.slo = slo.NewEngine(reg, defaultObjectives()...)
	}
	return s
}

// beginDrain makes every in-flight query pause at its next step
// boundary and park as a cursor. Called on SIGTERM before the HTTP
// server drains.
func (s *server) beginDrain() { s.draining.Store(true) }

// startSweeper runs the cursor idle-eviction/TTL sweep on a ticker;
// the returned function stops it.
func (s *server) startSweeper(interval time.Duration) func() {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.cursors.Sweep()
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}

// route is one mounted endpoint with the Content-Type its successful
// responses carry. The table drives both handler() and the endpoint
// regression test, so a route cannot be mounted without declaring its
// content type (or tested against a stale list).
type route struct {
	path        string
	contentType string
	// jsonBody marks routes whose plain-GET 200 body is one JSON
	// document (the walk test decodes it).
	jsonBody bool
	// admin marks introspection routes that move to the -admin-addr
	// listener when the operator splits the surface (splitHandlers).
	// On the default single listener they serve alongside everything
	// else, so admin routes change nothing unless the split is on.
	admin bool
	h     http.HandlerFunc
}

// routes lists every endpoint pingd serves (beyond the obs fallback).
func (s *server) routes() []route {
	return []route{
		{"/query", "application/x-ndjson", false, false, s.handleQuery},
		{"/resume", "application/x-ndjson", false, false, s.handleResume},
		{"/update", "application/json", true, false, s.handleUpdate},
		{"/stats", "application/json", true, false, s.handleStats},
		{"/explain", "application/json", true, false, s.handleExplain},
		{"/workload", "application/json", true, false, s.handleWorkload},
		{"/slo", "application/json", true, false, s.handleSLO},
		{"/advisor", "application/json", true, false, s.handleAdvisor},
		{"/traces", "application/json", true, true, s.handleTraces},
		{"/resources", "application/json", true, true, s.handleResources},
		{"/dashboard", "text/html; charset=utf-8", false, false, s.handleDashboard},
	}
}

// handler mounts the daemon's routes on one mux. The obs introspection
// mux (/metrics, /debug/vars, pprof) serves everything not claimed here.
func (s *server) handler(logf func(format string, args ...any)) http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		mux.Handle(rt.path, obs.Instrument(s.reg, rt.path, logf, rt.h))
	}
	mux.Handle("/", obs.Handler(s.reg))
	return mux
}

// splitHandlers mounts the query surface and the admin surface on two
// muxes for the -admin-addr production posture: the main listener keeps
// serving queries but stops exposing metrics, pprof, traces and the
// resource ledger; those move (with the obs fallback) behind the admin
// listener, which is typically bound to loopback or an internal
// interface.
func (s *server) splitHandlers(logf func(format string, args ...any)) (public, admin http.Handler) {
	mainMux := http.NewServeMux()
	adminMux := http.NewServeMux()
	for _, rt := range s.routes() {
		target := mainMux
		if rt.admin {
			target = adminMux
		}
		target.Handle(rt.path, obs.Instrument(s.reg, rt.path, logf, rt.h))
	}
	adminMux.Handle("/", obs.Handler(s.reg))
	return mainMux, adminMux
}

// admit applies the admission policy: run now if an execution slot is
// free, otherwise wait in the bounded queue. It returns a release
// function and 0, or nil and the HTTP status to reject with.
func (s *server) admit(ctx context.Context) (func(), int) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0
	default:
	}
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, http.StatusTooManyRequests
	}
	defer func() { <-s.queue }()
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0
	case <-ctx.Done():
		// Deadline or disconnect while queued.
		return nil, http.StatusServiceUnavailable
	}
}

// admitCost reserves fp's estimated CPU cost against the configured
// inflight CPU budget (cost-based admission, AdmissionCPU). The
// estimate is measurement, not planning: profile-attributed CPU per
// run when captured profiles have seen the fingerprint, ledger task
// seconds otherwise. Unknown fingerprints (estimate 0) always admit —
// something must run for cost to be measured. The returned release
// gives the reservation back; ok=false means the query should be shed.
func (s *server) admitCost(fp string) (release func(), ok bool) {
	budget := int64(s.cfg.AdmissionCPU)
	if budget <= 0 {
		return func() {}, true
	}
	est := int64(s.profiler.EstimateCost(fp))
	if est <= 0 {
		return func() {}, true
	}
	for {
		cur := s.inflightCost.Load()
		// A lone over-budget query still admits (cur==0): the budget sheds
		// concurrency, it is not a per-query veto.
		if cur > 0 && cur+est > budget {
			return nil, false
		}
		if s.inflightCost.CompareAndSwap(cur, cur+est) {
			return func() { s.inflightCost.Add(-est) }, true
		}
	}
}

// rejectCost answers a cost-admission shed: 429 with a machine-readable
// reason so clients can distinguish "too many queries" from "this
// fingerprint is measured too expensive right now".
func (s *server) rejectCost(w http.ResponseWriter, fp string) {
	s.rejected.Inc()
	s.costRejected.Inc()
	w.Header().Set("Retry-After", "1")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error":           "overloaded",
		"reason":          "cost",
		"fingerprint":     fp,
		"estimated_cpu_s": s.profiler.EstimateCost(fp).Seconds(),
	})
}

// reject answers an admission failure. Overload (429) carries a
// Retry-After hint and a JSON body so clients can back off without
// sniffing prose: {"error":"overloaded","queue":N}.
func (s *server) reject(w http.ResponseWriter, code int) {
	s.rejected.Inc()
	if code != http.StatusTooManyRequests {
		http.Error(w, http.StatusText(code), code)
		return
	}
	queued := len(s.queue)
	// Every queued query must wait for an execution slot; assume about a
	// second per slot turn as the floor for the client's next attempt.
	retry := 1 + queued/max(1, s.cfg.MaxInflight)
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": "overloaded", "queue": queued})
}

// parseBudget reads the client's ?max_steps=, ?max_rows= and ?deadline=
// budget bounds. A budgeted run executes the longest schedule prefix
// whose predicted loaded rows fit (the predicted-coverage-maximal
// prefix) and then pauses with a resumable cursor instead of erroring.
func parseBudget(r *http.Request) (ping.Budget, error) {
	var b ping.Budget
	q := r.URL.Query()
	if v := q.Get("max_steps"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return b, fmt.Errorf("bad max_steps %q", v)
		}
		b.MaxSteps = n
	}
	if v := q.Get("max_rows"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return b, fmt.Errorf("bad max_rows %q", v)
		}
		b.MaxLoadedRows = n
	}
	if v := q.Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return b, fmt.Errorf("bad deadline %q", v)
		}
		b.Deadline = d
	}
	return b, nil
}

// stepLine is one NDJSON line of a streaming query response: the state
// of the progressive answer after one slice step. Epoch is constant
// across all lines of one response — the run is pinned to a snapshot.
// Cursor is the resume token as of this step: whatever line the client
// saw last, it can hand that token to /resume.
type stepLine struct {
	Step        int                 `json:"step"`
	MaxLevel    int                 `json:"max_level"`
	Epoch       uint64              `json:"epoch"`
	Answers     int                 `json:"answers"`
	NewAnswers  int                 `json:"new_answers"`
	RowsLoaded  int64               `json:"rows_loaded_cum"`
	ElapsedMS   float64             `json:"elapsed_ms"`
	Cursor      string              `json:"cursor,omitempty"`
	Restarted   bool                `json:"restarted,omitempty"`
	Degraded    bool                `json:"degraded,omitempty"`
	MissingSubP int                 `json:"missing_subparts,omitempty"`
	Bindings    []map[string]string `json:"bindings,omitempty"`
}

// doneLine terminates a streaming query response.
type doneLine struct {
	Done      bool    `json:"done"`
	Steps     int     `json:"steps"`
	Answers   int     `json:"answers"`
	Epoch     uint64  `json:"epoch"`
	Exact     bool    `json:"exact"`
	Segments  int     `json:"segments,omitempty"`
	Restarted bool    `json:"restarted,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// pausedLine terminates a segment that stopped before the final step:
// the run is parked as a cursor and Cursor resumes it.
type pausedLine struct {
	Paused       bool    `json:"paused"`
	Reason       string  `json:"reason"`
	Cursor       string  `json:"cursor"`
	Steps        int     `json:"steps"`
	PlannedSteps int     `json:"planned_steps"`
	Answers      int     `json:"answers"`
	Epoch        uint64  `json:"epoch"`
	Restarted    bool    `json:"restarted,omitempty"`
	ElapsedMS    float64 `json:"elapsed_ms"`
}

// errLine reports a failure after streaming has started (the status
// line is long gone by then).
type errLine struct {
	Error string `json:"error"`
}

// segment is the handler-side state of one run segment of a query
// lineage: the NDJSON emitter plus everything the pause/complete paths
// need (latest step, latest checkpoint, per-step counters).
type segment struct {
	s            *server
	enc          *json.Encoder
	flusher      http.Flusher
	id           [16]byte
	dict         *rdf.DictView
	wantBindings bool
	restarted    bool

	steps       int
	last        ping.StepResult
	lastCp      *ping.Checkpoint
	stepMs      []float64
	stepAnswers []int
	subParts    int
	cacheHits   int64
	cacheMisses int64

	// led is the segment's resource ledger; the handler attaches it to
	// the run context so every layer below (ping, engine, dataflow, dfs)
	// accounts into it. Nil-safe: all Ledger methods accept nil.
	led *prof.Ledger
}

func (s *server) newSegment(w http.ResponseWriter, id [16]byte, wantBindings bool) *segment {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)
	return &segment{
		s:            s,
		enc:          json.NewEncoder(w),
		flusher:      flusher,
		id:           id,
		dict:         s.store.Current().DictView(),
		wantBindings: wantBindings,
	}
}

// term decodes one binding ID through the segment's dictionary snapshot.
// The snapshot is taken at segment creation; if the run pinned a newer
// epoch (published between segment setup and the pin), its answers can
// carry IDs past the snapshot, so refresh from the current layout —
// the dictionary is append-only, so the newer view covers every older ID.
func (g *segment) term(id rdf.ID) string {
	if int(id) >= g.dict.Len() {
		g.dict = g.s.store.Current().DictView()
	}
	return g.dict.TermString(id)
}

func (g *segment) emit(v any) {
	_ = g.enc.Encode(v)
	if g.flusher != nil {
		g.flusher.Flush()
	}
}

// step is the PQA callback: record the step, stream its line (stamped
// with a resume token), and keep going unless the client is gone or the
// server is draining.
func (g *segment) step(ctx context.Context) func(ping.StepResult, *ping.Checkpoint) bool {
	return func(st ping.StepResult, cp *ping.Checkpoint) bool {
		g.steps++
		g.last = st
		g.lastCp = cp
		g.stepMs = append(g.stepMs, float64(st.Elapsed.Microseconds())/1e3)
		g.stepAnswers = append(g.stepAnswers, st.Answers.Card())
		g.subParts += len(st.NewSubParts)
		g.cacheHits += st.CacheHits
		g.cacheMisses += st.CacheMisses
		line := stepLine{
			Step:        st.Step,
			MaxLevel:    st.MaxLevel,
			Epoch:       st.Epoch,
			Answers:     st.Answers.Card(),
			NewAnswers:  st.NewAnswers,
			RowsLoaded:  st.RowsLoadedCum,
			ElapsedMS:   float64(st.ElapsedCum.Microseconds()) / 1e3,
			Cursor:      cursor.Token(g.id, st.Step),
			Restarted:   g.restarted,
			Degraded:    st.Degraded,
			MissingSubP: len(st.MissingSubParts),
		}
		if g.wantBindings {
			for i, row := range st.Answers.BindingMaps() {
				if i >= g.s.cfg.RowLimit {
					break
				}
				m := make(map[string]string, len(row))
				for v, id := range row {
					m[v] = g.term(id)
				}
				g.s.decodes.Add(int64(len(row)))
				g.led.AddDictDecodes(int64(len(row)))
				line.Bindings = append(line.Bindings, m)
			}
		}
		g.emit(line)
		if hook := g.s.stepHook.Load(); hook != nil {
			(*hook)()
		}
		return ctx.Err() == nil && !g.s.draining.Load()
	}
}

// pauseReason maps a segment outcome to the reason string on the paused
// line.
func (g *segment) pauseReason(ctx context.Context, st *ping.RunStatus) string {
	if st.Reason != ping.StopCallback {
		return string(st.Reason)
	}
	if g.s.draining.Load() {
		return "draining"
	}
	if ctx.Err() != nil {
		return "disconnected"
	}
	return string(ping.StopCallback)
}

// lineageMeta carries the completion context lineageObservation cannot
// recover from the segment alone: the trace identity, the budget the
// client declared, the snapshot signature, and — for resumed lineages —
// which cursor they came through and where the last budget pause left
// them.
type lineageMeta struct {
	traceID   string
	layoutSig uint64
	budget    ping.Budget
	// resumedFrom identifies the cursor a multi-segment lineage resumed
	// through ("" for single-segment runs).
	resumedFrom string
	// budgetExhaustedStep is the 1-based step the client's (latest)
	// budget ran out at — the point whose coverage the coverage-at-budget
	// SLO measures. 0 when the lineage never ran under a step budget.
	budgetExhaustedStep int
}

// maybeTrace roots a query span for the request: always when the client
// propagated a traceparent header (the trace already exists — refusing
// to continue it would orphan the client's span), otherwise when
// tracing is on and head sampling picks the request. It returns the
// (possibly span-carrying) context, the hex trace ID ("" when
// untraced), and a finish func that ends the span, retains it in the
// /traces ring and exports it to the span sink.
func (s *server) maybeTrace(ctx context.Context, name, fp, text string) (context.Context, string, func()) {
	remote, hasRemote := obs.RemoteFromContext(ctx)
	if !hasRemote && (s.traces == nil || !s.sampler.Sample()) {
		return ctx, "", func() {}
	}
	var qspan *obs.Span
	if hasRemote {
		ctx, qspan = obs.NewTraceFrom(ctx, name, remote)
	} else {
		ctx, qspan = obs.NewTrace(ctx, name)
	}
	qspan.SetAttr("fingerprint", fp)
	qspan.SetAttr("query", text)
	return ctx, qspan.TraceID().String(), func() {
		qspan.End()
		if s.traces != nil {
			s.traces.Add(qspan)
		}
		s.exportTrace(qspan)
	}
}

// exportTrace writes a finished trace to the span sink, one flattened
// span per NDJSON line.
func (s *server) exportTrace(root *obs.Span) {
	if s.spans == nil {
		return
	}
	for _, rec := range obs.Flatten(root) {
		if line, err := json.Marshal(rec); err == nil {
			s.spans.Emit(line)
		}
	}
}

// lineageObservation folds a COMPLETED lineage into the workload
// profiler, the slow-query log, the wide-event stream and the SLO
// engine — called exactly once per lineage, with the latency summed
// across its segments.
func (s *server) lineageObservation(fp, canonical, shape, text string, latency time.Duration, segments int, stepAnswers []int, g *segment, runErr error, meta lineageMeta) {
	obsv := workload.Observation{
		Latency:  latency,
		Steps:    len(stepAnswers),
		Segments: segments,
		Error:    runErr != nil,
	}
	var sq workload.SlowQuery
	if len(stepAnswers) > 0 && g.steps > 0 {
		final := g.last.Answers.Card()
		obsv.Answers = final
		obsv.Epoch = g.last.Epoch
		obsv.Degraded = g.last.Degraded
		obsv.Coverage = make([]float64, len(stepAnswers))
		for i, n := range stepAnswers {
			if final > 0 {
				obsv.Coverage[i] = float64(n) / float64(final)
			} else {
				obsv.Coverage[i] = 1
			}
			if obsv.StepsToFirstAnswer == 0 && n > 0 {
				obsv.StepsToFirstAnswer = i + 1
			}
		}
		if obsv.StepsToFirstAnswer > 0 {
			obsv.CoverageAtFirstAnswer = obsv.Coverage[obsv.StepsToFirstAnswer-1]
		}
		sq.Plan = &workload.PlanSummary{
			Strategy:    s.cfg.Strategy.String(),
			Steps:       len(stepAnswers),
			SubParts:    g.subParts,
			MaxLevel:    g.last.MaxLevel,
			Incremental: g.last.Incremental,
		}
	}
	// Stamp the measured cost of the run. The ledger covers the final
	// segment's execution (earlier segments of a resumed lineage already
	// accounted their work when they parked); RowsLoaded stays the
	// lineage-cumulative count the checkpoint carries.
	snap := g.led.Snapshot()
	obsv.TaskSeconds = float64(snap.TaskNanos) / 1e9
	obsv.BytesDecoded = snap.BytesDecoded
	obsv.StorageBytesRead = snap.StorageBytesRead
	obsv.CacheBytesPinned = snap.CacheBytesPinned
	obsv.DictDecodes = snap.DictDecodes
	obsv.PeakRelationRows = snap.PeakRelationRows
	if g.steps > 0 {
		obsv.RowsLoaded = g.last.RowsLoadedCum
	} else {
		obsv.RowsLoaded = snap.RowsLoaded
	}
	s.profiler.ObserveFingerprint(fp, canonical, shape, obsv)
	sq.Fingerprint = fp
	sq.Canonical = canonical
	sq.Query = text
	sq.Epoch = obsv.Epoch
	sq.StepMs = g.stepMs
	sq.Answers = obsv.Answers
	sq.Degraded = obsv.Degraded
	if runErr != nil {
		sq.Error = runErr.Error()
	}
	s.slow.Observe(sq, latency)

	ev := obs.WideEvent{
		TraceID:            meta.traceID,
		Fingerprint:        fp,
		Shape:              shape,
		Canonical:          canonical,
		Query:              text,
		Epoch:              obsv.Epoch,
		LayoutSig:          meta.layoutSig,
		Strategy:           s.cfg.Strategy.String(),
		BudgetSteps:        meta.budget.MaxSteps,
		BudgetRows:         meta.budget.MaxLoadedRows,
		BudgetDeadline:     float64(meta.budget.Deadline.Microseconds()) / 1e3,
		Segments:           segments,
		ResumedFrom:        meta.resumedFrom,
		Steps:              len(stepAnswers),
		StepMs:             g.stepMs,
		Coverage:           obsv.Coverage,
		StepsToFirstAnswer: obsv.StepsToFirstAnswer,
		CoverageAtFirst:    obsv.CoverageAtFirstAnswer,
		Answers:            obsv.Answers,
		LatencyMs:          float64(latency.Microseconds()) / 1e3,
	}
	ev.RowsLoaded = obsv.RowsLoaded
	ev.TaskMs = obsv.TaskSeconds * 1e3
	ev.BytesDecoded = snap.BytesDecoded
	ev.StorageBytesRead = snap.StorageBytesRead
	ev.CacheBytesPinned = snap.CacheBytesPinned
	ev.DictDecodes = snap.DictDecodes
	ev.PeakRelationRows = snap.PeakRelationRows
	if g.steps > 0 {
		ev.CacheHits = g.cacheHits
		ev.CacheMisses = g.cacheMisses
		ev.Incremental = g.last.Incremental
		ev.Degraded = g.last.Degraded
		ev.MissingSubParts = len(g.last.MissingSubParts)
	}
	if runErr != nil {
		ev.Error = runErr.Error()
	}
	s.events.Emit(ev)

	sev := slo.Event{
		Latency:            latency,
		StepsToFirstAnswer: obsv.StepsToFirstAnswer,
		Answers:            obsv.Answers,
		Err:                runErr != nil,
		Degraded:           obsv.Degraded,
	}
	if n := meta.budgetExhaustedStep; n > 0 && n <= len(obsv.Coverage) {
		sev.Budgeted = true
		sev.Coverage = obsv.Coverage[n-1]
	}
	s.slo.Observe(sev)
}

// handleQuery streams a progressive query: one JSON object per PQA step
// (each stamped with a resume cursor token), then a done or paused
// line. ?q= carries the SPARQL text (or the POST body does);
// ?bindings=1 includes up to RowLimit decoded rows per step;
// ?max_steps=/?max_rows=/?deadline= bound the segment, pausing with a
// cursor at the budget boundary.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	text := r.URL.Query().Get("q")
	if text == "" && r.Body != nil {
		body, _ := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		text = string(body)
	}
	if text == "" {
		http.Error(w, "missing query: pass ?q= or a request body", http.StatusBadRequest)
		return
	}
	q, err := sparql.Parse(text)
	if err != nil {
		http.Error(w, fmt.Sprintf("parse: %v", err), http.StatusBadRequest)
		return
	}
	budget, err := parseBudget(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	wantBindings := r.URL.Query().Get("bindings") == "1" && s.cfg.RowLimit > 0

	canonical := workload.Canonical(q)
	fp := workload.FingerprintCanonical(canonical)
	shape := sparql.Classify(q).String()

	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	// Cost-based admission first (it is cheap and does not queue), then
	// the slot/queue gate.
	costRelease, ok := s.admitCost(fp)
	if !ok {
		s.rejectCost(w, fp)
		return
	}
	defer costRelease()
	release, code := s.admit(ctx)
	if release == nil {
		s.reject(w, code)
		return
	}
	defer release()

	// Head-sampled tracing: the run's whole span tree (pqa → slice →
	// join) lands in the bounded ring served at /traces and the span
	// export sink. A propagated traceparent forces the trace on.
	ctx, traceID, finishTrace := s.maybeTrace(ctx, "query", fp, text)
	defer finishTrace()

	// Resource attribution: the ledger collects the run's measured cost
	// through every layer, and the fingerprint becomes a pprof label on
	// all of the run's goroutines so captured CPU profiles attribute
	// samples back to this query class.
	led := prof.NewLedger()
	ctx = prof.WithLedger(prof.WithQueryFP(ctx, fp), led)

	proc := s.newProcessor(s.cfg.Strategy, s.cfg.FailurePolicy)
	id, err := cursor.NewID()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Lease the snapshot up front: if this segment pauses, the cursor
	// inherits the lease and the resume continues on the exact same
	// snapshot (until the lease TTL reclaims it).
	lease, lay := s.cursors.Lease()

	g := s.newSegment(w, id, wantBindings)
	g.led = led
	meta := lineageMeta{traceID: traceID, layoutSig: lay.Signature(), budget: budget}
	start := time.Now()
	st, err := proc.PQARunOn(ctx, lay, q, budget, g.step(ctx))
	latency := time.Since(start)

	if err != nil {
		// Interrupted mid-step (client disconnect or timeout): the last
		// completed step's checkpoint still parks as a cursor, so the
		// client's tokens keep working.
		if ctx.Err() != nil && g.lastCp != nil {
			s.parkSegment(g, ctx, &ping.RunStatus{Reason: ping.StopCallback, Checkpoint: g.lastCp},
				fp, lease, latency, start)
			return
		}
		lease.Release()
		s.lineageObservation(fp, canonical, shape, text, latency, 1, g.stepAnswers, g, err, meta)
		g.emit(errLine{Error: err.Error()})
		return
	}
	if !st.Done {
		s.parkSegment(g, ctx, st, fp, lease, latency, start)
		return
	}
	lease.Release()
	if budget.MaxSteps > 0 {
		// The budget never bound the run (it completed); coverage at the
		// budget boundary is still the progressive contract's measure.
		meta.budgetExhaustedStep = min(budget.MaxSteps, g.steps)
	}
	s.lineageObservation(fp, canonical, shape, text, latency, 1, g.stepAnswers, g, nil, meta)
	done := doneLine{
		Done:      true,
		Steps:     g.steps,
		Epoch:     s.store.Epoch(),
		Exact:     g.steps > 0 && !g.last.Degraded,
		Segments:  1,
		ElapsedMS: float64(latency.Microseconds()) / 1e3,
	}
	if g.steps > 0 {
		done.Epoch = g.last.Epoch
		done.Answers = g.last.Answers.Card()
	} else {
		// Unsafe query: no slice can hold answers; the empty result is
		// exact.
		done.Exact = true
	}
	g.emit(done)
}

// parkSegment creates the cursor for a first segment that paused, and
// emits the paused line.
func (s *server) parkSegment(g *segment, ctx context.Context, st *ping.RunStatus, fp string, lease *hpart.Lease, latency time.Duration, start time.Time) {
	h, err := s.cursors.Create(&cursor.Record{
		ID:          g.id,
		Fingerprint: fp,
		LatencyNS:   int64(latency),
		StepAnswers: append([]int(nil), g.stepAnswers...),
		Checkpoint:  *st.Checkpoint,
	}, lease)
	if err != nil {
		g.emit(errLine{Error: err.Error()})
		return
	}
	g.emit(pausedLine{
		Paused:       true,
		Reason:       g.pauseReason(ctx, st),
		Cursor:       h.Token(st.Checkpoint.StepsDone),
		Steps:        st.Checkpoint.StepsDone,
		PlannedSteps: st.PlannedSteps,
		Answers:      st.Checkpoint.PrevAnswers,
		Epoch:        st.Checkpoint.Epoch,
		ElapsedMS:    float64(time.Since(start).Microseconds()) / 1e3,
	})
}

// newProcessor builds a per-request processor. Strategy and policy are
// parameters because a resume must mirror the checkpoint's, not the
// server's current defaults.
func (s *server) newProcessor(strategy ping.SliceStrategy, policy ping.FailurePolicy) *ping.Processor {
	return ping.NewProcessorStore(s.store, ping.Options{
		Context:         dataflow.NewContext(s.cfg.Workers),
		Strategy:        strategy,
		FailurePolicy:   policy,
		UseBloomPruning: s.cfg.UseBloomPruning,
		Metrics:         s.cfg.Metrics,
	})
}

// handleResume continues a paused query from its cursor: GET
// /resume?cursor=<token>. The response is the same NDJSON stream as
// /query, continuing at the step after the checkpoint. Budget
// parameters apply to the new segment; a segment that pauses again
// re-parks the cursor. If the cursor's snapshot lease expired AND the
// data changed, the run restarts from scratch on the current snapshot
// with restarted:true stamped on every line (answers stay sound — only
// the already-completed steps are lost).
func (s *server) handleResume(w http.ResponseWriter, r *http.Request) {
	token := r.URL.Query().Get("cursor")
	if token == "" {
		http.Error(w, "missing ?cursor=", http.StatusBadRequest)
		return
	}
	budget, err := parseBudget(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	wantBindings := r.URL.Query().Get("bindings") == "1" && s.cfg.RowLimit > 0

	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	release, code := s.admit(ctx)
	if release == nil {
		s.reject(w, code)
		return
	}
	defer release()

	h, err := s.cursors.Checkout(token)
	switch {
	case errors.Is(err, cursor.ErrBadToken):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, cursor.ErrNotFound):
		http.Error(w, "unknown or expired cursor", http.StatusNotFound)
		return
	case errors.Is(err, cursor.ErrBusy):
		http.Error(w, "cursor resume already in flight", http.StatusConflict)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	rec := h.Record()
	cp := h.Checkpoint()
	q, err := sparql.Parse(cp.Query)
	if err != nil {
		h.Abort()
		http.Error(w, fmt.Sprintf("cursor query: %v", err), http.StatusInternalServerError)
		return
	}
	canonical := workload.Canonical(q)
	shape := sparql.Classify(q).String()
	proc := s.newProcessor(cp.Strategy, cp.FailurePolicy)

	ctx, traceID, finishTrace := s.maybeTrace(ctx, "resume", rec.Fingerprint, cp.Query)
	defer finishTrace()

	// Resume segments account and label like first segments: the ledger
	// measures this segment's work, the fingerprint labels its CPU
	// samples (the prof layer stamps stage=resume).
	led := prof.NewLedger()
	ctx = prof.WithLedger(prof.WithQueryFP(ctx, rec.Fingerprint), led)

	// Prefer the snapshot the lineage is pinned to; fall back to the
	// current one (a fresh lease) when the lease died or never survived
	// a restart.
	var (
		lay      *hpart.Layout
		newLease *hpart.Lease
	)
	if l := h.Lease(); l != nil {
		if la, unpin, ok := l.Acquire(); ok {
			lay = la
			defer unpin()
		}
	}
	if lay == nil {
		newLease, lay = s.cursors.Lease()
	}

	g := s.newSegment(w, rec.ID, wantBindings)
	g.led = led
	g.restarted = rec.Restarted
	start := time.Now()
	st, err := proc.PQAResumeRun(ctx, lay, cp, budget, g.step(ctx))
	if errors.Is(err, ping.ErrSnapshotMismatch) {
		// The leased snapshot is gone and the data changed: restart from
		// scratch on the current snapshot, marked restarted.
		g.restarted = true
		g.steps, g.lastCp, g.stepMs, g.stepAnswers, g.subParts = 0, nil, nil, nil, 0
		st, err = proc.PQARunOn(ctx, lay, q, budget, g.step(ctx))
		rec.StepAnswers = nil // the old lineage's trajectory no longer applies
	}
	latency := time.Since(start)

	finishPause := func(pauseCp *ping.Checkpoint, reason string, planned int) {
		rec.StepAnswers = append(rec.StepAnswers, g.stepAnswers...)
		h.Pause(pauseCp, latency, g.restarted && !rec.Restarted, newLease)
		g.emit(pausedLine{
			Paused:       true,
			Reason:       reason,
			Cursor:       h.Token(pauseCp.StepsDone),
			Steps:        pauseCp.StepsDone,
			PlannedSteps: planned,
			Answers:      pauseCp.PrevAnswers,
			Epoch:        pauseCp.Epoch,
			Restarted:    g.restarted,
			ElapsedMS:    float64(latency.Microseconds()) / 1e3,
		})
	}

	if err != nil {
		if ctx.Err() != nil && g.lastCp != nil {
			finishPause(g.lastCp, "disconnected", 0)
			return
		}
		// The resume failed outright; the cursor keeps its old state for
		// another attempt.
		h.Abort()
		newLease.Release()
		g.emit(errLine{Error: err.Error()})
		return
	}
	if !st.Done {
		finishPause(st.Checkpoint, g.pauseReason(ctx, st), st.PlannedSteps)
		return
	}

	// Lineage complete: observe it exactly once, with totals.
	newLease.Release()
	lineageAnswers := append(append([]int(nil), rec.StepAnswers...), g.stepAnswers...)
	meta := lineageMeta{
		traceID:     traceID,
		layoutSig:   lay.Signature(),
		budget:      budget,
		resumedFrom: fmt.Sprintf("%x", rec.ID),
	}
	if n := len(rec.StepAnswers); n > 0 {
		// Coverage at budget exhaustion: where the lineage last paused is
		// where the client's budget ran out.
		meta.budgetExhaustedStep = n
	} else if budget.MaxSteps > 0 {
		meta.budgetExhaustedStep = min(budget.MaxSteps, len(lineageAnswers))
	}
	final := h.Complete(latency)
	s.lineageObservation(final.Fingerprint, canonical, shape, cp.Query,
		time.Duration(final.LatencyNS), final.Segments, lineageAnswers, g, nil, meta)
	done := doneLine{
		Done:      true,
		Steps:     st.StepsDone,
		Epoch:     g.last.Epoch,
		Exact:     !g.last.Degraded,
		Segments:  final.Segments,
		Restarted: final.Restarted || g.restarted,
		ElapsedMS: float64(latency.Microseconds()) / 1e3,
	}
	if g.steps > 0 {
		done.Answers = g.last.Answers.Card()
	}
	g.emit(done)
}

// updateResponse acknowledges a published epoch.
type updateResponse struct {
	Epoch     uint64  `json:"epoch"`
	Added     int     `json:"added"`
	Removed   int     `json:"removed"`
	Triples   int64   `json:"triples"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// handleUpdate applies one maintenance batch and publishes it as a new
// epoch. The body is N-Triples; ?op=add (default) or ?op=remove selects
// the direction. Readers are never blocked: in-flight queries keep their
// pinned snapshots, and the new epoch is visible to queries admitted
// after this returns.
func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost && r.Method != http.MethodPut {
		http.Error(w, "POST an N-Triples body", http.StatusMethodNotAllowed)
		return
	}
	op := r.URL.Query().Get("op")
	if op == "" {
		op = "add"
	}
	if op != "add" && op != "remove" {
		http.Error(w, fmt.Sprintf("unknown op %q (want add or remove)", op), http.StatusBadRequest)
		return
	}

	// Single writer: one batch at a time, one maintainer per store.
	s.maintMu.Lock()
	defer s.maintMu.Unlock()

	// Interning terms grows the shared dictionary, which is append-only
	// and thread-safe — concurrent queries are unaffected.
	g := &rdf.Graph{Dict: s.store.Current().Dict}
	if err := rdf.ParseNTriplesInto(r.Body, g); err != nil {
		http.Error(w, fmt.Sprintf("parse body: %v", err), http.StatusBadRequest)
		return
	}

	if s.maint == nil {
		m, err := hpart.NewStoreMaintainer(s.store)
		if err != nil {
			http.Error(w, fmt.Sprintf("maintainer: %v", err), http.StatusInternalServerError)
			return
		}
		s.maint = m
	}
	var add, remove []rdf.Triple
	if op == "add" {
		add = g.Triples
	} else {
		remove = g.Triples
	}
	start := time.Now()
	if err := s.maint.Apply(add, remove); err != nil {
		// The failed epoch was never published; the maintainer's CS
		// bookkeeping may be torn, so rebuild it on the next update.
		s.maint = nil
		http.Error(w, fmt.Sprintf("apply: %v", err), http.StatusInternalServerError)
		return
	}
	s.updates.Inc()
	cur := s.store.Current()
	if s.cfg.Persist != nil {
		if err := cur.SaveDict(); err != nil {
			http.Error(w, fmt.Sprintf("save dict: %v", err), http.StatusInternalServerError)
			return
		}
		if err := s.cfg.Persist.SaveManifest(); err != nil {
			http.Error(w, fmt.Sprintf("save manifest: %v", err), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(updateResponse{
		Epoch:     cur.Epoch(),
		Added:     len(add),
		Removed:   len(remove),
		Triples:   cur.TotalTriples(),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3,
	})
}

// statsResponse is the /stats document.
type statsResponse struct {
	Epoch         uint64       `json:"epoch"`
	Levels        int          `json:"levels"`
	Triples       int64        `json:"triples"`
	SubPartitions int          `json:"sub_partitions"`
	PinnedQueries int          `json:"pinned_queries"`
	PinnedEpochs  int          `json:"pinned_epochs"`
	RetiredFiles  int          `json:"retired_files"`
	FilesRemoved  int64        `json:"files_removed"`
	ActiveLeases  int          `json:"active_leases"`
	LeasesExpired int64        `json:"leases_expired"`
	Inflight      int          `json:"inflight_queries"`
	Queued        int          `json:"queued_queries"`
	Draining      bool         `json:"draining,omitempty"`
	Cursors       cursor.Stats `json:"cursors"`
	// SLOStates maps each objective to its alert state (ok, warning,
	// page); /slo has the full window breakdown.
	SLOStates map[string]string `json:"slo_states,omitempty"`
	// EventsDropped counts wide query events lost to backpressure.
	EventsDropped int64 `json:"wide_events_dropped,omitempty"`
	// Dict reports the dictionary-encoded resident layout: the term
	// dictionary itself plus the compressed sub-partition cache.
	Dict dictStats `json:"dict"`
}

// dictStats is the /stats "dict" sub-document.
type dictStats struct {
	Entries       int     `json:"entries"`
	ResidentBytes int64   `json:"resident_bytes"`
	BuildSeconds  float64 `json:"build_seconds"`
	CacheEntries  int     `json:"cache_entries"`
	CacheBytes    int64   `json:"cache_bytes"`
	CacheRawBytes int64   `json:"cache_raw_bytes"`
	Decodes       int64   `json:"decodes"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.store.Stats()
	cur := s.store.Current()
	dv := cur.DictView()
	cacheN, cacheBytes, cacheRaw := cur.SubPartCacheStats()
	sloStates := make(map[string]string)
	for _, o := range s.slo.Snapshot() {
		sloStates[o.Name] = o.State
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(statsResponse{
		Epoch:         st.Epoch,
		Levels:        cur.NumLevels,
		Triples:       cur.TotalTriples(),
		SubPartitions: len(cur.SubPartitions()),
		PinnedQueries: st.PinnedQueries,
		PinnedEpochs:  st.PinnedEpochs,
		RetiredFiles:  st.RetiredFiles,
		FilesRemoved:  st.FilesRemoved,
		ActiveLeases:  st.ActiveLeases,
		LeasesExpired: st.LeasesExpired,
		Inflight:      len(s.sem),
		Queued:        len(s.queue),
		Draining:      s.draining.Load(),
		Cursors:       s.cursors.Stats(),
		SLOStates:     sloStates,
		EventsDropped: s.events.Dropped(),
		Dict: dictStats{
			Entries:       dv.Len(),
			ResidentBytes: cur.Dict.ResidentBytes(),
			BuildSeconds:  cur.DictBuildTime().Seconds(),
			CacheEntries:  cacheN,
			CacheBytes:    cacheBytes,
			CacheRawBytes: cacheRaw,
			Decodes:       s.decodes.Value(),
		},
	})
}

// parseStrategy maps the CLI strategy names used across the ping tools.
func parseStrategy(name string) (ping.SliceStrategy, error) {
	switch name {
	case "level":
		return ping.LevelCumulative, nil
	case "product":
		return ping.ProductOrder, nil
	case "largest":
		return ping.LargestFirst, nil
	case "smallest":
		return ping.SmallestFirst, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}

// parsePolicy maps the CLI failure-policy names.
func parsePolicy(name string) (ping.FailurePolicy, error) {
	switch name {
	case "failfast":
		return ping.FailFast, nil
	case "degrade":
		return ping.Degrade, nil
	default:
		return 0, fmt.Errorf("unknown failure policy %q (want failfast or degrade)", name)
	}
}
