package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ping/internal/dataflow"
	"ping/internal/dfs"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/ping"
	"ping/internal/rdf"
	"ping/internal/sparql"
	"ping/internal/workload"
)

// serverConfig carries the daemon's tunables.
type serverConfig struct {
	// Workers is the dataflow pool size of each query.
	Workers int
	// MaxInflight bounds concurrently executing queries; MaxQueue bounds
	// how many more may wait for a slot. Beyond that /query returns 429.
	MaxInflight int
	MaxQueue    int
	// QueryTimeout is the per-query deadline, queue wait included
	// (0 = none).
	QueryTimeout time.Duration
	// RowLimit caps the bindings included per step line when the client
	// asks for them (0 = never include bindings).
	RowLimit int
	// Strategy, FailurePolicy and UseBloomPruning configure query
	// processing exactly as in pingquery.
	Strategy        ping.SliceStrategy
	FailurePolicy   ping.FailurePolicy
	UseBloomPruning bool
	// Persist, when non-nil, is the on-disk file system whose manifest
	// (and the dictionary) is saved after each successful update.
	Persist *dfs.FS
	// Metrics receives the daemon's and the processors' series
	// (nil: obs.Default).
	Metrics *obs.Registry
	// SlowLog, when non-nil, receives a structured NDJSON record for
	// every query slower than its threshold.
	SlowLog *workload.SlowLog
	// MaxFingerprints bounds the workload profiler store (<=0: default).
	MaxFingerprints int
	// Trace retains per-query trace trees in a bounded ring served at
	// /traces. TraceSample keeps 1 in N queries (<=1: all); TraceBuffer
	// is the ring capacity (<=0: 64).
	Trace       bool
	TraceSample int
	TraceBuffer int
}

// server is the pingd HTTP surface over one epoch store. Queries pin
// snapshots (each request builds a cheap processor with its own dataflow
// pool, so cancellation never crosses requests); updates go through the
// single snapshot-mode maintainer guarded by maintMu.
type server struct {
	store *hpart.Store
	cfg   serverConfig

	// sem holds one token per executing query; queue holds one token per
	// admitted-but-waiting query.
	sem   chan struct{}
	queue chan struct{}

	maintMu sync.Mutex
	maint   *hpart.Maintainer

	reg      *obs.Registry
	rejected *obs.Counter
	updates  *obs.Counter

	profiler *workload.Profiler
	slow     *workload.SlowLog
	sampler  *obs.Sampler
	traces   *obs.SpanBuffer

	// stepHook, when set (tests only), runs after each delivered step
	// line, with the response already flushed. Set and cleared via
	// setStepHook; handlers read it through the atomic slot.
	stepHook atomic.Pointer[func()]
}

// setStepHook installs (or, with nil, removes) the per-step test hook.
func (s *server) setStepHook(fn func()) {
	if fn == nil {
		s.stepHook.Store(nil)
		return
	}
	s.stepHook.Store(&fn)
}

func newServer(store *hpart.Store, cfg serverConfig) *server {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	reg.Describe("pingd_rejected_total", "queries rejected by admission control (HTTP 429)")
	reg.Describe("pingd_updates_total", "update batches applied and published as new epochs")
	s := &server{
		store:    store,
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxInflight),
		queue:    make(chan struct{}, cfg.MaxQueue),
		reg:      reg,
		rejected: reg.Counter("pingd_rejected_total", nil),
		updates:  reg.Counter("pingd_updates_total", nil),
		profiler: workload.NewProfiler(workload.Options{Metrics: reg, MaxFingerprints: cfg.MaxFingerprints}),
		slow:     cfg.SlowLog,
	}
	if cfg.Trace {
		s.sampler = obs.NewSampler(cfg.TraceSample)
		s.traces = obs.NewSpanBuffer(cfg.TraceBuffer)
	}
	return s
}

// handler mounts the daemon's routes. The obs introspection mux
// (/metrics, /debug/vars, pprof) serves everything not claimed here.
func (s *server) handler(logf func(format string, args ...any)) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/query", obs.Instrument(s.reg, "/query", logf, http.HandlerFunc(s.handleQuery)))
	mux.Handle("/update", obs.Instrument(s.reg, "/update", logf, http.HandlerFunc(s.handleUpdate)))
	mux.Handle("/stats", obs.Instrument(s.reg, "/stats", logf, http.HandlerFunc(s.handleStats)))
	mux.Handle("/explain", obs.Instrument(s.reg, "/explain", logf, http.HandlerFunc(s.handleExplain)))
	mux.Handle("/workload", obs.Instrument(s.reg, "/workload", logf, http.HandlerFunc(s.handleWorkload)))
	mux.Handle("/traces", obs.Instrument(s.reg, "/traces", logf, http.HandlerFunc(s.handleTraces)))
	mux.Handle("/dashboard", obs.Instrument(s.reg, "/dashboard", logf, http.HandlerFunc(s.handleDashboard)))
	mux.Handle("/", obs.Handler(s.reg))
	return mux
}

// admit applies the admission policy: run now if an execution slot is
// free, otherwise wait in the bounded queue. It returns a release
// function and 0, or nil and the HTTP status to reject with.
func (s *server) admit(ctx context.Context) (func(), int) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0
	default:
	}
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, http.StatusTooManyRequests
	}
	defer func() { <-s.queue }()
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0
	case <-ctx.Done():
		// Deadline or disconnect while queued.
		return nil, http.StatusServiceUnavailable
	}
}

// stepLine is one NDJSON line of a streaming query response: the state
// of the progressive answer after one slice step. Epoch is constant
// across all lines of one response — the run is pinned to a snapshot.
type stepLine struct {
	Step        int                 `json:"step"`
	MaxLevel    int                 `json:"max_level"`
	Epoch       uint64              `json:"epoch"`
	Answers     int                 `json:"answers"`
	NewAnswers  int                 `json:"new_answers"`
	RowsLoaded  int64               `json:"rows_loaded_cum"`
	ElapsedMS   float64             `json:"elapsed_ms"`
	Degraded    bool                `json:"degraded,omitempty"`
	MissingSubP int                 `json:"missing_subparts,omitempty"`
	Bindings    []map[string]string `json:"bindings,omitempty"`
}

// doneLine terminates a streaming query response.
type doneLine struct {
	Done      bool    `json:"done"`
	Steps     int     `json:"steps"`
	Answers   int     `json:"answers"`
	Epoch     uint64  `json:"epoch"`
	Exact     bool    `json:"exact"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// errLine reports a failure after streaming has started (the status
// line is long gone by then).
type errLine struct {
	Error string `json:"error"`
}

// handleQuery streams a progressive query: one JSON object per PQA step,
// then a done line. ?q= carries the SPARQL text (or the POST body does);
// ?bindings=1 includes up to RowLimit decoded rows per step.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	text := r.URL.Query().Get("q")
	if text == "" && r.Body != nil {
		body, _ := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		text = string(body)
	}
	if text == "" {
		http.Error(w, "missing query: pass ?q= or a request body", http.StatusBadRequest)
		return
	}
	q, err := sparql.Parse(text)
	if err != nil {
		http.Error(w, fmt.Sprintf("parse: %v", err), http.StatusBadRequest)
		return
	}
	wantBindings := r.URL.Query().Get("bindings") == "1" && s.cfg.RowLimit > 0

	canonical := workload.Canonical(q)
	fp := workload.FingerprintCanonical(canonical)
	shape := sparql.Classify(q).String()

	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	release, code := s.admit(ctx)
	if release == nil {
		s.rejected.Inc()
		http.Error(w, http.StatusText(code), code)
		return
	}
	defer release()

	// Head-sampled tracing: the run's whole span tree (pqa → slice →
	// join) lands in the bounded ring served at /traces.
	if s.traces != nil && s.sampler.Sample() {
		var qspan *obs.Span
		ctx, qspan = obs.NewTrace(ctx, "query")
		qspan.SetAttr("fingerprint", fp)
		qspan.SetAttr("query", text)
		defer func() {
			qspan.End()
			s.traces.Add(qspan)
		}()
	}

	proc := ping.NewProcessorStore(s.store, ping.Options{
		Context:         dataflow.NewContext(s.cfg.Workers),
		Strategy:        s.cfg.Strategy,
		FailurePolicy:   s.cfg.FailurePolicy,
		UseBloomPruning: s.cfg.UseBloomPruning,
		Metrics:         s.cfg.Metrics,
	})

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) {
		_ = enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}

	dict := s.store.Current().Dict
	start := time.Now()
	var last ping.StepResult
	steps := 0
	var (
		stepMs      []float64
		stepAnswers []int
		toFirst     int
		subParts    int
	)
	// record folds the run into the workload profiler and, when slow (or
	// failed), the slow-query log. Called on both exits of the handler.
	record := func(runErr error) {
		latency := time.Since(start)
		obsv := workload.Observation{
			Latency: latency,
			Steps:   steps,
			Error:   runErr != nil,
		}
		var sq workload.SlowQuery
		if steps > 0 {
			final := last.Answers.Card()
			obsv.Answers = final
			obsv.Epoch = last.Epoch
			obsv.Degraded = last.Degraded
			obsv.Coverage = make([]float64, len(stepAnswers))
			for i, n := range stepAnswers {
				if final > 0 {
					obsv.Coverage[i] = float64(n) / float64(final)
				} else {
					obsv.Coverage[i] = 1
				}
			}
			if toFirst > 0 {
				obsv.StepsToFirstAnswer = toFirst
				obsv.CoverageAtFirstAnswer = obsv.Coverage[toFirst-1]
			}
			sq.Plan = &workload.PlanSummary{
				Strategy:    s.cfg.Strategy.String(),
				Steps:       steps,
				SubParts:    subParts,
				MaxLevel:    last.MaxLevel,
				Incremental: last.Incremental,
			}
		}
		s.profiler.ObserveFingerprint(fp, canonical, shape, obsv)
		sq.Fingerprint = fp
		sq.Canonical = canonical
		sq.Query = text
		sq.Epoch = obsv.Epoch
		sq.StepMs = stepMs
		sq.Answers = obsv.Answers
		sq.Degraded = obsv.Degraded
		if runErr != nil {
			sq.Error = runErr.Error()
		}
		s.slow.Observe(sq, latency)
	}
	err = proc.PQAStepsCtx(ctx, q, func(st ping.StepResult) bool {
		steps++
		last = st
		stepMs = append(stepMs, float64(st.Elapsed.Microseconds())/1e3)
		stepAnswers = append(stepAnswers, st.Answers.Card())
		subParts += len(st.NewSubParts)
		if toFirst == 0 && st.Answers.Card() > 0 {
			toFirst = st.Step
		}
		line := stepLine{
			Step:        st.Step,
			MaxLevel:    st.MaxLevel,
			Epoch:       st.Epoch,
			Answers:     st.Answers.Card(),
			NewAnswers:  st.NewAnswers,
			RowsLoaded:  st.RowsLoadedCum,
			ElapsedMS:   float64(st.ElapsedCum.Microseconds()) / 1e3,
			Degraded:    st.Degraded,
			MissingSubP: len(st.MissingSubParts),
		}
		if wantBindings {
			for i, row := range st.Answers.BindingMaps() {
				if i >= s.cfg.RowLimit {
					break
				}
				m := make(map[string]string, len(row))
				for v, id := range row {
					m[v] = dict.TermString(id)
				}
				line.Bindings = append(line.Bindings, m)
			}
		}
		emit(line)
		if hook := s.stepHook.Load(); hook != nil {
			(*hook)()
		}
		return ctx.Err() == nil
	})
	record(err)
	if err != nil {
		// Streaming may have started; an in-band error line is all we
		// can still deliver.
		emit(errLine{Error: err.Error()})
		return
	}
	done := doneLine{
		Done:      true,
		Steps:     steps,
		Epoch:     s.store.Epoch(),
		Exact:     steps > 0 && !last.Degraded,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3,
	}
	if steps > 0 {
		done.Epoch = last.Epoch
		done.Answers = last.Answers.Card()
	} else {
		// Unsafe query: no slice can hold answers; the empty result is
		// exact.
		done.Exact = true
	}
	emit(done)
}

// updateResponse acknowledges a published epoch.
type updateResponse struct {
	Epoch     uint64  `json:"epoch"`
	Added     int     `json:"added"`
	Removed   int     `json:"removed"`
	Triples   int64   `json:"triples"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// handleUpdate applies one maintenance batch and publishes it as a new
// epoch. The body is N-Triples; ?op=add (default) or ?op=remove selects
// the direction. Readers are never blocked: in-flight queries keep their
// pinned snapshots, and the new epoch is visible to queries admitted
// after this returns.
func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost && r.Method != http.MethodPut {
		http.Error(w, "POST an N-Triples body", http.StatusMethodNotAllowed)
		return
	}
	op := r.URL.Query().Get("op")
	if op == "" {
		op = "add"
	}
	if op != "add" && op != "remove" {
		http.Error(w, fmt.Sprintf("unknown op %q (want add or remove)", op), http.StatusBadRequest)
		return
	}

	// Single writer: one batch at a time, one maintainer per store.
	s.maintMu.Lock()
	defer s.maintMu.Unlock()

	// Interning terms grows the shared dictionary, which is append-only
	// and thread-safe — concurrent queries are unaffected.
	g := &rdf.Graph{Dict: s.store.Current().Dict}
	if err := rdf.ParseNTriplesInto(r.Body, g); err != nil {
		http.Error(w, fmt.Sprintf("parse body: %v", err), http.StatusBadRequest)
		return
	}

	if s.maint == nil {
		m, err := hpart.NewStoreMaintainer(s.store)
		if err != nil {
			http.Error(w, fmt.Sprintf("maintainer: %v", err), http.StatusInternalServerError)
			return
		}
		s.maint = m
	}
	var add, remove []rdf.Triple
	if op == "add" {
		add = g.Triples
	} else {
		remove = g.Triples
	}
	start := time.Now()
	if err := s.maint.Apply(add, remove); err != nil {
		// The failed epoch was never published; the maintainer's CS
		// bookkeeping may be torn, so rebuild it on the next update.
		s.maint = nil
		http.Error(w, fmt.Sprintf("apply: %v", err), http.StatusInternalServerError)
		return
	}
	s.updates.Inc()
	cur := s.store.Current()
	if s.cfg.Persist != nil {
		if err := cur.SaveDict(); err != nil {
			http.Error(w, fmt.Sprintf("save dict: %v", err), http.StatusInternalServerError)
			return
		}
		if err := s.cfg.Persist.SaveManifest(); err != nil {
			http.Error(w, fmt.Sprintf("save manifest: %v", err), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(updateResponse{
		Epoch:     cur.Epoch(),
		Added:     len(add),
		Removed:   len(remove),
		Triples:   cur.TotalTriples(),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3,
	})
}

// statsResponse is the /stats document.
type statsResponse struct {
	Epoch         uint64 `json:"epoch"`
	Levels        int    `json:"levels"`
	Triples       int64  `json:"triples"`
	SubPartitions int    `json:"sub_partitions"`
	PinnedQueries int    `json:"pinned_queries"`
	PinnedEpochs  int    `json:"pinned_epochs"`
	RetiredFiles  int    `json:"retired_files"`
	FilesRemoved  int64  `json:"files_removed"`
	Inflight      int    `json:"inflight_queries"`
	Queued        int    `json:"queued_queries"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.store.Stats()
	cur := s.store.Current()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(statsResponse{
		Epoch:         st.Epoch,
		Levels:        cur.NumLevels,
		Triples:       cur.TotalTriples(),
		SubPartitions: len(cur.SubPartitions()),
		PinnedQueries: st.PinnedQueries,
		PinnedEpochs:  st.PinnedEpochs,
		RetiredFiles:  st.RetiredFiles,
		FilesRemoved:  st.FilesRemoved,
		Inflight:      len(s.sem),
		Queued:        len(s.queue),
	})
}

// parseStrategy maps the CLI strategy names used across the ping tools.
func parseStrategy(name string) (ping.SliceStrategy, error) {
	switch name {
	case "level":
		return ping.LevelCumulative, nil
	case "product":
		return ping.ProductOrder, nil
	case "largest":
		return ping.LargestFirst, nil
	case "smallest":
		return ping.SmallestFirst, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}

// parsePolicy maps the CLI failure-policy names.
func parsePolicy(name string) (ping.FailurePolicy, error) {
	switch name {
	case "failfast":
		return ping.FailFast, nil
	case "degrade":
		return ping.Degrade, nil
	default:
		return 0, fmt.Errorf("unknown failure policy %q (want failfast or degrade)", name)
	}
}
