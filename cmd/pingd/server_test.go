package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"ping/internal/dfs"
	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// testGraph builds subjects with nested characteristic sets (s<i> has
// properties p0..p<d-1>) so the partition spans several levels and PQA
// runs take several steps.
func testGraph(seed int64, subjects, depth int) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	for s := 0; s < subjects; s++ {
		subj := rdf.NewIRI(fmt.Sprintf("s%d", s))
		d := 1 + rng.Intn(depth)
		for i := 0; i < d; i++ {
			obj := rdf.NewIRI(fmt.Sprintf("s%d", rng.Intn(subjects)))
			g.Add(subj, rdf.NewIRI(fmt.Sprintf("p%d", i)), obj)
		}
	}
	return g
}

func newTestServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server, *rdf.Graph) {
	t.Helper()
	// Every integration test doubles as a goroutine-leak check: the
	// verification cleanup registers first, so it runs last — after the
	// httptest server (and everything the test itself cleans up) shut
	// down.
	obs.VerifyNoLeaks(t)
	g := testGraph(1, 60, 5)
	lay, err := hpart.Partition(g, hpart.Options{FS: dfs.New(dfs.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	srv := newServer(hpart.NewStore(lay), cfg)
	ts := httptest.NewServer(srv.handler(nil))
	t.Cleanup(ts.Close)
	return srv, ts, g
}

// line is the union of the NDJSON line shapes a /query response emits.
type line struct {
	Step    int    `json:"step"`
	Epoch   uint64 `json:"epoch"`
	Answers int    `json:"answers"`
	Done    bool   `json:"done"`
	Steps   int    `json:"steps"`
	Exact   bool   `json:"exact"`
	Error   string `json:"error"`
}

func queryURL(base, q string) string {
	return base + "/query?q=" + url.QueryEscape(q)
}

func readLines(t *testing.T, body io.Reader) []line {
	t.Helper()
	var out []line
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if l.Error != "" {
			t.Fatalf("in-band error: %s", l.Error)
		}
		out = append(out, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStreamingQueryWithMidFlightUpdate is the integration test of the
// tentpole: a streaming query keeps delivering sound steps from its
// pinned epoch while an update publishes a new epoch mid-flight; a query
// admitted afterwards sees the new epoch.
func TestStreamingQueryWithMidFlightUpdate(t *testing.T) {
	srv, ts, g := newTestServer(t, serverConfig{MaxInflight: 2, MaxQueue: 2, RowLimit: 5})

	const qs = `SELECT * WHERE { ?x <p0> ?y . ?y <p0> ?z }`
	q := sparql.MustParse(qs)
	preOracle := engine.Naive(g, q).Distinct().Card()

	// Block the query after its first delivered step so the update is
	// guaranteed to land mid-flight.
	firstStep := make(chan struct{})
	gate := make(chan struct{})
	released := false
	srv.setStepHook(func() {
		select {
		case <-firstStep:
		default:
			close(firstStep)
			<-gate
		}
	})
	defer func() {
		if !released {
			close(gate)
		}
	}()

	resp, err := http.Get(queryURL(ts.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}

	select {
	case <-firstStep:
	case <-time.After(10 * time.Second):
		t.Fatal("query never delivered its first step")
	}

	// Publish an update while the query holds its pin: a brand-new
	// subject plus a CS change to an existing one.
	delta := "<s100> <p0> <s1> .\n<s0> <p9> <s1> .\n"
	ur, err := http.Post(ts.URL+"/update?op=add", "application/n-triples", strings.NewReader(delta))
	if err != nil {
		t.Fatal(err)
	}
	var upd updateResponse
	if err := json.NewDecoder(ur.Body).Decode(&upd); err != nil {
		t.Fatal(err)
	}
	ur.Body.Close()
	if ur.StatusCode != http.StatusOK || upd.Epoch != 1 {
		t.Fatalf("update: status %d, epoch %d (want 200, epoch 1)", ur.StatusCode, upd.Epoch)
	}

	released = true
	close(gate)
	srv.setStepHook(nil)

	lines := readLines(t, resp.Body)
	if len(lines) < 2 {
		t.Fatalf("expected at least one step and a done line, got %d lines", len(lines))
	}
	done := lines[len(lines)-1]
	if !done.Done || !done.Exact {
		t.Fatalf("bad done line: %+v", done)
	}
	prev := 0
	for _, l := range lines[:len(lines)-1] {
		if l.Epoch != 0 {
			t.Fatalf("step %d observed epoch %d mid-update; snapshot isolation broken", l.Step, l.Epoch)
		}
		if l.Answers < prev {
			t.Fatalf("answers shrank at step %d: %d < %d", l.Step, l.Answers, prev)
		}
		prev = l.Answers
	}
	if done.Epoch != 0 {
		t.Fatalf("done line epoch %d, want pinned epoch 0", done.Epoch)
	}
	if done.Answers != preOracle {
		t.Fatalf("pinned-epoch answers %d, want pre-update oracle %d", done.Answers, preOracle)
	}

	// A query admitted after the publish evaluates against epoch 1 and
	// sees the added triples.
	g.Add(rdf.NewIRI("s100"), rdf.NewIRI("p0"), rdf.NewIRI("s1"))
	g.Add(rdf.NewIRI("s0"), rdf.NewIRI("p9"), rdf.NewIRI("s1"))
	postOracle := engine.Naive(g, q).Distinct().Card()

	resp2, err := http.Get(queryURL(ts.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	lines2 := readLines(t, resp2.Body)
	done2 := lines2[len(lines2)-1]
	if !done2.Done || done2.Epoch != 1 {
		t.Fatalf("post-update query: %+v, want done at epoch 1", done2)
	}
	if done2.Answers != postOracle {
		t.Fatalf("post-update answers %d, want oracle %d", done2.Answers, postOracle)
	}

	// The store reports the published epoch and a clean pin count.
	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if st.Epoch != 1 || st.PinnedQueries != 0 {
		t.Fatalf("stats: %+v, want epoch 1 with no pins", st)
	}
}

// TestAdmissionControl verifies the 429 path: with one execution slot
// and no queue, a second concurrent query is rejected immediately.
func TestAdmissionControl(t *testing.T) {
	srv, ts, _ := newTestServer(t, serverConfig{MaxInflight: 1, MaxQueue: 0})

	const qs = `SELECT * WHERE { ?x <p0> ?y }`
	firstStep := make(chan struct{})
	gate := make(chan struct{})
	srv.setStepHook(func() {
		select {
		case <-firstStep:
		default:
			close(firstStep)
			<-gate
		}
	})
	defer close(gate)

	resp, err := http.Get(queryURL(ts.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	select {
	case <-firstStep:
	case <-time.After(10 * time.Second):
		t.Fatal("query never delivered its first step")
	}

	resp2, err := http.Get(queryURL(ts.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload query got status %d, want 429", resp2.StatusCode)
	}
}

// TestQueryValidation covers the 400 paths.
func TestQueryValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, serverConfig{})

	for _, u := range []string{
		ts.URL + "/query",                     // no query at all
		queryURL(ts.URL, "NOT SPARQL AT ALL"), // unparsable
	} {
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", u, resp.StatusCode)
		}
	}

	resp, err := http.Post(ts.URL+"/update?op=frobnicate", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad op: status %d, want 400", resp.StatusCode)
	}
}

// TestUpdateRemove exercises the remove direction end to end.
func TestUpdateRemove(t *testing.T) {
	_, ts, g := newTestServer(t, serverConfig{})

	const qs = `SELECT * WHERE { ?x <p0> ?y }`
	q := sparql.MustParse(qs)

	// Remove every <p0> triple of subject s0.
	var sb strings.Builder
	removed := make(map[rdf.Triple]bool)
	s0 := g.Dict.Lookup(rdf.NewIRI("s0"))
	p0 := g.Dict.Lookup(rdf.NewIRI("p0"))
	for _, tr := range g.Triples {
		if tr.S == s0 && tr.P == p0 {
			fmt.Fprintf(&sb, "<s0> <p0> %s .\n", g.Dict.TermString(tr.O))
			removed[tr] = true
		}
	}
	if len(removed) == 0 {
		t.Fatal("test graph has no <s0> <p0> triples")
	}
	resp, err := http.Post(ts.URL+"/update?op=remove", "application/n-triples", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove update: status %d", resp.StatusCode)
	}

	kept := g.Triples[:0:0]
	for _, tr := range g.Triples {
		if !removed[tr] {
			kept = append(kept, tr)
		}
	}
	g.Triples = kept
	oracle := engine.Naive(g, q).Distinct().Card()

	qr, err := http.Get(queryURL(ts.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	defer qr.Body.Close()
	lines := readLines(t, qr.Body)
	done := lines[len(lines)-1]
	if !done.Done || done.Epoch != 1 || done.Answers != oracle {
		t.Fatalf("post-remove query: %+v, want epoch 1 with %d answers", done, oracle)
	}
}
