package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"ping/internal/dataflow"
	"ping/internal/obs"
	"ping/internal/obs/slo"
	"ping/internal/ping"
	"ping/internal/sparql"
	"ping/internal/workload"
)

// queryText extracts the SPARQL text of an introspection request from
// ?q= or the request body.
func queryText(r *http.Request) string {
	text := r.URL.Query().Get("q")
	if text == "" && r.Body != nil {
		body, _ := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		text = string(body)
	}
	return text
}

// handleExplain serves query plans. By default the plan is static
// (EXPLAIN); ?analyze=1 also runs the query and annotates every plan
// node with actual rows, cache hits and wall time (ANALYZE), going
// through the same admission control as /query. ?format=text renders
// the human-readable form; the default is indented JSON.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	text := queryText(r)
	if text == "" {
		http.Error(w, "missing query: pass ?q= or a request body", http.StatusBadRequest)
		return
	}
	q, err := sparql.Parse(text)
	if err != nil {
		http.Error(w, fmt.Sprintf("parse: %v", err), http.StatusBadRequest)
		return
	}

	proc := ping.NewProcessorStore(s.store, ping.Options{
		Context:         dataflow.NewContext(s.cfg.Workers),
		Strategy:        s.cfg.Strategy,
		FailurePolicy:   s.cfg.FailurePolicy,
		UseBloomPruning: s.cfg.UseBloomPruning,
		Metrics:         s.cfg.Metrics,
	})

	var plan *ping.Plan
	if r.URL.Query().Get("analyze") == "1" {
		// ANALYZE executes the query, so it competes for execution slots
		// like any /query request.
		ctx := r.Context()
		if s.cfg.QueryTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
			defer cancel()
		}
		release, code := s.admit(ctx)
		if release == nil {
			s.rejected.Inc()
			http.Error(w, http.StatusText(code), code)
			return
		}
		defer release()
		plan, _, err = proc.Analyze(ctx, q)
	} else {
		plan, err = proc.Explain(q)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("explain: %v", err), http.StatusInternalServerError)
		return
	}
	plan.Fingerprint = workload.Fingerprint(q)

	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = plan.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = plan.WriteJSON(w)
}

// workloadResponse is the /workload document.
type workloadResponse struct {
	Fingerprints []workload.FingerprintStats `json:"fingerprints"`
	Dropped      int64                       `json:"dropped"`
}

// handleWorkload serves the workload profiler's aggregates, sorted by
// total latency descending. ?top=N truncates; ?format=ndjson emits the
// snapshot persistence format instead of a JSON document.
func (s *server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	top := 0
	if v := r.URL.Query().Get("top"); v != "" {
		// strconv.Atoi, not Sscanf: reject trailing garbage ("5x") and
		// negative counts instead of silently serving the full snapshot.
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad top=%q", v), http.StatusBadRequest)
			return
		}
		top = n
	}
	// Truncate before the format branch so ?top=N bounds the ndjson
	// stream exactly like the JSON document.
	stats := s.profiler.Top(top)
	if r.URL.Query().Get("format") == "ndjson" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = workload.WriteNDJSON(w, stats)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(workloadResponse{Fingerprints: stats, Dropped: s.profiler.Dropped()})
}

// resourcesResponse is the /resources document: per-fingerprint
// measured cost, sorted most-expensive first.
type resourcesResponse struct {
	// Top ranks fingerprints by profile-attributed CPU seconds, then
	// ledger task seconds, then total latency.
	Top     []workload.FingerprintStats `json:"top"`
	Dropped int64                       `json:"dropped"`
	// InflightCPUSeconds is the cost-admission debt currently reserved;
	// AdmissionCPUSeconds the configured budget (0 = cost admission off).
	InflightCPUSeconds  float64 `json:"inflight_cpu_seconds"`
	AdmissionCPUSeconds float64 `json:"admission_cpu_seconds,omitempty"`
}

// handleResources serves the per-query resource ledger aggregates: the
// top resource consumers by measured CPU (profile-attributed seconds
// when continuous profiling is on, dataflow task seconds otherwise),
// with the full ledger per fingerprint. ?top=N truncates (default 20);
// ?format=ndjson emits the workload snapshot persistence format.
func (s *server) handleResources(w http.ResponseWriter, r *http.Request) {
	top := 20
	if v := r.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad top=%q", v), http.StatusBadRequest)
			return
		}
		top = n
	}
	stats := s.profiler.TopByCost(top)
	if r.URL.Query().Get("format") == "ndjson" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = workload.WriteNDJSON(w, stats)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resourcesResponse{
		Top:                 stats,
		Dropped:             s.profiler.Dropped(),
		InflightCPUSeconds:  time.Duration(s.inflightCost.Load()).Seconds(),
		AdmissionCPUSeconds: s.cfg.AdmissionCPU.Seconds(),
	})
}

// sloResponse is the /slo document.
type sloResponse struct {
	Objectives []slo.Status `json:"objectives"`
}

// handleSLO serves every objective's current state: the four rolling
// windows' good/bad counts, burn rates, and the alert state the
// multi-window policy derives from them.
func (s *server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(sloResponse{Objectives: s.slo.Snapshot()})
}

// tracesResponse is the /traces document.
type tracesResponse struct {
	Dropped int64       `json:"dropped"`
	Traces  []*obs.Span `json:"traces"`
}

// handleTraces serves the retained query trace trees, oldest first.
// ?format=chrome renders them in the Chrome trace_event format, directly
// loadable in chrome://tracing or Perfetto.
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		http.Error(w, "tracing disabled (start pingd with -trace)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="pingd-trace.json"`)
		_ = obs.WriteChromeTrace(w, s.traces.Snapshot()...)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(tracesResponse{Dropped: s.traces.Dropped(), Traces: s.traces.Snapshot()})
}

// handleDashboard serves the live introspection page: a dependency-free
// HTML document that polls /stats and /workload and renders store state,
// admission pressure, the top fingerprints, and per-fingerprint coverage
// sparklines.
func (s *server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = io.WriteString(w, dashboardHTML)
}

const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>pingd dashboard</title>
<style>
  body { font: 13px/1.5 system-ui, sans-serif; margin: 1.5rem; color: #1a1a2e; background: #fafafa; }
  h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.6rem; }
  .cards { display: flex; flex-wrap: wrap; gap: .6rem; }
  .card { background: #fff; border: 1px solid #ddd; border-radius: 6px; padding: .5rem .9rem; min-width: 7rem; }
  .card .v { font-size: 1.3rem; font-weight: 600; }
  .card .k { color: #666; font-size: .75rem; text-transform: uppercase; letter-spacing: .04em; }
  table { border-collapse: collapse; background: #fff; width: 100%; }
  th, td { border: 1px solid #ddd; padding: .3rem .6rem; text-align: right; }
  th { background: #f0f0f4; } td.c, th.c { text-align: left; }
  td.c { font-family: ui-monospace, monospace; font-size: .75rem; max-width: 28rem;
         overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
  svg polyline { fill: none; stroke: #4361ee; stroke-width: 1.5; }
  #err { color: #b00020; }
  .slo-ok { color: #1b7f3b; font-weight: 600; }
  .slo-warning { color: #b07d00; font-weight: 600; }
  .slo-page { color: #b00020; font-weight: 600; }
</style>
</head>
<body>
<h1>pingd <span id="err"></span></h1>
<div class="cards" id="cards"></div>
<h2>Dictionary &amp; resident cache</h2>
<div class="cards" id="dictcards"></div>
<h2>Service-level objectives</h2>
<table id="slo"><thead><tr>
  <th class="c">objective</th><th class="c">description</th><th>target</th><th class="c">state</th>
  <th>burn 5m</th><th>burn 1h</th><th>burn 30m</th><th>burn 6h</th><th>bad/6h</th>
</tr></thead><tbody></tbody></table>
<h2>Layout advisor</h2>
<div class="cards" id="advcards"></div>
<div id="advdetail" style="margin-top:.5rem; color:#444;"></div>
<h2>Top fingerprints by total latency</h2>
<table id="wl"><thead><tr>
  <th class="c">fingerprint</th><th class="c">canonical</th><th>shape</th><th>count</th>
  <th>mean ms</th><th>p95 ms</th><th>errors</th><th>degraded</th>
  <th>steps→1st</th><th>coverage</th>
</tr></thead><tbody></tbody></table>
<h2>Top resource consumers</h2>
<div id="resnote" style="color:#666"></div>
<table id="res"><thead><tr>
  <th class="c">fingerprint</th><th>profile CPU s</th><th>task s</th><th>rows loaded</th>
  <th>decoded</th><th>storage read</th><th>cache pinned</th><th>dict decodes</th><th>peak rel rows</th>
</tr></thead><tbody></tbody></table>
<script>
function card(k, v) {
  return '<div class="card"><div class="v">' + v + '</div><div class="k">' + k + '</div></div>';
}
function spark(cov) {
  if (!cov || !cov.length) return '';
  var w = 80, h = 18;
  function y(c) {
    // Clamp non-finite and out-of-range values so the SVG never gets NaN.
    var v = (typeof c === 'number' && isFinite(c)) ? Math.max(0, Math.min(1, c)) : 0;
    return ((1 - v) * (h - 2) + 1).toFixed(1);
  }
  var pts;
  if (cov.length === 1) {
    // A single point has no segment to draw; render a flat line at its level.
    pts = ['1,' + y(cov[0]), (w - 1) + ',' + y(cov[0])];
  } else {
    pts = cov.map(function (c, i) {
      return (i * w / (cov.length - 1)).toFixed(1) + ',' + y(c);
    });
  }
  return '<svg width="' + w + '" height="' + h + '"><polyline points="' + pts.join(' ') + '"/></svg>';
}
function esc(s) {
  // Escape quotes too: interpolated strings land in attribute values
  // (title="...") where an unescaped quote breaks out of the attribute.
  return String(s).replace(/&/g, '&amp;').replace(/</g, '&lt;').replace(/>/g, '&gt;')
    .replace(/"/g, '&quot;').replace(/'/g, '&#39;');
}
function burnCell(ws, name) {
  for (var i = 0; i < ws.length; i++) {
    if (ws[i].window === name) return ws[i].burn.toFixed(2);
  }
  return '';
}
function mb(n) { return (n / 1048576).toFixed(2) + ' MB'; }
function refresh() {
  Promise.all([
    fetch('/stats').then(function (r) { return r.json(); }),
    fetch('/workload?top=15').then(function (r) { return r.json(); }),
    fetch('/slo').then(function (r) { return r.json(); }),
    fetch('/advisor').then(function (r) { return r.json(); })
  ]).then(function (res) {
    var st = res[0], wl = res[1], sl = res[2], ad = res[3];
    document.getElementById('err').textContent = '';
    var paging = 0;
    (sl.objectives || []).forEach(function (o) { if (o.state === 'page') paging++; });
    document.getElementById('cards').innerHTML =
      card('epoch', st.epoch) + card('triples', st.triples) +
      card('levels', st.levels) + card('sub-partitions', st.sub_partitions) +
      card('inflight', st.inflight_queries) + card('queued', st.queued_queries) +
      card('pinned epochs', st.pinned_epochs) + card('dropped fps', wl.dropped) +
      card('SLOs paging', paging);
    var dict = st.dict || {};
    document.getElementById('dictcards').innerHTML =
      card('dict entries', dict.entries || 0) +
      card('dict resident', mb(dict.resident_bytes || 0)) +
      card('dict build ms', ((dict.build_seconds || 0) * 1000).toFixed(2)) +
      card('cached sub-parts', dict.cache_entries || 0) +
      card('cache resident', mb(dict.cache_bytes || 0)) +
      card('cache raw equiv', mb(dict.cache_raw_bytes || 0)) +
      card('decodes', dict.decodes || 0);
    var sloRows = (sl.objectives || []).map(function (o) {
      var ws = o.windows || [];
      var bad6h = '';
      for (var i = 0; i < ws.length; i++) { if (ws[i].window === '6h') bad6h = ws[i].bad + '/' + (ws[i].good + ws[i].bad); }
      return '<tr><td class="c">' + esc(o.name) + '</td>' +
        '<td class="c">' + esc(o.description) + '</td>' +
        '<td>' + (o.target * 100).toFixed(1) + '%</td>' +
        '<td class="c slo-' + esc(o.state) + '">' + esc(o.state) + '</td>' +
        '<td>' + burnCell(ws, '5m') + '</td><td>' + burnCell(ws, '1h') + '</td>' +
        '<td>' + burnCell(ws, '30m') + '</td><td>' + burnCell(ws, '6h') + '</td>' +
        '<td>' + bad6h + '</td></tr>';
    });
    document.querySelector('#slo tbody').innerHTML = sloRows.join('');
    var adv = (ad && ad.advice) || {};
    document.getElementById('advcards').innerHTML =
      card('hot queries', (adv.hot || []).length) +
      card('cold levels', (adv.cold_levels || []).length) +
      card('merges', (adv.merges || []).length) +
      card('join reductions', (adv.joins || []).length) +
      card('p95 steps→1st', (adv.p95_steps_to_first_before || 0).toFixed(0)) +
      card('est. after', (adv.p95_steps_to_first_after || 0).toFixed(0)) +
      card('applied epochs', (ad && ad.applied) || 0);
    var detail = [];
    (adv.merges || []).forEach(function (m) { detail.push('L' + m.from + '→L' + m.into); });
    (adv.joins || []).forEach(function (j) { detail.push(j.join + ' (−' + j.pruned_subparts + ' subparts)'); });
    document.getElementById('advdetail').textContent = detail.length
      ? 'recommends: ' + detail.join(', ') + (ad.computed_at ? '  ·  analyzed ' + ad.computed_at : '')
      : 'no layout changes recommended' + (ad.computed_at ? '  ·  analyzed ' + ad.computed_at : '');
    var rows = (wl.fingerprints || []).map(function (f) {
      return '<tr><td class="c">' + esc(f.fingerprint) + '</td>' +
        '<td class="c" title="' + esc(f.canonical) + '">' + esc(f.canonical) + '</td>' +
        '<td>' + esc(f.shape) + '</td><td>' + f.count + '</td>' +
        '<td>' + f.mean_ms.toFixed(2) + '</td><td>' + f.p95_ms.toFixed(2) + '</td>' +
        '<td>' + (f.errors || 0) + '</td><td>' + (f.degraded || 0) + '</td>' +
        '<td>' + (f.mean_steps_to_first || 0).toFixed(1) + '</td>' +
        '<td>' + spark(f.coverage) + '</td></tr>';
    });
    document.querySelector('#wl tbody').innerHTML = rows.join('');
  }).catch(function (e) {
    document.getElementById('err').textContent = '(' + e + ')';
  });
  // /resources may live on the admin listener (-admin-addr); fetch it
  // separately and tolerate its absence instead of failing the page.
  fetch('/resources?top=10').then(function (r) { return r.ok ? r.json() : null; }).then(function (rs) {
    if (!rs) {
      document.getElementById('resnote').textContent = 'resource ledger unavailable here (served on the admin listener)';
      return;
    }
    document.getElementById('resnote').textContent = '';
    var rows = (rs.top || []).map(function (f) {
      return '<tr><td class="c" title="' + esc(f.canonical || '') + '">' + esc(f.fingerprint) + '</td>' +
        '<td>' + (f.profile_cpu_seconds || 0).toFixed(3) + '</td>' +
        '<td>' + (f.task_seconds || 0).toFixed(3) + '</td>' +
        '<td>' + (f.rows_loaded || 0) + '</td>' +
        '<td>' + mb(f.bytes_decoded || 0) + '</td>' +
        '<td>' + mb(f.storage_bytes_read || 0) + '</td>' +
        '<td>' + mb(f.cache_bytes_pinned || 0) + '</td>' +
        '<td>' + (f.dict_decodes || 0) + '</td>' +
        '<td>' + (f.peak_relation_rows || 0) + '</td></tr>';
    });
    document.querySelector('#res tbody').innerHTML = rows.join('');
  }).catch(function () {});
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
`
