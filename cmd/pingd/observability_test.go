package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"ping/internal/obs"
	"ping/internal/obs/slo"
)

// obsLine is the union of the /query NDJSON line shapes the
// observability tests care about (server_test.go's line type plus the
// pause fields).
type obsLine struct {
	Step    int    `json:"step"`
	Answers int    `json:"answers"`
	Done    bool   `json:"done"`
	Steps   int    `json:"steps"`
	Paused  bool   `json:"paused"`
	Cursor  string `json:"cursor"`
	Error   string `json:"error"`
}

func readObsLines(t *testing.T, body io.Reader) []obsLine {
	t.Helper()
	var out []obsLine
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l obsLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if l.Error != "" {
			t.Fatalf("in-band error: %s", l.Error)
		}
		out = append(out, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// lockedBuffer is a goroutine-safe bytes.Buffer for async sinks.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestEndpointContentTypes walks the server's own route table and checks
// every endpoint answers 200 with the Content-Type it declares — and
// that the declared-JSON bodies actually parse. Because handler() mounts
// from the same table, an endpoint cannot be added without landing in
// this walk.
func TestEndpointContentTypes(t *testing.T) {
	srv, ts, _ := newTestServer(t, serverConfig{Trace: true, RowLimit: 5})

	const qs = `SELECT * WHERE { ?x <p0> ?y }`

	// A paused budgeted query supplies the cursor /resume needs.
	resp, err := http.Get(queryURL(ts.URL, qs) + "&max_steps=1")
	if err != nil {
		t.Fatal(err)
	}
	lines := readObsLines(t, resp.Body)
	resp.Body.Close()
	last := lines[len(lines)-1]
	if !last.Paused || last.Cursor == "" {
		t.Fatalf("budgeted query did not pause with a cursor: %+v", last)
	}

	// Per-path request recipes that produce a 200.
	requests := map[string]func() (*http.Response, error){
		"/query":  func() (*http.Response, error) { return http.Get(queryURL(ts.URL, qs)) },
		"/resume": func() (*http.Response, error) { return http.Get(ts.URL + "/resume?cursor=" + last.Cursor) },
		"/update": func() (*http.Response, error) {
			return http.Post(ts.URL+"/update?op=add", "application/n-triples",
				strings.NewReader("<s0> <p0> <s1> .\n"))
		},
		"/stats":     func() (*http.Response, error) { return http.Get(ts.URL + "/stats") },
		"/explain":   func() (*http.Response, error) { return http.Get(ts.URL + "/explain?q=" + url.QueryEscape(qs)) },
		"/workload":  func() (*http.Response, error) { return http.Get(ts.URL + "/workload") },
		"/slo":       func() (*http.Response, error) { return http.Get(ts.URL + "/slo") },
		"/advisor":   func() (*http.Response, error) { return http.Get(ts.URL + "/advisor") },
		"/traces":    func() (*http.Response, error) { return http.Get(ts.URL + "/traces") },
		"/resources": func() (*http.Response, error) { return http.Get(ts.URL + "/resources") },
		"/dashboard": func() (*http.Response, error) { return http.Get(ts.URL + "/dashboard") },
	}

	for _, rt := range srv.routes() {
		do, ok := requests[rt.path]
		if !ok {
			t.Errorf("route %s has no request recipe in the walk test — add one", rt.path)
			continue
		}
		resp, err := do()
		if err != nil {
			t.Fatalf("%s: %v", rt.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d: %s", rt.path, resp.StatusCode, body)
			continue
		}
		if got := resp.Header.Get("Content-Type"); got != rt.contentType {
			t.Errorf("%s: Content-Type %q, want %q", rt.path, got, rt.contentType)
		}
		if rt.jsonBody {
			var doc map[string]any
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Errorf("%s: declared JSON body does not parse: %v", rt.path, err)
			}
		}
	}
}

// TestTraceparentRoundTrip sends a query carrying a W3C traceparent (as
// pingquery -server does) and checks the client's trace ID lands in the
// wide query event, in the exported span NDJSON, and in the /traces ring
// — with the server's root span parented under the client's span.
func TestTraceparentRoundTrip(t *testing.T) {
	eventBuf := &lockedBuffer{}
	spanBuf := &lockedBuffer{}
	reg := obs.NewRegistry()
	events := obs.NewEventLog(eventBuf, 64, reg)
	spans := obs.NewAsyncSink(spanBuf, 64)
	_, ts, _ := newTestServer(t, serverConfig{
		Metrics:  reg,
		Events:   events,
		SpanSink: spans,
		// Tracing deliberately OFF: a propagated traceparent must force
		// the trace anyway.
	})

	remote := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Flags: 1}
	req, err := http.NewRequest("GET", queryURL(ts.URL, `SELECT * WHERE { ?x <p0> ?y }`), nil)
	if err != nil {
		t.Fatal(err)
	}
	obs.InjectTraceparent(req, remote)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	lines := readObsLines(t, resp.Body)
	resp.Body.Close()
	if last := lines[len(lines)-1]; !last.Done {
		t.Fatalf("query did not complete: %+v", last)
	}

	if err := events.Close(); err != nil {
		t.Fatal(err)
	}
	if err := spans.Close(); err != nil {
		t.Fatal(err)
	}

	wantTrace := remote.TraceID.String()

	evs, err := obs.ReadWideEvents(strings.NewReader(eventBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("got %d wide events, want 1", len(evs))
	}
	if evs[0].TraceID != wantTrace {
		t.Fatalf("wide event trace %q, want client trace %q", evs[0].TraceID, wantTrace)
	}
	if evs[0].Steps == 0 || evs[0].Answers == 0 || evs[0].LatencyMs <= 0 {
		t.Fatalf("wide event missing lineage facts: %+v", evs[0])
	}

	sc := bufio.NewScanner(strings.NewReader(spanBuf.String()))
	var root *obs.SpanRecord
	nspans := 0
	for sc.Scan() {
		var rec obs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		if rec.TraceID != wantTrace {
			t.Fatalf("exported span %s trace %q, want %q", rec.Name, rec.TraceID, wantTrace)
		}
		if rec.Name == "query" {
			r := rec
			root = &r
		}
		nspans++
	}
	if nspans == 0 || root == nil {
		t.Fatalf("no exported query span (%d spans total)", nspans)
	}
	// The server's root span continues the client's span, so the trace
	// stitches together across the process boundary.
	if root.ParentSpanID != remote.SpanID.String() {
		t.Fatalf("query span parent %q, want client span %q", root.ParentSpanID, remote.SpanID)
	}
}

// fakeSLOClock is a mutable time source for the injected SLO engine.
type fakeSLOClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeSLOClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeSLOClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestSLOCoveragePageAndRecover is the acceptance scenario: budgeted
// lineages whose coverage at budget exhaustion is degraded drive the
// coverage-at-budget objective from ok to page within the fast window
// pair, visibly in /stats and /slo; once the failures age out and
// healthy budgeted traffic flows, the alert clears with no manual reset.
func TestSLOCoveragePageAndRecover(t *testing.T) {
	clk := &fakeSLOClock{t: time.Date(2026, 1, 2, 12, 0, 0, 0, time.UTC)}
	reg := obs.NewRegistry()
	engine := slo.NewEngine(reg,
		slo.CoverageAtBudget("coverage-at-budget", 0.99, 0.99),
	).WithClock(clk.now)
	_, ts, _ := newTestServer(t, serverConfig{Metrics: reg, SLO: engine})

	const qs = `SELECT * WHERE { ?x <p0> ?y }`

	sloState := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/slo")
		if err != nil {
			t.Fatal(err)
		}
		var doc sloResponse
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, o := range doc.Objectives {
			if o.Name == "coverage-at-budget" {
				return o.State
			}
		}
		t.Fatal("coverage-at-budget objective missing from /slo")
		return ""
	}

	if got := sloState(); got != slo.StateOK {
		t.Fatalf("initial state %q, want ok", got)
	}

	// Sanity: the query takes several steps and its first step is a
	// proper subset — so a max_steps=1 budget yields coverage < 0.99.
	full, err := http.Get(queryURL(ts.URL, qs))
	if err != nil {
		t.Fatal(err)
	}
	fullLines := readObsLines(t, full.Body)
	full.Body.Close()
	done := fullLines[len(fullLines)-1]
	if !done.Done || done.Steps < 2 || fullLines[0].Answers >= done.Answers {
		t.Fatalf("test query unsuitable for budget degradation: first step %d/%d answers over %d steps",
			fullLines[0].Answers, done.Answers, done.Steps)
	}

	// Fault injection: budgeted lineages that exhaust their one-step
	// budget early (pause) and only complete on resume. Their coverage at
	// the budget boundary is the degraded signal.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(queryURL(ts.URL, qs) + "&max_steps=1")
		if err != nil {
			t.Fatal(err)
		}
		lines := readObsLines(t, resp.Body)
		resp.Body.Close()
		last := lines[len(lines)-1]
		if !last.Paused {
			t.Fatalf("budgeted query did not pause: %+v", last)
		}
		rr, err := http.Get(ts.URL + "/resume?cursor=" + last.Cursor)
		if err != nil {
			t.Fatal(err)
		}
		rlines := readObsLines(t, rr.Body)
		rr.Body.Close()
		if fin := rlines[len(rlines)-1]; !fin.Done {
			t.Fatalf("resume did not complete: %+v", fin)
		}
	}

	// All bad events sit in both fast windows: the objective pages.
	if got := sloState(); got != slo.StatePage {
		t.Fatalf("state after degraded budgeted lineages = %q, want page", got)
	}

	// The page is visible in /stats too.
	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if st.SLOStates["coverage-at-budget"] != slo.StatePage {
		t.Fatalf("/stats slo_states = %v, want coverage-at-budget page", st.SLOStates)
	}

	// Recovery: the failures age past the 5m and 30m windows, and
	// healthy budgeted traffic (budget wide enough to finish: coverage
	// 1.0 at the boundary) flows. The alert clears automatically.
	clk.advance(31 * time.Minute)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(queryURL(ts.URL, qs) + "&max_steps=100")
		if err != nil {
			t.Fatal(err)
		}
		lines := readObsLines(t, resp.Body)
		resp.Body.Close()
		if fin := lines[len(lines)-1]; !fin.Done {
			t.Fatalf("healthy budgeted query did not complete: %+v", fin)
		}
	}
	if got := sloState(); got != slo.StateOK {
		t.Fatalf("state after recovery = %q, want ok", got)
	}

	// The whole ok -> page -> ok journey was counted.
	if v := reg.Counter("slo_alert_transitions_total",
		obs.Labels{"objective": "coverage-at-budget", "to": slo.StatePage}).Value(); v != 1 {
		t.Errorf("transitions to page = %d, want 1", v)
	}
}
