// Command pingd is the long-running PING serving daemon: it loads a
// store produced by pingload and answers progressive queries over HTTP
// while accepting live updates, with snapshot isolation between the two.
//
// Every query pins the latest published epoch for its whole run and
// streams one JSON line per PQA step (NDJSON); updates are applied
// copy-on-write by a snapshot-mode maintainer and published atomically
// as a new epoch, so readers never block writers and vice versa.
// Admission control bounds concurrent queries (excess requests wait in a
// bounded queue, then get 429).
//
// Endpoints:
//
//	GET/POST /query?q=...     stream one JSON line per progressive step
//	POST     /update?op=add   apply an N-Triples body, publish new epoch
//	GET      /stats           epoch, pins, GC and admission counters
//	GET      /metrics         Prometheus text format (plus /debug/vars, pprof)
//	GET/POST /explain?q=...   query plan; ?analyze=1 runs it, ?format=text
//	GET      /workload        per-fingerprint aggregates; ?top=N, ?format=ndjson
//	GET      /slo             objectives, burn rates, alert states
//	GET/POST /advisor         layout advisor recommendation; POST ?apply=1 installs it
//	GET      /traces          retained query trace trees (-trace); ?format=chrome
//	GET      /resources       top resource consumers by measured cost; ?top=N, ?format=ndjson
//	GET      /dashboard       live HTML dashboard polling the endpoints above
//
// With -admin-addr the introspection surface (/metrics, /debug/*,
// /traces, /resources) moves to a second listener; with -profile-dir
// the daemon captures CPU+heap profiles continuously into bounded
// rotating files and attributes profiled CPU back to query
// fingerprints via pprof labels.
//
// Usage:
//
//	pingd -store ./uniprot-store -addr :8080 -max-inflight 8 -query-timeout 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ping/internal/dfs"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/obs/prof"
	"ping/internal/obs/slo"
	"ping/internal/workload"
)

func main() {
	var (
		store    = flag.String("store", "", "store directory written by pingload (required)")
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 4, "dataflow workers per query")
		inflight = flag.Int("max-inflight", 4, "maximum concurrently executing queries")
		queued   = flag.Int("max-queue", 8, "maximum queries waiting for a slot (excess gets 429)")
		timeout  = flag.Duration("query-timeout", 60*time.Second, "per-query deadline, queue wait included (0 = none)")
		rows     = flag.Int("rows", 20, "maximum bindings per step line when ?bindings=1 (0 disables)")
		strategy = flag.String("strategy", "level", "slice order: level, product, largest, smallest")
		policy   = flag.String("failure-policy", "failfast", "storage failure handling: failfast or degrade")
		useBloom = flag.Bool("bloom", false, "use sub-partition Bloom filters for pruning (store must be built with -blooms)")
		retries  = flag.Int("retries", 2, "extra replica-failover rounds per block read (-1 disables retries)")

		slowLog       = flag.String("slow-query-log", "", "append NDJSON records for slow queries to this file (empty = off)")
		slowThreshold = flag.Duration("slow-query-threshold", 500*time.Millisecond, "latency at or above which a query is logged as slow")
		logMaxBytes   = flag.Int64("log-max-bytes", obs.DefaultLogMaxBytes, "size cap per log generation (slow-query log, wide events, trace export)")
		logMaxFiles   = flag.Int("log-max-files", 3, "rotated generations kept per log")
		wideEvents    = flag.String("wide-events", "", "append one wide NDJSON event per completed query lineage to this file (empty = off)")
		eventQueue    = flag.Int("wide-events-queue", 1024, "bounded queue of the async wide-event sink (full = drop, never block)")
		workloadMax   = flag.Int("workload-max", 512, "maximum distinct query fingerprints tracked by the workload profiler")
		workloadOut   = flag.String("workload-out", "", "write the workload snapshot (NDJSON) to this file on shutdown")
		trace         = flag.Bool("trace", false, "retain per-query trace trees, served at /traces")
		traceSample   = flag.Int("trace-sample", 1, "trace 1 in N queries (head sampling; 1 = all); traceparent requests are always traced")
		traceBuffer   = flag.Int("trace-buffer", 64, "how many trace trees the /traces ring retains")
		traceExport   = flag.String("trace-export", "", "append finished trace spans (NDJSON, one span per line) to this file (empty = off)")

		sloLatency    = flag.Duration("slo-latency", 2*time.Second, "latency SLO threshold: queries should finish within this")
		sloLatencyPct = flag.Float64("slo-latency-target", 0.99, "fraction of queries that must meet -slo-latency")
		sloFirstSteps = flag.Int("slo-first-answer-steps", 3, "first-answer SLO: first answer within this many slice steps")
		sloFirstPct   = flag.Float64("slo-first-answer-target", 0.95, "fraction of answer-bearing queries that must meet -slo-first-answer-steps")
		sloCoverage   = flag.Float64("slo-coverage", 0.5, "coverage SLO: budgeted queries should reach this coverage at budget exhaustion")
		sloCovPct     = flag.Float64("slo-coverage-target", 0.95, "fraction of budgeted queries that must meet -slo-coverage")
		sloAvailPct   = flag.Float64("slo-availability-target", 0.999, "fraction of queries that must complete without error or degradation")

		adviseEvery = flag.Duration("advise-interval", 0, "re-run the layout advisor on the live workload this often (0 = off); advice is served at /advisor")
		adviseTop   = flag.Int("advise-top", 5, "hot fingerprints the advisor optimizes for")
		adviseApply = flag.Bool("advise-apply", false, "apply advisor recommendations automatically as new epochs (with -advise-interval)")

		adminAddr     = flag.String("admin-addr", "", "serve /metrics, /debug/*, /traces and /resources on this separate listener (empty = everything on -addr)")
		profileDir    = flag.String("profile-dir", "", "capture CPU+heap profiles continuously into this directory (empty = off)")
		profileEvery  = flag.Duration("profile-interval", time.Minute, "continuous-profiling cadence (with -profile-dir)")
		profileWindow = flag.Duration("profile-cpu-window", 5*time.Second, "CPU sampling window per capture (with -profile-dir)")
		profileFiles  = flag.Int("profile-max-files", 3, "rotated profile generations kept per kind (bounds capture disk use)")
		runtimeEvery  = flag.Duration("runtime-metrics-interval", 10*time.Second, "runtime/metrics polling cadence for the runtime_* gauges (0 = off)")
		admissionCPU  = flag.Duration("admission-cpu", 0, "cost-based admission: shed queries once the measured CPU cost of inflight queries exceeds this budget (0 = off)")

		grace       = flag.Duration("shutdown-grace", 5*time.Second, "how long in-flight queries may drain (pausing as cursors) after SIGTERM/SIGINT")
		cursorTTL   = flag.Duration("cursor-ttl", 15*time.Minute, "how long a paused query stays resumable (bounds its snapshot lease)")
		cursorIdle  = flag.Duration("cursor-idle-evict", time.Minute, "idle time before an in-memory cursor hibernates to disk")
		cursorMax   = flag.Int("max-cursors", 1024, "maximum paused queries retained")
		cursorSweep = flag.Duration("cursor-sweep", 30*time.Second, "interval of the cursor TTL/idle-eviction sweep")
	)
	flag.Parse()
	if *store == "" {
		flag.Usage()
		os.Exit(2)
	}

	fs, err := dfs.OpenOnDisk(*store)
	if err != nil {
		fatal(err)
	}
	fs.SetRetryPolicy(*retries, 500*time.Microsecond, 50*time.Millisecond)
	lay, err := hpart.Load(fs, nil)
	if err != nil {
		fatal(err)
	}

	cfg := serverConfig{
		Workers:         *workers,
		MaxInflight:     *inflight,
		MaxQueue:        *queued,
		QueryTimeout:    *timeout,
		RowLimit:        *rows,
		UseBloomPruning: *useBloom,
		Persist:         fs,
		CursorTTL:       *cursorTTL,
		CursorIdleEvict: *cursorIdle,
		MaxCursors:      *cursorMax,
		MaxFingerprints: *workloadMax,
		Trace:           *trace,
		TraceSample:     *traceSample,
		TraceBuffer:     *traceBuffer,
		AdviseTop:       *adviseTop,
		AdmissionCPU:    *admissionCPU,
	}
	if *slowLog != "" {
		// The slow-query log rotates at -log-max-bytes so a long-running
		// daemon cannot grow it without bound.
		f, err := obs.OpenRotatingFile(*slowLog, *logMaxBytes, *logMaxFiles)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cfg.SlowLog = workload.NewSlowLog(f, *slowThreshold)
	}
	if *wideEvents != "" {
		f, err := obs.OpenRotatingFile(*wideEvents, *logMaxBytes, *logMaxFiles)
		if err != nil {
			fatal(err)
		}
		cfg.Events = obs.NewEventLog(f, *eventQueue, nil)
		defer cfg.Events.Close()
	}
	if *traceExport != "" {
		f, err := obs.OpenRotatingFile(*traceExport, *logMaxBytes, *logMaxFiles)
		if err != nil {
			fatal(err)
		}
		cfg.SpanSink = obs.NewAsyncSink(f, 0)
		defer cfg.SpanSink.Close()
	}
	cfg.SLO = slo.NewEngine(nil,
		slo.Latency("latency", *sloLatencyPct, *sloLatency),
		slo.FirstAnswerSteps("first-answer", *sloFirstPct, *sloFirstSteps),
		slo.CoverageAtBudget("coverage-at-budget", *sloCovPct, *sloCoverage),
		slo.Availability("availability", *sloAvailPct),
	)
	if cfg.Strategy, err = parseStrategy(*strategy); err != nil {
		fatal(err)
	}
	if cfg.FailurePolicy, err = parsePolicy(*policy); err != nil {
		fatal(err)
	}

	logger := log.New(os.Stderr, "pingd: ", log.LstdFlags)
	srv := newServer(hpart.NewStore(lay), cfg)
	stopSweeper := srv.startSweeper(*cursorSweep)
	stopAdvisor := srv.startAdvisor(*adviseEvery, *adviseApply, logger.Printf)

	// Continuous profiling & runtime metrics: the poller exports
	// runtime_* gauges; the capturer writes CPU+heap profiles on a
	// cadence into bounded rotating files and feeds label-attributed CPU
	// back into the workload profiler (served at /resources, consulted
	// by -admission-cpu).
	if *runtimeEvery > 0 {
		poller := prof.NewPoller(nil, *runtimeEvery).Start()
		defer poller.Stop()
	}
	if *profileDir != "" {
		capt, err := prof.StartCapture(prof.CaptureConfig{
			Dir:       *profileDir,
			Interval:  *profileEvery,
			CPUWindow: *profileWindow,
			MaxFiles:  *profileFiles,
			OnCPUProfile: func(data []byte) {
				p, err := prof.ParseProfile(data)
				if err != nil {
					return
				}
				byFP, _ := p.CPUByLabel(prof.LabelQueryFP)
				for fp, ns := range byFP {
					srv.profiler.AddProfileCPU(fp, time.Duration(ns))
				}
			},
		})
		if err != nil {
			fatal(err)
		}
		defer capt.Close()
		logger.Printf("continuous profiling into %s (every %v, %v CPU window, %d generations)",
			*profileDir, *profileEvery, *profileWindow, *profileFiles)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler(logger.Printf)}
	var adminSrv *http.Server
	if *adminAddr != "" {
		// Production posture: the query surface stays on -addr; metrics,
		// pprof, traces and the resource ledger move behind -admin-addr
		// (typically loopback or an internal interface).
		public, admin := srv.splitHandlers(logger.Printf)
		httpSrv.Handler = public
		adminSrv = &http.Server{Addr: *adminAddr, Handler: admin}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	if adminSrv != nil {
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("admin listener: %v", err)
			}
		}()
		logger.Printf("admin surface (metrics, pprof, traces, resources) on %s", *adminAddr)
	}

	fmt.Printf("serving %d triples (%d levels, epoch %d) on %s\n",
		lay.TotalTriples(), lay.NumLevels, srv.store.Epoch(), *addr)
	fmt.Printf("try: curl '%s/query?q=SELECT...'   update: curl -XPOST --data-binary @delta.nt '%s/update'\n",
		*addr, *addr)

	select {
	case err := <-errc:
		// Listener failed before any signal (e.g. port in use).
		fatal(err)
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining for up to %v", *grace)
	// In-flight queries pause at their next step boundary and park as
	// cursors, so the drain completes quickly and nothing is lost.
	srv.beginDrain()
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		logger.Printf("forced shutdown: %v", err)
		httpSrv.Close()
	}
	if adminSrv != nil {
		if err := adminSrv.Shutdown(shCtx); err != nil {
			adminSrv.Close()
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	stopSweeper()
	stopAdvisor()
	if n, err := srv.cursors.HibernateAll(); err != nil {
		logger.Printf("cursor checkpoint: %v", err)
	} else if n > 0 {
		logger.Printf("checkpointed %d paused queries to disk", n)
	}
	if *workloadOut != "" {
		if err := srv.profiler.SaveFile(*workloadOut); err != nil {
			logger.Printf("workload snapshot: %v", err)
		} else {
			logger.Printf("workload snapshot saved to %s", *workloadOut)
		}
	}
	logger.Printf("shut down cleanly")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pingd: %v\n", err)
	os.Exit(1)
}
