package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ping/internal/dfs"
	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// TestWorkloadTopBounds: ?top=N must bound both response formats, and
// malformed values must be rejected instead of silently ignored.
func TestWorkloadTopBounds(t *testing.T) {
	_, ts, _ := newTestServer(t, serverConfig{})

	for i := 0; i < 3; i++ {
		qs := fmt.Sprintf(`SELECT * WHERE { ?x <p%d> ?y }`, i)
		resp, err := http.Get(queryURL(ts.URL, qs))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	for _, format := range []string{"", "&format=ndjson"} {
		resp, err := http.Get(ts.URL + "/workload?top=2" + format)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var n int
		if format == "" {
			var wl workloadResponse
			if err := json.Unmarshal(body, &wl); err != nil {
				t.Fatal(err)
			}
			n = len(wl.Fingerprints)
		} else {
			n = strings.Count(strings.TrimSpace(string(body)), "\n") + 1
		}
		if n != 2 {
			t.Errorf("top=2%s returned %d fingerprints, want 2", format, n)
		}
	}

	for _, bad := range []string{"x", "-1", "5x", "2.5"} {
		resp, err := http.Get(ts.URL + "/workload?top=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("top=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// advisorFixtureServer serves the advisor's canonical fixture: a
// four-level hierarchy where the chain p⋈q answers only once the
// schedule reaches level 4, so the advisor has cold levels to merge.
func advisorFixtureServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server, *rdf.Graph) {
	t.Helper()
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	levelProps := [][]string{
		{"p", "q"},
		{"p", "q", "f1"},
		{"p", "q", "f1", "f2"},
		{"p", "q", "f1", "f2", "f3"},
	}
	counts := []int{5, 4, 3, 2}
	for l, props := range levelProps {
		for i := 0; i < counts[l]; i++ {
			s := fmt.Sprintf("l%ds%d", l+1, i)
			for _, p := range props {
				g.Add(iri(s), iri(p), iri(fmt.Sprintf("%s-%s", s, p)))
			}
		}
	}
	g.Add(iri("l4s0"), iri("p"), iri("l1s0"))
	g.Dedup()
	lay, err := hpart.Partition(g, hpart.Options{FS: dfs.New(dfs.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	srv := newServer(hpart.NewStore(lay), cfg)
	ts := httptest.NewServer(srv.handler(nil))
	t.Cleanup(ts.Close)
	return srv, ts, g
}

func getAdvisor(t *testing.T, method, u string) advisorResponse {
	t.Helper()
	req, err := http.NewRequest(method, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s: status %d: %s", method, u, resp.StatusCode, body)
	}
	var ar advisorResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("bad /advisor body %s: %v", body, err)
	}
	return ar
}

// TestAdvisorEndpointOnlineLoop drives the full online loop through the
// HTTP surface: hot queries populate the profiler, GET /advisor shows
// the recommendation, a cursor checkpointed on the old epoch pauses,
// POST /advisor?apply=1 publishes the advised layout as a new epoch —
// after which fresh queries answer in fewer steps with the same answers,
// and the pre-epoch cursor still resumes to the exact result.
func TestAdvisorEndpointOnlineLoop(t *testing.T) {
	srv, ts, g := advisorFixtureServer(t, serverConfig{AdviseTop: 5, RowLimit: 5})

	const hot = `SELECT * WHERE { ?x <p> ?y . ?y <q> ?z }`
	oracle := engine.Naive(g, sparql.MustParse(hot)).Distinct().Card()

	var stepsBefore int
	for i := 0; i < 3; i++ {
		lines := getRLines(t, queryURL(ts.URL, hot))
		done := lines[len(lines)-1]
		if !done.Done || done.Answers != oracle {
			t.Fatalf("hot query run %d: %+v, want done with %d answers", i, done, oracle)
		}
		stepsBefore = done.Steps
	}
	if stepsBefore < 2 {
		t.Fatalf("fixture broken: hot query took %d steps before advice", stepsBefore)
	}

	ar := getAdvisor(t, http.MethodGet, ts.URL+"/advisor")
	if ar.Advice == nil || len(ar.Advice.Merges) == 0 {
		t.Fatalf("advisor recommended nothing: %+v", ar)
	}
	if ar.Applied != 0 {
		t.Fatalf("applied %d before any apply", ar.Applied)
	}

	// Park a cursor on the pre-advice epoch: one budgeted step, paused.
	paused := getRLines(t, queryURL(ts.URL, hot)+"&max_steps=1")
	plast := paused[len(paused)-1]
	if !plast.Paused || plast.Cursor == "" {
		t.Fatalf("budgeted query did not pause: %+v", plast)
	}

	applied := getAdvisor(t, http.MethodPost, ts.URL+"/advisor?apply=1")
	if applied.Applied != 1 {
		t.Fatalf("applied = %d, want 1", applied.Applied)
	}
	if srv.store.Epoch() != 1 {
		t.Fatalf("store epoch %d after apply, want 1", srv.store.Epoch())
	}

	// Fresh run on the advised layout: same answers, fewer steps.
	after := getRLines(t, queryURL(ts.URL, hot))
	adone := after[len(after)-1]
	if !adone.Done || adone.Answers != oracle {
		t.Fatalf("post-advice run: %+v, want done with %d answers", adone, oracle)
	}
	if adone.Steps >= stepsBefore {
		t.Errorf("post-advice steps = %d, want < %d", adone.Steps, stepsBefore)
	}

	// The checkpointed cursor resumes across the advisor epoch and
	// completes exactly, still pinned to its pre-advice snapshot.
	resumed := getRLines(t, ts.URL+"/resume?cursor="+plast.Cursor)
	rlast := resumed[len(resumed)-1]
	if !rlast.Done || rlast.Answers != oracle {
		t.Fatalf("resumed cursor: %+v, want done with %d answers", rlast, oracle)
	}
	if rlast.Epoch != 0 {
		t.Errorf("resumed cursor ran on epoch %d, want its pinned epoch 0", rlast.Epoch)
	}

	// A second apply of now-stale advice must be rejected, not reapplied.
	if err := srv.applyAdvice(ar.Advice); err == nil {
		t.Error("stale advice applied without error")
	}
}
