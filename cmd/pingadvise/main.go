// Command pingadvise is the offline layout advisor: it reads a recorded
// workload (a pingd snapshot, or raw wide events with -events) plus a
// partitioned store, replays the hot fingerprints, and reports which cold
// CS levels to merge and which join-reduction filters to precompute. By
// default the report is a dry run; -apply rewrites the store in place
// (do not run against a store a live pingd is serving — use pingd's
// -advise-interval online mode for that).
//
// Usage:
//
//	pingadvise -store data/ -workload workload.ndjson
//	pingadvise -store data/ -events -workload events.ndjson -top 10 -json
//	pingadvise -store data/ -workload workload.ndjson -apply
package main

import (
	"flag"
	"fmt"
	"os"

	"ping/internal/advisor"
	"ping/internal/dfs"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/ping"
	"ping/internal/workload"
)

func main() {
	var (
		store    = flag.String("store", "", "partitioned store directory (pingload output)")
		in       = flag.String("workload", "-", "workload NDJSON snapshot file (-: stdin)")
		events   = flag.Bool("events", false, "treat the input as a wide-event stream (pingd -wide-events)")
		top      = flag.Int("top", 5, "optimize for the top N fingerprints")
		minRun   = flag.Int("min-run", 2, "minimum run of adjacent cold levels worth merging")
		maxJoins = flag.Int("max-joins", 8, "maximum join reductions to precompute")
		strategy = flag.String("strategy", "level", "slice strategy to optimize for: level, product, largest, smallest")
		apply    = flag.Bool("apply", false, "apply the recommendation to the store (default: dry-run report)")
		asJSON   = flag.Bool("json", false, "emit the report as JSON instead of text")
	)
	flag.Parse()
	if *store == "" {
		flag.Usage()
		os.Exit(2)
	}

	fs, err := dfs.OpenOnDisk(*store)
	if err != nil {
		fatal(err)
	}
	lay, err := hpart.Load(fs, nil)
	if err != nil {
		fatal(err)
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	var stats []workload.FingerprintStats
	if *events {
		prof, n, err := workload.ReplayEvents(r, workload.Options{Metrics: obs.NewRegistry()})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "replayed %d wide event(s)\n", n)
		stats = prof.Snapshot()
	} else {
		stats, err = workload.ReadNDJSON(r)
		if err != nil {
			fatal(err)
		}
	}

	cfg := advisor.Config{TopK: *top, MinMergeRun: *minRun, MaxReductions: *maxJoins}
	if cfg.Strategy, err = parseStrategy(*strategy); err != nil {
		fatal(err)
	}
	adv, err := advisor.Analyze(lay, stats, cfg)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		if err := adv.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else if err := adv.WriteText(os.Stdout); err != nil {
		fatal(err)
	}

	if !*apply {
		return
	}
	if adv.Empty() {
		fmt.Fprintln(os.Stderr, "nothing to apply")
		return
	}
	m, err := hpart.NewMaintainer(lay)
	if err != nil {
		fatal(err)
	}
	if err := adv.Apply(m); err != nil {
		fatal(err)
	}
	if err := fs.SaveManifest(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "applied: %d level merge(s), %d join reduction(s); new signature %016x\n",
		len(adv.Merges), len(adv.Joins), lay.Signature())
}

func parseStrategy(name string) (ping.SliceStrategy, error) {
	switch name {
	case "level":
		return ping.LevelCumulative, nil
	case "product":
		return ping.ProductOrder, nil
	case "largest":
		return ping.LargestFirst, nil
	case "smallest":
		return ping.SmallestFirst, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pingadvise:", err)
	os.Exit(1)
}
