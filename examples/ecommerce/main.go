// Ecommerce runs the exact-query-answering comparison of §5.6 on the
// WatDiv-style Shop dataset: PING vs the S2RDF (ExtVP) and WORQ
// (Bloom-filter reductions) baselines, on level-targeted queries. The
// fewer hierarchy levels a query touches, the larger PING's advantage —
// the headline of Fig. 9.
package main

import (
	"fmt"
	"time"

	"ping/internal/baseline/s2rdf"
	"ping/internal/baseline/worq"
	"ping/internal/gmark"
	"ping/internal/hpart"
	"ping/internal/ping"
	"ping/internal/sparql"
)

func main() {
	schema := gmark.Shop()
	data := schema.Generate(1, 21)
	fmt.Printf("shop dataset: %d triples\n", data.Graph.Len())

	// Preprocess all three systems.
	layout, err := hpart.Partition(data.Graph, hpart.Options{})
	if err != nil {
		panic(err)
	}
	proc := ping.NewProcessor(layout, ping.Options{})
	fmt.Printf("PING  partitioned in %v (%d levels, %s stored)\n",
		layout.PreprocessTime, layout.NumLevels, mib(layout.StoredBytes))

	s2, err := s2rdf.Preprocess(data.Graph, s2rdf.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("S2RDF preprocessed in %v (%s stored — ExtVP duplicates data)\n",
		s2.PreprocessTime(), mib(s2.StoredBytes()))

	wq, err := worq.Preprocess(data.Graph, worq.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("WORQ  preprocessed in %v (%s stored — dictionary compression)\n\n",
		wq.PreprocessTime(), mib(wq.StoredBytes()))

	// Level-targeted star queries on the User chain: 2..6 of 6 levels.
	fmt.Println("levels  system  time      rows-loaded  answers")
	for levels := 2; levels <= 6; levels++ {
		qs := data.LevelTargetedQueries("User", levels, 3, 2, int64(levels))
		type sys struct {
			name string
			run  func(*sparql.Query) (int, int64, time.Duration, error)
		}
		systems := []sys{
			{"PING", func(q *sparql.Query) (int, int64, time.Duration, error) {
				start := time.Now()
				rel, stats, err := proc.EQA(q)
				if err != nil {
					return 0, 0, 0, err
				}
				return rel.Card(), stats.InputRows, time.Since(start), nil
			}},
			{"S2RDF", func(q *sparql.Query) (int, int64, time.Duration, error) {
				start := time.Now()
				rel, stats, err := s2.Query(q)
				if err != nil {
					return 0, 0, 0, err
				}
				return rel.Card(), stats.InputRows, time.Since(start), nil
			}},
			{"WORQ", func(q *sparql.Query) (int, int64, time.Duration, error) {
				start := time.Now()
				rel, stats, err := wq.Query(q)
				if err != nil {
					return 0, 0, 0, err
				}
				return rel.Card(), stats.InputRows, time.Since(start), nil
			}},
		}
		for _, s := range systems {
			var rows int64
			var answers int
			var total time.Duration
			for _, q := range qs {
				a, r, d, err := s.run(q)
				if err != nil {
					panic(err)
				}
				answers += a
				rows += r
				total += d
			}
			fmt.Printf("%d of 6  %-6s %-9v %12d %8d\n",
				levels, s.name, total/time.Duration(len(qs)),
				rows/int64(len(qs)), answers/len(qs))
		}
		fmt.Println()
	}
	fmt.Println("note: all three systems return identical answer counts — they differ")
	fmt.Println("only in how much data they touch to get there.")
}

func mib(n int64) string { return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20)) }
