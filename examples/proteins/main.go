// Proteins reproduces the paper's motivating scenario (Example 1 /
// Fig. 1): a Uniprot-style protein graph where occursIn and hasKeyword
// always occur while reference and interacts are progressively rarer
// refinements. The example shows the accuracy-vs-latency trade-off of
// progressive query answering: the first slice returns in a fraction of
// the total time with partial coverage, and coverage climbs to 100% as
// deeper levels load.
package main

import (
	"fmt"

	"ping/internal/gmark"
	"ping/internal/hpart"
	"ping/internal/ping"
	"ping/internal/sparql"
)

func main() {
	// Generate the synthetic Uniprot dataset (the paper's is 3GB; this
	// one is laptop-sized but has the same 5-level CS hierarchy).
	schema := gmark.Uniprot()
	data := schema.Generate(0.5, 7)
	fmt.Printf("generated %d triples over schema %q\n", data.Graph.Len(), schema.Name)

	layout, err := hpart.Partition(data.Graph, hpart.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("partitioned into %d levels in %v:\n", layout.NumLevels, layout.PreprocessTime)
	for i, n := range layout.LevelTriples {
		fmt.Printf("  L%d: %d triples\n", i+1, n)
	}

	// The intro query: proteins with their organisms and keywords.
	q := sparql.MustParse(fmt.Sprintf(
		`SELECT * WHERE { ?x <%s> ?b . ?x <%s> ?d }`,
		schema.PropertyIRI("occursIn"), schema.PropertyIRI("hasKeyword")))

	proc := ping.NewProcessor(layout, ping.Options{})
	res, err := proc.PQA(q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nprogressive answering (%d slices):\n", len(res.Steps))
	fmt.Println("slice  levels  answers  coverage  rows-loaded  time(cum)")
	for i, st := range res.Steps {
		fmt.Printf("%5d  ≤%-5d  %7d  %7.1f%%  %11d  %v\n",
			st.Step, st.MaxLevel, st.Answers.Card(), 100*res.Coverage(i),
			st.RowsLoadedCum, st.ElapsedCum)
	}

	// Example 5's refinement: pin the keyword to one that only exists on
	// the deepest level — PING's OI index then skips the shallow levels
	// entirely.
	deepKeyword := pickDeepKeyword(data, layout)
	if deepKeyword == "" {
		fmt.Println("\n(no single-level keyword found at this scale)")
		return
	}
	q2 := sparql.MustParse(fmt.Sprintf(
		`SELECT * WHERE { ?x <%s> ?b . ?x <%s> <%s> . ?x <%s> ?y }`,
		schema.PropertyIRI("occursIn"), schema.PropertyIRI("hasKeyword"),
		deepKeyword, schema.PropertyIRI("interacts")))
	rel, stats, err := proc.EQA(q2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nExample-5-style query with constant <%s>:\n", deepKeyword)
	fmt.Printf("  %d answers, only %d rows loaded thanks to OI/VP pruning\n",
		rel.Card(), stats.InputRows)
}

// pickDeepKeyword finds a hasKeyword object whose OI entry is confined to
// the deepest levels, mirroring Keyword789 in the paper.
func pickDeepKeyword(data *gmark.Dataset, layout *hpart.Layout) string {
	dict := data.Graph.Dict
	propID := dict.LookupIRI(data.Schema.PropertyIRI("hasKeyword"))
	for _, t := range data.Graph.Triples {
		if t.P != propID {
			continue
		}
		levels := layout.ObjectLevels(t.O)
		if levels.Count() == 1 && levels.Min() >= layout.NumLevels-1 {
			return dict.Term(t.O).Value
		}
	}
	return ""
}
