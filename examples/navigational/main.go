// Navigational demonstrates the §6.2 future-work extension implemented in
// this repository: progressive evaluation of property paths with
// recursion. A protein-interaction reachability query (<P> interacts+ ?y)
// is answered level by level — the closure deepens as more hierarchy
// levels load, and every intermediate answer set is already exact, which
// is precisely the "multiple iterations across the impacted levels"
// behaviour the paper sketches.
package main

import (
	"fmt"

	"ping/internal/gmark"
	"ping/internal/hpart"
	"ping/internal/ping"

	"ping/internal/sparql"
)

func main() {
	schema := gmark.Uniprot()
	data := schema.Generate(0.5, 11)
	fmt.Printf("uniprot-like dataset: %d triples\n", data.Graph.Len())

	layout, err := hpart.Partition(data.Graph, hpart.Options{})
	if err != nil {
		panic(err)
	}
	proc := ping.NewProcessor(layout, ping.Options{})
	interacts := schema.PropertyIRI("interacts")
	encodes := schema.PropertyIRI("encodes")
	translatesTo := schema.PropertyIRI("translatesTo")

	// Pick a protein with at least one interaction as the start point.
	start := pickInteractingProtein(data, interacts)
	if start == "" {
		panic("no interacting protein at this scale")
	}

	// 1. Recursive reachability: which proteins are reachable through
	// interaction chains of any length?
	q1 := sparql.MustParse(fmt.Sprintf(
		`SELECT * WHERE { <%s> <%s>+ ?reachable }`, start, interacts))
	fmt.Printf("\nQ1 (transitive interactions from %s):\n  %s\n", shortName(start), q1.Paths[0])
	res, err := proc.PQA(q1)
	if err != nil {
		panic(err)
	}
	for i, st := range res.Steps {
		fmt.Printf("  slice %d (levels ≤%d): %d proteins reachable, %d rows loaded, %v\n",
			st.Step, st.MaxLevel, st.Answers.Card(), st.RowsLoadedCum, st.ElapsedCum)
		_ = i
	}
	fmt.Printf("  exact closure: %d proteins\n", res.Final.Card())

	// 2. A mixed navigational query: proteins whose interaction closure
	// reaches a gene-encoding protein, composed with a sequence path.
	q2 := sparql.MustParse(fmt.Sprintf(
		`SELECT DISTINCT ?p WHERE { ?p (<%s>+)/<%s>/<%s> ?p2 }`,
		interacts, encodes, translatesTo))
	fmt.Printf("\nQ2 (interaction closure, then encodes/translatesTo):\n")
	rel, stats, err := proc.EQA(q2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  %d proteins match; %d rows loaded\n", rel.Card(), stats.InputRows)

	// 3. Alternation under closure: reachable via interacts OR encodes.
	q3 := sparql.MustParse(fmt.Sprintf(
		`SELECT * WHERE { <%s> (<%s>|<%s>)+ ?n }`, start, interacts, encodes))
	rel3, _, err := proc.EQA(q3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nQ3 ((interacts|encodes)+ from %s): %d nodes reachable\n",
		shortName(start), rel3.Card())
}

func pickInteractingProtein(data *gmark.Dataset, interacts string) string {
	dict := data.Graph.Dict
	propID := dict.LookupIRI(interacts)
	for _, t := range data.Graph.Triples {
		if t.P == propID {
			return dict.Term(t.S).Value
		}
	}
	return ""
}

func shortName(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '/' {
			return iri[i+1:]
		}
	}
	return iri
}
