// Dbpedia_usecase walks through §5.7 of the paper: evaluating the
// real-world query Q55 ("companies founded in California and the products
// they develop") on the 17-level DBpedia-like graph. It prints the
// Table 2 symbol-level index lookups, then the per-slice progression of
// Fig. 8 — coverage near zero while early sub-partitions cannot join,
// then climbing as deeper levels accumulate.
package main

import (
	"fmt"

	"ping/internal/gmark"
	"ping/internal/harness"
	"ping/internal/hpart"
	"ping/internal/ping"
	"ping/internal/rdf"
)

func main() {
	schema := gmark.DBpedia()
	data := schema.Generate(1, 3)
	fmt.Printf("dbpedia-like dataset: %d triples\n", data.Graph.Len())

	layout, err := hpart.Partition(data.Graph, hpart.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("CS hierarchy: %d levels\n\n", layout.NumLevels)

	// Table 2: where do Q55's symbols live?
	dict := data.Graph.Dict
	fmt.Println("Table 2 — symbol levels (from the VP/OI indexes):")
	fmt.Printf("  rdf:type             VP %s\n", layout.PropertyLevels(dict.LookupIRI(rdf.RDFType)))
	fmt.Printf("  dbo:foundationPlace  VP %s\n", layout.PropertyLevels(dict.LookupIRI(schema.PropertyIRI("foundationPlace"))))
	fmt.Printf("  dbo:developer        VP %s\n", layout.PropertyLevels(dict.LookupIRI(schema.PropertyIRI("developer"))))
	fmt.Printf("  dbr:California       OI %s\n\n", layout.ObjectLevels(dict.LookupIRI(schema.PropertyIRI("California"))))

	q := harness.Q55(schema)
	fmt.Printf("Q55:\n%s\n\n", q)

	proc := ping.NewProcessor(layout, ping.Options{})
	res, err := proc.PQA(q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Fig. 8 — progressive evaluation over %d slices:\n", len(res.Steps))
	fmt.Println("slice  maxlevel  rows-loaded  answers  coverage  time(cum)")
	for i, st := range res.Steps {
		fmt.Printf("%5d  %8d  %11d  %7d  %7.1f%%  %v\n",
			st.Step, st.MaxLevel, st.RowsLoadedCum, st.Answers.Card(),
			100*res.Coverage(i), st.ElapsedCum)
	}
	fmt.Printf("\nfinal: %d exact answers (companies × types × products × types)\n", res.Final.Card())

	// Show a couple of concrete answers.
	proj := res.Final.Vars
	for i, row := range res.Final.Rows {
		if i == 3 {
			fmt.Printf("... (%d more)\n", res.Final.Card()-3)
			break
		}
		fmt.Print("  ")
		for j, v := range row {
			fmt.Printf("?%s=%s ", proj[j], shortName(dict, v))
		}
		fmt.Println()
	}
}

func shortName(dict *rdf.Dict, id rdf.ID) string {
	t := dict.Term(id)
	v := t.Value
	for i := len(v) - 1; i >= 0; i-- {
		if v[i] == '/' || v[i] == '#' {
			return v[i+1:]
		}
	}
	return v
}
