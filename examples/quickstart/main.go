// Quickstart: build a tiny knowledge graph, partition it with PING's CS
// hierarchy, and answer a query progressively — the minimal end-to-end
// tour of the public API.
package main

import (
	"fmt"

	"ping/internal/hpart"
	"ping/internal/ping"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

func main() {
	// 1. Build a graph (normally you would rdf.ParseNTriples a file).
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	g.Add(iri("alice"), iri("knows"), iri("bob"))
	g.Add(iri("alice"), iri("likes"), iri("pizza"))
	g.Add(iri("bob"), iri("knows"), iri("carol"))
	g.Add(iri("bob"), iri("likes"), iri("sushi"))
	g.Add(iri("bob"), iri("worksAt"), iri("acme"))
	g.Add(iri("carol"), iri("knows"), iri("alice"))
	g.Add(iri("carol"), iri("likes"), iri("ramen"))
	g.Add(iri("carol"), iri("worksAt"), iri("acme"))
	g.Add(iri("carol"), iri("manages"), iri("bob"))
	g.Dedup()

	// 2. Partition: Algorithm 1 mines the CS hierarchy and splits the
	// graph into levels with vertical sub-partitions and VP/SI/OI indexes.
	layout, err := hpart.Partition(g, hpart.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("CS hierarchy: %d levels, triples per level = %v\n\n",
		layout.NumLevels, layout.LevelTriples)

	// 3. Query progressively: answers stream level by level, every
	// partial answer already exact (a subset of the final result).
	q := sparql.MustParse(`SELECT * WHERE { ?p <knows> ?q . ?p <likes> ?food }`)
	proc := ping.NewProcessor(layout, ping.Options{})
	err = proc.PQASteps(q, func(step ping.StepResult) bool {
		fmt.Printf("slice %d (levels ≤%d): %d answers after %v\n",
			step.Step, step.MaxLevel, step.Answers.Card(), step.ElapsedCum)
		for _, binding := range step.Answers.BindingMaps() {
			fmt.Printf("   ?p=%s ?q=%s ?food=%s\n",
				g.Dict.TermString(binding["p"]),
				g.Dict.TermString(binding["q"]),
				g.Dict.TermString(binding["food"]))
		}
		return true // keep refining; return false to stop early
	})
	if err != nil {
		panic(err)
	}

	// 4. Or get the exact answer in one shot (EQA).
	rel, stats, err := proc.EQA(q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nEQA: %d answers, %d rows loaded, %d joins\n",
		rel.Card(), stats.InputRows, stats.Joins)
}
