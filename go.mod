module ping

go 1.22
