// Package ping_bench holds the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (§5), plus
// ablation and micro benchmarks. Each experiment benchmark executes the
// same code path as `pingbench -exp <id>` at a reduced dataset scale so
// the whole suite runs in minutes; use cmd/pingbench for full-scale runs.
package ping_bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"ping/internal/baseline/s2rdf"
	"ping/internal/baseline/worq"
	"ping/internal/bloom"
	"ping/internal/columnar"
	"ping/internal/dataflow"
	"ping/internal/dfs"
	"ping/internal/engine"
	"ping/internal/faults"
	"ping/internal/gmark"
	"ping/internal/harness"
	"ping/internal/hpart"
	"ping/internal/ping"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// benchSuite is shared across experiment benchmarks so datasets and
// layouts are generated once.
var (
	suiteOnce sync.Once
	suite     *harness.Suite
)

func benchSuite() *harness.Suite {
	suiteOnce.Do(func() {
		suite = harness.NewSuite(2, 3, 0.15, 42)
	})
	return suite
}

func runExperiment(b *testing.B, id string, datasets []string) {
	b.Helper()
	s := benchSuite()
	// Warm the dataset cache outside the timed region.
	if _, err := s.Run(id, datasets); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := s.Run(id, datasets)
		if err != nil {
			b.Fatal(err)
		}
		io.Discard.Write([]byte(r.Body))
	}
}

// BenchmarkTable1Datasets regenerates Table 1 (dataset & workload
// characteristics).
func BenchmarkTable1Datasets(b *testing.B) {
	runExperiment(b, "table1", []string{"uniprot", "shop", "lubm"})
}

// BenchmarkFig5Distribution regenerates Fig. 5 (triples per hierarchy
// level).
func BenchmarkFig5Distribution(b *testing.B) {
	runExperiment(b, "fig5", []string{"uniprot", "shop", "social", "lubm", "yago", "dbpedia"})
}

// BenchmarkFig6PQA regenerates Fig. 6 (progressive runtime / loaded rows /
// coverage per slice) on the Uniprot and Shop workloads.
func BenchmarkFig6PQA(b *testing.B) {
	runExperiment(b, "fig6", []string{"uniprot", "shop"})
}

// BenchmarkFig7Preprocessing regenerates Fig. 7 (preprocessing time and
// reduction factor for PING vs S2RDF vs WORQ).
func BenchmarkFig7Preprocessing(b *testing.B) {
	runExperiment(b, "fig7", []string{"uniprot", "shop"})
}

// BenchmarkFig8Q55 regenerates Fig. 8 (the DBpedia Q55 per-slice study).
func BenchmarkFig8Q55(b *testing.B) {
	runExperiment(b, "fig8", nil)
}

// BenchmarkFig9EQA regenerates Fig. 9 (EQA time and triples visited on
// YAGO and level-targeted Shop100 queries).
func BenchmarkFig9EQA(b *testing.B) {
	runExperiment(b, "fig9", nil)
}

// BenchmarkTable2SymbolLevels regenerates Table 2 (Q55 symbol levels).
func BenchmarkTable2SymbolLevels(b *testing.B) {
	runExperiment(b, "table2", nil)
}

// BenchmarkAblationAll regenerates the ablation report (sub-partition
// pruning, index pruning, slice ordering).
func BenchmarkAblationAll(b *testing.B) {
	runExperiment(b, "ablation", nil)
}

// BenchmarkExtensions regenerates the §6.2 future-work report
// (incremental maintenance, bloom pruning, recursive paths, TPF).
func BenchmarkExtensions(b *testing.B) {
	runExperiment(b, "extensions", nil)
}

// BenchmarkScaling regenerates the scale sweep (linear partitioning).
func BenchmarkScaling(b *testing.B) {
	runExperiment(b, "scaling", nil)
}

// --- focused ablation benchmarks (DESIGN.md §5) ---

func shopFixture(b *testing.B) (*gmark.Dataset, *hpart.Layout, *sparql.Query) {
	b.Helper()
	data := gmark.Shop().Generate(0.2, 7)
	lay, err := hpart.Partition(data.Graph, hpart.Options{})
	if err != nil {
		b.Fatal(err)
	}
	q := sparql.MustParse(`SELECT * WHERE {
		?u <` + data.Schema.PropertyIRI("likes") + `> ?p .
		?u <` + data.Schema.PropertyIRI("follows") + `> ?v .
	}`)
	return data, lay, q
}

func benchPQA(b *testing.B, opts ping.Options) {
	_, lay, q := shopFixture(b)
	proc := ping.NewProcessor(lay, opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proc.PQA(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBaseline is the reference point for the two ablations.
func BenchmarkAblationBaseline(b *testing.B) { benchPQA(b, ping.Options{}) }

// BenchmarkAblationNoSubPartitioning loads whole levels instead of
// per-property files (quantifies §3.6).
func BenchmarkAblationNoSubPartitioning(b *testing.B) {
	benchPQA(b, ping.Options{DisableSubPartPruning: true})
}

// BenchmarkAblationNoIndexPruning ignores SI/OI when slicing (quantifies
// §3.7).
func BenchmarkAblationNoIndexPruning(b *testing.B) {
	benchPQA(b, ping.Options{DisableIndexPruning: true})
}

// BenchmarkAblationProductSlices runs the literal Algorithm 2 product
// enumeration instead of level-cumulative slicing.
func BenchmarkAblationProductSlices(b *testing.B) {
	benchPQA(b, ping.Options{Strategy: ping.ProductOrder})
}

// BenchmarkPQAIncremental pairs the semi-naive PQA step loop against the
// from-scratch ablation on the same workload: "on" folds only each
// step's newly loaded sub-partitions into the cached previous answers,
// "off" re-joins the full accumulated slice at every step. The ratio of
// the two is the incremental speedup on cumulative PQA cost.
func BenchmarkPQAIncremental(b *testing.B) {
	// A deep nested-CS graph: subject s picks a depth d and gets
	// properties p0..p(d-1), so the hierarchy has `depth` levels and a
	// query over p0/p1 walks one PQA step per level. That is the regime
	// the semi-naive rewrite targets: the scratch path re-joins the whole
	// accumulated slice at each of the many steps, the incremental path
	// only each step's delta.
	deepGraph := func(seed int64, subjects, depth int) *rdf.Graph {
		rng := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		props := make([]rdf.Term, depth)
		for i := range props {
			props[i] = rdf.NewIRI(fmt.Sprintf("http://bench.example.org/p%d", i))
		}
		for s := 0; s < subjects; s++ {
			subj := rdf.NewIRI(fmt.Sprintf("http://bench.example.org/s%d", s))
			d := 1 + rng.Intn(depth)
			for j := 0; j < d; j++ {
				// Objects come from a smaller pool so the p0/p1 join has
				// real fan-out and the per-step answer relations grow.
				obj := rdf.NewIRI(fmt.Sprintf("http://bench.example.org/s%d", rng.Intn(subjects/3)))
				g.Add(subj, props[j], obj)
			}
		}
		g.Dedup()
		return g
	}
	fixture := func(b *testing.B) (*hpart.Layout, *sparql.Query) {
		b.Helper()
		lay, err := hpart.Partition(deepGraph(7, 6000, 16), hpart.Options{})
		if err != nil {
			b.Fatal(err)
		}
		q := sparql.MustParse(`SELECT * WHERE {
			?x <http://bench.example.org/p0> ?y .
			?y <http://bench.example.org/p1> ?z .
		}`)
		return lay, q
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run("incremental="+mode.name, func(b *testing.B) {
			lay, q := fixture(b)
			proc := ping.NewProcessor(lay, ping.Options{DisableIncremental: mode.disable})
			// One warm-up run so both modes measure evaluation with a
			// warm sub-partition cache (load cost is mode-independent).
			if _, err := proc.PQA(q); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := proc.PQA(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Final.Card() == 0 {
					b.Fatal("empty final answer")
				}
			}
		})
	}
}

// --- micro benchmarks on the substrates ---

func BenchmarkPartitioner(b *testing.B) {
	data := gmark.Uniprot().Generate(0.2, 3)
	b.ReportMetric(float64(data.Graph.Len()), "triples")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hpart.Partition(data.Graph, hpart.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionerDistributed(b *testing.B) {
	data := gmark.Uniprot().Generate(0.2, 3)
	ctx := dataflow.NewContext(4)
	b.ReportMetric(float64(data.Graph.Len()), "triples")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hpart.PartitionDistributed(data.Graph, ctx, hpart.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalMaintenance(b *testing.B) {
	data := gmark.Uniprot().Generate(0.2, 3)
	lay, err := hpart.Partition(data.Graph, hpart.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := hpart.NewMaintainer(lay)
	if err != nil {
		b.Fatal(err)
	}
	occursIn := data.Graph.Dict.EncodeIRI(data.Schema.PropertyIRI("occursIn"))
	hasKeyword := data.Graph.Dict.EncodeIRI(data.Schema.PropertyIRI("hasKeyword"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := data.Graph.Dict.EncodeIRI(fmt.Sprintf("http://bench.example.org/s%d", i))
		o := data.Graph.Dict.EncodeIRI(fmt.Sprintf("http://bench.example.org/o%d", i%32))
		err := m.AddTriples([]rdf.Triple{
			{S: s, P: occursIn, O: o},
			{S: s, P: hasKeyword, O: o},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEQA(b *testing.B) {
	_, lay, q := shopFixture(b)
	proc := ping.NewProcessor(lay, ping.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := proc.EQA(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFailover measures query latency under injected read-error
// rates at Replication 2, quantifying the cost of checksum verification,
// replica failover, and retries on the PQA hot path. Backoff sleeping is
// disabled so the numbers isolate the mechanical recovery overhead.
func BenchmarkFailover(b *testing.B) {
	for _, rate := range []float64{0, 0.01, 0.10} {
		b.Run(fmt.Sprintf("errRate=%g", rate), func(b *testing.B) {
			data := gmark.Shop().Generate(0.2, 7)
			fs := dfs.New(dfs.Config{
				BlockSize:   4096,
				DataNodes:   4,
				Replication: 2,
				MaxRetries:  3,
				RetryBase:   -1,
			})
			lay, err := hpart.Partition(data.Graph, hpart.Options{FS: fs})
			if err != nil {
				b.Fatal(err)
			}
			plan := faults.Plan{Seed: 42, Nodes: make(map[int]faults.NodePlan)}
			for n := 0; n < 4; n++ {
				plan.Nodes[n] = faults.NodePlan{ReadErrorRate: rate}
			}
			faults.New(plan).Attach(fs)
			q := sparql.MustParse(`SELECT * WHERE {
				?u <` + data.Schema.PropertyIRI("likes") + `> ?p .
				?u <` + data.Schema.PropertyIRI("follows") + `> ?v .
			}`)
			proc := ping.NewProcessor(lay, ping.Options{FailurePolicy: ping.Degrade})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := proc.PQA(q)
				if err != nil {
					b.Fatal(err)
				}
				if rate == 0 && !res.Exact {
					b.Fatal("fault-free run degraded")
				}
			}
		})
	}
}

func BenchmarkS2RDFQuery(b *testing.B) {
	data, _, q := shopFixture(b)
	st, err := s2rdf.Preprocess(data.Graph, s2rdf.Options{SelectivityThreshold: 0.25})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWORQQuery(b *testing.B) {
	data, _, q := shopFixture(b)
	st, err := worq.Preprocess(data.Graph, worq.Options{Workload: []*sparql.Query{q}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColumnarEncodeDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	col := make([]uint32, 100_000)
	for i := range col {
		col[i] = uint32(rng.Intn(1 << 20))
	}
	b.SetBytes(int64(len(col) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if _, err := columnar.WriteColumns(&buf, [][]uint32{col}, columnar.Plain); err != nil {
			b.Fatal(err)
		}
		if _, err := columnar.DecodeColumns(buf.data); err != nil {
			b.Fatal(err)
		}
	}
}

type writeCounter struct{ data []byte }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

func BenchmarkBloomAddContains(b *testing.B) {
	f := bloom.NewWithEstimates(1_000_000, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
		if !f.Contains(uint64(i)) {
			b.Fatal("false negative")
		}
	}
}

func BenchmarkDataflowJoin(b *testing.B) {
	ctx := dataflow.NewContext(2)
	n := 50_000
	left := make([]dataflow.Pair[uint32, uint32], n)
	right := make([]dataflow.Pair[uint32, uint32], n)
	for i := 0; i < n; i++ {
		left[i] = dataflow.Pair[uint32, uint32]{Key: uint32(i % 1000), Value: uint32(i)}
		right[i] = dataflow.Pair[uint32, uint32]{Key: uint32(i % 2000), Value: uint32(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := dataflow.Parallelize(ctx, left, 4)
		r := dataflow.Parallelize(ctx, right, 4)
		j := dataflow.JoinByKey(l, r, 4, func(k uint32) uint64 { return uint64(k) })
		if j.Count() == 0 {
			b.Fatal("empty join")
		}
	}
}

func BenchmarkNTriplesParse(b *testing.B) {
	data := gmark.Uniprot().Generate(0.1, 5)
	var buf writeCounter
	if _, err := rdf.WriteNTriples(&buf, data.Graph); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf.data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rdf.ParseNTriples(readerOf(buf.data)); err != nil {
			b.Fatal(err)
		}
	}
}

type sliceReader struct {
	data []byte
	pos  int
}

func readerOf(data []byte) *sliceReader { return &sliceReader{data: data} }

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

// benchPairs draws sub-partition-shaped pair sets: clustered subjects
// with a few objects each, pre-sorted the way partition files are.
func benchPairs(n int) []rdf.SOPair {
	rng := rand.New(rand.NewSource(77))
	pairs := make([]rdf.SOPair, n)
	s := uint32(0)
	for i := range pairs {
		if rng.Intn(3) == 0 {
			s += uint32(1 + rng.Intn(4))
		}
		pairs[i] = rdf.SOPair{S: rdf.ID(s), O: rdf.ID(rng.Intn(1 << 20))}
	}
	block := rdf.PackPairs(pairs) // sorts a copy
	return block.Materialize()
}

// BenchmarkPairBlockPack measures delta-varint packing of a sorted
// sub-partition into its resident representation.
func BenchmarkPairBlockPack(b *testing.B) {
	pairs := benchPairs(100_000)
	b.SetBytes(int64(len(pairs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block := rdf.PackPairs(pairs)
		if block.Len() != len(pairs) {
			b.Fatal("pack lost rows")
		}
	}
}

// BenchmarkPairBlockDecode measures streaming a packed block back into
// (S,O) pairs — the per-query cost the compressed cache adds.
func BenchmarkPairBlockDecode(b *testing.B) {
	pairs := benchPairs(100_000)
	block := rdf.PackPairs(pairs)
	b.SetBytes(int64(len(pairs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		block.ForEach(func(rdf.SOPair) { n++ })
		if n != len(pairs) {
			b.Fatal("decode lost rows")
		}
	}
}

// BenchmarkDictLookup measures string→ID and ID→string through an
// immutable dictionary snapshot (the query-boundary hot paths).
func BenchmarkDictLookup(b *testing.B) {
	d := rdf.NewDict()
	terms := make([]rdf.Term, 10_000)
	for i := range terms {
		terms[i] = rdf.NewIRI(fmt.Sprintf("http://example.org/resource/%d", i))
		d.Encode(terms[i])
	}
	dv := d.Snapshot()
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if dv.Lookup(terms[i%len(terms)]) == rdf.NoID {
				b.Fatal("miss")
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(dv.TermString(rdf.ID(i%len(terms)))) == 0 {
				b.Fatal("empty term")
			}
		}
	})
}

// BenchmarkDictResidentFootprint runs the shop fixture's query workload
// with compressed and raw resident blocks, reporting the bytes each
// cached sub-partition occupies (the tentpole's headline metric) next
// to the wall time.
func BenchmarkDictResidentFootprint(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts ping.Options
	}{
		{"dict", ping.Options{}},
		{"raw", ping.Options{DisableDictEncoding: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			_, lay, q := shopFixture(b)
			proc := ping.NewProcessor(lay, cfg.opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := proc.PQA(q); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if n, bytes, _ := lay.SubPartCacheStats(); n > 0 {
				b.ReportMetric(float64(bytes)/float64(n), "B/subpart")
			}
		})
	}
}

// BenchmarkAdvisorAblation closes the workload loop on the shop dataset:
// profile the standard workload, apply the advisor's plan (cold-level
// merges + join reductions) to a copy-on-write store, and replay the hot
// fingerprints on both layouts. Reports the count-weighted p95
// steps-to-first-answer before and after — the bench JSON's `advisor`
// rows come from the same code path (harness.AdvisorAblation).
func BenchmarkAdvisorAblation(b *testing.B) {
	s := benchSuite()
	ds, err := s.Dataset("shop")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rows []harness.BenchAdvisorRow
	for i := 0; i < b.N; i++ {
		rows, err = s.AdvisorAblation(ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, row := range rows {
		switch row.Config {
		case "unadvised":
			b.ReportMetric(row.P95StepsToFirst, "p95-steps-before")
		case "advised":
			b.ReportMetric(row.P95StepsToFirst, "p95-steps-after")
		}
	}
}

// BenchmarkEngineJoin evaluates a two-pattern join through the engine's
// packed uint64 join-key path on a skewed graph.
func BenchmarkEngineJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	g := rdf.NewGraph()
	for i := 0; i < 30_000; i++ {
		s := rdf.NewIRI(fmt.Sprintf("s%d", rng.Intn(3000)))
		g.Add(s, rdf.NewIRI("p0"), rdf.NewIRI(fmt.Sprintf("o%d", rng.Intn(500))))
		g.Add(s, rdf.NewIRI("p1"), rdf.NewIRI(fmt.Sprintf("o%d", rng.Intn(500))))
	}
	g.Dedup()
	q := sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?x <p1> ?z }`)
	inputs := engine.InputsFromGraph(g, q)
	ctx := dataflow.NewContext(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, _, err := engine.Evaluate(q, inputs, g.Dict, engine.Options{Context: ctx})
		if err != nil {
			b.Fatal(err)
		}
		if rel.Card() == 0 {
			b.Fatal("empty join")
		}
	}
}

// BenchmarkRelationDistinct measures the hashed distinct-key pass on a
// wide relation with heavy duplication.
func BenchmarkRelationDistinct(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	rel := &engine.Relation{Vars: []string{"x", "y", "z"}}
	for i := 0; i < 100_000; i++ {
		rel.Rows = append(rel.Rows, []rdf.ID{
			rdf.ID(rng.Intn(300)), rdf.ID(rng.Intn(300)), rdf.ID(rng.Intn(30)),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rel.Distinct().Card() == 0 {
			b.Fatal("empty distinct")
		}
	}
}
