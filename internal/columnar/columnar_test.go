package columnar

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, cols [][]uint32, enc Encoding) [][]uint32 {
	t.Helper()
	var buf bytes.Buffer
	n, err := WriteColumns(&buf, cols, enc)
	if err != nil {
		t.Fatalf("write(%v): %v", enc, err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteColumns reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadColumns(&buf)
	if err != nil {
		t.Fatalf("read(%v): %v", enc, err)
	}
	return got
}

func TestRoundTripAllEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sorted := make([]uint32, 1000)
	random := make([]uint32, 1000)
	lowCard := make([]uint32, 1000)
	for i := range sorted {
		sorted[i] = uint32(i * 3)
		random[i] = rng.Uint32()
		lowCard[i] = uint32(rng.Intn(5))
	}
	cols := [][]uint32{sorted, random, lowCard, {}, {42}}
	for _, enc := range []Encoding{Plain, Delta, DictRLE, Auto} {
		got := roundTrip(t, cols, enc)
		if len(got) != len(cols) {
			t.Fatalf("%v: got %d columns, want %d", enc, len(got), len(cols))
		}
		for i := range cols {
			if len(got[i]) != len(cols[i]) {
				t.Fatalf("%v: col %d length %d != %d", enc, i, len(got[i]), len(cols[i]))
			}
			if len(cols[i]) > 0 && !reflect.DeepEqual(got[i], cols[i]) {
				t.Fatalf("%v: col %d differs", enc, i)
			}
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	for _, enc := range []Encoding{Plain, Delta, DictRLE, Auto} {
		enc := enc
		err := quick.Check(func(a, b []uint32) bool {
			got := roundTrip(t, [][]uint32{a, b}, enc)
			return len(got) == 2 &&
				(len(a) == 0 || reflect.DeepEqual(got[0], a)) &&
				(len(b) == 0 || reflect.DeepEqual(got[1], b))
		}, &quick.Config{MaxCount: 100})
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
	}
}

func TestAutoPicksSmallest(t *testing.T) {
	lowCard := make([]uint32, 10000)
	for i := range lowCard {
		lowCard[i] = uint32(i / 2500) // 4 long runs
	}
	var plainBuf, autoBuf bytes.Buffer
	if _, err := WriteColumns(&plainBuf, [][]uint32{lowCard}, Plain); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteColumns(&autoBuf, [][]uint32{lowCard}, Auto); err != nil {
		t.Fatal(err)
	}
	if autoBuf.Len() >= plainBuf.Len() {
		t.Errorf("Auto (%d bytes) not smaller than Plain (%d bytes) on RLE-friendly data",
			autoBuf.Len(), plainBuf.Len())
	}
}

func TestEncodedSizeMatchesWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cols := [][]uint32{make([]uint32, 500), make([]uint32, 300)}
	for _, c := range cols {
		for i := range c {
			c[i] = uint32(rng.Intn(1000))
		}
	}
	for _, enc := range []Encoding{Plain, Delta, DictRLE, Auto} {
		var buf bytes.Buffer
		if _, err := WriteColumns(&buf, cols, enc); err != nil {
			t.Fatal(err)
		}
		if got := EncodedSize(cols, enc); got != int64(buf.Len()) {
			t.Errorf("%v: EncodedSize = %d, wrote %d", enc, got, buf.Len())
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteColumns(&buf, [][]uint32{{1, 2, 3, 4, 5, 1000, 2000}}, Plain); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, mutate := range []struct {
		name string
		f    func([]byte) []byte
	}{
		{"magic", func(b []byte) []byte { c := clone(b); c[0] ^= 0xff; return c }},
		{"version", func(b []byte) []byte { c := clone(b); c[4] = 99; return c }},
		{"payload-bitflip", func(b []byte) []byte { c := clone(b); c[len(c)-1] ^= 0x01; return c }},
		{"truncated", func(b []byte) []byte { return clone(b)[:len(b)-3] }},
		{"trailing", func(b []byte) []byte { return append(clone(b), 0xAB) }},
		{"empty", func(b []byte) []byte { return nil }},
	} {
		if _, err := ReadColumns(bytes.NewReader(mutate.f(data))); err == nil {
			t.Errorf("%s corruption not detected", mutate.name)
		}
	}
}

func clone(b []byte) []byte {
	c := make([]byte, len(b))
	copy(c, b)
	return c
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("unzigzag(zigzag(%d)) = %d", v, got)
		}
	}
}

func TestEncodingString(t *testing.T) {
	for e, want := range map[Encoding]string{Plain: "plain", Delta: "delta", DictRLE: "dict-rle", Auto: "auto"} {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), want)
		}
	}
	if !strings.Contains(Encoding(7).String(), "7") {
		t.Error("unknown encoding rendering")
	}
}

func TestZeroColumns(t *testing.T) {
	got := roundTrip(t, nil, Auto)
	if len(got) != 0 {
		t.Errorf("zero-column file read back %d columns", len(got))
	}
}

// TestSizeEstimatorsExact: the counting estimators must report exactly
// the payload length the encoders produce, across data shapes (sorted,
// random, low-cardinality, adversarial), so Auto's fast path can never
// pick a different winner than encoding everything would.
func TestSizeEstimatorsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	shapes := map[string]func(n int) []uint32{
		"empty": func(n int) []uint32 { return nil },
		"sorted": func(n int) []uint32 {
			v := make([]uint32, n)
			for i := range v {
				v[i] = uint32(i * 3)
			}
			return v
		},
		"random": func(n int) []uint32 {
			v := make([]uint32, n)
			for i := range v {
				v[i] = rng.Uint32()
			}
			return v
		},
		"lowcard": func(n int) []uint32 {
			v := make([]uint32, n)
			for i := range v {
				v[i] = uint32(rng.Intn(4)) * 1e6
			}
			return v
		},
		"runs": func(n int) []uint32 {
			v := make([]uint32, n)
			for i := range v {
				v[i] = uint32(i / 100)
			}
			return v
		},
		"sawtooth": func(n int) []uint32 {
			v := make([]uint32, n)
			for i := range v {
				v[i] = uint32(i % 7 * 1 << 20)
			}
			return v
		},
	}
	for name, gen := range shapes {
		for _, n := range []int{0, 1, 2, 100, 1000} {
			vals := gen(n)
			if got, want := sizePlain(vals), len(encodePlain(vals)); got != want {
				t.Errorf("%s/%d: sizePlain = %d, encodePlain = %d", name, n, got, want)
			}
			if got, want := sizeDelta(vals), len(encodeDelta(vals)); got != want {
				t.Errorf("%s/%d: sizeDelta = %d, encodeDelta = %d", name, n, got, want)
			}
			if got, want := sizeDictRLE(vals), len(encodeDictRLE(vals)); got != want {
				t.Errorf("%s/%d: sizeDictRLE = %d, encodeDictRLE = %d", name, n, got, want)
			}
		}
	}
}

// TestAutoChoiceMatchesBruteForce: Auto through the size estimators must
// choose the same encoding, with the same tie-break (Plain beats Delta
// beats DictRLE at equal size), as encoding all three and comparing.
func TestAutoChoiceMatchesBruteForce(t *testing.T) {
	check := func(vals []uint32) bool {
		bruteBest, bruteEnc := encodePlain(vals), Plain
		if d := encodeDelta(vals); len(d) < len(bruteBest) {
			bruteBest, bruteEnc = d, Delta
		}
		if d := encodeDictRLE(vals); len(d) < len(bruteBest) {
			bruteBest, bruteEnc = d, DictRLE
		}
		payload, used := encode(vals, Auto)
		return used == bruteEnc && bytes.Equal(payload, bruteBest)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Shapes quick.Check is unlikely to hit: ties and long runs.
	for _, vals := range [][]uint32{
		nil, {0}, {0, 0, 0}, {1, 2, 3, 4}, {5, 5, 5, 5, 5, 5, 5, 5},
	} {
		if !check(vals) {
			t.Errorf("Auto choice diverged from brute force on %v", vals)
		}
	}
}

// BenchmarkAutoEncode measures the Auto write path (size-estimate three,
// encode one) against brute-force triple encoding, on a mixed set of
// columns like the hpart indexes produce.
func BenchmarkAutoEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	cols := make([][]uint32, 4)
	for c := range cols {
		col := make([]uint32, 4096)
		for i := range col {
			switch c {
			case 0:
				col[i] = uint32(i) // sorted: Delta wins
			case 1:
				col[i] = rng.Uint32() // random: Plain wins
			case 2:
				col[i] = uint32(i / 512) // runs: DictRLE wins
			default:
				col[i] = uint32(rng.Intn(100))
			}
		}
		cols[c] = col
	}
	b.Run("estimated", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, col := range cols {
				encode(col, Auto)
			}
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, col := range cols {
				best, _ := encodePlain(col), Plain
				if d := encodeDelta(col); len(d) < len(best) {
					best = d
				}
				if d := encodeDictRLE(col); len(d) < len(best) {
					best = d
				}
				_ = best
			}
		}
	})
	b.Run("encodedsize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			EncodedSize(cols, Auto)
		}
	})
}
