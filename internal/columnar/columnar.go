// Package columnar implements PCOL, a small columnar binary file format
// playing the role Parquet plays in the paper's stack: partitions and
// indexes are stored as compressed integer columns whose on-disk size can
// be measured and compared across storage layouts (the Fig. 7 reduction-
// factor experiment).
//
// A PCOL file holds N columns of uint32 values. Each column is written
// with one of three encodings — plain varint, zig-zag delta varint, or
// dictionary+run-length — selected explicitly or automatically (smallest
// wins). Every column payload carries a CRC32 checksum verified on read.
package columnar

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Encoding identifies how a column's values are compressed.
type Encoding uint8

const (
	// Plain stores each value as an unsigned varint.
	Plain Encoding = iota
	// Delta sorts nothing but stores consecutive differences zig-zag
	// varint encoded; effective on nearly-sorted ID columns.
	Delta
	// DictRLE stores a dictionary of distinct values plus run-length
	// encoded dictionary indexes; effective on low-cardinality columns.
	DictRLE
	// Auto is a write-time pseudo-encoding: pick whichever of the three
	// concrete encodings yields the smallest payload.
	Auto Encoding = 255
)

func (e Encoding) String() string {
	switch e {
	case Plain:
		return "plain"
	case Delta:
		return "delta"
	case DictRLE:
		return "dict-rle"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("Encoding(%d)", uint8(e))
	}
}

const (
	magic   = "PCOL"
	version = 1
)

// putUvarint appends x to buf as an unsigned varint.
func putUvarint(buf []byte, x uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], x)
	return append(buf, tmp[:n]...)
}

func zigzag(x int64) uint64   { return uint64((x << 1) ^ (x >> 63)) }
func unzigzag(x uint64) int64 { return int64(x>>1) ^ -int64(x&1) }

// encodePlain varint-encodes every value.
func encodePlain(vals []uint32) []byte {
	buf := make([]byte, 0, len(vals)*2)
	for _, v := range vals {
		buf = putUvarint(buf, uint64(v))
	}
	return buf
}

// encodeDelta zig-zag varint-encodes consecutive differences.
func encodeDelta(vals []uint32) []byte {
	buf := make([]byte, 0, len(vals)*2)
	prev := int64(0)
	for _, v := range vals {
		buf = putUvarint(buf, zigzag(int64(v)-prev))
		prev = int64(v)
	}
	return buf
}

// encodeDictRLE stores |dict|, the sorted dictionary (delta varint), then
// (index, runLength) pairs.
func encodeDictRLE(vals []uint32) []byte {
	distinct := make(map[uint32]struct{}, 64)
	for _, v := range vals {
		distinct[v] = struct{}{}
	}
	dict := make([]uint32, 0, len(distinct))
	for v := range distinct {
		dict = append(dict, v)
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	index := make(map[uint32]uint32, len(dict))
	for i, v := range dict {
		index[v] = uint32(i)
	}
	buf := make([]byte, 0, len(dict)*2+len(vals)/2)
	buf = putUvarint(buf, uint64(len(dict)))
	prev := uint32(0)
	for _, v := range dict {
		buf = putUvarint(buf, uint64(v-prev))
		prev = v
	}
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		buf = putUvarint(buf, uint64(index[vals[i]]))
		buf = putUvarint(buf, uint64(j-i))
		i = j
	}
	return buf
}

type byteReader struct {
	data []byte
	pos  int
}

func (b *byteReader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(b.data[b.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("columnar: truncated varint at offset %d", b.pos)
	}
	b.pos += n
	return x, nil
}

func decodePlain(data []byte, count uint64) ([]uint32, error) {
	br := &byteReader{data: data}
	out := make([]uint32, count)
	for i := range out {
		v, err := br.uvarint()
		if err != nil {
			return nil, err
		}
		if v > 1<<32-1 {
			return nil, fmt.Errorf("columnar: value %d overflows uint32", v)
		}
		out[i] = uint32(v)
	}
	return out, nil
}

func decodeDelta(data []byte, count uint64) ([]uint32, error) {
	br := &byteReader{data: data}
	out := make([]uint32, count)
	prev := int64(0)
	for i := range out {
		d, err := br.uvarint()
		if err != nil {
			return nil, err
		}
		prev += unzigzag(d)
		if prev < 0 || prev > 1<<32-1 {
			return nil, fmt.Errorf("columnar: delta value %d out of uint32 range", prev)
		}
		out[i] = uint32(prev)
	}
	return out, nil
}

func decodeDictRLE(data []byte, count uint64) ([]uint32, error) {
	br := &byteReader{data: data}
	dlen, err := br.uvarint()
	if err != nil {
		return nil, err
	}
	if dlen > count && count > 0 || dlen > 1<<31 {
		return nil, fmt.Errorf("columnar: dictionary size %d exceeds column size %d", dlen, count)
	}
	dict := make([]uint32, dlen)
	prev := uint64(0)
	for i := range dict {
		d, err := br.uvarint()
		if err != nil {
			return nil, err
		}
		prev += d
		if prev > 1<<32-1 {
			return nil, fmt.Errorf("columnar: dictionary value overflow")
		}
		dict[i] = uint32(prev)
	}
	out := make([]uint32, 0, count)
	for uint64(len(out)) < count {
		idx, err := br.uvarint()
		if err != nil {
			return nil, err
		}
		run, err := br.uvarint()
		if err != nil {
			return nil, err
		}
		if idx >= dlen || run == 0 || uint64(len(out))+run > count {
			return nil, fmt.Errorf("columnar: corrupt RLE run (idx=%d run=%d)", idx, run)
		}
		v := dict[idx]
		for j := uint64(0); j < run; j++ {
			out = append(out, v)
		}
	}
	return out, nil
}

// uvarintLen returns the number of bytes binary.PutUvarint uses for x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// sizePlain, sizeDelta and sizeDictRLE return the exact payload length
// the corresponding encoder would produce, without materializing it.
// They let Auto pick a winner with three cheap counting passes and run
// only the winning encoder, instead of building all three buffers.
func sizePlain(vals []uint32) int {
	n := 0
	for _, v := range vals {
		n += uvarintLen(uint64(v))
	}
	return n
}

func sizeDelta(vals []uint32) int {
	n, prev := 0, int64(0)
	for _, v := range vals {
		n += uvarintLen(zigzag(int64(v) - prev))
		prev = int64(v)
	}
	return n
}

func sizeDictRLE(vals []uint32) int {
	distinct := make(map[uint32]struct{}, 64)
	for _, v := range vals {
		distinct[v] = struct{}{}
	}
	dict := make([]uint32, 0, len(distinct))
	for v := range distinct {
		dict = append(dict, v)
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	index := make(map[uint32]uint32, len(dict))
	for i, v := range dict {
		index[v] = uint32(i)
	}
	n := uvarintLen(uint64(len(dict)))
	prev := uint32(0)
	for _, v := range dict {
		n += uvarintLen(uint64(v - prev))
		prev = v
	}
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		n += uvarintLen(uint64(index[vals[i]]))
		n += uvarintLen(uint64(j - i))
		i = j
	}
	return n
}

// payloadSize returns the exact payload length for a column under enc;
// for Auto, the minimum across the three concrete encodings with the
// same tie-break as chooseAuto.
func payloadSize(vals []uint32, enc Encoding) int {
	switch enc {
	case Plain:
		return sizePlain(vals)
	case Delta:
		return sizeDelta(vals)
	case DictRLE:
		return sizeDictRLE(vals)
	default:
		_, n := chooseAuto(vals)
		return n
	}
}

// chooseAuto picks the smallest of the three encodings by exact size
// estimation. Ties break toward the earlier encoding in Plain, Delta,
// DictRLE order (a later candidate must be strictly smaller to win),
// matching the historical encode-everything behaviour.
func chooseAuto(vals []uint32) (Encoding, int) {
	best, bestEnc := sizePlain(vals), Plain
	if d := sizeDelta(vals); d < best {
		best, bestEnc = d, Delta
	}
	if d := sizeDictRLE(vals); d < best {
		best, bestEnc = d, DictRLE
	}
	return bestEnc, best
}

// encode returns the payload for a column under enc; for Auto it sizes all
// three and encodes only the smallest, returning the winning encoding.
func encode(vals []uint32, enc Encoding) ([]byte, Encoding) {
	switch enc {
	case Plain:
		return encodePlain(vals), Plain
	case Delta:
		return encodeDelta(vals), Delta
	case DictRLE:
		return encodeDictRLE(vals), DictRLE
	default:
		winner, _ := chooseAuto(vals)
		payload, _ := encode(vals, winner)
		return payload, winner
	}
}

// WriteColumns writes the columns to w and returns the total bytes
// written. All columns are independent; they need not share a length.
func WriteColumns(w io.Writer, cols [][]uint32, enc Encoding) (int64, error) {
	header := make([]byte, 0, 8)
	header = append(header, magic...)
	header = append(header, version)
	header = binary.LittleEndian.AppendUint16(header, uint16(len(cols)))
	n, err := w.Write(header)
	total := int64(n)
	if err != nil {
		return total, err
	}
	for _, col := range cols {
		payload, used := encode(col, enc)
		meta := make([]byte, 0, 32)
		meta = append(meta, byte(used))
		meta = putUvarint(meta, uint64(len(col)))
		meta = putUvarint(meta, uint64(len(payload)))
		meta = binary.LittleEndian.AppendUint32(meta, crc32.ChecksumIEEE(payload))
		n, err = w.Write(meta)
		total += int64(n)
		if err != nil {
			return total, err
		}
		n, err = w.Write(payload)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadColumns reads a PCOL document written by WriteColumns.
func ReadColumns(r io.Reader) ([][]uint32, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("columnar: %w", err)
	}
	return DecodeColumns(data)
}

// DecodeColumns decodes a PCOL document from an in-memory buffer (the
// zero-copy path for callers that already hold the file bytes).
func DecodeColumns(data []byte) ([][]uint32, error) {
	if len(data) < 7 || string(data[:4]) != magic {
		return nil, fmt.Errorf("columnar: bad magic")
	}
	if data[4] != version {
		return nil, fmt.Errorf("columnar: unsupported version %d", data[4])
	}
	ncols := binary.LittleEndian.Uint16(data[5:7])
	pos := 7
	cols := make([][]uint32, 0, ncols)
	for c := 0; c < int(ncols); c++ {
		if pos >= len(data) {
			return nil, fmt.Errorf("columnar: truncated column %d header", c)
		}
		enc := Encoding(data[pos])
		pos++
		count, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("columnar: column %d: bad count", c)
		}
		pos += n
		plen, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("columnar: column %d: bad payload length", c)
		}
		pos += n
		if pos+4 > len(data) {
			return nil, fmt.Errorf("columnar: column %d: truncated checksum", c)
		}
		sum := binary.LittleEndian.Uint32(data[pos:])
		pos += 4
		if uint64(len(data)-pos) < plen {
			return nil, fmt.Errorf("columnar: column %d: truncated payload", c)
		}
		payload := data[pos : pos+int(plen)]
		pos += int(plen)
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("columnar: column %d: checksum mismatch", c)
		}
		var col []uint32
		var err error
		switch enc {
		case Plain:
			col, err = decodePlain(payload, count)
		case Delta:
			col, err = decodeDelta(payload, count)
		case DictRLE:
			col, err = decodeDictRLE(payload, count)
		default:
			err = fmt.Errorf("unknown encoding %d", enc)
		}
		if err != nil {
			return nil, fmt.Errorf("columnar: column %d: %w", c, err)
		}
		cols = append(cols, col)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("columnar: %d trailing bytes", len(data)-pos)
	}
	return cols, nil
}

// EncodedSize returns the byte size the columns would occupy on disk under
// enc, without writing anywhere — or encoding anything: it runs the exact
// size estimators only. Used by storage-footprint accounting.
func EncodedSize(cols [][]uint32, enc Encoding) int64 {
	total := int64(7)
	for _, col := range cols {
		plen := payloadSize(col, enc)
		total += int64(1 + uvarintLen(uint64(len(col))) + uvarintLen(uint64(plen)) + 4 + plen)
	}
	return total
}
