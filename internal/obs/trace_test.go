package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilSpanIsNoop(t *testing.T) {
	var s *Span
	s.SetAttr("k", 1)
	s.End()
	if s.Name() != "" || s.Attr("k") != nil || s.Duration() != 0 || s.Children() != nil || s.Find("x") != nil {
		t.Fatalf("nil span methods are not no-ops")
	}
	ctx, child := StartSpan(context.Background(), "orphan")
	if child != nil {
		t.Fatalf("StartSpan without a trace returned a live span")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatalf("context without trace carries a span")
	}
}

func TestSpanNesting(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "query")
	ctx2, step := StartSpan(ctx, "step")
	_, read := StartSpan(ctx2, "read")
	read.SetAttr("path", "levels/L01/p3.pcol")
	read.End()
	step.SetAttr("rows", 42)
	step.SetAttr("rows", 43) // overwrite keeps one entry
	step.End()
	root.End()

	if got := len(root.Children()); got != 1 {
		t.Fatalf("root has %d children, want 1", got)
	}
	if got := root.Children()[0].Name(); got != "step" {
		t.Fatalf("child name = %q, want step", got)
	}
	if root.Find("read") == nil {
		t.Fatalf("Find did not reach grandchild")
	}
	if got := step.Attr("rows"); got != 43 {
		t.Fatalf("attr rows = %v, want 43", got)
	}
	if root.Duration() <= 0 {
		t.Fatalf("ended root has non-positive duration")
	}
}

func TestSpanJSON(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "q")
	_, c := StartSpan(ctx, "slice")
	c.SetAttr("step", 1)
	c.SetAttr("coverage", 0.5)
	c.End()
	root.End()

	raw, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Name       string  `json:"name"`
		Start      string  `json:"start"`
		DurationMS float64 `json:"duration_ms"`
		Children   []struct {
			Name  string `json:"name"`
			Attrs struct {
				Step     int     `json:"step"`
				Coverage float64 `json:"coverage"`
			} `json:"attrs"`
		} `json:"children"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("span JSON does not parse: %v\n%s", err, raw)
	}
	if doc.Name != "q" || doc.Start == "" || len(doc.Children) != 1 {
		t.Fatalf("bad tree: %+v", doc)
	}
	if doc.Children[0].Attrs.Step != 1 || doc.Children[0].Attrs.Coverage != 0.5 {
		t.Fatalf("bad child attrs: %+v", doc.Children[0])
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, s := StartSpan(ctx, "child")
			s.SetAttr("i", i)
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 16 {
		t.Fatalf("got %d children, want 16", got)
	}
	if _, err := json.Marshal(root); err != nil {
		t.Fatal(err)
	}
}
