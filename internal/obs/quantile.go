package obs

import "math"

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution from the histogram's buckets, interpolating linearly
// within the winning bucket — the same estimate Prometheus computes
// server-side with histogram_quantile(). Estimates in the implicit +Inf
// bucket clamp to the highest finite bound; an empty histogram, a
// histogram with no finite buckets, or a NaN q all yield 0 (never NaN,
// never a panic — the dashboard renders these values straight into SVG).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 || len(h.bounds) == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	counts := h.BucketCounts()
	var cum float64
	lower := 0.0
	for i, c := range counts {
		upper := math.Inf(1)
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		if c > 0 && cum+float64(c) >= rank {
			if math.IsInf(upper, 1) {
				return lower // clamp: the bucket has no finite upper bound
			}
			frac := (rank - cum) / float64(c)
			return lower + (upper-lower)*frac
		}
		cum += float64(c)
		lower = upper
	}
	// Only reachable through float rounding; the last finite bound is the
	// best remaining estimate.
	return h.bounds[len(h.bounds)-1]
}
