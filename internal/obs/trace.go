package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one timed operation in a trace tree. Spans are created with
// NewTrace (root) or StartSpan (child of the span carried by the
// context); attributes and children may be added concurrently. A nil
// *Span is a valid no-op receiver, so instrumented layers call span
// methods unconditionally — tracing costs nothing when no trace is
// attached to the context.
//
// Every span carries W3C-style identifiers: a 16-byte trace ID shared by
// the whole tree and an 8-byte span ID of its own. A root started with
// NewTraceFrom adopts the trace ID of a remote parent (a `traceparent`
// HTTP header), so one trace spans client → pingd (and tomorrow,
// coordinator → shards).
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	attrs    []spanAttr
	children []*Span

	traceID TraceID
	spanID  SpanID
	parent  SpanID // zero for a local root with no remote parent
}

type spanAttr struct {
	key string
	val any
}

type spanCtxKey struct{}

// NewTrace starts a root span (with a fresh trace ID) and returns a
// context carrying it. The caller must End the span and can then
// serialize the tree with WriteJSON.
func NewTrace(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now(), traceID: NewTraceID(), spanID: NewSpanID()}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// NewTraceFrom starts a root span continuing a remote trace: the span
// adopts tc's trace ID and records tc's span as its parent, so exporters
// can stitch the client's and the server's spans into one tree. An
// invalid tc behaves like NewTrace.
func NewTraceFrom(ctx context.Context, name string, tc TraceContext) (context.Context, *Span) {
	if !tc.Valid() {
		return NewTrace(ctx, name)
	}
	s := &Span{name: name, start: time.Now(), traceID: tc.TraceID, spanID: NewSpanID(), parent: tc.SpanID}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// StartSpan starts a child of the context's span. When the context
// carries no trace it returns the context unchanged and a nil span (all
// of whose methods are no-ops).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.StartChild(name)
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// StartChild starts a child span directly under s, for layers that pass
// spans explicitly instead of through a context. Nil-safe: a nil
// receiver yields a nil (no-op) child.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), traceID: s.traceID, spanID: NewSpanID(), parent: s.spanID}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// TraceID returns the span's trace identifier (zero for nil spans).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.traceID
}

// SpanID returns the span's own identifier (zero for nil spans).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.spanID
}

// ParentSpanID returns the identifier of the span's parent (zero for
// roots with no remote parent, and for nil spans).
func (s *Span) ParentSpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.parent
}

// SpanContext returns the span's propagation context — what an outgoing
// request's traceparent header should carry. Zero (invalid) for nil
// spans.
func (s *Span) SpanContext() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.traceID, SpanID: s.spanID, Flags: 1}
}

// TraceIDFromContext returns the hex trace ID of the span carried by
// ctx, or "" when ctx carries no trace. The one-liner instrumented
// layers use to link metric exemplars to traces.
func TraceIDFromContext(ctx context.Context) string {
	s := SpanFromContext(ctx)
	if s == nil || !s.SpanContext().Valid() {
		return ""
	}
	return s.traceID.String()
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// SetAttr records a key/value attribute. Repeated keys overwrite the
// previous value, keeping the original position.
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].val = val
			return
		}
	}
	s.attrs = append(s.attrs, spanAttr{key: key, val: val})
}

// Attr returns the value recorded for key, or nil.
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.key == key {
			return a.val
		}
	}
	return nil
}

// End stamps the span's end time; the first call wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Name returns the span name ("" for nil spans).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns end-start, or time-since-start for unfinished spans.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Children returns a snapshot of the child spans in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first descendant (depth-first, including s) with the
// given name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.Children() {
		if found := c.Find(name); found != nil {
			return found
		}
	}
	return nil
}

// MarshalJSON renders the span tree. Attribute order is preserved.
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	s.mu.Lock()
	name := s.name
	start := s.start
	dur := s.end.Sub(s.start)
	if s.end.IsZero() {
		dur = time.Since(s.start)
	}
	attrs := append([]spanAttr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	var b bytes.Buffer
	b.WriteByte('{')
	writeJSONField(&b, "name", name)
	b.WriteByte(',')
	writeJSONField(&b, "start", start.Format(time.RFC3339Nano))
	b.WriteByte(',')
	writeJSONField(&b, "duration_ms", float64(dur.Microseconds())/1000)
	if len(attrs) > 0 {
		b.WriteString(`,"attrs":{`)
		for i, a := range attrs {
			if i > 0 {
				b.WriteByte(',')
			}
			writeJSONField(&b, a.key, a.val)
		}
		b.WriteByte('}')
	}
	if len(children) > 0 {
		b.WriteString(`,"children":[`)
		for i, c := range children {
			if i > 0 {
				b.WriteByte(',')
			}
			cb, err := c.MarshalJSON()
			if err != nil {
				return nil, err
			}
			b.Write(cb)
		}
		b.WriteByte(']')
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// writeJSONField writes "key":<json of val> into b.
func writeJSONField(b *bytes.Buffer, key string, val any) {
	kb, _ := json.Marshal(key)
	b.Write(kb)
	b.WriteByte(':')
	vb, err := json.Marshal(val)
	if err != nil {
		vb, _ = json.Marshal(err.Error())
	}
	b.Write(vb)
}

// WriteJSON serializes the span tree, indented, to w — the -trace-out
// dump format of the CLI tools.
func (s *Span) WriteJSON(w io.Writer) error {
	raw, err := s.MarshalJSON()
	if err != nil {
		return err
	}
	var indented bytes.Buffer
	if err := json.Indent(&indented, raw, "", "  "); err != nil {
		return err
	}
	indented.WriteByte('\n')
	_, err = w.Write(indented.Bytes())
	return err
}
