// Span export: flattening a finished span tree into flat records and
// rendering them as NDJSON (one span per line, greppable and joinable
// with wide events on trace_id) or as the Chrome trace_event JSON format
// that chrome://tracing and Perfetto load directly.
package obs

import (
	"encoding/json"
	"io"
	"time"
)

// SpanRecord is one flattened span: the tree structure is carried by
// (trace_id, span_id, parent_span_id) instead of nesting, which is what
// every downstream join (wide events, exemplars) keys on.
type SpanRecord struct {
	TraceID      string         `json:"trace_id"`
	SpanID       string         `json:"span_id"`
	ParentSpanID string         `json:"parent_span_id,omitempty"`
	Name         string         `json:"name"`
	Start        string         `json:"start"` // RFC3339Nano
	DurationMs   float64        `json:"duration_ms"`
	Attrs        map[string]any `json:"attrs,omitempty"`

	start time.Time // retained for Chrome export (µs precision)
	durUS float64
}

// Flatten walks the span tree depth-first and returns one record per
// span, root first. Nil spans flatten to nothing.
func Flatten(root *Span) []SpanRecord {
	var out []SpanRecord
	var walk func(s *Span)
	walk = func(s *Span) {
		if s == nil {
			return
		}
		s.mu.Lock()
		rec := SpanRecord{
			TraceID:    s.traceID.String(),
			SpanID:     s.spanID.String(),
			Name:       s.name,
			Start:      s.start.Format(time.RFC3339Nano),
			start:      s.start,
			DurationMs: float64(s.durationLocked().Microseconds()) / 1000,
		}
		if !s.parent.IsZero() {
			rec.ParentSpanID = s.parent.String()
		}
		if len(s.attrs) > 0 {
			rec.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				rec.Attrs[a.key] = a.val
			}
		}
		children := append([]*Span(nil), s.children...)
		s.mu.Unlock()
		rec.durUS = rec.DurationMs * 1000
		out = append(out, rec)
		for _, c := range children {
			walk(c)
		}
	}
	walk(root)
	return out
}

// durationLocked is Duration without locking (callers hold s.mu).
func (s *Span) durationLocked() time.Duration {
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// WriteSpanNDJSON writes one JSON line per span of the tree.
func WriteSpanNDJSON(w io.Writer, root *Span) error {
	enc := json.NewEncoder(w)
	for _, rec := range Flatten(root) {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one complete ("ph":"X") event of the Chrome trace_event
// format: timestamps and durations in microseconds, pid/tid grouping the
// track. Trace and span IDs ride in args so the viewer shows them.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders one or more span trees as a Chrome
// trace_event JSON document ({"traceEvents": [...]}) loadable in
// chrome://tracing or Perfetto. Each root becomes its own tid track;
// timestamps are µs relative to the earliest span so tracks align.
func WriteChromeTrace(w io.Writer, roots ...*Span) error {
	var events []chromeEvent
	var origin time.Time
	type flat struct {
		recs []SpanRecord
		tid  int
	}
	var flats []flat
	tid := 1
	for _, root := range roots {
		recs := Flatten(root)
		if len(recs) == 0 {
			continue
		}
		if origin.IsZero() || recs[0].start.Before(origin) {
			origin = recs[0].start
		}
		flats = append(flats, flat{recs: recs, tid: tid})
		tid++
	}
	for _, f := range flats {
		for _, rec := range f.recs {
			args := map[string]any{"trace_id": rec.TraceID, "span_id": rec.SpanID}
			if rec.ParentSpanID != "" {
				args["parent_span_id"] = rec.ParentSpanID
			}
			for k, v := range rec.Attrs {
				args[k] = v
			}
			events = append(events, chromeEvent{
				Name: rec.Name,
				Ph:   "X",
				Ts:   float64(rec.start.Sub(origin).Microseconds()),
				Dur:  rec.durUS,
				Pid:  1,
				Tid:  f.tid,
				Args: args,
			})
		}
	}
	if events == nil {
		events = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events})
}
