package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRotatingFileRotatesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.ndjson")
	// 64-byte cap: each 30-byte line fits, two don't.
	rf, err := OpenRotatingFile(path, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	line := []byte(strings.Repeat("x", 29) + "\n")
	for i := 0; i < 10; i++ {
		if _, err := rf.Write(line); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}

	// The active file stays under the cap.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 64 {
		t.Fatalf("active file %d bytes, cap 64", st.Size())
	}
	// At most 2 rotated generations survive pruning.
	gens, _ := filepath.Glob(path + ".*")
	if len(gens) > 2 {
		t.Fatalf("kept %d generations %v, want <= 2", len(gens), gens)
	}
	if len(gens) == 0 {
		t.Fatalf("expected rotation to have happened")
	}
	// Every surviving file holds whole lines — rotation never splits one.
	for _, p := range append(gens, path) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 && data[len(data)-1] != '\n' {
			t.Fatalf("%s ends mid-line", p)
		}
		for _, l := range bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n")) {
			if len(l) != 29 {
				t.Fatalf("%s holds a split line of %d bytes", p, len(l))
			}
		}
	}
}

func TestRotatingFileContinuesNumberingAfterReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	rf, err := OpenRotatingFile(path, 32, 10)
	if err != nil {
		t.Fatal(err)
	}
	line := []byte(strings.Repeat("a", 19) + "\n")
	for i := 0; i < 4; i++ {
		if _, err := rf.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	rf.Close()
	before, _ := filepath.Glob(path + ".*")

	// A restart must not overwrite existing generations.
	rf2, err := OpenRotatingFile(path, 32, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := rf2.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	rf2.Close()
	after, _ := filepath.Glob(path + ".*")
	if len(after) <= len(before) {
		t.Fatalf("restart produced no new generations: before %v after %v", before, after)
	}
}

// slowWriter blocks each write until released, to force queue pressure.
type slowWriter struct {
	mu      sync.Mutex
	release chan struct{}
	lines   int
}

func (w *slowWriter) Write(p []byte) (int, error) {
	<-w.release
	w.mu.Lock()
	w.lines++
	w.mu.Unlock()
	return len(p), nil
}

func TestAsyncSinkDropsWhenFull(t *testing.T) {
	w := &slowWriter{release: make(chan struct{})}
	s := NewAsyncSink(w, 2)
	// One line is in the writer (blocked), two fill the queue; everything
	// past that must drop without blocking.
	sent := 0
	deadline := time.Now().Add(2 * time.Second)
	for sent < 10 && time.Now().Before(deadline) {
		s.Emit([]byte("line"))
		sent++
	}
	if sent < 10 {
		t.Fatalf("Emit blocked; only %d sends completed", sent)
	}
	if s.Dropped() == 0 {
		t.Fatalf("expected drops under backpressure")
	}
	close(w.release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Written() + s.Dropped(); got != 10 {
		t.Fatalf("written(%d) + dropped(%d) = %d, want 10", s.Written(), s.Dropped(), got)
	}
}

func TestAsyncSinkAppendsNewline(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	s := NewAsyncSink(w, 0)
	s.Emit([]byte("a"))
	s.Emit([]byte("b\n"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := buf.String()
	mu.Unlock()
	if got != "a\nb\n" {
		t.Fatalf("sink wrote %q, want %q", got, "a\nb\n")
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestAsyncSinkConcurrentEmitClose(t *testing.T) {
	// Emit racing Close must never panic (send on closed channel) —
	// run with -race.
	for i := 0; i < 50; i++ {
		s := NewAsyncSink(writerFunc(func(p []byte) (int, error) { return len(p), nil }), 4)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 20; j++ {
					s.Emit([]byte(fmt.Sprintf("line %d", j)))
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Close()
		}()
		wg.Wait()
		_ = s.Close() // double close is a no-op
		if !s.Emit([]byte("after close")) {
			// expected: emits after close report false
		} else {
			t.Fatalf("Emit after Close reported accepted")
		}
	}
}

func TestNilSinkIsNoop(t *testing.T) {
	var s *AsyncSink
	if s.Emit([]byte("x")) {
		t.Fatal("nil sink accepted a line")
	}
	if s.Dropped() != 0 || s.Written() != 0 {
		t.Fatal("nil sink has counts")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
