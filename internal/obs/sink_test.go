package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRotatingFileRotatesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.ndjson")
	// 64-byte cap: each 30-byte line fits, two don't.
	rf, err := OpenRotatingFile(path, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	line := []byte(strings.Repeat("x", 29) + "\n")
	for i := 0; i < 10; i++ {
		if _, err := rf.Write(line); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}

	// The active file stays under the cap.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 64 {
		t.Fatalf("active file %d bytes, cap 64", st.Size())
	}
	// At most 2 rotated generations survive pruning.
	gens, _ := filepath.Glob(path + ".*")
	if len(gens) > 2 {
		t.Fatalf("kept %d generations %v, want <= 2", len(gens), gens)
	}
	if len(gens) == 0 {
		t.Fatalf("expected rotation to have happened")
	}
	// Every surviving file holds whole lines — rotation never splits one.
	for _, p := range append(gens, path) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 && data[len(data)-1] != '\n' {
			t.Fatalf("%s ends mid-line", p)
		}
		for _, l := range bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n")) {
			if len(l) != 29 {
				t.Fatalf("%s holds a split line of %d bytes", p, len(l))
			}
		}
	}
}

func TestRotatingFileContinuesNumberingAfterReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	rf, err := OpenRotatingFile(path, 32, 10)
	if err != nil {
		t.Fatal(err)
	}
	line := []byte(strings.Repeat("a", 19) + "\n")
	for i := 0; i < 4; i++ {
		if _, err := rf.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	rf.Close()
	before, _ := filepath.Glob(path + ".*")

	// A restart must not overwrite existing generations.
	rf2, err := OpenRotatingFile(path, 32, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := rf2.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	rf2.Close()
	after, _ := filepath.Glob(path + ".*")
	if len(after) <= len(before) {
		t.Fatalf("restart produced no new generations: before %v after %v", before, after)
	}
}

// slowWriter blocks each write until released, to force queue pressure.
type slowWriter struct {
	mu      sync.Mutex
	release chan struct{}
	lines   int
}

func (w *slowWriter) Write(p []byte) (int, error) {
	<-w.release
	w.mu.Lock()
	w.lines++
	w.mu.Unlock()
	return len(p), nil
}

func TestAsyncSinkDropsWhenFull(t *testing.T) {
	w := &slowWriter{release: make(chan struct{})}
	s := NewAsyncSink(w, 2)
	// One line is in the writer (blocked), two fill the queue; everything
	// past that must drop without blocking.
	sent := 0
	deadline := time.Now().Add(2 * time.Second)
	for sent < 10 && time.Now().Before(deadline) {
		s.Emit([]byte("line"))
		sent++
	}
	if sent < 10 {
		t.Fatalf("Emit blocked; only %d sends completed", sent)
	}
	if s.Dropped() == 0 {
		t.Fatalf("expected drops under backpressure")
	}
	close(w.release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Written() + s.Dropped(); got != 10 {
		t.Fatalf("written(%d) + dropped(%d) = %d, want 10", s.Written(), s.Dropped(), got)
	}
}

func TestAsyncSinkAppendsNewline(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	s := NewAsyncSink(w, 0)
	s.Emit([]byte("a"))
	s.Emit([]byte("b\n"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := buf.String()
	mu.Unlock()
	if got != "a\nb\n" {
		t.Fatalf("sink wrote %q, want %q", got, "a\nb\n")
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestAsyncSinkConcurrentEmitClose(t *testing.T) {
	// Emit racing Close must never panic (send on closed channel) —
	// run with -race.
	for i := 0; i < 50; i++ {
		s := NewAsyncSink(writerFunc(func(p []byte) (int, error) { return len(p), nil }), 4)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 20; j++ {
					s.Emit([]byte(fmt.Sprintf("line %d", j)))
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Close()
		}()
		wg.Wait()
		_ = s.Close() // double close is a no-op
		if !s.Emit([]byte("after close")) {
			// expected: emits after close report false
		} else {
			t.Fatalf("Emit after Close reported accepted")
		}
	}
}

func TestNilSinkIsNoop(t *testing.T) {
	var s *AsyncSink
	if s.Emit([]byte("x")) {
		t.Fatal("nil sink accepted a line")
	}
	if s.Dropped() != 0 || s.Written() != 0 {
		t.Fatal("nil sink has counts")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRotatingFileRestartCountsExistingGenerations proves the disk
// budget survives process restarts: generations written by a previous
// process count toward maxFiles, so rotation in the new process prunes
// them instead of accumulating maxFiles per process lifetime.
func TestRotatingFileRestartCountsExistingGenerations(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	line := []byte(strings.Repeat("a", 19) + "\n")

	// First process: enough writes for several rotations at maxFiles=2.
	rf, err := OpenRotatingFile(path, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := rf.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	rf.Close()
	before, _ := filepath.Glob(path + ".*")
	if len(before) != 2 {
		t.Fatalf("first process kept %d generations, want 2: %v", len(before), before)
	}

	// Second process: more rotations. The pre-restart generations must be
	// pruned as new ones arrive — the cap is per log, not per process.
	rf2, err := OpenRotatingFile(path, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := rf2.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	rf2.Close()
	after, _ := filepath.Glob(path + ".*")
	if len(after) != 2 {
		t.Fatalf("after restart %d generations on disk, want 2: %v", len(after), after)
	}
	for _, old := range before {
		for _, kept := range after {
			if old == kept {
				t.Errorf("pre-restart generation %s survived rotation past the cap", old)
			}
		}
	}
}

// TestAsyncSinkWedgedWriterAccounting wedges the writer completely and
// checks the sink's contract under the worst case: Emit never blocks,
// exactly queue+1 lines are in flight (one in the stuck writer, queue
// buffered), and every line is accounted as written or dropped — no
// line vanishes.
func TestAsyncSinkWedgedWriterAccounting(t *testing.T) {
	VerifyNoLeaks(t)
	w := &wedgedWriter{entered: make(chan struct{}), release: make(chan struct{})}
	s := NewAsyncSink(w, 4)

	// Wedge deterministically: the first line enters Write and sticks
	// there before anything else is emitted.
	if !s.Emit([]byte("line")) {
		t.Fatal("first emit rejected")
	}
	<-w.entered

	const rest = 49
	accepted := 1
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < rest; i++ {
			if s.Emit([]byte("line")) {
				accepted++
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a wedged writer")
	}

	// One line sits in the blocked Write, four fill the queue; the rest
	// must already be counted dropped while the writer is still wedged.
	const total = rest + 1
	if want := total - (4 + 1); s.Dropped() != int64(want) {
		t.Errorf("dropped %d while wedged, want %d", s.Dropped(), want)
	}
	if accepted != 5 {
		t.Errorf("accepted %d, want 5", accepted)
	}

	// Unwedge: the drain finishes, and accounting closes the books.
	close(w.release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Written() + s.Dropped(); got != total {
		t.Fatalf("written(%d) + dropped(%d) = %d, want %d", s.Written(), s.Dropped(), got, total)
	}
}

// wedgedWriter signals when a write has entered and then blocks it
// until released.
type wedgedWriter struct {
	once    sync.Once
	entered chan struct{}
	release chan struct{}
	lines   atomic.Int64
}

func (w *wedgedWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.entered) })
	<-w.release
	w.lines.Add(1)
	return len(p), nil
}
