// Wide-event query telemetry: ONE canonical structured record per query
// lineage, carrying everything the run revealed — identity (fingerprint,
// trace ID), snapshot (epoch, layout signature), budget, segmentation,
// the per-step coverage trajectory, cache behaviour, degradation, and
// the outcome. This generalizes the slow-query-only log: where the slow
// log answers "show me the bad ones", the wide-event stream is the
// faithful per-query record that workload mining (internal/workload,
// cmd/pingworkload) and the SLO engine consume.
//
// Events are NDJSON through an AsyncSink over a RotatingFile, so
// emission never blocks a query and the stream's disk footprint is
// bounded.
package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"time"
)

// WideEvent is the canonical per-query-lineage record. Field names are
// the stable NDJSON schema; zero-valued optional fields are omitted.
type WideEvent struct {
	// Time is the RFC3339Nano completion timestamp (stamped by Emit when
	// empty).
	Time string `json:"time"`
	// TraceID links the event to the query's trace (propagated from the
	// client's traceparent header or generated server-side); empty when
	// the query was not traced.
	TraceID string `json:"trace_id,omitempty"`
	// Fingerprint, Shape and Canonical identify the workload entry
	// (α-equivalence class); Query is the original text.
	Fingerprint string `json:"fingerprint"`
	Shape       string `json:"shape,omitempty"`
	Canonical   string `json:"canonical,omitempty"`
	Query       string `json:"query,omitempty"`
	// Epoch is the snapshot the run pinned; LayoutSig its content
	// signature (stable across restarts, unlike the epoch number).
	Epoch     uint64 `json:"epoch"`
	LayoutSig uint64 `json:"layout_sig,omitempty"`
	// Strategy is the slice schedule strategy of the run.
	Strategy string `json:"strategy,omitempty"`
	// Budget echoes the client's declared budget, when any.
	BudgetSteps    int     `json:"budget_steps,omitempty"`
	BudgetRows     int64   `json:"budget_rows,omitempty"`
	BudgetDeadline float64 `json:"budget_deadline_ms,omitempty"`
	// Segments counts the run segments of the lineage (1 = never
	// paused); ResumedFrom is the cursor ID a multi-segment lineage
	// resumed through.
	Segments    int    `json:"segments,omitempty"`
	ResumedFrom string `json:"resumed_from,omitempty"`
	// Steps counts delivered progressive steps; StepMs and Coverage are
	// the per-step wall-time and coverage trajectories (coverage is
	// |answers after step i| / |final answers|, the paper's
	// progressiveness metric).
	Steps    int       `json:"steps"`
	StepMs   []float64 `json:"step_ms,omitempty"`
	Coverage []float64 `json:"coverage,omitempty"`
	// StepsToFirstAnswer is the 1-based step delivering the first answer
	// (0: none); CoverageAtFirst its coverage.
	StepsToFirstAnswer int     `json:"steps_to_first_answer,omitempty"`
	CoverageAtFirst    float64 `json:"coverage_at_first,omitempty"`
	// Answers and RowsLoaded summarize the result and the work done.
	Answers    int   `json:"answers"`
	RowsLoaded int64 `json:"rows_loaded,omitempty"`
	// CacheHits / CacheMisses count decoded sub-partition cache
	// behaviour; Incremental reports semi-naive evaluation.
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
	Incremental bool  `json:"incremental,omitempty"`
	// Degraded and MissingSubParts report sub-partitions skipped as
	// unreadable (the answers remain a sound subset).
	Degraded        bool `json:"degraded,omitempty"`
	MissingSubParts int  `json:"missing_subparts,omitempty"`
	// Resource-ledger fields (prof.Ledger): what the lineage measurably
	// cost. TaskMs sums dataflow task wall time (parallel tasks sum, so
	// it can exceed LatencyMs); the byte fields separate storage reads
	// from cache-miss decodes; CacheBytesPinned and PeakRelationRows are
	// peaks, not sums.
	TaskMs           float64 `json:"task_ms,omitempty"`
	BytesDecoded     int64   `json:"bytes_decoded,omitempty"`
	StorageBytesRead int64   `json:"storage_bytes_read,omitempty"`
	CacheBytesPinned int64   `json:"cache_bytes_pinned,omitempty"`
	DictDecodes      int64   `json:"dict_decodes,omitempty"`
	PeakRelationRows int64   `json:"peak_relation_rows,omitempty"`
	// LatencyMs is the lineage's total wall time, summed across
	// segments; Error carries the failure of runs that errored.
	LatencyMs float64 `json:"latency_ms"`
	Error     string  `json:"error,omitempty"`
}

// EventLog emits wide events as NDJSON through a bounded async sink. A
// nil *EventLog drops everything, so call sites need no guards.
type EventLog struct {
	sink *AsyncSink
	reg  *Registry
}

// NewEventLog builds an event log draining into w (typically a
// *RotatingFile; closed by Close when closable), with a bounded queue
// (queue <= 0: default). Emission stats are exported on reg (nil:
// Default) as wideevent_emitted_total / wideevent_dropped_total.
func NewEventLog(w interface{ Write([]byte) (int, error) }, queue int, reg *Registry) *EventLog {
	if reg == nil {
		reg = Default
	}
	reg.Describe("wideevent_emitted_total", "wide query events accepted by the async sink")
	reg.Describe("wideevent_dropped_total", "wide query events dropped (full queue or closed sink)")
	return &EventLog{sink: NewAsyncSink(w, queue), reg: reg}
}

// Emit records one event, stamping Time when unset. It reports whether
// the event was accepted by the queue.
func (l *EventLog) Emit(ev WideEvent) bool {
	if l == nil {
		return false
	}
	if ev.Time == "" {
		ev.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	line, err := json.Marshal(ev)
	if err != nil {
		l.reg.Counter("wideevent_dropped_total", nil).Inc()
		return false
	}
	ok := l.sink.Emit(line)
	if ok {
		l.reg.Counter("wideevent_emitted_total", nil).Inc()
	} else {
		l.reg.Counter("wideevent_dropped_total", nil).Inc()
	}
	return ok
}

// Dropped returns how many events were discarded.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.sink.Dropped()
}

// Close drains and closes the sink (and its writer).
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	return l.sink.Close()
}

// ReadWideEvents parses a wide-event NDJSON stream written by EventLog.
// Blank lines are skipped; any other malformed line is an error.
func ReadWideEvents(r io.Reader) ([]WideEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []WideEvent
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev WideEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}
