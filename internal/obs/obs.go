// Package obs is the observability substrate of the PING stack: a
// concurrent metrics registry (counters, gauges, histograms with fixed
// log-scale buckets), span-based query tracing propagated through
// context.Context, and an HTTP introspection surface (/metrics in
// Prometheus text exposition format, /debug/vars as JSON, and the
// net/http/pprof handlers).
//
// The package is stdlib-only and dependency-free within the repo so every
// layer — dfs block reads, dataflow stages, engine joins, ping slice
// steps, the CLI servers — can record into it without import cycles.
// Metric handles are resolved once and updated with atomic operations, so
// recording on hot paths costs one atomic add.
//
// The process-wide Default registry is what the layers record into unless
// a caller supplies its own; cmd binaries expose Default over HTTP via
// the -metrics-addr flag.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry. Library layers record into it
// when no explicit registry is configured.
var Default = NewRegistry()

// Labels attach dimension values to a metric series (e.g. node="2").
// A metric name plus its sorted label pairs identify one series.
type Labels map[string]string

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the series to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d with a CAS loop.
func (g *Gauge) Add(d float64) { addFloat(&g.bits, d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets with the Prometheus
// `le` (less-or-equal) semantics: bucket i counts observations v with
// bounds[i-1] < v <= bounds[i]; one extra implicit +Inf bucket catches
// the rest. Bounds are fixed at creation (log-scale via LogBuckets for
// latencies and row counts), so observation is lock-free.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Int64 // len(bounds)+1; last is +Inf
	count     atomic.Int64
	sumBits   atomic.Uint64
	exemplars []atomic.Pointer[Exemplar] // per bucket; latest traced observation
}

// Exemplar links one histogram observation to the trace it was recorded
// under — the breadcrumb from a latency bucket back to a concrete query
// trace (OpenMetrics-style; exported in the JSON snapshot).
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // smallest i with bounds[i] >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// ObserveExemplar is Observe plus, when traceID is non-empty, recording
// the observation as the bucket's latest exemplar. Exemplar storage is a
// single atomic pointer per bucket, so tracing adds one store to the hot
// path and nothing when traceID is "".
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID})
}

// Exemplars returns the latest exemplar per bucket (nil entries where no
// traced observation landed); the last entry is the +Inf bucket.
func (h *Histogram) Exemplars() []*Exemplar {
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

func addFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// LogBuckets returns n exponentially spaced upper bounds starting at min
// and multiplying by factor — the fixed log-scale bucket layout used for
// every histogram in the stack.
func LogBuckets(min, factor float64, n int) []float64 {
	if min <= 0 || factor <= 1 || n <= 0 {
		panic("obs: LogBuckets requires min > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	b := min
	for i := 0; i < n; i++ {
		out[i] = b
		b *= factor
	}
	return out
}

// TimeBuckets spans 1µs to ~8.4s doubling per bucket — the latency layout
// shared by step, query, join, and HTTP histograms.
var TimeBuckets = LogBuckets(1e-6, 2, 24)

// RowBuckets spans 1 to ~1G rows, quadrupling per bucket.
var RowBuckets = LogBuckets(1, 4, 16)

// series is one (name, labels) stream of a family.
type series struct {
	labels  string // canonical rendered label string, "" when unlabelled
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	typ    string // "counter", "gauge", "histogram"
	help   string
	series map[string]*series
	order  []string // label signatures in registration order
}

// Registry holds metric families. All methods are safe for concurrent
// use; the returned metric handles are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Describe attaches HELP text to a metric family (exported as the
// Prometheus # HELP comment). Safe to call before or after the family's
// first series is created.
func (r *Registry) Describe(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, series: make(map[string]*series)}
		r.families[name] = f
	}
	f.help = help
}

// getSeries returns (creating on first use) the series for name+labels,
// checking the family type.
func (r *Registry) getSeries(name, typ string, labels Labels) *series {
	sig := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ == "" {
		f.typ = typ
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	s := f.series[sig]
	if s == nil {
		s = &series{labels: sig}
		f.series[sig] = s
		f.order = append(f.order, sig)
	}
	return s
}

// Counter returns (creating on first use) the counter series for
// name+labels. Panics if name is already registered with another type.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	s := r.getSeries(name, "counter", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns (creating on first use) the gauge series for name+labels.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	s := r.getSeries(name, "gauge", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns (creating on first use) the histogram series for
// name+labels with the given bucket bounds (nil means TimeBuckets). The
// bounds of an existing series are kept; callers must agree on them.
func (r *Registry) Histogram(name string, bounds []float64, labels Labels) *Histogram {
	s := r.getSeries(name, "histogram", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		if bounds == nil {
			bounds = TimeBuckets
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
			}
		}
		s.hist = &Histogram{
			bounds:    append([]float64(nil), bounds...),
			counts:    make([]atomic.Int64, len(bounds)+1),
			exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
		}
	}
	return s.hist
}

// renderLabels canonicalizes labels into the Prometheus series suffix:
// {k1="v1",k2="v2"} with keys sorted, or "" for no labels.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the text exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}
