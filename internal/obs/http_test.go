package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", nil).Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "up_total 1") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if !strings.Contains(ctype, "text/plain") {
		t.Fatalf("/metrics content type = %q", ctype)
	}

	code, body, _ = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars code = %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}

	code, _, _ = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ code = %d", code)
	}
}

func TestServeBindsAndServes(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", nil).Add(2)
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "x_total 2") {
		t.Fatalf("served metrics missing counter:\n%s", body)
	}
}

// TestInstrumentConcurrentStreamingWithTraceparent hammers the
// instrumented middleware with concurrent streaming (flushing) requests,
// each carrying its own traceparent. Run with -race: it pins down that
// the statusWriter's Flush path, the shared latency histogram, and the
// per-bucket exemplar pointers are all safe under concurrency, and that
// each request's remote trace context reaches both the handler and the
// recorded exemplars.
func TestInstrumentConcurrentStreamingWithTraceparent(t *testing.T) {
	r := NewRegistry()
	var seen sync.Map // traceID -> true, as observed inside the handler
	h := Instrument(r, "/query", nil, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if tc, ok := RemoteFromContext(req.Context()); ok {
			seen.Store(tc.TraceID.String(), true)
		}
		f, _ := w.(http.Flusher)
		for i := 0; i < 5; i++ {
			fmt.Fprintf(w, "{\"step\":%d}\n", i)
			if f != nil {
				f.Flush()
			}
		}
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	const n = 16
	traceIDs := make([]string, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		tc := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: 1}
		traceIDs[i] = tc.TraceID.String()
		wg.Add(1)
		go func(tc TraceContext) {
			defer wg.Done()
			req, _ := http.NewRequest("GET", srv.URL+"/", nil)
			InjectTraceparent(req, tc)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if got := strings.Count(string(body), "\n"); got != 5 {
				errs <- fmt.Errorf("streamed %d lines, want 5", got)
			}
		}(tc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, tid := range traceIDs {
		if _, ok := seen.Load(tid); !ok {
			t.Fatalf("handler never saw remote trace %s", tid)
		}
	}
	lat := r.Histogram("http_request_seconds", TimeBuckets, Labels{"route": "/query"})
	if got := lat.Count(); got != n {
		t.Fatalf("latency observations = %d, want %d", got, n)
	}
	// At least one bucket carries an exemplar, and every exemplar points
	// at one of the propagated traces.
	found := 0
	valid := make(map[string]bool, n)
	for _, tid := range traceIDs {
		valid[tid] = true
	}
	for _, ex := range lat.Exemplars() {
		if ex == nil {
			continue
		}
		found++
		if !valid[ex.TraceID] {
			t.Fatalf("exemplar trace %s is not one of the propagated IDs", ex.TraceID)
		}
	}
	if found == 0 {
		t.Fatal("no exemplars recorded despite traceparent on every request")
	}
}

func TestInstrument(t *testing.T) {
	r := NewRegistry()
	var logged []string
	h := Instrument(r, "/frag", func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("bad") != "" {
			http.Error(w, "nope", http.StatusBadRequest)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	if _, err := http.Get(srv.URL + "/"); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(srv.URL + "/?bad=1"); err != nil {
		t.Fatal(err)
	}

	if got := r.Counter("http_requests_total", Labels{"route": "/frag", "code": "200"}).Value(); got != 1 {
		t.Fatalf("200 counter = %d, want 1", got)
	}
	if got := r.Counter("http_requests_total", Labels{"route": "/frag", "code": "400"}).Value(); got != 1 {
		t.Fatalf("400 counter = %d, want 1", got)
	}
	if got := r.Histogram("http_request_seconds", TimeBuckets, Labels{"route": "/frag"}).Count(); got != 2 {
		t.Fatalf("latency observations = %d, want 2", got)
	}
	if len(logged) != 2 || !strings.Contains(logged[1], "-> 400") {
		t.Fatalf("request log wrong: %v", logged)
	}
}
