package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", nil).Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "up_total 1") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if !strings.Contains(ctype, "text/plain") {
		t.Fatalf("/metrics content type = %q", ctype)
	}

	code, body, _ = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars code = %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}

	code, _, _ = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ code = %d", code)
	}
}

func TestServeBindsAndServes(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", nil).Add(2)
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "x_total 2") {
		t.Fatalf("served metrics missing counter:\n%s", body)
	}
}

func TestInstrument(t *testing.T) {
	r := NewRegistry()
	var logged []string
	h := Instrument(r, "/frag", func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("bad") != "" {
			http.Error(w, "nope", http.StatusBadRequest)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	if _, err := http.Get(srv.URL + "/"); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(srv.URL + "/?bad=1"); err != nil {
		t.Fatal(err)
	}

	if got := r.Counter("http_requests_total", Labels{"route": "/frag", "code": "200"}).Value(); got != 1 {
		t.Fatalf("200 counter = %d, want 1", got)
	}
	if got := r.Counter("http_requests_total", Labels{"route": "/frag", "code": "400"}).Value(); got != 1 {
		t.Fatalf("400 counter = %d, want 1", got)
	}
	if got := r.Histogram("http_request_seconds", TimeBuckets, Labels{"route": "/frag"}).Count(); got != 2 {
		t.Fatalf("latency observations = %d, want 2", got)
	}
	if len(logged) != 2 || !strings.Contains(logged[1], "-> 400") {
		t.Fatalf("request log wrong: %v", logged)
	}
}
