package obs

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: 1}
	h := tc.Traceparent()
	if len(h) != 55 {
		t.Fatalf("traceparent length = %d, want 55 (%q)", len(h), h)
	}
	if !strings.HasPrefix(h, "00-") {
		t.Fatalf("traceparent %q does not start with version 00", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected its own rendering", h)
	}
	if got != tc {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, tc)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: 1}.Traceparent()
	cases := map[string]string{
		"empty":            "",
		"short":            valid[:54],
		"bad dash":         strings.Replace(valid, "-", "_", 1),
		"version ff":       "ff" + valid[2:],
		"non-hex trace id": valid[:3] + strings.Repeat("z", 32) + valid[35:],
		"zero trace id":    valid[:3] + strings.Repeat("0", 32) + valid[35:],
		"zero span id":     valid[:36] + strings.Repeat("0", 16) + valid[52:],
		"v00 with suffix":  valid + "-extra",
		"future no dash":   "01" + valid[2:] + "x",
	}
	for name, h := range cases {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want reject", name, h)
		}
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Future versions may append "-..." after the flags; the version-00
	// prefix must still parse (the spec's forward-compat rule).
	tc := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: 1}
	h := "01" + tc.Traceparent()[2:] + "-futurefield"
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("future version with suffix rejected: %q", h)
	}
	if got.TraceID != tc.TraceID || got.SpanID != tc.SpanID {
		t.Fatalf("future version parsed wrong IDs")
	}
}

func TestInjectExtractTraceparent(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: 1}
	req := httptest.NewRequest("GET", "/query", nil)
	InjectTraceparent(req, tc)
	got, ok := ExtractTraceparent(req)
	if !ok || got != tc {
		t.Fatalf("extract after inject: got %+v ok=%v, want %+v", got, ok, tc)
	}

	// Invalid contexts must stamp nothing.
	req2 := httptest.NewRequest("GET", "/query", nil)
	InjectTraceparent(req2, TraceContext{})
	if req2.Header.Get("Traceparent") != "" {
		t.Fatalf("invalid context stamped a traceparent header")
	}
}

func TestNewTraceFromContinuesRemoteTrace(t *testing.T) {
	remote := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: 1}
	ctx, span := NewTraceFrom(context.Background(), "server", remote)
	defer span.End()
	if span.TraceID() != remote.TraceID {
		t.Fatalf("server span trace ID %s, want remote %s", span.TraceID(), remote.TraceID)
	}
	if span.ParentSpanID() != remote.SpanID {
		t.Fatalf("server span parent %s, want remote span %s", span.ParentSpanID(), remote.SpanID)
	}
	if span.SpanID() == remote.SpanID {
		t.Fatalf("server span reused the remote span ID")
	}
	if TraceIDFromContext(ctx) != remote.TraceID.String() {
		t.Fatalf("TraceIDFromContext = %q, want %q", TraceIDFromContext(ctx), remote.TraceID)
	}

	// Children inherit the remote trace ID too.
	child := span.StartChild("step")
	child.End()
	if child.TraceID() != remote.TraceID || child.ParentSpanID() != span.SpanID() {
		t.Fatalf("child did not inherit the continued trace")
	}

	// Invalid remote context degrades to a fresh trace.
	_, s2 := NewTraceFrom(context.Background(), "server", TraceContext{})
	defer s2.End()
	if s2.TraceID().IsZero() {
		t.Fatalf("NewTraceFrom with invalid remote produced a zero trace ID")
	}
}
