// Bounded, size-capped NDJSON sinks: the durable output path of the
// observability layer. RotatingFile bounds a log's disk footprint with
// size-based rotation to generation-suffixed files; AsyncSink decouples
// the recording hot path from disk latency with a bounded queue and a
// single background writer (full queue = dropped line + counter, never a
// blocked query). The slow-query log, the wide-event query telemetry and
// the span exporter all write through these.
package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// RotatingFile is an io.WriteCloser that caps the active file at
// MaxBytes: when a write would exceed the cap, the active file is closed
// and renamed to <path>.<generation> (monotonically increasing) and a
// fresh <path> is opened. At most MaxFiles rotated generations are kept;
// older ones are removed. Each Write is expected to be one complete
// NDJSON line — rotation only happens between writes, so lines are never
// split across generations.
type RotatingFile struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	maxFiles int
	f        *os.File
	size     int64
	gen      int64 // next generation suffix to use
}

// DefaultLogMaxBytes caps one log generation at 64 MiB.
const DefaultLogMaxBytes = 64 << 20

// OpenRotatingFile opens (appending) path as a rotating NDJSON log.
// maxBytes <= 0 defaults to DefaultLogMaxBytes; maxFiles <= 0 keeps 3
// rotated generations. Existing <path>.<n> generations are detected so
// restarts continue the numbering instead of overwriting history.
func OpenRotatingFile(path string, maxBytes int64, maxFiles int) (*RotatingFile, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultLogMaxBytes
	}
	if maxFiles <= 0 {
		maxFiles = 3
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r := &RotatingFile{path: path, maxBytes: maxBytes, maxFiles: maxFiles, f: f, size: st.Size()}
	for _, g := range r.generations() {
		if g >= r.gen {
			r.gen = g + 1
		}
	}
	return r, nil
}

// generations lists the existing rotated generation numbers, ascending.
func (r *RotatingFile) generations() []int64 {
	matches, _ := filepath.Glob(r.path + ".*")
	var gens []int64
	for _, m := range matches {
		suffix := strings.TrimPrefix(m, r.path+".")
		if g, err := strconv.ParseInt(suffix, 10, 64); err == nil && g >= 0 {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// Write appends one line, rotating first when the cap would be exceeded.
func (r *RotatingFile) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return 0, os.ErrClosed
	}
	if r.size > 0 && r.size+int64(len(p)) > r.maxBytes {
		if err := r.rotateLocked(); err != nil {
			return 0, err
		}
	}
	n, err := r.f.Write(p)
	r.size += int64(n)
	return n, err
}

// rotateLocked closes the active file, renames it to the next
// generation, prunes old generations, and opens a fresh active file.
func (r *RotatingFile) rotateLocked() error {
	if err := r.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(r.path, fmt.Sprintf("%s.%d", r.path, r.gen)); err != nil {
		return err
	}
	r.gen++
	if gens := r.generations(); len(gens) > r.maxFiles {
		for _, g := range gens[:len(gens)-r.maxFiles] {
			os.Remove(fmt.Sprintf("%s.%d", r.path, g))
		}
	}
	f, err := os.OpenFile(r.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		r.f = nil
		return err
	}
	r.f = f
	r.size = 0
	return nil
}

// Size returns the active file's current size.
func (r *RotatingFile) Size() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// Close closes the active file. Further writes fail.
func (r *RotatingFile) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// AsyncSink writes pre-encoded lines through a bounded queue drained by
// one background goroutine. Emit never blocks: when the queue is full
// the line is dropped and counted, so a slow disk degrades telemetry,
// never query latency. A nil *AsyncSink drops everything silently, so
// call sites need no guards.
type AsyncSink struct {
	mu      sync.RWMutex // guards ch against close-during-send
	closed  bool
	ch      chan []byte
	w       interface{ Write([]byte) (int, error) }
	closer  func() error
	wg      sync.WaitGroup
	dropped atomic.Int64
	written atomic.Int64
}

// NewAsyncSink starts a sink draining into w (closed by Close when it
// implements io.Closer). queue <= 0 defaults to 1024 buffered lines.
func NewAsyncSink(w interface{ Write([]byte) (int, error) }, queue int) *AsyncSink {
	if queue <= 0 {
		queue = 1024
	}
	s := &AsyncSink{ch: make(chan []byte, queue), w: w}
	if c, ok := w.(interface{ Close() error }); ok {
		s.closer = c.Close
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for line := range s.ch {
			if _, err := s.w.Write(line); err == nil {
				s.written.Add(1)
			} else {
				s.dropped.Add(1)
			}
		}
	}()
	return s
}

// Emit enqueues one line (a '\n' is appended when missing). It reports
// whether the line was accepted; false means the queue was full or the
// sink closed, and the line was dropped.
func (s *AsyncSink) Emit(line []byte) bool {
	if s == nil {
		return false
	}
	if len(line) == 0 || line[len(line)-1] != '\n' {
		line = append(line, '\n')
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.dropped.Add(1)
		return false
	}
	select {
	case s.ch <- line:
		return true
	default:
		s.dropped.Add(1)
		return false
	}
}

// Dropped returns how many lines were discarded (full queue, closed
// sink, or write error).
func (s *AsyncSink) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Written returns how many lines reached the underlying writer.
func (s *AsyncSink) Written() int64 {
	if s == nil {
		return 0
	}
	return s.written.Load()
}

// Close drains the queue, stops the writer goroutine and closes the
// underlying writer when it is closable. Safe to call twice; Emit after
// Close drops.
func (s *AsyncSink) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.ch)
	s.mu.Unlock()
	s.wg.Wait()
	if s.closer != nil {
		return s.closer()
	}
	return nil
}
