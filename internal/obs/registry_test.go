package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", nil)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total", nil); again != c {
		t.Fatalf("second lookup returned a different counter")
	}
	g := r.Gauge("queue_depth", Labels{"shard": "a"})
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestLabelsMakeDistinctSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reads_total", Labels{"node": "0"})
	b := r.Counter("reads_total", Labels{"node": "1"})
	if a == b {
		t.Fatalf("different labels returned same series")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Fatalf("label series leaked increments")
	}
}

// TestHistogramBucketBoundaries pins the le (less-or-equal) semantics:
// a value exactly on a bound lands in that bound's bucket, values above
// every bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4}, nil)
	for _, v := range []float64{0.5, 1, 1.0001, 2, 4, 5} {
		h.Observe(v)
	}
	got := h.BucketCounts()
	want := []int64{2, 2, 1, 1} // le=1: {0.5,1}, le=2: {1.0001,2}, le=4: {4}, +Inf: {5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-13.5001) > 1e-9 {
		t.Fatalf("sum = %v, want 13.5001", h.Sum())
	}

	// Prometheus rendering must be cumulative.
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="2"} 4`,
		`lat_bucket{le="4"} 5`,
		`lat_bucket{le="+Inf"} 6`,
		`lat_count 6`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("prometheus output missing %q:\n%s", line, out)
		}
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("LogBuckets(0, 2, 3) did not panic")
		}
	}()
	LogBuckets(0, 2, 3)
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="(\\.|[^"\\])*"(,[a-zA-Z0-9_]+="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

func TestPrometheusFormatValid(t *testing.T) {
	r := NewRegistry()
	r.Describe("reads_total", "block reads per node")
	r.Counter("reads_total", Labels{"node": "0"}).Add(3)
	r.Counter("reads_total", Labels{"node": "1"}).Add(7)
	r.Gauge("temp", nil).Set(36.6)
	r.Histogram("lat_seconds", TimeBuckets, nil).Observe(0.002)
	r.Counter("weird_total", Labels{"q": `a"b\c` + "\nd"}).Inc()

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# HELP reads_total block reads per node") {
		t.Fatalf("missing HELP line:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE lat_seconds histogram") {
		t.Fatalf("missing histogram TYPE line:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("invalid exposition line %q", line)
		}
	}
}

func TestPrometheusHelpEscaping(t *testing.T) {
	r := NewRegistry()
	// A help text with both escape-worthy characters: a literal backslash
	// sequence `\n` (which must NOT collapse into a newline escape) and a
	// real newline.
	r.Describe("esc_total", `matches the regex \n token`+"\nsecond line")
	r.Counter("esc_total", nil).Inc()

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `# HELP esc_total matches the regex \\n token\nsecond line` + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("HELP not escaped per format 0.0.4:\n%s", out)
	}
	// No raw newline may survive inside the HELP comment: every line of
	// the output must be a comment or a valid sample.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("invalid exposition line %q", line)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", Labels{"k": "v"}).Add(2)
	r.Histogram("h", []float64{1, 2}, nil).Observe(1.5)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []SnapshotMetric `json:"metrics"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("got %d metrics, want 2", len(doc.Metrics))
	}
	if doc.Metrics[0].Name != "c_total" || doc.Metrics[0].Value != 2 || doc.Metrics[0].Labels["k"] != "v" {
		t.Fatalf("bad counter snapshot: %+v", doc.Metrics[0])
	}
	h := doc.Metrics[1]
	if h.Count != 1 || len(h.Buckets) != 3 || h.Buckets[1].Count != 1 {
		t.Fatalf("bad histogram snapshot: %+v", h)
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", nil)
	defer func() {
		if recover() == nil {
			t.Fatalf("registering x as gauge after counter did not panic")
		}
	}()
	r.Gauge("x", nil)
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("ops_total", Labels{"w": string(rune('a' + w%4))}).Inc()
				r.Histogram("lat", TimeBuckets, nil).Observe(float64(i) * 1e-6)
				r.Gauge("g", nil).Add(1)
				if i%100 == 0 {
					_ = r.Snapshot()
					var b bytes.Buffer
					_ = r.WritePrometheus(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, m := range r.Snapshot() {
		if m.Name == "ops_total" {
			total += int64(m.Value)
		}
	}
	if total != 8*500 {
		t.Fatalf("ops_total sum = %d, want %d", total, 8*500)
	}
	if got := r.Histogram("lat", TimeBuckets, nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}
