package obs

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test", []float64{1, 2, 4, 8}, nil)

	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}

	// 4 observations in (1,2], 4 in (2,4].
	for _, v := range []float64{1.5, 1.5, 2, 2, 3, 3, 4, 4} {
		h.Observe(v)
	}
	// Median rank 4 lands exactly at the top of the (1,2] bucket.
	if got := h.Quantile(0.5); !almostEqual(got, 2) {
		t.Fatalf("p50 = %v, want 2", got)
	}
	// Rank 6 = halfway through the (2,4] bucket → 3 by interpolation.
	if got := h.Quantile(0.75); !almostEqual(got, 3) {
		t.Fatalf("p75 = %v, want 3", got)
	}
	if got := h.Quantile(1); !almostEqual(got, 4) {
		t.Fatalf("p100 = %v, want 4", got)
	}
	// q outside [0,1] clamps rather than extrapolating.
	if got := h.Quantile(-1); got > h.Quantile(0.1) {
		t.Fatalf("q<0 gave %v, above the p10 %v", got, h.Quantile(0.1))
	}
	if got, want := h.Quantile(2), h.Quantile(1); !almostEqual(got, want) {
		t.Fatalf("q>1 = %v, want clamp to p100 %v", got, want)
	}

	// An observation past the last bound lands in the implicit +Inf
	// bucket; quantiles there clamp to the highest finite bound.
	h.Observe(100)
	if got := h.Quantile(1); !almostEqual(got, 8) {
		t.Fatalf("+Inf-bucket quantile = %v, want clamp to 8", got)
	}
}

// TestHistogramQuantileEdgeCases pins the degenerate inputs the
// dashboard feeds straight into SVG coordinates: no samples, one
// sample, NaN q, and a histogram declared with no buckets must all
// produce finite numbers — never NaN, never a panic.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()

	// One sample: every quantile is that sample's bucket estimate, and
	// every estimate is finite.
	one := r.Histogram("q_one", []float64{1, 2, 4}, nil)
	one.Observe(1.5)
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		got := one.Quantile(q)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("1-sample Quantile(%v) = %v, want finite", q, got)
		}
		if got < 1 || got > 2 {
			t.Fatalf("1-sample Quantile(%v) = %v, want within the (1,2] bucket", q, got)
		}
	}

	// NaN q yields 0, not NaN.
	if got := one.Quantile(math.NaN()); got != 0 {
		t.Fatalf("Quantile(NaN) = %v, want 0", got)
	}

	// A histogram with no finite bounds can't estimate anything; it must
	// still return 0 rather than divide into NaN.
	unbounded := r.Histogram("q_none", []float64{}, nil)
	unbounded.Observe(3)
	if got := unbounded.Quantile(0.5); got != 0 {
		t.Fatalf("no-bounds Quantile(0.5) = %v, want 0", got)
	}

	// A sample in the +Inf bucket only: clamps to the highest finite
	// bound's lower edge, still finite.
	inf := r.Histogram("q_inf", []float64{1}, nil)
	inf.Observe(50)
	if got := inf.Quantile(0.99); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("+Inf-only Quantile = %v, want finite", got)
	}
}

func TestSpanBufferRingEviction(t *testing.T) {
	b := NewSpanBuffer(3)
	spans := make([]*Span, 5)
	for i := range spans {
		_, spans[i] = NewTrace(context.Background(), "q")
		spans[i].SetAttr("i", i)
		b.Add(spans[i])
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", b.Dropped())
	}
	snap := b.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(snap))
	}
	for i, s := range snap {
		if want := spans[i+2]; s != want {
			t.Fatalf("Snapshot[%d] = %v, want span %d (oldest-first)", i, s.Attr("i"), i+2)
		}
	}

	// Partially filled ring: no drops, insertion order preserved.
	p := NewSpanBuffer(8)
	p.Add(spans[0])
	p.Add(spans[1])
	if p.Len() != 2 || p.Dropped() != 0 {
		t.Fatalf("partial ring: len %d dropped %d", p.Len(), p.Dropped())
	}
	if got := p.Snapshot(); len(got) != 2 || got[0] != spans[0] || got[1] != spans[1] {
		t.Fatalf("partial ring snapshot out of order")
	}

	// Nil receiver and nil span are both no-ops.
	var nb *SpanBuffer
	nb.Add(spans[0])
	if nb.Len() != 0 || nb.Dropped() != 0 || nb.Snapshot() != nil {
		t.Fatal("nil SpanBuffer should be inert")
	}
	b.Add(nil)
	if b.Len() != 3 {
		t.Fatal("Add(nil) changed the ring")
	}

	if def := NewSpanBuffer(0); len(def.buf) != 64 {
		t.Fatalf("default capacity %d, want 64", len(def.buf))
	}
}

func TestSamplerHeadSampling(t *testing.T) {
	var nilS *Sampler
	for i := 0; i < 3; i++ {
		if !nilS.Sample() {
			t.Fatal("nil Sampler must keep everything")
		}
	}
	all := NewSampler(0)
	for i := 0; i < 3; i++ {
		if !all.Sample() {
			t.Fatal("every<=1 must keep everything")
		}
	}
	s := NewSampler(3)
	kept := 0
	for i := 0; i < 9; i++ {
		if s.Sample() {
			if i%3 != 0 {
				t.Fatalf("kept call %d, want only multiples of 3", i)
			}
			kept++
		}
	}
	if kept != 3 {
		t.Fatalf("kept %d of 9, want 3", kept)
	}
}

// TestLabelEscapingRoundTrip feeds adversarial fingerprint-style label
// values through the registry and checks both the Prometheus rendering
// and the Snapshot round-trip recover the original value.
func TestLabelEscapingRoundTrip(t *testing.T) {
	hostile := []string{
		`plain`,
		`has "quotes" inside`,
		`back\slash`,
		"embedded\nnewline",
		`trailing backslash \`,
		`?x <p0> "lit\"eral"`,
		`comma, and ="fake pair"`,
		``,
	}
	r := NewRegistry()
	for _, v := range hostile {
		r.Counter("workload_queries_total", Labels{"fingerprint": v}).Inc()
	}

	snap := r.Snapshot()
	got := map[string]bool{}
	for _, m := range snap {
		got[m.Labels["fingerprint"]] = true
	}
	for _, v := range hostile {
		if !got[v] {
			t.Errorf("label value %q did not round-trip through Snapshot; got %v", v, got)
		}
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`fingerprint="has \"quotes\" inside"`,
		`fingerprint="back\\slash"`,
		`fingerprint="embedded\nnewline"`,
		`fingerprint="trailing backslash \\"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
	// Escaped output must stay one line per series: a literal newline in a
	// label value must never split the exposition line.
	for _, ln := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if ln == "" {
			t.Fatalf("blank line in exposition output:\n%s", out)
		}
		if !strings.HasPrefix(ln, "#") && !strings.Contains(ln, " ") {
			t.Fatalf("line %q has no value separator; a label newline leaked", ln)
		}
	}
}

// TestPrometheusExportStableOrdering registers the same series in two
// different (shuffled) orders and requires byte-for-byte identical
// Prometheus and JSON exports — the property diff-based tests depend on.
func TestPrometheusExportStableOrdering(t *testing.T) {
	type seed struct {
		name string
		lbl  Labels
	}
	seeds := []seed{
		{"workload_queries_total", Labels{"fingerprint": "aaa", "shape": "star"}},
		{"workload_queries_total", Labels{"fingerprint": "bbb", "shape": "chain"}},
		{"workload_queries_total", Labels{"fingerprint": "ccc", "shape": "complex"}},
		{"ping_steps_total", nil},
		{"aardvark_total", Labels{"k": "v"}},
	}
	build := func(order []int) *Registry {
		r := NewRegistry()
		r.Describe("workload_queries_total", "queries per fingerprint")
		for _, i := range order {
			r.Counter(seeds[i].name, seeds[i].lbl).Add(int64(i + 1))
		}
		r.Histogram("workload_query_seconds", []float64{0.1, 1}, Labels{"fingerprint": "aaa"}).Observe(0.5)
		r.Gauge("workload_fingerprints", nil).Set(3)
		return r
	}

	rng := rand.New(rand.NewSource(7))
	base := build([]int{0, 1, 2, 3, 4})
	var want bytes.Buffer
	if err := base.WritePrometheus(&want); err != nil {
		t.Fatal(err)
	}
	var wantJSON bytes.Buffer
	if err := base.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		order := rng.Perm(len(seeds))
		r := build(order)
		var got bytes.Buffer
		if err := r.WritePrometheus(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("order %v changed Prometheus output:\n--- want ---\n%s--- got ---\n%s", order, want.String(), got.String())
		}
		var gotJSON bytes.Buffer
		if err := r.WriteJSON(&gotJSON); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
			t.Fatalf("order %v changed JSON output", order)
		}
	}

	// Families appear sorted by name even though creation order differed.
	out := want.String()
	if strings.Index(out, "aardvark_total") > strings.Index(out, "workload_queries_total") {
		t.Fatalf("families not name-sorted:\n%s", out)
	}
}
