// Goroutine-leak verification for tests. A leaked goroutine in a
// long-running daemon is a resource bug the test suite should catch at
// the source: VerifyNoLeaks snapshots the live goroutines when a test
// starts and fails the test if goroutines born during it are still
// running when it ends (after a settling grace, because orderly
// shutdown is asynchronous).
package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakIgnores are stack substrings of goroutines that are not leaks:
// the test harness itself, and net/http's shared keep-alive connection
// pool (owned by http.DefaultClient, deliberately outliving any one
// test).
var leakIgnores = []string{
	"testing.tRunner(",
	"testing.(*T).Run(",
	"testing.runTests(",
	"runtime.Stack(",
	"net/http.(*persistConn).readLoop(",
	"net/http.(*persistConn).writeLoop(",
}

// leakSnapshot returns the currently live goroutines keyed by goroutine
// ID, each mapped to its full stack record, with ignorable goroutines
// already dropped.
func leakSnapshot() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := make(map[string]string)
records:
	for _, rec := range strings.Split(string(buf), "\n\n") {
		if !strings.HasPrefix(rec, "goroutine ") {
			continue
		}
		for _, ig := range leakIgnores {
			if strings.Contains(rec, ig) {
				continue records
			}
		}
		// "goroutine 12 [running]:" — the ID is the stable key.
		id := strings.Fields(rec)[1]
		out[id] = rec
	}
	return out
}

// settleLeaks polls until every goroutine not present in before has
// exited, or the grace expires; it returns the stacks of the survivors.
func settleLeaks(before map[string]string, grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	for {
		var extra []string
		for id, stack := range leakSnapshot() {
			if _, ok := before[id]; !ok {
				extra = append(extra, stack)
			}
		}
		if len(extra) == 0 || time.Now().After(deadline) {
			return extra
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// VerifyNoLeaks makes t fail if goroutines started during the test are
// still running when it finishes. Call it first in the test: it
// snapshots the goroutines alive now and registers a cleanup comparing
// against that snapshot, granting a short settling grace so orderly
// async shutdown (sink drains, server closes) can complete.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	before := leakSnapshot()
	t.Cleanup(func() {
		if extra := settleLeaks(before, 2*time.Second); len(extra) > 0 {
			t.Errorf("leaked %d goroutine(s):\n\n%s", len(extra), strings.Join(extra, "\n\n"))
		}
	})
}
