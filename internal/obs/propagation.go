// W3C Trace Context propagation: parsing and rendering the `traceparent`
// HTTP header (https://www.w3.org/TR/trace-context/), so one trace spans
// processes — pingquery's client span and pingd's server span share a
// trace ID, and a future scatter-gather coordinator can forward the same
// context to its shards.
//
// Only the level-1 header is implemented (version 00, fixed-length
// field layout); `tracestate` is intentionally ignored — the stack has
// no vendor state to carry.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strings"
)

// TraceID is the 16-byte identifier shared by every span of one trace.
type TraceID [16]byte

// String renders the ID as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is all zeroes (invalid per W3C).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// SpanID is the 8-byte identifier of one span.
type SpanID [8]byte

// String renders the ID as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is all zeroes (invalid per W3C).
func (s SpanID) IsZero() bool { return s == SpanID{} }

// NewTraceID returns a random trace ID. crypto/rand never fails on the
// supported platforms; on the impossible error path the ID degrades to
// zero (callers treat zero as "no trace").
func NewTraceID() TraceID {
	var t TraceID
	_, _ = rand.Read(t[:])
	return t
}

// NewSpanID returns a random span ID.
func NewSpanID() SpanID {
	var s SpanID
	_, _ = rand.Read(s[:])
	return s
}

// TraceContext is the propagated identity of a trace position: which
// trace, which parent span, and the sampled flag. The zero value is
// invalid (Valid() == false).
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Valid reports whether the context identifies a trace (both IDs
// non-zero, as the W3C spec requires).
func (tc TraceContext) Valid() bool { return !tc.TraceID.IsZero() && !tc.SpanID.IsZero() }

// Sampled reports the sampled flag bit.
func (tc TraceContext) Sampled() bool { return tc.Flags&1 == 1 }

// Traceparent renders the context as a version-00 traceparent header
// value: 00-<trace-id>-<parent-id>-<flags>.
func (tc TraceContext) Traceparent() string {
	var b strings.Builder
	b.Grow(55)
	b.WriteString("00-")
	b.WriteString(tc.TraceID.String())
	b.WriteByte('-')
	b.WriteString(tc.SpanID.String())
	b.WriteByte('-')
	flags := [1]byte{tc.Flags}
	b.WriteString(hex.EncodeToString(flags[:]))
	return b.String()
}

// ParseTraceparent parses a traceparent header value. It accepts any
// version except the invalid ff, requiring the version-00 field layout
// (the spec's forward-compatibility rule: unknown versions are parsed as
// 00 when the prefix matches). Returns ok == false for malformed values
// and for all-zero trace or span IDs.
func ParseTraceparent(h string) (TraceContext, bool) {
	var tc TraceContext
	h = strings.TrimSpace(h)
	// 2 (version) + 1 + 32 (trace-id) + 1 + 16 (parent-id) + 1 + 2 (flags)
	if len(h) < 55 {
		return tc, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tc, false
	}
	ver, err := hex.DecodeString(h[0:2])
	if err != nil || ver[0] == 0xff {
		return tc, false
	}
	// Version 00 must be exactly 55 chars; future versions may append
	// "-..." fields after the flags.
	if len(h) > 55 && (ver[0] == 0 || h[55] != '-') {
		return tc, false
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(h[3:35])); err != nil {
		return tc, false
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(h[36:52])); err != nil {
		return tc, false
	}
	flags, err := hex.DecodeString(h[53:55])
	if err != nil {
		return tc, false
	}
	tc.Flags = flags[0]
	if !tc.Valid() {
		return tc, false
	}
	return tc, true
}

// remoteCtxKey carries a remote (incoming) trace context through a
// request's context.Context, separate from the local span chain.
type remoteCtxKey struct{}

// ContextWithRemote attaches an incoming trace context to ctx. The
// Instrument middleware calls this for every request that carries a
// valid traceparent header; handlers that decide to trace pick it up
// with RemoteFromContext and root their trace via NewTraceFrom.
func ContextWithRemote(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, remoteCtxKey{}, tc)
}

// RemoteFromContext returns the incoming trace context attached by
// ContextWithRemote, if any.
func RemoteFromContext(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(remoteCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}

// InjectTraceparent stamps req with the traceparent header for tc (the
// client half of propagation). Invalid contexts stamp nothing.
func InjectTraceparent(req *http.Request, tc TraceContext) {
	if tc.Valid() {
		req.Header.Set("Traceparent", tc.Traceparent())
	}
}

// ExtractTraceparent reads and validates the traceparent header of an
// incoming request (the server half of propagation).
func ExtractTraceparent(r *http.Request) (TraceContext, bool) {
	h := r.Header.Get("Traceparent")
	if h == "" {
		return TraceContext{}, false
	}
	return ParseTraceparent(h)
}
