package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler returns the introspection mux for a registry:
//
//	/metrics       Prometheus text exposition format
//	/debug/vars    the same snapshot as JSON
//	/debug/pprof/  the net/http/pprof handlers
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve mounts Handler(r) on addr (":0" picks a free port) and serves it
// on a background goroutine. It returns the server (for Shutdown/Close)
// and the bound address.
func Serve(addr string, r *Registry) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

// statusWriter captures the response status for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streaming handlers (NDJSON
// responses) still reach the client line by line when instrumented.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Instrument wraps next with per-route request counting and latency
// histograms recorded into reg:
//
//	http_requests_total{route,code}
//	http_request_seconds{route}  (histogram, TimeBuckets)
//
// When logf is non-nil every request is also logged with method, path,
// status, and latency — the request log of the CLI servers.
//
// Instrument is also the server half of W3C trace propagation: a valid
// `traceparent` header is parsed and attached to the request context
// (RemoteFromContext), so handlers that trace can continue the caller's
// trace via NewTraceFrom instead of starting a fresh one.
func Instrument(reg *Registry, route string, logf func(format string, args ...any), next http.Handler) http.Handler {
	lat := reg.Histogram("http_request_seconds", TimeBuckets, Labels{"route": route})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if tc, ok := ExtractTraceparent(r); ok {
			r = r.WithContext(ContextWithRemote(r.Context(), tc))
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		// Exemplar: link this request's latency observation to the
		// caller's trace when one was propagated.
		tid := ""
		if tc, ok := RemoteFromContext(r.Context()); ok {
			tid = tc.TraceID.String()
		}
		lat.ObserveExemplar(elapsed.Seconds(), tid)
		reg.Counter("http_requests_total", Labels{
			"route": route,
			"code":  strconv.Itoa(sw.status),
		}).Inc()
		if logf != nil {
			logf("%s %s -> %d (%v)", r.Method, r.URL.RequestURI(), sw.status, elapsed)
		}
	})
}
