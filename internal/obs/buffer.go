package obs

import (
	"sync"
	"sync/atomic"
)

// SpanBuffer is a bounded ring of retained (root) spans — the retention
// policy that lets a long-running server keep its most recent query
// traces without growing memory without limit. When the ring is full the
// oldest trace is overwritten and counted as dropped. A nil *SpanBuffer
// is a valid no-op receiver, matching the package's nil-span convention.
type SpanBuffer struct {
	mu      sync.Mutex
	buf     []*Span
	next    int
	dropped atomic.Int64
}

// NewSpanBuffer returns a ring holding at most capacity spans
// (capacity <= 0 defaults to 64).
func NewSpanBuffer(capacity int) *SpanBuffer {
	if capacity <= 0 {
		capacity = 64
	}
	return &SpanBuffer{buf: make([]*Span, capacity)}
}

// Add retains s, evicting (and counting as dropped) the oldest retained
// span when the ring is full. Nil spans are ignored.
func (b *SpanBuffer) Add(s *Span) {
	if b == nil || s == nil {
		return
	}
	b.mu.Lock()
	if b.buf[b.next] != nil {
		b.dropped.Add(1)
	}
	b.buf[b.next] = s
	b.next = (b.next + 1) % len(b.buf)
	b.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (b *SpanBuffer) Snapshot() []*Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Span, 0, len(b.buf))
	for i := 0; i < len(b.buf); i++ {
		if s := b.buf[(b.next+i)%len(b.buf)]; s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Len returns the number of retained spans.
func (b *SpanBuffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, s := range b.buf {
		if s != nil {
			n++
		}
	}
	return n
}

// Dropped returns how many spans have been evicted from the ring.
func (b *SpanBuffer) Dropped() int64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// Sampler makes head-based sampling decisions: Sample keeps one in every
// N calls. Head sampling decides before a query runs, so a kept query
// pays the full tracing cost and a dropped one pays none — the right
// trade for high-QPS serving where tracing every request costs too much.
// A nil *Sampler keeps everything.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler keeps 1 in every calls; every <= 1 keeps all.
func NewSampler(every int) *Sampler {
	if every < 1 {
		every = 1
	}
	return &Sampler{every: uint64(every)}
}

// Sample reports whether this call's unit of work should be traced. The
// first call is always kept, then every N-th after it, so low-rate
// sampling still yields a trace promptly after startup.
func (s *Sampler) Sample() bool {
	if s == nil || s.every <= 1 {
		return true
	}
	return (s.n.Add(1)-1)%s.every == 0
}
