package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// SnapshotBucket is one histogram bucket in a snapshot (non-cumulative).
// Exemplar, when present, links the bucket to the trace of its latest
// traced observation.
type SnapshotBucket struct {
	LE       float64   `json:"le"`
	Count    int64     `json:"count"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// MarshalJSON renders the +Inf bound as the string "+Inf" (JSON numbers
// cannot express infinity).
func (b SnapshotBucket) MarshalJSON() ([]byte, error) {
	le := any(b.LE)
	if math.IsInf(b.LE, 1) {
		le = "+Inf"
	}
	return json.Marshal(struct {
		LE       any       `json:"le"`
		Count    int64     `json:"count"`
		Exemplar *Exemplar `json:"exemplar,omitempty"`
	}{le, b.Count, b.Exemplar})
}

// UnmarshalJSON accepts both numeric bounds and the "+Inf" string.
func (b *SnapshotBucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE       json.RawMessage `json:"le"`
		Count    int64           `json:"count"`
		Exemplar *Exemplar       `json:"exemplar"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	b.Exemplar = raw.Exemplar
	if string(raw.LE) == `"+Inf"` {
		b.LE = math.Inf(1)
		return nil
	}
	return json.Unmarshal(raw.LE, &b.LE)
}

// SnapshotMetric is one series frozen at snapshot time.
type SnapshotMetric struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counter (integral) and gauge values.
	Value float64 `json:"value,omitempty"`
	// Count/Sum/Buckets carry histogram state.
	Count   int64            `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []SnapshotBucket `json:"buckets,omitempty"`
}

// Snapshot freezes every series of the registry, sorted by name then
// label signature, so exports are deterministic.
func (r *Registry) Snapshot() []SnapshotMetric {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	type frozenSeries struct {
		fam *family
		sig string
		s   *series
	}
	var frozen []frozenSeries
	for _, n := range names {
		f := r.families[n]
		sigs := append([]string(nil), f.order...)
		sort.Strings(sigs)
		for _, sig := range sigs {
			frozen = append(frozen, frozenSeries{fam: f, sig: sig, s: f.series[sig]})
		}
	}
	r.mu.Unlock()

	out := make([]SnapshotMetric, 0, len(frozen))
	for _, fr := range frozen {
		m := SnapshotMetric{Name: fr.fam.name, Type: fr.fam.typ, Labels: parseLabels(fr.sig)}
		switch {
		case fr.s.counter != nil:
			m.Value = float64(fr.s.counter.Value())
		case fr.s.gauge != nil:
			m.Value = fr.s.gauge.Value()
		case fr.s.hist != nil:
			h := fr.s.hist
			m.Count = h.Count()
			m.Sum = h.Sum()
			counts := h.BucketCounts()
			exemplars := h.Exemplars()
			for i, b := range h.bounds {
				m.Buckets = append(m.Buckets, SnapshotBucket{LE: b, Count: counts[i], Exemplar: exemplars[i]})
			}
			m.Buckets = append(m.Buckets, SnapshotBucket{
				LE: math.Inf(1), Count: counts[len(counts)-1], Exemplar: exemplars[len(exemplars)-1],
			})
		}
		out = append(out, m)
	}
	return out
}

// parseLabels recovers the label map from a canonical signature. It only
// needs to undo renderLabels' escaping.
func parseLabels(sig string) map[string]string {
	if sig == "" {
		return nil
	}
	out := make(map[string]string)
	body := strings.TrimSuffix(strings.TrimPrefix(sig, "{"), "}")
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			break
		}
		key := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		out[key] = val.String()
		body = strings.TrimPrefix(rest[i:], `"`)
		body = strings.TrimPrefix(body, ",")
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE comments per family, one line
// per series, histogram buckets cumulative with the `le` label.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	sigsByFam := make([][]string, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
		s := append([]string(nil), fams[i].order...)
		sort.Strings(s)
		sigsByFam[i] = s
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, f := range fams {
		if f.typ == "" {
			continue // described but never populated
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, sig := range sigsByFam[i] {
			r.mu.Lock()
			s := f.series[sig]
			r.mu.Unlock()
			switch {
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, sig, s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, sig, formatFloat(s.gauge.Value()))
			case s.hist != nil:
				writePromHistogram(&b, f.name, sig, s.hist)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeHelp escapes a HELP text per the text exposition format 0.0.4:
// backslash becomes \\ and newline becomes \n. Backslashes must be
// escaped first — otherwise a help string containing a literal `\n`
// (backslash + 'n') and one containing a newline would render
// identically, and parsers would mis-decode the former.
func escapeHelp(help string) string {
	help = strings.ReplaceAll(help, `\`, `\\`)
	return strings.ReplaceAll(help, "\n", `\n`)
}

// writePromHistogram renders one histogram series: cumulative _bucket
// lines with le labels, then _sum and _count.
func writePromHistogram(b *strings.Builder, name, sig string, h *Histogram) {
	counts := h.BucketCounts()
	var cum int64
	for i, bound := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLE(sig, formatFloat(bound)), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLE(sig, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, sig, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, sig, h.Count())
}

// mergeLE appends the le label to an existing label signature.
func mergeLE(sig, le string) string {
	if sig == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(sig, "}") + `,le="` + le + `"}`
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders the snapshot as a JSON document: {"metrics": [...]}.
// This also backs the /debug/vars endpoint.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []SnapshotMetric `json:"metrics"`
	}{Metrics: r.Snapshot()})
}
