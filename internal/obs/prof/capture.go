package prof

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"ping/internal/obs"
)

// CaptureConfig configures continuous profile capture.
type CaptureConfig struct {
	// Dir receives cpu.pprof / heap.pprof plus rotated generations.
	Dir string
	// Interval between capture rounds (<=0: 60s).
	Interval time.Duration
	// CPUWindow is how long each CPU profile records (<=0: 5s; clamped
	// below Interval).
	CPUWindow time.Duration
	// MaxFiles bounds rotated generations kept per profile kind (<=0:
	// 3). Disk usage is bounded by 2 kinds x (MaxFiles+1 files) x the
	// largest single profile.
	MaxFiles int
	// CaptureOnStart opens a capture window immediately instead of
	// waiting for the first interval tick. Short-lived processes
	// (benchmark runs) use this so a run shorter than Interval still
	// leaves a profile behind: Close keeps the partial window.
	CaptureOnStart bool
	// Registry receives prof_* capture counters (nil: obs.Default).
	Registry *obs.Registry
	// OnCPUProfile, when set, observes every captured CPU profile
	// before it is persisted — pingd uses it to fold label-attributed
	// CPU into the workload profiler.
	OnCPUProfile func(data []byte)
}

// Capturer periodically captures CPU and heap profiles, persisting
// each through an obs.AsyncSink into an obs.RotatingFile. Each capture
// is exactly one write, and the rotating files use a 1-byte size cap
// so every write rotates the previous profile out: one complete,
// independently parseable profile per generation file (concatenated
// gzip profiles would not merge meaningfully), with RotatingFile's
// pruning and restart-aware numbering bounding total disk.
type Capturer struct {
	cfg      CaptureConfig
	cpuSink  *obs.AsyncSink
	heapSink *obs.AsyncSink

	captured *obs.Counter
	heapCap  *obs.Counter
	errs     *obs.Counter

	stop chan struct{}
	done chan struct{}
}

// StartCapture opens the profile files under cfg.Dir and launches the
// capture loop. Close flushes and stops it.
func StartCapture(cfg CaptureConfig) (*Capturer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("prof: capture dir required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("prof: capture dir: %w", err)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Minute
	}
	if cfg.CPUWindow <= 0 {
		cfg.CPUWindow = 5 * time.Second
	}
	if cfg.CPUWindow >= cfg.Interval {
		cfg.CPUWindow = cfg.Interval / 2
	}
	if cfg.MaxFiles <= 0 {
		cfg.MaxFiles = 3
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default
	}
	reg.Describe("prof_profiles_captured_total", "profiles captured, by kind")
	reg.Describe("prof_profile_capture_errors_total", "profile capture failures")

	cpuFile, err := obs.OpenRotatingFile(filepath.Join(cfg.Dir, "cpu.pprof"), 1, cfg.MaxFiles)
	if err != nil {
		return nil, err
	}
	heapFile, err := obs.OpenRotatingFile(filepath.Join(cfg.Dir, "heap.pprof"), 1, cfg.MaxFiles)
	if err != nil {
		cpuFile.Close()
		return nil, err
	}
	c := &Capturer{
		cfg:      cfg,
		cpuSink:  obs.NewAsyncSink(cpuFile, 4),
		heapSink: obs.NewAsyncSink(heapFile, 4),
		captured: reg.Counter("prof_profiles_captured_total", obs.Labels{"kind": "cpu"}),
		heapCap:  reg.Counter("prof_profiles_captured_total", obs.Labels{"kind": "heap"}),
		errs:     reg.Counter("prof_profile_capture_errors_total", nil),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go c.loop()
	return c, nil
}

func (c *Capturer) loop() {
	defer close(c.done)
	if c.cfg.CaptureOnStart {
		c.CaptureOnce()
	}
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.CaptureOnce()
		}
	}
}

// CaptureOnce records one CPU profile window and one heap snapshot and
// queues both for persistence. It is the loop body, exported so tests
// (and callers wanting an on-demand capture) can drive it directly.
func (c *Capturer) CaptureOnce() {
	c.captureCPU()
	c.captureHeap()
}

func (c *Capturer) captureCPU() {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Another profiler owns the CPU profile (e.g. -cpuprofile).
		c.errs.Inc()
		return
	}
	select {
	case <-time.After(c.cfg.CPUWindow):
	case <-c.stop:
		// Shutting down mid-window: keep the short profile.
	}
	pprof.StopCPUProfile()
	data := buf.Bytes()
	if c.cfg.OnCPUProfile != nil {
		c.cfg.OnCPUProfile(data)
	}
	c.cpuSink.Emit(data)
	c.captured.Inc()
}

func (c *Capturer) captureHeap() {
	p := pprof.Lookup("heap")
	if p == nil {
		c.errs.Inc()
		return
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 0); err != nil {
		c.errs.Inc()
		return
	}
	c.heapSink.Emit(buf.Bytes())
	c.heapCap.Inc()
}

// Dropped reports profiles lost to full sink queues or write errors.
func (c *Capturer) Dropped() int64 {
	return c.cpuSink.Dropped() + c.heapSink.Dropped()
}

// Close stops the loop and drains both sinks (closing the underlying
// rotating files).
func (c *Capturer) Close() error {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
	err := c.cpuSink.Close()
	if herr := c.heapSink.Close(); err == nil {
		err = herr
	}
	return err
}
