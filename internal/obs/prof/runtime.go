package prof

import (
	"fmt"
	"math"
	"runtime"
	"runtime/metrics"
	"time"

	"ping/internal/obs"
)

// Poller periodically samples runtime/metrics into an obs registry as
// runtime_* gauges: GC pause and cycle totals, heap and live bytes,
// goroutine count, and scheduling-latency quantiles. One poller per
// process is enough; Poll is also exported for one-shot use in tests.
type Poller struct {
	reg      *obs.Registry
	interval time.Duration
	samples  []metrics.Sample

	goroutines *obs.Gauge
	heapBytes  *obs.Gauge
	liveBytes  *obs.Gauge
	pauseTotal *obs.Gauge
	gcCycles   *obs.Gauge
	gcFraction *obs.Gauge
	schedLat   map[string]*obs.Gauge

	stop chan struct{}
	done chan struct{}
}

// Names polled from runtime/metrics. Missing names (older runtimes)
// are skipped gracefully.
const (
	mGoroutines = "/sched/goroutines:goroutines"
	mHeapBytes  = "/memory/classes/heap/objects:bytes"
	mLiveBytes  = "/gc/heap/live:bytes"
	mSchedLat   = "/sched/latencies:seconds"
)

var schedQuantiles = []float64{0.5, 0.95, 0.99}

// NewPoller builds a poller publishing into reg (nil: obs.Default)
// every interval (<=0: 10s). Call Start to begin polling.
func NewPoller(reg *obs.Registry, interval time.Duration) *Poller {
	if reg == nil {
		reg = obs.Default
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	reg.Describe("runtime_goroutines", "live goroutines")
	reg.Describe("runtime_heap_bytes", "bytes of allocated heap objects")
	reg.Describe("runtime_heap_live_bytes", "heap bytes live after the last GC")
	reg.Describe("runtime_gc_pause_seconds_total", "cumulative GC stop-the-world pause seconds")
	reg.Describe("runtime_gc_cycles_total", "completed GC cycles")
	reg.Describe("runtime_gc_cpu_fraction", "fraction of CPU spent in GC since process start")
	reg.Describe("runtime_sched_latency_seconds", "goroutine scheduling latency quantiles since process start")
	p := &Poller{
		reg:      reg,
		interval: interval,
		samples: []metrics.Sample{
			{Name: mGoroutines},
			{Name: mHeapBytes},
			{Name: mLiveBytes},
			{Name: mSchedLat},
		},
		goroutines: reg.Gauge("runtime_goroutines", nil),
		heapBytes:  reg.Gauge("runtime_heap_bytes", nil),
		liveBytes:  reg.Gauge("runtime_heap_live_bytes", nil),
		pauseTotal: reg.Gauge("runtime_gc_pause_seconds_total", nil),
		gcCycles:   reg.Gauge("runtime_gc_cycles_total", nil),
		gcFraction: reg.Gauge("runtime_gc_cpu_fraction", nil),
		schedLat:   make(map[string]*obs.Gauge, len(schedQuantiles)),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	for _, q := range schedQuantiles {
		qs := fmt.Sprintf("%g", q)
		p.schedLat[qs] = reg.Gauge("runtime_sched_latency_seconds", obs.Labels{"quantile": qs})
	}
	return p
}

// Poll takes one sample sweep and publishes it.
func (p *Poller) Poll() {
	metrics.Read(p.samples)
	for _, s := range p.samples {
		switch s.Name {
		case mGoroutines:
			if s.Value.Kind() == metrics.KindUint64 {
				p.goroutines.Set(float64(s.Value.Uint64()))
			}
		case mHeapBytes:
			if s.Value.Kind() == metrics.KindUint64 {
				p.heapBytes.Set(float64(s.Value.Uint64()))
			}
		case mLiveBytes:
			if s.Value.Kind() == metrics.KindUint64 {
				p.liveBytes.Set(float64(s.Value.Uint64()))
			}
		case mSchedLat:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				for qs, g := range p.schedLat {
					var q float64
					fmt.Sscanf(qs, "%g", &q)
					g.Set(histQuantile(h, q))
				}
			}
		}
	}
	// GC pause totals come from MemStats: runtime/metrics exposes pause
	// time only as a distribution, while PauseTotalNs is the exact
	// cumulative number dashboards want to rate().
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.pauseTotal.Set(float64(ms.PauseTotalNs) / 1e9)
	p.gcCycles.Set(float64(ms.NumGC))
	p.gcFraction.Set(ms.GCCPUFraction)
}

// histQuantile estimates quantile q from a runtime/metrics histogram
// snapshot, returning the upper bound of the bucket where the
// cumulative count crosses q (the last finite bound for the +Inf tail).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Counts[i] covers Buckets[i] .. Buckets[i+1].
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// Start launches the polling loop and returns the poller for chaining.
func (p *Poller) Start() *Poller {
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.interval)
		defer t.Stop()
		p.Poll()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.Poll()
			}
		}
	}()
	return p
}

// Stop halts the polling loop and waits for it to exit.
func (p *Poller) Stop() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	<-p.done
}
