package prof

import (
	"context"
	"runtime/pprof"
	"testing"
)

func TestQueryFPRoundTrip(t *testing.T) {
	if fp := QueryFP(context.Background()); fp != "" {
		t.Fatalf("empty context has fp %q", fp)
	}
	ctx := WithQueryFP(context.Background(), "abc123")
	if fp := QueryFP(ctx); fp != "abc123" {
		t.Fatalf("fp round-trip = %q", fp)
	}
}

// TestDoStampsLabels checks Do attaches the fingerprint and stage as
// pprof labels on the context it hands the body — which is what makes
// CPU samples of the body (and goroutines it spawns) attributable.
func TestDoStampsLabels(t *testing.T) {
	ctx := WithQueryFP(context.Background(), "fp-42")
	ran := false
	Do(ctx, "pqa", func(inner context.Context) {
		ran = true
		got := map[string]string{}
		pprof.ForLabels(inner, func(k, v string) bool {
			got[k] = v
			return true
		})
		if got[LabelQueryFP] != "fp-42" {
			t.Errorf("%s label = %q, want fp-42", LabelQueryFP, got[LabelQueryFP])
		}
		if got[LabelStage] != "pqa" {
			t.Errorf("%s label = %q, want pqa", LabelStage, got[LabelStage])
		}
	})
	if !ran {
		t.Fatal("Do did not run the body")
	}
}

// TestDoWithoutIdentityRunsPlain: no fingerprint, no trace, no stage —
// the body still runs (on the same context, unlabeled).
func TestDoWithoutIdentityRunsPlain(t *testing.T) {
	ran := false
	Do(context.Background(), "", func(inner context.Context) {
		ran = true
		pprof.ForLabels(inner, func(k, v string) bool {
			t.Errorf("unexpected label %s=%s", k, v)
			return true
		})
	})
	if !ran {
		t.Fatal("Do did not run the body")
	}
}
