// Package prof is the continuous-profiling and resource-attribution
// layer: pprof label propagation for per-fingerprint CPU accounting, a
// runtime/metrics poller, cadenced CPU/heap profile capture with
// bounded disk, a stdlib pprof-protobuf parser, and a per-query
// resource ledger threaded through ping → engine → dataflow → dfs.
//
// Everything here is stdlib-only and import-light (only internal/obs),
// so any layer of the system can attach to it without cycles.
package prof

import (
	"context"
	"sync/atomic"
	"time"
)

// Ledger accumulates the measured cost of one query run. All methods
// are safe for concurrent use from dataflow workers and are nil-safe:
// code paths without an attached ledger pay one pointer test.
//
// CPU here is task-execution wall time summed over dataflow tasks (Go
// exposes no per-goroutine CPU clock); profile-attributed CPU seconds
// come separately from label-aggregated pprof samples (CPUByLabel).
type Ledger struct {
	taskNanos        atomic.Int64
	rowsLoaded       atomic.Int64
	bytesDecoded     atomic.Int64
	storageBytesRead atomic.Int64
	cacheBytesPinned atomic.Int64
	dictDecodes      atomic.Int64
	peakRelationRows atomic.Int64
}

// Snapshot is a point-in-time copy of a ledger, suitable for stamping
// into wide events and workload aggregates.
type Snapshot struct {
	// TaskNanos is execution wall time summed across dataflow tasks run
	// on the query's behalf (parallel tasks sum, so this can exceed the
	// query's latency).
	TaskNanos int64
	// RowsLoaded counts sub-partition rows materialized for the query.
	RowsLoaded int64
	// BytesDecoded counts resident bytes of PairBlocks decoded on cache
	// misses for the query.
	BytesDecoded int64
	// StorageBytesRead counts bytes read from the dfs storage layer.
	StorageBytesRead int64
	// CacheBytesPinned is the peak total of PairBlock cache bytes the
	// query held referenced at once.
	CacheBytesPinned int64
	// DictDecodes counts dictionary ID→string decodes done to emit the
	// query's results.
	DictDecodes int64
	// PeakRelationRows is the largest relation cardinality materialized
	// while joining.
	PeakRelationRows int64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// AddTask records the wall duration of one executed dataflow task.
func (l *Ledger) AddTask(d time.Duration) {
	if l != nil {
		l.taskNanos.Add(int64(d))
	}
}

// AddRowsLoaded records sub-partition rows materialized.
func (l *Ledger) AddRowsLoaded(n int64) {
	if l != nil && n > 0 {
		l.rowsLoaded.Add(n)
	}
}

// AddBytesDecoded records resident bytes decoded on a cache miss.
func (l *Ledger) AddBytesDecoded(n int64) {
	if l != nil && n > 0 {
		l.bytesDecoded.Add(n)
	}
}

// AddStorageBytesRead records bytes read from storage.
func (l *Ledger) AddStorageBytesRead(n int64) {
	if l != nil && n > 0 {
		l.storageBytesRead.Add(n)
	}
}

// AddDictDecodes records dictionary decodes.
func (l *Ledger) AddDictDecodes(n int64) {
	if l != nil && n > 0 {
		l.dictDecodes.Add(n)
	}
}

// ObserveCacheBytesPinned raises the pinned-cache-bytes peak to n if
// it is the highest total observed so far.
func (l *Ledger) ObserveCacheBytesPinned(n int64) {
	if l != nil {
		raise(&l.cacheBytesPinned, n)
	}
}

// ObservePeakRelationRows raises the peak relation cardinality to n if
// it is the highest observed so far.
func (l *Ledger) ObservePeakRelationRows(n int64) {
	if l != nil {
		raise(&l.peakRelationRows, n)
	}
}

func raise(a *atomic.Int64, n int64) {
	for {
		cur := a.Load()
		if n <= cur || a.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Snapshot returns the current totals. A nil ledger snapshots to zero.
func (l *Ledger) Snapshot() Snapshot {
	if l == nil {
		return Snapshot{}
	}
	return Snapshot{
		TaskNanos:        l.taskNanos.Load(),
		RowsLoaded:       l.rowsLoaded.Load(),
		BytesDecoded:     l.bytesDecoded.Load(),
		StorageBytesRead: l.storageBytesRead.Load(),
		CacheBytesPinned: l.cacheBytesPinned.Load(),
		DictDecodes:      l.dictDecodes.Load(),
		PeakRelationRows: l.peakRelationRows.Load(),
	}
}

type ledgerKey struct{}

// WithLedger attaches a ledger to the context; every layer below
// (ping, engine, dataflow, dfs) accounts into it.
func WithLedger(ctx context.Context, l *Ledger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, ledgerKey{}, l)
}

// LedgerFrom returns the context's ledger, or nil (all Ledger methods
// accept a nil receiver).
func LedgerFrom(ctx context.Context) *Ledger {
	if ctx == nil {
		return nil
	}
	l, _ := ctx.Value(ledgerKey{}).(*Ledger)
	return l
}
