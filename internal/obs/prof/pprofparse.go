package prof

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// The pprof wire format is a gzipped protobuf (profile.proto). We need
// only a sliver of it — sample types, sample values, and string
// labels — so a hand-rolled varint walker keeps this stdlib-only.
//
// Field numbers used (from profile.proto):
//
//	Profile:   1 sample_type, 2 sample, 6 string_table,
//	           9 time_nanos, 10 duration_nanos, 11 period_type, 12 period
//	ValueType: 1 type (string index), 2 unit (string index)
//	Sample:    2 value (repeated int64), 3 label
//	Label:     1 key (string index), 2 str (string index), 3 num

// ValueType names one sample value dimension, e.g. {cpu, nanoseconds}.
type ValueType struct {
	Type string
	Unit string
}

// Sample is one profile sample: one value per sample type, plus its
// pprof labels.
type Sample struct {
	Values    []int64
	Labels    map[string]string
	NumLabels map[string]int64
}

// Profile is the parsed subset of a pprof profile.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	PeriodType    ValueType
	Period        int64
	TimeNanos     int64
	DurationNanos int64
}

// ParseProfile decodes a pprof profile (gzipped or raw protobuf).
// Only the first gzip member is read, so profiles written through
// sinks that append a trailing byte still parse.
func ParseProfile(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		gz, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		gz.Multistream(false)
		raw, err := io.ReadAll(gz)
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		data = raw
	}
	return parseProfileProto(data)
}

type rawValueType struct{ typ, unit int64 }

type rawLabel struct{ key, str, num int64 }

func parseProfileProto(data []byte) (*Profile, error) {
	var (
		strtab  []string
		types   []rawValueType
		period  rawValueType
		samples []struct {
			values []int64
			labels []rawLabel
		}
		prof Profile
	)
	d := protoDecoder{buf: data}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // sample_type
			msg, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			types = append(types, vt)
		case 2: // sample
			msg, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			var s struct {
				values []int64
				labels []rawLabel
			}
			sd := protoDecoder{buf: msg}
			for !sd.done() {
				f, w, err := sd.tag()
				if err != nil {
					return nil, err
				}
				switch f {
				case 2: // value
					if err := sd.int64s(w, &s.values); err != nil {
						return nil, err
					}
				case 3: // label
					lmsg, err := sd.bytes(w)
					if err != nil {
						return nil, err
					}
					lb, err := parseLabel(lmsg)
					if err != nil {
						return nil, err
					}
					s.labels = append(s.labels, lb)
				default:
					if err := sd.skip(w); err != nil {
						return nil, err
					}
				}
			}
			samples = append(samples, s)
		case 6: // string_table
			msg, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(msg))
		case 9:
			v, err := d.varintField(wire)
			if err != nil {
				return nil, err
			}
			prof.TimeNanos = int64(v)
		case 10:
			v, err := d.varintField(wire)
			if err != nil {
				return nil, err
			}
			prof.DurationNanos = int64(v)
		case 11:
			msg, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			if period, err = parseValueType(msg); err != nil {
				return nil, err
			}
		case 12:
			v, err := d.varintField(wire)
			if err != nil {
				return nil, err
			}
			prof.Period = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i int64) string {
		if i <= 0 || int(i) >= len(strtab) {
			return ""
		}
		return strtab[i]
	}
	for _, t := range types {
		prof.SampleTypes = append(prof.SampleTypes, ValueType{Type: str(t.typ), Unit: str(t.unit)})
	}
	prof.PeriodType = ValueType{Type: str(period.typ), Unit: str(period.unit)}
	for _, s := range samples {
		sm := Sample{Values: s.values}
		for _, lb := range s.labels {
			k := str(lb.key)
			if k == "" {
				continue
			}
			if lb.str != 0 {
				if sm.Labels == nil {
					sm.Labels = make(map[string]string)
				}
				sm.Labels[k] = str(lb.str)
			} else {
				if sm.NumLabels == nil {
					sm.NumLabels = make(map[string]int64)
				}
				sm.NumLabels[k] = lb.num
			}
		}
		prof.Samples = append(prof.Samples, sm)
	}
	return &prof, nil
}

func parseValueType(msg []byte) (rawValueType, error) {
	var vt rawValueType
	d := protoDecoder{buf: msg}
	for !d.done() {
		f, w, err := d.tag()
		if err != nil {
			return vt, err
		}
		switch f {
		case 1:
			v, err := d.varintField(w)
			if err != nil {
				return vt, err
			}
			vt.typ = int64(v)
		case 2:
			v, err := d.varintField(w)
			if err != nil {
				return vt, err
			}
			vt.unit = int64(v)
		default:
			if err := d.skip(w); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func parseLabel(msg []byte) (rawLabel, error) {
	var lb rawLabel
	d := protoDecoder{buf: msg}
	for !d.done() {
		f, w, err := d.tag()
		if err != nil {
			return lb, err
		}
		switch f {
		case 1:
			v, err := d.varintField(w)
			if err != nil {
				return lb, err
			}
			lb.key = int64(v)
		case 2:
			v, err := d.varintField(w)
			if err != nil {
				return lb, err
			}
			lb.str = int64(v)
		case 3:
			v, err := d.varintField(w)
			if err != nil {
				return lb, err
			}
			lb.num = int64(v)
		default:
			if err := d.skip(w); err != nil {
				return lb, err
			}
		}
	}
	return lb, nil
}

// ValueIndex returns the index of the named sample type (-1 if absent).
func (p *Profile) ValueIndex(typ string) int {
	for i, t := range p.SampleTypes {
		if t.Type == typ {
			return i
		}
	}
	return -1
}

// CPUByLabel sums the profile's CPU nanoseconds per value of the given
// label key. Samples without the label accumulate under unlabeled. For
// CPU profiles the "cpu" value (nanoseconds) is used; when absent (e.g.
// a synthetic profile) the last sample value is used.
func (p *Profile) CPUByLabel(key string) (byValue map[string]int64, unlabeled int64) {
	idx := p.ValueIndex("cpu")
	byValue = make(map[string]int64)
	for _, s := range p.Samples {
		i := idx
		if i < 0 {
			i = len(s.Values) - 1
		}
		if i < 0 || i >= len(s.Values) {
			continue
		}
		v := s.Values[i]
		if lv, ok := s.Labels[key]; ok && lv != "" {
			byValue[lv] += v
		} else {
			unlabeled += v
		}
	}
	return byValue, unlabeled
}

// protoDecoder is a minimal protobuf wire-format walker.
type protoDecoder struct {
	buf []byte
	pos int
}

var errTruncated = errors.New("prof: truncated profile")

func (d *protoDecoder) done() bool { return d.pos >= len(d.buf) }

func (d *protoDecoder) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.pos >= len(d.buf) {
			return 0, errTruncated
		}
		b := d.buf[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
	}
	return 0, errors.New("prof: varint overflow")
}

func (d *protoDecoder) tag() (field int, wire int, err error) {
	v, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// bytes returns a length-delimited field's payload.
func (d *protoDecoder) bytes(wire int) ([]byte, error) {
	if wire != 2 {
		return nil, fmt.Errorf("prof: wire type %d for bytes field", wire)
	}
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, errTruncated
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// varintField reads a varint scalar (wire type 0).
func (d *protoDecoder) varintField(wire int) (uint64, error) {
	if wire != 0 {
		return 0, fmt.Errorf("prof: wire type %d for varint field", wire)
	}
	return d.varint()
}

// int64s appends a repeated int64 field, handling both packed
// (length-delimited) and unpacked encodings.
func (d *protoDecoder) int64s(wire int, out *[]int64) error {
	switch wire {
	case 0:
		v, err := d.varint()
		if err != nil {
			return err
		}
		*out = append(*out, int64(v))
		return nil
	case 2:
		b, err := d.bytes(wire)
		if err != nil {
			return err
		}
		pd := protoDecoder{buf: b}
		for !pd.done() {
			v, err := pd.varint()
			if err != nil {
				return err
			}
			*out = append(*out, int64(v))
		}
		return nil
	default:
		return fmt.Errorf("prof: wire type %d for repeated int64", wire)
	}
}

func (d *protoDecoder) skip(wire int) error {
	switch wire {
	case 0:
		_, err := d.varint()
		return err
	case 1:
		if len(d.buf)-d.pos < 8 {
			return errTruncated
		}
		d.pos += 8
		return nil
	case 2:
		_, err := d.bytes(wire)
		return err
	case 5:
		if len(d.buf)-d.pos < 4 {
			return errTruncated
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("prof: unsupported wire type %d", wire)
	}
}
