package prof

import (
	"context"
	"runtime/pprof"

	"ping/internal/obs"
)

// Profile label keys stamped on query-execution goroutines. A CPU
// profile captured while queries run attributes samples to
// fingerprints via LabelQueryFP; CPUByLabel aggregates them back into
// per-fingerprint CPU seconds.
const (
	LabelQueryFP = "query_fp"
	LabelTraceID = "trace_id"
	LabelStage   = "stage"
)

type fpKey struct{}

// WithQueryFP records the query's workload fingerprint in the context
// so the execution layer (ping) can stamp it as a pprof label without
// depending on the workload package.
func WithQueryFP(ctx context.Context, fp string) context.Context {
	if fp == "" {
		return ctx
	}
	return context.WithValue(ctx, fpKey{}, fp)
}

// QueryFP returns the fingerprint attached by WithQueryFP ("" if none).
func QueryFP(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	fp, _ := ctx.Value(fpKey{}).(string)
	return fp
}

// Do runs fn with query_fp / trace_id / stage pprof labels set on the
// current goroutine; every goroutine spawned inside fn (the dataflow
// pool workers executing the query's stages) inherits them. The
// fingerprint comes from WithQueryFP and the trace ID from the
// context's span; empty values are omitted. With no labels to set it
// degrades to a plain call.
func Do(ctx context.Context, stage string, fn func(context.Context)) {
	kv := make([]string, 0, 6)
	if fp := QueryFP(ctx); fp != "" {
		kv = append(kv, LabelQueryFP, fp)
	}
	if tid := obs.TraceIDFromContext(ctx); tid != "" {
		kv = append(kv, LabelTraceID, tid)
	}
	if stage != "" {
		kv = append(kv, LabelStage, stage)
	}
	if len(kv) == 0 {
		fn(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels(kv...), fn)
}
