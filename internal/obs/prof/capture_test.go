package prof

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ping/internal/obs"
)

// burn spins without allocating so its CPU samples land in this frame
// under whatever pprof labels the goroutine carries.
//
//go:noinline
func burn(stop <-chan struct{}) uint64 {
	var acc uint64 = 1
	for i := 0; ; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
		if i%4096 == 0 {
			select {
			case <-stop:
				return acc
			default:
			}
		}
	}
}

// captureLabeledProfile burns CPU on two goroutines labeled with fp
// while one capture window runs, and returns the captured profile.
func captureLabeledProfile(t *testing.T, dir, fp string, window time.Duration) []byte {
	t.Helper()
	var (
		mu  sync.Mutex
		got []byte
	)
	c, err := StartCapture(CaptureConfig{
		Dir:       dir,
		Interval:  time.Hour, // the loop must not fire on its own mid-test
		CPUWindow: window,
		MaxFiles:  2,
		Registry:  obs.NewRegistry(),
		OnCPUProfile: func(data []byte) {
			mu.Lock()
			got = append([]byte(nil), data...)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := WithQueryFP(context.Background(), fp)
			Do(ctx, "pqa", func(context.Context) { burn(stop) })
		}()
	}
	c.CaptureOnce()
	close(stop)
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	return got
}

// TestCaptureAttributesCPUToFingerprint is the attribution acceptance
// path: CPU burned inside prof.Do under a query fingerprint shows up in
// the captured profile as samples labeled with that fingerprint, and
// the labeled share dominates — the only busy goroutines are labeled,
// so losing attribution would mean label propagation is broken.
func TestCaptureAttributesCPUToFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU profiling window in -short")
	}
	const fp = "fp-capture-test"
	// Profile sampling is statistical; allow a retry before declaring
	// attribution broken.
	for attempt := 0; ; attempt++ {
		data := captureLabeledProfile(t, t.TempDir(), fp, 400*time.Millisecond)
		if len(data) == 0 {
			t.Fatal("no profile captured")
		}
		p, err := ParseProfile(data)
		if err != nil {
			t.Fatalf("captured profile does not parse: %v", err)
		}
		byFP, unlabeled := p.CPUByLabel(LabelQueryFP)
		var labeled int64
		for _, ns := range byFP {
			labeled += ns
		}
		total := labeled + unlabeled
		if total > 0 && byFP[fp] > 0 && float64(labeled)/float64(total) >= 0.9 {
			// Also check the stage label rode along.
			byStage, _ := p.CPUByLabel(LabelStage)
			if byStage["pqa"] == 0 {
				t.Fatalf("stage label missing: %v", byStage)
			}
			return
		}
		if attempt >= 2 {
			t.Fatalf("labeled CPU %d of %d ns (fp share %d) after %d attempts — query execution samples are not carrying %s",
				labeled, total, byFP[fp], attempt+1, LabelQueryFP)
		}
	}
}

// TestCaptureBoundsDiskAndKeepsParseableGenerations proves the disk
// budget: repeated captures never hold more than MaxFiles rotated
// generations plus the active file per kind, and every generation file
// is one complete, independently parseable profile.
func TestCaptureBoundsDiskAndKeepsParseableGenerations(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU profiling windows in -short")
	}
	dir := t.TempDir()
	c, err := StartCapture(CaptureConfig{
		Dir:       dir,
		Interval:  time.Hour,
		CPUWindow: 30 * time.Millisecond,
		MaxFiles:  2,
		Registry:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.CaptureOnce()
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Dropped() != 0 {
		t.Errorf("capturer dropped %d profiles", c.Dropped())
	}

	for _, kind := range []string{"cpu.pprof", "heap.pprof"} {
		files, err := filepath.Glob(filepath.Join(dir, kind+"*"))
		if err != nil {
			t.Fatal(err)
		}
		// Active file + at most MaxFiles generations.
		if len(files) == 0 || len(files) > 3 {
			t.Errorf("%s: %d files on disk, want 1..3: %v", kind, len(files), files)
		}
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if len(data) == 0 {
				// The active file is empty right after a rotation boundary.
				continue
			}
			if _, err := ParseProfile(data); err != nil {
				t.Errorf("%s is not one parseable profile: %v", f, err)
			}
		}
	}

	// The report layer reads the same directory.
	files, err := CPUProfileFiles(dir)
	if err != nil || len(files) == 0 {
		t.Fatalf("CPUProfileFiles: %v (%d files)", err, len(files))
	}
	if _, _, err := AggregateCPUDir(dir, LabelQueryFP); err != nil {
		t.Errorf("AggregateCPUDir: %v", err)
	}
}

// TestAggregateCPUDirSumsAcrossGenerations captures labeled CPU twice
// (forcing a rotation) and checks the directory aggregation still
// attributes the fingerprint across generation files.
func TestAggregateCPUDirSumsAcrossGenerations(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU profiling windows in -short")
	}
	dir := t.TempDir()
	const fp = "fp-aggregate-test"
	for i := 0; i < 2; i++ {
		if data := captureLabeledProfile(t, dir, fp, 150*time.Millisecond); len(data) == 0 {
			t.Fatal("no profile captured")
		}
	}
	rows, _, err := AggregateCPUDir(dir, LabelQueryFP)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Value == fp && r.CPUNanos > 0 {
			return
		}
	}
	t.Fatalf("fingerprint %s missing from directory aggregation: %+v", fp, rows)
}

func TestAggregateCPUDirEmptyErrors(t *testing.T) {
	if _, _, err := AggregateCPUDir(t.TempDir(), LabelQueryFP); err == nil {
		t.Fatal("empty directory did not error")
	}
}
