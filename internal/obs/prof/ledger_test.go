package prof

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestLedgerAccumulatesAndSnapshots(t *testing.T) {
	l := NewLedger()
	l.AddTask(3 * time.Millisecond)
	l.AddTask(2 * time.Millisecond)
	l.AddRowsLoaded(10)
	l.AddRowsLoaded(5)
	l.AddBytesDecoded(100)
	l.AddStorageBytesRead(200)
	l.AddDictDecodes(7)
	l.ObserveCacheBytesPinned(50)
	l.ObserveCacheBytesPinned(30) // lower: peak must stay
	l.ObservePeakRelationRows(9)
	l.ObservePeakRelationRows(11)

	s := l.Snapshot()
	if s.TaskNanos != int64(5*time.Millisecond) {
		t.Errorf("TaskNanos = %d", s.TaskNanos)
	}
	if s.RowsLoaded != 15 || s.BytesDecoded != 100 || s.StorageBytesRead != 200 || s.DictDecodes != 7 {
		t.Errorf("sums wrong: %+v", s)
	}
	if s.CacheBytesPinned != 50 {
		t.Errorf("CacheBytesPinned = %d, want peak 50", s.CacheBytesPinned)
	}
	if s.PeakRelationRows != 11 {
		t.Errorf("PeakRelationRows = %d, want peak 11", s.PeakRelationRows)
	}
}

// TestLedgerNilSafe: every accounting call site runs with or without an
// attached ledger, so a nil receiver must be a no-op, not a panic.
func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	l.AddTask(time.Second)
	l.AddRowsLoaded(1)
	l.AddBytesDecoded(1)
	l.AddStorageBytesRead(1)
	l.AddDictDecodes(1)
	l.ObserveCacheBytesPinned(1)
	l.ObservePeakRelationRows(1)
	if s := l.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil ledger snapshot = %+v, want zero", s)
	}
}

func TestLedgerContextRoundTrip(t *testing.T) {
	if LedgerFrom(context.Background()) != nil {
		t.Fatal("empty context yielded a ledger")
	}
	if LedgerFrom(nil) != nil { //nolint:staticcheck // nil ctx is an explicit case
		t.Fatal("nil context yielded a ledger")
	}
	l := NewLedger()
	ctx := WithLedger(context.Background(), l)
	if LedgerFrom(ctx) != l {
		t.Fatal("ledger did not round-trip through the context")
	}
	if got := WithLedger(context.Background(), nil); LedgerFrom(got) != nil {
		t.Fatal("WithLedger(nil) attached something")
	}
}

// TestLedgerConcurrent drives all counters from parallel goroutines the
// way dataflow workers do; run with -race this proves the ledger is
// safely shared.
func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.AddTask(time.Microsecond)
				l.AddRowsLoaded(1)
				l.ObserveCacheBytesPinned(n*1000 + int64(j))
				l.ObservePeakRelationRows(n)
			}
		}(int64(i))
	}
	wg.Wait()
	s := l.Snapshot()
	if s.RowsLoaded != 8000 {
		t.Errorf("RowsLoaded = %d, want 8000", s.RowsLoaded)
	}
	if s.TaskNanos != int64(8000*time.Microsecond) {
		t.Errorf("TaskNanos = %d", s.TaskNanos)
	}
	if s.CacheBytesPinned != 7999 {
		t.Errorf("CacheBytesPinned peak = %d, want 7999", s.CacheBytesPinned)
	}
	if s.PeakRelationRows != 7 {
		t.Errorf("PeakRelationRows = %d, want 7", s.PeakRelationRows)
	}
}
