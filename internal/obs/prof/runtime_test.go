package prof

import (
	"runtime/metrics"
	"testing"
	"time"

	"ping/internal/obs"
)

func TestPollerPublishesRuntimeGauges(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPoller(reg, time.Hour)
	p.Poll()

	if v := reg.Gauge("runtime_goroutines", nil).Value(); v < 1 {
		t.Errorf("runtime_goroutines = %v, want >= 1", v)
	}
	if v := reg.Gauge("runtime_heap_bytes", nil).Value(); v <= 0 {
		t.Errorf("runtime_heap_bytes = %v, want > 0", v)
	}
	// GC counters exist (possibly zero in a fresh process); quantile
	// gauges must be registered for all three quantiles.
	for _, q := range []string{"0.5", "0.95", "0.99"} {
		if g := reg.Gauge("runtime_sched_latency_seconds", obs.Labels{"quantile": q}); g == nil {
			t.Errorf("missing sched latency quantile %s", q)
		}
	}
}

func TestPollerStartStop(t *testing.T) {
	obs.VerifyNoLeaks(t)
	reg := obs.NewRegistry()
	p := NewPoller(reg, time.Millisecond).Start()
	defer p.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for reg.Gauge("runtime_goroutines", nil).Value() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if v := reg.Gauge("runtime_goroutines", nil).Value(); v < 1 {
		t.Errorf("poller loop never published: runtime_goroutines = %v", v)
	}
	p.Stop() // double Stop is safe
}

func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{10, 80, 10},
		Buckets: []float64{0, 1, 2, 3},
	}
	if got := histQuantile(h, 0.5); got != 2 {
		t.Errorf("p50 = %v, want 2 (upper bound of the median bucket)", got)
	}
	if got := histQuantile(h, 0.99); got != 3 {
		t.Errorf("p99 = %v, want 3", got)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if got := histQuantile(empty, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}
