package prof

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// CPUProfileFiles lists the CPU profiles under a capture directory:
// the active cpu.pprof plus rotated cpu.pprof.<gen> generations,
// oldest first.
func CPUProfileFiles(dir string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "cpu.pprof*"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	// Generations sort lexically after the active file; order by
	// modification time so "oldest first" holds across gen boundaries.
	sort.Slice(files, func(i, j int) bool {
		fi, ei := os.Stat(files[i])
		fj, ej := os.Stat(files[j])
		if ei != nil || ej != nil {
			return files[i] < files[j]
		}
		return fi.ModTime().Before(fj.ModTime())
	})
	return files, nil
}

// LabelCPU is one row of a per-label CPU report.
type LabelCPU struct {
	Value    string
	CPUNanos int64
}

// AggregateCPUDir parses every CPU profile in dir and sums CPU
// nanoseconds per value of labelKey, descending. Unparseable files are
// skipped (a capture may be mid-write); unlabeled is CPU outside any
// labeled region.
func AggregateCPUDir(dir, labelKey string) (rows []LabelCPU, unlabeled int64, err error) {
	files, err := CPUProfileFiles(dir)
	if err != nil {
		return nil, 0, err
	}
	if len(files) == 0 {
		return nil, 0, fmt.Errorf("prof: no cpu.pprof* files in %s", dir)
	}
	total := make(map[string]int64)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			continue
		}
		p, err := ParseProfile(data)
		if err != nil {
			continue
		}
		by, un := p.CPUByLabel(labelKey)
		for k, v := range by {
			total[k] += v
		}
		unlabeled += un
	}
	for k, v := range total {
		rows = append(rows, LabelCPU{Value: k, CPUNanos: v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].CPUNanos != rows[j].CPUNanos {
			return rows[i].CPUNanos > rows[j].CPUNanos
		}
		return rows[i].Value < rows[j].Value
	})
	return rows, unlabeled, nil
}
