package slo

import (
	"math"
	"testing"
	"time"

	"ping/internal/obs"
)

// fakeClock is a settable time source for the engine.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	// A fixed instant aligned to a bucket boundary keeps the hand
	// arithmetic below exact.
	return &fakeClock{t: time.Date(2026, 1, 2, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func status(t *testing.T, e *Engine, name string) Status {
	t.Helper()
	for _, st := range e.Snapshot() {
		if st.Name == name {
			return st
		}
	}
	t.Fatalf("objective %q missing from snapshot", name)
	return Status{}
}

func window(t *testing.T, st Status, label string) WindowStats {
	t.Helper()
	for _, w := range st.Windows {
		if w.Window == label {
			return w
		}
	}
	t.Fatalf("window %q missing from %s", label, st.Name)
	return WindowStats{}
}

// TestBurnRateOracle checks the window arithmetic against hand-computed
// numbers: events placed in known buckets, totals and burn rates per
// window derived on paper.
func TestBurnRateOracle(t *testing.T) {
	clk := newFakeClock()
	obj := Availability("avail", 0.99) // error budget 0.01
	e := NewEngine(obs.NewRegistry(), obj).WithClock(clk.now)

	// t=0: 8 good, 2 bad.
	for i := 0; i < 8; i++ {
		e.Observe(Event{})
	}
	e.Observe(Event{Err: true})
	e.Observe(Event{Err: true})

	// t=+10m: 10 good. The first batch has left the 5m window but is
	// still inside 30m, 1h, and 6h.
	clk.advance(10 * time.Minute)
	for i := 0; i < 10; i++ {
		e.Observe(Event{})
	}

	st := status(t, e, "avail")
	checks := []struct {
		label     string
		good, bad int64
	}{
		{"5m", 10, 0},
		{"30m", 18, 2},
		{"1h", 18, 2},
		{"6h", 18, 2},
	}
	for _, c := range checks {
		w := window(t, st, c.label)
		if w.Good != c.good || w.Bad != c.bad {
			t.Errorf("%s window: good=%d bad=%d, want good=%d bad=%d",
				c.label, w.Good, w.Bad, c.good, c.bad)
		}
	}
	// bad fraction 2/20 = 0.1; burn = 0.1 / 0.01 = 10.
	w := window(t, st, "1h")
	if w.BadFraction != 0.1 {
		t.Errorf("1h bad fraction = %v, want 0.1", w.BadFraction)
	}
	if math.Abs(w.Burn-10) > 1e-9 {
		t.Errorf("1h burn = %v, want 10", w.Burn)
	}
	if w5 := window(t, st, "5m"); w5.Burn != 0 {
		t.Errorf("5m burn = %v, want 0 (bad events aged out)", w5.Burn)
	}

	// t=+7h: everything has aged out of every window.
	clk.advance(7 * time.Hour)
	st = status(t, e, "avail")
	for _, label := range []string{"5m", "30m", "1h", "6h"} {
		w := window(t, st, label)
		if w.Good != 0 || w.Bad != 0 || w.Burn != 0 {
			t.Errorf("%s window not empty after 7h idle: %+v", label, w)
		}
	}
}

// TestAlertStateMachine drives ok -> page -> warning -> ok purely
// through the event stream: the page fires when both fast windows burn
// hot, decays to warning once the 5m window recovers (the slow pair
// still remembers), and clears entirely when the bad events age past
// the 30m window — no timers, no manual reset.
func TestAlertStateMachine(t *testing.T) {
	clk := newFakeClock()
	obj := Availability("avail", 0.99) // all-bad burn = 1/0.01 = 100 >= 14.4
	reg := obs.NewRegistry()
	e := NewEngine(reg, obj).WithClock(clk.now)

	if st := status(t, e, "avail"); st.State != StateOK {
		t.Fatalf("initial state %q, want ok", st.State)
	}

	// A burst of failures: both the 5m and 1h windows see 100% bad.
	for i := 0; i < 20; i++ {
		e.Observe(Event{Err: true})
	}
	if st := status(t, e, "avail"); st.State != StatePage {
		t.Fatalf("state after failure burst = %q, want page", st.State)
	}

	// Failures age past the 5m window while good traffic flows: the page
	// clears (needs 5m AND 1h), but the slow pair (30m AND 6h) still
	// burns, so the objective decays to warning rather than ok.
	clk.advance(6 * time.Minute)
	for i := 0; i < 20; i++ {
		e.Observe(Event{})
	}
	if st := status(t, e, "avail"); st.State != StateWarning {
		t.Fatalf("state after 5m recovery = %q, want warning", st.State)
	}

	// Once the failures leave the 30m window too, the alert fully
	// clears — even though the 1h window still remembers them.
	clk.advance(25 * time.Minute)
	st := status(t, e, "avail")
	if st.State != StateOK {
		t.Fatalf("state after full recovery = %q, want ok", st.State)
	}
	if w := window(t, st, "1h"); w.Bad != 20 {
		t.Fatalf("1h window forgot the failures: %+v", w)
	}

	// The transitions were counted: ok->page, page->warning, warning->ok.
	for to, want := range map[string]int64{StatePage: 1, StateWarning: 1, StateOK: 1} {
		if v := reg.Counter("slo_alert_transitions_total", obs.Labels{"objective": "avail", "to": to}).Value(); v != want {
			t.Errorf("transitions to %s = %d, want %d", to, v, want)
		}
	}
	if v := reg.Gauge("slo_state", obs.Labels{"objective": "avail"}).Value(); v != 0 {
		t.Errorf("slo_state gauge = %v, want 0", v)
	}
}

// TestWarningState: a sustained moderate burn trips the slow pair
// without reaching the page thresholds.
func TestWarningState(t *testing.T) {
	clk := newFakeClock()
	// Target 0.9: budget 0.1. A 75% bad stream burns at 7.5 — above
	// WarnBurn (6), below PageBurn (14.4).
	e := NewEngine(obs.NewRegistry(), Availability("avail", 0.9)).WithClock(clk.now)
	for i := 0; i < 4; i++ {
		e.Observe(Event{Err: true})
		e.Observe(Event{Err: true})
		e.Observe(Event{Err: true})
		e.Observe(Event{})
	}
	st := status(t, e, "avail")
	if st.State != StateWarning {
		t.Fatalf("state = %q, want warning (burn %v)", st.State, window(t, st, "5m").Burn)
	}
}

func TestObjectiveClassifiers(t *testing.T) {
	cases := []struct {
		name string
		obj  *Objective
		ev   Event
		bad  bool
		skip bool
	}{
		{"latency good", Latency("l", 0.99, time.Second), Event{Latency: 500 * time.Millisecond}, false, false},
		{"latency bad", Latency("l", 0.99, time.Second), Event{Latency: 2 * time.Second}, true, false},
		{"latency skips errors", Latency("l", 0.99, time.Second), Event{Latency: 2 * time.Second, Err: true}, false, true},
		{"first-answer good", FirstAnswerSteps("f", 0.95, 3), Event{StepsToFirstAnswer: 2, Answers: 5}, false, false},
		{"first-answer bad late", FirstAnswerSteps("f", 0.95, 3), Event{StepsToFirstAnswer: 4, Answers: 5}, true, false},
		{"first-answer bad never", FirstAnswerSteps("f", 0.95, 3), Event{StepsToFirstAnswer: 0, Answers: 5}, true, false},
		{"first-answer skips empty", FirstAnswerSteps("f", 0.95, 3), Event{StepsToFirstAnswer: 0, Answers: 0}, false, true},
		{"first-answer skips errors", FirstAnswerSteps("f", 0.95, 3), Event{Answers: 5, Err: true}, false, true},
		{"coverage good", CoverageAtBudget("c", 0.95, 0.5), Event{Budgeted: true, Coverage: 0.8}, false, false},
		{"coverage bad", CoverageAtBudget("c", 0.95, 0.5), Event{Budgeted: true, Coverage: 0.2}, true, false},
		{"coverage skips unbudgeted", CoverageAtBudget("c", 0.95, 0.5), Event{Coverage: 0.2}, false, true},
		{"coverage skips errors", CoverageAtBudget("c", 0.95, 0.5), Event{Budgeted: true, Err: true}, false, true},
		{"availability good", Availability("a", 0.999), Event{}, false, false},
		{"availability bad error", Availability("a", 0.999), Event{Err: true}, true, false},
		{"availability bad degraded", Availability("a", 0.999), Event{Degraded: true}, true, false},
	}
	for _, c := range cases {
		bad, skip := c.obj.classify(c.ev)
		if bad != c.bad || skip != c.skip {
			t.Errorf("%s: classify = (bad=%v, skip=%v), want (bad=%v, skip=%v)",
				c.name, bad, skip, c.bad, c.skip)
		}
	}
}

// TestBurnNoErrorBudget: a target of exactly 1.0 has no budget; any bad
// event must report a huge finite burn, never Inf/NaN (JSON safety).
func TestBurnNoErrorBudget(t *testing.T) {
	frac, rate := burn(1.0, 9, 1)
	if frac != 0.1 || rate != 1e9 {
		t.Fatalf("burn(1.0, 9, 1) = (%v, %v), want (0.1, 1e9)", frac, rate)
	}
	if _, rate := burn(1.0, 10, 0); rate != 0 {
		t.Fatalf("clean traffic at target 1.0 burns %v, want 0", rate)
	}
	if frac, rate := burn(0.99, 0, 0); frac != 0 || rate != 0 {
		t.Fatalf("empty window = (%v, %v), want zeros", frac, rate)
	}
}

// TestRingBucketArithmetic exercises the ring directly: bucket
// alignment, wrap-around, clock going backwards, and full-span reset.
func TestRingBucketArithmetic(t *testing.T) {
	base := time.Date(2026, 1, 2, 12, 0, 0, 0, time.UTC)
	r := newRing(15*time.Second, 60*time.Second) // 4 buckets

	// Two events in the same bucket (7s apart, both truncate to base).
	r.add(base, false)
	r.add(base.Add(7*time.Second), true)
	if g, b := r.totals(base.Add(7*time.Second), 15*time.Second); g != 1 || b != 1 {
		t.Fatalf("same-bucket totals = (%d, %d), want (1, 1)", g, b)
	}

	// One event per subsequent bucket.
	r.add(base.Add(15*time.Second), false)
	r.add(base.Add(30*time.Second), false)
	r.add(base.Add(45*time.Second), false)
	if g, b := r.totals(base.Add(45*time.Second), 60*time.Second); g != 4 || b != 1 {
		t.Fatalf("full-window totals = (%d, %d), want (4, 1)", g, b)
	}
	// A 30s window sees only the last two buckets.
	if g, b := r.totals(base.Add(45*time.Second), 30*time.Second); g != 2 || b != 0 {
		t.Fatalf("30s totals = (%d, %d), want (2, 0)", g, b)
	}

	// Wrapping evicts the oldest bucket (the one with the bad event).
	r.add(base.Add(60*time.Second), false)
	if g, b := r.totals(base.Add(60*time.Second), 60*time.Second); g != 4 || b != 0 {
		t.Fatalf("post-wrap totals = (%d, %d), want (4, 0)", g, b)
	}

	// Clock going backwards lands in the current head bucket — no panic,
	// no rotation.
	r.add(base.Add(50*time.Second), true)
	if g, b := r.totals(base.Add(60*time.Second), 15*time.Second); g != 1 || b != 1 {
		t.Fatalf("backwards-clock totals = (%d, %d), want (1, 1)", g, b)
	}

	// A jump past the full span clears everything.
	r.add(base.Add(10*time.Minute), false)
	if g, b := r.totals(base.Add(10*time.Minute), 60*time.Second); g != 1 || b != 0 {
		t.Fatalf("post-jump totals = (%d, %d), want (1, 0)", g, b)
	}
}

func TestEngineNilSafe(t *testing.T) {
	var e *Engine
	e.Observe(Event{}) // must not panic
	if e.Snapshot() != nil {
		t.Fatal("nil engine snapshot != nil")
	}
}
