// Package slo evaluates service-level objectives over the progressive
// query stream: declarative objectives (first-answer latency in steps,
// coverage at budget exhaustion, end-to-end latency, availability) fed
// one Event per query lineage, tracked in rolling time windows, and
// alerted on with the multi-window multi-burn-rate policy from the
// Google SRE workbook.
//
// Burn rate is the ratio between the observed bad fraction and the
// objective's error budget (1 - target): burn 1.0 spends the budget
// exactly over the SLO period, burn 14.4 spends a 30-day budget in two
// days. An objective pages when the fast window pair (5m AND 1h) both
// burn at >= 14.4x, and warns when the slow pair (30m AND 6h) both burn
// at >= 6x; requiring the long and short window together gives fast
// detection without flapping, and the alert resets as soon as the short
// window recovers. State is a pure function of the current window
// counts, so recovery needs no timers.
//
// The engine is fed from pingd's per-lineage accounting and exports
// slo_* metrics into the obs registry; Snapshot backs the /slo endpoint
// and the dashboard panel.
package slo

import (
	"strconv"
	"sync"
	"time"

	"ping/internal/obs"
)

// Event is one completed query lineage, as the SLO engine sees it.
type Event struct {
	// Latency is the lineage's total wall time across segments.
	Latency time.Duration
	// StepsToFirstAnswer is the 1-based slice step that delivered the
	// first answer; 0 means the query finished with no answers.
	StepsToFirstAnswer int
	// Answers is the final answer count (to distinguish "no answer yet"
	// from "the answer is legitimately empty").
	Answers int
	// Coverage is the fraction of final answers delivered when the
	// client's budget was exhausted; meaningful only when Budgeted.
	Coverage float64
	// Budgeted reports whether the lineage ran under an explicit step
	// budget (the progressive contract the coverage objective guards).
	Budgeted bool
	// Err reports a failed lineage; Degraded one that skipped unreadable
	// sub-partitions.
	Err      bool
	Degraded bool
}

// Alert states, ordered by severity.
const (
	StateOK      = "ok"
	StateWarning = "warning"
	StatePage    = "page"
)

// The multi-window burn-rate policy (SRE workbook, 30-day period):
// page on fast 14.4x burn, warn on sustained 6x burn.
const (
	PageBurn = 14.4
	WarnBurn = 6.0

	pageShort = 5 * time.Minute
	pageLong  = 1 * time.Hour
	warnShort = 30 * time.Minute
	warnLong  = 6 * time.Hour

	bucketWidth = 15 * time.Second
)

// Objective is one SLI with a target. classify maps an event to
// good/bad, or skips it when the objective does not apply.
type Objective struct {
	Name        string
	Description string
	// Target is the good fraction the objective promises (e.g. 0.99).
	Target   float64
	classify func(Event) (bad, skip bool)

	ring      *ring
	prevState string
}

// Latency returns an objective promising that a target fraction of
// lineages complete within threshold. Errored lineages are skipped
// (availability owns them).
func Latency(name string, target float64, threshold time.Duration) *Objective {
	return &Objective{
		Name:        name,
		Description: "lineage completes within " + threshold.String(),
		Target:      target,
		classify: func(ev Event) (bool, bool) {
			if ev.Err {
				return false, true
			}
			return ev.Latency > threshold, false
		},
	}
}

// FirstAnswerSteps returns an objective promising that a target fraction
// of answer-bearing lineages deliver their first answer within maxSteps
// slice steps — the paper's steps-to-first-answer progressiveness
// signal. Lineages with no answers at all (legitimately empty results)
// and errored lineages are skipped.
func FirstAnswerSteps(name string, target float64, maxSteps int) *Objective {
	return &Objective{
		Name:        name,
		Description: "first answer within " + strconv.Itoa(maxSteps) + " slice steps",
		Target:      target,
		classify: func(ev Event) (bool, bool) {
			if ev.Err || ev.Answers == 0 {
				return false, true
			}
			return ev.StepsToFirstAnswer == 0 || ev.StepsToFirstAnswer > maxSteps, false
		},
	}
}

// CoverageAtBudget returns an objective promising that a target fraction
// of budgeted lineages reach at least minCoverage of their final answers
// when the budget runs out — the progressive contract: a bounded budget
// still buys a useful sound subset. Unbudgeted and errored lineages are
// skipped.
func CoverageAtBudget(name string, target, minCoverage float64) *Objective {
	return &Objective{
		Name:        name,
		Description: "coverage at budget exhaustion >= " + strconv.FormatFloat(minCoverage, 'g', -1, 64),
		Target:      target,
		classify: func(ev Event) (bool, bool) {
			if ev.Err || !ev.Budgeted {
				return false, true
			}
			return ev.Coverage < minCoverage, false
		},
	}
}

// Availability returns an objective counting errored or degraded
// lineages as bad — the "answers are complete and correct" promise.
func Availability(name string, target float64) *Objective {
	return &Objective{
		Name:        name,
		Description: "lineage completes without error or degradation",
		Target:      target,
		classify: func(ev Event) (bool, bool) {
			return ev.Err || ev.Degraded, false
		},
	}
}

// WindowStats is one rolling window's counts for one objective.
type WindowStats struct {
	Window      string  `json:"window"`
	Good        int64   `json:"good"`
	Bad         int64   `json:"bad"`
	BadFraction float64 `json:"bad_fraction"`
	// Burn is BadFraction divided by the error budget (1 - target).
	Burn float64 `json:"burn"`
}

// Status is one objective's state at snapshot time.
type Status struct {
	Name        string        `json:"name"`
	Description string        `json:"description"`
	Target      float64       `json:"target"`
	State       string        `json:"state"`
	Windows     []WindowStats `json:"windows"`
}

// Engine evaluates a set of objectives over the event stream.
type Engine struct {
	mu         sync.Mutex
	objectives []*Objective
	reg        *obs.Registry
	now        func() time.Time
}

// NewEngine builds an engine exporting slo_* metrics into reg (nil:
// obs.Default).
func NewEngine(reg *obs.Registry, objectives ...*Objective) *Engine {
	if reg == nil {
		reg = obs.Default
	}
	reg.Describe("slo_good_total", "events counted good per objective")
	reg.Describe("slo_bad_total", "events counted bad per objective")
	reg.Describe("slo_burn_rate", "current burn rate per objective and window")
	reg.Describe("slo_state", "alert state per objective (0 ok, 1 warning, 2 page)")
	reg.Describe("slo_alert_transitions_total", "alert state transitions per objective and target state")
	e := &Engine{reg: reg, now: time.Now}
	for _, o := range objectives {
		e.Add(o)
	}
	return e
}

// WithClock overrides the engine's time source (tests). Returns e.
func (e *Engine) WithClock(now func() time.Time) *Engine {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.now = now
	return e
}

// Add registers an objective. Safe any time.
func (e *Engine) Add(o *Objective) {
	e.mu.Lock()
	defer e.mu.Unlock()
	o.ring = newRing(bucketWidth, warnLong)
	o.prevState = StateOK
	e.objectives = append(e.objectives, o)
}

// Observe classifies ev under every objective. Nil-safe.
func (e *Engine) Observe(ev Event) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	for _, o := range e.objectives {
		bad, skip := o.classify(ev)
		if skip {
			continue
		}
		o.ring.add(now, bad)
		if bad {
			e.reg.Counter("slo_bad_total", obs.Labels{"objective": o.Name}).Inc()
		} else {
			e.reg.Counter("slo_good_total", obs.Labels{"objective": o.Name}).Inc()
		}
	}
}

// burn converts a window's counts into a burn rate against the
// objective's error budget. An objective with target >= 1 has no budget:
// any bad event is an infinite burn, represented by a huge finite rate
// so JSON stays valid.
func burn(target float64, good, bad int64) (badFraction, rate float64) {
	total := good + bad
	if total == 0 {
		return 0, 0
	}
	badFraction = float64(bad) / float64(total)
	budget := 1 - target
	if budget <= 0 {
		if bad > 0 {
			return badFraction, 1e9
		}
		return badFraction, 0
	}
	return badFraction, badFraction / budget
}

// Snapshot evaluates every objective's windows and alert state, updates
// the slo_burn_rate / slo_state / slo_alert_transitions_total metrics,
// and returns the statuses. Nil-safe (returns nil).
func (e *Engine) Snapshot() []Status {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	out := make([]Status, 0, len(e.objectives))
	for _, o := range e.objectives {
		st := Status{Name: o.Name, Description: o.Description, Target: o.Target, State: StateOK}
		burns := make(map[time.Duration]float64, 4)
		for _, w := range []struct {
			label string
			span  time.Duration
		}{
			{"5m", pageShort}, {"30m", warnShort}, {"1h", pageLong}, {"6h", warnLong},
		} {
			good, bad := o.ring.totals(now, w.span)
			frac, rate := burn(o.Target, good, bad)
			burns[w.span] = rate
			st.Windows = append(st.Windows, WindowStats{
				Window: w.label, Good: good, Bad: bad, BadFraction: frac, Burn: rate,
			})
			e.reg.Gauge("slo_burn_rate", obs.Labels{"objective": o.Name, "window": w.label}).Set(rate)
		}
		switch {
		case burns[pageShort] >= PageBurn && burns[pageLong] >= PageBurn:
			st.State = StatePage
		case burns[warnShort] >= WarnBurn && burns[warnLong] >= WarnBurn:
			st.State = StateWarning
		}
		if st.State != o.prevState {
			e.reg.Counter("slo_alert_transitions_total", obs.Labels{"objective": o.Name, "to": st.State}).Inc()
			o.prevState = st.State
		}
		e.reg.Gauge("slo_state", obs.Labels{"objective": o.Name}).Set(stateValue(st.State))
		out = append(out, st)
	}
	return out
}

func stateValue(state string) float64 {
	switch state {
	case StatePage:
		return 2
	case StateWarning:
		return 1
	default:
		return 0
	}
}

// ring is a rolling window of good/bad counters in time-aligned buckets
// of fixed width, spanning the longest window the engine evaluates.
type ring struct {
	width     time.Duration
	good, bad []int64
	head      int
	headStart time.Time // bucket boundary the head bucket starts at
}

func newRing(width, span time.Duration) *ring {
	n := int(span / width)
	if n < 1 {
		n = 1
	}
	return &ring{width: width, good: make([]int64, n), bad: make([]int64, n)}
}

// advance rotates the ring so head covers the bucket containing now.
// Buckets are aligned to multiples of width, so the same wall-clock
// instant always lands in the same bucket regardless of call order.
func (r *ring) advance(now time.Time) {
	start := now.Truncate(r.width)
	if r.headStart.IsZero() {
		r.headStart = start
		return
	}
	if !start.After(r.headStart) {
		return // same bucket, or clock went backwards: keep the head
	}
	steps := int(start.Sub(r.headStart) / r.width)
	if steps >= len(r.good) {
		for i := range r.good {
			r.good[i], r.bad[i] = 0, 0
		}
		r.headStart = start
		return
	}
	for i := 0; i < steps; i++ {
		r.head = (r.head + 1) % len(r.good)
		r.good[r.head], r.bad[r.head] = 0, 0
	}
	r.headStart = start
}

func (r *ring) add(now time.Time, bad bool) {
	r.advance(now)
	if bad {
		r.bad[r.head]++
	} else {
		r.good[r.head]++
	}
}

// totals sums the most recent window worth of buckets (including the
// current, partially filled one).
func (r *ring) totals(now time.Time, window time.Duration) (good, bad int64) {
	r.advance(now)
	n := int(window / r.width)
	if n > len(r.good) {
		n = len(r.good)
	}
	for i := 0; i < n; i++ {
		idx := (r.head - i + len(r.good)) % len(r.good)
		good += r.good[idx]
		bad += r.bad[idx]
	}
	return good, bad
}
