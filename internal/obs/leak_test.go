package obs

import (
	"strings"
	"testing"
	"time"
)

// TestVerifyNoLeaksClean runs the checker over a test that starts and
// cleanly finishes a goroutine: nothing to report.
func TestVerifyNoLeaksClean(t *testing.T) {
	VerifyNoLeaks(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// TestSettleLeaksDetects drives the comparison core directly: a
// goroutine born after the snapshot is reported while it lives and
// forgiven once it exits (settling).
func TestSettleLeaksDetects(t *testing.T) {
	before := leakSnapshot()

	stop := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-stop
	}()
	<-started

	extra := settleLeaks(before, 50*time.Millisecond)
	if len(extra) == 0 {
		t.Fatal("live goroutine born after the snapshot was not reported")
	}
	found := false
	for _, stack := range extra {
		if strings.Contains(stack, "TestSettleLeaksDetects") {
			found = true
		}
	}
	if !found {
		t.Errorf("leak report does not name the leaking test:\n%s", strings.Join(extra, "\n\n"))
	}

	// Once released, the goroutine exits within the settling grace and
	// the report comes back empty.
	close(stop)
	if extra := settleLeaks(before, 2*time.Second); len(extra) > 0 {
		t.Errorf("settled goroutine still reported:\n%s", strings.Join(extra, "\n\n"))
	}
}

// TestLeakSnapshotIgnoresHarness checks the snapshot drops the test
// harness's own goroutines, so a bare checker never false-positives on
// the runner.
func TestLeakSnapshotIgnoresHarness(t *testing.T) {
	for _, stack := range leakSnapshot() {
		for _, ig := range leakIgnores {
			if strings.Contains(stack, ig) {
				t.Errorf("snapshot kept an ignorable goroutine:\n%s", stack)
			}
		}
	}
}
