package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func buildTrace(t *testing.T) *Span {
	t.Helper()
	_, root := NewTrace(context.Background(), "query")
	root.SetAttr("fingerprint", "fp")
	c1 := root.StartChild("slice-1")
	c1.SetAttr("answers", 3)
	g := c1.StartChild("join")
	g.End()
	c1.End()
	c2 := root.StartChild("slice-2")
	c2.End()
	root.End()
	return root
}

func TestFlattenPreservesTree(t *testing.T) {
	root := buildTrace(t)
	recs := Flatten(root)
	if len(recs) != 4 {
		t.Fatalf("flattened %d spans, want 4", len(recs))
	}
	byID := make(map[string]SpanRecord)
	for _, r := range recs {
		if r.TraceID != root.TraceID().String() {
			t.Fatalf("span %s carries trace %s, want %s", r.Name, r.TraceID, root.TraceID())
		}
		byID[r.SpanID] = r
	}
	if recs[0].Name != "query" || recs[0].ParentSpanID != "" {
		t.Fatalf("root record wrong: %+v", recs[0])
	}
	for _, r := range recs[1:] {
		parent, ok := byID[r.ParentSpanID]
		if !ok {
			t.Fatalf("span %s has dangling parent %s", r.Name, r.ParentSpanID)
		}
		switch r.Name {
		case "slice-1", "slice-2":
			if parent.Name != "query" {
				t.Fatalf("%s parent is %s", r.Name, parent.Name)
			}
		case "join":
			if parent.Name != "slice-1" {
				t.Fatalf("join parent is %s", parent.Name)
			}
		}
	}
	if recs[1].Attrs["answers"] != float64(3) && recs[1].Attrs["answers"] != 3 {
		// Attrs round through interface{}; accept the int as stored.
		if v, ok := recs[1].Attrs["answers"].(int); !ok || v != 3 {
			t.Fatalf("slice-1 attrs = %v", recs[1].Attrs)
		}
	}
	if Flatten(nil) != nil {
		t.Fatal("Flatten(nil) != nil")
	}
}

func TestWriteSpanNDJSON(t *testing.T) {
	root := buildTrace(t)
	var buf bytes.Buffer
	if err := WriteSpanNDJSON(&buf, root); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if rec.TraceID == "" || rec.SpanID == "" || rec.Name == "" || rec.Start == "" {
			t.Fatalf("line %d incomplete: %+v", n, rec)
		}
		n++
	}
	if n != 4 {
		t.Fatalf("wrote %d lines, want 4", n)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r1 := buildTrace(t)
	r2 := buildTrace(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r1, r2, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("%d events, want 8 (two 4-span trees)", len(doc.TraceEvents))
	}
	tids := make(map[int]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %s has phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.Ts == nil || ev.Dur == nil || *ev.Ts < 0 || *ev.Dur < 0 {
			t.Fatalf("event %s has bad ts/dur", ev.Name)
		}
		if ev.Args["trace_id"] == "" || ev.Args["span_id"] == "" {
			t.Fatalf("event %s missing trace/span args", ev.Name)
		}
		tids[ev.Tid] = true
	}
	if len(tids) != 2 {
		t.Fatalf("expected 2 tid tracks (one per root), got %d", len(tids))
	}

	// Empty input still yields a valid, loadable document.
	buf.Reset()
	if err := WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil || doc.TraceEvents == nil {
		t.Fatalf("empty chrome trace invalid: %v (%s)", err, buf.String())
	}
}
