package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEventLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.ndjson")
	rf, err := OpenRotatingFile(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	log := NewEventLog(rf, 16, reg)

	want := WideEvent{
		TraceID:            "0123456789abcdef0123456789abcdef",
		Fingerprint:        "fp1",
		Shape:              "star",
		Canonical:          "SELECT ...",
		Query:              "SELECT * WHERE { ?x ?p ?y }",
		Epoch:              7,
		LayoutSig:          0xdeadbeef,
		Strategy:           "level",
		BudgetSteps:        2,
		Segments:           2,
		ResumedFrom:        "aabbcc",
		Steps:              3,
		StepMs:             []float64{1.5, 2.5, 3.5},
		Coverage:           []float64{0.2, 0.6, 1},
		StepsToFirstAnswer: 1,
		CoverageAtFirst:    0.2,
		Answers:            42,
		RowsLoaded:         1000,
		CacheHits:          3,
		CacheMisses:        5,
		Incremental:        true,
		Degraded:           true,
		MissingSubParts:    2,
		LatencyMs:          12.75,
	}
	if !log.Emit(want) {
		t.Fatal("Emit rejected")
	}
	if !log.Emit(WideEvent{Fingerprint: "fp2", Error: "boom"}) {
		t.Fatal("Emit rejected second event")
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := ReadWideEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events, want 2", len(events))
	}
	got := events[0]
	if got.Time == "" {
		t.Fatal("Emit did not stamp Time")
	}
	got.Time = ""
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if string(gj) != string(wj) {
		t.Fatalf("round trip mismatch:\n got %s\nwant %s", gj, wj)
	}
	if events[1].Error != "boom" {
		t.Fatalf("second event error = %q", events[1].Error)
	}
	if v := reg.Counter("wideevent_emitted_total", nil).Value(); v != 2 {
		t.Fatalf("wideevent_emitted_total = %d, want 2", v)
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var log *EventLog
	if log.Emit(WideEvent{}) {
		t.Fatal("nil EventLog accepted an event")
	}
	if log.Dropped() != 0 {
		t.Fatal("nil EventLog has drops")
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadWideEventsSkipsBlanksRejectsGarbage(t *testing.T) {
	good := "{\"fingerprint\":\"a\"}\n\n{\"fingerprint\":\"b\"}\n"
	events, err := ReadWideEvents(strings.NewReader(good))
	if err != nil || len(events) != 2 {
		t.Fatalf("got %d events, err %v", len(events), err)
	}
	if _, err := ReadWideEvents(bytes.NewReader([]byte("not json\n"))); err == nil {
		t.Fatal("malformed line accepted")
	}
}
