// Package worq reimplements the WORQ baseline (Madkour et al., ISWC'18)
// used in the paper's exact-query-answering comparison (§5.6):
// workload-driven reductions of vertically-partitioned RDF data, computed
// with Bloom filters. For each join pattern appearing in the workload
// (e.g. p1.subject = p2.subject) WORQ materializes the rows of VP_p1 whose
// join value *may* occur on the other side, according to the other side's
// Bloom filter. Reductions are cached: the first query pays the full VP
// scan, subsequent queries with the same join pattern read only the
// reduction. Bloom filters admit false positives, so reductions may carry
// extra rows; the exact join removes them, preserving correctness.
//
// Storage uses dictionary/RLE-compressed columns (WORQ's dictionary
// compression), giving the small reduction factors of Fig. 7.
package worq

import (
	"fmt"
	"sort"
	"time"

	"ping/internal/bloom"
	"ping/internal/columnar"
	"ping/internal/dataflow"
	"ping/internal/dfs"
	"ping/internal/engine"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// Side distinguishes the subject and object columns of a VP table.
type Side uint8

const (
	// Sub is the subject column.
	Sub Side = iota
	// Obj is the object column.
	Obj
)

func (s Side) String() string {
	if s == Sub {
		return "s"
	}
	return "o"
}

// joinSig identifies one cached reduction: rows of P1 whose Side1 value
// passes the Bloom filter of P2's Side2 column.
type joinSig struct {
	P1    rdf.ID
	Side1 Side
	P2    rdf.ID
	Side2 Side
}

func (j joinSig) path() string {
	return fmt.Sprintf("worq/red/p%d%s_p%d%s.pcol", j.P1, j.Side1, j.P2, j.Side2)
}

// Options configures preprocessing.
type Options struct {
	// FS is the destination file system (nil: fresh in-memory).
	FS *dfs.FS
	// Workload seeds the reduction cache: join patterns mined from these
	// queries are materialized during preprocessing. Queries outside the
	// workload still run — their reductions are computed and cached on
	// first use (WORQ's adaptive mode).
	Workload []*sparql.Query
	// FalsePositiveRate for the Bloom filters (default 0.01).
	FalsePositiveRate float64
	// Context supplies the dataflow executor for query evaluation.
	Context *dataflow.Context
	// DisableReductionCache makes every query recompute its Bloom
	// reductions from the base VP tables instead of reading cached
	// reduction files. This is the paper's §5.3 fairness configuration
	// ("we disabled caching of precomputed joins"): data access equals
	// the full vertical partitions and the filters only shrink the join
	// inputs.
	DisableReductionCache bool
}

// Store is a preprocessed WORQ dataset.
type Store struct {
	dict *rdf.Dict
	fs   *dfs.FS
	ctx  *dataflow.Context

	vpRows  map[rdf.ID]int
	blooms  map[rdf.ID][2]*bloom.Filter // per property: [Sub, Obj] filters
	redRows map[joinSig]int
	fpRate  float64
	noCache bool

	preprocessTime time.Duration
	storedBytes    int64
}

// Preprocess builds compressed VP tables, Bloom filters, and the
// workload's reductions.
func Preprocess(g *rdf.Graph, opts Options) (*Store, error) {
	start := time.Now()
	fs := opts.FS
	if fs == nil {
		fs = dfs.New(dfs.Config{})
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = dataflow.NewContext(1)
	}
	fp := opts.FalsePositiveRate
	if fp <= 0 || fp >= 1 {
		fp = 0.01
	}
	st := &Store{
		dict:    g.Dict,
		fs:      fs,
		ctx:     ctx,
		vpRows:  make(map[rdf.ID]int),
		blooms:  make(map[rdf.ID][2]*bloom.Filter),
		redRows: make(map[joinSig]int),
		fpRate:  fp,
		noCache: opts.DisableReductionCache,
	}

	vp := make(map[rdf.ID][]rdf.SOPair)
	for _, t := range g.Triples {
		vp[t.P] = append(vp[t.P], rdf.SOPair{S: t.S, O: t.O})
	}
	props := make([]rdf.ID, 0, len(vp))
	for p := range vp {
		props = append(props, p)
	}
	sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })

	for _, p := range props {
		rows := vp[p]
		n, err := st.writePairs(vpPath(p), rows)
		if err != nil {
			return nil, err
		}
		st.storedBytes += n
		st.vpRows[p] = len(rows)

		sf := bloom.NewWithEstimates(uint64(len(rows)), fp)
		of := bloom.NewWithEstimates(uint64(len(rows)), fp)
		for _, r := range rows {
			sf.Add(uint64(r.S))
			of.Add(uint64(r.O))
		}
		st.blooms[p] = [2]*bloom.Filter{sf, of}
		st.storedBytes += sf.SizeBytes() + of.SizeBytes()
	}

	// Materialize the workload's reductions.
	for _, q := range opts.Workload {
		for _, sig := range mineJoinSigs(q, st.dict) {
			if _, done := st.redRows[sig]; done {
				continue
			}
			if _, err := st.materialize(sig, vp[sig.P1]); err != nil {
				return nil, err
			}
		}
	}
	st.preprocessTime = time.Since(start)
	return st, nil
}

func vpPath(p rdf.ID) string { return fmt.Sprintf("worq/vp/p%d.pcol", p) }

// minePatternSigs extracts, for each pattern of the BGP, the join
// signatures that may reduce *that pattern's* table: one per other pattern
// sharing a variable with it. Keeping signatures per pattern matters for
// correctness — when the same property occurs in two patterns with
// different join partners, each occurrence may only be reduced by its own
// partners.
func minePatternSigs(q *sparql.Query, dict *rdf.Dict) [][]joinSig {
	type boundPat struct {
		p    rdf.ID
		ok   bool
		s, o string // variable names, "" if constant
	}
	pats := make([]boundPat, len(q.Patterns))
	for i, pat := range q.Patterns {
		if !pat.P.IsConcrete() {
			continue
		}
		id := dict.Lookup(pat.P)
		if id == rdf.NoID {
			continue
		}
		pats[i] = boundPat{p: id, ok: true}
		if pat.S.IsVar() {
			pats[i].s = pat.S.Value
		}
		if pat.O.IsVar() {
			pats[i].o = pat.O.Value
		}
	}
	out := make([][]joinSig, len(q.Patterns))
	for i, a := range pats {
		if !a.ok {
			continue
		}
		for j, b := range pats {
			if i == j || !b.ok {
				continue
			}
			if a.s != "" && a.s == b.s {
				out[i] = append(out[i], joinSig{a.p, Sub, b.p, Sub})
			}
			if a.s != "" && a.s == b.o {
				out[i] = append(out[i], joinSig{a.p, Sub, b.p, Obj})
			}
			if a.o != "" && a.o == b.s {
				out[i] = append(out[i], joinSig{a.p, Obj, b.p, Sub})
			}
			if a.o != "" && a.o == b.o {
				out[i] = append(out[i], joinSig{a.p, Obj, b.p, Obj})
			}
		}
	}
	return out
}

// mineJoinSigs flattens minePatternSigs; used to seed the cache from a
// workload.
func mineJoinSigs(q *sparql.Query, dict *rdf.Dict) []joinSig {
	var sigs []joinSig
	for _, ps := range minePatternSigs(q, dict) {
		sigs = append(sigs, ps...)
	}
	return sigs
}

// materialize computes and stores one reduction from in-memory VP rows.
func (st *Store) materialize(sig joinSig, base []rdf.SOPair) (int, error) {
	filter := st.blooms[sig.P2][sig.Side2]
	if filter == nil {
		return 0, fmt.Errorf("worq: no bloom filter for property %d", sig.P2)
	}
	var reduced []rdf.SOPair
	for _, r := range base {
		v := r.S
		if sig.Side1 == Obj {
			v = r.O
		}
		if filter.Contains(uint64(v)) {
			reduced = append(reduced, r)
		}
	}
	n, err := st.writePairs(sig.path(), reduced)
	if err != nil {
		return 0, err
	}
	st.storedBytes += n
	st.redRows[sig] = len(reduced)
	return len(reduced), nil
}

func (st *Store) writePairs(path string, rows []rdf.SOPair) (int64, error) {
	scol := make([]uint32, len(rows))
	ocol := make([]uint32, len(rows))
	for i, r := range rows {
		scol[i] = r.S
		ocol[i] = r.O
	}
	w, err := st.fs.Create(path)
	if err != nil {
		return 0, fmt.Errorf("worq: %w", err)
	}
	// Auto encoding: dictionary/RLE wherever it wins — WORQ's dictionary
	// compression policy.
	n, err := columnar.WriteColumns(w, [][]uint32{scol, ocol}, columnar.Auto)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, fmt.Errorf("worq: write %s: %w", path, err)
	}
	return n, nil
}

func (st *Store) readPairs(path string) ([]rdf.SOPair, error) {
	r, err := st.fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("worq: %w", err)
	}
	defer r.Close()
	cols, err := columnar.ReadColumns(r)
	if err != nil {
		return nil, fmt.Errorf("worq: read %s: %w", path, err)
	}
	if len(cols) != 2 || len(cols[0]) != len(cols[1]) {
		return nil, fmt.Errorf("worq: %s: malformed table", path)
	}
	rows := make([]rdf.SOPair, len(cols[0]))
	for i := range rows {
		rows[i] = rdf.SOPair{S: cols[0][i], O: cols[1][i]}
	}
	return rows, nil
}

// Name identifies the system in harness reports.
func (st *Store) Name() string { return "WORQ" }

// PreprocessTime returns the wall-clock preprocessing duration.
func (st *Store) PreprocessTime() time.Duration { return st.preprocessTime }

// StoredBytes returns the size of VP tables, Bloom filters, and cached
// reductions.
func (st *Store) StoredBytes() int64 { return st.storedBytes }

// CachedReductions returns how many reductions are materialized.
func (st *Store) CachedReductions() int { return len(st.redRows) }

// Query evaluates a BGP. Each pattern uses its smallest cached reduction
// when one matches a join in the query; otherwise it reads the full VP
// table, computes the reduction, and caches it for the next query.
func (st *Store) Query(q *sparql.Query) (*engine.Relation, *engine.Stats, error) {
	if len(q.Patterns) == 0 {
		return nil, nil, fmt.Errorf("worq: query has no patterns")
	}
	patSigs := minePatternSigs(q, st.dict)

	var extraLoaded int64 // VP rows read to build missing reductions
	inputs := make([]engine.PatternInput, len(q.Patterns))
	for i, pat := range q.Patterns {
		in := engine.PatternInput{Pattern: pat}
		if pat.P.IsConcrete() {
			p := st.dict.Lookup(pat.P)
			if p != rdf.NoID {
				if _, exists := st.vpRows[p]; exists {
					rows, loaded, err := st.patternRows(p, patSigs[i])
					if err != nil {
						return nil, nil, err
					}
					extraLoaded += loaded
					in.Groups = []engine.PropGroup{{Prop: p, Rows: rdf.RawPairs(rows)}}
				}
			}
		} else {
			for p := range st.vpRows {
				rows, err := st.readPairs(vpPath(p))
				if err != nil {
					return nil, nil, err
				}
				in.Groups = append(in.Groups, engine.PropGroup{Prop: p, Rows: rdf.RawPairs(rows)})
			}
		}
		inputs[i] = in
	}
	rel, stats, err := engine.Evaluate(q, inputs, st.dict, engine.Options{Context: st.ctx})
	if err != nil {
		return nil, nil, err
	}
	stats.InputRows += extraLoaded
	return rel, stats, nil
}

// patternRows returns the rows for one constant-predicate pattern: the
// smallest applicable cached reduction, or the VP table (building and
// caching reductions on the way). The second return value counts extra
// rows read beyond the returned ones (cache misses).
func (st *Store) patternRows(p rdf.ID, sigs []joinSig) ([]rdf.SOPair, int64, error) {
	if st.noCache {
		// §5.3 fairness mode: always scan the base table, reduce in
		// memory with the Bloom filters, never persist.
		base, err := st.readPairs(vpPath(p))
		if err != nil {
			return nil, 0, err
		}
		reduced := base
		for _, sig := range sigs {
			filter := st.blooms[sig.P2][sig.Side2]
			if filter == nil {
				continue
			}
			kept := reduced[:0:0]
			for _, r := range reduced {
				v := r.S
				if sig.Side1 == Obj {
					v = r.O
				}
				if filter.Contains(uint64(v)) {
					kept = append(kept, r)
				}
			}
			reduced = kept
		}
		return reduced, int64(len(base) - len(reduced)), nil
	}
	// Any missing reduction forces a base-table scan (and caches the
	// reduction for next time).
	var missing []joinSig
	for _, sig := range sigs {
		if _, ok := st.redRows[sig]; !ok {
			missing = append(missing, sig)
		}
	}
	scannedBase := int64(0)
	if len(missing) > 0 {
		base, err := st.readPairs(vpPath(p))
		if err != nil {
			return nil, 0, err
		}
		scannedBase = int64(len(base))
		for _, sig := range missing {
			if _, err := st.materialize(sig, base); err != nil {
				return nil, 0, err
			}
		}
	}
	// All reductions for this pattern are now cached; use the smallest
	// source (a reduction or the plain VP table).
	bestPath, bestRows := vpPath(p), st.vpRows[p]
	for _, sig := range sigs {
		if n := st.redRows[sig]; n < bestRows {
			bestPath, bestRows = sig.path(), n
		}
	}
	rows, err := st.readPairs(bestPath)
	if err != nil {
		return nil, 0, err
	}
	// Extra access beyond the returned rows: the base scan on cache miss.
	extra := scannedBase - int64(len(rows))
	if extra < 0 {
		extra = 0
	}
	return rows, extra, nil
}
