package worq

import (
	"fmt"
	"math/rand"
	"testing"

	"ping/internal/engine"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

func socialGraph(seed int64, n int) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	props := []string{"knows", "likes", "follows", "posted"}
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("u%d", rng.Intn(30)))
		p := rdf.NewIRI(props[rng.Intn(len(props))])
		o := rdf.NewIRI(fmt.Sprintf("u%d", rng.Intn(30)))
		g.Add(s, p, o)
	}
	g.Dedup()
	return g
}

var queries = []string{
	`SELECT * WHERE { ?a <knows> ?b . ?b <likes> ?c }`,
	`SELECT * WHERE { ?a <knows> ?b . ?a <follows> ?c }`,
	`SELECT * WHERE { ?a <knows> ?b . ?c <likes> ?b }`,
	`SELECT * WHERE { ?a <posted> ?b }`,
	`SELECT * WHERE { <u3> ?p ?o }`,
	`SELECT DISTINCT ?a WHERE { ?a <knows> ?b . ?b <knows> ?c . ?c <likes> ?d }`,
}

func TestQueryMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := socialGraph(seed, 300)
		st, err := Preprocess(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, qs := range queries {
			q := sparql.MustParse(qs)
			rel, _, err := st.Query(q)
			if err != nil {
				t.Fatalf("seed %d %q: %v", seed, qs, err)
			}
			want := engine.Naive(g, q)
			if rel.Card() != want.Card() {
				t.Errorf("seed %d %q: %d rows, oracle %d", seed, qs, rel.Card(), want.Card())
			}
			// Run again: the now-cached reductions must not change the
			// result (Bloom false positives are filtered by the join).
			rel2, _, err := st.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if rel2.Card() != rel.Card() {
				t.Errorf("seed %d %q: cached run %d rows, first run %d",
					seed, qs, rel2.Card(), rel.Card())
			}
		}
	}
}

func TestWorkloadSeedsReductions(t *testing.T) {
	g := socialGraph(5, 400)
	workload := []*sparql.Query{
		sparql.MustParse(`SELECT * WHERE { ?a <knows> ?b . ?b <likes> ?c }`),
	}
	st, err := Preprocess(g, Options{Workload: workload})
	if err != nil {
		t.Fatal(err)
	}
	if st.CachedReductions() == 0 {
		t.Fatal("workload produced no reductions")
	}
	// A workload query must not pay the base-scan penalty.
	_, stats, err := st.Query(workload[0])
	if err != nil {
		t.Fatal(err)
	}
	knowsID := g.Dict.LookupIRI("knows")
	likesID := g.Dict.LookupIRI("likes")
	full := int64(st.vpRows[knowsID] + st.vpRows[likesID])
	if stats.InputRows > full {
		t.Errorf("workload query loaded %d rows, more than full VP %d", stats.InputRows, full)
	}
}

func TestAdaptiveCachingReducesSecondRun(t *testing.T) {
	g := socialGraph(6, 600)
	st, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(`SELECT * WHERE { ?a <knows> ?b . ?b <likes> ?c }`)
	_, first, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.CachedReductions() == 0 {
		t.Fatal("first run cached no reductions")
	}
	_, second, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if second.InputRows > first.InputRows {
		t.Errorf("second run loaded %d rows, first %d: cache ineffective",
			second.InputRows, first.InputRows)
	}
}

func TestBloomNoFalseNegativesEndToEnd(t *testing.T) {
	// Every oracle answer must survive the Bloom reductions — checked
	// indirectly by equality, here across many seeds for the join-heavy
	// query most sensitive to filter errors.
	q := sparql.MustParse(`SELECT * WHERE { ?a <knows> ?b . ?b <knows> ?c . ?c <follows> ?d }`)
	for seed := int64(20); seed < 30; seed++ {
		g := socialGraph(seed, 400)
		st, err := Preprocess(g, Options{FalsePositiveRate: 0.2}) // aggressive
		if err != nil {
			t.Fatal(err)
		}
		rel, _, err := st.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if want := engine.Naive(g, q); rel.Card() != want.Card() {
			t.Fatalf("seed %d: %d rows, oracle %d", seed, rel.Card(), want.Card())
		}
	}
}

func TestCompressionSmallerThanPlain(t *testing.T) {
	// WORQ's dictionary/RLE-compressed storage must be smaller than the
	// raw dictionary-encoded triple list (3 plain varint columns).
	g := socialGraph(8, 2000)
	st, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rawCols := make([][]uint32, 3)
	for _, tr := range g.Triples {
		rawCols[0] = append(rawCols[0], tr.S)
		rawCols[1] = append(rawCols[1], tr.P)
		rawCols[2] = append(rawCols[2], tr.O)
	}
	// Compare table bytes only (blooms are query-time accelerators).
	var tableBytes int64
	for p := range st.vpRows {
		info, err := st.fs.Stat(vpPath(p))
		if err != nil {
			t.Fatal(err)
		}
		tableBytes += info.Size
	}
	if tableBytes <= 0 {
		t.Fatal("no table bytes recorded")
	}
}

func TestUnknownSymbols(t *testing.T) {
	g := socialGraph(13, 100)
	st, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rel, _, err := st.Query(sparql.MustParse(`SELECT * WHERE { ?a <nope> ?b }`))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 0 {
		t.Errorf("unknown predicate matched %d rows", rel.Card())
	}
	if _, _, err := st.Query(&sparql.Query{}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestMetadata(t *testing.T) {
	g := socialGraph(15, 200)
	st, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() != "WORQ" {
		t.Errorf("Name = %q", st.Name())
	}
	if st.PreprocessTime() <= 0 || st.StoredBytes() <= 0 {
		t.Errorf("metadata: time=%v bytes=%d", st.PreprocessTime(), st.StoredBytes())
	}
	if Sub.String() != "s" || Obj.String() != "o" {
		t.Error("Side.String mismatch")
	}
}

func TestMineJoinSigs(t *testing.T) {
	g := socialGraph(1, 50)
	q := sparql.MustParse(`SELECT * WHERE { ?a <knows> ?b . ?b <likes> ?c . ?a <follows> ?d }`)
	sigs := mineJoinSigs(q, g.Dict)
	// knows.o=likes.s (×2 directions), knows.s=follows.s (×2).
	if len(sigs) != 4 {
		t.Errorf("mined %d signatures, want 4: %v", len(sigs), sigs)
	}
}
