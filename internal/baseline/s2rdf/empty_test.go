package s2rdf

import (
	"testing"

	"ping/internal/rdf"
	"ping/internal/sparql"
)

func TestPreprocessEmptyGraph(t *testing.T) {
	st, err := Preprocess(rdf.NewGraph(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.StoredTableRows() != 0 || st.ExtVPTables() != 0 {
		t.Errorf("empty graph stored %d rows / %d tables", st.StoredTableRows(), st.ExtVPTables())
	}
	rel, _, err := st.Query(sparql.MustParse(`SELECT * WHERE { ?s <p> ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 0 {
		t.Errorf("query over empty store returned %d rows", rel.Card())
	}
}

func TestStoredTableRowsAccounting(t *testing.T) {
	g := sparseGraph(3, 400)
	st, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Stored rows = base VP rows (== triples) plus ExtVP duplicates.
	if st.StoredTableRows() < int64(g.Len()) {
		t.Errorf("StoredTableRows %d < triple count %d", st.StoredTableRows(), g.Len())
	}
	if st.ExtVPTables() == 0 {
		t.Error("no ExtVP tables stored on a sparse graph")
	}
	var ext int64
	for _, n := range st.extRows {
		ext += int64(n)
	}
	if st.StoredTableRows() != int64(g.Len())+ext {
		t.Errorf("StoredTableRows %d != triples %d + ext %d", st.StoredTableRows(), g.Len(), ext)
	}
}
