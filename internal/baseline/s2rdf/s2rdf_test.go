package s2rdf

import (
	"fmt"
	"math/rand"
	"testing"

	"ping/internal/engine"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

func socialGraph(seed int64, n int) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	props := []string{"knows", "likes", "follows", "posted"}
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("u%d", rng.Intn(30)))
		p := rdf.NewIRI(props[rng.Intn(len(props))])
		o := rdf.NewIRI(fmt.Sprintf("u%d", rng.Intn(30)))
		g.Add(s, p, o)
	}
	g.Dedup()
	return g
}

// sparseGraph spreads triples over many nodes so that semi-join
// reductions have something to prune.
func sparseGraph(seed int64, n int) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	props := []string{"knows", "likes", "follows", "posted"}
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("u%d", rng.Intn(400)))
		p := rdf.NewIRI(props[rng.Intn(len(props))])
		o := rdf.NewIRI(fmt.Sprintf("u%d", rng.Intn(400)))
		g.Add(s, p, o)
	}
	g.Dedup()
	return g
}

var queries = []string{
	`SELECT * WHERE { ?a <knows> ?b . ?b <likes> ?c }`,
	`SELECT * WHERE { ?a <knows> ?b . ?a <follows> ?c }`,
	`SELECT * WHERE { ?a <knows> ?b . ?c <likes> ?b }`,
	`SELECT * WHERE { ?a <posted> ?b }`,
	`SELECT * WHERE { <u3> ?p ?o }`,
	`SELECT DISTINCT ?a WHERE { ?a <knows> ?b . ?b <knows> ?c . ?c <likes> ?d }`,
}

func TestQueryMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := socialGraph(seed, 300)
		st, err := Preprocess(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, qs := range queries {
			q := sparql.MustParse(qs)
			rel, stats, err := st.Query(q)
			if err != nil {
				t.Fatalf("seed %d %q: %v", seed, qs, err)
			}
			want := engine.Naive(g, q)
			if rel.Card() != want.Card() {
				t.Errorf("seed %d %q: %d rows, oracle %d", seed, qs, rel.Card(), want.Card())
			}
			if rel.Card() > 0 && stats.InputRows == 0 {
				t.Errorf("seed %d %q: zero input rows", seed, qs)
			}
		}
	}
}

func TestExtVPReducesDataAccess(t *testing.T) {
	// A join query must load fewer rows with ExtVP than the plain VP
	// extents (that is S2RDF's whole point). Use a sparse graph so the
	// semi-joins actually reduce.
	g := sparseGraph(7, 500)
	st, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(`SELECT * WHERE { ?a <knows> ?b . ?b <likes> ?c }`)
	_, stats, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	knowsID := g.Dict.LookupIRI("knows")
	likesID := g.Dict.LookupIRI("likes")
	full := int64(st.vpRows[knowsID] + st.vpRows[likesID])
	if stats.InputRows >= full {
		t.Errorf("ExtVP loaded %d rows, plain VP would load %d", stats.InputRows, full)
	}
}

func TestExtVPStorageOverhead(t *testing.T) {
	// ExtVP duplicates data: stored bytes must exceed plain VP bytes.
	g := socialGraph(9, 500)
	withExt, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Threshold ~0 disables ExtVP storage (nothing is selective enough).
	vpOnly, err := Preprocess(g, Options{SelectivityThreshold: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if withExt.StoredBytes() <= vpOnly.StoredBytes() {
		t.Errorf("ExtVP bytes %d not above VP-only bytes %d",
			withExt.StoredBytes(), vpOnly.StoredBytes())
	}
	if len(vpOnly.extRows) != 0 {
		t.Errorf("threshold ~0 still stored %d ExtVP tables", len(vpOnly.extRows))
	}
}

func TestThresholdFallbackStillCorrect(t *testing.T) {
	g := socialGraph(11, 300)
	st, err := Preprocess(g, Options{SelectivityThreshold: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for _, qs := range queries {
		q := sparql.MustParse(qs)
		rel, _, err := st.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if want := engine.Naive(g, q); rel.Card() != want.Card() {
			t.Errorf("%q: %d rows, oracle %d", qs, rel.Card(), want.Card())
		}
	}
}

func TestUnknownSymbols(t *testing.T) {
	g := socialGraph(13, 100)
	st, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rel, _, err := st.Query(sparql.MustParse(`SELECT * WHERE { ?a <nope> ?b }`))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 0 {
		t.Errorf("unknown predicate matched %d rows", rel.Card())
	}
	if _, _, err := st.Query(&sparql.Query{}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestMetadata(t *testing.T) {
	g := socialGraph(15, 200)
	st, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() != "S2RDF" {
		t.Errorf("Name = %q", st.Name())
	}
	if st.PreprocessTime() <= 0 || st.StoredBytes() <= 0 {
		t.Errorf("metadata: time=%v bytes=%d", st.PreprocessTime(), st.StoredBytes())
	}
}

func TestJoinPosString(t *testing.T) {
	if SS.String() != "SS" || OS.String() != "OS" || SO.String() != "SO" {
		t.Error("JoinPos.String mismatch")
	}
}
