// Package s2rdf reimplements the S2RDF baseline (Schätzle et al.,
// PVLDB'16) used in the paper's exact-query-answering comparison (§5.6):
// vertical partitioning extended with precomputed semi-join reductions
// (ExtVP). For every ordered property pair (p1, p2) and join position
// combination (SS, OS, SO), the preprocessor materializes the subset of
// VP_p1 whose join-side value also occurs in VP_p2; at query time each
// triple pattern picks the smallest applicable table, so joins touch far
// fewer rows than plain vertical partitioning.
//
// The trade-off reproduced from the paper: query-time data access shrinks,
// but preprocessing is quadratic in the number of properties and the
// duplicated ExtVP tables push the storage footprint above the input size
// (reduction factor > 1 in Fig. 7).
package s2rdf

import (
	"fmt"
	"sort"
	"time"

	"ping/internal/columnar"
	"ping/internal/dataflow"
	"ping/internal/dfs"
	"ping/internal/engine"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// JoinPos identifies which columns of the two VP tables are matched by an
// ExtVP table.
type JoinPos uint8

const (
	// SS matches subject of p1 with subject of p2.
	SS JoinPos = iota
	// OS matches object of p1 with subject of p2.
	OS
	// SO matches subject of p1 with object of p2.
	SO
)

func (j JoinPos) String() string {
	switch j {
	case SS:
		return "SS"
	case OS:
		return "OS"
	case SO:
		return "SO"
	default:
		return fmt.Sprintf("JoinPos(%d)", uint8(j))
	}
}

// extKey identifies an ExtVP table: rows of P1 reduced by P2 at Pos.
type extKey struct {
	P1, P2 rdf.ID
	Pos    JoinPos
}

// Options configures preprocessing.
type Options struct {
	// FS is the destination file system (nil: fresh in-memory).
	FS *dfs.FS
	// SelectivityThreshold: ExtVP tables whose size relative to the base
	// VP table exceeds this are not stored (the query falls back to VP).
	// The S2RDF paper's default is 1.0 — store every strictly-reducing
	// table. Zero value means 1.0.
	SelectivityThreshold float64
	// Context supplies the dataflow executor for query evaluation.
	Context *dataflow.Context
}

// Store is a preprocessed S2RDF dataset.
type Store struct {
	dict *rdf.Dict
	fs   *dfs.FS
	ctx  *dataflow.Context

	vpRows  map[rdf.ID]int
	extRows map[extKey]int

	preprocessTime time.Duration
	storedBytes    int64
}

// Preprocess builds VP and ExtVP tables for the graph.
func Preprocess(g *rdf.Graph, opts Options) (*Store, error) {
	start := time.Now()
	fs := opts.FS
	if fs == nil {
		fs = dfs.New(dfs.Config{})
	}
	threshold := opts.SelectivityThreshold
	if threshold == 0 {
		threshold = 1.0
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = dataflow.NewContext(1)
	}
	st := &Store{
		dict:    g.Dict,
		fs:      fs,
		ctx:     ctx,
		vpRows:  make(map[rdf.ID]int),
		extRows: make(map[extKey]int),
	}

	// Vertical partitioning: one (S,O) table per property.
	vp := make(map[rdf.ID][]rdf.SOPair)
	for _, t := range g.Triples {
		vp[t.P] = append(vp[t.P], rdf.SOPair{S: t.S, O: t.O})
	}
	props := make([]rdf.ID, 0, len(vp))
	for p := range vp {
		props = append(props, p)
	}
	sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })

	for _, p := range props {
		n, err := st.writePairs(vpPath(p), vp[p])
		if err != nil {
			return nil, err
		}
		st.storedBytes += n
		st.vpRows[p] = len(vp[p])
	}

	// Precompute per-property subject and object value sets once.
	subjects := make(map[rdf.ID]map[rdf.ID]struct{}, len(vp))
	objects := make(map[rdf.ID]map[rdf.ID]struct{}, len(vp))
	for p, rows := range vp {
		ss := make(map[rdf.ID]struct{}, len(rows))
		os := make(map[rdf.ID]struct{}, len(rows))
		for _, r := range rows {
			ss[r.S] = struct{}{}
			os[r.O] = struct{}{}
		}
		subjects[p] = ss
		objects[p] = os
	}

	// ExtVP: semi-join reductions for every ordered pair and position.
	for _, p1 := range props {
		for _, p2 := range props {
			if p1 == p2 {
				continue
			}
			for _, pos := range []JoinPos{SS, OS, SO} {
				var other map[rdf.ID]struct{}
				var side func(rdf.SOPair) rdf.ID
				switch pos {
				case SS:
					other, side = subjects[p2], func(r rdf.SOPair) rdf.ID { return r.S }
				case OS:
					other, side = subjects[p2], func(r rdf.SOPair) rdf.ID { return r.O }
				case SO:
					other, side = objects[p2], func(r rdf.SOPair) rdf.ID { return r.S }
				}
				base := vp[p1]
				var reduced []rdf.SOPair
				for _, r := range base {
					if _, ok := other[side(r)]; ok {
						reduced = append(reduced, r)
					}
				}
				sel := float64(len(reduced)) / float64(len(base))
				if sel >= threshold || len(reduced) == len(base) {
					continue // not worth storing; VP serves the query
				}
				key := extKey{P1: p1, P2: p2, Pos: pos}
				n, err := st.writePairs(extPath(key), reduced)
				if err != nil {
					return nil, err
				}
				st.storedBytes += n
				st.extRows[key] = len(reduced)
			}
		}
	}
	st.preprocessTime = time.Since(start)
	return st, nil
}

func vpPath(p rdf.ID) string { return fmt.Sprintf("s2rdf/vp/p%d.pcol", p) }

func extPath(k extKey) string {
	return fmt.Sprintf("s2rdf/extvp/%s/p%d_p%d.pcol", k.Pos, k.P1, k.P2)
}

func (st *Store) writePairs(path string, rows []rdf.SOPair) (int64, error) {
	scol := make([]uint32, len(rows))
	ocol := make([]uint32, len(rows))
	for i, r := range rows {
		scol[i] = r.S
		ocol[i] = r.O
	}
	w, err := st.fs.Create(path)
	if err != nil {
		return 0, fmt.Errorf("s2rdf: %w", err)
	}
	n, err := columnar.WriteColumns(w, [][]uint32{scol, ocol}, columnar.Plain)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, fmt.Errorf("s2rdf: write %s: %w", path, err)
	}
	return n, nil
}

func (st *Store) readPairs(path string) ([]rdf.SOPair, error) {
	r, err := st.fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("s2rdf: %w", err)
	}
	defer r.Close()
	cols, err := columnar.ReadColumns(r)
	if err != nil {
		return nil, fmt.Errorf("s2rdf: read %s: %w", path, err)
	}
	if len(cols) != 2 || len(cols[0]) != len(cols[1]) {
		return nil, fmt.Errorf("s2rdf: %s: malformed table", path)
	}
	rows := make([]rdf.SOPair, len(cols[0]))
	for i := range rows {
		rows[i] = rdf.SOPair{S: cols[0][i], O: cols[1][i]}
	}
	return rows, nil
}

// Name identifies the system in harness reports.
func (st *Store) Name() string { return "S2RDF" }

// PreprocessTime returns the wall-clock preprocessing duration.
func (st *Store) PreprocessTime() time.Duration { return st.preprocessTime }

// StoredBytes returns the total size of VP + ExtVP tables, the numerator
// of the Fig. 7 reduction factor.
func (st *Store) StoredBytes() int64 { return st.storedBytes }

// StoredTableRows returns the total number of (s, o) rows across the VP
// and ExtVP tables. ExtVP duplicates VP rows, so this exceeds the triple
// count — the mechanism behind S2RDF's >1 reduction factor in Fig. 7.
func (st *Store) StoredTableRows() int64 {
	var n int64
	for _, rows := range st.vpRows {
		n += int64(rows)
	}
	for _, rows := range st.extRows {
		n += int64(rows)
	}
	return n
}

// ExtVPTables returns how many semi-join reduction tables were stored.
func (st *Store) ExtVPTables() int { return len(st.extRows) }

// tableChoice is the resolved input table for one pattern.
type tableChoice struct {
	path string
	prop rdf.ID
	rows int
}

// chooseTable picks the smallest stored table usable for pattern i: the
// best ExtVP reduction against any other pattern it joins with, falling
// back to the plain VP table.
func (st *Store) chooseTable(q *sparql.Query, i int) (tableChoice, bool) {
	pat := q.Patterns[i]
	if !pat.P.IsConcrete() {
		return tableChoice{}, false
	}
	p1 := st.dict.Lookup(pat.P)
	if p1 == rdf.NoID {
		return tableChoice{}, false
	}
	baseRows, ok := st.vpRows[p1]
	if !ok {
		return tableChoice{}, false
	}
	best := tableChoice{path: vpPath(p1), prop: p1, rows: baseRows}
	varOf := func(t rdf.Term) (string, bool) {
		if t.IsVar() {
			return t.Value, true
		}
		return "", false
	}
	for j, other := range q.Patterns {
		if j == i || !other.P.IsConcrete() {
			continue
		}
		p2 := st.dict.Lookup(other.P)
		if p2 == rdf.NoID {
			continue
		}
		// Determine the join position between pattern i and pattern j.
		var candidates []JoinPos
		if v1, ok1 := varOf(pat.S); ok1 {
			if v2, ok2 := varOf(other.S); ok2 && v1 == v2 {
				candidates = append(candidates, SS)
			}
			if v2, ok2 := varOf(other.O); ok2 && v1 == v2 {
				candidates = append(candidates, SO)
			}
		}
		if v1, ok1 := varOf(pat.O); ok1 {
			if v2, ok2 := varOf(other.S); ok2 && v1 == v2 {
				candidates = append(candidates, OS)
			}
		}
		for _, pos := range candidates {
			key := extKey{P1: p1, P2: p2, Pos: pos}
			if rows, ok := st.extRows[key]; ok && rows < best.rows {
				best = tableChoice{path: extPath(key), prop: p1, rows: rows}
			}
		}
	}
	return best, true
}

// Query evaluates a BGP. Each pattern loads its chosen table; joins run on
// the dataflow engine with the same smallest-first ordering as PING, so
// the comparison isolates the partitioning schemes.
func (st *Store) Query(q *sparql.Query) (*engine.Relation, *engine.Stats, error) {
	if len(q.Patterns) == 0 {
		return nil, nil, fmt.Errorf("s2rdf: query has no patterns")
	}
	inputs := make([]engine.PatternInput, len(q.Patterns))
	for i, pat := range q.Patterns {
		in := engine.PatternInput{Pattern: pat}
		if pat.P.IsConcrete() {
			choice, ok := st.chooseTable(q, i)
			if ok {
				rows, err := st.readPairs(choice.path)
				if err != nil {
					return nil, nil, err
				}
				in.Groups = []engine.PropGroup{{Prop: choice.prop, Rows: rdf.RawPairs(rows)}}
			}
		} else {
			// Variable predicate: load every VP table.
			for p := range st.vpRows {
				rows, err := st.readPairs(vpPath(p))
				if err != nil {
					return nil, nil, err
				}
				in.Groups = append(in.Groups, engine.PropGroup{Prop: p, Rows: rdf.RawPairs(rows)})
			}
		}
		inputs[i] = in
	}
	return engine.Evaluate(q, inputs, st.dict, engine.Options{Context: st.ctx})
}
