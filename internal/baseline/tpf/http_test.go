package tpf

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ping/internal/engine"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

func TestHTTPFragmentEndpoint(t *testing.T) {
	g := socialGraph(2, 300)
	srv := NewServer(g, 50)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/fragment?p=" + urlEscape("<knows>"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var doc fragmentDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.TotalCount == 0 || len(doc.Triples) == 0 {
		t.Fatalf("empty fragment: %+v", doc)
	}
	if len(doc.Triples) > 50 {
		t.Errorf("page exceeded size: %d", len(doc.Triples))
	}
	for _, row := range doc.Triples {
		if row[1] != "<knows>" {
			t.Fatalf("fragment leaked wrong predicate %q", row[1])
		}
	}
}

func TestHTTPFragmentBadRequests(t *testing.T) {
	g := socialGraph(2, 50)
	ts := httptest.NewServer(NewServer(g, 50).Handler())
	defer ts.Close()
	for _, u := range []string{
		"/fragment?page=-1",
		"/fragment?page=abc",
		"/fragment?s=%3Cunterminated",
	} {
		resp, err := http.Get(ts.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400", u, resp.Status)
		}
	}
}

func TestHTTPClientMatchesOracle(t *testing.T) {
	g := socialGraph(3, 400)
	srv := NewServer(g, 100)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := NewHTTPClient(ts.URL, ts.Client())
	queries := []string{
		`SELECT * WHERE { ?a <knows> ?b }`,
		`SELECT * WHERE { ?a <knows> ?b . ?b <likes> ?c }`,
		`SELECT DISTINCT ?a WHERE { ?a <knows> ?b . ?a <follows> ?c }`,
		`SELECT * WHERE { <u3> <knows> ?b }`,
	}
	for _, qs := range queries {
		q := sparql.MustParse(qs)
		rel, stats, err := client.Query(q)
		if err != nil {
			t.Fatalf("%q: %v", qs, err)
		}
		want := engine.Naive(g, q)
		if rel.Card() != want.Card() {
			t.Errorf("%q: HTTP client %d rows, oracle %d", qs, rel.Card(), want.Card())
		}
		if stats.Joins <= 0 || (rel.Card() > 0 && stats.InputRows == 0) {
			t.Errorf("%q: stats = %+v", qs, stats)
		}
	}
	// Client counters must track the server's.
	if client.Requests() != srv.Requests() {
		t.Errorf("client saw %d requests, server served %d", client.Requests(), srv.Requests())
	}
}

func TestHTTPClientLiteralTerms(t *testing.T) {
	// Literals with spaces/quotes must survive the wire format.
	g := socialGraph(4, 50)
	g.Add(
		g.Dict.Term(g.Triples[0].S),
		rdfIRI("name"),
		rdfLit(`Alice "The Great" O'Brien`),
	)
	g.Dedup()
	srv := NewServer(g, 50)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewHTTPClient(ts.URL, ts.Client())
	q := sparql.MustParse(`SELECT * WHERE { ?s <name> ?n }`)
	rel, _, err := client.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 1 {
		t.Fatalf("literal round trip lost the row: %d", rel.Card())
	}
}

// small term helpers for the literal test.
func rdfIRI(v string) rdf.Term { return rdf.NewIRI(v) }
func rdfLit(v string) rdf.Term { return rdf.NewLiteral(v) }
