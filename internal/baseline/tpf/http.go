package tpf

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"ping/internal/rdf"
	"ping/internal/sparql"
)

// HTTP transport for the Triple Pattern Fragments interface, so the
// restricted server can actually be deployed (the reference TPF design is
// a Web API). The fragment endpoint is
//
//	GET /fragment?s=<term>&p=<term>&o=<term>&page=N
//
// where each term parameter is an N-Triples-encoded term, omitted for a
// variable. Responses are JSON documents carrying the page's triples (in
// N-Triples term syntax), the total count, and the next-page flag — the
// hypermedia controls of the original interface.

// fragmentDoc is the wire format of one fragment page.
type fragmentDoc struct {
	Triples    [][3]string `json:"triples"`
	TotalCount int         `json:"totalCount"`
	HasNext    bool        `json:"hasNext"`
	Page       int         `json:"page"`
}

// Handler returns an http.Handler serving the server's fragments.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fragment", func(w http.ResponseWriter, r *http.Request) {
		pat, err := patternFromQuery(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		page := 0
		if p := r.URL.Query().Get("page"); p != "" {
			page, err = strconv.Atoi(p)
			if err != nil || page < 0 {
				http.Error(w, "bad page", http.StatusBadRequest)
				return
			}
		}
		frag := s.Request(pat, page)
		doc := fragmentDoc{
			TotalCount: frag.TotalCount,
			HasNext:    frag.HasNext,
			Page:       page,
		}
		for _, t := range frag.Triples {
			doc.Triples = append(doc.Triples, [3]string{
				s.dict.TermString(t.S), s.dict.TermString(t.P), s.dict.TermString(t.O),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(doc)
	})
	return mux
}

// patternFromQuery decodes the s/p/o query parameters into a pattern.
func patternFromQuery(r *http.Request) (sparql.TriplePattern, error) {
	parse := func(name, varName string) (rdf.Term, error) {
		raw := r.URL.Query().Get(name)
		if raw == "" {
			return rdf.NewVar(varName), nil
		}
		term, rest, err := rdf.ParseTermString(raw)
		if err != nil || rest != "" {
			return rdf.Term{}, fmt.Errorf("bad %s term %q", name, raw)
		}
		return term, nil
	}
	s, err := parse("s", "s")
	if err != nil {
		return sparql.TriplePattern{}, err
	}
	p, err := parse("p", "p")
	if err != nil {
		return sparql.TriplePattern{}, err
	}
	o, err := parse("o", "o")
	if err != nil {
		return sparql.TriplePattern{}, err
	}
	return sparql.TriplePattern{S: s, P: p, O: o}, nil
}

// httpSource fetches fragments from a remote endpoint, interning the wire
// terms into the client's dictionary.
type httpSource struct {
	base string
	http *http.Client
	dict *rdf.Dict
}

// NewHTTPClient returns a smart client that evaluates queries against a
// fragment endpoint over HTTP (e.g. an httptest.Server wrapping
// Server.Handler()). The client owns a fresh dictionary: results are
// bindings over it.
func NewHTTPClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	dict := rdf.NewDict()
	return &Client{src: httpSource{base: baseURL, http: hc, dict: dict}, dict: dict}
}

func (s httpSource) request(pat sparql.TriplePattern, page int) (Fragment, error) {
	u := fmt.Sprintf("%s/fragment?page=%d", s.base, page)
	add := func(name string, t rdf.Term) {
		if t.IsConcrete() {
			u += "&" + name + "=" + urlEscape(t.String())
		}
	}
	add("s", pat.S)
	add("p", pat.P)
	add("o", pat.O)
	resp, err := s.http.Get(u)
	if err != nil {
		return Fragment{}, fmt.Errorf("tpf: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Fragment{}, fmt.Errorf("tpf: server returned %s", resp.Status)
	}
	var doc fragmentDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return Fragment{}, fmt.Errorf("tpf: decode: %w", err)
	}
	frag := Fragment{TotalCount: doc.TotalCount, HasNext: doc.HasNext}
	for _, row := range doc.Triples {
		var t rdf.Triple
		for i, raw := range row {
			term, rest, err := rdf.ParseTermString(raw)
			if err != nil || rest != "" {
				return Fragment{}, fmt.Errorf("tpf: bad wire term %q", raw)
			}
			id := s.dict.Encode(term)
			switch i {
			case 0:
				t.S = id
			case 1:
				t.P = id
			case 2:
				t.O = id
			}
		}
		frag.Triples = append(frag.Triples, t)
	}
	return frag, nil
}

// urlEscape percent-encodes a term for use in a query parameter.
func urlEscape(s string) string {
	const hex = "0123456789ABCDEF"
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' || c == '~' {
			out = append(out, c)
		} else {
			out = append(out, '%', hex[c>>4], hex[c&0xf])
		}
	}
	return string(out)
}
