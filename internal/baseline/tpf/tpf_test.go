package tpf

import (
	"fmt"
	"math/rand"
	"testing"

	"ping/internal/engine"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

func socialGraph(seed int64, n int) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	props := []string{"knows", "likes", "follows"}
	for i := 0; i < n; i++ {
		g.Add(
			rdf.NewIRI(fmt.Sprintf("u%d", rng.Intn(80))),
			rdf.NewIRI(props[rng.Intn(len(props))]),
			rdf.NewIRI(fmt.Sprintf("u%d", rng.Intn(80))),
		)
	}
	g.Dedup()
	return g
}

func TestServerPagination(t *testing.T) {
	g := socialGraph(1, 500)
	srv := NewServer(g, 50)
	pat := sparql.TriplePattern{S: rdf.NewVar("s"), P: rdf.NewIRI("knows"), O: rdf.NewVar("o")}
	frag := srv.Request(pat, 0)
	if frag.TotalCount == 0 {
		t.Fatal("no knows triples")
	}
	if len(frag.Triples) > 50 {
		t.Errorf("page has %d triples, limit 50", len(frag.Triples))
	}
	// Walk all pages; total must match TotalCount with no duplicates.
	seen := make(map[rdf.Triple]bool)
	page := 0
	f := frag
	for {
		for _, tr := range f.Triples {
			if seen[tr] {
				t.Fatalf("duplicate triple across pages: %v", tr)
			}
			seen[tr] = true
		}
		if !f.HasNext {
			break
		}
		page++
		f = srv.Request(pat, page)
	}
	if len(seen) != frag.TotalCount {
		t.Errorf("paged %d triples, TotalCount %d", len(seen), frag.TotalCount)
	}
}

func TestServerConstantPatterns(t *testing.T) {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	g.Add(iri("a"), iri("p"), iri("b"))
	g.Add(iri("a"), iri("q"), iri("c"))
	g.Add(iri("b"), iri("p"), iri("c"))
	srv := NewServer(g, 10)
	cases := []struct {
		pat  sparql.TriplePattern
		want int
	}{
		{sparql.TriplePattern{S: iri("a"), P: rdf.NewVar("p"), O: rdf.NewVar("o")}, 2},
		{sparql.TriplePattern{S: rdf.NewVar("s"), P: iri("p"), O: rdf.NewVar("o")}, 2},
		{sparql.TriplePattern{S: rdf.NewVar("s"), P: rdf.NewVar("p"), O: iri("c")}, 2},
		{sparql.TriplePattern{S: iri("a"), P: iri("p"), O: iri("b")}, 1},
		{sparql.TriplePattern{S: iri("zz"), P: iri("p"), O: rdf.NewVar("o")}, 0},
		{sparql.TriplePattern{S: rdf.NewVar("s"), P: rdf.NewVar("p"), O: rdf.NewVar("o")}, 3},
	}
	for _, c := range cases {
		if got := srv.Request(c.pat, 0).TotalCount; got != c.want {
			t.Errorf("Request(%v) count = %d, want %d", c.pat, got, c.want)
		}
	}
}

func TestClientMatchesOracle(t *testing.T) {
	queries := []string{
		`SELECT * WHERE { ?a <knows> ?b }`,
		`SELECT * WHERE { ?a <knows> ?b . ?b <likes> ?c }`,
		`SELECT * WHERE { ?a <knows> ?b . ?a <follows> ?c }`,
		`SELECT DISTINCT ?a WHERE { ?a <knows> ?b . ?b <knows> ?c }`,
		`SELECT * WHERE { <u3> <knows> ?b . ?b <likes> ?c }`,
		`SELECT * WHERE { ?a <knows> <u5> }`,
	}
	for seed := int64(0); seed < 3; seed++ {
		g := socialGraph(seed, 400)
		client := NewClient(NewServer(g, 100))
		for _, qs := range queries {
			q := sparql.MustParse(qs)
			rel, stats, err := client.Query(q)
			if err != nil {
				t.Fatalf("seed %d %q: %v", seed, qs, err)
			}
			want := engine.Naive(g, q)
			if rel.Card() != want.Card() {
				t.Errorf("seed %d %q: client %d rows, oracle %d", seed, qs, rel.Card(), want.Card())
			}
			if stats.Joins <= 0 {
				t.Errorf("seed %d %q: no requests recorded", seed, qs)
			}
		}
	}
}

func TestClientRequestExplosion(t *testing.T) {
	// The defining TPF cost: a join makes one request per candidate
	// binding, so requests scale with intermediate results.
	g := socialGraph(5, 600)
	srv := NewServer(g, 100)
	client := NewClient(srv)
	q := sparql.MustParse(`SELECT * WHERE { ?a <knows> ?b . ?b <likes> ?c }`)
	srv.ResetMetrics()
	_, stats, err := client.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	knowsCount := srv.Request(sparql.TriplePattern{
		S: rdf.NewVar("s"), P: rdf.NewIRI("knows"), O: rdf.NewVar("o"),
	}, 0).TotalCount
	if int64(knowsCount) > stats.InputRows {
		t.Errorf("client shipped %d triples < knows extent %d", stats.InputRows, knowsCount)
	}
	if stats.Joins < knowsCount {
		t.Errorf("requests = %d, want at least one per binding (%d)", stats.Joins, knowsCount)
	}
}

func TestClientFiltersAndLimit(t *testing.T) {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	for i := 0; i < 10; i++ {
		g.Add(iri(fmt.Sprintf("s%d", i)), iri("v"),
			rdf.NewTypedLiteral(fmt.Sprintf("%d", i), "http://www.w3.org/2001/XMLSchema#integer"))
	}
	client := NewClient(NewServer(g, 100))
	q := sparql.MustParse(`SELECT * WHERE { ?s <v> ?x . FILTER (?x >= 7) }`)
	rel, _, err := client.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 3 {
		t.Errorf("filtered rows = %d, want 3", rel.Card())
	}
	q2 := sparql.MustParse(`SELECT * WHERE { ?s <v> ?x } LIMIT 4`)
	rel2, _, err := client.Query(q2)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Card() != 4 {
		t.Errorf("limited rows = %d, want 4", rel2.Card())
	}
}

func TestClientRejectsUnsupported(t *testing.T) {
	g := socialGraph(1, 50)
	client := NewClient(NewServer(g, 100))
	if _, _, err := client.Query(sparql.MustParse(`SELECT * WHERE { ?a <knows>+ ?b }`)); err == nil {
		t.Error("path query accepted")
	}
	if _, _, err := client.Query(&sparql.Query{}); err == nil {
		t.Error("empty query accepted")
	}
}
