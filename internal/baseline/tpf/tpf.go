// Package tpf implements a Triple Pattern Fragments server and its smart
// client (Verborgh et al., JWS'16) — the "restricted SPARQL server"
// family the paper discusses in §2.4 and proposes comparing against in
// §6.2. The server answers only *single triple pattern* requests,
// paginated, so it always terminates and stays responsive; all joins run
// in the client, which issues one request per page and — for nested-loop
// joins — one request per candidate binding. The experiment harness
// contrasts this with PING: PING needs no smart client and ships no
// intermediate results, which is exactly the advantage the paper claims.
package tpf

import (
	"fmt"

	"time"

	"ping/internal/engine"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// PageSize is the default fragment page size (the reference TPF server
// uses 100).
const PageSize = 100

// Server exposes a graph through the Triple Pattern Fragments interface.
type Server struct {
	dict    *rdf.Dict
	triples []rdf.Triple
	byP     map[rdf.ID][]int // triple indexes per predicate
	byS     map[rdf.ID][]int
	byO     map[rdf.ID][]int

	pageSize int
	// Latency is added to every request, modelling the HTTP round trip
	// that makes request counts matter (0 in unit tests).
	Latency time.Duration

	requests       int64
	triplesShipped int64
}

// NewServer indexes the graph for fragment lookups.
func NewServer(g *rdf.Graph, pageSize int) *Server {
	if pageSize <= 0 {
		pageSize = PageSize
	}
	s := &Server{
		dict:     g.Dict,
		triples:  g.Triples,
		byP:      make(map[rdf.ID][]int),
		byS:      make(map[rdf.ID][]int),
		byO:      make(map[rdf.ID][]int),
		pageSize: pageSize,
	}
	for i, t := range g.Triples {
		s.byP[t.P] = append(s.byP[t.P], i)
		s.byS[t.S] = append(s.byS[t.S], i)
		s.byO[t.O] = append(s.byO[t.O], i)
	}
	return s
}

// Fragment is one page of a triple-pattern fragment plus its metadata.
type Fragment struct {
	// Triples is the page content.
	Triples []rdf.Triple
	// TotalCount estimates the full fragment size (exact here).
	TotalCount int
	// HasNext reports whether another page exists.
	HasNext bool
}

// Request answers a single triple-pattern request: concrete terms fix a
// position, variables match anything. Pages are 0-based.
func (s *Server) Request(pat sparql.TriplePattern, page int) Fragment {
	s.requests++
	if s.Latency > 0 {
		time.Sleep(s.Latency)
	}
	matches := s.match(pat)
	total := len(matches)
	lo := page * s.pageSize
	hi := lo + s.pageSize
	if lo > total {
		lo = total
	}
	if hi > total {
		hi = total
	}
	out := make([]rdf.Triple, 0, hi-lo)
	for _, idx := range matches[lo:hi] {
		out = append(out, s.triples[idx])
	}
	s.triplesShipped += int64(len(out))
	return Fragment{Triples: out, TotalCount: total, HasNext: hi < total}
}

// match returns the candidate triple indexes for a pattern, using the
// most selective single index then filtering.
func (s *Server) match(pat sparql.TriplePattern) []int {
	var candidates []int
	restricted := false
	consider := func(idx []int, ok bool) {
		if !ok {
			return
		}
		if !restricted || len(idx) < len(candidates) {
			candidates = idx
			restricted = true
		}
	}
	if pat.S.IsConcrete() {
		id := s.dict.Lookup(pat.S)
		if id == rdf.NoID {
			return nil
		}
		consider(s.byS[id], true)
	}
	if pat.P.IsConcrete() {
		id := s.dict.Lookup(pat.P)
		if id == rdf.NoID {
			return nil
		}
		consider(s.byP[id], true)
	}
	if pat.O.IsConcrete() {
		id := s.dict.Lookup(pat.O)
		if id == rdf.NoID {
			return nil
		}
		consider(s.byO[id], true)
	}
	if !restricted {
		candidates = make([]int, len(s.triples))
		for i := range candidates {
			candidates[i] = i
		}
		return candidates
	}
	out := candidates[:0:0]
	for _, i := range candidates {
		if s.matches(pat, s.triples[i]) {
			out = append(out, i)
		}
	}
	return out
}

func (s *Server) matches(pat sparql.TriplePattern, t rdf.Triple) bool {
	check := func(term rdf.Term, id rdf.ID) bool {
		return term.IsVar() || s.dict.Lookup(term) == id
	}
	return check(pat.S, t.S) && check(pat.P, t.P) && check(pat.O, t.O)
}

// Requests returns the number of requests served.
func (s *Server) Requests() int64 { return s.requests }

// TriplesShipped returns the total triples sent to clients.
func (s *Server) TriplesShipped() int64 { return s.triplesShipped }

// ResetMetrics zeroes the counters.
func (s *Server) ResetMetrics() {
	s.requests = 0
	s.triplesShipped = 0
}

// fragmentSource abstracts where fragments come from: the in-process
// server directly, or a fragment endpoint over HTTP.
type fragmentSource interface {
	// request fetches one page of the fragment for a pattern whose terms
	// are expressed over the client's dictionary.
	request(pat sparql.TriplePattern, page int) (Fragment, error)
}

// serverSource serves fragments straight from an in-process Server.
type serverSource struct {
	server *Server
}

func (s serverSource) request(pat sparql.TriplePattern, page int) (Fragment, error) {
	return s.server.Request(pat, page), nil
}

// Client is the smart TPF client: it evaluates BGPs with the reference
// nested-loop strategy — fetch the smallest fragment completely, then for
// each solution substitute its bindings into the remaining patterns and
// recurse, asking the source one (count) request per candidate pattern at
// every step. The same client drives both the in-process server and the
// HTTP endpoint (see NewHTTPClient).
type Client struct {
	src  fragmentSource
	dict *rdf.Dict

	requests       int64
	triplesFetched int64
}

// NewClient connects a client to an in-process server.
func NewClient(server *Server) *Client {
	return &Client{src: serverSource{server}, dict: server.dict}
}

// Requests returns the number of fragment requests this client issued.
func (c *Client) Requests() int64 { return c.requests }

// TriplesFetched returns the triples this client received.
func (c *Client) TriplesFetched() int64 { return c.triplesFetched }

func (c *Client) fetch(pat sparql.TriplePattern, page int) (Fragment, error) {
	frag, err := c.src.request(pat, page)
	if err != nil {
		return frag, err
	}
	c.requests++
	c.triplesFetched += int64(len(frag.Triples))
	return frag, nil
}

// Query evaluates a BGP query and returns the bindings plus evaluation
// stats: InputRows counts the triples shipped to the client and Joins is
// repurposed as the request count.
func (c *Client) Query(q *sparql.Query) (*engine.Relation, *engine.Stats, error) {
	if len(q.Paths) > 0 {
		return nil, nil, fmt.Errorf("tpf: property paths are not supported by the TPF client")
	}
	if len(q.Patterns) == 0 {
		return nil, nil, fmt.Errorf("tpf: query has no patterns")
	}
	req0, shipped0 := c.requests, c.triplesFetched

	binding := make(map[string]rdf.ID)
	var results []map[string]rdf.ID
	if err := c.solve(q.Patterns, binding, &results); err != nil {
		return nil, nil, err
	}

	// Project, filter, and deduplicate like the reference client.
	proj := q.Projection()
	rel := &engine.Relation{Vars: proj}
	for _, b := range results {
		if !evalFilters(q.Filters, b, c.dict) {
			continue
		}
		row := make([]rdf.ID, len(proj))
		for i, v := range proj {
			row[i] = b[v]
		}
		rel.Rows = append(rel.Rows, row)
	}
	if q.Distinct {
		rel = rel.Distinct()
	}
	rel = rel.Limit(q.Limit)

	stats := &engine.Stats{
		InputRows:  c.triplesFetched - shipped0,
		OutputRows: int64(rel.Card()),
	}
	stats.Joins = int(c.requests - req0)
	return rel, stats, nil
}

// solve implements the nested-loop strategy.
func (c *Client) solve(patterns []sparql.TriplePattern, binding map[string]rdf.ID, results *[]map[string]rdf.ID) error {
	if len(patterns) == 0 {
		snapshot := make(map[string]rdf.ID, len(binding))
		for k, v := range binding {
			snapshot[k] = v
		}
		*results = append(*results, snapshot)
		return nil
	}
	// Ask the source for each pattern's count (one page-0 request each)
	// and pick the smallest — the reference client's heuristic.
	type cand struct {
		i     int
		first Fragment
		bound sparql.TriplePattern
	}
	best := cand{i: -1}
	for i, pat := range patterns {
		bound := c.substitute(pat, binding)
		frag, err := c.fetch(bound, 0)
		if err != nil {
			return err
		}
		if best.i < 0 || frag.TotalCount < best.first.TotalCount {
			best = cand{i: i, first: frag, bound: bound}
		}
		if frag.TotalCount == 0 {
			return nil // some pattern has no matches under this binding
		}
	}
	rest := make([]sparql.TriplePattern, 0, len(patterns)-1)
	rest = append(rest, patterns[:best.i]...)
	rest = append(rest, patterns[best.i+1:]...)

	frag := best.first
	page := 0
	for {
		for _, t := range frag.Triples {
			var bound []string
			ok := true
			unify := func(term rdf.Term, val rdf.ID) {
				if !ok || !term.IsVar() {
					return
				}
				if cur, has := binding[term.Value]; has {
					if cur != val {
						ok = false
					}
					return
				}
				binding[term.Value] = val
				bound = append(bound, term.Value)
			}
			unify(best.bound.S, t.S)
			unify(best.bound.P, t.P)
			unify(best.bound.O, t.O)
			if ok {
				if err := c.solve(rest, binding, results); err != nil {
					return err
				}
			}
			for _, v := range bound {
				delete(binding, v)
			}
		}
		if !frag.HasNext {
			return nil
		}
		page++
		var err error
		frag, err = c.fetch(best.bound, page)
		if err != nil {
			return err
		}
	}
}

// substitute replaces bound variables in a pattern with their values.
func (c *Client) substitute(pat sparql.TriplePattern, binding map[string]rdf.ID) sparql.TriplePattern {
	sub := func(t rdf.Term) rdf.Term {
		if t.IsVar() {
			if id, ok := binding[t.Value]; ok {
				return c.dict.Term(id)
			}
		}
		return t
	}
	return sparql.TriplePattern{S: sub(pat.S), P: sub(pat.P), O: sub(pat.O)}
}

func evalFilters(filters []sparql.Expr, b map[string]rdf.ID, dict *rdf.Dict) bool {
	if len(filters) == 0 {
		return true
	}
	lookup := func(name string) (rdf.Term, bool) {
		if id, ok := b[name]; ok {
			return dict.Term(id), true
		}
		return rdf.Term{}, false
	}
	for _, f := range filters {
		if !f.Eval(lookup) {
			return false
		}
	}
	return true
}
