package gmark

import "fmt"

// This file defines the six evaluation schemas of the paper (§5.2, Table 1
// and Fig. 5), scaled to single-machine sizes. Each schema's chain lengths
// are chosen so the CS hierarchy reproduces the paper's level counts:
// Uniprot 5, Shop 6, Social 11, LUBM 2, YAGO 15, DBpedia 17.

// placeNames is the named object pool of the DBpedia schema; California is
// the constant of query Q55 (§5.7).
var placeNames = []string{
	"California", "NewYork", "Texas", "London", "Paris", "Berlin",
	"Tokyo", "Athens", "Lyon", "Evry", "Heraklion", "Boston",
	"Seattle", "Austin", "Dublin", "Madrid", "Rome", "Vienna",
	"Oslo", "Zurich",
}

// Uniprot models the protein dataset of the running example (Fig. 1):
// occursIn and hasKeyword are required, reference/interacts/encodes/
// annotation are progressively rarer refinements. 5 hierarchy levels.
func Uniprot() Schema {
	return Schema{
		Name: "uniprot",
		Classes: []Class{
			{
				Name:  "Protein",
				Count: 6000,
				Required: []Property{
					{Name: "occursIn", Target: Target{Pool: 400}},
					{Name: "hasKeyword", Target: Target{Pool: 800}, MaxCard: 2},
				},
				Chain: []Property{
					{Name: "reference", Target: Target{Pool: 1500}},
					{Name: "interacts", Target: Target{Class: "Protein"}},
					{Name: "encodes", Target: Target{Class: "Gene"}},
					{Name: "annotation", Target: Target{Literal: 500}},
				},
			},
			{
				Name:  "Gene",
				Count: 2000,
				Required: []Property{
					{Name: "locatedOn", Target: Target{Pool: 40}},
				},
				Chain: []Property{
					{Name: "translatesTo", Target: Target{Class: "Protein"}},
				},
			},
		},
	}
}

// Shop models the WatDiv-like e-commerce schema: users, products, reviews,
// retailers. 6 hierarchy levels (the User chain).
func Shop() Schema {
	return Schema{
		Name: "shop",
		Classes: []Class{
			{
				Name:    "User",
				Count:   6000,
				AddType: true,
				Required: []Property{
					{Name: "name", Target: Target{Literal: 4000}},
				},
				Chain: []Property{
					{Name: "follows", Target: Target{Class: "User"}},
					{Name: "likes", Target: Target{Class: "Product"}},
					{Name: "purchases", Target: Target{Class: "Product"}, MaxCard: 2},
					{Name: "makesReview", Target: Target{Class: "Review"}},
					{Name: "friendOf", Target: Target{Class: "User"}},
				},
			},
			{
				Name:    "Product",
				Count:   5000,
				AddType: true,
				Required: []Property{
					{Name: "label", Target: Target{Literal: 3000}},
				},
				Chain: []Property{
					{Name: "price", Target: Target{Literal: 900}},
					{Name: "category", Target: Target{Pool: 60}},
					{Name: "producedBy", Target: Target{Class: "Retailer"}},
				},
			},
			{
				Name:    "Review",
				Count:   3000,
				AddType: true,
				Required: []Property{
					{Name: "rating", Target: Target{Literal: 5}},
				},
				Chain: []Property{
					{Name: "reviewFor", Target: Target{Class: "Product"}},
				},
			},
			{
				Name:    "Retailer",
				Count:   500,
				AddType: true,
				Required: []Property{
					{Name: "country", Target: Target{Pool: 50}},
				},
			},
		},
	}
}

// Social models the LDBC SNB-like social network: persons, posts,
// organisations. 11 hierarchy levels (the Person chain).
func Social() Schema {
	return Schema{
		Name: "social",
		Classes: []Class{
			{
				Name:    "Person",
				Count:   8000,
				AddType: true,
				Required: []Property{
					{Name: "firstName", Target: Target{Literal: 2000}},
				},
				Chain: []Property{
					{Name: "knows", Target: Target{Class: "Person"}, MaxCard: 2},
					{Name: "email", Target: Target{Literal: 6000}},
					{Name: "speaks", Target: Target{Pool: 30}},
					{Name: "worksAt", Target: Target{Class: "Organisation"}},
					{Name: "studyAt", Target: Target{Class: "Organisation"}},
					{Name: "likes", Target: Target{Class: "Post"}, MaxCard: 2},
					{Name: "moderates", Target: Target{Pool: 300}},
					{Name: "bornIn", Target: Target{Pool: 120}},
					{Name: "locatedIn", Target: Target{Pool: 120}},
					{Name: "interestedIn", Target: Target{Pool: 80}},
				},
				// A slightly slower decay keeps the deep levels populated.
				DepthWeights: decay(10, 0.7),
			},
			{
				Name:    "Post",
				Count:   10000,
				AddType: true,
				Required: []Property{
					{Name: "creationDate", Target: Target{Literal: 4000}},
				},
				Chain: []Property{
					{Name: "content", Target: Target{Literal: 8000}},
					{Name: "language", Target: Target{Pool: 20}},
					{Name: "hasCreator", Target: Target{Class: "Person"}},
				},
			},
			{
				Name:    "Organisation",
				Count:   300,
				AddType: true,
				Required: []Property{
					{Name: "orgName", Target: Target{Literal: 300}},
				},
			},
		},
	}
}

// LUBM models the university benchmark: very regular instances, hence
// only 2 hierarchy levels (the paper highlights this as the structured
// extreme).
func LUBM() Schema {
	return Schema{
		Name: "lubm",
		Classes: []Class{
			{
				Name:    "Student",
				Count:   12000,
				AddType: true,
				Required: []Property{
					{Name: "takesCourse", Target: Target{Class: "Course"}, MaxCard: 3},
					{Name: "memberOf", Target: Target{Class: "Department"}},
				},
				Chain: []Property{
					{Name: "emailAddress", Target: Target{Literal: 12000}},
				},
			},
			{
				Name:    "Professor",
				Count:   2000,
				AddType: true,
				Required: []Property{
					{Name: "teacherOf", Target: Target{Class: "Course"}, MaxCard: 2},
					{Name: "worksFor", Target: Target{Class: "Department"}},
				},
				Chain: []Property{
					{Name: "doctoralDegreeFrom", Target: Target{Pool: 40}},
				},
			},
			{
				Name:    "Course",
				Count:   4000,
				AddType: true,
				Required: []Property{
					{Name: "offeredBy", Target: Target{Class: "Department"}},
				},
				Chain: []Property{
					{Name: "courseName", Target: Target{Literal: 4000}},
				},
			},
			{
				Name:    "Department",
				Count:   400,
				AddType: true,
				Required: []Property{
					{Name: "subOrganizationOf", Target: Target{Pool: 40}},
				},
			},
		},
	}
}

// YAGO models the heterogeneous real-world knowledge base: 15 hierarchy
// levels (the Person chain), big star/complex queries in the workload.
func YAGO() Schema {
	return Schema{
		Name: "yago",
		Classes: []Class{
			{
				Name:    "Person",
				Count:   9000,
				AddType: true,
				Required: []Property{
					{Name: "label", Target: Target{Literal: 7000}},
				},
				Chain: []Property{
					{Name: "bornIn", Target: Target{Class: "City"}},
					{Name: "livesIn", Target: Target{Class: "City"}},
					{Name: "worksAt", Target: Target{Pool: 500}},
					{Name: "hasWonPrize", Target: Target{Pool: 80}},
					{Name: "graduatedFrom", Target: Target{Pool: 200}},
					{Name: "isMarriedTo", Target: Target{Class: "Person"}},
					{Name: "influences", Target: Target{Class: "Person"}},
					{Name: "actedIn", Target: Target{Class: "Movie"}},
					{Name: "directed", Target: Target{Class: "Movie"}},
					{Name: "wroteMusicFor", Target: Target{Class: "Movie"}},
					{Name: "hasChild", Target: Target{Class: "Person"}},
					{Name: "owns", Target: Target{Pool: 400}},
					{Name: "diedIn", Target: Target{Class: "City"}},
					{Name: "interestedIn", Target: Target{Pool: 60}},
				},
				DepthWeights: decay(14, 0.75),
			},
			{
				Name:    "Movie",
				Count:   4000,
				AddType: true,
				Required: []Property{
					{Name: "title", Target: Target{Literal: 3500}},
				},
				Chain: []Property{
					{Name: "releasedIn", Target: Target{Pool: 90}},
					{Name: "producedIn", Target: Target{Class: "City"}},
				},
			},
			{
				Name:    "City",
				Count:   800,
				AddType: true,
				Required: []Property{
					{Name: "cityName", Target: Target{Literal: 800}},
				},
				Chain: []Property{
					{Name: "locatedInCountry", Target: Target{Pool: 50}},
				},
			},
		},
	}
}

// DBpedia models the messiest real-world dataset: 17 hierarchy levels,
// many classes, and the exact symbol-level structure of query Q55
// (Table 2): rdf:type on levels 1-17, foundationPlace on 2-13 (Company
// chain), developer on 2-11 (Product chain), California as an object on
// levels 2-17.
func DBpedia() Schema {
	miscChain := make([]Property, 16)
	for i := range miscChain {
		// Every other misc property points at named places so place
		// objects (California included) occur across all deep levels.
		if i%2 == 0 {
			miscChain[i] = Property{Name: fmt.Sprintf("misc%d", i+1), Target: Target{Named: placeNames}}
		} else {
			miscChain[i] = Property{Name: fmt.Sprintf("misc%d", i+1), Target: Target{Pool: 300}}
		}
	}
	return Schema{
		Name: "dbpedia",
		Classes: []Class{
			{
				Name:    "Misc",
				Count:   5000,
				AddType: true,
				Required: []Property{
					{Name: "label", Target: Target{Literal: 4000}},
				},
				Chain:        miscChain,
				DepthWeights: decay(16, 0.8),
			},
			{
				Name:    "Company",
				Count:   3000,
				AddType: true,
				Required: []Property{
					{Name: "label", Target: Target{Literal: 2500}},
				},
				Chain: []Property{
					{Name: "foundationPlace", Target: Target{Named: placeNames}},
					{Name: "industry", Target: Target{Pool: 60}},
					{Name: "revenue", Target: Target{Literal: 2000}},
					{Name: "numberOfEmployees", Target: Target{Literal: 1500}},
					{Name: "locationCity", Target: Target{Named: placeNames}},
					{Name: "parentCompany", Target: Target{Class: "Company"}},
					{Name: "owner", Target: Target{Pool: 500}},
					{Name: "foundingYear", Target: Target{Literal: 150}},
					{Name: "keyPerson", Target: Target{Class: "Person"}},
					{Name: "product", Target: Target{Class: "Product"}},
					{Name: "division", Target: Target{Pool: 200}},
					{Name: "subsidiary", Target: Target{Class: "Company"}},
				},
				DepthWeights: decay(12, 0.75),
			},
			{
				Name:    "Product",
				Count:   3000,
				AddType: true,
				Required: []Property{
					{Name: "label", Target: Target{Literal: 2500}},
				},
				Chain: []Property{
					{Name: "developer", Target: Target{Class: "Company"}},
					{Name: "genre", Target: Target{Pool: 70}},
					{Name: "releaseDate", Target: Target{Literal: 2000}},
					{Name: "version", Target: Target{Literal: 500}},
					{Name: "license", Target: Target{Pool: 30}},
					{Name: "platform", Target: Target{Pool: 40}},
					{Name: "website", Target: Target{Literal: 2500}},
					{Name: "programmingLanguage", Target: Target{Pool: 40}},
					{Name: "predecessor", Target: Target{Class: "Product"}},
					{Name: "successor", Target: Target{Class: "Product"}},
				},
				DepthWeights: decay(10, 0.75),
			},
			{
				Name:    "Person",
				Count:   2500,
				AddType: true,
				Required: []Property{
					{Name: "personName", Target: Target{Literal: 2200}},
				},
				Chain: []Property{
					{Name: "birthPlace", Target: Target{Named: placeNames}},
					{Name: "occupation", Target: Target{Pool: 80}},
					{Name: "knownFor", Target: Target{Pool: 300}},
					{Name: "almaMater", Target: Target{Pool: 120}},
					{Name: "award", Target: Target{Pool: 60}},
				},
			},
		},
	}
}

// decay returns depth weights 1, r, r², ... for chain length n.
func decay(n int, r float64) []float64 {
	w := make([]float64, n+1)
	cur := 1.0
	for i := range w {
		w[i] = cur
		cur *= r
	}
	return w
}

// NamedDataset couples a schema with the scale factor the harness uses to
// approximate the paper's dataset-size ratios.
type NamedDataset struct {
	// Name is the label used in the paper's tables (shop100 is the 100GB
	// Shop variant, a larger scale of the same schema).
	Name string
	// Schema generates the data.
	Schema Schema
	// Scale multiplies instance counts.
	Scale float64
	// PaperSize and PaperTriples document the original dataset for
	// Table 1 rendering.
	PaperSize    string
	PaperTriples string
	// Levels is the expected CS hierarchy depth (Fig. 5).
	Levels int
}

// StandardDatasets lists the seven dataset configurations of the paper's
// evaluation in Table 1 order. Scales are chosen so relative sizes mirror
// the paper while the whole suite runs on one machine.
func StandardDatasets() []NamedDataset {
	return []NamedDataset{
		{Name: "uniprot", Schema: Uniprot(), Scale: 1, PaperSize: "3GB", PaperTriples: "2.1M", Levels: 5},
		{Name: "shop", Schema: Shop(), Scale: 1, PaperSize: "13GB", PaperTriples: "23M", Levels: 6},
		{Name: "shop100", Schema: Shop(), Scale: 8, PaperSize: "100GB", PaperTriples: "1B", Levels: 6},
		{Name: "social", Schema: Social(), Scale: 1, PaperSize: "18GB", PaperTriples: "50M", Levels: 11},
		{Name: "lubm", Schema: LUBM(), Scale: 1, PaperSize: "30.1GB", PaperTriples: "173.5M", Levels: 2},
		{Name: "yago", Schema: YAGO(), Scale: 1, PaperSize: "12GB", PaperTriples: "82M", Levels: 15},
		{Name: "dbpedia", Schema: DBpedia(), Scale: 1, PaperSize: "30GB", PaperTriples: "182M", Levels: 17},
	}
}

// DatasetByName returns the standard dataset with the given name, or nil.
func DatasetByName(name string) *NamedDataset {
	for _, d := range StandardDatasets() {
		if d.Name == name {
			d := d
			return &d
		}
	}
	return nil
}
