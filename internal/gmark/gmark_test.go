package gmark

import (
	"testing"

	"ping/internal/hpart"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// partition is a test helper running Algorithm 1 on a generated dataset.
func partition(t *testing.T, d *Dataset) *hpart.Layout {
	t.Helper()
	lay, err := hpart.Partition(d.Graph, hpart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

// TestSchemaLevelCounts verifies that every standard dataset reproduces
// its published CS-hierarchy depth (Fig. 5): Uniprot 5, Shop 6, Social 11,
// LUBM 2, YAGO 15, DBpedia 17.
func TestSchemaLevelCounts(t *testing.T) {
	for _, nd := range StandardDatasets() {
		if nd.Name == "shop100" {
			continue // same schema as shop, 8× the size
		}
		d := nd.Schema.Generate(nd.Scale, 1)
		lay := partition(t, d)
		if lay.NumLevels != nd.Levels {
			t.Errorf("%s: %d levels, want %d", nd.Name, lay.NumLevels, nd.Levels)
		}
		if got := lay.TotalTriples(); got < 10_000 {
			t.Errorf("%s: only %d triples generated", nd.Name, got)
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a := Uniprot().Generate(0.2, 7)
	b := Uniprot().Generate(0.2, 7)
	if a.Graph.Len() != b.Graph.Len() {
		t.Fatalf("non-deterministic sizes: %d vs %d", a.Graph.Len(), b.Graph.Len())
	}
	for i := range a.Graph.Triples {
		ta, tb := a.Graph.Triples[i], b.Graph.Triples[i]
		if a.Graph.Dict.TermString(ta.S) != b.Graph.Dict.TermString(tb.S) ||
			a.Graph.Dict.TermString(ta.P) != b.Graph.Dict.TermString(tb.P) ||
			a.Graph.Dict.TermString(ta.O) != b.Graph.Dict.TermString(tb.O) {
			t.Fatalf("triple %d differs between equal-seed runs", i)
		}
	}
	c := Uniprot().Generate(0.2, 8)
	if c.Graph.Len() == a.Graph.Len() {
		// Same length is possible but full equality is not expected;
		// compare a few triples.
		same := true
		for i := 0; i < 50 && i < a.Graph.Len(); i++ {
			if a.Graph.Dict.TermString(a.Graph.Triples[i].O) != c.Graph.Dict.TermString(c.Graph.Triples[i].O) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical graphs")
		}
	}
}

// TestTable2SymbolLevels verifies the DBpedia schema reproduces the Q55
// symbol-level structure of Table 2: rdf:type on all 17 levels,
// foundationPlace on 2-13, developer on 2-11, and California present as
// an object from level 2 deep into the hierarchy.
func TestTable2SymbolLevels(t *testing.T) {
	s := DBpedia()
	d := s.Generate(1, 3)
	lay := partition(t, d)
	if lay.NumLevels != 17 {
		t.Fatalf("DBpedia levels = %d, want 17", lay.NumLevels)
	}
	dict := d.Graph.Dict

	typeLevels := lay.PropertyLevels(dict.LookupIRI(rdf.RDFType))
	if typeLevels.Min() != 1 || typeLevels.Max() != 17 || typeLevels.Count() != 17 {
		t.Errorf("VP[rdf:type] = %v, want {1-17}", typeLevels)
	}
	fp := lay.PropertyLevels(dict.LookupIRI(s.PropertyIRI("foundationPlace")))
	if fp.Min() != 2 || fp.Max() != 13 {
		t.Errorf("VP[foundationPlace] = %v, want {2-13}", fp)
	}
	dev := lay.PropertyLevels(dict.LookupIRI(s.PropertyIRI("developer")))
	if dev.Min() != 2 || dev.Max() != 11 {
		t.Errorf("VP[developer] = %v, want {2-11}", dev)
	}
	cal := lay.ObjectLevels(dict.LookupIRI(s.PropertyIRI("California")))
	if cal.Min() != 2 || cal.Max() < 15 {
		t.Errorf("OI[California] = %v, want min 2 and deep max", cal)
	}
}

func TestQ55HasAnswers(t *testing.T) {
	s := DBpedia()
	d := s.Generate(1, 3)
	q := sparql.MustParse(`SELECT * WHERE {
		?company a ?company_type .
		?company <` + s.PropertyIRI("foundationPlace") + `> <` + s.PropertyIRI("California") + `> .
		?product <` + s.PropertyIRI("developer") + `> ?company .
		?product a ?product_type . }`)
	g := newQueryGen(d, 1)
	if !g.hasAnswers(q) {
		t.Error("Q55 has no answers on the generated DBpedia graph")
	}
}

func TestGenerateWorkloadShapesAndSizes(t *testing.T) {
	d := Shop().Generate(0.3, 5)
	cfg := StandardWorkloadConfig("shop", 5)
	w := d.GenerateWorkload(cfg, 11)
	if len(w.Star) != 5 || len(w.Chain) != 5 || len(w.Complex) != 5 {
		t.Fatalf("bucket sizes: %d/%d/%d", len(w.Star), len(w.Chain), len(w.Complex))
	}
	for _, q := range w.Star {
		if got := sparql.Classify(q); got != sparql.ShapeStar {
			t.Errorf("star bucket query classified %v:\n%s", got, q)
		}
		if n := len(q.Patterns); n < cfg.StarMin || n > cfg.StarMax {
			t.Errorf("star query has %d patterns, want %d-%d", n, cfg.StarMin, cfg.StarMax)
		}
	}
	for _, q := range w.Chain {
		if n := len(q.Patterns); n < cfg.ChainMin || n > cfg.ChainMax {
			t.Errorf("chain query has %d patterns, want %d-%d", n, cfg.ChainMin, cfg.ChainMax)
		}
		if len(q.Patterns) >= 2 {
			if got := sparql.Classify(q); got != sparql.ShapeChain {
				t.Errorf("chain bucket query classified %v:\n%s", got, q)
			}
		}
	}
	for _, q := range w.Complex {
		if n := len(q.Patterns); n < cfg.ComplexMin || n > cfg.ComplexMax {
			t.Errorf("complex query has %d patterns, want %d-%d", n, cfg.ComplexMin, cfg.ComplexMax)
		}
		if got := sparql.Classify(q); got != sparql.ShapeComplex {
			t.Errorf("complex bucket query classified %v:\n%s", got, q)
		}
	}
	// RequireNonEmpty: every query must have answers.
	g := newQueryGen(d, 1)
	for _, lq := range w.All() {
		if !g.hasAnswers(lq.Query) {
			t.Errorf("%s query has no answers:\n%s", lq.Shape, lq.Query)
		}
	}
}

func TestYagoWorkloadHasNoChains(t *testing.T) {
	cfg := StandardWorkloadConfig("yago", 3)
	if cfg.Chain != 0 {
		t.Fatalf("YAGO chain bucket = %d, want 0 (Table 1)", cfg.Chain)
	}
	d := YAGO().Generate(0.2, 5)
	w := d.GenerateWorkload(cfg, 9)
	if len(w.Chain) != 0 {
		t.Errorf("YAGO workload generated %d chain queries", len(w.Chain))
	}
	if len(w.Star) != 3 || len(w.Complex) != 3 {
		t.Errorf("YAGO buckets: star=%d complex=%d", len(w.Star), len(w.Complex))
	}
}

// TestLevelTargetedQueries verifies the Fig. 9 generator: a query built
// for L levels must touch exactly the deepest L levels of the class
// hierarchy through the VP index.
func TestLevelTargetedQueries(t *testing.T) {
	d := Shop().Generate(0.5, 13)
	lay := partition(t, d)
	if lay.NumLevels != 6 {
		t.Fatalf("shop levels = %d", lay.NumLevels)
	}
	for L := 2; L <= 6; L++ {
		qs := d.LevelTargetedQueries("User", L, 3, 2, int64(L))
		if len(qs) != 3 {
			t.Fatalf("L=%d: generated %d queries", L, len(qs))
		}
		for _, q := range qs {
			// The union of every pattern's VP levels must be exactly L
			// levels (the deepest L of the User chain).
			var union hpart.LevelSet
			for _, pat := range q.Patterns {
				id := d.Graph.Dict.Lookup(pat.P)
				if id == rdf.NoID {
					t.Fatalf("L=%d: property %v not in data", L, pat.P)
				}
				union = union.Union(lay.PropertyLevels(id))
			}
			if union.Count() != L {
				t.Errorf("L=%d: query touches %v (%d levels)\n%s", L, union, union.Count(), q)
			}
			if union.Max() != 6 {
				t.Errorf("L=%d: deepest level %d, want 6", L, union.Max())
			}
		}
	}
	// Out-of-range requests yield nothing.
	if qs := d.LevelTargetedQueries("User", 99, 1, 2, 1); qs != nil {
		t.Error("out-of-range level count accepted")
	}
	if qs := d.LevelTargetedQueries("NoClass", 2, 1, 2, 1); qs != nil {
		t.Error("unknown class accepted")
	}
}

func TestDatasetByName(t *testing.T) {
	if d := DatasetByName("uniprot"); d == nil || d.Levels != 5 {
		t.Error("DatasetByName(uniprot) broken")
	}
	if DatasetByName("nope") != nil {
		t.Error("DatasetByName(nope) returned a dataset")
	}
}

func TestScaleControlsSize(t *testing.T) {
	small := Shop().Generate(0.1, 2)
	big := Shop().Generate(0.4, 2)
	if big.Graph.Len() < 3*small.Graph.Len() {
		t.Errorf("scale 0.4 (%d triples) not ~4x scale 0.1 (%d)", big.Graph.Len(), small.Graph.Len())
	}
}

func TestInstanceDepthRecorded(t *testing.T) {
	d := Uniprot().Generate(0.1, 4)
	found := false
	for _, iri := range d.InstancesByClass["Protein"] {
		if d.InstanceDepth(iri) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no protein has a recorded positive depth")
	}
}
