package gmark

import (
	"fmt"
	"math/rand"
	"strings"

	"ping/internal/engine"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// WorkloadConfig controls query generation for one dataset, mirroring the
// per-dataset workload characteristics of Table 1 (20 star / 20 chain /
// 20 complex queries with dataset-specific pattern-count ranges; the
// paper generated 2000 candidates per class and kept the first 20 that
// returned answers — RequireNonEmpty reproduces that filter).
type WorkloadConfig struct {
	Star, Chain, Complex   int
	StarMin, StarMax       int
	ChainMin, ChainMax     int
	ComplexMin, ComplexMax int
	// ConstantProb is the probability that a star pattern's object is a
	// constant drawn from the data.
	ConstantProb float64
	// RequireNonEmpty keeps only queries with at least one answer.
	RequireNonEmpty bool
	// MaxAttempts caps candidate generation per bucket (default 100 per
	// requested query).
	MaxAttempts int
}

// Workload is a generated query mix.
type Workload struct {
	Star, Chain, Complex []*sparql.Query
}

// All returns every query with its shape label, star first.
func (w Workload) All() []LabeledQuery {
	var out []LabeledQuery
	for _, q := range w.Star {
		out = append(out, LabeledQuery{Shape: "star", Query: q})
	}
	for _, q := range w.Chain {
		out = append(out, LabeledQuery{Shape: "chain", Query: q})
	}
	for _, q := range w.Complex {
		out = append(out, LabeledQuery{Shape: "complex", Query: q})
	}
	return out
}

// LabeledQuery pairs a query with its workload bucket.
type LabeledQuery struct {
	Shape string
	Query *sparql.Query
}

// StandardWorkloadConfig returns the Table 1 workload shape for a dataset
// name, with the query counts scaled down by the harness (the paper uses
// 20 per bucket; benchmarks usually run fewer).
func StandardWorkloadConfig(dataset string, perBucket int) WorkloadConfig {
	cfg := WorkloadConfig{
		Star: perBucket, Chain: perBucket, Complex: perBucket,
		StarMin: 2, StarMax: 5, ChainMin: 2, ChainMax: 5,
		ComplexMin: 3, ComplexMax: 5,
		ConstantProb:    0.2,
		RequireNonEmpty: true,
	}
	switch dataset {
	case "uniprot":
		cfg.ComplexMin, cfg.ComplexMax = 2, 5
	case "shop", "shop100":
		// defaults: 2-5 / 2-5 / 3-5
	case "social":
		cfg.StarMin, cfg.StarMax = 3, 5
		cfg.ChainMin, cfg.ChainMax = 3, 4
		cfg.ComplexMin, cfg.ComplexMax = 2, 5
	case "lubm":
		cfg.ChainMin, cfg.ChainMax = 1, 2
		cfg.ComplexMin, cfg.ComplexMax = 4, 6
	case "yago":
		cfg.StarMin, cfg.StarMax = 3, 6
		cfg.Chain = 0 // Table 1: YAGO has no plain chain queries
		cfg.ComplexMin, cfg.ComplexMax = 4, 10
		// The YAGO benchmark queries (taken from the WORQ paper's logs)
		// are constant-rich, which is what lets PING's indexes prune.
		cfg.ConstantProb = 0.8
	case "dbpedia":
		cfg.StarMin, cfg.StarMax = 1, 5
		cfg.ChainMin, cfg.ChainMax = 1, 4
		cfg.ComplexMin, cfg.ComplexMax = 4, 5
	}
	return cfg
}

// queryGen holds the sampling state shared by the generators.
type queryGen struct {
	d   *Dataset
	rng *rand.Rand
	// objectSamples maps property IRI to sample objects drawn from the
	// generated graph, used for constant-object patterns.
	objectSamples map[string][]rdf.Term
	// classProps maps class name to its full property list.
	classProps map[string][]Property
	// classTargets maps class name to its class-targeting properties.
	classTargets map[string][]Property
}

func newQueryGen(d *Dataset, seed int64) *queryGen {
	g := &queryGen{
		d:             d,
		rng:           rand.New(rand.NewSource(seed)),
		objectSamples: make(map[string][]rdf.Term),
		classProps:    make(map[string][]Property),
		classTargets:  make(map[string][]Property),
	}
	for _, c := range d.Schema.Classes {
		props := append(append([]Property(nil), c.Required...), c.Chain...)
		g.classProps[c.Name] = props
		for _, p := range props {
			if p.Target.Class != "" {
				g.classTargets[c.Name] = append(g.classTargets[c.Name], p)
			}
		}
	}
	// Sample up to 40 objects per property for constant generation.
	const maxSamples = 40
	for _, t := range d.Graph.Triples {
		piri := d.Graph.Dict.Term(t.P).Value
		if len(g.objectSamples[piri]) < maxSamples {
			g.objectSamples[piri] = append(g.objectSamples[piri], d.Graph.Dict.Term(t.O))
		}
	}
	return g
}

// GenerateWorkload builds the star/chain/complex buckets for the dataset.
func (d *Dataset) GenerateWorkload(cfg WorkloadConfig, seed int64) Workload {
	g := newQueryGen(d, seed)
	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 100
	}
	fill := func(n int, gen func() *sparql.Query) []*sparql.Query {
		var out []*sparql.Query
		for attempts := 0; len(out) < n && attempts < n*maxAttempts; attempts++ {
			q := gen()
			if q == nil {
				continue
			}
			if cfg.RequireNonEmpty && !g.hasAnswers(q) {
				continue
			}
			out = append(out, q)
		}
		return out
	}
	return Workload{
		Star: fill(cfg.Star, func() *sparql.Query {
			return g.star(randBetween(g.rng, cfg.StarMin, cfg.StarMax), cfg.ConstantProb)
		}),
		Chain: fill(cfg.Chain, func() *sparql.Query {
			return g.chain(randBetween(g.rng, cfg.ChainMin, cfg.ChainMax))
		}),
		Complex: fill(cfg.Complex, func() *sparql.Query {
			return g.complex(randBetween(g.rng, cfg.ComplexMin, cfg.ComplexMax))
		}),
	}
}

func randBetween(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// hasAnswers evaluates the query on the full graph.
func (g *queryGen) hasAnswers(q *sparql.Query) bool {
	rel, _, err := engine.Evaluate(q, engine.InputsFromGraph(g.d.Graph, q), g.d.Graph.Dict, engine.Options{})
	return err == nil && rel.Card() > 0
}

// star builds a star query of k patterns over one class.
func (g *queryGen) star(k int, constantProb float64) *sparql.Query {
	classes := g.classesWithProps(k)
	if len(classes) == 0 {
		return nil
	}
	c := classes[g.rng.Intn(len(classes))]
	props := g.pickProps(g.classProps[c], k)
	var b strings.Builder
	b.WriteString("SELECT * WHERE {\n")
	for i, p := range props {
		piri := g.d.Schema.PropertyIRI(p.Name)
		obj := fmt.Sprintf("?o%d", i)
		if g.rng.Float64() < constantProb {
			if samples := g.objectSamples[piri]; len(samples) > 0 {
				obj = samples[g.rng.Intn(len(samples))].String()
			}
		}
		fmt.Fprintf(&b, "  ?x <%s> %s .\n", piri, obj)
	}
	b.WriteString("}")
	return sparql.MustParse(b.String())
}

// chain builds a chain query of k patterns by walking class-targeting
// properties.
func (g *queryGen) chain(k int) *sparql.Query {
	if k < 1 {
		return nil
	}
	// Pick a start class that can sustain a walk.
	starts := make([]string, 0, len(g.classTargets))
	for c, ps := range g.classTargets {
		if len(ps) > 0 {
			starts = append(starts, c)
		}
	}
	if len(starts) == 0 {
		return nil
	}
	cur := starts[g.rng.Intn(len(starts))]
	var b strings.Builder
	b.WriteString("SELECT * WHERE {\n")
	for i := 0; i < k; i++ {
		var p Property
		if i == k-1 {
			// The last hop may use any property (the chain ends there).
			all := g.classProps[cur]
			if len(all) == 0 {
				return nil
			}
			p = all[g.rng.Intn(len(all))]
		} else {
			targets := g.classTargets[cur]
			if len(targets) == 0 {
				return nil // dead end; caller retries
			}
			p = targets[g.rng.Intn(len(targets))]
		}
		fmt.Fprintf(&b, "  ?v%d <%s> ?v%d .\n", i, g.d.Schema.PropertyIRI(p.Name), i+1)
		cur = p.Target.Class
	}
	b.WriteString("}")
	return sparql.MustParse(b.String())
}

// complex builds a star of at least two patterns with a chain hanging off
// one of its object variables.
func (g *queryGen) complex(k int) *sparql.Query {
	if k < 2 {
		k = 2
	}
	starK := 2
	if k > 3 {
		starK = 2 + g.rng.Intn(k-2) // 2..k-1
	}
	chainK := k - starK
	// The star class must have a class-targeting property for the bridge.
	var candidates []string
	for c, ps := range g.classTargets {
		if len(ps) > 0 && len(g.classProps[c]) >= starK {
			candidates = append(candidates, c)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	c := candidates[g.rng.Intn(len(candidates))]
	bridge := g.classTargets[c][g.rng.Intn(len(g.classTargets[c]))]

	var b strings.Builder
	b.WriteString("SELECT * WHERE {\n")
	fmt.Fprintf(&b, "  ?x <%s> ?v0 .\n", g.d.Schema.PropertyIRI(bridge.Name))
	others := g.pickProps(g.classProps[c], starK-1)
	for i, p := range others {
		fmt.Fprintf(&b, "  ?x <%s> ?s%d .\n", g.d.Schema.PropertyIRI(p.Name), i)
	}
	cur := bridge.Target.Class
	for i := 0; i < chainK; i++ {
		var p Property
		targets := g.classTargets[cur]
		if i == chainK-1 || len(targets) == 0 {
			all := g.classProps[cur]
			if len(all) == 0 {
				return nil
			}
			p = all[g.rng.Intn(len(all))]
		} else {
			p = targets[g.rng.Intn(len(targets))]
		}
		fmt.Fprintf(&b, "  ?v%d <%s> ?v%d .\n", i, g.d.Schema.PropertyIRI(p.Name), i+1)
		cur = p.Target.Class
	}
	b.WriteString("}")
	return sparql.MustParse(b.String())
}

// classesWithProps lists classes having at least k properties.
func (g *queryGen) classesWithProps(k int) []string {
	var out []string
	for c, props := range g.classProps {
		if len(props) >= k {
			out = append(out, c)
		}
	}
	return out
}

// pickProps samples k distinct properties.
func (g *queryGen) pickProps(props []Property, k int) []Property {
	idx := g.rng.Perm(len(props))
	if k > len(props) {
		k = len(props)
	}
	out := make([]Property, k)
	for i := 0; i < k; i++ {
		out[i] = props[idx[i]]
	}
	return out
}

// LevelTargetedQueries builds star queries on the class whose chain
// defines the dataset's hierarchy, such that every pattern's property
// occurs on exactly the deepest `levels` hierarchy levels of the class.
// These reproduce the Shop-100 EQA experiment of Fig. 9: the smaller
// `levels`, the larger PING's data-access advantage over the vertical-
// partitioning baselines (which always scan whole properties).
func (d *Dataset) LevelTargetedQueries(className string, levels, count, patterns int, seed int64) []*sparql.Query {
	c := d.Schema.ClassByName(className)
	if c == nil {
		return nil
	}
	m := len(c.Chain)
	if levels < 1 || levels > m+1 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var out []*sparql.Query
	for n := 0; n < count; n++ {
		var b strings.Builder
		b.WriteString("SELECT * WHERE {\n")
		// Deepest pattern: chain index m-levels occupies levels
		// (m-levels)+2 .. m+1, i.e. exactly `levels` levels. levels ==
		// m+1 selects a required property (all levels).
		if levels == m+1 {
			p := c.Required[rng.Intn(len(c.Required))]
			fmt.Fprintf(&b, "  ?x <%s> ?o0 .\n", d.Schema.PropertyIRI(p.Name))
		} else {
			p := c.Chain[m-levels]
			fmt.Fprintf(&b, "  ?x <%s> ?o0 .\n", d.Schema.PropertyIRI(p.Name))
		}
		// Additional patterns from deeper-or-equal chain positions keep
		// the touched level set unchanged.
		for i := 1; i < patterns; i++ {
			lo := m - levels + 1
			if lo < 0 {
				lo = 0
			}
			if lo >= m {
				break
			}
			p := c.Chain[lo+rng.Intn(m-lo)]
			fmt.Fprintf(&b, "  ?x <%s> ?o%d .\n", d.Schema.PropertyIRI(p.Name), i)
		}
		b.WriteString("}")
		out = append(out, sparql.MustParse(b.String()))
	}
	return out
}
