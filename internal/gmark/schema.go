// Package gmark is a schema-driven synthetic RDF graph and query-workload
// generator standing in for the gMark generator (Bagan et al., TKDE'17)
// and the benchmark datasets of the paper's evaluation (§5.2): Uniprot,
// Shop (WatDiv-like), Social (LDBC-like), LUBM, DBpedia, and YAGO.
//
// The generator controls the single property that drives every PING
// experiment: the characteristic-set hierarchy. Each class declares a set
// of *required* properties and an ordered *chain* of optional properties;
// an instance samples a depth d from the class's depth distribution and
// receives the required properties plus the first d chain properties. CS
// subsumption between the resulting prefix sets is exactly the chain
// order, so a class with chain length m populates hierarchy levels
// 1..m+1 — letting each dataset reproduce its published level count
// (Fig. 5: 5 for Uniprot, 2 for LUBM, 11 for Social, 15 for YAGO, 17 for
// DBpedia, ...).
package gmark

import (
	"fmt"
	"math/rand"

	"ping/internal/rdf"
)

// Target describes where a property's objects come from.
type Target struct {
	// Class draws objects uniformly from the instances of this class.
	Class string
	// Pool draws objects from a pool of Pool opaque leaf IRIs owned by
	// the property (entities with no outgoing edges).
	Pool int
	// Named draws objects from this fixed list of IRIs (e.g. the place
	// names of the DBpedia schema, including dbr:California).
	Named []string
	// Literal draws string literals from a pool of Literal values.
	Literal int
}

// Property is a schema property: a local name plus its object target and
// an optional out-degree above one.
type Property struct {
	Name   string
	Target Target
	// MaxCard is the maximum number of triples an instance emits for this
	// property (uniform in [1, MaxCard]; 0 means exactly 1).
	MaxCard int
}

// Class describes one instance population.
type Class struct {
	Name string
	// Count is the number of instances at Scale 1.
	Count int
	// Required properties occur on every instance (plus rdf:type when
	// AddType is set).
	Required []Property
	// Chain is the ordered optional-property chain; an instance of depth
	// d carries Chain[0:d].
	Chain []Property
	// DepthWeights gives the relative probability of each depth 0..len(Chain).
	// Empty means a geometric-like default that thins out with depth.
	DepthWeights []float64
	// AddType adds an (instance, rdf:type, <schema>/<Name>) triple, making
	// rdf:type part of the class's characteristic sets (the paper treats
	// typing as an ordinary property, §3.8).
	AddType bool
}

// Levels returns how many hierarchy levels this class populates.
func (c Class) Levels() int { return len(c.Chain) + 1 }

// Schema is a complete dataset description.
type Schema struct {
	Name    string
	Classes []Class
}

// MaxLevels returns the hierarchy depth the schema generates.
func (s Schema) MaxLevels() int {
	max := 0
	for _, c := range s.Classes {
		if c.Levels() > max {
			max = c.Levels()
		}
	}
	return max
}

// IRI builds a schema-namespaced IRI.
func (s Schema) IRI(local string) string {
	return fmt.Sprintf("http://%s.example.org/%s", s.Name, local)
}

// Dataset is a generated graph plus the metadata query generation needs.
type Dataset struct {
	Schema Schema
	Graph  *rdf.Graph
	// InstancesByClass maps class name to the instance IRIs generated.
	InstancesByClass map[string][]string
	// depthByInstance records each instance's sampled chain depth.
	depthByInstance map[string]int
}

// Generate builds the dataset at the given scale factor (instance counts
// are multiplied by scale). Generation is deterministic in (schema, scale,
// seed).
func (s Schema) Generate(scale float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Schema:           s,
		Graph:            rdf.NewGraph(),
		InstancesByClass: make(map[string][]string),
		depthByInstance:  make(map[string]int),
	}

	// First pass: allot instance IRIs so cross-class references resolve.
	for _, c := range s.Classes {
		n := int(float64(c.Count) * scale)
		if n < 1 {
			n = 1
		}
		iris := make([]string, n)
		for i := range iris {
			iris[i] = s.IRI(fmt.Sprintf("%s%d", c.Name, i))
		}
		d.InstancesByClass[c.Name] = iris
	}

	typeIRI := rdf.NewIRI(rdf.RDFType)
	for _, c := range s.Classes {
		weights := c.DepthWeights
		if len(weights) == 0 {
			weights = defaultDepthWeights(len(c.Chain))
		}
		classTerm := rdf.NewIRI(s.IRI(c.Name))
		for _, iri := range d.InstancesByClass[c.Name] {
			subj := rdf.NewIRI(iri)
			if c.AddType {
				d.Graph.Add(subj, typeIRI, classTerm)
			}
			for _, p := range c.Required {
				d.emit(rng, subj, c, p)
			}
			depth := sampleIndex(rng, weights)
			d.depthByInstance[iri] = depth
			for i := 0; i < depth; i++ {
				d.emit(rng, subj, c, c.Chain[i])
			}
		}
	}
	d.Graph.Dedup()
	return d
}

// emit writes the triples of one property on one subject.
func (d *Dataset) emit(rng *rand.Rand, subj rdf.Term, c Class, p Property) {
	card := 1
	if p.MaxCard > 1 {
		card = 1 + rng.Intn(p.MaxCard)
	}
	prop := rdf.NewIRI(d.Schema.IRI(p.Name))
	for k := 0; k < card; k++ {
		d.Graph.Add(subj, prop, d.object(rng, p))
	}
}

// skewIndex samples an index in [0, n) with a Zipf-like head-heavy skew:
// a few hot objects collect most references while the long tail is
// referenced once or not at all — the reference distribution of real
// knowledge graphs (and the reason instance constants in queries usually
// pin down very few hierarchy levels).
func skewIndex(rng *rand.Rand, n int) int {
	u := rng.Float64()
	i := int(float64(n) * u * u * u)
	if i >= n {
		i = n - 1
	}
	return i
}

// object samples one object term for a property.
func (d *Dataset) object(rng *rand.Rand, p Property) rdf.Term {
	t := p.Target
	switch {
	case t.Class != "":
		pool := d.InstancesByClass[t.Class]
		if len(pool) == 0 {
			return rdf.NewIRI(d.Schema.IRI("missing/" + t.Class))
		}
		return rdf.NewIRI(pool[skewIndex(rng, len(pool))])
	case len(t.Named) > 0:
		return rdf.NewIRI(d.Schema.IRI(t.Named[skewIndex(rng, len(t.Named))]))
	case t.Literal > 0:
		return rdf.NewLiteral(fmt.Sprintf("%s-value-%d", p.Name, skewIndex(rng, t.Literal)))
	default:
		pool := t.Pool
		if pool <= 0 {
			pool = 100
		}
		return rdf.NewIRI(d.Schema.IRI(fmt.Sprintf("%s/e%d", p.Name, skewIndex(rng, pool))))
	}
}

// defaultDepthWeights thins out geometrically: each extra chain level
// keeps ~55% of the previous one, giving the decreasing level populations
// typical of real datasets (Fig. 5).
func defaultDepthWeights(chainLen int) []float64 {
	w := make([]float64, chainLen+1)
	cur := 1.0
	for i := range w {
		w[i] = cur
		cur *= 0.55
	}
	return w
}

// sampleIndex draws an index proportional to weights.
func sampleIndex(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// ClassByName returns the class spec, or nil.
func (s Schema) ClassByName(name string) *Class {
	for i := range s.Classes {
		if s.Classes[i].Name == name {
			return &s.Classes[i]
		}
	}
	return nil
}

// PropertyIRI returns the full IRI of a schema property name.
func (s Schema) PropertyIRI(name string) string { return s.IRI(name) }

// InstanceDepth returns the sampled chain depth of an instance IRI
// (0 if unknown).
func (d *Dataset) InstanceDepth(iri string) int { return d.depthByInstance[iri] }
