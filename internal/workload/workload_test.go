package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ping/internal/obs"
	"ping/internal/sparql"
)

func TestCanonicalAlphaEquivalence(t *testing.T) {
	// Syntactically different but α-equivalent: only the variable names
	// differ. This is the acceptance-criterion pair.
	a := sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?org . ?x <hasKeyword> ?kw }`)
	b := sparql.MustParse(`SELECT * WHERE { ?protein <occursIn> ?o . ?protein <hasKeyword> ?k }`)
	if Canonical(a) != Canonical(b) {
		t.Fatalf("α-equivalent queries canonicalize differently:\n%s\nvs\n%s", Canonical(a), Canonical(b))
	}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatalf("α-equivalent queries fingerprint differently: %s vs %s", Fingerprint(a), Fingerprint(b))
	}
	if len(Fingerprint(a)) != 16 {
		t.Fatalf("fingerprint %q, want 16 hex digits", Fingerprint(a))
	}

	// Projection and filters participate in the renaming.
	c := sparql.MustParse(`SELECT ?x WHERE { ?x <p> ?y . FILTER (?y > 3) }`)
	d := sparql.MustParse(`SELECT ?a WHERE { ?a <p> ?b . FILTER (?b > 3) }`)
	if Fingerprint(c) != Fingerprint(d) {
		t.Fatal("filter/projection renaming broken")
	}

	// Structural differences must NOT collapse.
	distinct := []*sparql.Query{
		sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?y }`),                               // fewer patterns
		sparql.MustParse(`SELECT * WHERE { ?x <hasKeyword> ?y . ?x <occursIn> ?z }`),          // reordered patterns
		sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?y . ?x <reference> ?z }`),           // different predicate
		sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?y . ?y <hasKeyword> ?z }`),          // different join variable
		sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?y . ?x <hasKeyword> ?y }`),          // merged variables
		sparql.MustParse(`SELECT DISTINCT * WHERE { ?x <occursIn> ?y . ?x <hasKeyword> ?z }`), // DISTINCT
	}
	seen := map[string]string{Fingerprint(a): a.String()}
	for _, q := range distinct {
		fp := Fingerprint(q)
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision between %s and %s", prev, q.String())
		}
		seen[fp] = q.String()
	}

	// LIMIT changes semantics (and the incremental decision): distinct.
	lim := sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?y } LIMIT 5`)
	nolim := sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?y }`)
	if Fingerprint(lim) == Fingerprint(nolim) {
		t.Error("LIMIT ignored by fingerprint")
	}
}

func TestProfilerAggregation(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewProfiler(Options{Metrics: reg})

	a := sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?org }`)
	b := sparql.MustParse(`SELECT * WHERE { ?subject <occursIn> ?place }`)

	fpA := p.Observe(a, Observation{
		Latency: 10 * time.Millisecond, Steps: 3, StepsToFirstAnswer: 1,
		CoverageAtFirstAnswer: 0.5, Coverage: []float64{0.5, 0.8, 1}, Answers: 10, Epoch: 1,
	})
	fpB := p.Observe(b, Observation{
		Latency: 30 * time.Millisecond, Steps: 3, StepsToFirstAnswer: 3,
		CoverageAtFirstAnswer: 1, Coverage: []float64{0, 0, 1}, Answers: 12, Epoch: 2, Degraded: true,
	})
	if fpA != fpB {
		t.Fatalf("α-equivalent queries got different fingerprints: %s vs %s", fpA, fpB)
	}

	other := sparql.MustParse(`SELECT * WHERE { ?x <reference> ?y }`)
	p.Observe(other, Observation{Latency: 1 * time.Millisecond, Steps: 1, Error: true})

	snap := p.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}
	// Sorted by total latency descending: the 40ms fingerprint first.
	top := snap[0]
	if top.Fingerprint != fpA {
		t.Fatalf("top fingerprint %s, want %s", top.Fingerprint, fpA)
	}
	if top.Count != 2 || top.Degraded != 1 || top.Errors != 0 {
		t.Errorf("top aggregate %+v, want count=2 degraded=1", top)
	}
	if top.MinMs != 10 || top.MaxMs != 30 || top.TotalMs != 40 || top.MeanMs != 20 {
		t.Errorf("latency aggregate min=%v max=%v total=%v mean=%v", top.MinMs, top.MaxMs, top.TotalMs, top.MeanMs)
	}
	if top.MeanSteps != 3 {
		t.Errorf("mean steps %v, want 3", top.MeanSteps)
	}
	if top.MeanStepsToFirst != 2 || top.MeanCoverageAtFirst != 0.75 {
		t.Errorf("first-answer aggregate steps=%v cov=%v, want 2 and 0.75", top.MeanStepsToFirst, top.MeanCoverageAtFirst)
	}
	if len(top.Coverage) != 3 || top.Coverage[2] != 1 {
		t.Errorf("latest coverage curve %v", top.Coverage)
	}
	if top.LastEpoch != 2 || top.LastAnswers != 12 {
		t.Errorf("last run epoch=%d answers=%d, want 2 and 12", top.LastEpoch, top.LastAnswers)
	}
	if top.P50Ms <= 0 || top.P95Ms < top.P50Ms {
		t.Errorf("quantiles p50=%v p95=%v", top.P50Ms, top.P95Ms)
	}
	if snap[1].Errors != 1 {
		t.Errorf("error run not counted: %+v", snap[1])
	}

	// The per-fingerprint registry series exist and carry the counts.
	if got := reg.Counter("workload_queries_total", obs.Labels{"fingerprint": fpA, "shape": "star"}).Value(); got != 2 {
		t.Errorf("workload_queries_total = %d, want 2", got)
	}
	if got := reg.Gauge("workload_fingerprints", nil).Value(); got != 2 {
		t.Errorf("workload_fingerprints = %v, want 2", got)
	}
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `workload_query_seconds_count{fingerprint="`+fpA+`"}`) {
		t.Errorf("Prometheus export missing fingerprint histogram:\n%s", prom.String())
	}
}

func TestProfilerBounded(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewProfiler(Options{Metrics: reg, MaxFingerprints: 2})
	queries := []string{
		`SELECT * WHERE { ?x <a> ?y }`,
		`SELECT * WHERE { ?x <b> ?y }`,
		`SELECT * WHERE { ?x <c> ?y }`,
		`SELECT * WHERE { ?x <d> ?y }`,
	}
	for _, qs := range queries {
		p.Observe(sparql.MustParse(qs), Observation{Latency: time.Millisecond})
	}
	if got := len(p.Snapshot()); got != 2 {
		t.Fatalf("tracked %d fingerprints, want bound 2", got)
	}
	if p.Dropped() != 2 {
		t.Fatalf("dropped %d, want 2", p.Dropped())
	}
	// An already-tracked fingerprint still aggregates at the bound.
	p.Observe(sparql.MustParse(queries[0]), Observation{Latency: time.Millisecond})
	found := false
	for _, st := range p.Snapshot() {
		if st.Count == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("tracked fingerprint stopped aggregating at the bound")
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewProfiler(Options{Metrics: reg})
	p.Observe(sparql.MustParse(`SELECT * WHERE { ?x <a> ?y }`), Observation{
		Latency: 5 * time.Millisecond, Steps: 2, StepsToFirstAnswer: 1,
		CoverageAtFirstAnswer: 0.4, Coverage: []float64{0.4, 1}, Answers: 7, Epoch: 3,
	})
	p.Observe(sparql.MustParse(`SELECT * WHERE { ?x <b> ?y . ?y <c> ?z }`), Observation{
		Latency: 50 * time.Millisecond, Steps: 4, Degraded: true,
	})

	var buf bytes.Buffer
	if err := p.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("round-trip %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		gj, _ := json.Marshal(got[i])
		wj, _ := json.Marshal(want[i])
		if !bytes.Equal(gj, wj) {
			t.Errorf("entry %d round-trip mismatch:\n%s\nvs\n%s", i, gj, wj)
		}
	}

	path := filepath.Join(t.TempDir(), "workload.ndjson")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fromFile, err := ReadNDJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromFile) != len(want) {
		t.Fatalf("SaveFile round-trip %d entries, want %d", len(fromFile), len(want))
	}
}

// TestSlowLogThreshold is the acceptance criterion: exactly one NDJSON
// record for a query over the threshold, none below.
func TestSlowLogThreshold(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 10*time.Millisecond)

	rec := SlowQuery{
		Fingerprint: "deadbeefdeadbeef",
		Query:       `SELECT * WHERE { ?x <a> ?y }`,
		Epoch:       4,
		Plan:        &PlanSummary{Strategy: "level-cumulative", Steps: 3, SubParts: 5, MaxLevel: 3, Incremental: true},
		StepMs:      []float64{1, 2, 9},
		Answers:     42,
	}
	if l.Observe(rec, 5*time.Millisecond) {
		t.Fatal("below-threshold query was logged")
	}
	if buf.Len() != 0 {
		t.Fatalf("below-threshold query wrote %q", buf.String())
	}
	if !l.Observe(rec, 15*time.Millisecond) {
		t.Fatal("over-threshold query was not logged")
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("wrote %d records, want exactly 1: %q", len(lines), buf.String())
	}
	var got SlowQuery
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if got.Fingerprint != rec.Fingerprint || got.Epoch != 4 || got.Answers != 42 {
		t.Errorf("record %+v lost fields", got)
	}
	if got.LatencyMs != 15 || got.ThresholdMs != 10 {
		t.Errorf("latency %v / threshold %v, want 15 / 10", got.LatencyMs, got.ThresholdMs)
	}
	if got.Time == "" {
		t.Error("record missing timestamp")
	}
	if got.Plan == nil || got.Plan.Steps != 3 || !got.Plan.Incremental {
		t.Errorf("plan summary %+v", got.Plan)
	}
	if len(got.StepMs) != 3 {
		t.Errorf("step timings %v", got.StepMs)
	}
	if l.Emitted() != 1 {
		t.Errorf("Emitted = %d, want 1", l.Emitted())
	}

	// Nil log is inert.
	var nl *SlowLog
	if nl.Observe(rec, time.Hour) || nl.Emitted() != 0 {
		t.Fatal("nil SlowLog should be inert")
	}
}

// TestResumedLineageCountsOnce is the no-double-counting rule for
// resumable queries: a lineage that ran as several cursor segments is
// folded in as ONE observation with the segment latencies summed, so
// Count, the latency aggregates, and the histogram all see one query —
// only MeanSegments reveals the pauses.
func TestResumedLineageCountsOnce(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewProfiler(Options{Metrics: reg})
	q := sparql.MustParse(`SELECT * WHERE { ?x <p> ?y }`)

	// An uninterrupted run, then a 3-segment lineage of the same shape
	// (10+20+30ms segments observed once, summed).
	p.Observe(q, Observation{Latency: 5 * time.Millisecond, Steps: 4, Segments: 1})
	p.Observe(q, Observation{Latency: 60 * time.Millisecond, Steps: 4, Segments: 3})

	snap := p.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d fingerprints, want 1", len(snap))
	}
	st := snap[0]
	if st.Count != 2 {
		t.Fatalf("count %d, want 2 (one per lineage, not per segment)", st.Count)
	}
	if st.TotalMs != 65 || st.MaxMs != 60 {
		t.Fatalf("latency total=%v max=%v, want 65/60 (segments summed)", st.TotalMs, st.MaxMs)
	}
	if st.MeanSteps != 4 {
		t.Fatalf("mean steps %v, want 4 (lineage steps, not doubled)", st.MeanSteps)
	}
	if st.MeanSegments != 2 {
		t.Fatalf("mean segments %v, want 2", st.MeanSegments)
	}
}

// TestSnapshotDeterministicOrder is the regression for replayed NDJSON
// workloads, where every latency is zero and total-latency ordering
// degenerates: colliding (TotalMs, Count) pairs must still come out in a
// stable order (count descending, then fingerprint), so the advisor's
// "top K" hot set does not change between two snapshots of the same
// profile.
func TestSnapshotDeterministicOrder(t *testing.T) {
	mk := func() *Profiler {
		p := NewProfiler(Options{Metrics: obs.NewRegistry()})
		// Six distinct fingerprints, all with zero latency; q4/q5 also
		// collide on count with q0..q3 pairwise.
		for i, n := range []int{2, 2, 1, 1, 2, 1} {
			q := sparql.MustParse(fmt.Sprintf(`SELECT * WHERE { ?x <p%d> ?y }`, i))
			for j := 0; j < n; j++ {
				p.Observe(q, Observation{Steps: 1})
			}
		}
		return p
	}
	want := mk().Snapshot()
	for i := 1; i < len(want); i++ {
		a, b := want[i-1], want[i]
		if a.Count < b.Count {
			t.Fatalf("snapshot not count-ordered at %d: %d before %d", i, a.Count, b.Count)
		}
		if a.Count == b.Count && a.Fingerprint >= b.Fingerprint {
			t.Fatalf("colliding counts not fingerprint-ordered at %d: %s before %s",
				i, a.Fingerprint, b.Fingerprint)
		}
	}
	// Map iteration order must not leak through: every rebuild of the
	// same profile snapshots identically.
	for trial := 0; trial < 20; trial++ {
		got := mk().Snapshot()
		for i := range want {
			if got[i].Fingerprint != want[i].Fingerprint {
				t.Fatalf("trial %d: position %d is %s, want %s",
					trial, i, got[i].Fingerprint, want[i].Fingerprint)
			}
		}
	}
}
