// Package workload profiles the query workload served by a processor:
// every query is fingerprinted by its variable-name-normalized (α-
// equivalent) canonical form, and per-fingerprint aggregates — counts,
// latency distribution, steps-to-first-answer, coverage at first answer,
// degraded and error counts — accumulate in a bounded concurrent store.
// Snapshots persist as NDJSON and serve pingd's /workload endpoint; a
// threshold-triggered slow-query log shares the same record shapes.
//
// Captured workloads are the raw material for workload-driven layout
// optimization (WORQ's reductions, WawPart's workload-aware
// partitioning): the fingerprint aggregates say which BGP shapes recur
// and which of them progressive answering serves poorly.
package workload

import (
	"fmt"
	"hash/fnv"

	"ping/internal/rdf"
	"ping/internal/sparql"
)

// renamer maps variable names to v0, v1, ... in first-occurrence order.
type renamer struct {
	names map[string]string
}

func (r *renamer) name(v string) string {
	if n, ok := r.names[v]; ok {
		return n
	}
	n := fmt.Sprintf("v%d", len(r.names))
	r.names[v] = n
	return n
}

func (r *renamer) term(t rdf.Term) rdf.Term {
	if t.IsVar() {
		t.Value = r.name(t.Value)
	}
	return t
}

func (r *renamer) expr(e sparql.Expr) sparql.Expr {
	switch x := e.(type) {
	case sparql.Comparison:
		x.Left = r.term(x.Left)
		x.Right = r.term(x.Right)
		return x
	case sparql.And:
		parts := make([]sparql.Expr, len(x.Parts))
		for i, p := range x.Parts {
			parts[i] = r.expr(p)
		}
		return sparql.And{Parts: parts}
	case sparql.Or:
		parts := make([]sparql.Expr, len(x.Parts))
		for i, p := range x.Parts {
			parts[i] = r.expr(p)
		}
		return sparql.Or{Parts: parts}
	case sparql.Not:
		return sparql.Not{Sub: r.expr(x.Sub)}
	default:
		// Unknown expression kinds keep their surface text; they simply
		// don't participate in α-normalization.
		return e
	}
}

// Canonical returns the query's variable-name-normalized surface text:
// every variable is renamed to v0, v1, ... in first-occurrence order
// (patterns, then paths, then filters, then the projection), so two
// queries that differ only in variable naming render identically.
// Pattern order is deliberately preserved — reordered BGPs are different
// plans and different workload entries.
func Canonical(q *sparql.Query) string {
	ren := &renamer{names: make(map[string]string)}
	cq := &sparql.Query{Distinct: q.Distinct, Limit: q.Limit}
	for _, p := range q.Patterns {
		cq.Patterns = append(cq.Patterns, sparql.TriplePattern{
			S: ren.term(p.S), P: ren.term(p.P), O: ren.term(p.O),
		})
	}
	for _, p := range q.Paths {
		cq.Paths = append(cq.Paths, sparql.PathPattern{
			S: ren.term(p.S), O: ren.term(p.O), Path: p.Path,
		})
	}
	for _, f := range q.Filters {
		cq.Filters = append(cq.Filters, ren.expr(f))
	}
	for _, v := range q.Vars {
		cq.Vars = append(cq.Vars, ren.name(v))
	}
	return cq.String()
}

// Fingerprint returns the 16-hex-digit FNV-64a hash of the query's
// canonical form — the aggregation key of the workload profiler.
func Fingerprint(q *sparql.Query) string {
	return FingerprintCanonical(Canonical(q))
}

// FingerprintCanonical hashes an already-canonicalized query text.
func FingerprintCanonical(canonical string) string {
	h := fnv.New64a()
	h.Write([]byte(canonical))
	return fmt.Sprintf("%016x", h.Sum64())
}
