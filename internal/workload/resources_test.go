package workload

import (
	"fmt"
	"testing"
	"time"

	"ping/internal/obs"
)

// TestAddProfileCPUCapsHostileCardinality: profile labels are
// attacker-influenced (a hostile client can vary query text freely), so
// the profile-CPU map must stop growing at 4x the fingerprint bound
// and count the overflow as dropped.
func TestAddProfileCPUCapsHostileCardinality(t *testing.T) {
	p := NewProfiler(Options{Metrics: obs.NewRegistry(), MaxFingerprints: 2})
	for i := 0; i < 20; i++ {
		p.AddProfileCPU(fmt.Sprintf("fp-%02d", i), time.Millisecond)
	}
	if got := len(p.profCPU); got != 8 {
		t.Errorf("profCPU grew to %d entries, want 4*max = 8", got)
	}
	if d := p.Dropped(); d != 12 {
		t.Errorf("Dropped() = %d, want 12 overflow credits", d)
	}
	// Known fingerprints keep accumulating even while the map is full.
	p.AddProfileCPU("fp-00", time.Millisecond)
	if got := p.profCPU["fp-00"]; got != 2*time.Millisecond {
		t.Errorf("fp-00 CPU = %v, want 2ms", got)
	}
	// Empty fingerprints and non-positive durations are ignored.
	p.AddProfileCPU("", time.Second)
	p.AddProfileCPU("fp-00", -time.Second)
	if got := p.profCPU["fp-00"]; got != 2*time.Millisecond {
		t.Errorf("fp-00 CPU after junk = %v, want unchanged 2ms", got)
	}
}

// TestEstimateCostPrefersProfileCPU: admission control wants per-run
// on-CPU cost. Profile-attributed CPU is the truth when present; the
// ledger's task seconds are the fallback; an unseen fingerprint costs
// zero (meaning "unknown — admit").
func TestEstimateCostPrefersProfileCPU(t *testing.T) {
	p := NewProfiler(Options{Metrics: obs.NewRegistry()})

	if got := p.EstimateCost("never-seen"); got != 0 {
		t.Errorf("unknown fingerprint cost = %v, want 0", got)
	}

	// Two observations with 300ms task time each → fallback mean 300ms.
	for i := 0; i < 2; i++ {
		p.ObserveFingerprint("fp-a", "q", "star", Observation{
			Latency: 10 * time.Millisecond, TaskSeconds: 0.3,
		})
	}
	if got := p.EstimateCost("fp-a"); got != 300*time.Millisecond {
		t.Errorf("task-seconds fallback = %v, want 300ms", got)
	}

	// Profile CPU lands: 100ms over those 2 runs → 50ms per run wins.
	p.AddProfileCPU("fp-a", 100*time.Millisecond)
	if got := p.EstimateCost("fp-a"); got != 50*time.Millisecond {
		t.Errorf("profile-attributed estimate = %v, want 50ms", got)
	}

	// Profile CPU without any observation still estimates zero: there is
	// no run count to divide by, and admission must not guess.
	p.AddProfileCPU("fp-b", time.Second)
	if got := p.EstimateCost("fp-b"); got != 0 {
		t.Errorf("profile-only fingerprint cost = %v, want 0", got)
	}
}

// TestTopByCostOrdering: /resources sorts by measured cost — profile
// CPU first, then ledger task seconds, then latency — not by latency
// like the default Snapshot order.
func TestTopByCostOrdering(t *testing.T) {
	p := NewProfiler(Options{Metrics: obs.NewRegistry()})
	obsv := func(fp string, lat time.Duration, task float64) {
		p.ObserveFingerprint(fp, "q "+fp, "star", Observation{Latency: lat, TaskSeconds: task})
	}
	// fp-slow has the worst latency but no measured cost; fp-cpu has
	// profile CPU; fp-task only task seconds.
	obsv("fp-slow", time.Second, 0)
	obsv("fp-task", 10*time.Millisecond, 0.5)
	obsv("fp-cpu", time.Millisecond, 0.1)
	p.AddProfileCPU("fp-cpu", 200*time.Millisecond)

	got := p.TopByCost(0)
	want := []string{"fp-cpu", "fp-task", "fp-slow"}
	if len(got) != len(want) {
		t.Fatalf("TopByCost returned %d rows, want %d", len(got), len(want))
	}
	for i, fp := range want {
		if got[i].Fingerprint != fp {
			t.Errorf("rank %d = %s, want %s (full: %v)", i, got[i].Fingerprint, fp,
				[]string{got[0].Fingerprint, got[1].Fingerprint, got[2].Fingerprint})
		}
	}
	if top := p.TopByCost(1); len(top) != 1 || top[0].Fingerprint != "fp-cpu" {
		t.Errorf("TopByCost(1) = %v", top)
	}
}
