package workload

import (
	"io"
	"time"

	"ping/internal/obs"
)

// ObservationFromEvent converts one wide query event back into the
// profiler's per-lineage observation, so a wide-event stream can be
// replayed into a Profiler offline (pingworkload -events) and produce
// the same aggregates the live server would have.
func ObservationFromEvent(ev obs.WideEvent) Observation {
	return Observation{
		Latency:               time.Duration(ev.LatencyMs * float64(time.Millisecond)),
		Steps:                 ev.Steps,
		Segments:              ev.Segments,
		StepsToFirstAnswer:    ev.StepsToFirstAnswer,
		CoverageAtFirstAnswer: ev.CoverageAtFirst,
		Coverage:              append([]float64(nil), ev.Coverage...),
		Answers:               ev.Answers,
		Epoch:                 ev.Epoch,
		Degraded:              ev.Degraded,
		Error:                 ev.Error != "",

		TaskSeconds:      ev.TaskMs / 1000,
		RowsLoaded:       ev.RowsLoaded,
		BytesDecoded:     ev.BytesDecoded,
		StorageBytesRead: ev.StorageBytesRead,
		CacheBytesPinned: ev.CacheBytesPinned,
		DictDecodes:      ev.DictDecodes,
		PeakRelationRows: ev.PeakRelationRows,
	}
}

// ReplayEvents folds a wide-event NDJSON stream into a fresh profiler
// and returns it with the number of events replayed.
func ReplayEvents(r io.Reader, opts Options) (*Profiler, int, error) {
	events, err := obs.ReadWideEvents(r)
	if err != nil {
		return nil, 0, err
	}
	p := NewProfiler(opts)
	for _, ev := range events {
		p.ObserveFingerprint(ev.Fingerprint, ev.Canonical, ev.Shape, ObservationFromEvent(ev))
	}
	return p, len(events), nil
}
