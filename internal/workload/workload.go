package workload

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"ping/internal/obs"
	"ping/internal/sparql"
)

// Options configures a Profiler.
type Options struct {
	// MaxFingerprints bounds how many distinct fingerprints the profiler
	// tracks (<=0: 512). Observations for fingerprints beyond the bound
	// are counted in workload_dropped_total but not aggregated, so a
	// high-cardinality workload cannot grow the store without limit.
	MaxFingerprints int
	// Metrics receives the workload_* series (nil: obs.Default).
	Metrics *obs.Registry
}

const defaultMaxFingerprints = 512

// Observation is one served query's outcome, as the caller saw it.
type Observation struct {
	// Latency is the query's total wall time.
	Latency time.Duration
	// Steps is how many progressive steps the run delivered.
	Steps int
	// Segments is how many run segments the query lineage took (1 = an
	// uninterrupted run; >1 = paused and resumed via a cursor). Zero is
	// treated as 1. A resumed lineage is observed ONCE, at completion,
	// with its latency summed across segments — never once per segment.
	Segments int
	// StepsToFirstAnswer is the 1-based step that delivered the first
	// answer (0: no answer was ever delivered).
	StepsToFirstAnswer int
	// CoverageAtFirstAnswer is the coverage of that step.
	CoverageAtFirstAnswer float64
	// Coverage is the per-step coverage curve of the run (optional; the
	// latest curve is kept for the dashboard sparkline).
	Coverage []float64
	// Answers is the final answer count.
	Answers int
	// Epoch is the layout snapshot the run was pinned to.
	Epoch uint64
	// Degraded marks runs that skipped unreadable sub-partitions.
	Degraded bool
	// Error marks runs that failed outright.
	Error bool

	// Resource-ledger fields (prof.Snapshot), zero when unmeasured.
	// TaskSeconds sums dataflow task wall time; RowsLoaded counts
	// materialized sub-partition rows; BytesDecoded counts cache-miss
	// decode output and StorageBytesRead raw dfs reads; CacheBytesPinned
	// and PeakRelationRows are the run's peaks; DictDecodes counts
	// ID→string decodes at result emission.
	TaskSeconds      float64
	RowsLoaded       int64
	BytesDecoded     int64
	StorageBytesRead int64
	CacheBytesPinned int64
	DictDecodes      int64
	PeakRelationRows int64
}

// aggregate is the mutable per-fingerprint state; the profiler's mutex
// guards it.
type aggregate struct {
	canonical   string
	shape       string
	count       int64
	errors      int64
	degraded    int64
	total       time.Duration
	min         time.Duration
	max         time.Duration
	steps       int64
	segments    int64
	toFirst     int64
	firstSeen   int64 // observations that delivered at least one answer
	covAtFirst  float64
	lastCov     []float64
	lastEpoch   uint64
	lastAnswers int

	// Resource totals (sums over observations; the two peak fields are
	// maxima).
	taskSeconds      float64
	rowsLoaded       int64
	bytesDecoded     int64
	storageBytes     int64
	cachePinnedPeak  int64
	dictDecodes      int64
	peakRelationRows int64

	queries *obs.Counter
	seconds *obs.Histogram
	errC    *obs.Counter
	degC    *obs.Counter
}

// Profiler fingerprints and aggregates every observed query. All methods
// are safe for concurrent use.
type Profiler struct {
	mu   sync.Mutex
	byFp map[string]*aggregate
	max  int

	// profCPU holds profile-attributed CPU per fingerprint, fed by
	// AddProfileCPU from parsed capture files. It is keyed independently
	// of byFp because profile samples can land before the query's first
	// observation; Snapshot joins the two at read time.
	profCPU map[string]time.Duration

	reg     *obs.Registry
	fpGauge *obs.Gauge
	dropped *obs.Counter
}

// NewProfiler returns an empty profiler recording into opts.Metrics.
func NewProfiler(opts Options) *Profiler {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default
	}
	max := opts.MaxFingerprints
	if max <= 0 {
		max = defaultMaxFingerprints
	}
	reg.Describe("workload_queries_total", "queries observed per fingerprint")
	reg.Describe("workload_query_seconds", "query latency per fingerprint")
	reg.Describe("workload_errors_total", "failed queries per fingerprint")
	reg.Describe("workload_degraded_total", "degraded queries per fingerprint")
	reg.Describe("workload_fingerprints", "distinct query fingerprints tracked")
	reg.Describe("workload_dropped_total", "observations dropped because the fingerprint store was full")
	return &Profiler{
		byFp:    make(map[string]*aggregate),
		profCPU: make(map[string]time.Duration),
		max:     max,
		reg:     reg,
		fpGauge: reg.Gauge("workload_fingerprints", nil),
		dropped: reg.Counter("workload_dropped_total", nil),
	}
}

// Observe folds one query outcome into the profiler and returns the
// query's fingerprint.
func (p *Profiler) Observe(q *sparql.Query, o Observation) string {
	canonical := Canonical(q)
	fp := FingerprintCanonical(canonical)
	p.ObserveFingerprint(fp, canonical, sparql.Classify(q).String(), o)
	return fp
}

// ObserveFingerprint is Observe for callers that already computed the
// fingerprint (pingd computes it once per request and reuses it for the
// slow-query log and the plan).
func (p *Profiler) ObserveFingerprint(fp, canonical, shape string, o Observation) {
	p.mu.Lock()
	agg := p.byFp[fp]
	if agg == nil {
		if len(p.byFp) >= p.max {
			p.mu.Unlock()
			p.dropped.Inc()
			return
		}
		agg = &aggregate{
			canonical: canonical,
			shape:     shape,
			min:       o.Latency,
			queries:   p.reg.Counter("workload_queries_total", obs.Labels{"fingerprint": fp, "shape": shape}),
			seconds:   p.reg.Histogram("workload_query_seconds", obs.TimeBuckets, obs.Labels{"fingerprint": fp}),
			errC:      p.reg.Counter("workload_errors_total", obs.Labels{"fingerprint": fp}),
			degC:      p.reg.Counter("workload_degraded_total", obs.Labels{"fingerprint": fp}),
		}
		p.byFp[fp] = agg
		p.fpGauge.Set(float64(len(p.byFp)))
	}
	agg.count++
	agg.total += o.Latency
	if o.Latency < agg.min {
		agg.min = o.Latency
	}
	if o.Latency > agg.max {
		agg.max = o.Latency
	}
	agg.steps += int64(o.Steps)
	if o.Segments > 0 {
		agg.segments += int64(o.Segments)
	} else {
		agg.segments++
	}
	if o.StepsToFirstAnswer > 0 {
		agg.firstSeen++
		agg.toFirst += int64(o.StepsToFirstAnswer)
		agg.covAtFirst += o.CoverageAtFirstAnswer
	}
	if len(o.Coverage) > 0 {
		agg.lastCov = append([]float64(nil), o.Coverage...)
	}
	agg.taskSeconds += o.TaskSeconds
	agg.rowsLoaded += o.RowsLoaded
	agg.bytesDecoded += o.BytesDecoded
	agg.storageBytes += o.StorageBytesRead
	if o.CacheBytesPinned > agg.cachePinnedPeak {
		agg.cachePinnedPeak = o.CacheBytesPinned
	}
	agg.dictDecodes += o.DictDecodes
	if o.PeakRelationRows > agg.peakRelationRows {
		agg.peakRelationRows = o.PeakRelationRows
	}
	agg.lastEpoch = o.Epoch
	agg.lastAnswers = o.Answers
	if o.Error {
		agg.errors++
	}
	if o.Degraded {
		agg.degraded++
	}
	queries, seconds, errC, degC := agg.queries, agg.seconds, agg.errC, agg.degC
	p.mu.Unlock()

	queries.Inc()
	seconds.Observe(o.Latency.Seconds())
	if o.Error {
		errC.Inc()
	}
	if o.Degraded {
		degC.Inc()
	}
}

// Dropped returns how many observations were discarded because the
// fingerprint store was full.
func (p *Profiler) Dropped() int64 { return p.dropped.Value() }

// AddProfileCPU credits profile-attributed CPU time to a fingerprint.
// The capturer calls this with each captured CPU profile's
// label-aggregated samples; /resources then reports exactly what a
// consumer re-parsing the profile files would compute. Fingerprints
// beyond 4x the store bound are dropped to keep hostile label
// cardinality from growing the map.
func (p *Profiler) AddProfileCPU(fp string, d time.Duration) {
	if fp == "" || d <= 0 {
		return
	}
	p.mu.Lock()
	if _, ok := p.profCPU[fp]; !ok && len(p.profCPU) >= 4*p.max {
		p.mu.Unlock()
		p.dropped.Inc()
		return
	}
	p.profCPU[fp] += d
	p.mu.Unlock()
}

// EstimateCost predicts one more run of this fingerprint's CPU cost,
// preferring profile-attributed CPU (actual on-CPU time) and falling
// back to the ledger's task seconds. Zero means "no measurement yet" —
// cost-based admission must admit unknown fingerprints.
func (p *Profiler) EstimateCost(fp string) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	agg := p.byFp[fp]
	if agg == nil || agg.count == 0 {
		return 0
	}
	if cpu := p.profCPU[fp]; cpu > 0 {
		return cpu / time.Duration(agg.count)
	}
	return time.Duration(agg.taskSeconds / float64(agg.count) * float64(time.Second))
}

// FingerprintStats is one fingerprint's aggregate, frozen for export.
type FingerprintStats struct {
	Fingerprint string  `json:"fingerprint"`
	Canonical   string  `json:"canonical"`
	Shape       string  `json:"shape"`
	Count       int64   `json:"count"`
	Errors      int64   `json:"errors,omitempty"`
	Degraded    int64   `json:"degraded,omitempty"`
	TotalMs     float64 `json:"total_ms"`
	MinMs       float64 `json:"min_ms"`
	MaxMs       float64 `json:"max_ms"`
	MeanMs      float64 `json:"mean_ms"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	// MeanSteps is the average number of progressive steps per run.
	MeanSteps float64 `json:"mean_steps,omitempty"`
	// MeanSegments is the average number of run segments per lineage
	// (1.0 = never paused; higher = budget-paused or disconnect-resumed).
	MeanSegments float64 `json:"mean_segments,omitempty"`
	// MeanStepsToFirst averages the step that produced the first answer,
	// over the runs that produced any.
	MeanStepsToFirst float64 `json:"mean_steps_to_first,omitempty"`
	// MeanCoverageAtFirst averages the coverage at that step.
	MeanCoverageAtFirst float64 `json:"mean_coverage_at_first,omitempty"`
	// Coverage is the latest run's per-step coverage curve.
	Coverage []float64 `json:"coverage,omitempty"`
	// LastEpoch and LastAnswers describe the latest run.
	LastEpoch   uint64 `json:"last_epoch"`
	LastAnswers int    `json:"last_answers"`
	// Resource attribution (/resources). ProfileCPUSeconds is CPU from
	// label-aggregated capture profiles; TaskSeconds is summed dataflow
	// task wall time from the per-query ledger. The byte/row counters
	// are lineage sums; CacheBytesPinned and PeakRelationRows are the
	// worst single run observed.
	ProfileCPUSeconds float64 `json:"profile_cpu_seconds,omitempty"`
	TaskSeconds       float64 `json:"task_seconds,omitempty"`
	RowsLoaded        int64   `json:"rows_loaded,omitempty"`
	BytesDecoded      int64   `json:"bytes_decoded,omitempty"`
	StorageBytesRead  int64   `json:"storage_bytes_read,omitempty"`
	CacheBytesPinned  int64   `json:"cache_bytes_pinned,omitempty"`
	DictDecodes       int64   `json:"dict_decodes,omitempty"`
	PeakRelationRows  int64   `json:"peak_relation_rows,omitempty"`
}

// Snapshot freezes every fingerprint's aggregate, sorted by total
// latency descending — the "what is this server spending its time on"
// ordering of the dashboard and the workload report.
func (p *Profiler) Snapshot() []FingerprintStats {
	p.mu.Lock()
	out := make([]FingerprintStats, 0, len(p.byFp))
	for fp, agg := range p.byFp {
		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		st := FingerprintStats{
			Fingerprint: fp,
			Canonical:   agg.canonical,
			Shape:       agg.shape,
			Count:       agg.count,
			Errors:      agg.errors,
			Degraded:    agg.degraded,
			TotalMs:     ms(agg.total),
			MinMs:       ms(agg.min),
			MaxMs:       ms(agg.max),
			P50Ms:       agg.seconds.Quantile(0.5) * 1000,
			P95Ms:       agg.seconds.Quantile(0.95) * 1000,
			P99Ms:       agg.seconds.Quantile(0.99) * 1000,
			Coverage:    append([]float64(nil), agg.lastCov...),
			LastEpoch:   agg.lastEpoch,
			LastAnswers: agg.lastAnswers,

			ProfileCPUSeconds: p.profCPU[fp].Seconds(),
			TaskSeconds:       agg.taskSeconds,
			RowsLoaded:        agg.rowsLoaded,
			BytesDecoded:      agg.bytesDecoded,
			StorageBytesRead:  agg.storageBytes,
			CacheBytesPinned:  agg.cachePinnedPeak,
			DictDecodes:       agg.dictDecodes,
			PeakRelationRows:  agg.peakRelationRows,
		}
		if agg.count > 0 {
			st.MeanMs = st.TotalMs / float64(agg.count)
			st.MeanSteps = float64(agg.steps) / float64(agg.count)
			st.MeanSegments = float64(agg.segments) / float64(agg.count)
		}
		if agg.firstSeen > 0 {
			st.MeanStepsToFirst = float64(agg.toFirst) / float64(agg.firstSeen)
			st.MeanCoverageAtFirst = agg.covAtFirst / float64(agg.firstSeen)
		}
		out = append(out, st)
	}
	p.mu.Unlock()
	// Fully deterministic order: total time desc, then count desc, then
	// fingerprint asc. The count tie-break matters for replayed NDJSON
	// workloads whose recorded latencies collide (often all zero), where
	// the advisor and /workload?top=N must pick the same hot set on every
	// run.
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalMs != out[j].TotalMs {
			return out[i].TotalMs > out[j].TotalMs
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// Top returns the first n snapshot entries (all of them when n <= 0).
func (p *Profiler) Top(n int) []FingerprintStats {
	snap := p.Snapshot()
	if n > 0 && n < len(snap) {
		snap = snap[:n]
	}
	return snap
}

// TopByCost returns up to n snapshot entries ordered by measured CPU
// cost: profile-attributed CPU seconds first, task seconds as the
// tie-break for fingerprints no profile sample hit, then total latency
// and fingerprint for determinism — the /resources "top consumers"
// ordering.
func (p *Profiler) TopByCost(n int) []FingerprintStats {
	snap := p.Snapshot()
	sort.Slice(snap, func(i, j int) bool {
		if snap[i].ProfileCPUSeconds != snap[j].ProfileCPUSeconds {
			return snap[i].ProfileCPUSeconds > snap[j].ProfileCPUSeconds
		}
		if snap[i].TaskSeconds != snap[j].TaskSeconds {
			return snap[i].TaskSeconds > snap[j].TaskSeconds
		}
		if snap[i].TotalMs != snap[j].TotalMs {
			return snap[i].TotalMs > snap[j].TotalMs
		}
		return snap[i].Fingerprint < snap[j].Fingerprint
	})
	if n > 0 && n < len(snap) {
		snap = snap[:n]
	}
	return snap
}

// WriteNDJSON writes the snapshot one JSON object per line — the
// persistence format of -workload-out and the input of pingworkload.
func (p *Profiler) WriteNDJSON(w io.Writer) error {
	return WriteNDJSON(w, p.Snapshot())
}

// WriteNDJSON writes fingerprint stats one JSON object per line.
func WriteNDJSON(w io.Writer, stats []FingerprintStats) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, st := range stats {
		if err := enc.Encode(st); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses a snapshot written by WriteNDJSON. Blank lines are
// skipped; any other malformed line is an error.
func ReadNDJSON(r io.Reader) ([]FingerprintStats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []FingerprintStats
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var st FingerprintStats
		if err := json.Unmarshal(line, &st); err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, sc.Err()
}

// SaveFile writes the snapshot to path via a temp file + rename, so a
// crash mid-write never leaves a truncated snapshot.
func (p *Profiler) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := p.WriteNDJSON(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
