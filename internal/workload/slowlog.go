package workload

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowQuery is one slow-query log record, written as a single NDJSON
// line when a query's latency crosses the log's threshold.
type SlowQuery struct {
	// Time is the RFC3339 completion timestamp (stamped by Observe).
	Time string `json:"time"`
	// Fingerprint and Canonical identify the workload entry.
	Fingerprint string `json:"fingerprint"`
	Canonical   string `json:"canonical,omitempty"`
	// Query is the original (pre-normalization) query text.
	Query string `json:"query,omitempty"`
	// Epoch is the layout snapshot the run was pinned to.
	Epoch uint64 `json:"epoch"`
	// LatencyMs is the query's total wall time.
	LatencyMs float64 `json:"latency_ms"`
	// ThresholdMs is the log's threshold (stamped by Observe).
	ThresholdMs float64 `json:"threshold_ms"`
	// Plan summarizes the run's plan: strategy, step and sub-partition
	// counts, deepest level, incremental mode.
	Plan *PlanSummary `json:"plan,omitempty"`
	// StepMs holds the per-step wall times of the run.
	StepMs []float64 `json:"step_ms,omitempty"`
	// Answers is the final answer count.
	Answers int `json:"answers"`
	// Degraded marks runs that skipped unreadable sub-partitions.
	Degraded bool `json:"degraded,omitempty"`
	// Error carries the failure message of runs that errored.
	Error string `json:"error,omitempty"`
}

// PlanSummary is the compact plan digest carried by slow-query records.
type PlanSummary struct {
	Strategy    string `json:"strategy"`
	Steps       int    `json:"steps"`
	SubParts    int    `json:"subparts"`
	MaxLevel    int    `json:"max_level"`
	Incremental bool   `json:"incremental"`
}

// SlowLog writes threshold-triggered SlowQuery records as NDJSON. A nil
// *SlowLog never logs, so call sites need no guards.
type SlowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
	emitted   int64
}

// NewSlowLog logs queries slower than threshold to w. A non-positive
// threshold logs every query.
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	return &SlowLog{w: w, threshold: threshold}
}

// Observe writes one record iff latency >= the threshold, stamping the
// record's Time, LatencyMs, and ThresholdMs. It reports whether a record
// was written.
func (l *SlowLog) Observe(rec SlowQuery, latency time.Duration) bool {
	if l == nil || latency < l.threshold {
		return false
	}
	rec.Time = time.Now().UTC().Format(time.RFC3339Nano)
	rec.LatencyMs = float64(latency.Microseconds()) / 1000
	rec.ThresholdMs = float64(l.threshold.Microseconds()) / 1000
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := json.NewEncoder(l.w).Encode(rec); err != nil {
		return false
	}
	l.emitted++
	return true
}

// Emitted returns how many records have been written.
func (l *SlowLog) Emitted() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.emitted
}
