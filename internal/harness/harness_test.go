package harness

import (
	"strings"
	"testing"

	"ping/internal/ping"
)

// smallSuite runs the experiments at reduced scale so tests stay fast.
func smallSuite() *Suite {
	return NewSuite(2, 2, 0.15, 42)
}

func TestDatasetCache(t *testing.T) {
	s := smallSuite()
	a, err := s.Dataset("uniprot")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Dataset("uniprot")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("dataset not cached")
	}
	if _, err := s.Dataset("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
	if a.RawBytes <= 0 || a.NTriplesBytes <= a.RawBytes {
		t.Errorf("size baselines: raw=%d ntriples=%d", a.RawBytes, a.NTriplesBytes)
	}
}

func TestTable1Report(t *testing.T) {
	s := smallSuite()
	r, err := s.Table1([]string{"uniprot", "lubm"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"uniprot", "lubm", "2.1M", "levels"} {
		if !strings.Contains(r.Body+r.String(), want) {
			t.Errorf("table1 missing %q:\n%s", want, r.Body)
		}
	}
}

func TestFig5Report(t *testing.T) {
	s := smallSuite()
	r, err := s.Fig5([]string{"uniprot"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Body, "L1") || !strings.Contains(r.Body, "L5") {
		t.Errorf("fig5 missing levels:\n%s", r.Body)
	}
}

func TestFig6Report(t *testing.T) {
	s := smallSuite()
	r, err := s.Fig6([]string{"uniprot"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"star", "chain", "complex", "coverage", "slice"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("fig6 missing %q:\n%s", want, r.Body)
		}
	}
}

func TestFig7Report(t *testing.T) {
	s := smallSuite()
	r, err := s.Fig7([]string{"uniprot"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PING", "S2RDF", "WORQ"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("fig7 missing %q:\n%s", want, r.Body)
		}
	}
}

func TestFig8AndTable2Reports(t *testing.T) {
	s := NewSuite(2, 2, 0.5, 42) // deep hierarchies need more instances
	r8, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r8.Body, "Q55") {
		t.Errorf("fig8 missing Q55:\n%s", r8.Body)
	}
	r2, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rdf:type", "foundationPlace", "developer", "California"} {
		if !strings.Contains(r2.Body, want) {
			t.Errorf("table2 missing %q:\n%s", want, r2.Body)
		}
	}
}

func TestFig9Report(t *testing.T) {
	s := smallSuite()
	r, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"YAGO", "Shop100", "2 of 6", "6 of 6"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("fig9 missing %q:\n%s", want, r.Body)
		}
	}
}

func TestAblationReport(t *testing.T) {
	s := smallSuite()
	r, err := s.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"baseline", "no sub-partition pruning", "largest level first"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("ablation missing %q:\n%s", want, r.Body)
		}
	}
}

func TestScalingAndExtensionsReports(t *testing.T) {
	s := NewSuite(2, 1, 0.1, 42)
	r, err := s.Scaling()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ns/triple", "0.25x", "2.00x"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("scaling missing %q:\n%s", want, r.Body)
		}
	}
	re, err := s.Extensions()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Incremental maintenance", "Bloom-filter", "knows+", "TPF smart client"} {
		if !strings.Contains(re.Body, want) {
			t.Errorf("extensions missing %q", want)
		}
	}
}

func TestRunDispatcher(t *testing.T) {
	s := smallSuite()
	r, err := s.Run("fig5", []string{"uniprot"})
	if err != nil || r.ID != "fig5" {
		t.Errorf("Run(fig5) = %v, %v", r, err)
	}
	if _, err := s.Run("nope", nil); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestMarkdownRendering(t *testing.T) {
	s := smallSuite()
	r, err := s.Run("fig5", []string{"uniprot"})
	if err != nil {
		t.Fatal(err)
	}
	md := Markdown(s.Describe(), []*Report{r})
	for _, want := range []string{"# EXPERIMENTS", "## fig5", "**Paper:**", "```"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

func TestAggregatePQACarryForward(t *testing.T) {
	// A short run's final values must persist in later aggregate steps.
	s := smallSuite()
	bd, err := s.Dataset("uniprot")
	if err != nil {
		t.Fatal(err)
	}
	proc := s.Processor(bd, ping.Options{})
	wl := s.Workload(bd)
	if len(wl.Star) == 0 {
		t.Skip("no star queries generated at this scale")
	}
	var results []*ping.Result
	for _, q := range wl.Star {
		res, err := proc.PQA(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Steps) > 0 {
			results = append(results, res)
		}
	}
	c := aggregatePQA(results)
	for i := 1; i < len(c.Rows); i++ {
		if c.Rows[i] < c.Rows[i-1] {
			t.Errorf("aggregated rows decreased at step %d", i+1)
		}
		if c.Coverage[i] < c.Coverage[i-1]-1e-9 {
			t.Errorf("aggregated coverage decreased at step %d", i+1)
		}
	}
	if len(c.Coverage) > 0 && c.Coverage[len(c.Coverage)-1] < 0.999 {
		t.Errorf("final aggregated coverage %.3f < 1", c.Coverage[len(c.Coverage)-1])
	}
	if c.Queries != len(results) {
		t.Errorf("Queries = %d, want %d", c.Queries, len(results))
	}
}

func TestEmptyAggregate(t *testing.T) {
	c := aggregatePQA(nil)
	if c.Queries != 0 || len(c.TimeMS) != 0 {
		t.Errorf("empty aggregate: %+v", c)
	}
}
