package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"ping/internal/gmark"
	"ping/internal/hpart"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// LevelBinnedQueries reproduces the Fig. 9 Shop-100 methodology: generate
// random star queries with instance constants drawn from the data, measure
// through the indexes how many hierarchy levels each query accesses, and
// keep the first perBin queries per level count (the paper: "we use the
// random query generator to select the first five queries targeting a
// specific number of levels from the 2-6 partitions").
//
// Queries are grounded in an existing subject, so each has at least one
// answer. Constant objects let PING's OI index confine evaluation to few
// levels, while the vertical-partitioning baselines still scan whole
// property tables — the source of the order-of-magnitude gaps the paper
// reports for low level counts.
func LevelBinnedQueries(lay *hpart.Layout, data *gmark.Dataset, class string, patterns, perBin int, seed int64) map[int][]*sparql.Query {
	rng := rand.New(rand.NewSource(seed))
	dict := data.Graph.Dict
	typeID := dict.LookupIRI(rdf.RDFType)
	instances := data.InstancesByClass[class]
	if len(instances) == 0 || patterns < 1 {
		return nil
	}

	// Group the class instances' triples by subject.
	instSet := make(map[rdf.ID]bool, len(instances))
	for _, iri := range instances {
		if id := dict.LookupIRI(iri); id != rdf.NoID {
			instSet[id] = true
		}
	}
	bySub := make(map[rdf.ID][]rdf.Triple)
	for _, t := range data.Graph.Triples {
		if instSet[t.S] {
			bySub[t.S] = append(bySub[t.S], t)
		}
	}
	// Stratify grounding subjects by their SI level, so deep (small)
	// levels contribute queries as often as the populous shallow ones —
	// otherwise nearly all sampled queries would pin the heavy top
	// levels and the level-count bins would carry no data-access signal.
	byLevel := make(map[int][]rdf.ID)
	var levels []int
	for s := range bySub {
		l := lay.SI[s]
		if len(byLevel[l]) == 0 {
			levels = append(levels, l)
		}
		byLevel[l] = append(byLevel[l], s)
	}
	if len(levels) == 0 {
		return nil
	}

	maxK := lay.NumLevels
	bins := make(map[int][]*sparql.Query)
	full := func() bool {
		for k := 2; k <= maxK; k++ {
			if len(bins[k]) < perBin {
				return false
			}
		}
		return true
	}

	for attempts := 0; attempts < 50_000 && !full(); attempts++ {
		stratum := byLevel[levels[rng.Intn(len(levels))]]
		subj := stratum[rng.Intn(len(stratum))]
		triples := bySub[subj]
		if len(triples) < patterns {
			continue
		}
		perm := rng.Perm(len(triples))
		var b strings.Builder
		b.WriteString("SELECT * WHERE {\n")
		var union hpart.LevelSet
		seenProp := make(map[rdf.ID]bool, patterns)
		emitted := 0
		for _, ti := range perm {
			if emitted == patterns {
				break
			}
			t := triples[ti]
			// rdf:type spans every class at every level; including it
			// drowns the level signal for all systems alike.
			if seenProp[t.P] || t.P == typeID {
				continue
			}
			seenProp[t.P] = true
			pLevels := lay.PropertyLevels(t.P)
			if rng.Float64() < 0.85 {
				// Constant object: the pattern accesses VP ∩ OI levels.
				union = union.Union(pLevels.Intersect(lay.ObjectLevels(t.O)))
				fmt.Fprintf(&b, "  ?x %s %s .\n", dict.TermString(t.P), dict.TermString(t.O))
			} else {
				// Variable object: the pattern accesses all VP levels.
				union = union.Union(pLevels)
				fmt.Fprintf(&b, "  ?x %s ?o%d .\n", dict.TermString(t.P), emitted)
			}
			emitted++
		}
		if emitted < patterns {
			continue
		}
		b.WriteString("}")
		k := union.Count()
		if k < 2 || k > maxK || len(bins[k]) >= perBin {
			continue
		}
		q, err := sparql.Parse(b.String())
		if err != nil {
			continue
		}
		bins[k] = append(bins[k], q)
	}
	return bins
}

// binnedShopQueries builds the Fig. 9 Shop-100 workload over a built
// dataset, keyed by accessed level count 2..NumLevels.
func (s *Suite) binnedShopQueries(b *BuiltDataset, perBin int) map[int][]*sparql.Query {
	// Ground queries in the User class: its chain defines all six levels,
	// so its properties span widely and constants genuinely prune.
	return LevelBinnedQueries(b.Layout, b.Data, "User", 2, perBin, s.Seed+100)
}
