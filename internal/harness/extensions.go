package harness

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"ping/internal/baseline/tpf"
	"ping/internal/hpart"
	"ping/internal/ping"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// Extensions measures the three §6.2 future-work features this repository
// implements beyond the paper: incremental partition maintenance,
// Bloom-filter level pruning, and progressive property-path (recursive)
// queries.
func (s *Suite) Extensions() (*Report, error) {
	var b strings.Builder

	if err := s.extIncremental(&b); err != nil {
		return nil, err
	}
	if err := s.extBloomPruning(&b); err != nil {
		return nil, err
	}
	if err := s.extPaths(&b); err != nil {
		return nil, err
	}
	if err := s.extTPF(&b); err != nil {
		return nil, err
	}

	return &Report{
		ID:    "extensions",
		Title: "§6.2 future-work features: incremental updates, Bloom pruning, recursive paths",
		PaperClaim: "(Beyond the paper.) §6.1/6.2 call for an incremental update algorithm (hard when new " +
			"levels appear), Bloom filters to identify levels with relevant answers, and navigational " +
			"queries with recursion evaluated across the impacted levels.",
		Body: b.String(),
	}, nil
}

// extIncremental compares incremental maintenance against full
// repartitioning for growing update batches.
func (s *Suite) extIncremental(b *strings.Builder) error {
	bd, err := s.Dataset("uniprot")
	if err != nil {
		return err
	}
	g := bd.Data.Graph
	schema := bd.Data.Schema
	fmt.Fprintf(b, "Incremental maintenance vs full repartition (uniprot, %d triples):\n", g.Len())
	w := tabwriter.NewWriter(b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "update kind\tbatch\tincremental\tfull repartition\tspeedup")

	// Benign updates: new subjects whose CS already exists in the
	// hierarchy ({occursIn, hasKeyword} = the level-1 protein CS). The
	// paper calls this case trivial; no level moves.
	benign := func(i int) []rdf.Triple {
		s := g.Dict.EncodeIRI(fmt.Sprintf("http://upd.example.org/s%d", i))
		return []rdf.Triple{
			{S: s, P: g.Dict.EncodeIRI(schema.PropertyIRI("occursIn")),
				O: g.Dict.EncodeIRI(fmt.Sprintf("http://upd.example.org/org%d", i%40))},
			{S: s, P: g.Dict.EncodeIRI(schema.PropertyIRI("hasKeyword")),
				O: g.Dict.EncodeIRI(fmt.Sprintf("http://upd.example.org/kw%d", i%80))},
		}
	}
	// Reshaping update: one subject whose CS {occursIn} is a strict
	// subset of every protein CS — all existing levels renumber and every
	// protein's rows move (the paper's "complicated" case).
	reshape := func(i int) []rdf.Triple {
		return []rdf.Triple{{
			S: g.Dict.EncodeIRI(fmt.Sprintf("http://upd.example.org/r%d", i)),
			P: g.Dict.EncodeIRI(schema.PropertyIRI("occursIn")),
			O: g.Dict.EncodeIRI("http://upd.example.org/org0"),
		}}
	}

	run := func(kind string, batch int, mk func(int) []rdf.Triple) error {
		lay, err := hpart.Partition(g, hpart.Options{})
		if err != nil {
			return err
		}
		m, err := hpart.NewMaintainer(lay)
		if err != nil {
			return err
		}
		var add []rdf.Triple
		for i := 0; i < batch; i++ {
			add = append(add, mk(i)...)
		}
		t0 := time.Now()
		if err := m.AddTriples(add); err != nil {
			return err
		}
		incr := time.Since(t0)

		g2 := g.Clone()
		for _, t := range add {
			g2.AddID(t)
		}
		g2.Dedup()
		t0 = time.Now()
		if _, err := hpart.Partition(g2, hpart.Options{}); err != nil {
			return err
		}
		full := time.Since(t0)
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%.1fx\n", kind, len(add), fmtDuration(incr),
			fmtDuration(full), float64(full)/float64(incr))
		return nil
	}
	for _, batch := range []int{10, 100, 1000} {
		if err := run("existing CS (trivial)", batch, benign); err != nil {
			return err
		}
	}
	if err := run("new subset CS (levels renumber)", 1, reshape); err != nil {
		return err
	}
	w.Flush()
	b.WriteByte('\n')
	return nil
}

// extBloomPruning measures the data-access effect of sub-partition Bloom
// filters on the constant-rich Fig. 9 workload.
func (s *Suite) extBloomPruning(b *strings.Builder) error {
	bd, err := s.Dataset("shop")
	if err != nil {
		return err
	}
	if !bd.Layout.HasBlooms() {
		if err := bd.Layout.BuildBlooms(); err != nil {
			return err
		}
	}
	bins := LevelBinnedQueries(bd.Layout, bd.Data, "User", 2, s.PerBucket, s.Seed+200)
	plain := s.Processor(bd, ping.Options{})
	pruned := s.Processor(bd, ping.Options{UseBloomPruning: true})

	var rowsPlain, rowsPruned int64
	var timePlain, timePruned time.Duration
	queries := 0
	for _, qs := range bins {
		for _, q := range qs {
			t0 := time.Now()
			_, st1, err := plain.EQA(q)
			if err != nil {
				return err
			}
			timePlain += time.Since(t0)
			t0 = time.Now()
			_, st2, err := pruned.EQA(q)
			if err != nil {
				return err
			}
			timePruned += time.Since(t0)
			rowsPlain += st1.InputRows
			rowsPruned += st2.InputRows
			queries++
		}
	}
	fmt.Fprintf(b, "Bloom-filter level pruning (shop, %d constant-rich queries):\n", queries)
	w := tabwriter.NewWriter(b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "configuration\tavg rows loaded\tavg time")
	if queries > 0 {
		fmt.Fprintf(w, "SI/OI indexes only\t%d\t%s\n",
			rowsPlain/int64(queries), fmtDuration(timePlain/time.Duration(queries)))
		fmt.Fprintf(w, "+ sub-partition blooms\t%d\t%s\n",
			rowsPruned/int64(queries), fmtDuration(timePruned/time.Duration(queries)))
	}
	w.Flush()
	b.WriteByte('\n')
	return nil
}

// extPaths runs a recursive reachability query progressively on the
// Social dataset (knows+ chains).
func (s *Suite) extPaths(b *strings.Builder) error {
	bd, err := s.Dataset("social")
	if err != nil {
		return err
	}
	knows := bd.Data.Schema.PropertyIRI("knows")
	// Start from a person that knows someone.
	var start string
	knowsID := bd.Data.Graph.Dict.LookupIRI(knows)
	for _, t := range bd.Data.Graph.Triples {
		if t.P == knowsID {
			start = bd.Data.Graph.Dict.Term(t.S).Value
			break
		}
	}
	if start == "" {
		return fmt.Errorf("harness: no knows edges in social dataset")
	}
	q := sparql.MustParse(fmt.Sprintf(`SELECT * WHERE { <%s> <%s>+ ?y }`, start, knows))
	proc := s.Processor(bd, ping.Options{})
	res, err := proc.PQA(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(b, "Progressive recursive path (social): <...%s> knows+ ?y\n", shortIRI(start))
	w := tabwriter.NewWriter(b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "slice\tmax level\treachable\trows loaded\ttime(cum)")
	for _, st := range res.Steps {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%s\n",
			st.Step, st.MaxLevel, st.Answers.Card(), st.RowsLoadedCum, fmtDuration(st.ElapsedCum))
	}
	w.Flush()
	fmt.Fprintf(b, "exact closure: %d persons reachable\n", res.Final.Card())
	return nil
}

// extTPF contrasts PING's serverless EQA with a restricted SPARQL server
// (Triple Pattern Fragments) driven by a smart client — the comparison
// §6.2 proposes. A simulated per-request latency models the HTTP round
// trip; the interesting columns are the request count and the triples
// shipped to the client.
func (s *Suite) extTPF(b *strings.Builder) error {
	bd, err := s.Dataset("shop")
	if err != nil {
		return err
	}
	wl := s.Workload(bd)
	queries := append(append([]*sparql.Query(nil), wl.Star...), wl.Chain...)

	const latency = 200 * time.Microsecond
	srv := tpf.NewServer(bd.Data.Graph, tpf.PageSize)
	srv.Latency = latency
	client := tpf.NewClient(srv)
	proc := s.Processor(bd, ping.Options{})

	var pingTime, tpfTime time.Duration
	var pingRows, tpfRows, tpfRequests int64
	ran := 0
	for _, q := range queries {
		t0 := time.Now()
		relP, stP, err := proc.EQA(q)
		if err != nil {
			return err
		}
		pingTime += time.Since(t0)
		pingRows += stP.InputRows

		t0 = time.Now()
		relT, stT, err := client.Query(q)
		if err != nil {
			return err
		}
		tpfTime += time.Since(t0)
		tpfRows += stT.InputRows
		tpfRequests += int64(stT.Joins) // request count (see tpf docs)
		if relT.Distinct().Card() != relP.Card() {
			return fmt.Errorf("harness: TPF answers diverge on %s", q)
		}
		ran++
	}
	fmt.Fprintf(b, "\nRestricted server (TPF + smart client, %v/request) vs PING (shop, %d queries):\n",
		latency, ran)
	w := tabwriter.NewWriter(b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tavg time\tavg triples shipped/loaded\tavg server requests")
	if ran > 0 {
		fmt.Fprintf(w, "TPF smart client\t%s\t%d\t%d\n",
			fmtDuration(tpfTime/time.Duration(ran)), tpfRows/int64(ran), tpfRequests/int64(ran))
		fmt.Fprintf(w, "PING EQA\t%s\t%d\t0 (no client-side joins)\n",
			fmtDuration(pingTime/time.Duration(ran)), pingRows/int64(ran))
	}
	w.Flush()
	return nil
}

func shortIRI(iri string) string {
	if i := strings.LastIndexByte(iri, '/'); i >= 0 {
		return iri[i+1:]
	}
	return iri
}
