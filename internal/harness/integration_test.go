package harness

import (
	"bytes"
	"testing"

	"ping/internal/dfs"
	"ping/internal/engine"
	"ping/internal/gmark"
	"ping/internal/hpart"
	"ping/internal/ping"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// TestFullPipelineOnDisk exercises the complete production path the CLI
// tools use: generate → serialize to N-Triples → parse back → partition
// into an on-disk DFS → save dict + manifest → reopen cold → query, and
// checks the answers against the oracle on the original graph.
func TestFullPipelineOnDisk(t *testing.T) {
	schema := gmark.Uniprot()
	data := schema.Generate(0.1, 99)

	// Serialize and re-parse (the genrdf → pingload hop).
	var buf bytes.Buffer
	if _, err := rdf.WriteNTriples(&buf, data.Graph); err != nil {
		t.Fatal(err)
	}
	g, err := rdf.ParseNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g.Dedup()
	if g.Len() != data.Graph.Len() {
		t.Fatalf("re-parsed %d triples, generated %d", g.Len(), data.Graph.Len())
	}

	// Partition into an on-disk store and persist everything.
	dir := t.TempDir()
	fs, err := dfs.NewOnDisk(dir, dfs.Config{DataNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := hpart.Partition(g, hpart.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := lay.SaveDict(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveManifest(); err != nil {
		t.Fatal(err)
	}

	// Reopen cold (the pingquery hop).
	fs2, err := dfs.OpenOnDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	lay2, err := hpart.Load(fs2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lay2.NumLevels != lay.NumLevels {
		t.Fatalf("reopened store has %d levels, want %d", lay2.NumLevels, lay.NumLevels)
	}

	proc := ping.NewProcessor(lay2, ping.Options{})
	q := sparql.MustParse(`SELECT * WHERE {
		?x <` + schema.PropertyIRI("occursIn") + `> ?o .
		?x <` + schema.PropertyIRI("hasKeyword") + `> ?k .
	}`)
	res, err := proc.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle runs on the original graph; the reopened store has its own
	// dictionary, so compare decoded term strings.
	want := engine.Naive(g, q).Distinct()
	if res.Final.Card() != want.Card() {
		t.Fatalf("cold-store PQA returned %d answers, oracle %d", res.Final.Card(), want.Card())
	}
	got := stringSet(lay2.Dict, res.Final)
	exp := stringSet(g.Dict, want)
	for key := range exp {
		if !got[key] {
			t.Fatalf("missing answer %q after cold reopen", key)
		}
	}
	// Every step must be monotone even through serialization.
	prev := 0
	for _, st := range res.Steps {
		if st.Answers.Card() < prev {
			t.Fatal("answers shrank across slices on reopened store")
		}
		prev = st.Answers.Card()
	}
}

func stringSet(d *rdf.Dict, rel *engine.Relation) map[string]bool {
	out := make(map[string]bool, rel.Card())
	for _, row := range rel.Rows {
		key := ""
		for _, id := range row {
			key += d.TermString(id) + "\x00"
		}
		out[key] = true
	}
	return out
}
