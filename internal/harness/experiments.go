package harness

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"ping/internal/gmark"
	"ping/internal/ping"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// Report is the rendered outcome of one experiment.
type Report struct {
	// ID is the paper artifact identifier (table1, fig5, ...).
	ID string
	// Title describes the artifact.
	Title string
	// PaperClaim summarizes the shape the paper reports, against which
	// the measured body is compared.
	PaperClaim string
	// Body is the measured result as a text table.
	Body string
}

// String renders the report for terminal output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	fmt.Fprintf(&b, "Paper: %s\n\n", r.PaperClaim)
	b.WriteString(r.Body)
	return b.String()
}

// AllDatasetNames lists the Table 1 datasets in paper order.
var AllDatasetNames = []string{"uniprot", "shop", "shop100", "social", "lubm", "yago", "dbpedia"}

// Table1 reproduces Table 1: dataset and query-workload characteristics.
func (s *Suite) Table1(datasets []string) (*Report, error) {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "dataset\tpaper size\tpaper triples\tours triples\tours size\tlevels\tstar\tchain\tcomplex")
	for _, name := range datasets {
		bd, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		cfg := gmark.StandardWorkloadConfig(name, s.PerBucket)
		chain := fmt.Sprintf("%d-%d", cfg.ChainMin, cfg.ChainMax)
		if cfg.Chain == 0 {
			chain = "0"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%s\t%d\t%d-%d\t%s\t%d-%d\n",
			name, bd.Spec.PaperSize, bd.Spec.PaperTriples,
			bd.Data.Graph.Len(), fmtBytes(bd.NTriplesBytes),
			bd.Layout.NumLevels,
			cfg.StarMin, cfg.StarMax, chain, cfg.ComplexMin, cfg.ComplexMax)
	}
	w.Flush()
	return &Report{
		ID:    "table1",
		Title: "Dataset & query workload characteristics",
		PaperClaim: "7 dataset configurations from 2.1M to 1B triples; workloads of star/chain/complex " +
			"BGPs with per-dataset triple-pattern ranges (e.g. YAGO has no plain chains).",
		Body: b.String(),
	}, nil
}

// Fig5 reproduces Fig. 5: the distribution of triples across hierarchy
// levels for every dataset.
func (s *Suite) Fig5(datasets []string) (*Report, error) {
	var b strings.Builder
	for _, name := range datasets {
		bd, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%s (%d levels, %d triples):\n", name, bd.Layout.NumLevels, bd.Layout.TotalTriples())
		total := float64(bd.Layout.TotalTriples())
		for i, n := range bd.Layout.LevelTriples {
			bar := strings.Repeat("#", int(50*float64(n)/total)+1)
			fmt.Fprintf(&b, "  L%-2d %9d (%5.1f%%) %s\n", i+1, n, 100*float64(n)/total, bar)
		}
		b.WriteByte('\n')
	}
	return &Report{
		ID:    "fig5",
		Title: "Data distribution across hierarchy partitioning levels",
		PaperClaim: "Synthetic datasets have 5-7 levels, Social 11, YAGO 15, DBpedia 17; LUBM only 2. " +
			"Triples spread over levels with great, dataset-specific variability.",
		Body: b.String(),
	}, nil
}

// pqaCurve aggregates PQA runs into per-slice averages with carry-forward
// for queries that finish early (their final value persists).
type pqaCurve struct {
	TimeMS, Rows, Coverage []float64
	Queries                int
}

func aggregatePQA(results []*ping.Result) pqaCurve {
	maxSteps := 0
	for _, r := range results {
		if len(r.Steps) > maxSteps {
			maxSteps = len(r.Steps)
		}
	}
	c := pqaCurve{
		TimeMS:   make([]float64, maxSteps),
		Rows:     make([]float64, maxSteps),
		Coverage: make([]float64, maxSteps),
		Queries:  len(results),
	}
	if len(results) == 0 {
		return c
	}
	for step := 0; step < maxSteps; step++ {
		for _, r := range results {
			i := step
			if i >= len(r.Steps) {
				i = len(r.Steps) - 1
			}
			st := r.Steps[i]
			c.TimeMS[step] += float64(st.ElapsedCum.Microseconds()) / 1000
			c.Rows[step] += float64(st.RowsLoadedCum)
			c.Coverage[step] += r.Coverage(i)
		}
		n := float64(len(results))
		c.TimeMS[step] /= n
		c.Rows[step] /= n
		c.Coverage[step] /= n
	}
	return c
}

// Fig6 reproduces Fig. 6: PQA runtime, loaded rows, and coverage per
// slice, for each dataset and query shape, plus runtime as a function of
// loaded data.
func (s *Suite) Fig6(datasets []string) (*Report, error) {
	var b strings.Builder
	for _, name := range datasets {
		bd, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		wl := s.Workload(bd)
		proc := s.Processor(bd, ping.Options{})
		fmt.Fprintf(&b, "%s:\n", name)
		buckets := []struct {
			shape   string
			queries []*sparql.Query
		}{{"star", wl.Star}, {"chain", wl.Chain}, {"complex", wl.Complex}}
		for _, bucket := range buckets {
			if len(bucket.queries) == 0 {
				continue
			}
			var results []*ping.Result
			for _, q := range bucket.queries {
				res, err := proc.PQA(q)
				if err != nil {
					return nil, err
				}
				if len(res.Steps) > 0 {
					results = append(results, res)
				}
			}
			curve := aggregatePQA(results)
			fmt.Fprintf(&b, "  %-8s (%d queries)\n", bucket.shape, curve.Queries)
			w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
			fmt.Fprintln(w, "    slice\ttime(cum)\trows loaded(cum)\tcoverage")
			for i := range curve.TimeMS {
				fmt.Fprintf(w, "    %d\t%.1fms\t%.0f\t%.1f%%\n",
					i+1, curve.TimeMS[i], curve.Rows[i], 100*curve.Coverage[i])
			}
			w.Flush()
		}
		b.WriteByte('\n')
	}
	return &Report{
		ID:    "fig6",
		Title: "PQA runtime, loaded rows and coverage vs slices visited",
		PaperClaim: "Runtime and loaded rows grow with visited slices and coverage reaches 100% before " +
			"the last slice on most datasets (Shop at 5/6, Uniprot at 4/5, Social at 10/11); LUBM needs " +
			"both of its 2 levels; DBpedia needs almost all 17; runtime grows roughly linearly with loaded data.",
		Body: b.String(),
	}, nil
}

// Fig7 reproduces Fig. 7: preprocessing time and reduction factor for
// PING vs S2RDF vs WORQ.
func (s *Suite) Fig7(datasets []string) (*Report, error) {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "dataset\tPING prep\tS2RDF prep\tWORQ prep\tPING RF\tS2RDF RF\tWORQ RF")
	for _, name := range datasets {
		bd, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		wl := s.Workload(bd)
		var queries []*sparql.Query
		for _, lq := range wl.All() {
			queries = append(queries, lq.Query)
		}
		pingSys, s2Sys, wqSys, err := s.Systems(bd, queries)
		if err != nil {
			return nil, err
		}
		// Reduction factors follow each system's published storage
		// policy, all relative to the raw N-Triples text:
		//   PING  stores (s, o) text columns — predicates are implied by
		//         file names (§3.8), so the factor sits below 1;
		//   S2RDF stores the same text columns for VP *plus* every ExtVP
		//         semi-join table, duplicating rows;
		//   WORQ  stores dictionary-compressed integer tables + Bloom
		//         filters + the lexicon needed to decode them.
		raw := float64(bd.NTriplesBytes)
		rfPING := float64(bd.SOLexBytes) / raw
		avgRow := float64(bd.SOLexBytes) / float64(bd.Layout.TotalTriples())
		var rfS2 float64
		if st, ok := s2Sys.(interface{ StoredTableRows() int64 }); ok {
			rfS2 = avgRow * float64(st.StoredTableRows()) / raw
		}
		rfWQ := (float64(wqSys.StoredBytes()) + float64(bd.DictLexBytes)) / raw
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.2f\t%.2f\t%.2f\n",
			name,
			fmtDuration(pingSys.PreprocessTime()),
			fmtDuration(s2Sys.PreprocessTime()),
			fmtDuration(wqSys.PreprocessTime()),
			rfPING, rfS2, rfWQ)
	}
	w.Flush()
	return &Report{
		ID:    "fig7",
		Title: "Preprocessing time and reduction factor",
		PaperClaim: "PING preprocesses faster than both baselines except on the smallest (Uniprot) and most " +
			"regular (LUBM) datasets; S2RDF's ExtVP inflates storage (reduction factor up to 1.94), WORQ " +
			"compresses to 0.27-0.42, PING stays below 1 (0.79-0.83) by dropping predicates from sub-partitions.",
		Body: b.String(),
	}, nil
}

// Q55 builds the DBpedia query of §5.7 against the generated schema.
func Q55(schema gmark.Schema) *sparql.Query {
	return sparql.MustParse(fmt.Sprintf(`SELECT * WHERE {
		?company a ?company_type .
		?company <%s> <%s> .
		?product <%s> ?company .
		?product a ?product_type . }`,
		schema.PropertyIRI("foundationPlace"), schema.PropertyIRI("California"),
		schema.PropertyIRI("developer")))
}

// Fig8 reproduces Fig. 8: the qualitative per-slice study of Q55 on
// DBpedia — coverage stays near zero for early slices, then climbs.
func (s *Suite) Fig8() (*Report, error) {
	bd, err := s.Dataset("dbpedia")
	if err != nil {
		return nil, err
	}
	q := Q55(bd.Data.Schema)
	proc := s.Processor(bd, ping.Options{})
	res, err := proc.PQA(q)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Q55 on dbpedia: %d slices, %d final answers\n", len(res.Steps), res.Final.Card())
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "slice\tmax level\tnew subparts\trows loaded(cum)\tanswers\tcoverage\ttime(cum)")
	for i, st := range res.Steps {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.1f%%\t%s\n",
			st.Step, st.MaxLevel, len(st.NewSubParts), st.RowsLoadedCum,
			st.Answers.Card(), 100*res.Coverage(i), fmtDuration(st.ElapsedCum))
	}
	w.Flush()
	return &Report{
		ID:    "fig8",
		Title: "DBpedia Q55 qualitative study (coverage and loaded rows per slice)",
		PaperClaim: "Coverage is almost zero for the first ~9 slices (loaded sub-partitions cannot join yet), " +
			"then data accumulates and coverage climbs to 100% while loaded rows and execution time grow.",
		Body: b.String(),
	}, nil
}

// Table2 reproduces Table 2: the index levels of Q55's symbols.
func (s *Suite) Table2() (*Report, error) {
	bd, err := s.Dataset("dbpedia")
	if err != nil {
		return nil, err
	}
	schema := bd.Data.Schema
	lay := bd.Layout
	dict := bd.Data.Graph.Dict
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "symbol\tindex\tlevels")
	fmt.Fprintf(w, "rdf:type\tVP\t%s\n", lay.PropertyLevels(dict.LookupIRI(rdf.RDFType)))
	fmt.Fprintf(w, "dbo:foundationPlace\tVP\t%s\n", lay.PropertyLevels(dict.LookupIRI(schema.PropertyIRI("foundationPlace"))))
	fmt.Fprintf(w, "dbo:developer\tVP\t%s\n", lay.PropertyLevels(dict.LookupIRI(schema.PropertyIRI("developer"))))
	fmt.Fprintf(w, "dbr:California\tOI\t%s\n", lay.ObjectLevels(dict.LookupIRI(schema.PropertyIRI("California"))))
	w.Flush()
	return &Report{
		ID:    "table2",
		Title: "Symbol levels of DBpedia's Q55 query",
		PaperClaim: "rdf:type on levels 1-17, dbo:foundationPlace on 2-13, dbo:developer on 2-11, " +
			"dbr:California as an object on 2-17.",
		Body: b.String(),
	}, nil
}

// eqaRow is one measured system run.
type eqaRow struct {
	timeMS float64
	rows   int64
}

// runEQA measures one system on one query.
func runEQA(sys ExactSystem, q *sparql.Query) (eqaRow, error) {
	start := time.Now()
	_, stats, err := sys.Query(q)
	if err != nil {
		return eqaRow{}, err
	}
	return eqaRow{
		timeMS: float64(time.Since(start).Microseconds()) / 1000,
		rows:   stats.InputRows,
	}, nil
}

// Fig9 reproduces Fig. 9: EQA execution time and triples visited for PING
// vs S2RDF vs WORQ — on YAGO (big queries needing all levels: PING ≈
// S2RDF, both beat WORQ) and on Shop100 with level-targeted queries (the
// fewer levels touched, the larger PING's advantage).
func (s *Suite) Fig9() (*Report, error) {
	var b strings.Builder

	// YAGO: the benchmark workload (star + complex; Table 1 has no plain
	// chain queries for YAGO).
	yago, err := s.Dataset("yago")
	if err != nil {
		return nil, err
	}
	wl := s.Workload(yago)
	var yagoQueries []gmark.LabeledQuery
	yagoQueries = append(yagoQueries, wl.All()...)
	var queries []*sparql.Query
	for _, lq := range yagoQueries {
		queries = append(queries, lq.Query)
	}
	pingSys, s2Sys, wqSys, err := s.Systems(yago, queries)
	if err != nil {
		return nil, err
	}
	systems := []ExactSystem{pingSys, s2Sys, wqSys}

	fmt.Fprintf(&b, "YAGO benchmark queries (%d):\n", len(yagoQueries))
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "query\tshape\ttp\tPING ms\tS2RDF ms\tWORQ ms\tPING rows\tS2RDF rows\tWORQ rows")
	for i, lq := range yagoQueries {
		var rows [3]eqaRow
		for j, sys := range systems {
			r, err := runEQA(sys, lq.Query)
			if err != nil {
				return nil, err
			}
			rows[j] = r
		}
		fmt.Fprintf(w, "Q%d\t%s\t%d\t%.1f\t%.1f\t%.1f\t%d\t%d\t%d\n",
			i+1, lq.Shape, len(lq.Query.Patterns),
			rows[0].timeMS, rows[1].timeMS, rows[2].timeMS,
			rows[0].rows, rows[1].rows, rows[2].rows)
	}
	w.Flush()

	// Shop100: queries binned by how many levels they access (via the
	// indexes), per the paper's selection procedure.
	shop, err := s.Dataset("shop100")
	if err != nil {
		return nil, err
	}
	byLevel := s.binnedShopQueries(shop, s.PerBucket)
	var targeted []*sparql.Query
	for L := 2; L <= shop.Layout.NumLevels; L++ {
		targeted = append(targeted, byLevel[L]...)
	}
	pingShop, s2Shop, wqShop, err := s.Systems(shop, targeted)
	if err != nil {
		return nil, err
	}
	shopSystems := []ExactSystem{pingShop, s2Shop, wqShop}

	fmt.Fprintf(&b, "\nShop100 level-targeted queries (up to %d per level count):\n", s.PerBucket)
	w = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "levels\tqueries\tPING ms\tS2RDF ms\tWORQ ms\tPING rows\tS2RDF rows\tWORQ rows")
	for L := 2; L <= shop.Layout.NumLevels; L++ {
		if len(byLevel[L]) == 0 {
			continue
		}
		var agg [3]eqaRow
		for _, q := range byLevel[L] {
			for j, sys := range shopSystems {
				r, err := runEQA(sys, q)
				if err != nil {
					return nil, err
				}
				agg[j].timeMS += r.timeMS
				agg[j].rows += r.rows
			}
		}
		n := float64(len(byLevel[L]))
		fmt.Fprintf(w, "%d of %d\t%d\t%.2f\t%.2f\t%.2f\t%.0f\t%.0f\t%.0f\n",
			L, shop.Layout.NumLevels, len(byLevel[L]),
			agg[0].timeMS/n, agg[1].timeMS/n, agg[2].timeMS/n,
			float64(agg[0].rows)/n, float64(agg[1].rows)/n, float64(agg[2].rows)/n)
	}
	w.Flush()

	return &Report{
		ID:    "fig9",
		Title: "EQA execution time and triples visited (PING vs S2RDF vs WORQ)",
		PaperClaim: "On YAGO's big queries PING beats WORQ everywhere and tracks S2RDF. On Shop100, when " +
			"queries target 2 of 6 levels PING is ~an order of magnitude faster and visits ~two orders of " +
			"magnitude fewer triples; the advantage shrinks as more levels are touched.",
		Body: b.String(),
	}, nil
}

// Ablation quantifies PING's two design choices (DESIGN.md §5): vertical
// sub-partitioning and SI/OI index pruning, plus the §6.2 slice-order
// variants.
func (s *Suite) Ablation() (*Report, error) {
	bd, err := s.Dataset("shop")
	if err != nil {
		return nil, err
	}
	wl := s.Workload(bd)
	queries := wl.Star
	configs := []struct {
		name string
		opts ping.Options
	}{
		{"baseline", ping.Options{}},
		{"incremental off (scratch re-eval)", ping.Options{DisableIncremental: true}},
		{"no sub-partition pruning", ping.Options{DisableSubPartPruning: true}},
		{"no SI/OI index pruning", ping.Options{DisableIndexPruning: true}},
		{"largest level first", ping.Options{Strategy: ping.LargestFirst}},
		{"smallest level first", ping.Options{Strategy: ping.SmallestFirst}},
		{"product slices (Alg. 2 literal)", ping.Options{Strategy: ping.ProductOrder}},
		{"dict encoding off (raw resident pairs)", ping.Options{DisableDictEncoding: true}},
	}
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "configuration\tavg slices\tavg rows loaded\tavg total time\tavg first-answer time")
	for _, cfg := range configs {
		proc := s.Processor(bd, cfg.opts)
		var slices, rows, totalMS, firstMS, n float64
		for _, q := range queries {
			res, err := proc.PQA(q)
			if err != nil {
				return nil, err
			}
			if len(res.Steps) == 0 {
				continue
			}
			n++
			last := res.Steps[len(res.Steps)-1]
			slices += float64(len(res.Steps))
			rows += float64(last.RowsLoadedCum)
			totalMS += float64(last.ElapsedCum.Microseconds()) / 1000
			for _, st := range res.Steps {
				if st.Answers.Card() > 0 {
					firstMS += float64(st.ElapsedCum.Microseconds()) / 1000
					break
				}
			}
		}
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.0f\t%.1fms\t%.1fms\n",
			cfg.name, slices/n, rows/n, totalMS/n, firstMS/n)
	}
	w.Flush()
	return &Report{
		ID:    "ablation",
		Title: "Ablations: sub-partitioning, index pruning, slice order",
		PaperClaim: "(Not in the paper — quantifies §3.6/§3.7 design choices and the §6.2 future-work " +
			"slice orders on the Shop star workload.)",
		Body: b.String(),
	}, nil
}
