package harness

import (
	"context"
	"encoding/json"
	"io"
	"time"

	"ping/internal/obs"
	"ping/internal/ping"
)

// BenchStep is one PQA slice step of one benchmark query, in the
// machine-readable BENCH_<dataset>.json format.
type BenchStep struct {
	Step         int     `json:"step"`
	MaxLevel     int     `json:"max_level"`
	NewSubParts  int     `json:"new_subparts"`
	RowsLoaded   int64   `json:"rows_loaded_cum"`
	Answers      int     `json:"answers"`
	NewAnswers   int     `json:"new_answers"`
	ElapsedMs    float64 `json:"elapsed_ms"`
	ElapsedCumMs float64 `json:"elapsed_cum_ms"`
	// Coverage is |answers after this step| / |final answers| — the
	// paper's progressiveness metric (1 when the final answer is empty).
	Coverage float64 `json:"coverage"`
	Degraded bool    `json:"degraded,omitempty"`
}

// BenchQuery is the full progressive trajectory of one workload query:
// the per-step latency/coverage curve plus the one-shot exact-answer
// time it is compared against.
type BenchQuery struct {
	Shape        string      `json:"shape"`
	Query        string      `json:"query"`
	Steps        []BenchStep `json:"steps"`
	FinalAnswers int         `json:"final_answers"`
	PQATotalMs   float64     `json:"pqa_total_ms"`
	// EQAMs is the exact-answer (one shot, Algorithm 3) wall-clock time.
	EQAMs float64 `json:"eqa_ms"`
	// FirstAnswerMs is the elapsed time of the first step that produced
	// any answer (0 when no step did).
	FirstAnswerMs float64 `json:"first_answer_ms,omitempty"`
	// StepP50Ms / StepP95Ms / StepP99Ms are step-latency quantiles of this
	// query's run, interpolated from the ping_step_seconds histogram of a
	// per-query metrics registry.
	StepP50Ms float64 `json:"step_p50_ms"`
	StepP95Ms float64 `json:"step_p95_ms"`
	StepP99Ms float64 `json:"step_p99_ms"`
}

// BenchDictRow is one configuration of the dictionary-encoding ablation:
// the whole workload run with compressed (delta-varint) or raw resident
// sub-partition blocks, with the cache's resident footprint after the run.
type BenchDictRow struct {
	Config        string `json:"config"` // "dict" or "dict=off"
	CacheEntries  int    `json:"cache_entries"`
	CacheBytes    int64  `json:"cache_bytes"`
	CacheRawBytes int64  `json:"cache_raw_bytes"`
	// BytesPerSubPart is CacheBytes / CacheEntries — the headline
	// resident-set-per-cached-sub-partition number.
	BytesPerSubPart float64 `json:"bytes_per_cached_subpart"`
	PQATotalMs      float64 `json:"pqa_total_ms"`
	EQATotalMs      float64 `json:"eqa_total_ms"`
}

// BenchReport is the machine-readable result of one dataset's workload —
// what pingbench -json-out writes as BENCH_<dataset>.json.
type BenchReport struct {
	Dataset      string         `json:"dataset"`
	Triples      int            `json:"triples"`
	Levels       int            `json:"levels"`
	Workers      int            `json:"workers"`
	Scale        float64        `json:"scale"`
	Seed         int64          `json:"seed"`
	Queries      []BenchQuery   `json:"queries"`
	DictAblation []BenchDictRow `json:"dict_ablation"`
}

// BenchJSON runs the standard workload of one dataset progressively and
// exactly, recording per-query trajectories.
func (s *Suite) BenchJSON(name string) (*BenchReport, error) {
	b, err := s.Dataset(name)
	if err != nil {
		return nil, err
	}
	rep := &BenchReport{
		Dataset: name,
		Triples: b.Data.Graph.Len(),
		Levels:  b.Layout.NumLevels,
		Workers: s.Workers,
		Scale:   b.Spec.Scale * s.Scale,
		Seed:    s.Seed,
	}
	for _, lq := range s.Workload(b).All() {
		bq := BenchQuery{Shape: lq.Shape, Query: lq.Query.String()}

		// A per-query registry isolates this run's ping_step_seconds
		// histogram, so the quantiles below describe this query alone.
		reg := obs.NewRegistry()
		proc := s.Processor(b, ping.Options{Metrics: reg})

		res, err := proc.PQACtx(context.Background(), lq.Query)
		if err != nil {
			return nil, err
		}
		for i, st := range res.Steps {
			bq.Steps = append(bq.Steps, BenchStep{
				Step:         st.Step,
				MaxLevel:     st.MaxLevel,
				NewSubParts:  len(st.NewSubParts),
				RowsLoaded:   st.RowsLoadedCum,
				Answers:      st.Answers.Card(),
				NewAnswers:   st.NewAnswers,
				ElapsedMs:    ms(st.Elapsed),
				ElapsedCumMs: ms(st.ElapsedCum),
				Coverage:     res.Coverage(i),
				Degraded:     st.Degraded,
			})
			if bq.FirstAnswerMs == 0 && st.Answers.Card() > 0 {
				bq.FirstAnswerMs = ms(st.ElapsedCum)
			}
		}
		bq.FinalAnswers = res.Final.Card()
		if n := len(res.Steps); n > 0 {
			bq.PQATotalMs = ms(res.Steps[n-1].ElapsedCum)
		}
		stepHist := reg.Histogram("ping_step_seconds", obs.TimeBuckets, nil)
		bq.StepP50Ms = stepHist.Quantile(0.5) * 1000
		bq.StepP95Ms = stepHist.Quantile(0.95) * 1000
		bq.StepP99Ms = stepHist.Quantile(0.99) * 1000

		t0 := time.Now()
		if _, err := proc.EQAFull(context.Background(), lq.Query); err != nil {
			return nil, err
		}
		bq.EQAMs = ms(time.Since(t0))

		rep.Queries = append(rep.Queries, bq)
	}

	// Dictionary-encoding ablation: the same workload end-to-end with
	// compressed resident blocks and with raw pair slices. Flipping the
	// mode drops the shared cache, so each row's footprint reflects only
	// its own representation.
	for _, cfg := range []struct {
		name string
		opts ping.Options
	}{
		{"dict", ping.Options{}},
		{"dict=off", ping.Options{DisableDictEncoding: true}},
	} {
		proc := s.Processor(b, cfg.opts)
		row := BenchDictRow{Config: cfg.name}
		for _, lq := range s.Workload(b).All() {
			t0 := time.Now()
			if _, err := proc.PQACtx(context.Background(), lq.Query); err != nil {
				return nil, err
			}
			row.PQATotalMs += ms(time.Since(t0))
			t0 = time.Now()
			if _, err := proc.EQAFull(context.Background(), lq.Query); err != nil {
				return nil, err
			}
			row.EQATotalMs += ms(time.Since(t0))
		}
		row.CacheEntries, row.CacheBytes, row.CacheRawBytes = b.Layout.SubPartCacheStats()
		if row.CacheEntries > 0 {
			row.BytesPerSubPart = float64(row.CacheBytes) / float64(row.CacheEntries)
		}
		rep.DictAblation = append(rep.DictAblation, row)
	}
	return rep, nil
}

// WriteJSON serializes the report, indented, to w.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
