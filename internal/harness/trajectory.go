package harness

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"time"

	"ping/internal/advisor"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/ping"
	"ping/internal/sparql"
	"ping/internal/workload"
)

// BenchStep is one PQA slice step of one benchmark query, in the
// machine-readable BENCH_<dataset>.json format.
type BenchStep struct {
	Step         int     `json:"step"`
	MaxLevel     int     `json:"max_level"`
	NewSubParts  int     `json:"new_subparts"`
	RowsLoaded   int64   `json:"rows_loaded_cum"`
	Answers      int     `json:"answers"`
	NewAnswers   int     `json:"new_answers"`
	ElapsedMs    float64 `json:"elapsed_ms"`
	ElapsedCumMs float64 `json:"elapsed_cum_ms"`
	// Coverage is |answers after this step| / |final answers| — the
	// paper's progressiveness metric (1 when the final answer is empty).
	Coverage float64 `json:"coverage"`
	Degraded bool    `json:"degraded,omitempty"`
}

// BenchQuery is the full progressive trajectory of one workload query:
// the per-step latency/coverage curve plus the one-shot exact-answer
// time it is compared against.
type BenchQuery struct {
	Shape        string      `json:"shape"`
	Query        string      `json:"query"`
	Steps        []BenchStep `json:"steps"`
	FinalAnswers int         `json:"final_answers"`
	PQATotalMs   float64     `json:"pqa_total_ms"`
	// EQAMs is the exact-answer (one shot, Algorithm 3) wall-clock time.
	EQAMs float64 `json:"eqa_ms"`
	// FirstAnswerMs is the elapsed time of the first step that produced
	// any answer (0 when no step did).
	FirstAnswerMs float64 `json:"first_answer_ms,omitempty"`
	// StepP50Ms / StepP95Ms / StepP99Ms are step-latency quantiles of this
	// query's run, interpolated from the ping_step_seconds histogram of a
	// per-query metrics registry.
	StepP50Ms float64 `json:"step_p50_ms"`
	StepP95Ms float64 `json:"step_p95_ms"`
	StepP99Ms float64 `json:"step_p99_ms"`
}

// BenchDictRow is one configuration of the dictionary-encoding ablation:
// the whole workload run with compressed (delta-varint) or raw resident
// sub-partition blocks, with the cache's resident footprint after the run.
type BenchDictRow struct {
	Config        string `json:"config"` // "dict" or "dict=off"
	CacheEntries  int    `json:"cache_entries"`
	CacheBytes    int64  `json:"cache_bytes"`
	CacheRawBytes int64  `json:"cache_raw_bytes"`
	// BytesPerSubPart is CacheBytes / CacheEntries — the headline
	// resident-set-per-cached-sub-partition number.
	BytesPerSubPart float64 `json:"bytes_per_cached_subpart"`
	PQATotalMs      float64 `json:"pqa_total_ms"`
	EQATotalMs      float64 `json:"eqa_total_ms"`
}

// BenchAdvisorRow is one configuration of the workload-adaptive layout
// ablation: the workload's hot fingerprints replayed on the layout the
// partitioner built ("unadvised") and on the layout the advisor
// restructured from the same workload's profile ("advised" — cold CS
// levels merged, join-reduction Bloom filters installed).
type BenchAdvisorRow struct {
	Config     string `json:"config"` // "unadvised" or "advised"
	HotQueries int    `json:"hot_queries"`
	// Merges / JoinReductions / PrunedSubParts describe the applied plan
	// (zero on the unadvised row).
	Merges         int `json:"merges"`
	JoinReductions int `json:"join_reductions"`
	PrunedSubParts int `json:"pruned_subparts"`
	// P95StepsToFirst is the count-weighted p95 of the 1-based first
	// answering step over the hot queries, measured by running them.
	P95StepsToFirst float64 `json:"p95_steps_to_first"`
	// MeanStepsToFirst is the count-weighted mean of the same series.
	MeanStepsToFirst float64 `json:"mean_steps_to_first"`
	PQATotalMs       float64 `json:"pqa_total_ms"`
}

// BenchReport is the machine-readable result of one dataset's workload —
// what pingbench -json-out writes as BENCH_<dataset>.json.
type BenchReport struct {
	Dataset      string            `json:"dataset"`
	Triples      int               `json:"triples"`
	Levels       int               `json:"levels"`
	Workers      int               `json:"workers"`
	Scale        float64           `json:"scale"`
	Seed         int64             `json:"seed"`
	Queries      []BenchQuery      `json:"queries"`
	DictAblation []BenchDictRow    `json:"dict_ablation"`
	Advisor      []BenchAdvisorRow `json:"advisor,omitempty"`
}

// BenchJSON runs the standard workload of one dataset progressively and
// exactly, recording per-query trajectories.
func (s *Suite) BenchJSON(name string) (*BenchReport, error) {
	b, err := s.Dataset(name)
	if err != nil {
		return nil, err
	}
	rep := &BenchReport{
		Dataset: name,
		Triples: b.Data.Graph.Len(),
		Levels:  b.Layout.NumLevels,
		Workers: s.Workers,
		Scale:   b.Spec.Scale * s.Scale,
		Seed:    s.Seed,
	}
	for _, lq := range s.Workload(b).All() {
		bq := BenchQuery{Shape: lq.Shape, Query: lq.Query.String()}

		// A per-query registry isolates this run's ping_step_seconds
		// histogram, so the quantiles below describe this query alone.
		reg := obs.NewRegistry()
		proc := s.Processor(b, ping.Options{Metrics: reg})

		res, err := proc.PQACtx(context.Background(), lq.Query)
		if err != nil {
			return nil, err
		}
		for i, st := range res.Steps {
			bq.Steps = append(bq.Steps, BenchStep{
				Step:         st.Step,
				MaxLevel:     st.MaxLevel,
				NewSubParts:  len(st.NewSubParts),
				RowsLoaded:   st.RowsLoadedCum,
				Answers:      st.Answers.Card(),
				NewAnswers:   st.NewAnswers,
				ElapsedMs:    ms(st.Elapsed),
				ElapsedCumMs: ms(st.ElapsedCum),
				Coverage:     res.Coverage(i),
				Degraded:     st.Degraded,
			})
			if bq.FirstAnswerMs == 0 && st.Answers.Card() > 0 {
				bq.FirstAnswerMs = ms(st.ElapsedCum)
			}
		}
		bq.FinalAnswers = res.Final.Card()
		if n := len(res.Steps); n > 0 {
			bq.PQATotalMs = ms(res.Steps[n-1].ElapsedCum)
		}
		stepHist := reg.Histogram("ping_step_seconds", obs.TimeBuckets, nil)
		bq.StepP50Ms = stepHist.Quantile(0.5) * 1000
		bq.StepP95Ms = stepHist.Quantile(0.95) * 1000
		bq.StepP99Ms = stepHist.Quantile(0.99) * 1000

		t0 := time.Now()
		if _, err := proc.EQAFull(context.Background(), lq.Query); err != nil {
			return nil, err
		}
		bq.EQAMs = ms(time.Since(t0))

		rep.Queries = append(rep.Queries, bq)
	}

	// Dictionary-encoding ablation: the same workload end-to-end with
	// compressed resident blocks and with raw pair slices. Flipping the
	// mode drops the shared cache, so each row's footprint reflects only
	// its own representation.
	for _, cfg := range []struct {
		name string
		opts ping.Options
	}{
		{"dict", ping.Options{}},
		{"dict=off", ping.Options{DisableDictEncoding: true}},
	} {
		proc := s.Processor(b, cfg.opts)
		row := BenchDictRow{Config: cfg.name}
		for _, lq := range s.Workload(b).All() {
			t0 := time.Now()
			if _, err := proc.PQACtx(context.Background(), lq.Query); err != nil {
				return nil, err
			}
			row.PQATotalMs += ms(time.Since(t0))
			t0 = time.Now()
			if _, err := proc.EQAFull(context.Background(), lq.Query); err != nil {
				return nil, err
			}
			row.EQATotalMs += ms(time.Since(t0))
		}
		row.CacheEntries, row.CacheBytes, row.CacheRawBytes = b.Layout.SubPartCacheStats()
		if row.CacheEntries > 0 {
			row.BytesPerSubPart = float64(row.CacheBytes) / float64(row.CacheEntries)
		}
		rep.DictAblation = append(rep.DictAblation, row)
	}

	adv, err := s.AdvisorAblation(b)
	if err != nil {
		return nil, err
	}
	rep.Advisor = adv
	return rep, nil
}

// AdvisorAblation closes the workload loop for one dataset: profile the
// workload, ask the advisor for a layout plan, apply it copy-on-write to
// a private store, and measure the hot queries' steps-to-first-answer on
// both layouts. Returns nil (no section) when the workload yields no hot
// queries.
func (s *Suite) AdvisorAblation(b *BuiltDataset) ([]BenchAdvisorRow, error) {
	prof := workload.NewProfiler(workload.Options{Metrics: obs.NewRegistry()})
	proc := s.Processor(b, ping.Options{UseBloomPruning: true, Metrics: obs.NewRegistry()})
	for _, lq := range s.Workload(b).All() {
		t0 := time.Now()
		res, err := proc.PQACtx(context.Background(), lq.Query)
		if err != nil {
			return nil, err
		}
		o := workload.Observation{
			Latency: time.Since(t0),
			Steps:   len(res.Steps),
			Answers: res.Final.Card(),
		}
		for _, st := range res.Steps {
			if st.NewAnswers > 0 {
				o.StepsToFirstAnswer = st.Step
				break
			}
		}
		prof.Observe(lq.Query, o)
	}

	advice, err := advisor.Analyze(b.Layout, prof.Snapshot(), advisor.Config{})
	if err != nil {
		return nil, err
	}
	if len(advice.Hot) == 0 {
		return nil, nil
	}
	hot := make([]*sparql.Query, 0, len(advice.Hot))
	counts := make([]int64, 0, len(advice.Hot))
	for _, h := range advice.Hot {
		q, err := sparql.Parse(h.Canonical)
		if err != nil {
			continue
		}
		hot = append(hot, q)
		counts = append(counts, h.Count)
	}

	measure := func(config string, lay *hpart.Layout) (BenchAdvisorRow, error) {
		row := BenchAdvisorRow{Config: config, HotQueries: len(hot)}
		p := ping.NewProcessor(lay, ping.Options{
			Context:             s.ctx,
			UseBloomPruning:     true,
			DisableSubPartCache: true,
			Metrics:             obs.NewRegistry(),
		})
		steps := make([]int, len(hot))
		for i, q := range hot {
			t0 := time.Now()
			res, err := p.PQACtx(context.Background(), q)
			if err != nil {
				return row, err
			}
			row.PQATotalMs += ms(time.Since(t0))
			for _, st := range res.Steps {
				if st.NewAnswers > 0 {
					steps[i] = st.Step
					break
				}
			}
		}
		row.P95StepsToFirst = weightedQuantileSteps(steps, counts, 0.95)
		var sum, total float64
		for i, st := range steps {
			if st == 0 {
				continue
			}
			sum += float64(st) * float64(counts[i])
			total += float64(counts[i])
		}
		if total > 0 {
			row.MeanStepsToFirst = sum / total
		}
		return row, nil
	}

	before, err := measure("unadvised", b.Layout)
	if err != nil {
		return nil, err
	}
	rows := []BenchAdvisorRow{before}

	advised := b.Layout
	if !advice.Empty() {
		st := hpart.NewStore(b.Layout)
		// Hold the pre-advice epoch pinned for the life of the process:
		// the restructure retires the sub-partition files it rewrote, and
		// letting the store collect them would pull the storage out from
		// under the suite's shared cached layout.
		if _, unpin := st.Pin(); unpin != nil {
			_ = unpin // deliberately never released
		}
		m, err := hpart.NewStoreMaintainer(st)
		if err != nil {
			return nil, err
		}
		if err := advice.Apply(m); err != nil {
			return nil, err
		}
		advised = st.Current()
	}
	after, err := measure("advised", advised)
	if err != nil {
		return nil, err
	}
	after.Merges = len(advice.Merges)
	after.JoinReductions = len(advice.Joins)
	for _, j := range advice.Joins {
		after.PrunedSubParts += j.PrunedSubParts
	}
	return append(rows, after), nil
}

// weightedQuantileSteps is the count-weighted q-quantile of the measured
// steps-to-first values, ignoring queries that never answered (step 0).
func weightedQuantileSteps(steps []int, counts []int64, q float64) float64 {
	type item struct {
		v int
		w int64
	}
	var items []item
	var total int64
	for i, st := range steps {
		if st == 0 {
			continue
		}
		items = append(items, item{st, counts[i]})
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	threshold := q * float64(total)
	var cum int64
	for _, it := range items {
		cum += it.w
		if float64(cum) >= threshold {
			return float64(it.v)
		}
	}
	return float64(items[len(items)-1].v)
}

// WriteJSON serializes the report, indented, to w.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
