// Package harness implements the paper's evaluation (§5): it generates
// the benchmark datasets, builds PING's partitioning and the S2RDF/WORQ
// baselines, runs the workloads, and renders every table and figure of
// the paper as text reports. cmd/pingbench exposes the experiments on the
// command line and bench_test.go wraps them as testing.B benchmarks.
package harness

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ping/internal/baseline/s2rdf"
	"ping/internal/baseline/worq"
	"ping/internal/columnar"
	"ping/internal/dataflow"
	"ping/internal/engine"
	"ping/internal/gmark"
	"ping/internal/hpart"
	"ping/internal/ping"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// Suite carries the configuration and dataset cache shared by all
// experiments.
type Suite struct {
	// Workers is the dataflow executor pool size (the simulated cluster
	// core count).
	Workers int
	// PerBucket is the number of queries per star/chain/complex bucket
	// (the paper uses 20).
	PerBucket int
	// Scale multiplies every dataset's standard scale; < 1 gives quick
	// runs for unit benchmarks.
	Scale float64
	// Seed makes runs reproducible.
	Seed int64
	// DictOff disables dictionary-encoded resident blocks in every
	// processor the suite builds (the pingbench -dict=off ablation):
	// cached sub-partitions stay as raw pair slices.
	DictOff bool

	mu    sync.Mutex
	cache map[string]*BuiltDataset
	ctx   *dataflow.Context
}

// NewSuite returns a suite with the given knobs (zero values get
// defaults: 4 workers, 5 queries per bucket, scale 1, seed 42).
func NewSuite(workers, perBucket int, scale float64, seed int64) *Suite {
	if workers <= 0 {
		workers = 4
	}
	if perBucket <= 0 {
		perBucket = 5
	}
	if scale <= 0 {
		scale = 1
	}
	if seed == 0 {
		seed = 42
	}
	return &Suite{
		Workers:   workers,
		PerBucket: perBucket,
		Scale:     scale,
		Seed:      seed,
		cache:     make(map[string]*BuiltDataset),
		ctx:       dataflow.NewContext(workers),
	}
}

// BuiltDataset is a generated dataset with its PING layout and the
// raw-size baseline used by the reduction-factor metric.
type BuiltDataset struct {
	Spec   gmark.NamedDataset
	Data   *gmark.Dataset
	Layout *hpart.Layout
	// RawBytes is the size of the initial dataset as loaded into the DFS:
	// the dictionary-encoded triple table (three plain varint columns).
	// Both PING and the baselines store dictionary-encoded tables, so
	// this shared basis makes the Fig. 7 reduction factors comparable.
	RawBytes int64
	// NTriplesBytes is the textual N-Triples size (Table 1's "Size").
	NTriplesBytes int64
	// SOLexBytes is the lexical size of all (subject, object) pairs — the
	// dataset stored in text-typed columnar tables with the predicate
	// dropped, i.e. PING's storage policy (§3.8). Used by the Fig. 7
	// reduction factors.
	SOLexBytes int64
	// DictLexBytes is the lexical size of the term dictionary — what a
	// dictionary-compressing system (WORQ) must store besides its integer
	// tables.
	DictLexBytes int64
}

// Dataset returns (building and caching on first use) a benchmark dataset
// by its Table 1 name.
func (s *Suite) Dataset(name string) (*BuiltDataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.cache[name]; ok {
		return b, nil
	}
	spec := gmark.DatasetByName(name)
	if spec == nil {
		return nil, fmt.Errorf("harness: unknown dataset %q", name)
	}
	data := spec.Schema.Generate(spec.Scale*s.Scale, s.Seed)
	lay, err := hpart.Partition(data.Graph, hpart.Options{})
	if err != nil {
		return nil, err
	}
	b := &BuiltDataset{
		Spec:          *spec,
		Data:          data,
		Layout:        lay,
		RawBytes:      rawColumnarSize(data.Graph),
		NTriplesBytes: rdf.NTriplesSize(data.Graph),
	}
	for _, t := range data.Graph.Triples {
		b.SOLexBytes += int64(len(data.Graph.Dict.TermString(t.S)) +
			len(data.Graph.Dict.TermString(t.O)) + 2)
	}
	for id := 0; id < data.Graph.Dict.Len(); id++ {
		b.DictLexBytes += int64(len(data.Graph.Dict.TermString(rdf.ID(id))) + 1)
	}
	s.cache[name] = b
	return b, nil
}

// rawColumnarSize measures the initial dataset stored as three plain
// varint columns — the denominator of the reduction factor.
func rawColumnarSize(g *rdf.Graph) int64 {
	cols := make([][]uint32, 3)
	for _, t := range g.Triples {
		cols[0] = append(cols[0], t.S)
		cols[1] = append(cols[1], t.P)
		cols[2] = append(cols[2], t.O)
	}
	return columnar.EncodedSize(cols, columnar.Plain)
}

// Processor returns a PING query processor over a built dataset.
func (s *Suite) Processor(b *BuiltDataset, opts ping.Options) *ping.Processor {
	if opts.Context == nil {
		opts.Context = s.ctx
	}
	if s.DictOff {
		opts.DisableDictEncoding = true
	}
	return ping.NewProcessor(b.Layout, opts)
}

// Workload returns the Table 1 query workload for a dataset.
func (s *Suite) Workload(b *BuiltDataset) gmark.Workload {
	cfg := gmark.StandardWorkloadConfig(b.Spec.Name, s.PerBucket)
	return b.Data.GenerateWorkload(cfg, s.Seed+1)
}

// ExactSystem is the common face of PING-EQA and the two baselines in the
// Fig. 7/9 comparisons.
type ExactSystem interface {
	Name() string
	Query(q *sparql.Query) (*engine.Relation, *engine.Stats, error)
	PreprocessTime() time.Duration
	StoredBytes() int64
}

// pingSystem adapts the PING processor to ExactSystem.
type pingSystem struct {
	proc *ping.Processor
	b    *BuiltDataset
}

func (p pingSystem) Name() string { return "PING" }
func (p pingSystem) Query(q *sparql.Query) (*engine.Relation, *engine.Stats, error) {
	return p.proc.EQA(q)
}
func (p pingSystem) PreprocessTime() time.Duration { return p.b.Layout.PreprocessTime }
func (p pingSystem) StoredBytes() int64            { return p.b.Layout.StoredBytes }

// Systems builds the three exact-query-answering systems over one
// dataset: PING, S2RDF, and WORQ. The WORQ reduction cache is seeded with
// the given workload (its published usage mode).
func (s *Suite) Systems(b *BuiltDataset, workload []*sparql.Query) (pingSys, s2rdfSys, worqSys ExactSystem, err error) {
	pingSys = pingSystem{proc: s.Processor(b, ping.Options{}), b: b}
	// 0.25 is S2RDF's published default selectivity threshold (ScaleUB):
	// ExtVP tables larger than a quarter of their base VP table are not
	// stored and the query falls back to the plain vertical partition.
	st2, err := s2rdf.Preprocess(b.Data.Graph, s2rdf.Options{Context: s.ctx, SelectivityThreshold: 0.25})
	if err != nil {
		return nil, nil, nil, err
	}
	// §5.3: "we disabled caching of precomputed joins" — WORQ recomputes
	// its Bloom reductions per query, so its data access equals the full
	// vertical partitions.
	stw, err := worq.Preprocess(b.Data.Graph, worq.Options{
		Context:               s.ctx,
		Workload:              workload,
		DisableReductionCache: true,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return pingSys, st2, stw, nil
}

// fmtDuration renders a duration with millisecond precision.
func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

// fmtBytes renders a byte count in KiB/MiB.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// sortedKeys returns the map keys sorted.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
