package harness

import (
	"testing"

	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/ping"
	"ping/internal/rdf"
)

func TestLevelBinnedQueries(t *testing.T) {
	s := NewSuite(2, 3, 0.3, 42)
	bd, err := s.Dataset("shop")
	if err != nil {
		t.Fatal(err)
	}
	bins := LevelBinnedQueries(bd.Layout, bd.Data, "User", 2, 3, 7)
	if len(bins) == 0 {
		t.Fatal("no bins produced")
	}
	proc := s.Processor(bd, ping.Options{})
	typeID := bd.Data.Graph.Dict.LookupIRI(rdf.RDFType)
	for k, qs := range bins {
		if k < 2 || k > bd.Layout.NumLevels {
			t.Errorf("bin %d out of range", k)
		}
		for _, q := range qs {
			if len(q.Patterns) != 2 {
				t.Errorf("bin %d: query has %d patterns, want 2", k, len(q.Patterns))
			}
			// The accessed-level count must equal the bin key.
			var union hpart.LevelSet
			for _, hl := range proc.QuerySlices(q) {
				for _, key := range hl {
					union = union.Add(key.Level)
				}
			}
			if union.Count() != k {
				t.Errorf("bin %d: query accesses %v (%d levels)\n%s", k, union, union.Count(), q)
			}
			// Grounded in an existing subject: at least one answer.
			rel, _, err := engine.Evaluate(q, engine.InputsFromGraph(bd.Data.Graph, q),
				bd.Data.Graph.Dict, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rel.Card() == 0 {
				t.Errorf("bin %d: grounded query has no answers:\n%s", k, q)
			}
			// rdf:type patterns are excluded by construction.
			for _, pat := range q.Patterns {
				if pat.P.IsConcrete() && bd.Data.Graph.Dict.Lookup(pat.P) == typeID {
					t.Errorf("bin %d: query contains an rdf:type pattern", k)
				}
			}
		}
	}
	// Degenerate inputs.
	if got := LevelBinnedQueries(bd.Layout, bd.Data, "NoClass", 2, 3, 1); got != nil {
		t.Error("unknown class produced bins")
	}
	if got := LevelBinnedQueries(bd.Layout, bd.Data, "User", 0, 3, 1); got != nil {
		t.Error("zero patterns produced bins")
	}
}

func TestSystemsAgreeOnBinnedQueries(t *testing.T) {
	// The three EQA systems must return identical answer counts on the
	// Fig. 9 workload — they may only differ in data touched.
	s := NewSuite(2, 2, 0.2, 42)
	bd, err := s.Dataset("shop")
	if err != nil {
		t.Fatal(err)
	}
	bins := s.binnedShopQueries(bd, 2)
	pingSys, s2Sys, wqSys, err := s.Systems(bd, nil)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, qs := range bins {
		for _, q := range qs {
			relP, _, err := pingSys.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			relS, _, err := s2Sys.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			relW, _, err := wqSys.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if relP.Card() != relS.Card() || relP.Card() != relW.Card() {
				t.Errorf("answer mismatch: PING=%d S2RDF=%d WORQ=%d\n%s",
					relP.Card(), relS.Card(), relW.Card(), q)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no binned queries to check")
	}
}
