package harness

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"ping/internal/gmark"
	"ping/internal/hpart"
	"ping/internal/ping"
)

// Scaling sweeps the Shop dataset across scale factors and measures how
// partitioning time (claimed O(n) in §3.8), storage, and EQA latency grow
// with the triple count — the "everything else is similar, just slower"
// observation the paper makes when moving from Shop-13GB to Shop-100GB.
func (s *Suite) Scaling() (*Report, error) {
	scales := []float64{0.25, 0.5, 1, 2}
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scale\ttriples\tpartition time\tns/triple\tstored\tavg EQA time\tavg rows")
	for _, scale := range scales {
		data := gmark.Shop().Generate(scale*s.Scale, s.Seed)
		start := time.Now()
		lay, err := hpart.Partition(data.Graph, hpart.Options{})
		if err != nil {
			return nil, err
		}
		partTime := time.Since(start)
		proc := ping.NewProcessor(lay, ping.Options{Context: s.ctx})

		cfg := gmark.StandardWorkloadConfig("shop", s.PerBucket)
		wl := data.GenerateWorkload(cfg, s.Seed+1)
		var eqaTime time.Duration
		var rows int64
		n := 0
		for _, lq := range wl.All() {
			t0 := time.Now()
			_, stats, err := proc.EQA(lq.Query)
			if err != nil {
				return nil, err
			}
			eqaTime += time.Since(t0)
			rows += stats.InputRows
			n++
		}
		perTriple := float64(partTime.Nanoseconds()) / float64(data.Graph.Len())
		avgEQA := time.Duration(0)
		avgRows := int64(0)
		if n > 0 {
			avgEQA = eqaTime / time.Duration(n)
			avgRows = rows / int64(n)
		}
		fmt.Fprintf(w, "%.2fx\t%d\t%s\t%.0f\t%s\t%s\t%d\n",
			scale, data.Graph.Len(), fmtDuration(partTime), perTriple,
			fmtBytes(lay.StoredBytes), fmtDuration(avgEQA), avgRows)
	}
	w.Flush()
	return &Report{
		ID:    "scaling",
		Title: "Scale sweep on Shop: partitioning and EQA vs dataset size",
		PaperClaim: "§3.8 claims the partitioning algorithm is linear in the number of triples; §5.5 " +
			"reports that scaling Shop from 13GB to 1B triples changes execution times but not the " +
			"trends. The ns/triple column should stay roughly flat across scales.",
		Body: b.String(),
	}, nil
}
