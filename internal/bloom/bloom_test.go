package bloom

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewWithEstimates(1000, 0.01)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for key %d", k)
		}
	}
}

func TestNoFalseNegativesQuick(t *testing.T) {
	err := quick.Check(func(keys []uint64) bool {
		f := NewWithEstimates(uint64(len(keys)+1), 0.05)
		for _, k := range keys {
			f.Add(k)
		}
		for _, k := range keys {
			if !f.Contains(k) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n, fp = 5000, 0.01
	f := NewWithEstimates(n, fp)
	rng := rand.New(rand.NewSource(2))
	inserted := make(map[uint64]bool, n)
	for len(inserted) < n {
		k := rng.Uint64()
		if !inserted[k] {
			inserted[k] = true
			f.Add(k)
		}
	}
	falsePos, probes := 0, 0
	for probes < 20000 {
		k := rng.Uint64()
		if inserted[k] {
			continue
		}
		probes++
		if f.Contains(k) {
			falsePos++
		}
	}
	rate := float64(falsePos) / float64(probes)
	if rate > fp*5 {
		t.Errorf("observed FP rate %.4f far above target %.4f", rate, fp)
	}
	if est := f.EstimatedFalsePositiveRate(); est > fp*3 {
		t.Errorf("estimated FP rate %.4f far above target %.4f", est, fp)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := NewWithEstimates(100, 0.01)
	hits := 0
	for k := uint64(0); k < 1000; k++ {
		if f.Contains(k) {
			hits++
		}
	}
	if hits != 0 {
		t.Errorf("empty filter claimed %d members", hits)
	}
	if f.EstimatedFalsePositiveRate() != 0 {
		t.Error("empty filter has nonzero estimated FP rate")
	}
}

func TestParameterClamping(t *testing.T) {
	for _, f := range []*Filter{
		New(0, 0),
		NewWithEstimates(0, 0),
		NewWithEstimates(10, 2.0),
	} {
		f.Add(42)
		if !f.Contains(42) {
			t.Error("clamped filter lost a key")
		}
		if f.Bits() == 0 || f.K() == 0 {
			t.Errorf("degenerate parameters: m=%d k=%d", f.Bits(), f.K())
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	f := NewWithEstimates(500, 0.02)
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d, wrote %d", n, buf.Len())
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bits() != f.Bits() || g.K() != f.K() || g.Count() != f.Count() {
		t.Errorf("parameters changed: %d/%d/%d vs %d/%d/%d",
			g.Bits(), g.K(), g.Count(), f.Bits(), f.K(), f.Count())
	}
	for _, k := range keys {
		if !g.Contains(k) {
			t.Fatalf("deserialized filter lost key %d", k)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := [][]byte{
		{},
		[]byte("XXXX0000000000000000"),
		[]byte("BLM1\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"), // m=0
	}
	for i, in := range cases {
		if _, err := Read(bytes.NewReader(in)); err == nil {
			t.Errorf("case %d: Read succeeded on corrupt input", i)
		}
	}
	// Truncated bit array.
	f := New(1024, 3)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("Read succeeded on truncated input")
	}
}

func TestFillRatio(t *testing.T) {
	f := New(1024, 4)
	if f.FillRatio() != 0 {
		t.Error("fresh filter has nonzero fill")
	}
	for i := uint64(0); i < 200; i++ {
		f.Add(i)
	}
	r := f.FillRatio()
	if r <= 0 || r >= 1 {
		t.Errorf("fill ratio %.3f out of (0,1)", r)
	}
	if f.SizeBytes() != 1024/8 {
		t.Errorf("SizeBytes = %d", f.SizeBytes())
	}
}
