// Package bloom implements a space-efficient Bloom filter over uint64 keys.
// It is the probabilistic membership structure behind the WORQ baseline's
// workload-driven join reductions (Madkour et al., ISWC'18): before
// shipping a vertical partition into a join, WORQ probes the other side's
// filter to discard rows that cannot possibly match.
package bloom

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Filter is a classic Bloom filter with k hash functions derived by double
// hashing from two 64-bit mixes of the key. The zero value is not usable;
// construct with New or NewWithEstimates.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    uint32 // number of hash functions
	n    uint64 // number of inserted keys (approximate under duplicates)
}

// New creates a filter with m bits (rounded up to a multiple of 64) and k
// hash functions. m and k must be positive.
func New(m uint64, k uint32) *Filter {
	if m == 0 {
		m = 64
	}
	if k == 0 {
		k = 1
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, k: k}
}

// NewWithEstimates sizes a filter for n expected keys at false-positive
// rate fp using the standard formulas m = -n·ln(fp)/ln(2)² and
// k = (m/n)·ln(2).
func NewWithEstimates(n uint64, fp float64) *Filter {
	if n == 0 {
		n = 1
	}
	if fp <= 0 || fp >= 1 {
		fp = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)))
	k := uint32(math.Round(float64(m) / float64(n) * math.Ln2))
	if k == 0 {
		k = 1
	}
	return New(m, k)
}

// mix64 is a Murmur3-style finalizer giving a well-distributed 64-bit hash.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// indexes yields the k bit positions for a key via double hashing.
func (f *Filter) indexes(key uint64, visit func(uint64)) {
	h1 := mix64(key)
	h2 := mix64(key ^ 0x9e3779b97f4a7c15)
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	for i := uint32(0); i < f.k; i++ {
		visit((h1 + uint64(i)*h2) % f.m)
	}
}

// Add inserts a key.
func (f *Filter) Add(key uint64) {
	f.indexes(key, func(bit uint64) {
		f.bits[bit/64] |= 1 << (bit % 64)
	})
	f.n++
}

// Contains reports whether the key may have been inserted. False positives
// are possible; false negatives are not.
func (f *Filter) Contains(key uint64) bool {
	ok := true
	f.indexes(key, func(bit uint64) {
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			ok = false
		}
	})
	return ok
}

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() uint32 { return f.k }

// Count returns the number of Add calls.
func (f *Filter) Count() uint64 { return f.n }

// SizeBytes returns the in-memory/on-disk payload size of the bit array.
func (f *Filter) SizeBytes() int64 { return int64(len(f.bits) * 8) }

// FillRatio returns the fraction of set bits, a load diagnostic.
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.m)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// EstimatedFalsePositiveRate returns the expected FP rate for the current
// fill: (1 - e^{-kn/m})^k.
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	if f.n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.n)/float64(f.m)), float64(f.k))
}

const magic = "BLM1"

// WriteTo serializes the filter.
func (f *Filter) WriteTo(w io.Writer) (int64, error) {
	header := make([]byte, 4+8+4+8)
	copy(header, magic)
	binary.LittleEndian.PutUint64(header[4:], f.m)
	binary.LittleEndian.PutUint32(header[12:], f.k)
	binary.LittleEndian.PutUint64(header[16:], f.n)
	n, err := w.Write(header)
	total := int64(n)
	if err != nil {
		return total, err
	}
	buf := make([]byte, 8)
	for _, word := range f.bits {
		binary.LittleEndian.PutUint64(buf, word)
		n, err = w.Write(buf)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Read deserializes a filter written by WriteTo.
func Read(r io.Reader) (*Filter, error) {
	header := make([]byte, 4+8+4+8)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("bloom: header: %w", err)
	}
	if string(header[:4]) != magic {
		return nil, fmt.Errorf("bloom: bad magic %q", header[:4])
	}
	m := binary.LittleEndian.Uint64(header[4:])
	k := binary.LittleEndian.Uint32(header[12:])
	n := binary.LittleEndian.Uint64(header[16:])
	if m == 0 || m%64 != 0 || k == 0 || m > 1<<36 {
		return nil, fmt.Errorf("bloom: invalid parameters m=%d k=%d", m, k)
	}
	f := &Filter{bits: make([]uint64, m/64), m: m, k: k, n: n}
	buf := make([]byte, 8)
	for i := range f.bits {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("bloom: bits: %w", err)
		}
		f.bits[i] = binary.LittleEndian.Uint64(buf)
	}
	return f, nil
}
