// Package faults is a deterministic fault injector for the dfs block
// store. It wraps any dfs.BlockStore and perturbs reads according to a
// declarative, seeded Plan: per-node read-error rates, payload
// corruption, node-down windows, and injected latency. Every random
// decision is a pure hash of (seed, node, block id, per-node operation
// count), so a plan replays identically across runs regardless of
// goroutine interleaving — the property the chaos tests rely on.
//
// The injector only ever corrupts copies of the payload; the wrapped
// store's data is never modified, so clearing a fault restores healthy
// reads (and read-repair writes go through to the real store).
package faults

import (
	"fmt"
	"sync"
	"time"

	"ping/internal/dfs"
	"ping/internal/obs"
)

// NodePlan declares the faults of one data node.
type NodePlan struct {
	// ReadErrorRate is the probability in [0,1] that a Get fails with an
	// error wrapping dfs.ErrNodeDown.
	ReadErrorRate float64
	// CorruptRate is the probability in [0,1] that a Get returns a
	// bit-flipped copy of the payload (caught by the dfs checksum).
	CorruptRate float64
	// Latency is added to every Get on this node.
	Latency time.Duration
	// DownFrom/DownUntil bound a half-open window of per-node read
	// operations [DownFrom, DownUntil) during which the node rejects all
	// I/O — a crash-and-recover episode. Both zero means no window.
	DownFrom, DownUntil int64
	// Down marks the node permanently unavailable (until Revive).
	Down bool
}

// Plan declares faults for a cluster. The zero value injects nothing.
type Plan struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// Nodes maps data-node index to its fault plan.
	Nodes map[int]NodePlan
}

// Stats counts injected faults.
type Stats struct {
	InjectedErrors      int64 // failed Gets (rate-based)
	InjectedCorruptions int64 // bit-flipped payloads
	DownRejections      int64 // I/O rejected while a node was down
}

// Injector implements dfs.BlockStore over an inner store, injecting the
// plan's faults on the read path. Writes and deletes only fail while a
// node is down. Safe for concurrent use.
type Injector struct {
	plan  Plan
	inner dfs.BlockStore

	mu    sync.Mutex
	ops   map[int]int64 // per-node read-operation counter
	dead  map[int]bool  // runtime Kill/Revive overrides
	stats Stats

	// Mirrors of the Stats counters as named obs metrics, so injected
	// faults show up on /metrics next to the dfs health counters.
	mErrors, mCorruptions, mRejections *obs.Counter
}

// New builds an injector for plan. Attach it to a file system with
// Attach (or dfs.FS.WrapStore) before reading.
func New(plan Plan) *Injector {
	reg := obs.Default
	reg.Describe("faults_injected_errors_total", "rate-based injected read errors")
	reg.Describe("faults_injected_corruptions_total", "injected bit-flipped payloads")
	reg.Describe("faults_down_rejections_total", "I/O rejected while a node was down")
	return &Injector{
		plan:         plan,
		ops:          make(map[int]int64),
		dead:         make(map[int]bool),
		mErrors:      reg.Counter("faults_injected_errors_total", nil),
		mCorruptions: reg.Counter("faults_injected_corruptions_total", nil),
		mRejections:  reg.Counter("faults_down_rejections_total", nil),
	}
}

// Attach interposes the injector on fs's block store.
func (in *Injector) Attach(fs *dfs.FS) {
	fs.WrapStore(func(inner dfs.BlockStore) dfs.BlockStore {
		in.inner = inner
		return in
	})
}

// Wrap interposes the injector on an arbitrary store and returns it.
func (in *Injector) Wrap(inner dfs.BlockStore) dfs.BlockStore {
	in.inner = inner
	return in
}

// KillNode marks node permanently down, overriding the plan.
func (in *Injector) KillNode(node int) {
	in.mu.Lock()
	in.dead[node] = true
	in.mu.Unlock()
}

// ReviveNode clears a KillNode override and any plan-declared permanent
// Down flag for node.
func (in *Injector) ReviveNode(node int) {
	in.mu.Lock()
	delete(in.dead, node)
	if np, ok := in.plan.Nodes[node]; ok {
		np.Down = false
		in.plan.Nodes[node] = np
	}
	in.mu.Unlock()
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// admit checks node availability for one operation and, for reads,
// advances the per-node op counter. It returns the op number and whether
// the operation may proceed.
func (in *Injector) admit(node int, read bool) (int64, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	op := in.ops[node]
	if read {
		in.ops[node]++
	}
	np := in.plan.Nodes[node]
	down := in.dead[node] || np.Down ||
		(np.DownUntil > np.DownFrom && op >= np.DownFrom && op < np.DownUntil)
	if down {
		in.stats.DownRejections++
		in.mRejections.Inc()
		return op, false
	}
	return op, true
}

// count mutates the fault counters under the lock.
func (in *Injector) count(f func(*Stats)) {
	in.mu.Lock()
	f(&in.stats)
	in.mu.Unlock()
}

// roll returns a deterministic pseudo-random float64 in [0,1) for one
// decision, keyed by the plan seed, the node, the block id, the per-node
// op count, and a decision discriminator.
func (in *Injector) roll(node int, id uint64, op int64, which uint64) float64 {
	x := uint64(in.plan.Seed)
	x = mix64(x ^ uint64(node)*0x9e3779b97f4a7c15)
	x = mix64(x ^ id*0xc2b2ae3d27d4eb4f)
	x = mix64(x ^ uint64(op)*0x165667b19e3779f9)
	x = mix64(x ^ which)
	return float64(x>>11) / float64(1<<53)
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (in *Injector) Get(node int, id uint64) ([]byte, error) {
	op, ok := in.admit(node, true)
	if !ok {
		return nil, fmt.Errorf("faults: node %d: %w", node, dfs.ErrNodeDown)
	}
	np := in.plan.Nodes[node]
	if np.Latency > 0 {
		time.Sleep(np.Latency)
	}
	if np.ReadErrorRate > 0 && in.roll(node, id, op, 1) < np.ReadErrorRate {
		in.count(func(s *Stats) { s.InjectedErrors++ })
		in.mErrors.Inc()
		return nil, fmt.Errorf("faults: injected read error on node %d: %w", node, dfs.ErrNodeDown)
	}
	data, err := in.inner.Get(node, id)
	if err != nil {
		return nil, err
	}
	if np.CorruptRate > 0 && len(data) > 0 && in.roll(node, id, op, 2) < np.CorruptRate {
		in.count(func(s *Stats) { s.InjectedCorruptions++ })
		in.mCorruptions.Inc()
		cp := append([]byte(nil), data...)
		bit := in.roll(node, id, op, 3)
		i := int(bit * float64(len(cp)))
		cp[i] ^= 1 << (uint(i) % 8)
		return cp, nil
	}
	return data, nil
}

func (in *Injector) Put(node int, id uint64, data []byte) error {
	if _, ok := in.admit(node, false); !ok {
		return fmt.Errorf("faults: node %d: %w", node, dfs.ErrNodeDown)
	}
	return in.inner.Put(node, id, data)
}

func (in *Injector) Del(node int, id uint64) error {
	if _, ok := in.admit(node, false); !ok {
		return fmt.Errorf("faults: node %d: %w", node, dfs.ErrNodeDown)
	}
	return in.inner.Del(node, id)
}
