package faults

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"ping/internal/dfs"
)

// newFaultyFS builds an in-memory FS with content and attaches an
// injector for plan.
func newFaultyFS(t *testing.T, cfg dfs.Config, plan Plan) (*dfs.FS, *Injector, []byte) {
	t.Helper()
	fs := dfs.New(cfg)
	data := make([]byte, 4000)
	rand.New(rand.NewSource(7)).Read(data)
	if err := fs.WriteFile("data.bin", data); err != nil {
		t.Fatal(err)
	}
	in := New(plan)
	in.Attach(fs)
	return fs, in, data
}

func TestPermanentlyDownNodeFailsOver(t *testing.T) {
	cfg := dfs.Config{BlockSize: 256, DataNodes: 3, Replication: 2, MaxRetries: 1, RetryBase: -1}
	fs, in, want := newFaultyFS(t, cfg, Plan{Nodes: map[int]NodePlan{0: {Down: true}}})
	got, err := fs.ReadFile("data.bin")
	if err != nil {
		t.Fatalf("read with node 0 down: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("content mismatch")
	}
	if s := in.Stats(); s.DownRejections == 0 {
		t.Error("expected down rejections counted")
	}
}

func TestKillAndRevive(t *testing.T) {
	cfg := dfs.Config{DataNodes: 1, Replication: 1, MaxRetries: 0, RetryBase: -1}
	fs, in, want := newFaultyFS(t, cfg, Plan{})
	in.KillNode(0)
	if _, err := fs.ReadFile("data.bin"); !errors.Is(err, dfs.ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	in.ReviveNode(0)
	got, err := fs.ReadFile("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("content mismatch after revive")
	}
}

func TestDownWindowRecovers(t *testing.T) {
	cfg := dfs.Config{DataNodes: 1, Replication: 1, MaxRetries: -1, RetryBase: -1}
	// Down for read ops [0, 2): the first two Gets fail, later ones work.
	// Retries are disabled so each ReadFile sees exactly one Get.
	fs, _, want := newFaultyFS(t, cfg, Plan{Nodes: map[int]NodePlan{0: {DownFrom: 0, DownUntil: 2}}})
	if _, err := fs.ReadFile("data.bin"); err == nil {
		t.Fatal("expected failure inside the down window")
	}
	if _, err := fs.ReadFile("data.bin"); err == nil {
		t.Fatal("expected failure inside the down window")
	}
	got, err := fs.ReadFile("data.bin")
	if err != nil {
		t.Fatalf("read after window: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("content mismatch after recovery")
	}
}

func TestCorruptionIsCaughtByChecksum(t *testing.T) {
	cfg := dfs.Config{BlockSize: 512, DataNodes: 2, Replication: 2, MaxRetries: 2, RetryBase: -1}
	fs, in, want := newFaultyFS(t, cfg, Plan{Seed: 11, Nodes: map[int]NodePlan{
		0: {CorruptRate: 1},
	}})
	got, err := fs.ReadFile("data.bin")
	if err != nil {
		t.Fatalf("read with node 0 corrupting: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("corrupt payload leaked through the checksum")
	}
	if s := in.Stats(); s.InjectedCorruptions == 0 {
		t.Error("expected injected corruptions counted")
	}
}

func TestReadErrorRateIsDeterministic(t *testing.T) {
	run := func() ([]byte, error, Stats) {
		cfg := dfs.Config{BlockSize: 128, DataNodes: 2, Replication: 1, MaxRetries: 3, RetryBase: -1}
		fs := dfs.New(cfg)
		data := make([]byte, 2000)
		rand.New(rand.NewSource(9)).Read(data)
		if err := fs.WriteFile("d.bin", data); err != nil {
			t.Fatal(err)
		}
		in := New(Plan{Seed: 42, Nodes: map[int]NodePlan{
			0: {ReadErrorRate: 0.5},
			1: {ReadErrorRate: 0.5},
		}})
		in.Attach(fs)
		got, err := fs.ReadFile("d.bin")
		return got, err, in.Stats()
	}
	g1, e1, s1 := run()
	g2, e2, s2 := run()
	if (e1 == nil) != (e2 == nil) || !bytes.Equal(g1, g2) || s1 != s2 {
		t.Fatalf("same plan diverged: err1=%v err2=%v stats1=%+v stats2=%+v", e1, e2, s1, s2)
	}
}

func TestLatencyInjection(t *testing.T) {
	cfg := dfs.Config{DataNodes: 1, Replication: 1, MaxRetries: 0, RetryBase: -1}
	fs, _, _ := newFaultyFS(t, cfg, Plan{Nodes: map[int]NodePlan{0: {Latency: 5 * time.Millisecond}}})
	start := time.Now()
	if _, err := fs.ReadFile("data.bin"); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 5*time.Millisecond {
		t.Errorf("read took %v, want >= 5ms of injected latency", el)
	}
}
