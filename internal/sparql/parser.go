package sparql

import (
	"fmt"
	"strings"

	"ping/internal/rdf"
)

// Parse parses a SPARQL SELECT query in the fragment PING supports:
//
//	PREFIX ns: <iri>            (any number)
//	SELECT [DISTINCT] (*|?v..)  projection
//	WHERE { tp . tp . ... }     basic graph pattern
//	[LIMIT n]
//
// Triple-pattern terms may be IRIs (<...> or prefixed names), literals,
// blank nodes, variables, or the keyword 'a' (rdf:type) in the predicate
// position.
func Parse(input string) (*Query, error) {
	p := &parser{toks: tokenize(input)}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("sparql: %w", err)
	}
	return q, nil
}

// MustParse is Parse that panics on error; intended for tests, examples,
// and generated workloads that are correct by construction.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type token struct {
	text string
	pos  int
}

// tokenize splits the input into tokens. IRIs and literals are kept whole;
// punctuation characters {, }, ., ;, and , are their own tokens.
func tokenize(in string) []token {
	var toks []token
	i := 0
	for i < len(in) {
		c := in[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#': // comment to end of line
			for i < len(in) && in[i] != '\n' {
				i++
			}
		case c == '<':
			// '<' opens an IRI unless whitespace intervenes before '>',
			// in which case it is the less-than operator (FILTER).
			j := strings.IndexByte(in[i:], '>')
			ws := strings.IndexAny(in[i:], " \t\n\r")
			if j < 0 || (ws >= 0 && ws < j) {
				if i+1 < len(in) && in[i+1] == '=' {
					toks = append(toks, token{"<=", i})
					i += 2
				} else {
					toks = append(toks, token{"<", i})
					i++
				}
			} else {
				toks = append(toks, token{in[i : i+j+1], i})
				i += j + 1
			}
		case c == '"':
			j := i + 1
			for j < len(in) {
				if in[j] == '\\' {
					j += 2
					continue
				}
				if in[j] == '"' {
					break
				}
				j++
			}
			if j >= len(in) {
				toks = append(toks, token{in[i:], i})
				i = len(in)
				break
			}
			j++ // past closing quote
			// Absorb @lang or ^^<datatype>.
			if j < len(in) && in[j] == '@' {
				for j < len(in) && !isDelim(in[j]) && in[j] != ' ' {
					j++
				}
			} else if strings.HasPrefix(in[j:], "^^<") {
				if k := strings.IndexByte(in[j:], '>'); k >= 0 {
					j += k + 1
				} else {
					j = len(in)
				}
			}
			toks = append(toks, token{in[i:j], i})
			i = j
		case c == '{' || c == '}' || c == '.' || c == ';' || c == ',' ||
			c == '(' || c == ')' || c == '|' || c == '/' || c == '+' || c == '*':
			toks = append(toks, token{string(c), i})
			i++
		default:
			j := i
			for j < len(in) && !isBreak(in[j]) {
				j++
			}
			toks = append(toks, token{in[i:j], i})
			i = j
		}
	}
	return toks
}

func isDelim(c byte) bool {
	return c == '{' || c == '}' || c == '.' || c == ';' || c == ',' ||
		c == '(' || c == ')' || c == '|' || c == '/' || c == '+' || c == '*' ||
		c == '\t' || c == '\n' || c == '\r'
}

func isBreak(c byte) bool {
	return c == ' ' || c == '<' || c == '"' || isDelim(c)
}

type parser struct {
	toks     []token
	pos      int
	prefixes map[string]string
}

func (p *parser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *parser) expect(text string) error {
	t, ok := p.next()
	if !ok {
		return fmt.Errorf("expected %q, got end of query", text)
	}
	if !strings.EqualFold(t.text, text) {
		return fmt.Errorf("expected %q at offset %d, got %q", text, t.pos, t.text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	p.prefixes = map[string]string{
		"rdf": "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
	}
	for {
		t, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("empty query")
		}
		if !strings.EqualFold(t.text, "PREFIX") {
			break
		}
		p.pos++
		if err := p.parsePrefix(); err != nil {
			return nil, err
		}
	}
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if t, ok := p.peek(); ok && strings.EqualFold(t.text, "DISTINCT") {
		q.Distinct = true
		p.pos++
	}
	// Projection.
	for {
		t, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("unexpected end of query in projection")
		}
		if t.text == "*" {
			if len(q.Vars) > 0 {
				return nil, fmt.Errorf("cannot mix * with explicit variables")
			}
			p.pos++
			break
		}
		if strings.HasPrefix(t.text, "?") || strings.HasPrefix(t.text, "$") {
			if len(t.text) < 2 {
				return nil, fmt.Errorf("empty variable at offset %d", t.pos)
			}
			q.Vars = append(q.Vars, t.text[1:])
			p.pos++
			continue
		}
		if strings.EqualFold(t.text, "WHERE") {
			if len(q.Vars) == 0 {
				return nil, fmt.Errorf("empty projection")
			}
			break
		}
		return nil, fmt.Errorf("unexpected token %q in projection", t.text)
	}
	if t, ok := p.peek(); ok && strings.EqualFold(t.text, "WHERE") {
		p.pos++
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	if err := p.parseBGP(q); err != nil {
		return nil, err
	}
	// Optional LIMIT.
	if t, ok := p.peek(); ok && strings.EqualFold(t.text, "LIMIT") {
		p.pos++
		lt, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("LIMIT without a value")
		}
		var n int
		if _, err := fmt.Sscanf(lt.text, "%d", &n); err != nil || n < 0 {
			return nil, fmt.Errorf("bad LIMIT value %q", lt.text)
		}
		q.Limit = n
	}
	if t, ok := p.peek(); ok {
		return nil, fmt.Errorf("unexpected trailing token %q at offset %d", t.text, t.pos)
	}
	if len(q.Patterns) == 0 && len(q.Paths) == 0 {
		return nil, fmt.Errorf("empty basic graph pattern")
	}
	return q, nil
}

// parseFilter parses FILTER '(' expr ')'.
func (p *parser) parseFilter() (Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	expr, err := p.parseFilterOr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return expr, nil
}

// parseFilterOr parses and ('||' and)*. The tokenizer emits '|' as single
// characters, so '||' arrives as two adjacent tokens.
func (p *parser) parseFilterOr() (Expr, error) {
	first, err := p.parseFilterAnd()
	if err != nil {
		return nil, err
	}
	parts := []Expr{first}
	for {
		t1, ok1 := p.peek()
		if !ok1 || t1.text != "|" {
			break
		}
		if p.pos+1 >= len(p.toks) || p.toks[p.pos+1].text != "|" {
			return nil, fmt.Errorf("single '|' in filter expression at offset %d", t1.pos)
		}
		p.pos += 2
		next, err := p.parseFilterAnd()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return Or{Parts: parts}, nil
}

// parseFilterAnd parses prim ('&&' prim)*.
func (p *parser) parseFilterAnd() (Expr, error) {
	first, err := p.parseFilterPrim()
	if err != nil {
		return nil, err
	}
	parts := []Expr{first}
	for {
		t, ok := p.peek()
		if !ok || t.text != "&&" {
			break
		}
		p.pos++
		next, err := p.parseFilterPrim()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return And{Parts: parts}, nil
}

// parseFilterPrim parses '(' expr ')', '!' prim, or a comparison.
func (p *parser) parseFilterPrim() (Expr, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("unexpected end of query in filter")
	}
	switch t.text {
	case "(":
		p.pos++
		inner, err := p.parseFilterOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case "!":
		p.pos++
		inner, err := p.parseFilterPrim()
		if err != nil {
			return nil, err
		}
		return Not{Sub: inner}, nil
	}
	left, err := p.parseFilterTerm()
	if err != nil {
		return nil, err
	}
	opTok, ok := p.next()
	if !ok {
		return nil, fmt.Errorf("filter comparison missing operator")
	}
	var op CmpOp
	switch opTok.text {
	case "=", "==":
		op = OpEq
	case "!=":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return nil, fmt.Errorf("unknown filter operator %q", opTok.text)
	}
	right, err := p.parseFilterTerm()
	if err != nil {
		return nil, err
	}
	return Comparison{Left: left, Op: op, Right: right}, nil
}

// parseFilterTerm parses a variable, literal, bare numeral, IRI, or
// prefixed name inside a filter.
func (p *parser) parseFilterTerm() (rdf.Term, error) {
	t, ok := p.peek()
	if !ok {
		return rdf.Term{}, fmt.Errorf("unexpected end of query in filter term")
	}
	// Bare numerals become xsd:integer / xsd:double typed literals.
	if len(t.text) > 0 && (t.text[0] >= '0' && t.text[0] <= '9' || t.text[0] == '-' && len(t.text) > 1) {
		p.pos++
		dt := "http://www.w3.org/2001/XMLSchema#integer"
		if strings.ContainsAny(t.text, ".eE") {
			dt = "http://www.w3.org/2001/XMLSchema#double"
		}
		return rdf.NewTypedLiteral(t.text, dt), nil
	}
	return p.parsePatternTerm(posObject)
}

// parsePredicate parses the predicate position: either a variable (term,
// nil, nil), or a property path. A path consisting of a single bare IRI is
// returned as a plain term so ordinary BGP patterns stay on the fast path.
func (p *parser) parsePredicate() (rdf.Term, Path, error) {
	if t, ok := p.peek(); ok && (strings.HasPrefix(t.text, "?") || strings.HasPrefix(t.text, "$")) {
		term, err := p.parsePatternTerm(posPredicate)
		return term, nil, err
	}
	path, err := p.parsePathAlt()
	if err != nil {
		return rdf.Term{}, nil, err
	}
	if iri, ok := path.(PathIRI); ok {
		return iri.IRI, nil, nil
	}
	return rdf.Term{}, path, nil
}

// parsePathAlt parses seq ('|' seq)*.
func (p *parser) parsePathAlt() (Path, error) {
	first, err := p.parsePathSeq()
	if err != nil {
		return nil, err
	}
	parts := []Path{first}
	for {
		t, ok := p.peek()
		if !ok || t.text != "|" {
			break
		}
		p.pos++
		next, err := p.parsePathSeq()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return PathAlt{Parts: parts}, nil
}

// parsePathSeq parses unary ('/' unary)*.
func (p *parser) parsePathSeq() (Path, error) {
	first, err := p.parsePathUnary()
	if err != nil {
		return nil, err
	}
	parts := []Path{first}
	for {
		t, ok := p.peek()
		if !ok || t.text != "/" {
			break
		}
		p.pos++
		next, err := p.parsePathUnary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return PathSeq{Parts: parts}, nil
}

// parsePathUnary parses primary ('+' | '*')?.
func (p *parser) parsePathUnary() (Path, error) {
	prim, err := p.parsePathPrimary()
	if err != nil {
		return nil, err
	}
	if t, ok := p.peek(); ok {
		switch t.text {
		case "+":
			p.pos++
			return PathPlus{Sub: prim}, nil
		case "*":
			p.pos++
			return PathStar{Sub: prim}, nil
		}
	}
	return prim, nil
}

// parsePathPrimary parses an IRI, prefixed name, 'a', or parenthesized
// path.
func (p *parser) parsePathPrimary() (Path, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("unexpected end of query in property path")
	}
	if t.text == "(" {
		p.pos++
		inner, err := p.parsePathAlt()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	term, err := p.parsePatternTerm(posPredicate)
	if err != nil {
		return nil, err
	}
	if term.Kind != rdf.IRI {
		return nil, fmt.Errorf("property path step must be an IRI, got %s", term.Kind)
	}
	return PathIRI{IRI: term}, nil
}

func (p *parser) parsePrefix() error {
	name, ok := p.next()
	if !ok {
		return fmt.Errorf("PREFIX without a name")
	}
	if !strings.HasSuffix(name.text, ":") {
		return fmt.Errorf("prefix name %q must end with ':'", name.text)
	}
	iri, ok := p.next()
	if !ok {
		return fmt.Errorf("PREFIX %s without an IRI", name.text)
	}
	if !strings.HasPrefix(iri.text, "<") || !strings.HasSuffix(iri.text, ">") {
		return fmt.Errorf("PREFIX %s: expected <iri>, got %q", name.text, iri.text)
	}
	p.prefixes[strings.TrimSuffix(name.text, ":")] = iri.text[1 : len(iri.text)-1]
	return nil
}

// parseBGP parses triple patterns up to the closing brace, supporting '.'
// separators plus ';' (same subject) and ',' (same subject and predicate)
// continuation lists.
func (p *parser) parseBGP(q *Query) error {
	var curS, curP rdf.Term
	haveS, haveP := false, false
	for {
		t, ok := p.peek()
		if !ok {
			return fmt.Errorf("unterminated BGP: missing '}'")
		}
		if t.text == "}" {
			p.pos++
			return nil
		}
		if strings.EqualFold(t.text, "FILTER") {
			p.pos++
			expr, err := p.parseFilter()
			if err != nil {
				return err
			}
			q.Filters = append(q.Filters, expr)
			// Optional '.' after a filter.
			if sep, ok := p.peek(); ok && sep.text == "." {
				p.pos++
			}
			haveS, haveP = false, false
			continue
		}
		var s, pr, o rdf.Term
		var path Path
		var err error
		if haveS {
			s = curS
		} else {
			if s, err = p.parsePatternTerm(posSubject); err != nil {
				return err
			}
		}
		if haveP {
			pr = curP
		} else {
			pr, path, err = p.parsePredicate()
			if err != nil {
				return err
			}
		}
		if o, err = p.parsePatternTerm(posObject); err != nil {
			return err
		}
		if path != nil {
			q.Paths = append(q.Paths, PathPattern{S: s, Path: path, O: o})
		} else {
			q.Patterns = append(q.Patterns, TriplePattern{S: s, P: pr, O: o})
		}
		sep, ok := p.peek()
		if !ok {
			return fmt.Errorf("unterminated BGP: missing '}'")
		}
		switch sep.text {
		case ".":
			p.pos++
			haveS, haveP = false, false
		case ";":
			p.pos++
			curS, haveS, haveP = s, true, false
		case ",":
			if path != nil {
				return fmt.Errorf("',' continuation after a property path is not supported")
			}
			p.pos++
			curS, curP, haveS, haveP = s, pr, true, true
		case "}":
			haveS, haveP = false, false
		default:
			return fmt.Errorf("expected '.', ';', ',' or '}' after pattern, got %q", sep.text)
		}
	}
}

type termPos int

const (
	posSubject termPos = iota
	posPredicate
	posObject
)

func (p *parser) parsePatternTerm(pos termPos) (rdf.Term, error) {
	t, ok := p.next()
	if !ok {
		return rdf.Term{}, fmt.Errorf("unexpected end of query in triple pattern")
	}
	txt := t.text
	switch {
	case strings.HasPrefix(txt, "?") || strings.HasPrefix(txt, "$"):
		if len(txt) < 2 {
			return rdf.Term{}, fmt.Errorf("empty variable at offset %d", t.pos)
		}
		return rdf.NewVar(txt[1:]), nil
	case strings.HasPrefix(txt, "<") && strings.HasSuffix(txt, ">"):
		return rdf.NewIRI(txt[1 : len(txt)-1]), nil
	case txt == "a" && pos == posPredicate:
		return rdf.NewIRI(rdf.RDFType), nil
	case strings.HasPrefix(txt, "_:"):
		if pos == posPredicate {
			return rdf.Term{}, fmt.Errorf("blank node in predicate position at offset %d", t.pos)
		}
		return rdf.NewBlank(txt[2:]), nil
	case strings.HasPrefix(txt, `"`):
		if pos != posObject {
			return rdf.Term{}, fmt.Errorf("literal outside object position at offset %d", t.pos)
		}
		term, rest, err := rdf.ParseTermString(txt)
		if err != nil || strings.TrimSpace(rest) != "" {
			return rdf.Term{}, fmt.Errorf("malformed literal %q at offset %d", txt, t.pos)
		}
		return term, nil
	case strings.Contains(txt, ":"):
		i := strings.IndexByte(txt, ':')
		base, ok := p.prefixes[txt[:i]]
		if !ok {
			return rdf.Term{}, fmt.Errorf("undeclared prefix %q at offset %d", txt[:i], t.pos)
		}
		return rdf.NewIRI(base + txt[i+1:]), nil
	default:
		return rdf.Term{}, fmt.Errorf("cannot parse term %q at offset %d", txt, t.pos)
	}
}
