package sparql

import (
	"strings"
	"testing"

	"ping/internal/rdf"
)

func TestParseSimplePathKinds(t *testing.T) {
	cases := []struct {
		in       string
		wantPath string
		nullable bool
	}{
		{`SELECT * WHERE { ?x <p>+ ?y }`, "<p>+", false},
		{`SELECT * WHERE { ?x <p>* ?y }`, "<p>*", true},
		{`SELECT * WHERE { ?x <p>/<q> ?y }`, "<p>/<q>", false},
		{`SELECT * WHERE { ?x <p>|<q> ?y }`, "<p>|<q>", false},
		{`SELECT * WHERE { ?x (<p>/<q>)+ ?y }`, "(<p>/<q>)+", false},
		{`SELECT * WHERE { ?x (<p>|<q>)* ?y }`, "(<p>|<q>)*", true},
		{`SELECT * WHERE { ?x <p>/<q>* ?y }`, "<p>/<q>*", false},
		{`SELECT * WHERE { ?x <a>|<b>/<c> ?y }`, "<a>|<b>/<c>", false},
	}
	for _, c := range cases {
		q, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if len(q.Paths) != 1 || len(q.Patterns) != 0 {
			t.Errorf("%q: paths=%d patterns=%d", c.in, len(q.Paths), len(q.Patterns))
			continue
		}
		if got := q.Paths[0].Path.String(); got != c.wantPath {
			t.Errorf("%q: path rendered %q, want %q", c.in, got, c.wantPath)
		}
		if got := q.Paths[0].Path.Nullable(); got != c.nullable {
			t.Errorf("%q: Nullable = %v, want %v", c.in, got, c.nullable)
		}
		// Round-trip through String().
		q2, err := Parse(q.String())
		if err != nil {
			t.Errorf("re-parse %q: %v", q.String(), err)
			continue
		}
		if q2.Paths[0].Path.String() != c.wantPath {
			t.Errorf("%q: round trip changed path to %q", c.in, q2.Paths[0].Path.String())
		}
	}
}

func TestBareIRIStaysPlainPattern(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?x <p> ?y }`)
	if len(q.Paths) != 0 || len(q.Patterns) != 1 {
		t.Fatalf("bare IRI parsed as path: paths=%d patterns=%d", len(q.Paths), len(q.Patterns))
	}
	q2 := MustParse(`SELECT * WHERE { ?x a ?y }`)
	if len(q2.Paths) != 0 || q2.Patterns[0].P.Value != rdf.RDFType {
		t.Fatal("'a' predicate mangled")
	}
}

func TestPathMixedWithBGP(t *testing.T) {
	q := MustParse(`SELECT * WHERE {
		?x <knows>+ ?y .
		?y <name> ?n .
	}`)
	if len(q.Paths) != 1 || len(q.Patterns) != 1 {
		t.Fatalf("paths=%d patterns=%d", len(q.Paths), len(q.Patterns))
	}
	vars := q.AllVars()
	if len(vars) != 3 {
		t.Errorf("AllVars = %v", vars)
	}
	if Classify(q) != ShapeComplex {
		t.Errorf("path query classified %v", Classify(q))
	}
	syms := q.Symbols()
	if len(syms) != 2 { // knows, name
		t.Errorf("Symbols = %v", syms)
	}
}

func TestPathWithPrefixedNames(t *testing.T) {
	q := MustParse(`PREFIX ex: <http://ex.org/>
SELECT * WHERE { ?x ex:knows+/ex:name ?n }`)
	if len(q.Paths) != 1 {
		t.Fatal("prefixed path not parsed")
	}
	iris := q.Paths[0].Path.IRIs(nil)
	if len(iris) != 2 || iris[0].Value != "http://ex.org/knows" || iris[1].Value != "http://ex.org/name" {
		t.Errorf("IRIs = %v", iris)
	}
}

func TestPathErrors(t *testing.T) {
	bad := []string{
		`SELECT * WHERE { ?x <p>/ ?y }`,      // dangling /
		`SELECT * WHERE { ?x <p>| ?y }`,      // dangling |
		`SELECT * WHERE { ?x (<p> ?y }`,      // unclosed paren
		`SELECT * WHERE { ?x <p>/?v ?y }`,    // variable inside path
		`SELECT * WHERE { ?x <p>/"l" ?y }`,   // literal inside path
		`SELECT * WHERE { ?x <p>+ ?y , ?z }`, // comma after path
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestPathPatternVars(t *testing.T) {
	pp := PathPattern{S: rdf.NewVar("x"), Path: PathIRI{IRI: rdf.NewIRI("p")}, O: rdf.NewVar("x")}
	if got := pp.Vars(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Vars = %v", got)
	}
	pp2 := PathPattern{S: rdf.NewIRI("s"), Path: PathIRI{IRI: rdf.NewIRI("p")}, O: rdf.NewVar("o")}
	if got := pp2.Vars(); len(got) != 1 || got[0] != "o" {
		t.Errorf("Vars = %v", got)
	}
}

func TestNestedPathNullability(t *testing.T) {
	// (p*/q*) is nullable, (p*/q) is not, (p|q*) is.
	q := MustParse(`SELECT * WHERE { ?x <p>*/<q>* ?y }`)
	if !q.Paths[0].Path.Nullable() {
		t.Error("p*/q* must be nullable")
	}
	q2 := MustParse(`SELECT * WHERE { ?x <p>*/<q> ?y }`)
	if q2.Paths[0].Path.Nullable() {
		t.Error("p*/q must not be nullable")
	}
	q3 := MustParse(`SELECT * WHERE { ?x <p>|<q>* ?y }`)
	if !q3.Paths[0].Path.Nullable() {
		t.Error("p|q* must be nullable")
	}
}

func TestPathQueryString(t *testing.T) {
	q := MustParse(`SELECT ?y WHERE { <s> <knows>+ ?y . ?y <name> ?n }`)
	s := q.String()
	if !strings.Contains(s, "<knows>+") || !strings.Contains(s, "<name>") {
		t.Errorf("String = %q", s)
	}
}
