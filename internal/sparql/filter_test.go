package sparql

import (
	"strings"
	"testing"

	"ping/internal/rdf"
)

func lookupFrom(m map[string]rdf.Term) func(string) (rdf.Term, bool) {
	return func(name string) (rdf.Term, bool) {
		t, ok := m[name]
		return t, ok
	}
}

func TestParseFilterComparisons(t *testing.T) {
	q := MustParse(`SELECT * WHERE {
		?x <price> ?p .
		FILTER (?p < 100)
	}`)
	if len(q.Filters) != 1 {
		t.Fatalf("filters = %d", len(q.Filters))
	}
	cmp, ok := q.Filters[0].(Comparison)
	if !ok {
		t.Fatalf("filter is %T", q.Filters[0])
	}
	if cmp.Op != OpLt || !cmp.Left.IsVar() || cmp.Left.Value != "p" {
		t.Errorf("comparison = %+v", cmp)
	}
	if cmp.Right.Datatype != "http://www.w3.org/2001/XMLSchema#integer" || cmp.Right.Value != "100" {
		t.Errorf("bare numeral parsed as %+v", cmp.Right)
	}
}

func TestFilterOperators(t *testing.T) {
	five := rdf.NewTypedLiteral("5", "http://www.w3.org/2001/XMLSchema#integer")
	cases := []struct {
		op   CmpOp
		l, r string
		want bool
	}{
		{OpEq, "5", "5", true},
		{OpEq, "5", "6", false},
		{OpNe, "5", "6", true},
		{OpLt, "5", "6", true},
		{OpLt, "6", "5", false},
		{OpLe, "5", "5", true},
		{OpGt, "10", "9", true},
		{OpGe, "9", "9", true},
	}
	for _, c := range cases {
		cmp := Comparison{
			Left:  rdf.NewTypedLiteral(c.l, five.Datatype),
			Op:    c.op,
			Right: rdf.NewTypedLiteral(c.r, five.Datatype),
		}
		if got := cmp.Eval(lookupFrom(nil)); got != c.want {
			t.Errorf("%s %s %s = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestFilterNumericVsLexical(t *testing.T) {
	// Numeric comparison: "9" < "10" numerically (lexically it is not).
	cmp := Comparison{
		Left:  rdf.NewTypedLiteral("9", "http://www.w3.org/2001/XMLSchema#integer"),
		Op:    OpLt,
		Right: rdf.NewTypedLiteral("10", "http://www.w3.org/2001/XMLSchema#integer"),
	}
	if !cmp.Eval(lookupFrom(nil)) {
		t.Error("9 < 10 numerically must hold")
	}
	// Non-numeric strings compare lexically.
	cmp2 := Comparison{
		Left:  rdf.NewLiteral("apple"),
		Op:    OpLt,
		Right: rdf.NewLiteral("banana"),
	}
	if !cmp2.Eval(lookupFrom(nil)) {
		t.Error("apple < banana lexically must hold")
	}
	// Plain numeric-looking literals still compare numerically.
	cmp3 := Comparison{
		Left:  rdf.NewLiteral("9"),
		Op:    OpLt,
		Right: rdf.NewLiteral("10"),
	}
	if !cmp3.Eval(lookupFrom(nil)) {
		t.Error("plain '9' < '10' must compare numerically")
	}
}

func TestFilterVariablesAndUnbound(t *testing.T) {
	env := map[string]rdf.Term{
		"p": rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"),
	}
	cmp := Comparison{Left: rdf.NewVar("p"), Op: OpGt, Right: rdf.NewTypedLiteral("40", "http://www.w3.org/2001/XMLSchema#integer")}
	if !cmp.Eval(lookupFrom(env)) {
		t.Error("?p > 40 with ?p=42 must hold")
	}
	unbound := Comparison{Left: rdf.NewVar("zz"), Op: OpEq, Right: rdf.NewVar("zz")}
	if unbound.Eval(lookupFrom(env)) {
		t.Error("comparison over unbound variable must be false")
	}
}

func TestFilterIRIEquality(t *testing.T) {
	env := map[string]rdf.Term{"x": rdf.NewIRI("http://x/a")}
	eq := Comparison{Left: rdf.NewVar("x"), Op: OpEq, Right: rdf.NewIRI("http://x/a")}
	if !eq.Eval(lookupFrom(env)) {
		t.Error("IRI equality must hold")
	}
	// IRI vs literal: incomparable; only != can hold.
	ne := Comparison{Left: rdf.NewVar("x"), Op: OpNe, Right: rdf.NewLiteral("http://x/a")}
	if !ne.Eval(lookupFrom(env)) {
		t.Error("IRI != literal must hold")
	}
	lt := Comparison{Left: rdf.NewVar("x"), Op: OpLt, Right: rdf.NewLiteral("zzz")}
	if lt.Eval(lookupFrom(env)) {
		t.Error("IRI < literal must be false (incomparable)")
	}
}

func TestFilterBooleanStructure(t *testing.T) {
	q := MustParse(`SELECT * WHERE {
		?x <p> ?v .
		FILTER (?v > 10 && ?v < 20 || ?v = 99)
	}`)
	if len(q.Filters) != 1 {
		t.Fatalf("filters = %d", len(q.Filters))
	}
	or, ok := q.Filters[0].(Or)
	if !ok {
		t.Fatalf("top-level expr is %T, want Or", q.Filters[0])
	}
	if len(or.Parts) != 2 {
		t.Fatalf("or parts = %d", len(or.Parts))
	}
	if _, ok := or.Parts[0].(And); !ok {
		t.Errorf("left or-part is %T, want And", or.Parts[0])
	}
	check := func(v string, want bool) {
		env := map[string]rdf.Term{"v": rdf.NewTypedLiteral(v, "http://www.w3.org/2001/XMLSchema#integer")}
		if got := q.Filters[0].Eval(lookupFrom(env)); got != want {
			t.Errorf("filter(%s) = %v, want %v", v, got, want)
		}
	}
	check("15", true)
	check("5", false)
	check("25", false)
	check("99", true)
}

func TestFilterNegationAndParens(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?x <p> ?v . FILTER (!(?v = 3)) }`)
	not, ok := q.Filters[0].(Not)
	if !ok {
		t.Fatalf("expr is %T", q.Filters[0])
	}
	env3 := map[string]rdf.Term{"v": rdf.NewTypedLiteral("3", "http://www.w3.org/2001/XMLSchema#integer")}
	if not.Eval(lookupFrom(env3)) {
		t.Error("!(3 = 3) must be false")
	}
	env4 := map[string]rdf.Term{"v": rdf.NewTypedLiteral("4", "http://www.w3.org/2001/XMLSchema#integer")}
	if !not.Eval(lookupFrom(env4)) {
		t.Error("!(4 = 3) must be true")
	}
}

func TestFilterStringRoundTrip(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?x <p> ?v . FILTER (?v >= 10 && !(?v = 15)) }`)
	s := q.String()
	if !strings.Contains(s, "FILTER") {
		t.Fatalf("String() dropped FILTER: %s", s)
	}
	q2, err := Parse(s)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(q2.Filters) != 1 {
		t.Errorf("round trip lost filters")
	}
}

func TestFilterVars(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?x <p> ?v . FILTER (?v > 1 || ?w < 2) }`)
	vars := q.Filters[0].Vars(nil)
	if len(vars) != 2 || vars[0] != "v" || vars[1] != "w" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestFilterParseErrors(t *testing.T) {
	bad := []string{
		`SELECT * WHERE { ?x <p> ?v . FILTER ?v > 1 }`,            // missing parens
		`SELECT * WHERE { ?x <p> ?v . FILTER (?v > ) }`,           // missing rhs
		`SELECT * WHERE { ?x <p> ?v . FILTER (?v >) }`,            // missing rhs
		`SELECT * WHERE { ?x <p> ?v . FILTER (?v ~ 3) }`,          // bad operator
		`SELECT * WHERE { ?x <p> ?v . FILTER (?v > 1 }`,           // unclosed
		`SELECT * WHERE { ?x <p> ?v . FILTER (?v > 1 | ?v < 2) }`, // single pipe
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestLessThanOperatorVsIRI(t *testing.T) {
	// The tokenizer must distinguish '<' as operator from '<' opening an
	// IRI, even when an IRI appears later on the same line.
	q := MustParse(`SELECT * WHERE { ?x <p> ?v . FILTER (?v < 5) . ?x <q> ?w }`)
	if len(q.Patterns) != 2 || len(q.Filters) != 1 {
		t.Fatalf("patterns=%d filters=%d", len(q.Patterns), len(q.Filters))
	}
	q2 := MustParse(`SELECT * WHERE { ?x <p> ?v . FILTER (?v <= 5) }`)
	if cmp := q2.Filters[0].(Comparison); cmp.Op != OpLe {
		t.Errorf("<= parsed as %v", cmp.Op)
	}
}

func TestCmpOpString(t *testing.T) {
	ops := map[CmpOp]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v.String() = %q", op, op.String())
		}
	}
}
