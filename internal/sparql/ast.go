// Package sparql implements the SPARQL fragment used by PING: SELECT
// queries over basic graph patterns (BGPs), with PREFIX declarations,
// DISTINCT, and LIMIT. This is the fragment the paper evaluates (§3.2);
// it is monotone, which is what makes progressive answering sound
// (Lemma 4.3).
//
// The package also classifies queries into the paper's three workload
// shapes — star, chain, and complex — which drive the Fig. 6 experiments.
package sparql

import (
	"fmt"
	"strings"

	"ping/internal/rdf"
)

// TriplePattern is one pattern of a BGP. Each position holds an rdf.Term;
// variables are rdf.Variable terms.
type TriplePattern struct {
	S, P, O rdf.Term
}

// String renders the pattern in SPARQL surface syntax.
func (t TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// Vars returns the distinct variable names of the pattern, in SPO order.
func (t TriplePattern) Vars() []string {
	var out []string
	seen := make(map[string]bool, 3)
	for _, term := range []rdf.Term{t.S, t.P, t.O} {
		if term.IsVar() && !seen[term.Value] {
			seen[term.Value] = true
			out = append(out, term.Value)
		}
	}
	return out
}

// Symbols returns the concrete (non-variable) terms of the pattern, in SPO
// order. These are the "query symbols" of Def. 4.1 whose index lookups
// determine slice safety.
func (t TriplePattern) Symbols() []rdf.Term {
	var out []rdf.Term
	for _, term := range []rdf.Term{t.S, t.P, t.O} {
		if term.IsConcrete() {
			out = append(out, term)
		}
	}
	return out
}

// Query is a parsed SPARQL SELECT query.
type Query struct {
	// Vars are the projected variable names; empty means SELECT *.
	Vars []string
	// Distinct is true for SELECT DISTINCT.
	Distinct bool
	// Patterns is the BGP.
	Patterns []TriplePattern
	// Paths holds the property-path patterns (§6.2 navigational
	// extension); empty for plain BGP queries.
	Paths []PathPattern
	// Filters holds FILTER expressions; each row of the joined solution
	// must satisfy all of them.
	Filters []Expr
	// Limit caps the number of results; 0 means no limit.
	Limit int
}

// AllVars returns the distinct variables across the whole BGP in first-use
// order; this is the SELECT * projection.
func (q *Query) AllVars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, p := range q.Patterns {
		for _, v := range p.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	for _, p := range q.Paths {
		for _, v := range p.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Projection returns the effective projected variables: Vars if explicit,
// otherwise all BGP variables.
func (q *Query) Projection() []string {
	if len(q.Vars) > 0 {
		return q.Vars
	}
	return q.AllVars()
}

// Symbols returns the distinct concrete terms across the BGP, including
// the property IRIs and endpoint constants of path patterns.
func (q *Query) Symbols() []rdf.Term {
	var out []rdf.Term
	seen := make(map[string]bool)
	add := func(s rdf.Term) {
		if key := s.String(); !seen[key] {
			seen[key] = true
			out = append(out, s)
		}
	}
	for _, p := range q.Patterns {
		for _, s := range p.Symbols() {
			add(s)
		}
	}
	for _, p := range q.Paths {
		if p.S.IsConcrete() {
			add(p.S)
		}
		if p.O.IsConcrete() {
			add(p.O)
		}
		for _, iri := range p.Path.IRIs(nil) {
			add(iri)
		}
	}
	return out
}

// String renders the query in SPARQL surface syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(q.Vars) == 0 {
		b.WriteString("*")
	} else {
		for i, v := range q.Vars {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteByte('?')
			b.WriteString(v)
		}
	}
	b.WriteString(" WHERE {\n")
	for _, p := range q.Patterns {
		b.WriteString("  ")
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	for _, p := range q.Paths {
		b.WriteString("  ")
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	for _, f := range q.Filters {
		fmt.Fprintf(&b, "  FILTER (%s)\n", f.String())
	}
	b.WriteString("}")
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// Shape is the workload classification used throughout the evaluation.
type Shape uint8

const (
	// ShapeStar marks queries whose patterns all share one subject variable.
	ShapeStar Shape = iota
	// ShapeChain marks queries whose patterns form a subject-object path.
	ShapeChain
	// ShapeComplex marks every other BGP (mixed star+chain, trees, cycles).
	ShapeComplex
)

func (s Shape) String() string {
	switch s {
	case ShapeStar:
		return "star"
	case ShapeChain:
		return "chain"
	case ShapeComplex:
		return "complex"
	default:
		return fmt.Sprintf("Shape(%d)", uint8(s))
	}
}

// Classify returns the workload shape of the query per the paper's §3.2
// definitions: star queries share the same subject variable across all
// patterns; chain queries thread each pattern's object variable into the
// next pattern's subject; everything else is complex.
func Classify(q *Query) Shape {
	if len(q.Paths) > 0 || len(q.Patterns) == 0 {
		// Navigational queries are their own beast; the evaluation
		// buckets them with complex queries.
		return ShapeComplex
	}
	if isStar(q.Patterns) {
		return ShapeStar
	}
	if isChain(q.Patterns) {
		return ShapeChain
	}
	return ShapeComplex
}

func isStar(ps []TriplePattern) bool {
	first := ps[0].S
	if !first.IsVar() {
		return false
	}
	for _, p := range ps {
		if !p.S.IsVar() || p.S.Value != first.Value {
			return false
		}
	}
	return true
}

func isChain(ps []TriplePattern) bool {
	if len(ps) < 2 {
		return false
	}
	for i := 0; i+1 < len(ps); i++ {
		o, s := ps[i].O, ps[i+1].S
		if !o.IsVar() || !s.IsVar() || o.Value != s.Value {
			return false
		}
	}
	return true
}
