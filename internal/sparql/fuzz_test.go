package sparql

import (
	"testing"
)

// FuzzParse checks the SPARQL parser never panics and that every accepted
// query's rendering re-parses to an equivalent AST.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT * WHERE { ?x <p> ?y }`,
		`SELECT DISTINCT ?a WHERE { ?a <p> "v"@en . ?a <q> ?b } LIMIT 3`,
		`PREFIX x: <http://x/> SELECT * WHERE { ?s x:p ?o ; x:q ?o2 , ?o3 . }`,
		`SELECT * WHERE { ?x <p>+/<q> ?y . FILTER (?y > 10 && !(?y = 15)) }`,
		`SELECT * WHERE { ?x (<a>|<b>)* ?y }`,
		`SELECT`,
		`SELECT * WHERE {`,
		`SELECT * WHERE { ?x <p ?y }`,
		`SELECT * WHERE { ?x a ?t . FILTER (?t != <http://x/T>) }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of own rendering failed: %v\nrendering:\n%s", err, rendered)
		}
		if len(q2.Patterns) != len(q.Patterns) || len(q2.Paths) != len(q.Paths) ||
			len(q2.Filters) != len(q.Filters) || q2.Distinct != q.Distinct || q2.Limit != q.Limit {
			t.Fatalf("round trip changed the query:\n%s\nvs\n%s", rendered, q2.String())
		}
	})
}
