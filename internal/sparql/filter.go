package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"ping/internal/rdf"
)

// FILTER support for the monotone fragment: a filter is a selection over
// the bindings of a solution, so adding one never breaks PQA soundness —
// a filtered partial answer is still a subset of the filtered exact
// answer. The supported expression grammar is
//
//	expr   := and ('||' and)*
//	and    := prim ('&&' prim)*
//	prim   := '(' expr ')' | '!' prim | term cmp term
//	cmp    := '=' | '!=' | '<' | '<=' | '>' | '>='
//	term   := ?var | literal | IRI | prefixed name
//
// Comparisons between numeric literals (xsd:integer/decimal/double or
// plain numerals) are numeric; everything else compares by term kind and
// lexical form.

// Expr is a boolean filter expression evaluated against one binding row.
type Expr interface {
	// Eval reports whether the row satisfies the expression. lookup
	// resolves a variable name to its bound term.
	Eval(lookup func(string) (rdf.Term, bool)) bool
	// String renders the expression in SPARQL surface syntax.
	String() string
	// Vars appends the variable names the expression references.
	Vars(acc []string) []string
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(o))
	}
}

// Comparison is term-vs-term comparison; either side may be a variable.
type Comparison struct {
	Left  rdf.Term
	Op    CmpOp
	Right rdf.Term
}

// Eval resolves both sides and compares. Unbound variables make the
// comparison false (SPARQL type errors eliminate the solution).
func (c Comparison) Eval(lookup func(string) (rdf.Term, bool)) bool {
	l, ok := resolve(c.Left, lookup)
	if !ok {
		return false
	}
	r, ok := resolve(c.Right, lookup)
	if !ok {
		return false
	}
	cmp, comparable := compareTerms(l, r)
	if !comparable {
		// Incomparable terms only support (in)equality on identity.
		switch c.Op {
		case OpEq:
			return l == r
		case OpNe:
			return l != r
		default:
			return false
		}
	}
	switch c.Op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	default:
		return false
	}
}

func (c Comparison) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

// Vars appends the comparison's variable references.
func (c Comparison) Vars(acc []string) []string {
	if c.Left.IsVar() {
		acc = append(acc, c.Left.Value)
	}
	if c.Right.IsVar() {
		acc = append(acc, c.Right.Value)
	}
	return acc
}

// And is conjunction.
type And struct {
	Parts []Expr
}

// Eval reports whether every part holds.
func (a And) Eval(lookup func(string) (rdf.Term, bool)) bool {
	for _, p := range a.Parts {
		if !p.Eval(lookup) {
			return false
		}
	}
	return true
}

func (a And) String() string { return joinExprs(a.Parts, " && ") }

// Vars appends every part's variables.
func (a And) Vars(acc []string) []string {
	for _, p := range a.Parts {
		acc = p.Vars(acc)
	}
	return acc
}

// Or is disjunction.
type Or struct {
	Parts []Expr
}

// Eval reports whether any part holds.
func (o Or) Eval(lookup func(string) (rdf.Term, bool)) bool {
	for _, p := range o.Parts {
		if p.Eval(lookup) {
			return true
		}
	}
	return false
}

func (o Or) String() string { return joinExprs(o.Parts, " || ") }

// Vars appends every part's variables.
func (o Or) Vars(acc []string) []string {
	for _, p := range o.Parts {
		acc = p.Vars(acc)
	}
	return acc
}

// Not is negation of a sub-expression. Note that negation of a *filter*
// keeps the overall query monotone in the data: the filter applies to
// each candidate row independently.
type Not struct {
	Sub Expr
}

// Eval negates the sub-expression.
func (n Not) Eval(lookup func(string) (rdf.Term, bool)) bool {
	return !n.Sub.Eval(lookup)
}

func (n Not) String() string { return "!(" + n.Sub.String() + ")" }

// Vars appends the sub-expression's variables.
func (n Not) Vars(acc []string) []string { return n.Sub.Vars(acc) }

func joinExprs(parts []Expr, sep string) string {
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = "(" + p.String() + ")"
	}
	return strings.Join(out, sep)
}

func resolve(t rdf.Term, lookup func(string) (rdf.Term, bool)) (rdf.Term, bool) {
	if t.IsVar() {
		return lookup(t.Value)
	}
	return t, true
}

// compareTerms orders two terms. Numeric literals compare numerically;
// same-kind terms compare lexically; different kinds are incomparable.
func compareTerms(a, b rdf.Term) (int, bool) {
	if a.Kind == rdf.Literal && b.Kind == rdf.Literal {
		if av, aok := numericValue(a); aok {
			if bv, bok := numericValue(b); bok {
				switch {
				case av < bv:
					return -1, true
				case av > bv:
					return 1, true
				default:
					return 0, true
				}
			}
		}
		return strings.Compare(a.Value, b.Value), true
	}
	if a.Kind != b.Kind {
		return 0, false
	}
	return strings.Compare(a.Value, b.Value), true
}

// numericValue parses a literal as a number when its datatype (or
// lexical form) is numeric.
func numericValue(t rdf.Term) (float64, bool) {
	if t.Kind != rdf.Literal || t.Lang != "" {
		return 0, false
	}
	switch t.Datatype {
	case "", "http://www.w3.org/2001/XMLSchema#integer",
		"http://www.w3.org/2001/XMLSchema#decimal",
		"http://www.w3.org/2001/XMLSchema#double",
		"http://www.w3.org/2001/XMLSchema#float",
		"http://www.w3.org/2001/XMLSchema#int",
		"http://www.w3.org/2001/XMLSchema#long":
		v, err := strconv.ParseFloat(t.Value, 64)
		if err != nil {
			return 0, false
		}
		if t.Datatype == "" && !looksNumeric(t.Value) {
			return 0, false
		}
		return v, true
	default:
		return 0, false
	}
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' {
			return false
		}
	}
	return true
}
