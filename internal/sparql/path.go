package sparql

import (
	"strings"

	"ping/internal/rdf"
)

// Property paths implement the paper's §6.2 future-work item: navigational
// queries, including recursion. The supported grammar in the predicate
// position of a triple pattern is
//
//	path    := alt
//	alt     := seq ('|' seq)*
//	seq     := unary ('/' unary)*
//	unary   := primary ('+' | '*')?
//	primary := IRI | prefixed name | 'a' | '(' path ')'
//
// '+' is one-or-more (transitive closure), '*' is zero-or-more (reflexive
// transitive closure). All path operators are monotone, so progressive
// evaluation remains sound: answers only grow as more levels load.

// Path is a property-path expression.
type Path interface {
	isPath()
	// String renders the path in SPARQL surface syntax.
	String() string
	// IRIs appends the property IRIs mentioned anywhere in the path.
	IRIs(acc []rdf.Term) []rdf.Term
	// Nullable reports whether the path matches the empty (zero-length)
	// path, i.e. every node relates to itself.
	Nullable() bool
}

// PathIRI is a single property step.
type PathIRI struct {
	IRI rdf.Term
}

func (p PathIRI) isPath()        {}
func (p PathIRI) String() string { return p.IRI.String() }
func (p PathIRI) IRIs(acc []rdf.Term) []rdf.Term {
	return append(acc, p.IRI)
}

// Nullable reports false: a single step always moves.
func (p PathIRI) Nullable() bool { return false }

// PathSeq is the concatenation p1/p2/....
type PathSeq struct {
	Parts []Path
}

func (p PathSeq) isPath() {}
func (p PathSeq) String() string {
	parts := make([]string, len(p.Parts))
	for i, sub := range p.Parts {
		parts[i] = maybeParen(sub, true)
	}
	return strings.Join(parts, "/")
}
func (p PathSeq) IRIs(acc []rdf.Term) []rdf.Term {
	for _, sub := range p.Parts {
		acc = sub.IRIs(acc)
	}
	return acc
}

// Nullable reports whether every part is nullable.
func (p PathSeq) Nullable() bool {
	for _, sub := range p.Parts {
		if !sub.Nullable() {
			return false
		}
	}
	return true
}

// PathAlt is the alternation p1|p2|....
type PathAlt struct {
	Parts []Path
}

func (p PathAlt) isPath() {}
func (p PathAlt) String() string {
	parts := make([]string, len(p.Parts))
	for i, sub := range p.Parts {
		parts[i] = maybeParen(sub, false)
	}
	return strings.Join(parts, "|")
}
func (p PathAlt) IRIs(acc []rdf.Term) []rdf.Term {
	for _, sub := range p.Parts {
		acc = sub.IRIs(acc)
	}
	return acc
}

// Nullable reports whether any branch is nullable.
func (p PathAlt) Nullable() bool {
	for _, sub := range p.Parts {
		if sub.Nullable() {
			return true
		}
	}
	return false
}

// PathPlus is the one-or-more closure p+.
type PathPlus struct {
	Sub Path
}

func (p PathPlus) isPath()                        {}
func (p PathPlus) String() string                 { return maybeParen(p.Sub, true) + "+" }
func (p PathPlus) IRIs(acc []rdf.Term) []rdf.Term { return p.Sub.IRIs(acc) }

// Nullable reports whether the sub-path is nullable.
func (p PathPlus) Nullable() bool { return p.Sub.Nullable() }

// PathStar is the zero-or-more closure p*.
type PathStar struct {
	Sub Path
}

func (p PathStar) isPath()                        {}
func (p PathStar) String() string                 { return maybeParen(p.Sub, true) + "*" }
func (p PathStar) IRIs(acc []rdf.Term) []rdf.Term { return p.Sub.IRIs(acc) }

// Nullable reports true: zero steps always match.
func (p PathStar) Nullable() bool { return true }

// maybeParen wraps composite sub-paths in parentheses where precedence
// demands it (alternation binds loosest; tight contexts are sequence
// elements and closure operands).
func maybeParen(p Path, tight bool) string {
	switch p.(type) {
	case PathAlt:
		return "(" + p.String() + ")"
	case PathSeq:
		if tight {
			return "(" + p.String() + ")"
		}
	}
	return p.String()
}

// PathPattern is a triple pattern whose predicate is a property path.
type PathPattern struct {
	S    rdf.Term
	Path Path
	O    rdf.Term
}

// String renders the pattern in SPARQL surface syntax.
func (p PathPattern) String() string {
	return p.S.String() + " " + p.Path.String() + " " + p.O.String() + " ."
}

// Vars returns the pattern's distinct variable names in S, O order.
func (p PathPattern) Vars() []string {
	var out []string
	if p.S.IsVar() {
		out = append(out, p.S.Value)
	}
	if p.O.IsVar() && (!p.S.IsVar() || p.O.Value != p.S.Value) {
		out = append(out, p.O.Value)
	}
	return out
}
