package sparql

import (
	"strings"
	"testing"

	"ping/internal/rdf"
)

func TestParseRunningExample(t *testing.T) {
	// The intro query from Example 1 of the paper.
	q, err := Parse(`SELECT * WHERE {
	   ?x <http://x/occursIn> ?b.
	   ?x <http://x/hasKeyword> ?d.
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 2 {
		t.Fatalf("patterns = %d, want 2", len(q.Patterns))
	}
	if got := q.Projection(); len(got) != 3 || got[0] != "x" || got[1] != "b" || got[2] != "d" {
		t.Errorf("Projection = %v", got)
	}
	if Classify(q) != ShapeStar {
		t.Errorf("shape = %v, want star", Classify(q))
	}
}

func TestParseQ55(t *testing.T) {
	// The DBpedia Q55 query from §5.7.
	q, err := Parse(`PREFIX dbo: <http://dbpedia.org/ontology/>
PREFIX dbr: <http://dbpedia.org/resource/>
SELECT * WHERE {
    ?company rdf:type ?company_type.
    ?company dbo:foundationPlace dbr:California.
    ?product dbo:developer ?company.
    ?product rdf:type ?product_type. }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 4 {
		t.Fatalf("patterns = %d, want 4", len(q.Patterns))
	}
	if got := q.Patterns[1].P.Value; got != "http://dbpedia.org/ontology/foundationPlace" {
		t.Errorf("prefixed predicate expanded to %q", got)
	}
	if got := q.Patterns[1].O.Value; got != "http://dbpedia.org/resource/California" {
		t.Errorf("prefixed object expanded to %q", got)
	}
	if got := q.Patterns[0].P.Value; got != rdf.RDFType {
		t.Errorf("rdf:type expanded to %q", got)
	}
	if Classify(q) != ShapeComplex {
		t.Errorf("shape = %v, want complex", Classify(q))
	}
	syms := q.Symbols()
	if len(syms) != 4 { // rdf:type, foundationPlace, California, developer
		t.Errorf("Symbols = %d (%v), want 4", len(syms), syms)
	}
}

func TestParseProjectionDistinctLimit(t *testing.T) {
	q, err := Parse(`SELECT DISTINCT ?a ?c WHERE { ?a <http://x/p> ?b . ?b <http://x/q> ?c } LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct || q.Limit != 10 {
		t.Errorf("Distinct=%v Limit=%d", q.Distinct, q.Limit)
	}
	if got := q.Projection(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("Projection = %v", got)
	}
	if Classify(q) != ShapeChain {
		t.Errorf("shape = %v, want chain", Classify(q))
	}
}

func TestParseSemicolonComma(t *testing.T) {
	q, err := Parse(`SELECT * WHERE {
		?s <http://x/p> ?a ; <http://x/q> ?b , ?c .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 3 {
		t.Fatalf("patterns = %d, want 3", len(q.Patterns))
	}
	for i, p := range q.Patterns {
		if !p.S.IsVar() || p.S.Value != "s" {
			t.Errorf("pattern %d subject = %v, want ?s", i, p.S)
		}
	}
	if q.Patterns[1].P != q.Patterns[2].P {
		t.Error("comma continuation changed the predicate")
	}
}

func TestParseLiterals(t *testing.T) {
	q, err := Parse(`SELECT ?s WHERE {
		?s <http://x/name> "Alice" .
		?s <http://x/bio> "multi word \"quoted\""@en .
		?s <http://x/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Patterns[0].O; got.Kind != rdf.Literal || got.Value != "Alice" {
		t.Errorf("plain literal = %+v", got)
	}
	if got := q.Patterns[1].O; got.Lang != "en" || got.Value != `multi word "quoted"` {
		t.Errorf("lang literal = %+v", got)
	}
	if got := q.Patterns[2].O; got.Datatype != "http://www.w3.org/2001/XMLSchema#integer" {
		t.Errorf("typed literal = %+v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT * { }`,
		`SELECT * WHERE { ?s <p> }`,
		`SELECT * WHERE { ?s <p> ?o`,
		`SELECT ?x * WHERE { ?s <p> ?o }`,
		`SELECT WHERE { ?s <p> ?o }`,
		`SELECT * WHERE { ?s unknown:p ?o }`,
		`SELECT * WHERE { "lit" <p> ?o }`, // literal subject is fine in spec? we reject in predicate only
		`SELECT * WHERE { ?s "lit" ?o }`,  // literal predicate
		`SELECT * WHERE { ?s _:b ?o }`,    // blank predicate
		`SELECT * WHERE { ?s <p> ?o } LIMIT x`,
		`SELECT * WHERE { ?s <p> ?o } trailing`,
		`PREFIX broken SELECT * WHERE { ?s <p> ?o }`,
		`PREFIX x: nope SELECT * WHERE { ?s <p> ?o }`,
		`SELECT * WHERE { ?s <p> ?o ?extra }`,
	}
	for _, in := range bad {
		if in == `SELECT * WHERE { "lit" <p> ?o }` {
			continue // literal subjects are tolerated by the grammar layer
		}
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("not a query")
}

func TestQueryString(t *testing.T) {
	q := MustParse(`SELECT DISTINCT ?a WHERE { ?a <http://x/p> "v" . } LIMIT 5`)
	s := q.String()
	for _, want := range []string{"SELECT DISTINCT ?a", "<http://x/p>", `"v"`, "LIMIT 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	// A rendered query must re-parse to the same AST.
	q2, err := Parse(s)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if q2.String() != s {
		t.Errorf("round trip differs:\n%s\nvs\n%s", s, q2.String())
	}
}

func TestClassifyEdgeCases(t *testing.T) {
	cases := []struct {
		in    string
		shape Shape
	}{
		{`SELECT * WHERE { ?x <http://x/p> ?y }`, ShapeStar},
		{`SELECT * WHERE { <http://x/s> <http://x/p> ?y }`, ShapeComplex}, // constant subject
		{`SELECT * WHERE { ?x <http://x/p> ?y . ?y <http://x/q> ?z . ?z <http://x/r> ?w }`, ShapeChain},
		{`SELECT * WHERE { ?x <http://x/p> ?y . ?x <http://x/q> ?z . ?z <http://x/r> ?w }`, ShapeComplex},
		{`SELECT * WHERE { ?x <http://x/p> ?y . ?z <http://x/q> ?w }`, ShapeComplex},
	}
	for _, c := range cases {
		if got := Classify(MustParse(c.in)); got != c.shape {
			t.Errorf("Classify(%s) = %v, want %v", c.in, got, c.shape)
		}
	}
}

func TestShapeString(t *testing.T) {
	if ShapeStar.String() != "star" || ShapeChain.String() != "chain" || ShapeComplex.String() != "complex" {
		t.Error("Shape.String mismatch")
	}
	if !strings.Contains(Shape(9).String(), "9") {
		t.Error("unknown shape rendering")
	}
}

func TestPatternVarsSymbols(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?x <http://x/p> ?x }`)
	p := q.Patterns[0]
	if got := p.Vars(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Vars = %v", got)
	}
	if got := p.Symbols(); len(got) != 1 || got[0].Value != "http://x/p" {
		t.Errorf("Symbols = %v", got)
	}
}

func TestParseComments(t *testing.T) {
	q, err := Parse(`# leading comment
SELECT * WHERE { # inline
 ?s <http://x/p> ?o . # after pattern
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 1 {
		t.Errorf("patterns = %d, want 1", len(q.Patterns))
	}
}
