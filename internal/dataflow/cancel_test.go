package dataflow

import (
	"context"
	"testing"
)

func TestAttachContextStopsTaskScheduling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewContext(1) // single worker: deterministic task order
	detach := c.AttachContext(ctx)
	defer detach()

	d := Parallelize(c, make([]int, 100), 100)
	ran := 0
	out := Map(d, func(v int) int {
		ran++
		if ran == 3 {
			cancel()
		}
		return v
	})
	if ran != 3 {
		t.Errorf("ran %d tasks after cancellation, want 3", ran)
	}
	if out.Count() >= 100 {
		t.Error("cancelled stage still produced complete output")
	}
	if c.Err() == nil {
		t.Error("Err() should report the cancelled context")
	}
}

func TestDetachRestoresPreviousContext(t *testing.T) {
	c := NewContext(1)
	if c.Err() != nil {
		t.Fatal("fresh context should have no error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	detach := c.AttachContext(ctx)
	if c.Err() == nil {
		t.Fatal("attached cancelled context not visible")
	}
	detach()
	if c.Err() != nil {
		t.Fatal("detach did not restore the previous (nil) signal")
	}

	// Nested attach/detach: inner detach restores the outer signal.
	outer, outerCancel := context.WithCancel(context.Background())
	defer outerCancel()
	d1 := c.AttachContext(outer)
	d2 := c.AttachContext(ctx) // cancelled
	if c.Err() == nil {
		t.Fatal("inner cancelled context not visible")
	}
	d2()
	if c.Err() != nil {
		t.Fatal("inner detach did not restore outer live context")
	}
	d1()
}
