// Package dataflow implements a miniature in-process dataflow engine that
// stands in for Apache Spark in the paper's stack. Data lives in
// partitioned datasets; narrow transformations (map, filter) run
// partition-parallel on a worker pool of simulated executors, and wide
// transformations (distinct, joins, re-partitioning) perform an explicit
// hash shuffle. Every stage records metrics — tasks launched, rows read,
// rows shuffled — which the benchmark harness reports as the "data access"
// measurements of the paper's evaluation.
//
// The engine is deliberately eager (each transformation materializes its
// output) — lineage/lazy evaluation would add complexity without changing
// any behaviour the experiments observe.
package dataflow

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ping/internal/obs"
	"ping/internal/obs/prof"
)

// Metrics aggregates execution counters across all stages run on a
// Context. All fields are updated atomically.
type Metrics struct {
	Stages        int64 // transformations executed
	Tasks         int64 // partition-level tasks launched
	RowsRead      int64 // input rows consumed by narrow stages
	RowsShuffled  int64 // rows moved across partitions by wide stages
	RowsBroadcast int64 // small-side rows replicated to every partition
}

// Context owns the executor pool and metrics. The number of workers models
// the cluster's total core count; defaultParallelism is the partition
// count given to new datasets when the caller does not choose one.
type Context struct {
	workers            int
	defaultParallelism int

	stages        atomic.Int64
	tasks         atomic.Int64
	rowsRead      atomic.Int64
	rowsShuffled  atomic.Int64
	rowsBroadcast atomic.Int64

	// cancelCtx, when set, short-circuits task scheduling so a cancelled
	// or timed-out query cannot keep the worker pool busy. Stages started
	// after cancellation produce incomplete partitions; callers observe
	// Err() and discard the results (ping does this after every
	// evaluation). It also carries the active trace span, under which
	// runTasks nests per-stage spans.
	cancelCtx atomic.Pointer[context.Context]

	// obsMetrics mirrors the counters into named obs series; swapped
	// atomically by SetMetricsRegistry.
	obsMetrics atomic.Pointer[ctxMetrics]
}

// ctxMetrics holds the resolved obs handles for the registry the context
// publishes to.
type ctxMetrics struct {
	stages, tasks, shuffled, broadcast *obs.Counter
}

func newCtxMetrics(reg *obs.Registry) *ctxMetrics {
	if reg == nil {
		return nil
	}
	reg.Describe("dataflow_stages_total", "transformations executed on the worker pool")
	reg.Describe("dataflow_tasks_total", "partition-level tasks launched")
	reg.Describe("dataflow_rows_shuffled_total", "rows moved across partitions by wide stages")
	reg.Describe("dataflow_rows_broadcast_total", "small-side rows replicated to every partition")
	return &ctxMetrics{
		stages:    reg.Counter("dataflow_stages_total", nil),
		tasks:     reg.Counter("dataflow_tasks_total", nil),
		shuffled:  reg.Counter("dataflow_rows_shuffled_total", nil),
		broadcast: reg.Counter("dataflow_rows_broadcast_total", nil),
	}
}

// NewContext creates a context with the given worker count; zero or
// negative means GOMAXPROCS.
func NewContext(workers int) *Context {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := &Context{workers: workers, defaultParallelism: workers * 2}
	c.obsMetrics.Store(newCtxMetrics(obs.Default))
	return c
}

// SetMetricsRegistry redirects the context's named metrics to reg (nil
// disables them). New contexts default to obs.Default.
func (c *Context) SetMetricsRegistry(reg *obs.Registry) {
	c.obsMetrics.Store(newCtxMetrics(reg))
}

// Workers returns the executor pool size.
func (c *Context) Workers() int { return c.workers }

// Metrics returns a snapshot of the counters.
func (c *Context) Metrics() Metrics {
	return Metrics{
		Stages:        c.stages.Load(),
		Tasks:         c.tasks.Load(),
		RowsRead:      c.rowsRead.Load(),
		RowsShuffled:  c.rowsShuffled.Load(),
		RowsBroadcast: c.rowsBroadcast.Load(),
	}
}

// ResetMetrics zeroes the counters; the harness calls this between
// measured queries.
func (c *Context) ResetMetrics() {
	c.stages.Store(0)
	c.tasks.Store(0)
	c.rowsRead.Store(0)
	c.rowsShuffled.Store(0)
	c.rowsBroadcast.Store(0)
}

// AttachContext installs ctx as the cancellation signal for stages run on
// this Context and returns a detach function restoring the previous
// signal. While attached, workers stop claiming tasks once ctx is done;
// the in-flight query must then discard its (partial) results — ping
// checks Err after every evaluation. Queries sharing one Context share
// the signal, so attach per logical query run.
func (c *Context) AttachContext(ctx context.Context) (detach func()) {
	prev := c.cancelCtx.Swap(&ctx)
	return func() { c.cancelCtx.Store(prev) }
}

// Err reports the attached context's error: non-nil once the current
// query run is cancelled or past its deadline.
func (c *Context) Err() error {
	if p := c.cancelCtx.Load(); p != nil {
		return (*p).Err()
	}
	return nil
}

// runTasks executes f(0..n-1) on the worker pool and blocks until done,
// or until the attached context is cancelled (remaining tasks are
// skipped — results are then partial and must be discarded).
func (c *Context) runTasks(n int, f func(i int)) {
	c.stages.Add(1)
	c.tasks.Add(int64(n))
	if m := c.obsMetrics.Load(); m != nil {
		m.stages.Inc()
		m.tasks.Add(int64(n))
	}
	// Nest a stage span under the query's span when one is attached, and
	// charge task time to the query's resource ledger when one is.
	var led *prof.Ledger
	if p := c.cancelCtx.Load(); p != nil {
		led = prof.LedgerFrom(*p)
		if _, sp := obs.StartSpan(*p, "dataflow.stage"); sp != nil {
			sp.SetAttr("tasks", n)
			defer sp.End()
		}
	}
	if led != nil {
		inner := f
		f = func(i int) {
			t0 := time.Now()
			inner(i)
			led.AddTask(time.Since(t0))
		}
	}
	workers := c.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if c.Err() != nil {
				return
			}
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if c.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// Dataset is a partitioned collection of T.
type Dataset[T any] struct {
	ctx   *Context
	parts [][]T
}

// Parallelize distributes data round-robin-by-range into numParts
// partitions (<=0 means the context default).
func Parallelize[T any](ctx *Context, data []T, numParts int) *Dataset[T] {
	if numParts <= 0 {
		numParts = ctx.defaultParallelism
	}
	if numParts > len(data) && len(data) > 0 {
		numParts = len(data)
	}
	if len(data) == 0 {
		numParts = 1
	}
	parts := make([][]T, numParts)
	chunk := (len(data) + numParts - 1) / numParts
	for i := 0; i < numParts; i++ {
		lo := i * chunk
		hi := lo + chunk
		if lo > len(data) {
			lo = len(data)
		}
		if hi > len(data) {
			hi = len(data)
		}
		parts[i] = data[lo:hi]
	}
	return &Dataset[T]{ctx: ctx, parts: parts}
}

// FromPartitions wraps pre-partitioned data without copying.
func FromPartitions[T any](ctx *Context, parts [][]T) *Dataset[T] {
	if len(parts) == 0 {
		parts = [][]T{nil}
	}
	return &Dataset[T]{ctx: ctx, parts: parts}
}

// NumPartitions returns the partition count.
func (d *Dataset[T]) NumPartitions() int { return len(d.parts) }

// Count returns the total number of rows.
func (d *Dataset[T]) Count() int {
	n := 0
	for _, p := range d.parts {
		n += len(p)
	}
	return n
}

// Collect concatenates all partitions into one slice (partition order).
func (d *Dataset[T]) Collect() []T {
	out := make([]T, 0, d.Count())
	for _, p := range d.parts {
		out = append(out, p...)
	}
	return out
}

// Map applies f to every row, partition-parallel.
func Map[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	out := make([][]U, len(d.parts))
	d.ctx.runTasks(len(d.parts), func(i int) {
		in := d.parts[i]
		d.ctx.rowsRead.Add(int64(len(in)))
		o := make([]U, len(in))
		for j, v := range in {
			o[j] = f(v)
		}
		out[i] = o
	})
	return &Dataset[U]{ctx: d.ctx, parts: out}
}

// FlatMap applies f to every row and concatenates the results.
func FlatMap[T, U any](d *Dataset[T], f func(T) []U) *Dataset[U] {
	out := make([][]U, len(d.parts))
	d.ctx.runTasks(len(d.parts), func(i int) {
		in := d.parts[i]
		d.ctx.rowsRead.Add(int64(len(in)))
		var o []U
		for _, v := range in {
			o = append(o, f(v)...)
		}
		out[i] = o
	})
	return &Dataset[U]{ctx: d.ctx, parts: out}
}

// Filter keeps the rows satisfying pred.
func Filter[T any](d *Dataset[T], pred func(T) bool) *Dataset[T] {
	out := make([][]T, len(d.parts))
	d.ctx.runTasks(len(d.parts), func(i int) {
		in := d.parts[i]
		d.ctx.rowsRead.Add(int64(len(in)))
		var o []T
		for _, v := range in {
			if pred(v) {
				o = append(o, v)
			}
		}
		out[i] = o
	})
	return &Dataset[T]{ctx: d.ctx, parts: out}
}

// Union concatenates the partitions of both datasets (bag semantics, like
// Spark's union).
func Union[T any](a, b *Dataset[T]) *Dataset[T] {
	parts := make([][]T, 0, len(a.parts)+len(b.parts))
	parts = append(parts, a.parts...)
	parts = append(parts, b.parts...)
	return &Dataset[T]{ctx: a.ctx, parts: parts}
}

// Pair is a keyed row, the unit of wide (shuffling) transformations.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// fnvMix hashes arbitrary comparable keys by routing them through a map
// would be slow; instead we require the caller to provide a hash via
// KeyHasher when K is not an integer. For the engine's internal use all
// keys are uint64-convertible, so the default hasher covers them.
type hasher[K comparable] func(K) uint64

// shuffle redistributes keyed rows into numParts buckets by key hash and
// counts every moved row.
func shuffle[K comparable, V any](d *Dataset[Pair[K, V]], numParts int, h hasher[K]) *Dataset[Pair[K, V]] {
	if numParts <= 0 {
		numParts = d.ctx.defaultParallelism
	}
	// Each input partition writes to numParts local buckets...
	local := make([][][]Pair[K, V], len(d.parts))
	d.ctx.runTasks(len(d.parts), func(i int) {
		buckets := make([][]Pair[K, V], numParts)
		for _, row := range d.parts[i] {
			b := int(h(row.Key) % uint64(numParts))
			buckets[b] = append(buckets[b], row)
		}
		d.ctx.rowsRead.Add(int64(len(d.parts[i])))
		d.ctx.rowsShuffled.Add(int64(len(d.parts[i])))
		if m := d.ctx.obsMetrics.Load(); m != nil {
			m.shuffled.Add(int64(len(d.parts[i])))
		}
		local[i] = buckets
	})
	// ...then buckets are concatenated per target partition.
	out := make([][]Pair[K, V], numParts)
	d.ctx.runTasks(numParts, func(b int) {
		var o []Pair[K, V]
		for i := range local {
			o = append(o, local[i][b]...)
		}
		out[b] = o
	})
	return &Dataset[Pair[K, V]]{ctx: d.ctx, parts: out}
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// PartitionByKey hash-partitions keyed rows using hash to map keys to
// 64-bit values. Integer-keyed callers can pass func(k K) uint64 {
// return uint64(k) }.
func PartitionByKey[K comparable, V any](d *Dataset[Pair[K, V]], numParts int, hash func(K) uint64) *Dataset[Pair[K, V]] {
	return shuffle(d, numParts, func(k K) uint64 { return mix64(hash(k)) })
}

// JoinByKey computes the inner equi-join of two keyed datasets. Both sides
// are shuffled to the same partitioning, then each partition is joined
// with an in-memory hash table built on the smaller side.
func JoinByKey[K comparable, A, B any](left *Dataset[Pair[K, A]], right *Dataset[Pair[K, B]], numParts int, hash func(K) uint64) *Dataset[Pair[K, JoinRow[A, B]]] {
	if numParts <= 0 {
		numParts = left.ctx.defaultParallelism
	}
	h := func(k K) uint64 { return mix64(hash(k)) }
	l := shuffle(left, numParts, h)
	r := shuffle(right, numParts, h)
	out := make([][]Pair[K, JoinRow[A, B]], numParts)
	left.ctx.runTasks(numParts, func(i int) {
		lp, rp := l.parts[i], r.parts[i]
		left.ctx.rowsRead.Add(int64(len(lp) + len(rp)))
		// Build on the smaller side.
		if len(lp) <= len(rp) {
			table := make(map[K][]A, len(lp))
			for _, row := range lp {
				table[row.Key] = append(table[row.Key], row.Value)
			}
			var o []Pair[K, JoinRow[A, B]]
			for _, row := range rp {
				for _, a := range table[row.Key] {
					o = append(o, Pair[K, JoinRow[A, B]]{row.Key, JoinRow[A, B]{a, row.Value}})
				}
			}
			out[i] = o
		} else {
			table := make(map[K][]B, len(rp))
			for _, row := range rp {
				table[row.Key] = append(table[row.Key], row.Value)
			}
			var o []Pair[K, JoinRow[A, B]]
			for _, row := range lp {
				for _, b := range table[row.Key] {
					o = append(o, Pair[K, JoinRow[A, B]]{row.Key, JoinRow[A, B]{row.Value, b}})
				}
			}
			out[i] = o
		}
	})
	return &Dataset[Pair[K, JoinRow[A, B]]]{ctx: left.ctx, parts: out}
}

// JoinRow pairs the two sides of a join match.
type JoinRow[A, B any] struct {
	Left  A
	Right B
}

// BroadcastJoin computes the inner equi-join by replicating the (small)
// right side to every partition of the left side — Spark's broadcast hash
// join. No shuffle of the big side occurs; the replication cost
// |small| × partitions is recorded in RowsBroadcast.
func BroadcastJoin[K comparable, A, B any](left *Dataset[Pair[K, A]], small []Pair[K, B]) *Dataset[Pair[K, JoinRow[A, B]]] {
	table := make(map[K][]B, len(small))
	for _, row := range small {
		table[row.Key] = append(table[row.Key], row.Value)
	}
	left.ctx.rowsBroadcast.Add(int64(len(small)) * int64(len(left.parts)))
	if m := left.ctx.obsMetrics.Load(); m != nil {
		m.broadcast.Add(int64(len(small)) * int64(len(left.parts)))
	}
	out := make([][]Pair[K, JoinRow[A, B]], len(left.parts))
	left.ctx.runTasks(len(left.parts), func(i int) {
		in := left.parts[i]
		left.ctx.rowsRead.Add(int64(len(in)))
		var o []Pair[K, JoinRow[A, B]]
		for _, row := range in {
			for _, b := range table[row.Key] {
				o = append(o, Pair[K, JoinRow[A, B]]{row.Key, JoinRow[A, B]{row.Value, b}})
			}
		}
		out[i] = o
	})
	return &Dataset[Pair[K, JoinRow[A, B]]]{ctx: left.ctx, parts: out}
}

// Distinct removes duplicate rows via a hash shuffle so that equal rows
// meet in the same partition.
func Distinct[T comparable](d *Dataset[T], numParts int, hash func(T) uint64) *Dataset[T] {
	keyed := Map(d, func(v T) Pair[T, struct{}] { return Pair[T, struct{}]{v, struct{}{}} })
	sh := shuffle(keyed, numParts, func(k T) uint64 { return mix64(hash(k)) })
	out := make([][]T, len(sh.parts))
	d.ctx.runTasks(len(sh.parts), func(i int) {
		seen := make(map[T]struct{}, len(sh.parts[i]))
		var o []T
		for _, row := range sh.parts[i] {
			if _, dup := seen[row.Key]; !dup {
				seen[row.Key] = struct{}{}
				o = append(o, row.Key)
			}
		}
		d.ctx.rowsRead.Add(int64(len(sh.parts[i])))
		out[i] = o
	})
	return &Dataset[T]{ctx: d.ctx, parts: out}
}

// ReduceByKey combines values sharing a key with reduce, after a shuffle.
func ReduceByKey[K comparable, V any](d *Dataset[Pair[K, V]], numParts int, hash func(K) uint64, reduce func(V, V) V) *Dataset[Pair[K, V]] {
	sh := shuffle(d, numParts, func(k K) uint64 { return mix64(hash(k)) })
	out := make([][]Pair[K, V], len(sh.parts))
	d.ctx.runTasks(len(sh.parts), func(i int) {
		acc := make(map[K]V, len(sh.parts[i]))
		order := make([]K, 0, len(sh.parts[i]))
		for _, row := range sh.parts[i] {
			if cur, ok := acc[row.Key]; ok {
				acc[row.Key] = reduce(cur, row.Value)
			} else {
				acc[row.Key] = row.Value
				order = append(order, row.Key)
			}
		}
		d.ctx.rowsRead.Add(int64(len(sh.parts[i])))
		o := make([]Pair[K, V], 0, len(order))
		for _, k := range order {
			o = append(o, Pair[K, V]{k, acc[k]})
		}
		out[i] = o
	})
	return &Dataset[Pair[K, V]]{ctx: d.ctx, parts: out}
}
