package dataflow

import (
	"sort"
	"testing"
	"testing/quick"
)

func intHash(k int) uint64 { return uint64(k) }

func sorted(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestParallelizeCollect(t *testing.T) {
	ctx := NewContext(4)
	data := make([]int, 1000)
	for i := range data {
		data[i] = i
	}
	d := Parallelize(ctx, data, 7)
	if d.NumPartitions() != 7 {
		t.Errorf("NumPartitions = %d, want 7", d.NumPartitions())
	}
	if d.Count() != 1000 {
		t.Errorf("Count = %d", d.Count())
	}
	if got := d.Collect(); !equalInts(got, data) {
		t.Error("Collect does not round-trip Parallelize")
	}
}

func TestParallelizeEdgeCases(t *testing.T) {
	ctx := NewContext(2)
	empty := Parallelize[int](ctx, nil, 5)
	if empty.Count() != 0 || empty.NumPartitions() != 1 {
		t.Errorf("empty: count=%d parts=%d", empty.Count(), empty.NumPartitions())
	}
	tiny := Parallelize(ctx, []int{1, 2}, 10)
	if tiny.NumPartitions() > 2 {
		t.Errorf("2 rows spread over %d partitions", tiny.NumPartitions())
	}
	if tiny.Count() != 2 {
		t.Errorf("tiny count = %d", tiny.Count())
	}
	defaulted := Parallelize(ctx, make([]int, 100), 0)
	if defaulted.NumPartitions() <= 0 {
		t.Error("default parallelism not applied")
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := NewContext(4)
	data := []int{1, 2, 3, 4, 5, 6}
	d := Parallelize(ctx, data, 3)
	doubled := Map(d, func(x int) int { return x * 2 })
	if got := sorted(doubled.Collect()); !equalInts(got, []int{2, 4, 6, 8, 10, 12}) {
		t.Errorf("Map = %v", got)
	}
	evens := Filter(d, func(x int) bool { return x%2 == 0 })
	if got := sorted(evens.Collect()); !equalInts(got, []int{2, 4, 6}) {
		t.Errorf("Filter = %v", got)
	}
	dup := FlatMap(d, func(x int) []int { return []int{x, x} })
	if dup.Count() != 12 {
		t.Errorf("FlatMap count = %d", dup.Count())
	}
}

func TestUnionBagSemantics(t *testing.T) {
	ctx := NewContext(2)
	a := Parallelize(ctx, []int{1, 2}, 1)
	b := Parallelize(ctx, []int{2, 3}, 1)
	u := Union(a, b)
	if got := sorted(u.Collect()); !equalInts(got, []int{1, 2, 2, 3}) {
		t.Errorf("Union = %v", got)
	}
}

func TestDistinct(t *testing.T) {
	ctx := NewContext(4)
	d := Parallelize(ctx, []int{5, 1, 5, 2, 1, 5, 9}, 3)
	got := sorted(Distinct(d, 4, intHash).Collect())
	if !equalInts(got, []int{1, 2, 5, 9}) {
		t.Errorf("Distinct = %v", got)
	}
}

func TestDistinctQuickMatchesMapSemantics(t *testing.T) {
	ctx := NewContext(3)
	err := quick.Check(func(xs []int16) bool {
		data := make([]int, len(xs))
		for i, x := range xs {
			data[i] = int(x)
		}
		want := make(map[int]bool)
		for _, x := range data {
			want[x] = true
		}
		got := Distinct(Parallelize(ctx, data, 4), 3, intHash).Collect()
		if len(got) != len(want) {
			return false
		}
		for _, x := range got {
			if !want[x] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartitionByKeyGroupsKeys(t *testing.T) {
	ctx := NewContext(4)
	var rows []Pair[int, string]
	for i := 0; i < 100; i++ {
		rows = append(rows, Pair[int, string]{i % 10, "v"})
	}
	d := Parallelize(ctx, rows, 5)
	sh := PartitionByKey(d, 4, intHash)
	if sh.Count() != 100 {
		t.Fatalf("shuffle lost rows: %d", sh.Count())
	}
	// Every key must land in exactly one partition.
	where := make(map[int]int)
	for pi, part := range sh.parts {
		for _, row := range part {
			if prev, ok := where[row.Key]; ok && prev != pi {
				t.Fatalf("key %d split across partitions %d and %d", row.Key, prev, pi)
			}
			where[row.Key] = pi
		}
	}
}

func TestJoinByKey(t *testing.T) {
	ctx := NewContext(4)
	left := Parallelize(ctx, []Pair[int, string]{
		{1, "a"}, {2, "b"}, {2, "B"}, {3, "c"},
	}, 2)
	right := Parallelize(ctx, []Pair[int, int]{
		{2, 20}, {3, 30}, {3, 31}, {4, 40},
	}, 3)
	j := JoinByKey(left, right, 4, intHash)
	got := j.Collect()
	// Expected: (2,b,20),(2,B,20),(3,c,30),(3,c,31)
	if len(got) != 4 {
		t.Fatalf("join produced %d rows: %v", len(got), got)
	}
	count := map[[2]interface{}]int{}
	for _, row := range got {
		count[[2]interface{}{row.Value.Left, row.Value.Right}]++
	}
	for _, want := range [][2]interface{}{{"a", 0}} {
		if count[want] != 0 {
			t.Errorf("unmatched key leaked: %v", want)
		}
	}
	for _, want := range [][2]interface{}{{"b", 20}, {"B", 20}, {"c", 30}, {"c", 31}} {
		if count[want] != 1 {
			t.Errorf("missing join row %v", want)
		}
	}
}

func TestJoinByKeyBuildSideSymmetry(t *testing.T) {
	// The hash join builds on the smaller side; results must not depend
	// on which side that is.
	ctx := NewContext(2)
	small := []Pair[int, int]{{1, 10}, {2, 20}}
	big := make([]Pair[int, int], 0, 100)
	for i := 0; i < 100; i++ {
		big = append(big, Pair[int, int]{i % 4, i})
	}
	j1 := JoinByKey(Parallelize(ctx, small, 1), Parallelize(ctx, big, 4), 2, intHash)
	j2 := JoinByKey(Parallelize(ctx, big, 4), Parallelize(ctx, small, 1), 2, intHash)
	if j1.Count() != j2.Count() {
		t.Errorf("asymmetric join: %d vs %d rows", j1.Count(), j2.Count())
	}
	want := 50 // keys 1 and 2 appear 25 times each in big
	if j1.Count() != want {
		t.Errorf("join rows = %d, want %d", j1.Count(), want)
	}
}

func TestReduceByKey(t *testing.T) {
	ctx := NewContext(4)
	var rows []Pair[int, int]
	for i := 1; i <= 100; i++ {
		rows = append(rows, Pair[int, int]{i % 5, i})
	}
	red := ReduceByKey(Parallelize(ctx, rows, 6), 3, intHash, func(a, b int) int { return a + b })
	if red.Count() != 5 {
		t.Fatalf("ReduceByKey produced %d keys, want 5", red.Count())
	}
	total := 0
	for _, row := range red.Collect() {
		total += row.Value
	}
	if total != 5050 {
		t.Errorf("sum over groups = %d, want 5050", total)
	}
}

func TestMetricsAccounting(t *testing.T) {
	ctx := NewContext(4)
	ctx.ResetMetrics()
	d := Parallelize(ctx, make([]int, 1000), 4)
	_ = Map(d, func(x int) int { return x })
	m := ctx.Metrics()
	if m.Stages != 1 || m.Tasks != 4 || m.RowsRead != 1000 {
		t.Errorf("after Map: %+v", m)
	}
	_ = Distinct(d, 4, intHash)
	m = ctx.Metrics()
	if m.RowsShuffled != 1000 {
		t.Errorf("RowsShuffled = %d, want 1000", m.RowsShuffled)
	}
	ctx.ResetMetrics()
	if m := ctx.Metrics(); m.Stages != 0 || m.RowsRead != 0 {
		t.Errorf("ResetMetrics left %+v", m)
	}
}

func TestContextDefaults(t *testing.T) {
	if NewContext(0).Workers() <= 0 {
		t.Error("NewContext(0) has no workers")
	}
	if NewContext(3).Workers() != 3 {
		t.Error("worker count not honored")
	}
}

func TestFromPartitions(t *testing.T) {
	ctx := NewContext(2)
	d := FromPartitions(ctx, [][]int{{1, 2}, {3}})
	if d.Count() != 3 || d.NumPartitions() != 2 {
		t.Errorf("FromPartitions: count=%d parts=%d", d.Count(), d.NumPartitions())
	}
	e := FromPartitions[int](ctx, nil)
	if e.NumPartitions() != 1 || e.Count() != 0 {
		t.Errorf("empty FromPartitions: %d/%d", e.NumPartitions(), e.Count())
	}
}

func TestLargeParallelStress(t *testing.T) {
	ctx := NewContext(8)
	n := 50_000
	data := make([]int, n)
	for i := range data {
		data[i] = i
	}
	d := Parallelize(ctx, data, 16)
	sum := 0
	for _, row := range ReduceByKey(
		Map(d, func(x int) Pair[int, int] { return Pair[int, int]{x % 97, x} }),
		8, intHash, func(a, b int) int { return a + b },
	).Collect() {
		sum += row.Value
	}
	want := n * (n - 1) / 2
	if sum != want {
		t.Errorf("stress sum = %d, want %d", sum, want)
	}
}
