package dataflow

import (
	"sort"
	"testing"
)

func TestBroadcastJoinMatchesShuffleJoin(t *testing.T) {
	ctx := NewContext(4)
	big := make([]Pair[int, int], 0, 1000)
	for i := 0; i < 1000; i++ {
		big = append(big, Pair[int, int]{i % 37, i})
	}
	small := []Pair[int, string]{{3, "a"}, {3, "b"}, {11, "c"}, {99, "never"}}

	bigDS := Parallelize(ctx, big, 6)
	viaBroadcast := BroadcastJoin(bigDS, small)
	viaShuffle := JoinByKey(Parallelize(ctx, big, 6), Parallelize(ctx, small, 2), 4, func(k int) uint64 { return uint64(k) })

	if viaBroadcast.Count() != viaShuffle.Count() {
		t.Fatalf("broadcast %d rows, shuffle %d", viaBroadcast.Count(), viaShuffle.Count())
	}
	norm := func(rows []Pair[int, JoinRow[int, string]]) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = string(rune(r.Key)) + ":" + string(rune(r.Value.Left)) + ":" + r.Value.Right
		}
		sort.Strings(out)
		return out
	}
	a, b := norm(viaBroadcast.Collect()), norm(viaShuffle.Collect())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between broadcast and shuffle join", i)
		}
	}
}

func TestBroadcastJoinMetrics(t *testing.T) {
	ctx := NewContext(2)
	big := make([]Pair[int, int], 100)
	for i := range big {
		big[i] = Pair[int, int]{i % 5, i}
	}
	bigDS := Parallelize(ctx, big, 4)
	ctx.ResetMetrics()
	_ = BroadcastJoin(bigDS, []Pair[int, int]{{1, 10}, {2, 20}})
	m := ctx.Metrics()
	if m.RowsBroadcast != 2*4 {
		t.Errorf("RowsBroadcast = %d, want 8 (2 rows x 4 partitions)", m.RowsBroadcast)
	}
	if m.RowsShuffled != 0 {
		t.Errorf("broadcast join shuffled %d rows", m.RowsShuffled)
	}
}

func TestBroadcastJoinEmptySmall(t *testing.T) {
	ctx := NewContext(2)
	bigDS := Parallelize(ctx, []Pair[int, int]{{1, 1}}, 1)
	j := BroadcastJoin[int, int, int](bigDS, nil)
	if j.Count() != 0 {
		t.Errorf("join with empty small side produced %d rows", j.Count())
	}
}
