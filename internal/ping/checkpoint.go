// Durable PQA checkpoints: hibernating a progressive run after a
// completed step and resuming it later with the exact same final answer
// set as an uninterrupted run.
//
// Why a step boundary is the right cut. A PQA step evaluates the query
// on the accumulated slice C and delivers a sound subset of the exact
// answer (Lemma 4.4). Everything the next step needs is a deterministic
// function of (layout snapshot, strategy, query, C): the slice schedule
// is recomputed identically from the pinned layout, so "resume after
// step k" is exactly "skip the first k scheduled steps and restore C".
// C itself is restored from the checkpoint: the set of loaded (and
// missing) sub-partition keys plus, for incremental runs, the
// per-pattern accumulated relations and cached answers. Re-running the
// remaining steps then produces the same per-step answer sets — and the
// final step still evaluates the maximal slice, so Theorem 4.5's
// exactness is preserved.
//
// Exactness across restarts needs one more ingredient: the layout must
// not have changed. Epoch numbers are process-local (a reloaded store
// restarts at epoch 0), so checkpoints record the layout's content
// signature instead; PQAResumeRun refuses to continue onto a different
// signature with ErrSnapshotMismatch and the caller restarts from
// scratch on the current snapshot.
package ping

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ping/internal/dataflow"
	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/obs/prof"
	"ping/internal/sparql"
)

// ErrSnapshotMismatch reports that the layout a resume would run on does
// not expose the same data as the checkpointed snapshot (the epoch lease
// expired and the data changed, or the resume targets a different
// store). The only sound continuation is a fresh run on the current
// snapshot.
var ErrSnapshotMismatch = errors.New("ping: layout differs from checkpoint snapshot")

// Budget bounds one run segment. Zero fields are unlimited. A budget
// never truncates below one step: each segment makes progress, so a
// client retrying with the returned cursor always terminates.
type Budget struct {
	// MaxSteps caps the progressive steps this segment executes.
	MaxSteps int
	// MaxLoadedRows caps the vertical-partition rows this segment loads.
	// The planner applies it predictively, using the layout's exact
	// per-sub-partition row counts (the same estimates ping.Plan
	// reports): the segment executes the longest schedule prefix whose
	// predicted cumulative rows fit — coverage is monotone in steps, so
	// the longest affordable prefix is the predicted-coverage-maximal
	// one.
	MaxLoadedRows int64
	// Deadline caps the segment's wall-clock time, checked at step
	// boundaries (a started step always completes; mid-step aborts would
	// discard sound work).
	Deadline time.Duration
}

// IsZero reports whether the budget constrains nothing.
func (b Budget) IsZero() bool {
	return b.MaxSteps <= 0 && b.MaxLoadedRows <= 0 && b.Deadline <= 0
}

// StopReason says why a run segment ended.
type StopReason string

const (
	// StopCompleted: the run delivered its final (maximal-slice) step.
	StopCompleted StopReason = "completed"
	// StopCallback: the step callback returned false.
	StopCallback StopReason = "callback"
	// StopBudgetSteps / StopBudgetRows / StopDeadline: the segment hit a
	// Budget bound; the RunStatus carries a resumable checkpoint.
	StopBudgetSteps StopReason = "budget-steps"
	StopBudgetRows  StopReason = "budget-rows"
	StopDeadline    StopReason = "deadline"
)

// RunStatus describes how a PQA segment ended.
type RunStatus struct {
	// Done reports that the final step ran: the last delivered answer
	// set is the run's final answer (exact unless degraded).
	Done bool
	// Reason says what stopped the segment.
	Reason StopReason
	// PlannedSteps is the full schedule length; StepsDone counts the
	// completed steps across the whole lineage (not just this segment).
	PlannedSteps int
	StepsDone    int
	// Checkpoint resumes the run after the last completed step. Nil when
	// Done, or when the segment completed zero steps.
	Checkpoint *Checkpoint
}

// Checkpoint is the durable state of a PQA interrupted at a step
// boundary. It is pure data (serialized by internal/cursor); a
// checkpoint plus the matching layout snapshot fully determines the rest
// of the run.
type Checkpoint struct {
	// Query is the query text (re-parsed on resume).
	Query string
	// Strategy and FailurePolicy pin the schedule the original run used;
	// resuming under a different strategy would renumber the steps.
	Strategy      SliceStrategy
	FailurePolicy FailurePolicy
	// Epoch is the pinned epoch at checkpoint time (process-local, for
	// display); LayoutSig is the snapshot's content signature, the
	// cross-restart identity resume validates against.
	Epoch     uint64
	LayoutSig uint64
	// DictLen/DictSig identify the dictionary prefix the checkpoint's ID
	// relations were encoded against. The layout signature only covers the
	// sub-partition inventory (keys, generations, row counts), so two
	// different datasets with the same shape can collide on it — the
	// dictionary signature pins the actual terms. Resume accepts a
	// dictionary that *extends* the prefix (append-only growth keeps old
	// IDs valid) and refuses anything else: checkpointed IDs must never be
	// decoded through a different dictionary.
	DictLen int
	DictSig uint64
	// StepsDone counts completed steps; resume skips that schedule
	// prefix.
	StepsDone int
	// LoadedKeys lists the sub-partitions in the accumulator, in load
	// order; MissingKeys the ones skipped as unreadable (Degrade).
	LoadedKeys  []hpart.SubPartKey
	MissingKeys []hpart.SubPartKey
	// RowsLoadedCum, ElapsedCum and PrevAnswers restore the run's
	// cumulative accounting.
	RowsLoadedCum int64
	ElapsedCum    time.Duration
	PrevAnswers   int
	// Incremental records the evaluation mode. When true, PatternRels
	// holds the semi-naive evaluator's accumulated per-pattern relations
	// (triple patterns first, then paths) and Answers its cached
	// distinct answers — restoring them makes resume O(path data re-read)
	// instead of O(re-evaluate everything). When false (scratch mode:
	// LIMIT queries or the ablation flag), the accumulator is rebuilt by
	// re-reading LoadedKeys and Answers is informational only.
	Incremental bool
	PatternRels []*engine.Relation
	Answers     *engine.Relation
}

// runConfig parameterizes one segment of the core runner.
type runConfig struct {
	// cp, when non-nil, resumes the run after cp.StepsDone steps.
	cp *Checkpoint
	// budget bounds the segment.
	budget Budget
	// checkpoints makes the runner build a Checkpoint after every step
	// (cheap — relation snapshots are capped-slice headers — but skipped
	// entirely for plain PQA calls).
	checkpoints bool
}

// PQARun executes a (possibly budget-bounded) PQA over the current
// snapshot. fn receives every step plus the checkpoint that resumes
// after it (nil unless checkpointing is on — PQARun always turns it on).
// The returned status says whether the run completed or paused, and on a
// pause carries the resumable checkpoint.
func (p *Processor) PQARun(ctx context.Context, q *sparql.Query, budget Budget, fn func(StepResult, *Checkpoint) bool) (*RunStatus, error) {
	return p.PQARunOn(ctx, nil, q, budget, fn)
}

// PQARunOn is PQARun on an explicit layout snapshot — typically one
// held by an hpart lease, so a pause can hand the same pinned snapshot
// to a later resume. A nil lay pins the processor's current snapshot
// for the duration of the call.
func (p *Processor) PQARunOn(ctx context.Context, lay *hpart.Layout, q *sparql.Query, budget Budget, fn func(StepResult, *Checkpoint) bool) (*RunStatus, error) {
	if lay == nil {
		var release func()
		lay, release = p.pin()
		defer release()
	}
	return p.runPQA(ctx, lay, q, runConfig{budget: budget, checkpoints: true}, fn)
}

// PQAResumeRun continues a checkpointed run on lay, which must be the
// snapshot the checkpoint was taken against (same content signature) —
// typically obtained from an hpart lease. A nil lay pins the processor's
// current snapshot. It returns ErrSnapshotMismatch when the data
// changed; the caller should then start a fresh PQARun on the current
// snapshot and mark the lineage restarted.
func (p *Processor) PQAResumeRun(ctx context.Context, lay *hpart.Layout, cp *Checkpoint, budget Budget, fn func(StepResult, *Checkpoint) bool) (*RunStatus, error) {
	if cp == nil {
		return nil, fmt.Errorf("ping: nil checkpoint")
	}
	if cp.StepsDone < 1 {
		return nil, fmt.Errorf("ping: checkpoint has no completed steps")
	}
	if lay == nil {
		var release func()
		lay, release = p.pin()
		defer release()
	}
	if lay.Signature() != cp.LayoutSig {
		return nil, ErrSnapshotMismatch
	}
	// The checkpoint's ID relations are only meaningful against the
	// dictionary prefix they were encoded with. A dictionary that merely
	// grew since (a maintainer interned new terms) still decodes every
	// checkpointed ID identically; anything else — shorter, or different
	// content at the same length — is a different dictionary and resuming
	// would silently bind IDs to the wrong terms.
	if cp.DictLen > 0 || cp.DictSig != 0 {
		dv := lay.DictView()
		if cp.DictLen > dv.Len() || lay.Dict.PrefixSig(cp.DictLen) != cp.DictSig {
			return nil, fmt.Errorf("ping: dictionary differs from checkpoint prefix: %w", ErrSnapshotMismatch)
		}
	}
	if p.opts.Strategy != cp.Strategy {
		return nil, fmt.Errorf("ping: resume under strategy %v, checkpoint used %v: %w",
			p.opts.Strategy, cp.Strategy, ErrSnapshotMismatch)
	}
	q, err := sparql.Parse(cp.Query)
	if err != nil {
		return nil, fmt.Errorf("ping: checkpoint query: %w", err)
	}
	return p.runPQA(ctx, lay, q, runConfig{cp: cp, budget: budget, checkpoints: true}, fn)
}

// runPQA stamps the query's pprof labels (query_fp from the context,
// trace_id, stage pqa/resume) onto the executing goroutine — dataflow
// workers spawned under it inherit them, so CPU profile samples
// attribute to the fingerprint — then runs the progressive loop.
func (p *Processor) runPQA(ctx context.Context, lay *hpart.Layout, q *sparql.Query, rc runConfig, fn func(StepResult, *Checkpoint) bool) (status *RunStatus, err error) {
	ctx = ensureQueryFP(ctx, q)
	stage := "pqa"
	if rc.cp != nil {
		stage = "resume"
	}
	prof.Do(ctx, stage, func(ctx context.Context) {
		status, err = p.runPQASteps(ctx, lay, q, rc, fn)
	})
	return status, err
}

// runPQASteps is the core progressive loop shared by PQAStepsCtx, PQARun
// and PQAResumeRun: schedule (or re-derive) the slice steps on the pinned
// snapshot, restore the accumulator if resuming, then execute steps
// until the schedule, the budget, or the callback says stop.
func (p *Processor) runPQASteps(ctx context.Context, lay *hpart.Layout, q *sparql.Query, rc runConfig, fn func(StepResult, *Checkpoint) bool) (*RunStatus, error) {
	if len(q.Patterns)+len(q.Paths) == 0 {
		return nil, fmt.Errorf("ping: query has no patterns")
	}
	p.met.epoch.Set(float64(lay.Epoch()))
	p.setDictGauges(lay)
	defer p.setDictGauges(lay)
	p.met.inflight.Add(1)
	defer p.met.inflight.Add(-1)

	status := &RunStatus{Done: true, Reason: StopCompleted}
	hl := p.querySlices(lay, q)
	hlPaths := p.queryPathSlices(lay, q)
	for _, candidates := range hl {
		if len(candidates) == 0 {
			// Unsafe on every slice: no answers anywhere (soundness of
			// the index: absent symbols cannot match).
			return status, nil
		}
	}
	for _, candidates := range hlPaths {
		if len(candidates) == 0 {
			return status, nil
		}
	}

	steps, err := p.sliceSchedule(lay, append(append([][]hpart.SubPartKey{}, hl...), hlPaths...))
	if err != nil {
		return nil, err
	}
	status.PlannedSteps = len(steps)
	startStep := 0
	if rc.cp != nil {
		// The schedule is deterministic in (layout, strategy, query), so
		// the interrupted run's steps 1..StepsDone are exactly our
		// prefix.
		startStep = rc.cp.StepsDone
		if startStep > len(steps) {
			return nil, fmt.Errorf("ping: checkpoint at step %d of a %d-step schedule: %w",
				startStep, len(steps), ErrSnapshotMismatch)
		}
		p.met.resumes.Inc()
	}
	status.StepsDone = startStep

	ctx, qspan := obs.StartSpan(ctx, "pqa")
	defer qspan.End()
	qspan.SetAttr("strategy", p.opts.Strategy.String())
	qspan.SetAttr("patterns", len(q.Patterns))
	qspan.SetAttr("paths", len(q.Paths))
	qspan.SetAttr("planned_steps", len(steps))
	qspan.SetAttr("epoch", lay.Epoch())
	if rc.cp != nil {
		qspan.SetAttr("resumed", true)
		qspan.SetAttr("start_step", startStep)
	}

	detach := p.ctx.AttachContext(ctx)
	defer detach()

	p.met.pqaQueries.Inc()
	incremental := !p.opts.DisableIncremental
	if rc.cp != nil {
		// Mirror the original segment's mode: an incremental checkpoint
		// carries relations, a scratch one only keys.
		incremental = incremental && rc.cp.Incremental
	}
	state := newEvalState(p, lay, q, hl, hlPaths, incremental)
	if rc.cp != nil {
		if err := state.restore(ctx, rc.cp); err != nil {
			return nil, err
		}
	}
	qspan.SetAttr("incremental", state.inc != nil)
	start := time.Now()
	tid := obs.TraceIDFromContext(ctx)
	defer func() { p.met.pqaSeconds.ObserveExemplar(time.Since(start).Seconds(), tid) }()

	// Cumulative elapsed time continues across segments.
	var elapsedBase time.Duration
	if rc.cp != nil {
		elapsedBase = rc.cp.ElapsedCum
	}

	// Step spans collect a "coverage" attribute only once the run is done:
	// coverage is relative to the final answer count, which the early steps
	// cannot know yet. The rule mirrors Result.Coverage exactly (final
	// cardinality zero means coverage 1 everywhere).
	var (
		stepSpans   []*obs.Span
		stepAnswers []int
	)
	setCoverage := func() {
		if len(stepAnswers) == 0 {
			return
		}
		final := stepAnswers[len(stepAnswers)-1]
		for i, sp := range stepSpans {
			cov := 1.0
			if final > 0 {
				cov = float64(stepAnswers[i]) / float64(final)
			}
			sp.SetAttr("coverage", cov)
		}
	}

	// predictedRows prices a step before running it, from the layout's
	// exact per-sub-partition row counts (what ping.Plan reports).
	predictedRows := func(s scheduledStep) int64 {
		var n int64
		for _, k := range s.newKeys {
			if !state.loadedSet[k] && !state.missingSet[k] {
				n += int64(lay.SubPartRows[k])
			}
		}
		return n
	}
	pause := func(reason StopReason, cp *Checkpoint) {
		status.Done = false
		status.Reason = reason
		status.Checkpoint = cp
		p.met.budgetPauses.Inc()
	}

	var (
		lastCp   *Checkpoint
		segRows  int64
		executed int
	)
	for i := startStep; i < len(steps); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Budget checks run at step boundaries, never before the first
		// step of a segment (progress guarantee).
		if executed > 0 && !rc.budget.IsZero() {
			if rc.budget.MaxSteps > 0 && executed >= rc.budget.MaxSteps {
				pause(StopBudgetSteps, lastCp)
				break
			}
			if rc.budget.Deadline > 0 && time.Since(start) >= rc.budget.Deadline {
				pause(StopDeadline, lastCp)
				break
			}
			if rc.budget.MaxLoadedRows > 0 && segRows+predictedRows(steps[i]) > rc.budget.MaxLoadedRows {
				pause(StopBudgetRows, lastCp)
				break
			}
		}
		step := steps[i]
		sctx, ss := obs.StartSpan(ctx, "slice")
		sdetach := p.ctx.AttachContext(sctx)
		state.span = ss
		prevMissing := len(state.missing)
		t0 := time.Now()
		err := state.load(sctx, step.newKeys)
		var answers *engine.Relation
		if err == nil {
			answers, err = state.evaluate()
		}
		state.span = nil
		sdetach()
		if err != nil {
			ss.SetAttr("error", err.Error())
			ss.End()
			return nil, err
		}
		// A cancellation mid-evaluation leaves partial dataflow output;
		// discard it rather than deliver an unsound step.
		if err := ctx.Err(); err != nil {
			ss.End()
			return nil, err
		}
		el := time.Since(t0)
		cum := elapsedBase + time.Since(start)
		sr := StepResult{
			Step:            i + 1,
			MaxLevel:        step.maxLevel,
			NewSubParts:     step.newKeys,
			RowsLoadedStep:  state.rowsLoadedStep,
			RowsLoadedCum:   state.rowsLoadedCum,
			Answers:         answers,
			NewAnswers:      answers.Card() - state.prevAnswers,
			Elapsed:         el,
			ElapsedCum:      cum,
			CacheHits:       state.cacheHitsStep,
			CacheMisses:     state.cacheMissesStep,
			Incremental:     state.inc != nil,
			Degraded:        len(state.missing) > 0,
			MissingSubParts: append([]hpart.SubPartKey(nil), state.missing...),
			Epoch:           lay.Epoch(),
		}
		ss.SetAttr("step", sr.Step)
		ss.SetAttr("max_level", sr.MaxLevel)
		ss.SetAttr("new_subparts", len(sr.NewSubParts))
		ss.SetAttr("rows_loaded_step", sr.RowsLoadedStep)
		ss.SetAttr("rows_loaded_cum", sr.RowsLoadedCum)
		ss.SetAttr("answers", answers.Card())
		ss.SetAttr("new_answers", sr.NewAnswers)
		ss.SetAttr("degraded", sr.Degraded)
		if n := len(sr.MissingSubParts); n > 0 {
			ss.SetAttr("missing_subparts", n)
		}
		if state.cacheHitsStep > 0 || state.cacheMissesStep > 0 {
			ss.SetAttr("cache_hits", state.cacheHitsStep)
			ss.SetAttr("cache_misses", state.cacheMissesStep)
		}
		ss.End()
		stepSpans = append(stepSpans, ss)
		stepAnswers = append(stepAnswers, answers.Card())

		missedNow := len(state.missing) - prevMissing
		p.met.steps.Inc()
		p.met.rowsLoaded.Add(sr.RowsLoadedStep)
		p.met.subparts.Add(int64(len(step.newKeys) - missedNow))
		p.met.missingSubparts.Add(int64(missedNow))
		if sr.Degraded {
			p.met.degradedSteps.Inc()
		}
		if state.inc != nil {
			p.met.incSteps.Inc()
		}
		p.met.stepSeconds.ObserveExemplar(el.Seconds(), tid)

		executed++
		segRows += sr.RowsLoadedStep
		status.StepsDone = i + 1
		state.prevAnswers = answers.Card()
		if rc.checkpoints {
			lastCp = state.checkpoint(q, lay, sr)
		}
		if !fn(sr, lastCp) {
			if i+1 < len(steps) {
				status.Done = false
				status.Reason = StopCallback
				status.Checkpoint = lastCp
			}
			setCoverage()
			return status, nil
		}
	}
	setCoverage()
	if status.Done {
		status.Checkpoint = nil
	}
	return status, nil
}

// checkpoint freezes the run's state after a completed step. Relation
// snapshots are capped-slice headers over the evaluator's storage, so
// this is O(loaded keys), not O(data); the expensive serialization
// happens only if the cursor actually hibernates to disk.
func (st *evalState) checkpoint(q *sparql.Query, lay *hpart.Layout, sr StepResult) *Checkpoint {
	dv := lay.DictView()
	cp := &Checkpoint{
		Query:         q.String(),
		Strategy:      st.p.opts.Strategy,
		FailurePolicy: st.p.opts.FailurePolicy,
		Epoch:         lay.Epoch(),
		LayoutSig:     lay.Signature(),
		DictLen:       dv.Len(),
		DictSig:       dv.Sig(),
		StepsDone:     sr.Step,
		LoadedKeys:    append([]hpart.SubPartKey(nil), st.loaded...),
		MissingKeys:   append([]hpart.SubPartKey(nil), st.missing...),
		RowsLoadedCum: st.rowsLoadedCum,
		ElapsedCum:    sr.ElapsedCum,
		PrevAnswers:   sr.Answers.Card(),
		Incremental:   st.inc != nil,
	}
	if st.inc != nil {
		cp.PatternRels, cp.Answers = st.inc.Snapshot()
	} else {
		rows := sr.Answers.Rows
		cp.Answers = &engine.Relation{Vars: sr.Answers.Vars, Rows: rows[:len(rows):len(rows)]}
	}
	return cp
}

// restore rebuilds the accumulator C from a checkpoint. Incremental
// checkpoints carry their per-pattern relations, so only the data path
// patterns recompute over (their accumulated groups) is re-read from
// storage; scratch checkpoints re-read every loaded key. Group lists are
// keyed and sorted by (level, prop), so a rebuilt accumulator evaluates
// identically to the original regardless of arrival order.
func (st *evalState) restore(ctx context.Context, cp *Checkpoint) error {
	if st.inc != nil {
		wantRels := len(st.q.Patterns) + len(st.q.Paths)
		if len(cp.PatternRels) != wantRels {
			return fmt.Errorf("ping: checkpoint has %d relations for %d patterns: %w",
				len(cp.PatternRels), wantRels, ErrSnapshotMismatch)
		}
	}
	for _, k := range cp.MissingKeys {
		if !st.missingSet[k] {
			st.missingSet[k] = true
			st.missing = append(st.missing, k)
		}
	}
	var toRead []hpart.SubPartKey
	for _, k := range cp.LoadedKeys {
		if st.loadedSet[k] {
			continue
		}
		st.loadedSet[k] = true
		st.loaded = append(st.loaded, k)
		if st.inc == nil {
			toRead = append(toRead, k)
			continue
		}
		for _, set := range st.hlPathSet {
			if set[k] {
				toRead = append(toRead, k)
				break
			}
		}
	}

	var pathGroups [][]engine.PropGroup
	if st.inc != nil {
		pathGroups = make([][]engine.PropGroup, len(st.q.Paths))
	}
	if len(toRead) > 0 {
		results := dataflow.Map(
			dataflow.Parallelize(st.p.ctx, toRead, 0),
			func(k hpart.SubPartKey) loadResult {
				block, hit, err := st.lay.ReadSubPartitionCached(ctx, k)
				return loadResult{block: block, hit: hit, err: err}
			}).Collect()
		if err := ctx.Err(); err != nil {
			return err
		}
		if len(results) != len(toRead) {
			return context.Canceled
		}
		for i, r := range results {
			k := toRead[i]
			if r.err != nil {
				// The data vanished between segments. Under Degrade, drop
				// it from the accumulator (the resumed run is degraded
				// but still sound); under FailFast, abort the resume.
				if st.p.opts.FailurePolicy == Degrade {
					delete(st.loadedSet, k)
					st.dropLoaded(k)
					if !st.missingSet[k] {
						st.missingSet[k] = true
						st.missing = append(st.missing, k)
					}
					continue
				}
				return r.err
			}
			g := engine.PropGroup{Prop: k.Prop, Rows: r.block}
			for pi, set := range st.hlSet {
				if set[k] {
					st.patGroups[pi].insert(k, r.block)
				}
			}
			for pi, set := range st.hlPathSet {
				if set[k] {
					st.pathGroups[pi].insert(k, r.block)
					if pathGroups != nil {
						pathGroups[pi] = append(pathGroups[pi], g)
					}
				}
			}
		}
	}
	if st.inc != nil {
		if err := st.inc.Restore(cp.PatternRels, pathGroups, cp.Answers); err != nil {
			return fmt.Errorf("%v: %w", err, ErrSnapshotMismatch)
		}
	}
	// Restore reads refill the accumulator; they do not re-count as data
	// newly contributed to the run, so the resumed segment's cumulative
	// accounting continues where the original left off.
	st.rowsLoadedCum = cp.RowsLoadedCum
	st.prevAnswers = cp.PrevAnswers
	return nil
}

// dropLoaded removes one key from the load-order list (rare: a restore
// read failed under Degrade).
func (st *evalState) dropLoaded(k hpart.SubPartKey) {
	for i, have := range st.loaded {
		if have == k {
			st.loaded = append(st.loaded[:i], st.loaded[i+1:]...)
			return
		}
	}
}
