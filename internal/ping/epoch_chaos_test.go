package ping

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ping/internal/dataflow"
	"ping/internal/dfs"
	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// epochBatch is one pre-planned update, with the exact triple set the
// store holds after it is applied.
type epochBatch struct {
	add    []rdf.Triple
	remove []rdf.Triple
}

// planBatches pre-encodes every term of every update batch into the
// dict (concurrent queries then only ever read it) and returns the
// batches plus the cumulative graph after each epoch: graphs[e] is the
// triple set at epoch e, graphs[0] the initial one.
func planBatches(rng *rand.Rand, g *rdf.Graph, n int) ([]epochBatch, []*rdf.Graph) {
	batches := make([]epochBatch, n)
	graphs := make([]*rdf.Graph, n+1)
	graphs[0] = g

	current := make(map[rdf.Triple]bool, g.Len())
	for _, tr := range g.Triples {
		current[tr] = true
	}

	for b := 0; b < n; b++ {
		var batch epochBatch
		for tr := range current {
			if rng.Float64() < 0.05 {
				batch.remove = append(batch.remove, tr)
			}
			if len(batch.remove) >= 6 {
				break
			}
		}
		for i := 0; i < 10; i++ {
			tr := rdf.Triple{
				S: g.Dict.EncodeIRI(fmt.Sprintf("s%d", rng.Intn(60))),
				P: g.Dict.EncodeIRI(fmt.Sprintf("p%d", rng.Intn(6))),
				O: g.Dict.EncodeIRI(fmt.Sprintf("s%d", rng.Intn(60))),
			}
			batch.add = append(batch.add, tr)
		}
		for _, tr := range batch.remove {
			delete(current, tr)
		}
		for _, tr := range batch.add {
			current[tr] = true
		}
		ge := &rdf.Graph{Dict: g.Dict}
		for tr := range current {
			ge.AddID(tr)
		}
		ge.Dedup()
		batches[b] = batch
		graphs[b+1] = ge
	}
	return batches, graphs
}

// TestEpochChaosQueriesDuringUpdates is the concurrency property test of
// the snapshot-isolation tentpole, meant to run under -race: PQA runs
// race against a maintainer publishing epochs, and every run must be
// internally consistent with exactly ONE epoch — all steps sound w.r.t.
// that epoch's oracle and the final answer equal to it. A torn read
// (mixing sub-partition states from different epochs) fails the oracle
// check; an unsynchronized map or slice access fails the race detector.
func TestEpochChaosQueriesDuringUpdates(t *testing.T) {
	const (
		epochs  = 5
		readers = 4
	)
	rng := rand.New(rand.NewSource(42))
	g := nestedGraph(7, 60, 5)
	lay, err := hpart.Partition(g, hpart.Options{FS: dfs.New(dfs.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	store := hpart.NewStore(lay)
	maint, err := hpart.NewStoreMaintainer(store)
	if err != nil {
		t.Fatal(err)
	}

	batches, graphs := planBatches(rng, g, epochs)

	queries := []*sparql.Query{
		sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y }`),
		sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?x <p1> ?z }`),
		sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?y <p0> ?z }`),
	}
	// Per-epoch exact oracles, computed up front on the pre-planned
	// graphs so readers need no locking.
	oracleSets := make([][]map[string]bool, epochs+1)
	for e := 0; e <= epochs; e++ {
		oracleSets[e] = make([]map[string]bool, len(queries))
		for qi := range queries {
			oracleSets[e][qi] = answerSet(engine.Naive(graphs[e], queries[qi]).Distinct())
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: publish each batch as a new epoch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for _, b := range batches {
			if err := maint.Apply(b.add, b.remove); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
		}
	}()

	// Readers: hammer PQA until the writer is done, then one final pass
	// at the settled epoch.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			final := false
			for i := 0; ; i++ {
				select {
				case <-done:
					final = true
				default:
				}
				qi := (r + i) % len(queries)
				p := NewProcessorStore(store, Options{
					Context: dataflow.NewContext(1),
				})
				res, err := p.PQA(queries[qi])
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if res.Epoch > epochs {
					t.Errorf("reader %d: impossible epoch %d", r, res.Epoch)
					return
				}
				oracle := oracleSets[res.Epoch][qi]
				for _, st := range res.Steps {
					if st.Epoch != res.Epoch {
						t.Errorf("reader %d: step epoch %d != run epoch %d", r, st.Epoch, res.Epoch)
						return
					}
					if !subset(answerSet(st.Answers), oracle) {
						t.Errorf("reader %d: step %d of epoch-%d run has answers outside the oracle (torn read?)", r, st.Step, res.Epoch)
						return
					}
				}
				got := answerSet(res.Final)
				if len(got) != len(oracle) || !subset(got, oracle) {
					t.Errorf("reader %d: epoch-%d run final has %d answers, oracle %d", r, res.Epoch, len(got), len(oracle))
					return
				}
				if final {
					if res.Epoch != epochs {
						t.Errorf("reader %d: post-settle run pinned epoch %d, want %d", r, res.Epoch, epochs)
					}
					return
				}
			}
		}(r)
	}
	wg.Wait()

	// Nothing pinned any more: every superseded generation must be gone.
	if st := store.Stats(); st.RetiredFiles != 0 || st.PinnedQueries != 0 {
		t.Fatalf("after settle: %+v, want no retired files or pins", st)
	}
}

// TestPQAPinBlocksGC drives the pin/GC interaction from the query side:
// while a PQA run is between steps, an update publishes a new epoch, and
// the superseded files must survive until the run finishes.
func TestPQAPinBlocksGC(t *testing.T) {
	g := nestedGraph(3, 50, 4)
	lay, err := hpart.Partition(g, hpart.Options{FS: dfs.New(dfs.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	store := hpart.NewStore(lay)
	maint, err := hpart.NewStoreMaintainer(store)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcessorStore(store, Options{Context: dataflow.NewContext(1)})

	add := []rdf.Triple{{
		S: g.Dict.EncodeIRI("s0"),
		P: g.Dict.EncodeIRI("p9"),
		O: g.Dict.EncodeIRI("s1"),
	}}

	q := sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?y <p0> ?z }`)
	applied := false
	err = p.PQASteps(q, func(st StepResult) bool {
		if applied {
			return true
		}
		applied = true
		// The run holds its pin right now: publish an epoch under it.
		if err := maint.Apply(add, nil); err != nil {
			t.Errorf("apply: %v", err)
			return false
		}
		if got := store.Stats(); got.RetiredFiles == 0 || got.FilesRemoved != 0 {
			t.Errorf("mid-run: stats %+v, want retired files held for the pin", got)
		}
		if st.Epoch != 0 {
			t.Errorf("mid-run step pinned epoch %d, want 0", st.Epoch)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("PQA delivered no steps")
	}

	// The run released its pin on return; the GC must have collected the
	// epoch-0 generations the update superseded.
	st := store.Stats()
	if st.RetiredFiles != 0 || st.FilesRemoved == 0 || st.PinnedQueries != 0 {
		t.Fatalf("post-run: stats %+v, want retired files collected", st)
	}
}
