package ping

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"ping/internal/engine"
	"ping/internal/faults"
	"ping/internal/hpart"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

var resumeQueries = append(append([]string(nil), testQueries...),
	`SELECT * WHERE { ?x <p0>+ ?y }`,
	`SELECT * WHERE { ?x <p0>/<p1> ?y }`,
	`SELECT * WHERE { ?x <p0>+ ?y . ?y <p1> ?z }`,
	`SELECT * WHERE { ?x <p0> ?y } LIMIT 3`,
)

// resumeOracle evaluates q exactly over the whole graph (Naive handles
// only triple patterns; path queries go through EvaluatePaths).
func resumeOracle(t *testing.T, g *rdf.Graph, q *sparql.Query) map[string]bool {
	t.Helper()
	if len(q.Paths) == 0 {
		return answerSet(engine.Naive(g, q).Distinct())
	}
	return answerSet(pathOracle(t, g, q))
}

// runAll drives a PQARun to completion, collecting the per-step answer
// cardinalities and the last step.
func runAll(t *testing.T, proc *Processor, q *sparql.Query) (counts []int, rows []int64, last StepResult, status *RunStatus) {
	t.Helper()
	st, err := proc.PQARun(context.Background(), q, Budget{}, func(sr StepResult, _ *Checkpoint) bool {
		counts = append(counts, sr.Answers.Card())
		rows = append(rows, sr.RowsLoadedCum)
		last = sr
		return true
	})
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	if !st.Done || st.Reason != StopCompleted {
		t.Fatalf("%s: uninterrupted run not done: %+v", q, st)
	}
	return counts, rows, last, st
}

// TestKillAndResumeMatchesUninterrupted is the core chaos property: a
// PQA interrupted after ANY completed step and resumed from its
// checkpoint delivers the same per-step answer trajectory, the same
// cumulative row accounting, and the same final answer set as an
// uninterrupted run — which in turn equals the naive oracle.
func TestKillAndResumeMatchesUninterrupted(t *testing.T) {
	for seed := int64(0); seed < 2; seed++ {
		g := nestedGraph(seed, 50, 5)
		for _, strategy := range []SliceStrategy{LevelCumulative, LargestFirst} {
			for _, noInc := range []bool{false, true} {
				lay := mustPartition(t, g)
				proc := NewProcessor(lay, Options{Strategy: strategy, DisableIncremental: noInc})
				for _, qs := range resumeQueries {
					q := sparql.MustParse(qs)
					wantCounts, wantRows, wantLast, _ := runAll(t, proc, q)
					if len(wantCounts) < 2 {
						continue // nothing to interrupt
					}
					oracle := resumeOracle(t, g, q)

					for k := 1; k < len(wantCounts); k++ {
						// Interrupt: budget of k steps, keep the checkpoint.
						var got []int
						var gotRows []int64
						st, err := proc.PQARun(context.Background(), q, Budget{MaxSteps: k}, func(sr StepResult, cp *Checkpoint) bool {
							got = append(got, sr.Answers.Card())
							gotRows = append(gotRows, sr.RowsLoadedCum)
							if cp == nil {
								t.Fatalf("%s: no checkpoint on step %d", qs, sr.Step)
							}
							return true
						})
						if err != nil {
							t.Fatalf("%s k=%d: %v", qs, k, err)
						}
						if st.Done || st.Checkpoint == nil || st.Reason != StopBudgetSteps {
							t.Fatalf("%s k=%d: expected budget pause, got %+v", qs, k, st)
						}
						if st.StepsDone != k {
							t.Fatalf("%s k=%d: segment ran %d steps", qs, k, st.StepsDone)
						}

						// Resume and finish.
						var lastSR StepResult
						rst, err := proc.PQAResumeRun(context.Background(), nil, st.Checkpoint, Budget{}, func(sr StepResult, _ *Checkpoint) bool {
							got = append(got, sr.Answers.Card())
							gotRows = append(gotRows, sr.RowsLoadedCum)
							lastSR = sr
							return true
						})
						if err != nil {
							t.Fatalf("%s k=%d resume: %v", qs, k, err)
						}
						if !rst.Done {
							t.Fatalf("%s k=%d: resumed run did not finish: %+v", qs, k, rst)
						}

						// Per-step coverage trajectory identical.
						if len(got) != len(wantCounts) {
							t.Fatalf("%s k=%d: %d steps across segments, want %d", qs, k, len(got), len(wantCounts))
						}
						for i := range got {
							if got[i] != wantCounts[i] {
								t.Fatalf("%s k=%d: step %d has %d answers, want %d", qs, k, i+1, got[i], wantCounts[i])
							}
							if gotRows[i] != wantRows[i] {
								t.Fatalf("%s k=%d: step %d loaded %d cumulative rows, want %d", qs, k, i+1, gotRows[i], wantRows[i])
							}
						}
						// Final answer set identical (and exact, per oracle).
						gotSet := answerSet(lastSR.Answers)
						wantSet := answerSet(wantLast.Answers)
						if len(gotSet) != len(wantSet) || !subset(gotSet, wantSet) {
							t.Fatalf("%s k=%d: resumed final set differs from uninterrupted", qs, k)
						}
						if q.Limit == 0 && (len(gotSet) != len(oracle) || !subset(gotSet, oracle)) {
							t.Fatalf("%s k=%d: resumed final set differs from oracle", qs, k)
						}
					}
				}
			}
		}
	}
}

// TestResumeEveryStepSeparately hibernates after every single step —
// the worst case of a client that dies between each pair of steps.
func TestResumeEveryStepSeparately(t *testing.T) {
	g := nestedGraph(7, 50, 5)
	lay := mustPartition(t, g)
	proc := NewProcessor(lay, Options{})
	for _, qs := range resumeQueries {
		q := sparql.MustParse(qs)
		wantCounts, _, wantLast, _ := runAll(t, proc, q)
		if len(wantCounts) == 0 {
			continue
		}

		var got []int
		var lastSR StepResult
		collect := func(sr StepResult, _ *Checkpoint) bool {
			got = append(got, sr.Answers.Card())
			lastSR = sr
			return true
		}
		st, err := proc.PQARun(context.Background(), q, Budget{MaxSteps: 1}, collect)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		for !st.Done {
			st, err = proc.PQAResumeRun(context.Background(), nil, st.Checkpoint, Budget{MaxSteps: 1}, collect)
			if err != nil {
				t.Fatalf("%s: %v", qs, err)
			}
		}
		if len(got) != len(wantCounts) {
			t.Fatalf("%s: %d steps, want %d", qs, len(got), len(wantCounts))
		}
		for i := range got {
			if got[i] != wantCounts[i] {
				t.Fatalf("%s: step %d has %d answers, want %d", qs, i+1, got[i], wantCounts[i])
			}
		}
		gotSet, wantSet := answerSet(lastSR.Answers), answerSet(wantLast.Answers)
		if len(gotSet) != len(wantSet) || !subset(gotSet, wantSet) {
			t.Fatalf("%s: one-step-at-a-time final set differs", qs)
		}
	}
}

// TestBudgetRowsPicksMaximalPrefix: with a row budget, the segment must
// execute the longest schedule prefix whose predicted rows fit (answers
// coverage is monotone in steps, so longest prefix = maximal predicted
// coverage), then pause with a usable cursor.
func TestBudgetRowsPicksMaximalPrefix(t *testing.T) {
	g := nestedGraph(3, 60, 5)
	lay := mustPartition(t, g)
	proc := NewProcessor(lay, Options{})
	q := sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?x <p1> ?z }`)

	// Predicted per-step rows from an unbudgeted run.
	var stepRows []int64
	if _, err := proc.PQARun(context.Background(), q, Budget{}, func(sr StepResult, _ *Checkpoint) bool {
		stepRows = append(stepRows, sr.RowsLoadedStep)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(stepRows) < 3 {
		t.Skipf("schedule too short (%d steps)", len(stepRows))
	}
	// Budget that affords exactly the first two steps.
	budget := stepRows[0] + stepRows[1]
	var executed int
	st, err := proc.PQARun(context.Background(), q, Budget{MaxLoadedRows: budget}, func(sr StepResult, _ *Checkpoint) bool {
		executed++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if executed != 2 {
		t.Fatalf("executed %d steps within a 2-step row budget", executed)
	}
	if st.Done || st.Reason != StopBudgetRows || st.Checkpoint == nil {
		t.Fatalf("status %+v", st)
	}
	// The cursor is usable: resuming without a budget completes exactly.
	oracle := answerSet(engine.Naive(g, q).Distinct())
	var last StepResult
	rst, err := proc.PQAResumeRun(context.Background(), nil, st.Checkpoint, Budget{}, func(sr StepResult, _ *Checkpoint) bool {
		last = sr
		return true
	})
	if err != nil || !rst.Done {
		t.Fatalf("resume: %v %+v", err, rst)
	}
	got := answerSet(last.Answers)
	if len(got) != len(oracle) || !subset(got, oracle) {
		t.Fatal("budget-paused-then-resumed run lost answers")
	}
}

// TestBudgetNeverStarves: even an absurdly small budget executes one
// step per segment, so repeated resume always terminates.
func TestBudgetNeverStarves(t *testing.T) {
	g := nestedGraph(4, 40, 4)
	proc := NewProcessor(mustPartition(t, g), Options{})
	q := sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?y <p1> ?z }`)
	tiny := Budget{MaxLoadedRows: 1, Deadline: time.Nanosecond}
	steps := 0
	st, err := proc.PQARun(context.Background(), q, tiny, func(StepResult, *Checkpoint) bool { steps++; return true })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; !st.Done; i++ {
		if i > 64 {
			t.Fatal("tiny budget did not terminate")
		}
		st, err = proc.PQAResumeRun(context.Background(), nil, st.Checkpoint, tiny, func(StepResult, *Checkpoint) bool { steps++; return true })
		if err != nil {
			t.Fatal(err)
		}
	}
	if steps == 0 {
		t.Fatal("no steps executed")
	}
}

// TestResumeUnderFaults: kill-and-resume under fault injection with the
// Degrade policy keeps every delivered answer sound (a subset of the
// oracle) and monotone across the segment boundary.
func TestResumeUnderFaults(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		lay, fs, g := chaosLayout(t, seed, 1)
		rng := rand.New(rand.NewSource(seed * 97))
		in := faults.New(randomPlan(rng, 4))
		in.Attach(fs)
		proc := NewProcessor(lay, Options{FailurePolicy: Degrade})
		for _, qs := range testQueries {
			q := sparql.MustParse(qs)
			oracle := answerSet(engine.Naive(g, q).Distinct())
			k := 1 + int(seed)%3
			st, err := proc.PQARun(context.Background(), q, Budget{MaxSteps: k}, func(sr StepResult, _ *Checkpoint) bool {
				if !subset(answerSet(sr.Answers), oracle) {
					t.Fatalf("seed %d %q: false positive before pause", seed, qs)
				}
				return true
			})
			if err != nil {
				t.Fatalf("seed %d %q: %v", seed, qs, err)
			}
			if st.Done {
				continue
			}
			prev := map[string]bool{}
			rst, err := proc.PQAResumeRun(context.Background(), nil, st.Checkpoint, Budget{}, func(sr StepResult, _ *Checkpoint) bool {
				cur := answerSet(sr.Answers)
				if !subset(prev, cur) {
					t.Fatalf("seed %d %q: resumed run lost answers", seed, qs)
				}
				if !subset(cur, oracle) {
					t.Fatalf("seed %d %q: resumed run produced a false positive", seed, qs)
				}
				prev = cur
				return true
			})
			if err != nil {
				t.Fatalf("seed %d %q resume: %v", seed, qs, err)
			}
			if !rst.Done {
				t.Fatalf("seed %d %q: unbudgeted resume did not finish", seed, qs)
			}
		}
	}
}

// TestResumeSnapshotMismatch: publishing an update between pause and
// resume changes the layout signature, so resume on the new snapshot is
// refused with ErrSnapshotMismatch (the caller restarts from scratch).
func TestResumeSnapshotMismatch(t *testing.T) {
	g := nestedGraph(9, 40, 4)
	lay := mustPartition(t, g)
	store := hpart.NewStore(lay)
	m, err := hpart.NewStoreMaintainer(store)
	if err != nil {
		t.Fatal(err)
	}
	proc := NewProcessorStore(store, Options{})
	q := sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?x <p1> ?z }`)

	st, err := proc.PQARun(context.Background(), q, Budget{MaxSteps: 1}, func(StepResult, *Checkpoint) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if st.Done {
		t.Skip("schedule has a single step")
	}
	add := []rdf.Triple{{
		S: g.Dict.EncodeIRI("s0"),
		P: g.Dict.EncodeIRI("p9"),
		O: g.Dict.EncodeIRI("s1"),
	}}
	if err := m.Apply(add, nil); err != nil {
		t.Fatal(err)
	}
	_, err = proc.PQAResumeRun(context.Background(), nil, st.Checkpoint, Budget{}, func(StepResult, *Checkpoint) bool { return true })
	if !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
	}
	// A fresh run on the new snapshot succeeds (the restart path).
	res, err := proc.PQACtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("restarted run not exact")
	}
}
