package ping

import (
	"fmt"
	"strings"
	"testing"

	"ping/internal/rdf"
	"ping/internal/sparql"
)

// TestProductScheduleCap: the literal Algorithm 2 product is capped; a
// query whose per-pattern candidate lists multiply past the cap must fail
// with a clear error instead of enumerating forever.
func TestProductScheduleCap(t *testing.T) {
	// ~120 properties over nested CSs gives each variable-predicate
	// pattern >100 candidate sub-partitions; three such patterns exceed
	// the 2^20 cap.
	g := rdf.NewGraph()
	for s := 0; s < 130; s++ {
		subj := rdf.NewIRI(fmt.Sprintf("s%d", s))
		for p := 0; p <= s%13; p++ {
			g.Add(subj, rdf.NewIRI(fmt.Sprintf("p%d_%d", s%10, p)), rdf.NewIRI("o"))
		}
	}
	g.Dedup()
	lay := mustPartition(t, g)
	proc := NewProcessor(lay, Options{Strategy: ProductOrder})
	// Shared variables keep the joins small; the cap must trip during
	// scheduling, before any evaluation.
	q := sparql.MustParse(`SELECT * WHERE { ?a ?p1 ?b . ?a ?p2 ?c . ?b ?p3 ?d }`)
	nCand := len(proc.PatternSlices(q.Patterns[0]))
	if nCand*nCand*nCand <= 1<<20 {
		t.Skipf("graph too small to exceed the cap (%d^3)", nCand)
	}
	_, err := proc.PQA(q)
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("expected product-cap error, got %v", err)
	}
	// The level strategy handles the same query fine.
	levelProc := NewProcessor(lay, Options{})
	if _, err := levelProc.PQA(q); err != nil {
		t.Fatalf("level strategy failed: %v", err)
	}
}

func TestCoverageZeroAnswerQuery(t *testing.T) {
	g := fig1Graph()
	proc := NewProcessor(mustPartition(t, g), Options{})
	// Safe (all symbols exist) but empty: occursIn of a keyword object.
	q := sparql.MustParse(`SELECT * WHERE { <Keyword546> <occursIn> ?x }`)
	if proc.Safe(q) {
		// SI pruning makes this unsafe (Keyword546 never a subject);
		// use a join that is safe but empty instead.
		t.Log("query pruned as unsafe — as designed")
	}
	q2 := sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?y . ?y <interacts> ?z }`)
	res, err := proc.PQA(q2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Card() != 0 {
		t.Fatalf("expected empty result, got %d", res.Final.Card())
	}
	for i := range res.Steps {
		if res.Coverage(i) != 1 {
			t.Errorf("coverage(%d) = %f for zero-answer query, want 1", i, res.Coverage(i))
		}
	}
}

func TestStepNewSubPartsDisjoint(t *testing.T) {
	// No sub-partition may be loaded twice across steps.
	g := nestedGraph(42, 80, 5)
	proc := NewProcessor(mustPartition(t, g), Options{})
	q := sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?x <p1> ?z . ?y <p0> ?w }`)
	res, err := proc.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, st := range res.Steps {
		for _, k := range st.NewSubParts {
			key := k.String()
			if seen[key] {
				t.Fatalf("sub-partition %s loaded twice", key)
			}
			seen[key] = true
		}
	}
}

func TestLayoutAccessor(t *testing.T) {
	g := fig1Graph()
	lay := mustPartition(t, g)
	proc := NewProcessor(lay, Options{})
	if proc.Layout() != lay {
		t.Error("Layout() does not return the wrapped layout")
	}
}

func TestResultCoverageNoSteps(t *testing.T) {
	r := &Result{Final: nil}
	if got := r.Coverage(0); got != 1 {
		t.Errorf("coverage with no steps = %f", got)
	}
}
