package ping

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"ping/internal/dfs"
	"ping/internal/engine"
	"ping/internal/faults"
	"ping/internal/hpart"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// chaosConfig keeps blocks small so sub-partition files span several
// blocks and nodes, and retries cheap so fault-heavy runs stay fast.
func chaosConfig(replication int) dfs.Config {
	return dfs.Config{
		BlockSize:   256,
		DataNodes:   4,
		Replication: replication,
		MaxRetries:  1,
		RetryBase:   -1, // retry without sleeping
	}
}

func chaosLayout(t *testing.T, seed int64, replication int) (*hpart.Layout, *dfs.FS, *rdf.Graph) {
	t.Helper()
	g := nestedGraph(seed, 50, 5)
	fs := dfs.New(chaosConfig(replication))
	lay, err := hpart.Partition(g, hpart.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	return lay, fs, g
}

// randomPlan draws a fault plan: each node independently gets a read
// error rate, a corruption rate, and possibly a down window.
func randomPlan(rng *rand.Rand, nodes int) faults.Plan {
	plan := faults.Plan{Seed: rng.Int63(), Nodes: make(map[int]faults.NodePlan)}
	rates := []float64{0, 0, 0.2, 0.5, 0.9}
	for n := 0; n < nodes; n++ {
		np := faults.NodePlan{
			ReadErrorRate: rates[rng.Intn(len(rates))],
			CorruptRate:   rates[rng.Intn(len(rates))],
		}
		if rng.Intn(4) == 0 {
			np.DownFrom = int64(rng.Intn(3))
			np.DownUntil = np.DownFrom + int64(rng.Intn(10))
		}
		plan.Nodes[n] = np
	}
	return plan
}

// TestChaosDegradedAnswersAreSound is the chaos property test of the
// fault-injection subsystem: under arbitrary seeded fault plans with no
// replication to fall back on, every answer a Degrade-mode PQA run
// delivers must be a subset of the naive oracle (Lemma 4.4 extended to
// missing sub-partitions), answers must stay monotone across steps, and
// a run that ends non-degraded must be exact.
func TestChaosDegradedAnswersAreSound(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		lay, fs, g := chaosLayout(t, seed, 1)
		rng := rand.New(rand.NewSource(seed * 31))
		in := faults.New(randomPlan(rng, 4))
		in.Attach(fs)
		proc := NewProcessor(lay, Options{FailurePolicy: Degrade})

		for _, qs := range testQueries {
			q := sparql.MustParse(qs)
			oracle := answerSet(engine.Naive(g, q).Distinct())
			res, err := proc.PQA(q)
			if err != nil {
				t.Fatalf("seed %d %q: degraded run errored: %v", seed, qs, err)
			}
			prev := map[string]bool{}
			for i, step := range res.Steps {
				cur := answerSet(step.Answers)
				if !subset(prev, cur) {
					t.Fatalf("seed %d %q: step %d lost answers under faults", seed, qs, i+1)
				}
				if !subset(cur, oracle) {
					t.Fatalf("seed %d %q: step %d produced a false positive under faults", seed, qs, i+1)
				}
				if step.Degraded != (len(step.MissingSubParts) > 0) {
					t.Fatalf("seed %d %q: step %d Degraded flag inconsistent with missing list", seed, qs, i+1)
				}
				prev = cur
			}
			got := answerSet(res.Final)
			if res.Exact {
				if len(got) != len(oracle) || !subset(got, oracle) {
					t.Fatalf("seed %d %q: Exact run has %d answers, oracle %d", seed, qs, len(got), len(oracle))
				}
			} else if !subset(got, oracle) {
				t.Fatalf("seed %d %q: degraded final answers are not a subset", seed, qs)
			}
		}
	}
}

// TestChaosSingleNodeFailureStaysExact checks the failover guarantee:
// with Replication >= 2 every block has replicas on two distinct nodes,
// so any single node being fully down must leave every query exact, with
// no behavioural change visible to the caller except the health stats.
func TestChaosSingleNodeFailureStaysExact(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		for down := 0; down < 4; down++ {
			lay, fs, g := chaosLayout(t, seed, 2)
			in := faults.New(faults.Plan{})
			in.Attach(fs)
			in.KillNode(down)

			for _, policy := range []FailurePolicy{FailFast, Degrade} {
				proc := NewProcessor(lay, Options{FailurePolicy: policy})
				for _, qs := range testQueries {
					q := sparql.MustParse(qs)
					oracle := answerSet(engine.Naive(g, q).Distinct())
					res, err := proc.PQA(q)
					if err != nil {
						t.Fatalf("seed %d node %d down policy %v %q: %v", seed, down, policy, qs, err)
					}
					if !res.Exact {
						t.Fatalf("seed %d node %d down policy %v %q: result degraded despite replication", seed, down, policy, qs)
					}
					got := answerSet(res.Final)
					if len(got) != len(oracle) || !subset(got, oracle) {
						t.Fatalf("seed %d node %d down policy %v %q: %d answers, oracle %d",
							seed, down, policy, qs, len(got), len(oracle))
					}
				}
			}
			if u := fs.Usage(); u.NodeReadErrors[down] == 0 {
				t.Errorf("seed %d: no read errors recorded against downed node %d", seed, down)
			}
		}
	}
}

// TestChaosCorruptNodeStaysExact: a node that corrupts every payload is
// caught by the block checksums and masked by failover, keeping answers
// exact at Replication 2.
func TestChaosCorruptNodeStaysExact(t *testing.T) {
	lay, fs, g := chaosLayout(t, 1, 2)
	in := faults.New(faults.Plan{Seed: 5, Nodes: map[int]faults.NodePlan{
		2: {CorruptRate: 1},
	}})
	in.Attach(fs)
	proc := NewProcessor(lay, Options{})
	for _, qs := range testQueries {
		q := sparql.MustParse(qs)
		oracle := answerSet(engine.Naive(g, q).Distinct())
		res, err := proc.PQA(q)
		if err != nil {
			t.Fatalf("%q: %v", qs, err)
		}
		got := answerSet(res.Final)
		if !res.Exact || len(got) != len(oracle) || !subset(got, oracle) {
			t.Fatalf("%q: corrupt node changed the answer", qs)
		}
	}
}

// TestChaosFailFastSurfacesTypedError: without replication, FailFast
// aborts with an error chain the caller can inspect.
func TestChaosFailFastSurfacesTypedError(t *testing.T) {
	lay, fs, _ := chaosLayout(t, 2, 1)
	in := faults.New(faults.Plan{})
	in.Attach(fs)
	in.KillNode(0)
	in.KillNode(1)
	in.KillNode(2)
	in.KillNode(3)
	proc := NewProcessor(lay, Options{})
	_, err := proc.PQA(sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y }`))
	if err == nil {
		t.Fatal("expected FailFast error with every node down")
	}
	if !errors.Is(err, dfs.ErrNoHealthyReplica) {
		t.Fatalf("err = %v, want wrapped ErrNoHealthyReplica", err)
	}
}

// TestChaosFullyDegradedRunIsEmptyButSound: every node down under
// Degrade yields an empty (still sound) answer and a non-exact result.
func TestChaosFullyDegradedRunIsEmptyButSound(t *testing.T) {
	lay, fs, _ := chaosLayout(t, 3, 1)
	in := faults.New(faults.Plan{})
	in.Attach(fs)
	for n := 0; n < 4; n++ {
		in.KillNode(n)
	}
	proc := NewProcessor(lay, Options{FailurePolicy: Degrade})
	res, err := proc.PQA(sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?x <p1> ?z }`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("fully degraded run claims exactness")
	}
	if res.Final.Card() != 0 {
		t.Errorf("fully degraded run returned %d answers from unreadable storage", res.Final.Card())
	}
	last := res.Steps[len(res.Steps)-1]
	if !last.Degraded || len(last.MissingSubParts) == 0 {
		t.Error("missing sub-partitions not reported")
	}
}

// TestPQACtxCancellation: a cancelled context aborts the run with
// ctx.Err() even while storage is stuck retrying.
func TestPQACtxCancellation(t *testing.T) {
	lay, fs, _ := chaosLayout(t, 4, 1)
	// Make reads hang in long retry backoffs.
	fs.SetRetryPolicy(1000, time.Hour, time.Hour)
	in := faults.New(faults.Plan{})
	in.Attach(fs)
	for n := 0; n < 4; n++ {
		in.KillNode(n)
	}
	proc := NewProcessor(lay, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := proc.PQACtx(ctx, sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y }`))
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled PQA did not return (stuck in storage retry)")
	}
}

// TestPQACtxDeadline: an expired deadline surfaces as DeadlineExceeded.
func TestPQACtxDeadline(t *testing.T) {
	lay, _, _ := chaosLayout(t, 5, 1)
	proc := NewProcessor(lay, Options{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := proc.PQACtx(ctx, sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y }`))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestEQAFullDegrades mirrors the PQA soundness property for one-shot
// exact answering.
func TestEQAFullDegrades(t *testing.T) {
	lay, fs, g := chaosLayout(t, 6, 1)
	in := faults.New(faults.Plan{Seed: 99, Nodes: map[int]faults.NodePlan{
		0: {ReadErrorRate: 1},
	}})
	in.Attach(fs)
	proc := NewProcessor(lay, Options{FailurePolicy: Degrade})
	for _, qs := range testQueries {
		q := sparql.MustParse(qs)
		oracle := answerSet(engine.Naive(g, q).Distinct())
		r, err := proc.EQAFull(context.Background(), q)
		if err != nil {
			t.Fatalf("%q: %v", qs, err)
		}
		got := answerSet(r.Answers)
		if !subset(got, oracle) {
			t.Fatalf("%q: degraded EQA produced a false positive", qs)
		}
		if r.Exact && (len(got) != len(oracle)) {
			t.Fatalf("%q: EQA claims exact with %d answers, oracle %d", qs, len(got), len(oracle))
		}
		if !r.Exact && len(r.MissingSubParts) == 0 {
			t.Fatalf("%q: non-exact EQA reports no missing sub-partitions", qs)
		}
	}
}
