package ping

import (
	"context"
	"math"
	"regexp"
	"strings"
	"testing"

	"ping/internal/dfs"
	"ping/internal/faults"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/sparql"
)

// sliceSpans returns the "slice" children of the run's "pqa" span, in
// step order.
func sliceSpans(root *obs.Span) []*obs.Span {
	pqa := root.Find("pqa")
	var out []*obs.Span
	for _, c := range pqa.Children() {
		if c.Name() == "slice" {
			out = append(out, c)
		}
	}
	return out
}

// TestTraceCoverageMatchesResult is the acceptance check of the tracing
// layer: every step span's "coverage" attribute must equal
// Result.Coverage(i) exactly, and the span tree must thread from pqa
// down to the storage reads.
func TestTraceCoverageMatchesResult(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := nestedGraph(seed, 60, 5)
		lay := mustPartition(t, g)
		proc := NewProcessor(lay, Options{})

		for _, qs := range testQueries {
			q := sparql.MustParse(qs)
			ctx, root := obs.NewTrace(context.Background(), "test")
			res, err := proc.PQACtx(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			root.End()

			spans := sliceSpans(root)
			if len(spans) != len(res.Steps) {
				t.Fatalf("%q: %d slice spans, %d result steps", qs, len(spans), len(res.Steps))
			}
			for i, sp := range spans {
				cov, ok := sp.Attr("coverage").(float64)
				if !ok {
					t.Fatalf("%q: step %d span has no coverage attribute", qs, i+1)
				}
				if want := res.Coverage(i); math.Abs(cov-want) > 1e-12 {
					t.Errorf("%q: step %d span coverage %v, Result.Coverage %v", qs, i+1, cov, want)
				}
				if got := sp.Attr("answers"); got != res.Steps[i].Answers.Card() {
					t.Errorf("%q: step %d span answers %v, want %d", qs, i+1, got, res.Steps[i].Answers.Card())
				}
			}
			// The layout's sub-partition cache can serve a whole query
			// without touching storage; dfs.read spans are required
			// exactly when some step missed the cache.
			missedCache := false
			for _, sp := range spans {
				if m, ok := sp.Attr("cache_misses").(int64); ok && m > 0 {
					missedCache = true
				}
			}
			if missedCache && root.Find("dfs.read") == nil {
				t.Errorf("%q: trace has no dfs.read span — storage layer not threaded", qs)
			}
		}
	}
}

// TestTraceCoverageEarlyStop: when the step callback stops the run early,
// coverage is still stamped on the delivered steps, relative to the last
// delivered answer count (which is what Result.Coverage sees too).
func TestTraceCoverageEarlyStop(t *testing.T) {
	g := nestedGraph(1, 60, 5)
	lay := mustPartition(t, g)
	proc := NewProcessor(lay, Options{})
	q := sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?y <p1> ?z . ?z <p0> ?w }`)

	ctx, root := obs.NewTrace(context.Background(), "test")
	var kept []StepResult
	err := proc.PQAStepsCtx(ctx, q, func(s StepResult) bool {
		kept = append(kept, s)
		return len(kept) < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	spans := sliceSpans(root)
	if len(spans) != len(kept) {
		t.Fatalf("%d slice spans, %d delivered steps", len(spans), len(kept))
	}
	if len(kept) == 0 {
		t.Skip("query produced no steps on this layout")
	}
	final := kept[len(kept)-1].Answers.Card()
	for i, sp := range spans {
		cov, ok := sp.Attr("coverage").(float64)
		if !ok {
			t.Fatalf("step %d span has no coverage attribute after early stop", i+1)
		}
		want := 1.0
		if final > 0 {
			want = float64(kept[i].Answers.Card()) / float64(final)
		}
		if math.Abs(cov-want) > 1e-12 {
			t.Errorf("step %d coverage %v, want %v", i+1, cov, want)
		}
	}
}

// TestCoverageEdgeCases pins Result.Coverage on the boundary inputs: a
// query that is unsafe on every slice (no steps at all) and a fully
// degraded run whose final answer is empty.
func TestCoverageEdgeCases(t *testing.T) {
	g := nestedGraph(2, 40, 4)
	lay := mustPartition(t, g)

	// Unsafe query: the predicate does not exist, so PQA delivers zero
	// steps and coverage is vacuously 1.
	proc := NewProcessor(lay, Options{})
	res, err := proc.PQA(sparql.MustParse(`SELECT * WHERE { ?x <nosuch> ?y }`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 0 {
		t.Fatalf("unsafe query delivered %d steps", len(res.Steps))
	}
	if got := res.Coverage(0); got != 1 {
		t.Errorf("zero-step coverage = %v, want 1", got)
	}
	if res.Final.Card() != 0 || !res.Exact {
		t.Errorf("unsafe query: final %d answers, exact %v", res.Final.Card(), res.Exact)
	}

	// Fully degraded run: every node down, Degrade policy. Steps are
	// delivered with empty answers and non-empty MissingSubParts; a zero
	// final cardinality must yield coverage 1 at every step, not NaN.
	fs := dfs.New(dfs.Config{BlockSize: 256, DataNodes: 2, Replication: 1, MaxRetries: 0, RetryBase: -1})
	lay2, err := hpart.Partition(g, hpart.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(faults.Plan{Nodes: map[int]faults.NodePlan{
		0: {Down: true},
		1: {Down: true},
	}})
	in.Attach(fs)
	proc2 := NewProcessor(lay2, Options{FailurePolicy: Degrade})
	res2, err := proc2.PQA(sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?x <p1> ?z }`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Steps) == 0 {
		t.Fatal("degraded run delivered no steps")
	}
	if res2.Final.Card() != 0 || res2.Exact {
		t.Fatalf("fully degraded run: final %d answers, exact %v", res2.Final.Card(), res2.Exact)
	}
	for i, step := range res2.Steps {
		if !step.Degraded || len(step.MissingSubParts) == 0 {
			t.Errorf("step %d not marked degraded under all-nodes-down", i+1)
		}
		if got := res2.Coverage(i); got != 1 {
			t.Errorf("degraded empty-final coverage(%d) = %v, want 1", i, got)
		}
	}
}

// promLineRE matches one Prometheus text-format sample line.
var promLineRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (?:[0-9.eE+-]+|\+Inf|NaN)$`)

// TestChaosMetricsPrometheus runs a fault-heavy query workload against a
// dedicated registry and checks that the /metrics exposition includes
// the dfs failover/retry counters the fault plan exercised, in valid
// Prometheus text format.
func TestChaosMetricsPrometheus(t *testing.T) {
	reg := obs.NewRegistry()
	lay, fs, _ := chaosLayout(t, 7, 2)
	fs.SetMetrics(reg)
	// Node 0 fails every read: with replication 2 each block still has a
	// healthy replica, so queries stay exact but every read that first
	// lands on node 0 records a failover.
	in := faults.New(faults.Plan{Nodes: map[int]faults.NodePlan{0: {ReadErrorRate: 1}}})
	in.Attach(fs)

	proc := NewProcessor(lay, Options{Metrics: reg})
	for _, qs := range testQueries {
		if _, err := proc.PQA(sparql.MustParse(qs)); err != nil {
			t.Fatalf("%q: %v", qs, err)
		}
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	for _, name := range []string{
		"dfs_failovers_total", "dfs_retry_rounds_total",
		"dfs_node_reads_total", "dfs_node_read_errors_total",
		"ping_queries_total", "ping_steps_total", "ping_rows_loaded_total",
	} {
		if !strings.Contains(text, "# TYPE "+name+" ") {
			t.Errorf("exposition missing %s", name)
		}
	}

	// The plan must actually have produced failovers, and they must be
	// visible both in Usage and on the registry.
	u := fs.Usage()
	if u.NodeReadErrors[0] == 0 {
		t.Fatal("fault plan injected no node-0 read errors")
	}
	var failovers float64
	for _, m := range reg.Snapshot() {
		if m.Name == "dfs_failovers_total" {
			failovers = m.Value
		}
	}
	if failovers == 0 {
		t.Error("dfs_failovers_total is zero despite node-0 read errors with replication 2")
	}

	// Every non-comment line must be a well-formed sample.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLineRE.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

// TestProcessorMetricsCount checks the step/degraded counters against a
// run with a known shape.
func TestProcessorMetricsCount(t *testing.T) {
	reg := obs.NewRegistry()
	g := nestedGraph(3, 50, 5)
	lay := mustPartition(t, g)
	proc := NewProcessor(lay, Options{Metrics: reg})
	res, err := proc.PQA(sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?x <p1> ?z }`))
	if err != nil {
		t.Fatal(err)
	}
	snap := make(map[string]float64)
	for _, m := range reg.Snapshot() {
		key := m.Name
		if mode := m.Labels["mode"]; mode != "" {
			key += "/" + mode
		}
		snap[key] = m.Value
	}
	if got := snap["ping_queries_total/pqa"]; got != 1 {
		t.Errorf("ping_queries_total{mode=pqa} = %v, want 1", got)
	}
	if got := snap["ping_steps_total"]; got != float64(len(res.Steps)) {
		t.Errorf("ping_steps_total = %v, want %d", got, len(res.Steps))
	}
	if got := snap["ping_degraded_steps_total"]; got != 0 {
		t.Errorf("ping_degraded_steps_total = %v, want 0", got)
	}
	var rows int64
	for _, s := range res.Steps {
		rows += s.RowsLoadedStep
	}
	if got := snap["ping_rows_loaded_total"]; got != float64(rows) {
		t.Errorf("ping_rows_loaded_total = %v, want %d", got, rows)
	}
}
