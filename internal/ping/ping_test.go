package ping

import (
	"fmt"
	"math/rand"
	"testing"

	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// fig1Graph is the running example of the paper (Fig. 1): three proteins
// across three hierarchy levels.
func fig1Graph() *rdf.Graph {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	g.Add(iri("P26474"), iri("occursIn"), iri("Organism7"))
	g.Add(iri("P26474"), iri("hasKeyword"), iri("Keyword546"))
	g.Add(iri("P43426"), iri("occursIn"), iri("Organism584"))
	g.Add(iri("P43426"), iri("hasKeyword"), iri("Keyword125"))
	g.Add(iri("P43426"), iri("reference"), iri("Article972"))
	g.Add(iri("P38952"), iri("occursIn"), iri("Organism676"))
	g.Add(iri("P38952"), iri("hasKeyword"), iri("Keyword789"))
	g.Add(iri("P38952"), iri("reference"), iri("Article892"))
	g.Add(iri("P38952"), iri("interacts"), iri("P43426"))
	return g
}

func mustPartition(t *testing.T, g *rdf.Graph) *hpart.Layout {
	t.Helper()
	lay, err := hpart.Partition(g, hpart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

func answerSet(rel *engine.Relation) map[string]bool {
	set := make(map[string]bool, rel.Card())
	for _, row := range rel.Rows {
		key := ""
		for _, v := range row {
			key += fmt.Sprintf("%d|", v)
		}
		set[key] = true
	}
	return set
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestPQARunningExample(t *testing.T) {
	// The intro query (Example 1): star over occursIn + hasKeyword.
	g := fig1Graph()
	proc := NewProcessor(mustPartition(t, g), Options{})
	q := sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?b . ?x <hasKeyword> ?d }`)
	res, err := proc.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	// Both properties exist on all three levels → three progressive steps.
	if len(res.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(res.Steps))
	}
	// One more answer per level (one protein per level).
	for i, want := range []int{1, 2, 3} {
		if got := res.Steps[i].Answers.Card(); got != want {
			t.Errorf("step %d answers = %d, want %d", i+1, got, want)
		}
	}
	// Coverage climbs 1/3 → 2/3 → 1.
	if c := res.Coverage(0); c < 0.32 || c > 0.35 {
		t.Errorf("coverage(0) = %f", c)
	}
	if res.Coverage(2) != 1 {
		t.Errorf("coverage(final) = %f", res.Coverage(2))
	}
	// Final must match the oracle.
	want := engine.Naive(g, q).Distinct()
	if res.Final.Card() != want.Card() {
		t.Errorf("final = %d answers, oracle = %d", res.Final.Card(), want.Card())
	}
}

func TestPatternSlicesExample5(t *testing.T) {
	// Example 5: T1 = (?x hasKeyword Keyword789). VP[hasKeyword] =
	// {1,2,3}, OI[Keyword789] = {3} → HL(T1) = {L3[hasKeyword]}.
	g := fig1Graph()
	proc := NewProcessor(mustPartition(t, g), Options{})
	pat := sparql.TriplePattern{
		S: rdf.NewVar("x"),
		P: rdf.NewIRI("hasKeyword"),
		O: rdf.NewIRI("Keyword789"),
	}
	hl := proc.PatternSlices(pat)
	if len(hl) != 1 || hl[0].Level != 3 {
		t.Fatalf("HL(T1) = %v, want [L3[hasKeyword]]", hl)
	}
	// T0 = (?x occursIn ?b) spans all three levels.
	hl0 := proc.PatternSlices(sparql.TriplePattern{
		S: rdf.NewVar("x"), P: rdf.NewIRI("occursIn"), O: rdf.NewVar("b"),
	})
	if len(hl0) != 3 {
		t.Fatalf("HL(T0) = %v, want 3 sub-partitions", hl0)
	}
	// T2 = (?x interacts ?y) only on level 3.
	hl2 := proc.PatternSlices(sparql.TriplePattern{
		S: rdf.NewVar("x"), P: rdf.NewIRI("interacts"), O: rdf.NewVar("y"),
	})
	if len(hl2) != 1 || hl2[0].Level != 3 {
		t.Fatalf("HL(T2) = %v", hl2)
	}
}

func TestPQAExample5Query(t *testing.T) {
	g := fig1Graph()
	proc := NewProcessor(mustPartition(t, g), Options{})
	q := sparql.MustParse(`SELECT * WHERE {
		?x <occursIn> ?b .
		?x <hasKeyword> <Keyword789> .
		?x <interacts> ?y }`)
	res, err := proc.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	// Protein38952 is the only answer; it lives on L3.
	if res.Final.Card() != 1 {
		t.Fatalf("final answers = %d, want 1", res.Final.Card())
	}
	want := engine.Naive(g, q).Distinct()
	if res.Final.Card() != want.Card() {
		t.Errorf("PQA final disagrees with oracle")
	}
}

func TestUnsafeQueryReturnsEmpty(t *testing.T) {
	g := fig1Graph()
	proc := NewProcessor(mustPartition(t, g), Options{})
	for _, qs := range []string{
		`SELECT * WHERE { ?x <noSuchProperty> ?y }`,
		`SELECT * WHERE { ?x <occursIn> <NoSuchObject> }`,
		`SELECT * WHERE { <NoSuchSubject> <occursIn> ?y }`,
		// Safe per pattern, but the constant never co-occurs on a level
		// with interacts as subject... (Keyword546 only on L1, interacts
		// only on L3 → second pattern unsafe at shared levels is fine;
		// each pattern is evaluated on its own slice set, so this query
		// is safe but has zero answers.)
	} {
		q := sparql.MustParse(qs)
		if proc.Safe(q) {
			t.Errorf("Safe(%q) = true", qs)
		}
		res, err := proc.PQA(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Steps) != 0 || res.Final.Card() != 0 {
			t.Errorf("unsafe query %q returned %d steps / %d answers", qs, len(res.Steps), res.Final.Card())
		}
		rel, _, err := proc.EQA(q)
		if err != nil {
			t.Fatal(err)
		}
		if rel.Card() != 0 {
			t.Errorf("EQA of unsafe query returned %d answers", rel.Card())
		}
	}
}

// nestedGraph builds a randomized graph with nested characteristic sets
// (prefix chains) plus cross-links, so hierarchies have several levels and
// chain queries have answers.
func nestedGraph(seed int64, subjects, depth int) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	for s := 0; s < subjects; s++ {
		subj := rdf.NewIRI(fmt.Sprintf("s%d", s))
		d := 1 + rng.Intn(depth)
		for i := 0; i < d; i++ {
			// Objects are other subjects so chains can match.
			obj := rdf.NewIRI(fmt.Sprintf("s%d", rng.Intn(subjects)))
			g.Add(subj, rdf.NewIRI(fmt.Sprintf("p%d", i)), obj)
		}
	}
	g.Dedup()
	return g
}

var testQueries = []string{
	`SELECT * WHERE { ?x <p0> ?y }`,
	`SELECT * WHERE { ?x <p0> ?y . ?x <p1> ?z }`,
	`SELECT * WHERE { ?x <p0> ?y . ?y <p0> ?z }`,
	`SELECT * WHERE { ?x <p0> ?y . ?y <p1> ?z . ?z <p0> ?w }`,
	`SELECT * WHERE { ?x <p2> ?y . ?x <p3> ?z . ?y <p0> ?w }`,
	`SELECT * WHERE { ?x <p0> <s3> }`,
	`SELECT * WHERE { <s1> <p0> ?y . ?y <p1> ?z }`,
	`SELECT DISTINCT ?x WHERE { ?x <p1> ?y . ?x <p2> ?z }`,
}

// TestPQAFormalProperties checks Lemma 4.3 (monotonicity), Lemma 4.4
// (boundedness), and Theorem 4.5 (EQA soundness & completeness) on random
// graphs across all slice strategies.
func TestPQAFormalProperties(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := nestedGraph(seed, 60, 5)
		lay := mustPartition(t, g)
		for _, qs := range testQueries {
			q := sparql.MustParse(qs)
			oracle := answerSet(engine.Naive(g, q).Distinct())
			for _, strat := range []SliceStrategy{LevelCumulative, ProductOrder, LargestFirst, SmallestFirst} {
				proc := NewProcessor(lay, Options{Strategy: strat})
				res, err := proc.PQA(q)
				if err != nil {
					t.Fatalf("seed %d strat %v %q: %v", seed, strat, qs, err)
				}
				prev := map[string]bool{}
				for i, step := range res.Steps {
					cur := answerSet(step.Answers)
					// Lemma 4.3: answers grow monotonically.
					if !subset(prev, cur) {
						t.Fatalf("seed %d strat %v %q: step %d lost answers", seed, strat, qs, i+1)
					}
					// Lemma 4.4: every partial answer is exact.
					if !subset(cur, oracle) {
						t.Fatalf("seed %d strat %v %q: step %d produced a false positive", seed, strat, qs, i+1)
					}
					prev = cur
				}
				// Theorem 4.5: the maximal slice gives the exact result.
				if got := answerSet(res.Final); len(got) != len(oracle) || !subset(got, oracle) {
					t.Fatalf("seed %d strat %v %q: final %d answers, oracle %d",
						seed, strat, qs, len(got), len(oracle))
				}
			}
		}
	}
}

func TestEQAMatchesOracle(t *testing.T) {
	for seed := int64(10); seed < 13; seed++ {
		g := nestedGraph(seed, 80, 5)
		proc := NewProcessor(mustPartition(t, g), Options{})
		for _, qs := range testQueries {
			q := sparql.MustParse(qs)
			rel, stats, err := proc.EQA(q)
			if err != nil {
				t.Fatalf("seed %d %q: %v", seed, qs, err)
			}
			oracle := answerSet(engine.Naive(g, q).Distinct())
			got := answerSet(rel)
			if len(got) != len(oracle) || !subset(got, oracle) {
				t.Fatalf("seed %d %q: EQA %d answers, oracle %d", seed, qs, len(got), len(oracle))
			}
			if rel.Card() > 0 && stats.InputRows == 0 {
				t.Errorf("seed %d %q: no input rows recorded", seed, qs)
			}
		}
	}
}

// TestEQAPrunesDataAccess verifies §5.6's headline: with a constant that
// lives on one level only, PING touches a strict subset of the full
// vertical partition.
func TestEQAPrunesDataAccess(t *testing.T) {
	g := fig1Graph()
	proc := NewProcessor(mustPartition(t, g), Options{})
	// Keyword789 only exists on L3; occursIn spans all levels but the
	// whole vertical partition has 3 rows. The pruned query must load
	// fewer rows than the unpruned one.
	qPruned := sparql.MustParse(`SELECT * WHERE { ?x <hasKeyword> <Keyword789> }`)
	_, statsPruned, err := proc.EQA(qPruned)
	if err != nil {
		t.Fatal(err)
	}
	qFull := sparql.MustParse(`SELECT * WHERE { ?x <hasKeyword> ?k }`)
	_, statsFull, err := proc.EQA(qFull)
	if err != nil {
		t.Fatal(err)
	}
	if statsPruned.InputRows >= statsFull.InputRows {
		t.Errorf("pruned loaded %d rows, full %d: OI pruning ineffective",
			statsPruned.InputRows, statsFull.InputRows)
	}
	if statsPruned.InputRows != 1 {
		t.Errorf("pruned loaded %d rows, want 1 (only L3[hasKeyword])", statsPruned.InputRows)
	}
}

func TestAblationsStillExact(t *testing.T) {
	g := nestedGraph(99, 70, 5)
	lay := mustPartition(t, g)
	q := sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?x <p1> ?z }`)
	oracle := answerSet(engine.Naive(g, q).Distinct())

	base := NewProcessor(lay, Options{})
	baseRes, err := base.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	noSub := NewProcessor(lay, Options{DisableSubPartPruning: true})
	noSubRes, err := noSub.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	noIdx := NewProcessor(lay, Options{DisableIndexPruning: true})
	noIdxRes, err := noIdx.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*Result{"base": baseRes, "noSub": noSubRes, "noIdx": noIdxRes} {
		got := answerSet(res.Final)
		if len(got) != len(oracle) || !subset(got, oracle) {
			t.Errorf("%s: %d answers, oracle %d", name, len(got), len(oracle))
		}
	}
	// Disabling sub-partition pruning must not reduce data access.
	lastBase := baseRes.Steps[len(baseRes.Steps)-1].RowsLoadedCum
	lastNoSub := noSubRes.Steps[len(noSubRes.Steps)-1].RowsLoadedCum
	if lastNoSub < lastBase {
		t.Errorf("ablation loaded fewer rows (%d) than baseline (%d)", lastNoSub, lastBase)
	}
}

func TestPQAEarlyStop(t *testing.T) {
	g := fig1Graph()
	proc := NewProcessor(mustPartition(t, g), Options{})
	q := sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?b . ?x <hasKeyword> ?d }`)
	var seen int
	err := proc.PQASteps(q, func(s StepResult) bool {
		seen++
		return s.Step < 2 // stop after the second slice
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Errorf("callback ran %d times, want 2", seen)
	}
}

func TestPQARowsAccounting(t *testing.T) {
	g := fig1Graph()
	proc := NewProcessor(mustPartition(t, g), Options{})
	q := sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?b . ?x <hasKeyword> ?d }`)
	res, err := proc.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	var cum int64
	for i, step := range res.Steps {
		cum += step.RowsLoadedStep
		if step.RowsLoadedCum != cum {
			t.Errorf("step %d: cum rows %d, want %d", i+1, step.RowsLoadedCum, cum)
		}
		if step.ElapsedCum < step.Elapsed {
			t.Errorf("step %d: cumulative time < step time", i+1)
		}
		if step.MaxLevel != i+1 {
			t.Errorf("step %d: MaxLevel = %d", i+1, step.MaxLevel)
		}
	}
	// 2 rows per level for the two properties → 2+2+2.
	if cum != 6 {
		t.Errorf("total rows loaded = %d, want 6", cum)
	}
}

func TestEmptyQueryRejected(t *testing.T) {
	g := fig1Graph()
	proc := NewProcessor(mustPartition(t, g), Options{})
	q := &sparql.Query{}
	if _, err := proc.PQA(q); err == nil {
		t.Error("PQA accepted an empty query")
	}
	if _, _, err := proc.EQA(q); err == nil {
		t.Error("EQA accepted an empty query")
	}
	if proc.Safe(q) {
		t.Error("empty query reported safe")
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[SliceStrategy]string{
		LevelCumulative: "level-cumulative",
		ProductOrder:    "product",
		LargestFirst:    "largest-first",
		SmallestFirst:   "smallest-first",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestVariablePredicateQuery(t *testing.T) {
	g := fig1Graph()
	proc := NewProcessor(mustPartition(t, g), Options{})
	q := sparql.MustParse(`SELECT * WHERE { <P38952> ?p ?o }`)
	res, err := proc.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	want := engine.Naive(g, q).Distinct()
	if res.Final.Card() != want.Card() {
		t.Errorf("variable predicate: %d answers, oracle %d", res.Final.Card(), want.Card())
	}
	if res.Final.Card() != 4 {
		t.Errorf("P38952 has %d outgoing edges in results, want 4", res.Final.Card())
	}
}
