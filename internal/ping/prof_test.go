package ping

import (
	"context"
	"testing"

	"ping/internal/obs/prof"
	"ping/internal/sparql"
	"ping/internal/workload"
)

// TestEnsureQueryFP: every execution entry point funnels through
// ensureQueryFP, so benchmarks and embedders that never heard of
// fingerprints still get their CPU samples attributed per query class.
func TestEnsureQueryFP(t *testing.T) {
	q, err := sparql.Parse(`SELECT * WHERE { ?s <p0> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := ensureQueryFP(context.Background(), q)
	if got, want := prof.QueryFP(ctx), workload.Fingerprint(q); got != want {
		t.Errorf("attached fp %q, want workload fingerprint %q", got, want)
	}

	// A caller-supplied fingerprint (e.g. pingd's, which must match its
	// ledger key) wins over the derived one.
	pre := prof.WithQueryFP(context.Background(), "caller-fp")
	if got := prof.QueryFP(ensureQueryFP(pre, q)); got != "caller-fp" {
		t.Errorf("caller fingerprint overwritten with %q", got)
	}
}
