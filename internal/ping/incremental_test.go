package ping

import (
	"math/rand"
	"testing"

	"ping/internal/dataflow"
	"ping/internal/dfs"
	"ping/internal/engine"
	"ping/internal/faults"
	"ping/internal/hpart"
	"ping/internal/sparql"
)

// TestIncrementalMatchesScratch is the acceptance property of the
// semi-naive evaluator: for every strategy and query, the incremental
// run must deliver exactly the same answer *set* as the from-scratch
// run at every step — not just at the end. Row accounting is also
// mode-independent (the delta rewrite changes join work, not data
// access).
func TestIncrementalMatchesScratch(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := nestedGraph(seed, 60, 5)
		lay := mustPartition(t, g)
		strategies := []SliceStrategy{LevelCumulative, ProductOrder, LargestFirst, SmallestFirst}
		for _, strat := range strategies {
			inc := NewProcessor(lay, Options{Strategy: strat})
			scr := NewProcessor(lay, Options{Strategy: strat, DisableIncremental: true})
			for _, qs := range testQueries {
				q := sparql.MustParse(qs)
				ri, err := inc.PQA(q)
				if err != nil {
					t.Fatalf("seed %d %s %q: incremental: %v", seed, strat, qs, err)
				}
				rs, err := scr.PQA(q)
				if err != nil {
					t.Fatalf("seed %d %s %q: scratch: %v", seed, strat, qs, err)
				}
				if len(ri.Steps) != len(rs.Steps) {
					t.Fatalf("seed %d %s %q: %d incremental steps, %d scratch steps",
						seed, strat, qs, len(ri.Steps), len(rs.Steps))
				}
				for i := range ri.Steps {
					a, b := answerSet(ri.Steps[i].Answers), answerSet(rs.Steps[i].Answers)
					if len(a) != len(b) || !subset(a, b) {
						t.Fatalf("seed %d %s %q: step %d incremental answers %d != scratch %d",
							seed, strat, qs, i+1, len(a), len(b))
					}
					if ri.Steps[i].RowsLoadedStep != rs.Steps[i].RowsLoadedStep {
						t.Fatalf("seed %d %s %q: step %d rows loaded %d vs %d",
							seed, strat, qs, i+1, ri.Steps[i].RowsLoadedStep, rs.Steps[i].RowsLoadedStep)
					}
				}
				fi, fs := answerSet(ri.Final), answerSet(rs.Final)
				if len(fi) != len(fs) || !subset(fi, fs) {
					t.Fatalf("seed %d %s %q: final answers differ", seed, strat, qs)
				}
			}
		}
	}
}

// TestIncrementalMatchesScratchUnderFaults re-checks the equivalence
// with storage faults under the Degrade policy. A fully killed node is a
// time-invariant fault: with no replication the same blocks fail on
// every attempt, so the incremental and scratch runs over the shared
// layout lose exactly the same sub-partitions — per-step answers and the
// missing lists must then agree exactly between the two modes.
func TestIncrementalMatchesScratchUnderFaults(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		lay, fs, _ := chaosLayout(t, seed, 1)
		in := faults.New(faults.Plan{})
		in.Attach(fs)
		in.KillNode(int(seed) % 4)

		build := func(disable bool) *Processor {
			return NewProcessor(lay, Options{
				FailurePolicy:      Degrade,
				DisableIncremental: disable,
				// Cached rows would mask the dead node from the second
				// run; disable so both modes issue the same storage reads.
				DisableSubPartCache: true,
			})
		}
		pi := build(false)
		ps := build(true)
		for _, qs := range testQueries {
			q := sparql.MustParse(qs)
			ri, err := pi.PQA(q)
			if err != nil {
				t.Fatalf("seed %d %q: incremental: %v", seed, qs, err)
			}
			rs, err := ps.PQA(q)
			if err != nil {
				t.Fatalf("seed %d %q: scratch: %v", seed, qs, err)
			}
			if len(ri.Steps) != len(rs.Steps) {
				t.Fatalf("seed %d %q: %d vs %d steps under faults", seed, qs, len(ri.Steps), len(rs.Steps))
			}
			for i := range ri.Steps {
				a, b := answerSet(ri.Steps[i].Answers), answerSet(rs.Steps[i].Answers)
				if len(a) != len(b) || !subset(a, b) {
					t.Fatalf("seed %d %q: step %d answers diverge under faults", seed, qs, i+1)
				}
				am, bm := ri.Steps[i].MissingSubParts, rs.Steps[i].MissingSubParts
				if len(am) != len(bm) {
					t.Fatalf("seed %d %q: step %d missing %d vs %d", seed, qs, i+1, len(am), len(bm))
				}
				for j := range am {
					if am[j] != bm[j] {
						t.Fatalf("seed %d %q: step %d missing[%d] %s vs %s", seed, qs, i+1, j, am[j], bm[j])
					}
				}
			}
			if ri.Exact != rs.Exact {
				t.Fatalf("seed %d %q: Exact %v vs %v", seed, qs, ri.Exact, rs.Exact)
			}
		}
	}
}

// TestIncrementalLimitFallsBack: LIMIT does not distribute over union,
// so incremental evaluation must silently fall back to the scratch path
// and reproduce its results exactly.
func TestIncrementalLimitFallsBack(t *testing.T) {
	g := nestedGraph(2, 60, 5)
	lay := mustPartition(t, g)
	q := sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?x <p1> ?z } LIMIT 3`)

	inc := NewProcessor(lay, Options{})
	scr := NewProcessor(lay, Options{DisableIncremental: true})
	ri, err := inc.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := scr.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ri.Steps) != len(rs.Steps) {
		t.Fatalf("%d vs %d steps", len(ri.Steps), len(rs.Steps))
	}
	for i := range ri.Steps {
		if ri.Steps[i].Answers.Card() > 3 {
			t.Fatalf("step %d exceeds LIMIT: %d answers", i+1, ri.Steps[i].Answers.Card())
		}
		a, b := answerSet(ri.Steps[i].Answers), answerSet(rs.Steps[i].Answers)
		if len(a) != len(b) || !subset(a, b) {
			t.Fatalf("step %d limited answers diverge", i+1)
		}
	}
}

// TestChaosParallelLoaderSound re-runs the degraded-soundness chaos
// property with a multi-worker dataflow context, so sub-partition loads
// genuinely race on the worker pool (exercised under -race). Soundness
// (answers ⊆ oracle) and monotonicity are order-independent, so they
// must hold regardless of worker interleaving; the missing list must
// also stay deterministic (fold order is input-key order, not completion
// order).
func TestChaosParallelLoaderSound(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		lay, fs, g := chaosLayout(t, seed, 1)
		rng := rand.New(rand.NewSource(seed * 131))
		in := faults.New(randomPlan(rng, 4))
		in.Attach(fs)
		proc := NewProcessor(lay, Options{
			Context:       dataflow.NewContext(4),
			FailurePolicy: Degrade,
		})

		for _, qs := range testQueries {
			q := sparql.MustParse(qs)
			oracle := answerSet(engine.Naive(g, q).Distinct())
			res, err := proc.PQA(q)
			if err != nil {
				t.Fatalf("seed %d %q: %v", seed, qs, err)
			}
			prev := map[string]bool{}
			for i, step := range res.Steps {
				cur := answerSet(step.Answers)
				if !subset(prev, cur) {
					t.Fatalf("seed %d %q: step %d lost answers with parallel loader", seed, qs, i+1)
				}
				if !subset(cur, oracle) {
					t.Fatalf("seed %d %q: step %d false positive with parallel loader", seed, qs, i+1)
				}
				prev = cur
			}
			if res.Exact {
				got := answerSet(res.Final)
				if len(got) != len(oracle) {
					t.Fatalf("seed %d %q: exact run has %d answers, oracle %d", seed, qs, len(got), len(oracle))
				}
			}
		}
	}
}

// TestParallelLoaderMatchesSerial: with no faults, a multi-worker run
// must be byte-for-byte equivalent to the serial run — same steps, same
// answer sets, same row accounting — because results are folded in
// input-key order regardless of completion order.
func TestParallelLoaderMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := nestedGraph(seed, 60, 5)
		lay := mustPartition(t, g)
		serial := NewProcessor(lay, Options{})
		par := NewProcessor(lay, Options{Context: dataflow.NewContext(8)})
		for _, qs := range testQueries {
			q := sparql.MustParse(qs)
			rs, err := serial.PQA(q)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := par.PQA(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(rs.Steps) != len(rp.Steps) {
				t.Fatalf("seed %d %q: %d vs %d steps", seed, qs, len(rs.Steps), len(rp.Steps))
			}
			for i := range rs.Steps {
				a, b := answerSet(rs.Steps[i].Answers), answerSet(rp.Steps[i].Answers)
				if len(a) != len(b) || !subset(a, b) {
					t.Fatalf("seed %d %q: step %d answers diverge serial vs parallel", seed, qs, i+1)
				}
				if rs.Steps[i].RowsLoadedCum != rp.Steps[i].RowsLoadedCum {
					t.Fatalf("seed %d %q: step %d rows %d vs %d",
						seed, qs, i+1, rs.Steps[i].RowsLoadedCum, rp.Steps[i].RowsLoadedCum)
				}
			}
		}
	}
}

// TestSubPartCacheMetrics: a repeated query over the same layout must be
// served from the decoded sub-partition cache (hits recorded, no new
// misses beyond the first run's loads).
func TestSubPartCacheMetrics(t *testing.T) {
	g := nestedGraph(1, 60, 5)
	fs := dfs.New(dfs.Config{})
	lay, err := hpart.Partition(g, hpart.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	proc := NewProcessor(lay, Options{})
	q := sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?x <p1> ?z }`)

	totalReads := func() int64 {
		var n int64
		for _, r := range fs.Usage().NodeReads {
			n += r
		}
		return n
	}
	r1, err := proc.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	readsAfterFirst := totalReads()
	r2, err := proc.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := totalReads(); got != readsAfterFirst {
		t.Fatalf("second run touched storage: %d reads, want %d", got, readsAfterFirst)
	}
	a, b := answerSet(r1.Final), answerSet(r2.Final)
	if len(a) != len(b) || !subset(a, b) {
		t.Fatal("cached run returned different answers")
	}
	// Row accounting is cache-independent: loads count rows folded into
	// the accumulator whether or not storage was touched.
	if r1.Steps[len(r1.Steps)-1].RowsLoadedCum != r2.Steps[len(r2.Steps)-1].RowsLoadedCum {
		t.Fatal("cache changed row accounting")
	}
	if lay.SubPartCacheLen() == 0 {
		t.Fatal("cache is empty after two runs")
	}
}
