package ping

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/sparql"
)

func TestExplainPlan(t *testing.T) {
	g := fig1Graph()
	proc := NewProcessor(mustPartition(t, g), Options{})
	q := sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?b . ?x <hasKeyword> ?d }`)

	plan, err := proc.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Safe {
		t.Fatal("query is safe but plan says unsafe")
	}
	if plan.Analyzed {
		t.Fatal("Explain must not mark the plan analyzed")
	}
	if plan.Shape != "star" {
		t.Errorf("shape = %q, want star", plan.Shape)
	}
	if !plan.Incremental {
		t.Error("plan should predict incremental evaluation")
	}
	if len(plan.Patterns) != 2 {
		t.Fatalf("patterns = %d, want 2", len(plan.Patterns))
	}
	for _, pp := range plan.Patterns {
		if !pp.Safe || pp.Candidates == 0 || pp.PredictedRows == 0 {
			t.Errorf("pattern %q: %+v, want safe with candidates and rows", pp.Pattern, pp)
		}
	}
	if len(plan.JoinOrder) != 2 {
		t.Errorf("join order %v, want 2 entries", plan.JoinOrder)
	}

	// The schedule must match what PQA actually runs: same step count,
	// same levels, and the per-step predicted rows equal the rows the run
	// actually loads (nothing is cached or degraded here).
	res, err := proc.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != len(res.Steps) {
		t.Fatalf("plan has %d steps, run had %d", len(plan.Steps), len(res.Steps))
	}
	for i, ps := range plan.Steps {
		sr := res.Steps[i]
		if ps.Step != sr.Step || ps.MaxLevel != sr.MaxLevel {
			t.Errorf("step %d: plan (step=%d level=%d) vs run (step=%d level=%d)",
				i, ps.Step, ps.MaxLevel, sr.Step, sr.MaxLevel)
		}
		if len(ps.SubParts) != len(sr.NewSubParts) {
			t.Errorf("step %d: plan loads %d subparts, run loaded %d", i, len(ps.SubParts), len(sr.NewSubParts))
		}
		if ps.PredictedRows != sr.RowsLoadedStep {
			t.Errorf("step %d: predicted %d rows, run loaded %d", i, ps.PredictedRows, sr.RowsLoadedStep)
		}
	}

	// A LIMIT query cannot run incrementally; the plan must say so.
	ql := sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?b } LIMIT 1`)
	planL, err := proc.Explain(ql)
	if err != nil {
		t.Fatal(err)
	}
	if planL.Incremental {
		t.Error("LIMIT plan should predict from-scratch evaluation")
	}
}

func TestExplainUnsafeQuery(t *testing.T) {
	g := fig1Graph()
	proc := NewProcessor(mustPartition(t, g), Options{})
	q := sparql.MustParse(`SELECT * WHERE { ?x <noSuchProperty> ?y }`)
	plan, err := proc.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Safe || len(plan.Steps) != 0 {
		t.Fatalf("unsafe query produced safe plan: %+v", plan)
	}
	var text bytes.Buffer
	if err := plan.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "UNSAFE") {
		t.Errorf("text rendering missing UNSAFE marker:\n%s", text.String())
	}
}

// TestAnalyzeAgreesWithResult is the acceptance criterion: the analyzed
// plan's per-step actual rows, answers, and coverage must agree with the
// run's Result, and the step count must equal the run's increment of
// ping_incremental_steps_total on a private registry.
func TestAnalyzeAgreesWithResult(t *testing.T) {
	reg := obs.NewRegistry()
	g := fig1Graph()
	proc := NewProcessor(mustPartition(t, g), Options{Metrics: reg})
	q := sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?b . ?x <hasKeyword> ?d }`)

	incSteps := reg.Counter("ping_incremental_steps_total", nil)
	before := incSteps.Value()

	plan, res, err := proc.Analyze(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Analyzed {
		t.Fatal("Analyze did not mark the plan analyzed")
	}
	if len(plan.Steps) != len(res.Steps) {
		t.Fatalf("plan has %d steps, run had %d", len(plan.Steps), len(res.Steps))
	}

	delta := incSteps.Value() - before
	if delta != int64(len(res.Steps)) {
		t.Errorf("ping_incremental_steps_total grew by %d, run had %d steps", delta, len(res.Steps))
	}

	sawJoin := false
	for i, ps := range plan.Steps {
		sr := res.Steps[i]
		if ps.ActualRows != sr.RowsLoadedStep {
			t.Errorf("step %d: plan actual_rows %d, result %d", i, ps.ActualRows, sr.RowsLoadedStep)
		}
		if ps.Answers != sr.Answers.Card() {
			t.Errorf("step %d: plan answers %d, result %d", i, ps.Answers, sr.Answers.Card())
		}
		if ps.NewAnswers != sr.NewAnswers {
			t.Errorf("step %d: plan new_answers %d, result %d", i, ps.NewAnswers, sr.NewAnswers)
		}
		if want := res.Coverage(i); math.Abs(ps.Coverage-want) > 1e-12 {
			t.Errorf("step %d: plan coverage %v, Result.Coverage %v", i, ps.Coverage, want)
		}
		if !ps.Incremental {
			t.Errorf("step %d not marked incremental", i)
		}
		if ps.CacheHits+ps.CacheMisses != int64(len(ps.SubParts)) {
			t.Errorf("step %d: cache hits %d + misses %d != %d loads",
				i, ps.CacheHits, ps.CacheMisses, len(ps.SubParts))
		}
		if ps.ElapsedMs < 0 {
			t.Errorf("step %d: negative elapsed %v", i, ps.ElapsedMs)
		}
		for _, j := range ps.Joins {
			sawJoin = true
			if j.LeftRows <= 0 || j.RightRows <= 0 {
				t.Errorf("step %d: join with empty input: %+v", i, j)
			}
		}
	}
	if !sawJoin {
		t.Error("no join was lifted off the trace for a two-pattern query")
	}
	if plan.Answers != res.Final.Card() {
		t.Errorf("plan answers %d, final %d", plan.Answers, res.Final.Card())
	}
	if !plan.Exact {
		t.Error("clean run should be exact")
	}
	if plan.TotalMs <= 0 {
		t.Errorf("total %vms, want > 0", plan.TotalMs)
	}
	if last := plan.Steps[len(plan.Steps)-1]; math.Abs(last.Coverage-1) > 1e-12 {
		t.Errorf("final step coverage %v, want 1", last.Coverage)
	}

	// Both renderings must work; JSON must round-trip the actuals.
	var text bytes.Buffer
	if err := plan.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ANALYZE", "coverage=", "join order:", "total:"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text rendering missing %q:\n%s", want, text.String())
		}
	}
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rt Plan
	if err := json.Unmarshal(buf.Bytes(), &rt); err != nil {
		t.Fatal(err)
	}
	if rt.Answers != plan.Answers || len(rt.Steps) != len(plan.Steps) || !rt.Analyzed {
		t.Errorf("JSON round-trip mismatch: %+v", rt)
	}
}

// TestAnalyzeJoinsNestUnderCallerTrace checks Analyze piggybacks on an
// existing trace instead of rooting a private one.
func TestAnalyzeJoinsNestUnderCallerTrace(t *testing.T) {
	g := fig1Graph()
	proc := NewProcessor(mustPartition(t, g), Options{Metrics: obs.NewRegistry()})
	q := sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?b . ?x <hasKeyword> ?d }`)

	ctx, root := obs.NewTrace(context.Background(), "caller")
	if _, _, err := proc.Analyze(ctx, q); err != nil {
		t.Fatal(err)
	}
	root.End()
	if root.Find("analyze") == nil || root.Find("pqa") == nil {
		t.Fatal("analyze/pqa spans not nested under the caller's trace")
	}
}

// TestAnalyzePredictedCoversActual audits the plan's per-step
// PredictedRows against Bloom- and join-reduction-pruned candidate
// lists: the prediction is the row total of exactly the sub-partitions
// the run will load, so with every pruning layer on it must stay an
// upper bound on (and here: equal to) each step's actual rows. A
// prediction below actuals would mean the plan and the executor disagree
// about the candidate set.
func TestAnalyzePredictedCoversActual(t *testing.T) {
	for seed := int64(50); seed < 53; seed++ {
		g := nestedGraph(seed, 60, 5)
		lay := bloomLayout(t, g)
		// Install a join reduction so querySlices prunes for both layers.
		p0 := g.Dict.LookupIRI("p0")
		p1 := g.Dict.LookupIRI("p1")
		key := hpart.JoinKey{PropA: p0, PropB: p1, RoleA: hpart.JoinSubject, RoleB: hpart.JoinSubject}
		red, err := lay.BuildJoinReduction(key)
		if err != nil {
			t.Fatal(err)
		}
		lay.SetJoinReductions(map[hpart.JoinKey]*hpart.JoinReduction{key: red})

		proc := NewProcessor(lay, Options{UseBloomPruning: true})
		for _, qs := range testQueries {
			q := sparql.MustParse(qs)
			plan, _, err := proc.Analyze(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if !plan.Safe {
				continue
			}
			var predicted, actual int64
			for _, ps := range plan.Steps {
				if ps.PredictedRows < ps.ActualRows {
					t.Errorf("seed %d %q step %d: predicted %d < actual %d",
						seed, qs, ps.Step, ps.PredictedRows, ps.ActualRows)
				}
				predicted += ps.PredictedRows
				actual += ps.ActualRows
			}
			if predicted < actual {
				t.Errorf("seed %d %q: total predicted %d < actual %d", seed, qs, predicted, actual)
			}
			// The answers must still match the oracle with both pruning
			// layers active.
			oracle := answerSet(engine.Naive(g, q).Distinct())
			rel, _, err := proc.EQA(q)
			if err != nil {
				t.Fatal(err)
			}
			got := answerSet(rel)
			if len(got) != len(oracle) || !subset(got, oracle) {
				t.Errorf("seed %d %q: pruned run changed answers (%d vs %d)",
					seed, qs, len(got), len(oracle))
			}
		}
	}
}
