package ping

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ping/internal/dfs"
	"ping/internal/engine"
	"ping/internal/faults"
	"ping/internal/hpart"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// stringAnswerSet decodes a relation's rows to term strings through the
// layout's dictionary view — the same boundary NDJSON emission crosses —
// so comparisons in this file exercise the full ID→string round trip,
// not just ID equality.
func stringAnswerSet(t *testing.T, rel *engine.Relation, dv *rdf.DictView) map[string]bool {
	t.Helper()
	set := make(map[string]bool, rel.Card())
	for _, row := range rel.Rows {
		key := ""
		for _, id := range row {
			if int(id) >= dv.Len() {
				t.Fatalf("answer ID %d beyond dictionary snapshot of %d terms", id, dv.Len())
			}
			key += dv.TermString(id) + "\x00"
		}
		set[key] = true
	}
	return set
}

// TestDictRoundTripMatchesOracleAllStrategies is the dictionary-encoding
// property test: under every slice strategy, a PQA over compressed
// (delta-varint) resident blocks, decoded back to strings at the
// emission boundary, must produce exactly the string answer set of (a)
// the naive oracle on the raw graph and (b) the same run with dictionary
// encoding disabled (raw resident pairs). Runs under -race via the
// standard suite.
func TestDictRoundTripMatchesOracleAllStrategies(t *testing.T) {
	strategies := []SliceStrategy{LevelCumulative, ProductOrder, LargestFirst, SmallestFirst}
	for seed := int64(0); seed < 3; seed++ {
		g := nestedGraph(seed, 60, 5)
		for _, strat := range strategies {
			// Fresh layouts per config: the resident cache (and its
			// raw/packed mode) is layout state.
			layOn := mustPartition(t, g)
			layOff := mustPartition(t, g)
			on := NewProcessor(layOn, Options{Strategy: strat})
			off := NewProcessor(layOff, Options{Strategy: strat, DisableDictEncoding: true})
			for _, qs := range testQueries {
				q := sparql.MustParse(qs)
				oracle := stringAnswerSet(t, engine.Naive(g, q).Distinct(), layOn.DictView())

				resOn, err := on.PQA(q)
				if err != nil {
					t.Fatalf("seed %d strat %v %q: dict run: %v", seed, strat, qs, err)
				}
				gotOn := stringAnswerSet(t, resOn.Final, layOn.DictView())
				if len(gotOn) != len(oracle) || !subset(gotOn, oracle) {
					t.Fatalf("seed %d strat %v %q: dict-encoded answers (%d) differ from oracle (%d)",
						seed, strat, qs, len(gotOn), len(oracle))
				}

				resOff, err := off.PQA(q)
				if err != nil {
					t.Fatalf("seed %d strat %v %q: raw run: %v", seed, strat, qs, err)
				}
				gotOff := stringAnswerSet(t, resOff.Final, layOff.DictView())
				if len(gotOff) != len(gotOn) || !subset(gotOff, gotOn) {
					t.Fatalf("seed %d strat %v %q: raw (%d) and dict-encoded (%d) answers diverge",
						seed, strat, qs, len(gotOff), len(gotOn))
				}
			}
			// The dict-on run's cache must actually hold compressed
			// blocks (strictly fewer bytes than the raw equivalent
			// except for degenerate tiny caches).
			_, bytes, rawBytes := layOn.SubPartCacheStats()
			if bytes > rawBytes {
				t.Fatalf("seed %d strat %v: packed cache (%d B) larger than raw equivalent (%d B)",
					seed, strat, bytes, rawBytes)
			}
		}
	}
}

// TestDictRoundTripUnderFaults: with seeded fault plans and Degrade
// policy, string-decoded answers from compressed resident blocks must
// stay a sound subset of the oracle under every strategy (Lemma 4.4
// composed with the dictionary round trip).
func TestDictRoundTripUnderFaults(t *testing.T) {
	strategies := []SliceStrategy{LevelCumulative, ProductOrder, LargestFirst, SmallestFirst}
	for seed := int64(0); seed < 3; seed++ {
		g := nestedGraph(seed, 50, 5)
		fs := dfs.New(chaosConfig(1))
		lay, err := hpart.Partition(g, hpart.Options{FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 131))
		in := faults.New(randomPlan(rng, 4))
		in.Attach(fs)
		for _, strat := range strategies {
			proc := NewProcessor(lay, Options{Strategy: strat, FailurePolicy: Degrade})
			for _, qs := range testQueries {
				q := sparql.MustParse(qs)
				oracle := stringAnswerSet(t, engine.Naive(g, q).Distinct(), lay.DictView())
				res, err := proc.PQA(q)
				if err != nil {
					t.Fatalf("seed %d strat %v %q: %v", seed, strat, qs, err)
				}
				got := stringAnswerSet(t, res.Final, lay.DictView())
				if !subset(got, oracle) {
					t.Fatalf("seed %d strat %v %q: degraded dict-encoded answers are not a subset of the oracle",
						seed, strat, qs)
				}
				if res.Exact && len(got) != len(oracle) {
					t.Fatalf("seed %d strat %v %q: exact run has %d answers, oracle %d",
						seed, strat, qs, len(got), len(oracle))
				}
			}
		}
	}
}

// prefixedGraph builds the same random structure as nestedGraph but with
// caller-chosen term prefixes. Two graphs built with the same seed and
// different prefixes have identical triple structure over identical IDs
// (terms are interned in the same order) — and therefore identical
// layout signatures — while their dictionaries hold different strings.
func prefixedGraph(seed int64, subjects, depth int, subj, prop string) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	for s := 0; s < subjects; s++ {
		sn := rdf.NewIRI(fmt.Sprintf("%s%d", subj, s))
		d := 1 + rng.Intn(depth)
		for i := 0; i < d; i++ {
			obj := rdf.NewIRI(fmt.Sprintf("%s%d", subj, rng.Intn(subjects)))
			g.Add(sn, rdf.NewIRI(fmt.Sprintf("%s%d", prop, i)), obj)
		}
	}
	g.Dedup()
	return g
}

// TestResumeRefusesForeignDictionary: two same-shape datasets produce
// layouts with EQUAL layout signatures (the signature covers the
// sub-partition inventory, which is ID-level) but DIFFERENT
// dictionaries. A checkpoint paused on one must refuse to resume on the
// other with ErrSnapshotMismatch — resuming would decode the first
// dataset's IDs through the second's terms and silently emit wrong
// strings.
func TestResumeRefusesForeignDictionary(t *testing.T) {
	gA := prefixedGraph(7, 40, 4, "s", "p")
	gB := prefixedGraph(7, 40, 4, "x", "q")
	layA := mustPartition(t, gA)
	layB := mustPartition(t, gB)
	if layA.Signature() != layB.Signature() {
		t.Fatalf("same-shape layouts have different signatures (%x vs %x) — test premise broken",
			layA.Signature(), layB.Signature())
	}
	if layA.DictView().Sig() == layB.DictView().Sig() {
		t.Fatal("different dictionaries share a signature")
	}

	proc := NewProcessor(layA, Options{})
	q := sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?x <p1> ?z }`)
	st, err := proc.PQARun(context.Background(), q, Budget{MaxSteps: 1},
		func(StepResult, *Checkpoint) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if st.Done {
		t.Skip("schedule has a single step")
	}
	if st.Checkpoint.DictLen == 0 || st.Checkpoint.DictSig == 0 {
		t.Fatalf("checkpoint carries no dictionary identity: %+v", st.Checkpoint)
	}
	_, err = proc.PQAResumeRun(context.Background(), layB, st.Checkpoint, Budget{},
		func(StepResult, *Checkpoint) bool { return true })
	if !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("resume on foreign dictionary: err = %v, want ErrSnapshotMismatch", err)
	}
	// Resuming on the original layout still works and completes exactly.
	rst, err := proc.PQAResumeRun(context.Background(), layA, st.Checkpoint, Budget{},
		func(StepResult, *Checkpoint) bool { return true })
	if err != nil || !rst.Done {
		t.Fatalf("resume on own layout: %v (done=%v)", err, rst != nil && rst.Done)
	}
}

// TestResumeSurvivesBenignDictGrowth: the dictionary is append-only, so
// interning new terms between pause and resume (without touching the
// layout) extends the checkpointed prefix. Resume must validate the
// prefix signature and continue, producing the oracle answer set.
func TestResumeSurvivesBenignDictGrowth(t *testing.T) {
	g := nestedGraph(11, 50, 5)
	lay := mustPartition(t, g)
	proc := NewProcessor(lay, Options{})
	q := sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?x <p1> ?z }`)
	oracle := answerSet(engine.Naive(g, q).Distinct())

	st, err := proc.PQARun(context.Background(), q, Budget{MaxSteps: 1},
		func(StepResult, *Checkpoint) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if st.Done {
		t.Skip("schedule has a single step")
	}
	// Grow the dictionary past the checkpointed prefix (a concurrent
	// update parsing new terms does exactly this before publishing).
	for i := 0; i < 10; i++ {
		lay.Dict.EncodeIRI(fmt.Sprintf("late-arriving-term-%d", i))
	}
	var final *engine.Relation
	rst, err := proc.PQAResumeRun(context.Background(), lay, st.Checkpoint, Budget{},
		func(sr StepResult, _ *Checkpoint) bool { final = sr.Answers; return true })
	if err != nil {
		t.Fatalf("resume after benign dict growth: %v", err)
	}
	if !rst.Done {
		t.Fatalf("resume did not complete: %+v", rst)
	}
	got := answerSet(final)
	if len(got) != len(oracle) || !subset(got, oracle) {
		t.Fatalf("resumed run has %d answers, oracle %d", len(got), len(oracle))
	}
}
