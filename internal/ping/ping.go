// Package ping implements the paper's primary contribution: progressive
// query answering (PQA, Algorithm 2) and exact query answering (EQA,
// Algorithm 3) over the hierarchical CS partitioning of package hpart.
//
// For every triple pattern the processor consults the VP/SI/OI indexes to
// compute the pattern's candidate sub-partitions — HL(t) in the paper —
// and only ever touches those. A *slice* is a set of sub-partitions on
// which the query is safe (every pattern has at least one candidate,
// Def. 4.1/4.2). Slices are visited in increasing level order; each step
// loads only the not-yet-visited sub-partitions, re-evaluates the query on
// the accumulated data, and reports the (sound, Lemma 4.4) partial
// answers. The final step evaluates the maximal slice and therefore the
// exact result (Theorem 4.5).
//
// Storage failures are handled per Options.FailurePolicy. Under FailFast
// (default) an unreadable sub-partition aborts the query. Under Degrade
// it is skipped: by Lemma 4.4 any answer computed on a subset of a safe
// slice's sub-partitions is still a sound subset of the exact answer, so
// the run keeps delivering answers and marks its steps Degraded (and the
// final Result not Exact). Context cancellation is threaded through the
// storage reads and the dataflow worker pool, so a stuck replica cannot
// hang a query past its deadline.
package ping

import (
	"context"
	"fmt"
	"sort"
	"time"

	"ping/internal/dataflow"
	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/obs/prof"
	"ping/internal/rdf"
	"ping/internal/sparql"
	"ping/internal/workload"
)

// SliceStrategy selects the order in which PQA visits hierarchy levels.
type SliceStrategy int

const (
	// LevelCumulative visits levels top-down (1, 2, 3, ...), matching the
	// evaluation figures: one slice per level that contributes data.
	LevelCumulative SliceStrategy = iota
	// ProductOrder enumerates the literal Algorithm 2 cartesian product
	// of per-pattern sub-partition choices.
	ProductOrder
	// LargestFirst visits levels in decreasing partition size (§6.2's
	// "return the largest partition first" future-work variant).
	LargestFirst
	// SmallestFirst visits levels in increasing partition size.
	SmallestFirst
)

func (s SliceStrategy) String() string {
	switch s {
	case LevelCumulative:
		return "level-cumulative"
	case ProductOrder:
		return "product"
	case LargestFirst:
		return "largest-first"
	case SmallestFirst:
		return "smallest-first"
	default:
		return fmt.Sprintf("SliceStrategy(%d)", int(s))
	}
}

// FailurePolicy selects how query answering reacts to a sub-partition
// read that still fails after all dfs retries and replica failover.
type FailurePolicy int

const (
	// FailFast aborts the query on the first unreadable sub-partition.
	FailFast FailurePolicy = iota
	// Degrade skips unreadable sub-partitions and keeps answering: every
	// delivered answer is computed on a subset of the slice's
	// sub-partitions and is therefore still sound (Lemma 4.4). The
	// affected steps are marked Degraded and the final answer not Exact.
	Degrade
)

func (p FailurePolicy) String() string {
	switch p {
	case FailFast:
		return "fail-fast"
	case Degrade:
		return "degrade"
	default:
		return fmt.Sprintf("FailurePolicy(%d)", int(p))
	}
}

// Options configures a Processor.
type Options struct {
	// Context supplies the dataflow executor (nil: single worker).
	Context *dataflow.Context
	// Partitions is the join shuffle fan-out (<=0: context default).
	Partitions int
	// Strategy selects slice ordering; zero value is LevelCumulative.
	Strategy SliceStrategy
	// DisableSubPartPruning loads every property file at a level instead
	// of only the ones the pattern needs. Used by the ablation benchmarks
	// to quantify the benefit of sub-partitioning (§3.6).
	DisableSubPartPruning bool
	// DisableIndexPruning ignores the SI/OI indexes when computing
	// pattern slices (VP alone decides). Used by ablation benchmarks to
	// quantify the benefit of subject/object indexing (§3.7).
	DisableIndexPruning bool
	// UseBloomPruning probes the layout's per-sub-partition Bloom filters
	// (§6.2 extension) to skip candidate sub-partitions that definitely
	// do not contain a pattern's constant subject/object. Requires a
	// layout built with hpart.Options.BuildBlooms (or
	// Layout.BuildBlooms); silently inactive otherwise.
	UseBloomPruning bool
	// DisableJoinReduction ignores the layout's workload-advised join
	// reductions (hpart.JoinReduction) when computing pattern slices.
	// Reductions are precomputed over the full data at advise time, so
	// leaving them on never changes answers — this switch exists for
	// ablation and debugging.
	DisableJoinReduction bool
	// FailurePolicy selects FailFast (zero value) or Degrade handling of
	// unreadable sub-partitions.
	FailurePolicy FailurePolicy
	// DisableIncremental makes every PQA step re-evaluate the query from
	// scratch over the accumulated slice instead of folding in only the
	// newly loaded sub-partitions (semi-naive delta evaluation). Used by
	// the ablation benchmarks to quantify the incremental speedup.
	DisableIncremental bool
	// DisableSubPartCache skips installing the layout's decoded
	// sub-partition LRU cache.
	DisableSubPartCache bool
	// SubPartCacheSize is the LRU capacity (<=0: hpart default). The first
	// processor to enable the cache on a layout fixes its capacity.
	SubPartCacheSize int
	// DisableDictEncoding keeps cached sub-partitions as raw 8-byte pair
	// slices instead of packed delta-varint blocks — the `-dict=off`
	// ablation that isolates the resident-compression win. Query results
	// are identical either way; only the resident representation (and its
	// decode cost) changes. The setting applies to the layout's shared
	// cache, and flipping it drops cached entries so measurements never
	// mix representations.
	DisableDictEncoding bool
	// Metrics is the registry the processor's counters and latency
	// histograms are recorded into (nil: obs.Default).
	Metrics *obs.Registry
}

// Processor answers queries over one partitioned layout — or, when
// built with NewProcessorStore, over an epoch store: each query then
// pins the latest published snapshot for its whole run, so concurrent
// maintenance batches can publish new epochs without ever being
// observed mid-query (snapshot isolation; Lemma 4.4 holds against the
// pinned epoch's exact answer).
type Processor struct {
	layout *hpart.Layout
	store  *hpart.Store
	opts   Options
	ctx    *dataflow.Context
	met    *procMetrics
}

// procMetrics holds the processor's resolved metric handles. Metric
// names are documented in DESIGN.md's observability subsection.
type procMetrics struct {
	pqaQueries      *obs.Counter
	eqaQueries      *obs.Counter
	steps           *obs.Counter
	degradedSteps   *obs.Counter
	rowsLoaded      *obs.Counter
	subparts        *obs.Counter
	missingSubparts *obs.Counter
	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	incSteps        *obs.Counter
	resumes         *obs.Counter
	budgetPauses    *obs.Counter
	stepSeconds     *obs.Histogram
	pqaSeconds      *obs.Histogram
	eqaSeconds      *obs.Histogram
	epoch           *obs.Gauge
	inflight        *obs.Gauge
	dictHits        *obs.Counter
	dictMisses      *obs.Counter
	dictEntries     *obs.Gauge
	dictBytes       *obs.Gauge
	dictBuildSecs   *obs.Gauge
	cacheBytes      *obs.Gauge
	cacheRawBytes   *obs.Gauge
}

func newProcMetrics(reg *obs.Registry) *procMetrics {
	if reg == nil {
		reg = obs.Default
	}
	reg.Describe("ping_queries_total", "query runs by mode (pqa or eqa)")
	reg.Describe("ping_steps_total", "progressive slice steps executed")
	reg.Describe("ping_degraded_steps_total", "steps delivered while at least one sub-partition was unreadable")
	reg.Describe("ping_rows_loaded_total", "vertical-partition rows read from storage")
	reg.Describe("ping_subparts_loaded_total", "sub-partitions loaded from storage")
	reg.Describe("ping_missing_subparts_total", "sub-partitions skipped as unreadable under the degrade policy")
	reg.Describe("ping_subparts_cache_hits_total", "sub-partition loads served from the decoded LRU cache")
	reg.Describe("ping_subparts_cache_misses_total", "sub-partition loads that had to read storage")
	reg.Describe("ping_incremental_steps_total", "PQA steps evaluated semi-naively (delta joins only)")
	reg.Describe("ping_resumed_runs_total", "PQA segments resumed from a checkpoint")
	reg.Describe("ping_budget_paused_total", "PQA segments paused at a budget bound with a resumable checkpoint")
	reg.Describe("ping_step_seconds", "wall-clock duration of one slice step (load + evaluate)")
	reg.Describe("ping_query_seconds", "wall-clock duration of one query run by mode")
	reg.Describe("ping_epoch", "epoch of the most recently pinned layout snapshot")
	reg.Describe("ping_inflight_queries", "queries currently executing (PQA and EQA)")
	reg.Describe("ping_dict_lookups_total", "dictionary term lookups during candidate pruning, by outcome (hit or miss)")
	reg.Describe("ping_dict_entries", "terms in the pinned epoch's dictionary snapshot")
	reg.Describe("ping_dict_resident_bytes", "estimated resident bytes of the shared term dictionary")
	reg.Describe("ping_dict_build_seconds", "time to capture and sign the pinned epoch's dictionary snapshot")
	reg.Describe("ping_subparts_cache_bytes", "resident payload bytes of the decoded sub-partition cache")
	reg.Describe("ping_subparts_cache_raw_bytes", "uncompressed size of the same cached sub-partitions (8 bytes per pair)")
	return &procMetrics{
		pqaQueries:      reg.Counter("ping_queries_total", obs.Labels{"mode": "pqa"}),
		eqaQueries:      reg.Counter("ping_queries_total", obs.Labels{"mode": "eqa"}),
		steps:           reg.Counter("ping_steps_total", nil),
		degradedSteps:   reg.Counter("ping_degraded_steps_total", nil),
		rowsLoaded:      reg.Counter("ping_rows_loaded_total", nil),
		subparts:        reg.Counter("ping_subparts_loaded_total", nil),
		missingSubparts: reg.Counter("ping_missing_subparts_total", nil),
		cacheHits:       reg.Counter("ping_subparts_cache_hits_total", nil),
		cacheMisses:     reg.Counter("ping_subparts_cache_misses_total", nil),
		incSteps:        reg.Counter("ping_incremental_steps_total", nil),
		resumes:         reg.Counter("ping_resumed_runs_total", nil),
		budgetPauses:    reg.Counter("ping_budget_paused_total", nil),
		stepSeconds:     reg.Histogram("ping_step_seconds", obs.TimeBuckets, nil),
		pqaSeconds:      reg.Histogram("ping_query_seconds", obs.TimeBuckets, obs.Labels{"mode": "pqa"}),
		eqaSeconds:      reg.Histogram("ping_query_seconds", obs.TimeBuckets, obs.Labels{"mode": "eqa"}),
		epoch:           reg.Gauge("ping_epoch", nil),
		inflight:        reg.Gauge("ping_inflight_queries", nil),
		dictHits:        reg.Counter("ping_dict_lookups_total", obs.Labels{"outcome": "hit"}),
		dictMisses:      reg.Counter("ping_dict_lookups_total", obs.Labels{"outcome": "miss"}),
		dictEntries:     reg.Gauge("ping_dict_entries", nil),
		dictBytes:       reg.Gauge("ping_dict_resident_bytes", nil),
		dictBuildSecs:   reg.Gauge("ping_dict_build_seconds", nil),
		cacheBytes:      reg.Gauge("ping_subparts_cache_bytes", nil),
		cacheRawBytes:   reg.Gauge("ping_subparts_cache_raw_bytes", nil),
	}
}

// NewProcessor creates a processor over a layout. The layout must not be
// mutated while queries run; for concurrent query/update workloads use
// NewProcessorStore.
func NewProcessor(layout *hpart.Layout, opts Options) *Processor {
	ctx := opts.Context
	if ctx == nil {
		ctx = dataflow.NewContext(1)
	}
	if !opts.DisableSubPartCache {
		layout.EnableSubPartCache(opts.SubPartCacheSize)
	}
	layout.SetResidentRaw(opts.DisableDictEncoding)
	return &Processor{layout: layout, opts: opts, ctx: ctx, met: newProcMetrics(opts.Metrics)}
}

// NewProcessorStore creates a processor over an epoch store: every query
// pins the latest published snapshot at its start and releases it at its
// end, so maintenance batches applied concurrently (via a maintainer
// built with hpart.NewStoreMaintainer on the same store) never affect
// queries already in flight. The decoded sub-partition cache installed
// here is shared by all future epochs (entries are keyed by file
// generation, so snapshots never observe each other's rows).
func NewProcessorStore(store *hpart.Store, opts Options) *Processor {
	p := NewProcessor(store.Current(), opts)
	p.store = store
	return p
}

// Layout returns the underlying layout; for a store-backed processor,
// the latest published snapshot.
func (p *Processor) Layout() *hpart.Layout {
	if p.store != nil {
		return p.store.Current()
	}
	return p.layout
}

// pin acquires the layout snapshot a query runs against. Store-backed
// processors pin the store's current epoch (keeping its files alive
// until release); plain processors return their fixed layout with a
// no-op release.
func (p *Processor) pin() (*hpart.Layout, func()) {
	if p.store != nil {
		return p.store.Pin()
	}
	return p.layout, func() {}
}

// lookupTerm resolves a pattern constant through the epoch's dictionary
// view, counting the outcome into the ping_dict_lookups_total metric.
func (p *Processor) lookupTerm(dv *rdf.DictView, t rdf.Term) rdf.ID {
	id := dv.Lookup(t)
	if id == rdf.NoID {
		p.met.dictMisses.Inc()
	} else {
		p.met.dictHits.Inc()
	}
	return id
}

// setDictGauges refreshes the dictionary and resident-cache gauges from
// the pinned snapshot. Called when a query pins its epoch and again after
// it finishes loading, so /stats reflects the post-run resident set.
func (p *Processor) setDictGauges(lay *hpart.Layout) {
	dv := lay.DictView()
	p.met.dictEntries.Set(float64(dv.Len()))
	p.met.dictBytes.Set(float64(lay.Dict.ResidentBytes()))
	p.met.dictBuildSecs.Set(lay.DictBuildTime().Seconds())
	_, bytes, rawBytes := lay.SubPartCacheStats()
	p.met.cacheBytes.Set(float64(bytes))
	p.met.cacheRawBytes.Set(float64(rawBytes))
}

// PatternSlices computes HL(t) — the candidate sub-partitions of one
// triple pattern (Algorithm 2, line 3): the levels are the intersection
// of the index entries of the pattern's symbols, and the properties are
// either the pattern's constant predicate or, for a variable predicate,
// every property present on those levels.
func (p *Processor) PatternSlices(pat sparql.TriplePattern) []hpart.SubPartKey {
	return p.patternSlices(p.Layout(), pat)
}

func (p *Processor) patternSlices(lay *hpart.Layout, pat sparql.TriplePattern) []hpart.SubPartKey {
	levels := lay.AllLevels()
	dv := lay.DictView()

	var props []rdf.ID
	if pat.P.IsConcrete() {
		id := p.lookupTerm(dv, pat.P)
		if id == rdf.NoID {
			return nil
		}
		levels = levels.Intersect(lay.PropertyLevels(id))
		props = []rdf.ID{id}
	}
	if !p.opts.DisableIndexPruning {
		if pat.S.IsConcrete() {
			id := p.lookupTerm(dv, pat.S)
			if id == rdf.NoID {
				return nil
			}
			levels = levels.Intersect(lay.SubjectLevels(id))
		}
		if pat.O.IsConcrete() {
			id := p.lookupTerm(dv, pat.O)
			if id == rdf.NoID {
				return nil
			}
			levels = levels.Intersect(lay.ObjectLevels(id))
		}
	}
	if levels.Empty() {
		return nil
	}

	var keys []hpart.SubPartKey
	if props == nil {
		// Variable predicate: every property stored on a candidate level.
		for prop, set := range lay.VP {
			common := set.Intersect(levels)
			for _, l := range common.Levels() {
				keys = append(keys, hpart.SubPartKey{Level: l, Prop: prop})
			}
		}
	} else {
		for _, prop := range props {
			for _, l := range levels.Levels() {
				key := hpart.SubPartKey{Level: l, Prop: prop}
				if lay.HasSubPartition(key) {
					keys = append(keys, key)
				}
			}
		}
	}
	keys = p.bloomPrune(lay, pat, keys)
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Level != keys[j].Level {
			return keys[i].Level < keys[j].Level
		}
		return keys[i].Prop < keys[j].Prop
	})
	return keys
}

// bloomPrune drops candidate sub-partitions whose membership filters rule
// out the pattern's constant subject/object. Filters have no false
// negatives, so pruning never loses answers.
func (p *Processor) bloomPrune(lay *hpart.Layout, pat sparql.TriplePattern, keys []hpart.SubPartKey) []hpart.SubPartKey {
	if !p.opts.UseBloomPruning || !lay.HasBlooms() {
		return keys
	}
	dv := lay.DictView()
	sConst, oConst := rdf.NoID, rdf.NoID
	if pat.S.IsConcrete() {
		sConst = dv.Lookup(pat.S)
	}
	if pat.O.IsConcrete() {
		oConst = dv.Lookup(pat.O)
	}
	if sConst == rdf.NoID && oConst == rdf.NoID {
		return keys
	}
	kept := keys[:0]
	for _, k := range keys {
		b := lay.Blooms(k)
		if b != nil {
			if sConst != rdf.NoID && !b.Subjects.Contains(uint64(sConst)) {
				continue
			}
			if oConst != rdf.NoID && !b.Objects.Contains(uint64(oConst)) {
				continue
			}
		}
		kept = append(kept, k)
	}
	return kept
}

// QuerySlices returns HL(t) for every plain pattern of q. The query is
// safe on some slice iff every returned list is non-empty.
func (p *Processor) QuerySlices(q *sparql.Query) [][]hpart.SubPartKey {
	return p.querySlices(p.Layout(), q)
}

func (p *Processor) querySlices(lay *hpart.Layout, q *sparql.Query) [][]hpart.SubPartKey {
	out := make([][]hpart.SubPartKey, len(q.Patterns))
	for i, pat := range q.Patterns {
		out[i] = p.patternSlices(lay, pat)
	}
	p.applyJoinReductions(lay, q, out)
	return out
}

// applyJoinReductions drops candidate sub-partitions the layout's
// workload-advised join reductions prove irrelevant: when two patterns
// with concrete predicates share a variable, a pattern-A sub-partition
// whose rows all miss the B-side join-value filter cannot contribute to
// any answer of the conjunction (every answer must satisfy both
// patterns), so it is removed before loading. The reductions were
// computed over the full data of this very snapshot — filter false
// positives only retain sub-partitions — so the surviving candidates
// still contain every answer, and PQA/EQA, EXPLAIN, and safety all go
// through this one hook and stay mutually consistent.
func (p *Processor) applyJoinReductions(lay *hpart.Layout, q *sparql.Query, hl [][]hpart.SubPartKey) {
	if p.opts.DisableJoinReduction || len(lay.JoinReductions()) == 0 || len(q.Patterns) < 2 {
		return
	}
	dv := lay.DictView()
	props := make([]rdf.ID, len(q.Patterns))
	for i, pat := range q.Patterns {
		props[i] = rdf.NoID
		if pat.P.IsConcrete() {
			props[i] = dv.Lookup(pat.P)
		}
	}
	// roles lists the join columns a variable occupies in a pattern.
	roles := func(pat sparql.TriplePattern, v string) []byte {
		var out []byte
		if pat.S.IsVar() && pat.S.Value == v {
			out = append(out, hpart.JoinSubject)
		}
		if pat.O.IsVar() && pat.O.Value == v {
			out = append(out, hpart.JoinObject)
		}
		return out
	}
	for i, patA := range q.Patterns {
		if props[i] == rdf.NoID || len(hl[i]) == 0 {
			continue
		}
		for j, patB := range q.Patterns {
			if j == i || props[j] == rdf.NoID {
				continue
			}
			for _, v := range patA.Vars() {
				for _, ra := range roles(patA, v) {
					for _, rb := range roles(patB, v) {
						key := hpart.JoinKey{PropA: props[i], PropB: props[j], RoleA: ra, RoleB: rb}
						if lay.JoinReductions()[key] == nil {
							continue
						}
						kept := hl[i][:0]
						for _, sk := range hl[i] {
							if !lay.JoinPruned(key, sk) {
								kept = append(kept, sk)
							}
						}
						hl[i] = kept
					}
				}
			}
		}
	}
}

// PathPatternSlices computes the candidate sub-partitions of a property-
// path pattern (§6.2 navigational extension): every level of every
// property the path mentions. Endpoint constants cannot prune levels here
// — a closure may pass through intermediate nodes on any level — so only
// the VP index applies.
func (p *Processor) PathPatternSlices(pat sparql.PathPattern) []hpart.SubPartKey {
	return p.pathPatternSlices(p.Layout(), pat)
}

func (p *Processor) pathPatternSlices(lay *hpart.Layout, pat sparql.PathPattern) []hpart.SubPartKey {
	var keys []hpart.SubPartKey
	seen := make(map[hpart.SubPartKey]bool)
	dv := lay.DictView()
	for _, iri := range pat.Path.IRIs(nil) {
		id := p.lookupTerm(dv, iri)
		if id == rdf.NoID {
			continue
		}
		for _, l := range lay.PropertyLevels(id).Levels() {
			key := hpart.SubPartKey{Level: l, Prop: id}
			if lay.HasSubPartition(key) && !seen[key] {
				seen[key] = true
				keys = append(keys, key)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Level != keys[j].Level {
			return keys[i].Level < keys[j].Level
		}
		return keys[i].Prop < keys[j].Prop
	})
	return keys
}

// QueryPathSlices returns the candidate sub-partitions for every path
// pattern of q.
func (p *Processor) QueryPathSlices(q *sparql.Query) [][]hpart.SubPartKey {
	return p.queryPathSlices(p.Layout(), q)
}

func (p *Processor) queryPathSlices(lay *hpart.Layout, q *sparql.Query) [][]hpart.SubPartKey {
	out := make([][]hpart.SubPartKey, len(q.Paths))
	for i, pat := range q.Paths {
		out[i] = p.pathPatternSlices(lay, pat)
	}
	return out
}

// Safe reports whether the query is safe on at least one slice, i.e.
// whether any answer can exist in the partitioned data (Def. 4.1). For a
// path pattern, safety means at least one of its properties occurs
// somewhere; an alternation only needs one live branch, but a dead
// sequence step or closure base empties the whole pattern, so requiring
// one live property is the weakest sound condition.
func (p *Processor) Safe(q *sparql.Query) bool {
	for _, hl := range p.QuerySlices(q) {
		if len(hl) == 0 {
			return false
		}
	}
	for _, hl := range p.QueryPathSlices(q) {
		if len(hl) == 0 {
			return false
		}
	}
	return len(q.Patterns)+len(q.Paths) > 0
}

// StepResult describes one progressive step (one visited slice).
type StepResult struct {
	// Step is the 1-based slice number.
	Step int
	// MaxLevel is the deepest hierarchy level included so far.
	MaxLevel int
	// NewSubParts lists the sub-partitions loaded by this step.
	NewSubParts []hpart.SubPartKey
	// RowsLoadedStep / RowsLoadedCum count vertical-partition rows read
	// from storage by this step and cumulatively.
	RowsLoadedStep int64
	RowsLoadedCum  int64
	// Answers is the cumulative (distinct) answer relation after this
	// step — a sound subset of the exact result.
	Answers *engine.Relation
	// NewAnswers is how many answers this step added.
	NewAnswers int
	// Elapsed / ElapsedCum time this step and the run so far.
	Elapsed    time.Duration
	ElapsedCum time.Duration
	// CacheHits / CacheMisses count this step's sub-partition loads served
	// from the decoded LRU cache vs read from storage.
	CacheHits   int64
	CacheMisses int64
	// Incremental reports whether the step was evaluated semi-naively
	// (delta joins only) rather than from scratch.
	Incremental bool
	// Degraded reports that at least one candidate sub-partition could
	// not be read so far (FailurePolicy Degrade only); the answers remain
	// a sound subset of the exact result (Lemma 4.4).
	Degraded bool
	// MissingSubParts lists the sub-partitions skipped so far
	// (cumulative, in skip order).
	MissingSubParts []hpart.SubPartKey
	// Epoch is the layout snapshot the whole run is pinned to (0 unless
	// the processor is store-backed). All steps of one run carry the
	// same epoch: updates published mid-query are never observed.
	Epoch uint64
}

// Result is a completed PQA run.
type Result struct {
	// Steps holds one entry per visited slice, in visit order.
	Steps []StepResult
	// Final is the exact answer relation (the last step's answers), or an
	// empty relation when the query is unsafe on every slice.
	Final *engine.Relation
	// Exact reports whether Final is the exact answer. It is false only
	// when FailurePolicy Degrade skipped unreadable sub-partitions, in
	// which case Final is a sound subset of the exact answer.
	Exact bool
	// Epoch is the layout snapshot the run was pinned to (0 unless the
	// processor is store-backed).
	Epoch uint64
}

// Coverage returns |answers after step i| / |final answers| — the paper's
// coverage metric. Steps are 0-indexed and clamped into [0, len(Steps)-1];
// a zero-step result, a nil Final, or a final answer count of zero all
// yield coverage 1 for every step (nothing to find, or nothing to
// compare against).
func (r *Result) Coverage(step int) float64 {
	if len(r.Steps) == 0 || r.Final == nil || r.Final.Card() == 0 {
		return 1
	}
	if step < 0 {
		step = 0
	}
	if step >= len(r.Steps) {
		step = len(r.Steps) - 1
	}
	return float64(r.Steps[step].Answers.Card()) / float64(r.Final.Card())
}

// ensureQueryFP attaches the query's workload fingerprint to ctx when
// the caller did not supply one, so CPU profile samples of every
// execution path — servers, benchmarks, embedders — attribute to the
// query class without each call site having to fingerprint explicitly.
func ensureQueryFP(ctx context.Context, q *sparql.Query) context.Context {
	if prof.QueryFP(ctx) != "" {
		return ctx
	}
	return prof.WithQueryFP(ctx, workload.Fingerprint(q))
}

// PQA runs progressive query answering to completion and returns every
// step. It is equivalent to PQASteps with a callback that always
// continues.
func (p *Processor) PQA(q *sparql.Query) (*Result, error) {
	return p.PQACtx(context.Background(), q)
}

// PQACtx is PQA honouring ctx cancellation and deadline.
func (p *Processor) PQACtx(ctx context.Context, q *sparql.Query) (*Result, error) {
	res := &Result{Exact: true}
	err := p.PQAStepsCtx(ctx, q, func(s StepResult) bool {
		res.Steps = append(res.Steps, s)
		res.Epoch = s.Epoch
		return true
	})
	if err != nil {
		return nil, err
	}
	if len(res.Steps) > 0 {
		last := res.Steps[len(res.Steps)-1]
		res.Final = last.Answers
		res.Exact = !last.Degraded
	} else {
		res.Final = &engine.Relation{Vars: q.Projection()}
	}
	return res, nil
}

// PQASteps runs progressive query answering, invoking fn after each
// slice. Returning false from fn stops the run early (the user has seen
// enough answers); all delivered answers remain sound by Lemma 4.4.
func (p *Processor) PQASteps(q *sparql.Query, fn func(StepResult) bool) error {
	return p.PQAStepsCtx(context.Background(), q, fn)
}

// PQAStepsCtx is PQASteps honouring ctx: cancellation aborts storage
// reads (including failover retries) and drains the dataflow worker
// pool, returning ctx.Err(). It is a thin wrapper over the resumable
// core runner (see checkpoint.go) with checkpointing off.
func (p *Processor) PQAStepsCtx(ctx context.Context, q *sparql.Query, fn func(StepResult) bool) error {
	// Pin the layout snapshot for the whole run: candidate computation,
	// scheduling, and every file read below see one immutable epoch,
	// regardless of concurrently published updates.
	lay, release := p.pin()
	defer release()
	_, err := p.runPQA(ctx, lay, q, runConfig{}, func(sr StepResult, _ *Checkpoint) bool {
		return fn(sr)
	})
	return err
}

// ExactResult is the answer of EQAFull plus degradation metadata.
type ExactResult struct {
	// Answers is the result relation.
	Answers *engine.Relation
	// Stats are the engine counters of the evaluation.
	Stats *engine.Stats
	// Exact is false only when FailurePolicy Degrade skipped unreadable
	// sub-partitions; Answers is then a sound subset (Lemma 4.4).
	Exact bool
	// MissingSubParts lists the skipped sub-partitions.
	MissingSubParts []hpart.SubPartKey
	// Epoch is the layout snapshot the evaluation was pinned to (0 unless
	// the processor is store-backed).
	Epoch uint64
}

// EQA evaluates the query directly on its maximal slice: each pattern
// loads exactly the sub-partitions its symbols allow, in one shot. This
// is the mode compared against S2RDF and WORQ in §5.6.
func (p *Processor) EQA(q *sparql.Query) (*engine.Relation, *engine.Stats, error) {
	r, err := p.EQAFull(context.Background(), q)
	if err != nil {
		return nil, nil, err
	}
	return r.Answers, r.Stats, nil
}

// EQAFull is EQA honouring ctx and reporting degradation metadata. The
// evaluation runs under the query's pprof labels (query_fp, trace_id,
// stage=eqa) so profile samples attribute to the fingerprint.
func (p *Processor) EQAFull(ctx context.Context, q *sparql.Query) (res *ExactResult, err error) {
	ctx = ensureQueryFP(ctx, q)
	prof.Do(ctx, "eqa", func(ctx context.Context) {
		res, err = p.eqaFull(ctx, q)
	})
	return res, err
}

func (p *Processor) eqaFull(ctx context.Context, q *sparql.Query) (*ExactResult, error) {
	if len(q.Patterns)+len(q.Paths) == 0 {
		return nil, fmt.Errorf("ping: query has no patterns")
	}
	// Pin one snapshot for candidate computation and evaluation, exactly
	// as PQAStepsCtx does.
	lay, release := p.pin()
	defer release()
	p.met.epoch.Set(float64(lay.Epoch()))
	p.setDictGauges(lay)
	defer p.setDictGauges(lay)
	p.met.inflight.Add(1)
	defer p.met.inflight.Add(-1)

	hl := p.querySlices(lay, q)
	hlPaths := p.queryPathSlices(lay, q)
	empty := &ExactResult{
		Answers: &engine.Relation{Vars: q.Projection()},
		Stats:   &engine.Stats{},
		Exact:   true,
		Epoch:   lay.Epoch(),
	}
	for _, candidates := range hl {
		if len(candidates) == 0 {
			return empty, nil
		}
	}
	for _, candidates := range hlPaths {
		if len(candidates) == 0 {
			return empty, nil
		}
	}

	ctx, espan := obs.StartSpan(ctx, "eqa")
	defer espan.End()
	espan.SetAttr("epoch", lay.Epoch())

	detach := p.ctx.AttachContext(ctx)
	defer detach()

	p.met.eqaQueries.Inc()
	start := time.Now()
	tid := obs.TraceIDFromContext(ctx)
	defer func() { p.met.eqaSeconds.ObserveExemplar(time.Since(start).Seconds(), tid) }()

	// EQA is a single-shot evaluation: there is no previous step to be
	// incremental against, so it always uses the from-scratch path (whose
	// Stats describe the one full evaluation).
	state := newEvalState(p, lay, q, hl, hlPaths, false)
	state.span = espan
	var all []hpart.SubPartKey
	seen := make(map[hpart.SubPartKey]bool)
	for _, candidates := range append(append([][]hpart.SubPartKey{}, hl...), hlPaths...) {
		for _, k := range candidates {
			if !seen[k] {
				seen[k] = true
				all = append(all, k)
			}
		}
	}
	if err := state.load(ctx, all); err != nil {
		espan.SetAttr("error", err.Error())
		return nil, err
	}
	answers, err := state.evaluate()
	if err != nil {
		espan.SetAttr("error", err.Error())
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	missedNow := len(state.missing)
	p.met.rowsLoaded.Add(state.rowsLoadedCum)
	p.met.subparts.Add(int64(len(all) - missedNow))
	p.met.missingSubparts.Add(int64(missedNow))
	espan.SetAttr("subparts", len(all))
	espan.SetAttr("rows_loaded", state.rowsLoadedCum)
	espan.SetAttr("answers", answers.Card())
	espan.SetAttr("exact", missedNow == 0)
	if missedNow > 0 {
		espan.SetAttr("missing_subparts", missedNow)
	}
	stats := state.lastStats
	stats.InputRows = state.rowsLoadedCum
	return &ExactResult{
		Answers:         answers,
		Stats:           stats,
		Exact:           len(state.missing) == 0,
		MissingSubParts: append([]hpart.SubPartKey(nil), state.missing...),
		Epoch:           lay.Epoch(),
	}, nil
}
