package ping

import (
	"context"
	"fmt"
	"sort"

	"ping/internal/dataflow"
	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/obs/prof"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// scheduledStep is one PQA iteration: the sub-partitions it loads and the
// deepest level included once it completes.
type scheduledStep struct {
	maxLevel int
	newKeys  []hpart.SubPartKey
}

// productCap bounds the literal Algorithm 2 product enumeration; beyond
// this the caller should use a level-cumulative strategy.
const productCap = 1 << 20

// sliceSchedule turns the per-pattern candidate lists into an ordered
// sequence of steps according to the processor's strategy. Every step's
// cumulative sub-partition set is a slice for the query (all patterns
// covered, Def. 4.2); the last step's set is the maximal slice.
func (p *Processor) sliceSchedule(lay *hpart.Layout, hl [][]hpart.SubPartKey) ([]scheduledStep, error) {
	switch p.opts.Strategy {
	case ProductOrder:
		return p.productSchedule(hl)
	default:
		return p.levelSchedule(lay, hl)
	}
}

// levelSchedule visits hierarchy levels one at a time. The order is
// ascending level for LevelCumulative, or sorted by partition size for the
// LargestFirst/SmallestFirst variants. The first steps are merged until
// the cumulative set covers every pattern (before that point the query is
// not safe and no evaluation can run).
func (p *Processor) levelSchedule(lay *hpart.Layout, hl [][]hpart.SubPartKey) ([]scheduledStep, error) {
	// Distinct levels appearing in any candidate list.
	levelSeen := make(map[int]bool)
	for _, candidates := range hl {
		for _, k := range candidates {
			levelSeen[k.Level] = true
		}
	}
	levels := make([]int, 0, len(levelSeen))
	for l := range levelSeen {
		levels = append(levels, l)
	}
	switch p.opts.Strategy {
	case LargestFirst:
		sort.Slice(levels, func(i, j int) bool {
			return lay.LevelTriples[levels[i]-1] > lay.LevelTriples[levels[j]-1]
		})
	case SmallestFirst:
		sort.Slice(levels, func(i, j int) bool {
			return lay.LevelTriples[levels[i]-1] < lay.LevelTriples[levels[j]-1]
		})
	default:
		sort.Ints(levels)
	}

	// Group candidate keys by level, deduplicated across patterns.
	keysByLevel := make(map[int][]hpart.SubPartKey)
	dedup := make(map[hpart.SubPartKey]bool)
	for _, candidates := range hl {
		for _, k := range candidates {
			if !dedup[k] {
				dedup[k] = true
				keysByLevel[k.Level] = append(keysByLevel[k.Level], k)
			}
		}
	}
	// Ablation: loading whole levels instead of per-property files.
	if p.opts.DisableSubPartPruning {
		for l := range keysByLevel {
			var all []hpart.SubPartKey
			for key := range lay.SubPartRows {
				if key.Level == l {
					all = append(all, key)
				}
			}
			sort.Slice(all, func(i, j int) bool { return all[i].Prop < all[j].Prop })
			keysByLevel[l] = all
		}
	}

	// Per-pattern cover tracking: a step sequence becomes valid once all
	// patterns have at least one candidate among included levels.
	patternHasLevel := make([]map[int]bool, len(hl))
	for i, candidates := range hl {
		patternHasLevel[i] = make(map[int]bool)
		for _, k := range candidates {
			patternHasLevel[i][k.Level] = true
		}
	}

	var steps []scheduledStep
	included := make(map[int]bool)
	covered := func() bool {
		for _, has := range patternHasLevel {
			ok := false
			for l := range has {
				if included[l] {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}

	var pending []hpart.SubPartKey
	maxLevel := 0
	for _, l := range levels {
		included[l] = true
		pending = append(pending, keysByLevel[l]...)
		if l > maxLevel {
			maxLevel = l
		}
		if !covered() {
			continue // not yet a slice; keep accumulating
		}
		if len(pending) == 0 {
			continue // nothing new to load; skip the step
		}
		steps = append(steps, scheduledStep{maxLevel: maxLevel, newKeys: pending})
		pending = nil
	}
	return steps, nil
}

// productSchedule enumerates the cartesian product of per-pattern
// sub-partition choices — Algorithm 2 verbatim. Product elements are
// visited in ascending order of their deepest level so answers still
// arrive coarse-to-fine; elements whose union adds no unvisited
// sub-partition are skipped (their EQA result is already contained in the
// accumulator, Algorithm 3 line 2).
func (p *Processor) productSchedule(hl [][]hpart.SubPartKey) ([]scheduledStep, error) {
	total := 1
	for _, candidates := range hl {
		total *= len(candidates)
		if total > productCap {
			return nil, fmt.Errorf("ping: product of %d slices exceeds cap %d; use a level strategy", total, productCap)
		}
	}

	type combo struct {
		maxLevel int
		keys     []hpart.SubPartKey
	}
	combos := make([]combo, 0, total)
	idx := make([]int, len(hl))
	for {
		c := combo{}
		dedup := make(map[hpart.SubPartKey]bool, len(hl))
		for i, j := range idx {
			k := hl[i][j]
			if !dedup[k] {
				dedup[k] = true
				c.keys = append(c.keys, k)
			}
			if k.Level > c.maxLevel {
				c.maxLevel = k.Level
			}
		}
		combos = append(combos, c)
		// Advance the mixed-radix counter.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(hl[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	sort.SliceStable(combos, func(a, b int) bool { return combos[a].maxLevel < combos[b].maxLevel })

	visited := make(map[hpart.SubPartKey]bool)
	var steps []scheduledStep
	for _, c := range combos {
		var fresh []hpart.SubPartKey
		for _, k := range c.keys {
			if !visited[k] {
				visited[k] = true
				fresh = append(fresh, k)
			}
		}
		if len(fresh) == 0 {
			continue
		}
		steps = append(steps, scheduledStep{maxLevel: c.maxLevel, newKeys: fresh})
	}
	return steps, nil
}

// groupList keeps one pattern's loaded groups sorted by (level, prop).
// Keys arrive one step at a time (in arbitrary strategy order), so the
// list is maintained by sorted insertion instead of re-scanning and
// re-sorting the full accumulator once per pattern per step.
type groupList struct {
	keys   []hpart.SubPartKey
	groups []engine.PropGroup
}

func (gl *groupList) insert(k hpart.SubPartKey, rows rdf.PairBlock) {
	i := sort.Search(len(gl.keys), func(i int) bool {
		ki := gl.keys[i]
		return ki.Level > k.Level || (ki.Level == k.Level && ki.Prop >= k.Prop)
	})
	gl.keys = append(gl.keys, hpart.SubPartKey{})
	copy(gl.keys[i+1:], gl.keys[i:])
	gl.keys[i] = k
	gl.groups = append(gl.groups, engine.PropGroup{})
	copy(gl.groups[i+1:], gl.groups[i:])
	gl.groups[i] = engine.PropGroup{Prop: k.Prop, Rows: rows}
}

// evalState carries the accumulator C of Algorithms 2/3: the loaded
// sub-partitions (as per-pattern sorted group lists maintained
// incrementally as keys load), the data-access counters, and the
// machinery to evaluate the query on the accumulated data — either from
// scratch or semi-naively via engine.Incremental.
type evalState struct {
	p *Processor
	// lay is the layout snapshot pinned for this query; every read and
	// dictionary lookup goes through it so a concurrently published epoch
	// cannot change the data mid-evaluation.
	lay       *hpart.Layout
	q         *sparql.Query
	hlSet     []map[hpart.SubPartKey]bool
	hlPathSet []map[hpart.SubPartKey]bool

	// patGroups/pathGroups accumulate each pattern's loaded groups in
	// (level, prop) order; patDelta/pathDelta hold only the groups that
	// arrived in the current step (reset by load).
	patGroups  []*groupList
	pathGroups []*groupList
	patDelta   [][]engine.PropGroup
	pathDelta  [][]engine.PropGroup

	loadedSet map[hpart.SubPartKey]bool
	// loaded lists the accumulator's keys in load order — the durable
	// record a checkpoint needs to rebuild C on resume.
	loaded []hpart.SubPartKey
	// missing accumulates sub-partitions skipped because their reads
	// failed under FailurePolicy Degrade; missingSet guards re-attempts.
	missing    []hpart.SubPartKey
	missingSet map[hpart.SubPartKey]bool

	// inc, when non-nil, evaluates steps semi-naively; nil falls back to
	// from-scratch evaluation (ablation, EQA, or LIMIT queries).
	inc *engine.Incremental

	rowsLoadedStep  int64
	rowsLoadedCum   int64
	cacheHitsStep   int64
	cacheMissesStep int64
	prevAnswers     int
	lastStats       *engine.Stats

	// led is the query's resource ledger (nil-safe), refreshed from the
	// load context; pinnedBytes tracks the resident bytes of every
	// PairBlock the accumulator references, whose running total is the
	// ledger's cache-pinned peak.
	led         *prof.Ledger
	pinnedBytes int64

	// span, when non-nil, is the trace span of the step being evaluated;
	// the engine nests its per-join child spans under it.
	span *obs.Span
}

func newEvalState(p *Processor, lay *hpart.Layout, q *sparql.Query, hl, hlPaths [][]hpart.SubPartKey, incremental bool) *evalState {
	toSets := func(lists [][]hpart.SubPartKey) []map[hpart.SubPartKey]bool {
		sets := make([]map[hpart.SubPartKey]bool, len(lists))
		for i, candidates := range lists {
			sets[i] = make(map[hpart.SubPartKey]bool, len(candidates))
			for _, k := range candidates {
				sets[i][k] = true
			}
		}
		return sets
	}
	st := &evalState{
		p:          p,
		lay:        lay,
		q:          q,
		hlSet:      toSets(hl),
		hlPathSet:  toSets(hlPaths),
		patGroups:  make([]*groupList, len(q.Patterns)),
		pathGroups: make([]*groupList, len(q.Paths)),
		patDelta:   make([][]engine.PropGroup, len(q.Patterns)),
		pathDelta:  make([][]engine.PropGroup, len(q.Paths)),
		loadedSet:  make(map[hpart.SubPartKey]bool),
		missingSet: make(map[hpart.SubPartKey]bool),
	}
	for i := range st.patGroups {
		st.patGroups[i] = &groupList{}
	}
	for i := range st.pathGroups {
		st.pathGroups[i] = &groupList{}
	}
	if incremental {
		inc, err := engine.NewIncremental(q, lay.DictView(), engine.Options{
			Context:    p.ctx,
			Partitions: p.opts.Partitions,
			Metrics:    p.opts.Metrics,
		})
		if err == nil {
			st.inc = inc
		}
		// A LIMIT query rejects incremental evaluation; the scratch path
		// below reproduces its first-N semantics exactly.
	}
	return st
}

// loadResult is the outcome of one sub-partition read issued by load.
type loadResult struct {
	block rdf.PairBlock
	hit   bool
	err   error
}

// load reads the given sub-partitions, skipping ones already in the
// accumulator (Algorithm 3, lines 2-3). Reads fan out over the
// processor's dataflow worker pool (bounded by its executor count) and
// go through the layout's decoded-sub-partition cache; results are
// folded back in input-key order, so group order, row accounting, and
// the `missing` list stay deterministic regardless of worker
// interleaving. Under FailurePolicy Degrade a read that fails after all
// dfs retries marks the sub-partition missing and continues — the
// evaluation then runs on a subset of the slice, which stays sound by
// Lemma 4.4. Context cancellation always aborts, regardless of policy.
func (st *evalState) load(ctx context.Context, keys []hpart.SubPartKey) error {
	st.led = prof.LedgerFrom(ctx)
	st.rowsLoadedStep = 0
	st.cacheHitsStep, st.cacheMissesStep = 0, 0
	for i := range st.patDelta {
		st.patDelta[i] = nil
	}
	for i := range st.pathDelta {
		st.pathDelta[i] = nil
	}

	toLoad := make([]hpart.SubPartKey, 0, len(keys))
	for _, k := range keys {
		if st.loadedSet[k] || st.missingSet[k] {
			continue
		}
		// Mark now so duplicate keys within one batch load once; a failed
		// read under Degrade moves the key to missingSet below.
		st.loadedSet[k] = true
		toLoad = append(toLoad, k)
	}
	if len(toLoad) == 0 {
		return nil
	}

	results := dataflow.Map(
		dataflow.Parallelize(st.p.ctx, toLoad, 0),
		func(k hpart.SubPartKey) loadResult {
			block, hit, err := st.lay.ReadSubPartitionCached(ctx, k)
			return loadResult{block: block, hit: hit, err: err}
		}).Collect()
	// A cancellation mid-stage leaves unprocessed partitions behind;
	// abort rather than fold in a partial batch.
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(results) != len(toLoad) {
		return context.Canceled
	}

	for i, r := range results {
		k := toLoad[i]
		if r.err != nil {
			delete(st.loadedSet, k)
			if st.p.opts.FailurePolicy == Degrade {
				st.missingSet[k] = true
				st.missing = append(st.missing, k)
				continue
			}
			return r.err
		}
		if r.hit {
			st.cacheHitsStep++
		} else {
			st.cacheMissesStep++
			st.led.AddBytesDecoded(int64(r.block.Bytes()))
		}
		st.loaded = append(st.loaded, k)
		st.rowsLoadedStep += int64(r.block.Len())
		st.pinnedBytes += int64(r.block.Bytes())
		st.fold(k, r.block)
	}
	st.rowsLoadedCum += st.rowsLoadedStep
	st.led.AddRowsLoaded(st.rowsLoadedStep)
	st.led.ObserveCacheBytesPinned(st.pinnedBytes)
	st.p.met.cacheHits.Add(st.cacheHitsStep)
	st.p.met.cacheMisses.Add(st.cacheMissesStep)
	return nil
}

// fold routes one loaded sub-partition into the group lists and current
// deltas of every pattern whose HL(t) contains it.
func (st *evalState) fold(k hpart.SubPartKey, block rdf.PairBlock) {
	g := engine.PropGroup{Prop: k.Prop, Rows: block}
	for i, set := range st.hlSet {
		if set[k] {
			st.patGroups[i].insert(k, block)
			st.patDelta[i] = append(st.patDelta[i], g)
		}
	}
	for i, set := range st.hlPathSet {
		if set[k] {
			st.pathGroups[i].insert(k, block)
			st.pathDelta[i] = append(st.pathDelta[i], g)
		}
	}
}

// evaluate runs the query on the accumulated slices: each pattern sees
// exactly the loaded sub-partitions belonging to its HL(t). Answers are
// returned as a distinct relation so progressive accumulation is a set
// union, matching the answer-counting semantics of the paper's coverage
// metric. In incremental mode only the current deltas are joined
// (semi-naive, Lemma 4.3) and unioned with the cached previous answers;
// the per-step answer set is identical to the scratch path.
func (st *evalState) evaluate() (*engine.Relation, error) {
	if st.inc != nil {
		rel, stats, err := st.inc.Step(st.patDelta, st.pathDelta, st.span)
		if err != nil {
			return nil, err
		}
		st.lastStats = stats
		st.led.ObservePeakRelationRows(stats.PeakRows)
		return rel, nil
	}
	inputs := make([]engine.PatternInput, len(st.q.Patterns))
	for i, pat := range st.q.Patterns {
		inputs[i] = engine.PatternInput{Pattern: pat, Groups: st.patGroups[i].groups}
	}
	pathInputs := make([]engine.PathInput, len(st.q.Paths))
	for i, pat := range st.q.Paths {
		pathInputs[i] = engine.PathInput{Pattern: pat, Groups: st.pathGroups[i].groups}
	}
	rel, stats, err := engine.EvaluatePaths(st.q, inputs, pathInputs, st.lay.DictView(), engine.Options{
		Context:    st.p.ctx,
		Partitions: st.p.opts.Partitions,
		Metrics:    st.p.opts.Metrics,
		Span:       st.span,
	})
	if err != nil {
		return nil, err
	}
	st.lastStats = stats
	st.led.ObservePeakRelationRows(stats.PeakRows)
	return rel.Distinct(), nil
}
