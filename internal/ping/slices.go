package ping

import (
	"context"
	"fmt"
	"sort"

	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/sparql"
)

// scheduledStep is one PQA iteration: the sub-partitions it loads and the
// deepest level included once it completes.
type scheduledStep struct {
	maxLevel int
	newKeys  []hpart.SubPartKey
}

// productCap bounds the literal Algorithm 2 product enumeration; beyond
// this the caller should use a level-cumulative strategy.
const productCap = 1 << 20

// sliceSchedule turns the per-pattern candidate lists into an ordered
// sequence of steps according to the processor's strategy. Every step's
// cumulative sub-partition set is a slice for the query (all patterns
// covered, Def. 4.2); the last step's set is the maximal slice.
func (p *Processor) sliceSchedule(hl [][]hpart.SubPartKey) ([]scheduledStep, error) {
	switch p.opts.Strategy {
	case ProductOrder:
		return p.productSchedule(hl)
	default:
		return p.levelSchedule(hl)
	}
}

// levelSchedule visits hierarchy levels one at a time. The order is
// ascending level for LevelCumulative, or sorted by partition size for the
// LargestFirst/SmallestFirst variants. The first steps are merged until
// the cumulative set covers every pattern (before that point the query is
// not safe and no evaluation can run).
func (p *Processor) levelSchedule(hl [][]hpart.SubPartKey) ([]scheduledStep, error) {
	// Distinct levels appearing in any candidate list.
	levelSeen := make(map[int]bool)
	for _, candidates := range hl {
		for _, k := range candidates {
			levelSeen[k.Level] = true
		}
	}
	levels := make([]int, 0, len(levelSeen))
	for l := range levelSeen {
		levels = append(levels, l)
	}
	switch p.opts.Strategy {
	case LargestFirst:
		sort.Slice(levels, func(i, j int) bool {
			return p.layout.LevelTriples[levels[i]-1] > p.layout.LevelTriples[levels[j]-1]
		})
	case SmallestFirst:
		sort.Slice(levels, func(i, j int) bool {
			return p.layout.LevelTriples[levels[i]-1] < p.layout.LevelTriples[levels[j]-1]
		})
	default:
		sort.Ints(levels)
	}

	// Group candidate keys by level, deduplicated across patterns.
	keysByLevel := make(map[int][]hpart.SubPartKey)
	dedup := make(map[hpart.SubPartKey]bool)
	for _, candidates := range hl {
		for _, k := range candidates {
			if !dedup[k] {
				dedup[k] = true
				keysByLevel[k.Level] = append(keysByLevel[k.Level], k)
			}
		}
	}
	// Ablation: loading whole levels instead of per-property files.
	if p.opts.DisableSubPartPruning {
		for l := range keysByLevel {
			var all []hpart.SubPartKey
			for key := range p.layout.SubPartRows {
				if key.Level == l {
					all = append(all, key)
				}
			}
			sort.Slice(all, func(i, j int) bool { return all[i].Prop < all[j].Prop })
			keysByLevel[l] = all
		}
	}

	// Per-pattern cover tracking: a step sequence becomes valid once all
	// patterns have at least one candidate among included levels.
	patternHasLevel := make([]map[int]bool, len(hl))
	for i, candidates := range hl {
		patternHasLevel[i] = make(map[int]bool)
		for _, k := range candidates {
			patternHasLevel[i][k.Level] = true
		}
	}

	var steps []scheduledStep
	included := make(map[int]bool)
	covered := func() bool {
		for _, has := range patternHasLevel {
			ok := false
			for l := range has {
				if included[l] {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}

	var pending []hpart.SubPartKey
	maxLevel := 0
	for _, l := range levels {
		included[l] = true
		pending = append(pending, keysByLevel[l]...)
		if l > maxLevel {
			maxLevel = l
		}
		if !covered() {
			continue // not yet a slice; keep accumulating
		}
		if len(pending) == 0 {
			continue // nothing new to load; skip the step
		}
		steps = append(steps, scheduledStep{maxLevel: maxLevel, newKeys: pending})
		pending = nil
	}
	return steps, nil
}

// productSchedule enumerates the cartesian product of per-pattern
// sub-partition choices — Algorithm 2 verbatim. Product elements are
// visited in ascending order of their deepest level so answers still
// arrive coarse-to-fine; elements whose union adds no unvisited
// sub-partition are skipped (their EQA result is already contained in the
// accumulator, Algorithm 3 line 2).
func (p *Processor) productSchedule(hl [][]hpart.SubPartKey) ([]scheduledStep, error) {
	total := 1
	for _, candidates := range hl {
		total *= len(candidates)
		if total > productCap {
			return nil, fmt.Errorf("ping: product of %d slices exceeds cap %d; use a level strategy", total, productCap)
		}
	}

	type combo struct {
		maxLevel int
		keys     []hpart.SubPartKey
	}
	combos := make([]combo, 0, total)
	idx := make([]int, len(hl))
	for {
		c := combo{}
		dedup := make(map[hpart.SubPartKey]bool, len(hl))
		for i, j := range idx {
			k := hl[i][j]
			if !dedup[k] {
				dedup[k] = true
				c.keys = append(c.keys, k)
			}
			if k.Level > c.maxLevel {
				c.maxLevel = k.Level
			}
		}
		combos = append(combos, c)
		// Advance the mixed-radix counter.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(hl[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	sort.SliceStable(combos, func(a, b int) bool { return combos[a].maxLevel < combos[b].maxLevel })

	visited := make(map[hpart.SubPartKey]bool)
	var steps []scheduledStep
	for _, c := range combos {
		var fresh []hpart.SubPartKey
		for _, k := range c.keys {
			if !visited[k] {
				visited[k] = true
				fresh = append(fresh, k)
			}
		}
		if len(fresh) == 0 {
			continue
		}
		steps = append(steps, scheduledStep{maxLevel: c.maxLevel, newKeys: fresh})
	}
	return steps, nil
}

// evalState carries the accumulator C of Algorithms 2/3: the loaded
// sub-partitions, the data-access counters, and the machinery to
// re-evaluate the query on the accumulated data.
type evalState struct {
	p         *Processor
	q         *sparql.Query
	hl        [][]hpart.SubPartKey
	hlSet     []map[hpart.SubPartKey]bool
	hlPath    [][]hpart.SubPartKey
	hlPathSet []map[hpart.SubPartKey]bool

	loaded map[hpart.SubPartKey][]hpart.Pair
	// missing accumulates sub-partitions skipped because their reads
	// failed under FailurePolicy Degrade; missingSet guards re-attempts.
	missing    []hpart.SubPartKey
	missingSet map[hpart.SubPartKey]bool

	rowsLoadedStep int64
	rowsLoadedCum  int64
	prevAnswers    int
	lastStats      *engine.Stats

	// span, when non-nil, is the trace span of the step being evaluated;
	// the engine nests its per-join child spans under it.
	span *obs.Span
}

func newEvalState(p *Processor, q *sparql.Query, hl, hlPaths [][]hpart.SubPartKey) *evalState {
	toSets := func(lists [][]hpart.SubPartKey) []map[hpart.SubPartKey]bool {
		sets := make([]map[hpart.SubPartKey]bool, len(lists))
		for i, candidates := range lists {
			sets[i] = make(map[hpart.SubPartKey]bool, len(candidates))
			for _, k := range candidates {
				sets[i][k] = true
			}
		}
		return sets
	}
	return &evalState{
		p:          p,
		q:          q,
		hl:         hl,
		hlSet:      toSets(hl),
		hlPath:     hlPaths,
		hlPathSet:  toSets(hlPaths),
		loaded:     make(map[hpart.SubPartKey][]hpart.Pair),
		missingSet: make(map[hpart.SubPartKey]bool),
	}
}

// load reads the given sub-partitions from storage, skipping ones already
// in the accumulator (Algorithm 3, lines 2-3). Under FailurePolicy
// Degrade a read that fails after all dfs retries marks the
// sub-partition missing and continues — the evaluation then runs on a
// subset of the slice, which stays sound by Lemma 4.4. Context
// cancellation always aborts, regardless of policy.
func (st *evalState) load(ctx context.Context, keys []hpart.SubPartKey) error {
	st.rowsLoadedStep = 0
	for _, k := range keys {
		if _, ok := st.loaded[k]; ok {
			continue
		}
		if st.missingSet[k] {
			continue
		}
		pairs, err := st.p.layout.ReadSubPartitionCtx(ctx, k)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			if st.p.opts.FailurePolicy == Degrade {
				st.missingSet[k] = true
				st.missing = append(st.missing, k)
				continue
			}
			return err
		}
		st.loaded[k] = pairs
		st.rowsLoadedStep += int64(len(pairs))
	}
	st.rowsLoadedCum += st.rowsLoadedStep
	return nil
}

// evaluate runs the query on the accumulated slices: each pattern sees
// exactly the loaded sub-partitions belonging to its HL(t). Answers are
// returned as a distinct relation so progressive accumulation is a set
// union, matching the answer-counting semantics of the paper's coverage
// metric.
func (st *evalState) evaluate() (*engine.Relation, error) {
	// Deterministic group order: sort the loaded keys in each pattern's
	// candidate set.
	loadedGroups := func(set map[hpart.SubPartKey]bool) []engine.PropGroup {
		var keys []hpart.SubPartKey
		for k := range st.loaded {
			if set[k] {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].Level != keys[b].Level {
				return keys[a].Level < keys[b].Level
			}
			return keys[a].Prop < keys[b].Prop
		})
		groups := make([]engine.PropGroup, 0, len(keys))
		for _, k := range keys {
			groups = append(groups, engine.PropGroup{Prop: k.Prop, Rows: st.loaded[k]})
		}
		return groups
	}
	inputs := make([]engine.PatternInput, len(st.q.Patterns))
	for i, pat := range st.q.Patterns {
		inputs[i] = engine.PatternInput{Pattern: pat, Groups: loadedGroups(st.hlSet[i])}
	}
	pathInputs := make([]engine.PathInput, len(st.q.Paths))
	for i, pat := range st.q.Paths {
		pathInputs[i] = engine.PathInput{Pattern: pat, Groups: loadedGroups(st.hlPathSet[i])}
	}
	rel, stats, err := engine.EvaluatePaths(st.q, inputs, pathInputs, st.p.layout.Dict, engine.Options{
		Context:    st.p.ctx,
		Partitions: st.p.opts.Partitions,
		Metrics:    st.p.opts.Metrics,
		Span:       st.span,
	})
	if err != nil {
		return nil, err
	}
	st.lastStats = stats
	return rel.Distinct(), nil
}
