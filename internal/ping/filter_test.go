package ping

import (
	"fmt"
	"testing"

	"ping/internal/engine"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// pricedGraph attaches numeric ratings so FILTER queries have selective
// answers, with nested CSs for a multi-level hierarchy.
func pricedGraph(subjects int) *rdf.Graph {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	for i := 0; i < subjects; i++ {
		s := iri(fmt.Sprintf("item%d", i))
		g.Add(s, iri("rating"), rdf.NewTypedLiteral(
			fmt.Sprintf("%d", i%10), "http://www.w3.org/2001/XMLSchema#integer"))
		if i%2 == 0 {
			g.Add(s, iri("tag"), iri(fmt.Sprintf("tag%d", i%5)))
		}
		if i%4 == 0 {
			g.Add(s, iri("link"), iri(fmt.Sprintf("item%d", (i+1)%subjects)))
		}
	}
	g.Dedup()
	return g
}

// TestPQAFilterSoundness: a FILTER is a monotone selection, so all three
// formal properties must survive it.
func TestPQAFilterSoundness(t *testing.T) {
	g := pricedGraph(120)
	proc := NewProcessor(mustPartition(t, g), Options{})
	queries := []string{
		`SELECT * WHERE { ?x <rating> ?r . FILTER (?r >= 7) }`,
		`SELECT * WHERE { ?x <rating> ?r . ?x <tag> ?t . FILTER (?r > 2 && ?r < 8) }`,
		`SELECT ?x WHERE { ?x <rating> ?r . ?x <link> ?y . FILTER (!(?r = 0)) }`,
		`SELECT * WHERE { ?x <rating> ?r . FILTER (?r = 3 || ?r = 5) }`,
	}
	for _, qs := range queries {
		q := sparql.MustParse(qs)
		oracle := answerSet(engine.Naive(g, q).Distinct())
		res, err := proc.PQA(q)
		if err != nil {
			t.Fatalf("%q: %v", qs, err)
		}
		prev := map[string]bool{}
		for i, step := range res.Steps {
			cur := answerSet(step.Answers)
			if !subset(prev, cur) {
				t.Fatalf("%q: step %d lost answers under FILTER", qs, i+1)
			}
			if !subset(cur, oracle) {
				t.Fatalf("%q: step %d produced a filtered-out answer", qs, i+1)
			}
			prev = cur
		}
		got := answerSet(res.Final)
		if len(got) != len(oracle) || !subset(got, oracle) {
			t.Fatalf("%q: final %d answers, oracle %d", qs, len(got), len(oracle))
		}
	}
}

func TestEQAFilterMatchesOracle(t *testing.T) {
	g := pricedGraph(80)
	proc := NewProcessor(mustPartition(t, g), Options{})
	q := sparql.MustParse(`SELECT * WHERE {
		?x <rating> ?r .
		?x <tag> ?t .
		FILTER (?r < 4)
	}`)
	rel, _, err := proc.EQA(q)
	if err != nil {
		t.Fatal(err)
	}
	oracle := answerSet(engine.Naive(g, q).Distinct())
	got := answerSet(rel)
	if len(got) != len(oracle) || !subset(got, oracle) {
		t.Fatalf("EQA filter: %d answers, oracle %d", len(got), len(oracle))
	}
	if rel.Card() == 0 {
		t.Fatal("filter query unexpectedly empty — test graph too small")
	}
}
