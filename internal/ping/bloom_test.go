package ping

import (
	"fmt"
	"testing"

	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// bloomLayout partitions with per-sub-partition filters enabled.
func bloomLayout(t *testing.T, g *rdf.Graph) *hpart.Layout {
	t.Helper()
	lay, err := hpart.Partition(g, hpart.Options{BuildBlooms: true})
	if err != nil {
		t.Fatal(err)
	}
	if !lay.HasBlooms() {
		t.Fatal("blooms not built")
	}
	return lay
}

// TestBloomPruningRefinesOI crafts the case where OI alone cannot prune:
// an object occurs on a level, but only under a *different* property than
// the pattern's. The Bloom filter of the specific sub-partition rules the
// level out.
func TestBloomPruningRefinesOI(t *testing.T) {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	// Level 1: subject a has {p}; target appears as object of p at L1.
	g.Add(iri("a"), iri("p"), iri("target"))
	// Level 2: subject b has {p, q}; target appears at L2 ONLY under q.
	g.Add(iri("b"), iri("p"), iri("other"))
	g.Add(iri("b"), iri("q"), iri("target"))
	g.Dedup()
	lay := bloomLayout(t, g)
	if lay.NumLevels != 2 {
		t.Fatalf("levels = %d", lay.NumLevels)
	}

	pat := sparql.TriplePattern{S: rdf.NewVar("x"), P: iri("p"), O: iri("target")}
	// Without blooms: OI[target] = {1,2}, VP[p] = {1,2} → both levels.
	plain := NewProcessor(lay, Options{})
	if got := plain.PatternSlices(pat); len(got) != 2 {
		t.Fatalf("without blooms: %d candidates, want 2", len(got))
	}
	// With blooms: L2[p]'s object filter does not contain target.
	pruned := NewProcessor(lay, Options{UseBloomPruning: true})
	got := pruned.PatternSlices(pat)
	if len(got) != 1 || got[0].Level != 1 {
		t.Fatalf("with blooms: %v, want only L1[p]", got)
	}
}

func TestBloomPruningPreservesAnswers(t *testing.T) {
	for seed := int64(30); seed < 34; seed++ {
		g := nestedGraph(seed, 60, 5)
		lay := bloomLayout(t, g)
		plain := NewProcessor(lay, Options{})
		pruned := NewProcessor(lay, Options{UseBloomPruning: true})
		queries := append([]string(nil), testQueries...)
		queries = append(queries,
			`SELECT * WHERE { ?x <p0> <s7> . ?x <p1> ?y }`,
			`SELECT * WHERE { <s5> <p0> ?y . ?y <p0> ?z }`,
		)
		for _, qs := range queries {
			q := sparql.MustParse(qs)
			oracle := answerSet(engine.Naive(g, q).Distinct())

			relPruned, statsPruned, err := pruned.EQA(q)
			if err != nil {
				t.Fatal(err)
			}
			got := answerSet(relPruned)
			if len(got) != len(oracle) || !subset(got, oracle) {
				t.Fatalf("seed %d %q: bloom pruning changed answers (%d vs %d)",
					seed, qs, len(got), len(oracle))
			}
			_, statsPlain, err := plain.EQA(q)
			if err != nil {
				t.Fatal(err)
			}
			if statsPruned.InputRows > statsPlain.InputRows {
				t.Errorf("seed %d %q: pruning increased data access (%d > %d)",
					seed, qs, statsPruned.InputRows, statsPlain.InputRows)
			}
		}
	}
}

func TestBloomPruningInactiveWithoutFilters(t *testing.T) {
	g := fig1Graph()
	lay := mustPartition(t, g) // no blooms
	proc := NewProcessor(lay, Options{UseBloomPruning: true})
	q := sparql.MustParse(`SELECT * WHERE { ?x <occursIn> ?b . ?x <hasKeyword> ?d }`)
	res, err := proc.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Card() != 3 {
		t.Errorf("answers = %d, want 3", res.Final.Card())
	}
}

func TestBloomsSurviveMaintenance(t *testing.T) {
	g := nestedGraph(77, 50, 4)
	lay := bloomLayout(t, g)
	m, err := hpart.NewMaintainer(lay)
	if err != nil {
		t.Fatal(err)
	}
	// Move a subject by giving it a new property; the rewritten files'
	// filters must reflect the move.
	s := g.Dict.LookupIRI("s0")
	pNew := g.Dict.EncodeIRI("pNew")
	o := g.Dict.EncodeIRI("oNew")
	if err := m.AddTriples([]rdf.Triple{{S: s, P: pNew, O: o}}); err != nil {
		t.Fatal(err)
	}
	newLevel := lay.SI[s]
	key := hpart.SubPartKey{Level: newLevel, Prop: pNew}
	b := lay.Blooms(key)
	if b == nil {
		t.Fatalf("no blooms for new sub-partition %v", key)
	}
	if !b.Subjects.Contains(uint64(s)) || !b.Objects.Contains(uint64(o)) {
		t.Error("rebuilt filter missing the moved subject's row")
	}
	// Queries with the new constant must find the answer under pruning.
	proc := NewProcessor(lay, Options{UseBloomPruning: true})
	q := sparql.MustParse(fmt.Sprintf(`SELECT * WHERE { ?x <pNew> <oNew> }`))
	rel, _, err := proc.EQA(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 1 {
		t.Errorf("answers = %d, want 1", rel.Card())
	}
}

func TestBloomsPersistAndReload(t *testing.T) {
	g := nestedGraph(88, 40, 4)
	lay := bloomLayout(t, g)
	if err := lay.SaveDict(); err != nil {
		t.Fatal(err)
	}
	reloaded, err := hpart.Load(lay.FS(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reloaded.HasBlooms() {
		t.Fatal("blooms not reloaded from storage")
	}
	proc := NewProcessor(reloaded, Options{UseBloomPruning: true})
	q := sparql.MustParse(`SELECT * WHERE { ?x <p0> ?y . ?x <p1> ?z }`)
	want := engine.Naive(g, q).Distinct()
	rel, _, err := proc.EQA(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != want.Card() {
		t.Errorf("reloaded bloom-pruned EQA: %d answers, oracle %d", rel.Card(), want.Card())
	}
}
