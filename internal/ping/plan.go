package ping

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/sparql"
)

// Plan is the structured EXPLAIN/ANALYZE output of a query: the slice
// schedule PQA would follow, per-pattern candidate sub-partitions
// (HL(t)), the predicted join order, and the incremental-vs-scratch
// decision. Analyze additionally annotates every step with what actually
// happened: rows loaded, answers, coverage, cache hits, join
// cardinalities, and wall time.
type Plan struct {
	// Query is the SPARQL surface text the plan was built for.
	Query string `json:"query"`
	// Fingerprint is the workload fingerprint of the query; callers with
	// a fingerprinter (pingd, pingquery) fill it in.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Shape is the workload classification (star, chain, complex).
	Shape string `json:"shape"`
	// Strategy is the slice ordering strategy of the processor.
	Strategy string `json:"strategy"`
	// Epoch is the layout snapshot the plan was computed against. For an
	// analyzed plan this is the epoch the run pinned.
	Epoch uint64 `json:"epoch"`
	// Safe reports whether the query is safe on at least one slice
	// (Def. 4.1); when false no slice steps exist and the answer is empty.
	Safe bool `json:"safe"`
	// Incremental is the predicted evaluation mode: semi-naive delta
	// steps, or from-scratch re-evaluation (LIMIT queries and ablation).
	Incremental bool `json:"incremental"`
	// Patterns holds one entry per triple pattern, then per path pattern.
	Patterns []PlanPattern `json:"patterns"`
	// JoinOrder predicts the order the engine consumes the pattern
	// relations (indices into Patterns), per its greedy smallest-first
	// policy.
	JoinOrder []int `json:"join_order,omitempty"`
	// Steps is the slice schedule, one entry per progressive step.
	Steps []PlanStep `json:"steps"`
	// Analyzed marks a plan annotated by a real run; the fields below and
	// the per-step actuals are only meaningful when it is true.
	Analyzed bool `json:"analyzed,omitempty"`
	// TotalMs is the analyzed run's wall time.
	TotalMs float64 `json:"total_ms,omitempty"`
	// Answers is the analyzed run's final answer count.
	Answers int `json:"answers,omitempty"`
	// Exact is false when the analyzed run degraded (Lemma 4.4 subset).
	Exact bool `json:"exact,omitempty"`
}

// PlanPattern describes one triple or path pattern's candidate slices.
type PlanPattern struct {
	// Pattern is the SPARQL surface text of the pattern.
	Pattern string `json:"pattern"`
	// Path marks property-path patterns (candidates via VP only).
	Path bool `json:"path,omitempty"`
	// Candidates is |HL(t)| — how many sub-partitions the indexes allow.
	Candidates int `json:"candidates"`
	// Levels lists the distinct hierarchy levels of the candidates.
	Levels []int `json:"levels,omitempty"`
	// PredictedRows is the total row count of the candidates — the
	// cardinality estimate the join-order prediction uses.
	PredictedRows int64 `json:"predicted_rows"`
	// Safe is false when the pattern has no candidate sub-partition
	// anywhere, which makes the whole query unsafe.
	Safe bool `json:"safe"`
}

// PlanStep is one progressive step of the slice schedule.
type PlanStep struct {
	// Step is the 1-based step number.
	Step int `json:"step"`
	// MaxLevel is the deepest hierarchy level included once the step
	// completes — the slice's safe level.
	MaxLevel int `json:"max_level"`
	// SubParts lists the sub-partitions this step loads.
	SubParts []PlanSubPart `json:"subparts"`
	// PredictedRows is the sum of the step's sub-partition row counts.
	PredictedRows int64 `json:"predicted_rows"`

	// The fields below are filled by Analyze from the actual run.

	// ActualRows is how many rows the step actually read from storage.
	ActualRows int64 `json:"actual_rows,omitempty"`
	// Answers is the cumulative answer count after the step.
	Answers int `json:"answers,omitempty"`
	// NewAnswers is how many answers the step added.
	NewAnswers int `json:"new_answers,omitempty"`
	// Coverage is |answers after this step| / |final| (Result.Coverage).
	Coverage float64 `json:"coverage,omitempty"`
	// CacheHits / CacheMisses count decoded-cache outcomes of the step's
	// sub-partition loads.
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
	// Incremental reports whether the step ran semi-naively.
	Incremental bool `json:"incremental,omitempty"`
	// Degraded reports unreadable sub-partitions up to this step.
	Degraded bool `json:"degraded,omitempty"`
	// ElapsedMs is the step's wall time (load + evaluate).
	ElapsedMs float64 `json:"elapsed_ms,omitempty"`
	// Joins holds the step's executed joins in execution order.
	Joins []PlanJoin `json:"joins,omitempty"`
}

// PlanSubPart is one sub-partition of a step, with its stored row count.
type PlanSubPart struct {
	Level int    `json:"level"`
	Prop  string `json:"prop"`
	Rows  int    `json:"rows"`
}

// PlanJoin is one executed binary join (from the step's trace).
type PlanJoin struct {
	LeftRows  int     `json:"left_rows"`
	RightRows int     `json:"right_rows"`
	OutRows   int     `json:"out_rows"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// Explain computes the query's plan without running it: candidate
// sub-partitions per pattern, the slice schedule under the processor's
// strategy, predicted row counts from the layout's metadata, and the
// predicted join order.
func (p *Processor) Explain(q *sparql.Query) (*Plan, error) {
	lay, release := p.pin()
	defer release()
	return p.explain(lay, q)
}

func (p *Processor) explain(lay *hpart.Layout, q *sparql.Query) (*Plan, error) {
	if len(q.Patterns)+len(q.Paths) == 0 {
		return nil, fmt.Errorf("ping: query has no patterns")
	}
	plan := &Plan{
		Query:       q.String(),
		Shape:       sparql.Classify(q).String(),
		Strategy:    p.opts.Strategy.String(),
		Epoch:       lay.Epoch(),
		Incremental: !p.opts.DisableIncremental && q.Limit == 0,
	}

	hl := p.querySlices(lay, q)
	hlPaths := p.queryPathSlices(lay, q)

	describe := func(text string, isPath bool, candidates []hpart.SubPartKey) PlanPattern {
		pp := PlanPattern{
			Pattern:    text,
			Path:       isPath,
			Candidates: len(candidates),
			Safe:       len(candidates) > 0,
		}
		levelSeen := make(map[int]bool)
		for _, k := range candidates {
			pp.PredictedRows += int64(lay.SubPartRows[k])
			if !levelSeen[k.Level] {
				levelSeen[k.Level] = true
				pp.Levels = append(pp.Levels, k.Level)
			}
		}
		sort.Ints(pp.Levels)
		return pp
	}
	plan.Safe = true
	varSets := make([][]string, 0, len(q.Patterns)+len(q.Paths))
	cards := make([]int64, 0, len(q.Patterns)+len(q.Paths))
	for i, pat := range q.Patterns {
		pp := describe(pat.String(), false, hl[i])
		plan.Patterns = append(plan.Patterns, pp)
		plan.Safe = plan.Safe && pp.Safe
		varSets = append(varSets, pat.Vars())
		cards = append(cards, pp.PredictedRows)
	}
	for i, pat := range q.Paths {
		pp := describe(pat.String(), true, hlPaths[i])
		plan.Patterns = append(plan.Patterns, pp)
		plan.Safe = plan.Safe && pp.Safe
		varSets = append(varSets, pat.Vars())
		cards = append(cards, pp.PredictedRows)
	}
	if !plan.Safe {
		return plan, nil
	}
	plan.JoinOrder = engine.GreedyJoinOrder(varSets, cards)

	steps, err := p.sliceSchedule(lay, append(append([][]hpart.SubPartKey{}, hl...), hlPaths...))
	if err != nil {
		return nil, err
	}
	dv := lay.DictView()
	for i, st := range steps {
		ps := PlanStep{Step: i + 1, MaxLevel: st.maxLevel}
		for _, k := range st.newKeys {
			rows := lay.SubPartRows[k]
			ps.SubParts = append(ps.SubParts, PlanSubPart{
				Level: k.Level,
				Prop:  dv.TermString(k.Prop),
				Rows:  rows,
			})
			ps.PredictedRows += int64(rows)
		}
		plan.Steps = append(plan.Steps, ps)
	}
	return plan, nil
}

// Analyze explains the query, then actually runs it (PQA, honouring ctx)
// and annotates every plan step with its actual rows, answers, coverage,
// cache outcomes, join cardinalities, and wall time. The run's Result is
// returned alongside the annotated plan so callers can stream or count
// the answers too.
func (p *Processor) Analyze(ctx context.Context, q *sparql.Query) (*Plan, *Result, error) {
	plan, err := p.Explain(q)
	if err != nil {
		return nil, nil, err
	}

	// Capture the run's trace so join cardinalities can be lifted off the
	// engine's "join" spans. Piggyback on a caller trace when one is
	// already attached; otherwise root a private one.
	var span *obs.Span
	if obs.SpanFromContext(ctx) != nil {
		ctx, span = obs.StartSpan(ctx, "analyze")
	} else {
		ctx, span = obs.NewTrace(ctx, "analyze")
	}
	res, err := p.PQACtx(ctx, q)
	span.End()
	if err != nil {
		return nil, nil, err
	}
	plan.annotate(res, span)
	return plan, res, nil
}

// annotate fills a plan's per-step actuals from a completed run and its
// trace. Steps align by index; when the run saw a different schedule
// than the explain pass (an epoch published in between), the extra
// actual steps are appended with no predictions, so the actuals always
// reflect the run that really happened.
func (p *Plan) annotate(res *Result, span *obs.Span) {
	p.Analyzed = true
	p.Epoch = res.Epoch
	p.Exact = res.Exact
	if res.Final != nil {
		p.Answers = res.Final.Card()
	}

	var sliceSpans []*obs.Span
	if pqa := span.Find("pqa"); pqa != nil {
		for _, c := range pqa.Children() {
			if c.Name() == "slice" {
				sliceSpans = append(sliceSpans, c)
			}
		}
	}

	if len(res.Steps) > len(p.Steps) {
		for i := len(p.Steps); i < len(res.Steps); i++ {
			sr := res.Steps[i]
			ps := PlanStep{Step: sr.Step, MaxLevel: sr.MaxLevel}
			for _, k := range sr.NewSubParts {
				ps.SubParts = append(ps.SubParts, PlanSubPart{Level: k.Level})
			}
			p.Steps = append(p.Steps, ps)
		}
	}
	p.Steps = p.Steps[:min(len(p.Steps), len(res.Steps))]
	for i := range p.Steps {
		sr := res.Steps[i]
		ps := &p.Steps[i]
		ps.ActualRows = sr.RowsLoadedStep
		ps.Answers = sr.Answers.Card()
		ps.NewAnswers = sr.NewAnswers
		ps.Coverage = res.Coverage(i)
		ps.CacheHits = sr.CacheHits
		ps.CacheMisses = sr.CacheMisses
		ps.Incremental = sr.Incremental
		ps.Degraded = sr.Degraded
		ps.ElapsedMs = float64(sr.Elapsed.Microseconds()) / 1000
		p.TotalMs = float64(sr.ElapsedCum.Microseconds()) / 1000
		if i < len(sliceSpans) {
			for _, j := range sliceSpans[i].Children() {
				if j.Name() != "join" {
					continue
				}
				ps.Joins = append(ps.Joins, PlanJoin{
					LeftRows:  attrInt(j, "left_rows"),
					RightRows: attrInt(j, "right_rows"),
					OutRows:   attrInt(j, "out_rows"),
					ElapsedMs: float64(j.Duration().Microseconds()) / 1000,
				})
			}
		}
	}
}

// attrInt reads a numeric span attribute, tolerating the int/int64 mix
// the instrumentation records.
func attrInt(s *obs.Span, key string) int {
	switch v := s.Attr(key).(type) {
	case int:
		return v
	case int64:
		return int(v)
	case float64:
		return int(v)
	default:
		return 0
	}
}

// WriteJSON renders the plan as an indented JSON document.
func (p *Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WriteText renders the plan as the human-readable EXPLAIN/ANALYZE
// report printed by pingquery.
func (p *Plan) WriteText(w io.Writer) error {
	var b strings.Builder
	mode := "EXPLAIN"
	if p.Analyzed {
		mode = "ANALYZE"
	}
	fmt.Fprintf(&b, "%s (shape=%s, strategy=%s, epoch=%d)\n", mode, p.Shape, p.Strategy, p.Epoch)
	if p.Fingerprint != "" {
		fmt.Fprintf(&b, "fingerprint: %s\n", p.Fingerprint)
	}
	evalMode := "from-scratch"
	if p.Incremental {
		evalMode = "incremental (semi-naive)"
	}
	fmt.Fprintf(&b, "evaluation: %s\n", evalMode)
	if !p.Safe {
		b.WriteString("UNSAFE: at least one pattern has no candidate sub-partition; the answer is empty\n")
	}
	b.WriteString("patterns:\n")
	for i, pp := range p.Patterns {
		kind := "bgp"
		if pp.Path {
			kind = "path"
		}
		fmt.Fprintf(&b, "  [%d] %-4s %s\n", i, kind, pp.Pattern)
		if pp.Safe {
			fmt.Fprintf(&b, "       candidates=%d levels=%v predicted_rows=%d\n",
				pp.Candidates, pp.Levels, pp.PredictedRows)
		} else {
			b.WriteString("       UNSAFE (no candidate sub-partitions)\n")
		}
	}
	if len(p.JoinOrder) > 1 {
		parts := make([]string, len(p.JoinOrder))
		for i, j := range p.JoinOrder {
			parts[i] = fmt.Sprintf("[%d]", j)
		}
		fmt.Fprintf(&b, "join order: %s\n", strings.Join(parts, " ⋈ "))
	}
	if len(p.Steps) > 0 {
		fmt.Fprintf(&b, "steps: %d\n", len(p.Steps))
	}
	for _, ps := range p.Steps {
		fmt.Fprintf(&b, "  step %d: safe level %d, %d sub-partitions, %d rows predicted\n",
			ps.Step, ps.MaxLevel, len(ps.SubParts), ps.PredictedRows)
		for _, sp := range ps.SubParts {
			fmt.Fprintf(&b, "    L%d %s (%d rows)\n", sp.Level, sp.Prop, sp.Rows)
		}
		if p.Analyzed {
			flags := ""
			if ps.Incremental {
				flags += " incremental"
			}
			if ps.Degraded {
				flags += " DEGRADED"
			}
			fmt.Fprintf(&b, "    actual: rows=%d answers=%d (+%d) coverage=%.3f cache=%d/%d %.3fms%s\n",
				ps.ActualRows, ps.Answers, ps.NewAnswers, ps.Coverage,
				ps.CacheHits, ps.CacheHits+ps.CacheMisses, ps.ElapsedMs, flags)
			for _, j := range ps.Joins {
				fmt.Fprintf(&b, "    join: %d ⋈ %d → %d rows %.3fms\n",
					j.LeftRows, j.RightRows, j.OutRows, j.ElapsedMs)
			}
		}
	}
	if p.Analyzed {
		exact := "exact"
		if !p.Exact {
			exact = "DEGRADED (sound subset)"
		}
		fmt.Fprintf(&b, "total: %d answers (%s) in %.3fms over %d steps\n",
			p.Answers, exact, p.TotalMs, len(p.Steps))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
