package ping

import (
	"testing"

	"ping/internal/engine"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// pathOracle evaluates a (possibly path-carrying) query on the whole
// graph.
func pathOracle(t *testing.T, g *rdf.Graph, q *sparql.Query) *engine.Relation {
	t.Helper()
	rel, _, err := engine.EvaluatePaths(q,
		engine.InputsFromGraph(g, q), engine.PathInputsFromGraph(g, q),
		g.Dict, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rel.Distinct()
}

var pathQueries = []string{
	`SELECT * WHERE { ?x <p0>+ ?y }`,
	`SELECT * WHERE { <s1> <p0>+ ?y }`,
	`SELECT * WHERE { ?x <p0>* ?y }`,
	`SELECT * WHERE { ?x <p0>/<p1> ?y }`,
	`SELECT * WHERE { ?x (<p0>|<p1>)+ ?y }`,
	`SELECT * WHERE { ?x <p0>+ ?y . ?y <p1> ?z }`,
	`SELECT DISTINCT ?x WHERE { ?x (<p0>/<p1>)+ ?y }`,
}

// TestPQAPathFormalProperties extends the Lemma 4.3/4.4 and Theorem 4.5
// checks to the navigational extension: progressive path answers must
// grow monotonically, stay sound, and converge to whole-graph evaluation.
func TestPQAPathFormalProperties(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := nestedGraph(seed, 50, 5)
		lay := mustPartition(t, g)
		proc := NewProcessor(lay, Options{})
		for _, qs := range pathQueries {
			q := sparql.MustParse(qs)
			oracle := answerSet(pathOracle(t, g, q))
			res, err := proc.PQA(q)
			if err != nil {
				t.Fatalf("seed %d %q: %v", seed, qs, err)
			}
			prev := map[string]bool{}
			for i, step := range res.Steps {
				cur := answerSet(step.Answers)
				if !subset(prev, cur) {
					t.Fatalf("seed %d %q: step %d lost answers", seed, qs, i+1)
				}
				if !subset(cur, oracle) {
					t.Fatalf("seed %d %q: step %d produced a false positive", seed, qs, i+1)
				}
				prev = cur
			}
			got := answerSet(res.Final)
			if len(got) != len(oracle) || !subset(got, oracle) {
				t.Fatalf("seed %d %q: final %d answers, oracle %d", seed, qs, len(got), len(oracle))
			}

			// EQA must agree too.
			rel, _, err := proc.EQA(q)
			if err != nil {
				t.Fatal(err)
			}
			eqa := answerSet(rel)
			if len(eqa) != len(oracle) || !subset(eqa, oracle) {
				t.Fatalf("seed %d %q: EQA %d answers, oracle %d", seed, qs, len(eqa), len(oracle))
			}
		}
	}
}

func TestPathSlicesUseVPOnly(t *testing.T) {
	g := fig1Graph()
	proc := NewProcessor(mustPartition(t, g), Options{})
	// interacts exists only on L3; its closure pattern must load only
	// L3[interacts] even with a constant endpoint (constants cannot prune
	// closure levels, but VP still restricts the property).
	q := sparql.MustParse(`SELECT * WHERE { <P38952> <interacts>+ ?y }`)
	hl := proc.QueryPathSlices(q)
	if len(hl) != 1 || len(hl[0]) != 1 || hl[0][0].Level != 3 {
		t.Fatalf("path slices = %v", hl)
	}
	res, err := proc.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Card() != 1 { // P38952 interacts P43426
		t.Errorf("answers = %d, want 1", res.Final.Card())
	}
}

func TestPathUnsafeQuery(t *testing.T) {
	g := fig1Graph()
	proc := NewProcessor(mustPartition(t, g), Options{})
	q := sparql.MustParse(`SELECT * WHERE { ?x <noSuchProp>+ ?y }`)
	if proc.Safe(q) {
		t.Error("closure over absent property reported safe")
	}
	res, err := proc.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 0 || res.Final.Card() != 0 {
		t.Errorf("unsafe path query returned %d steps / %d answers", len(res.Steps), res.Final.Card())
	}
}

func TestPathChainAcrossLevels(t *testing.T) {
	// A chain that crosses hierarchy levels: each hop lives on a
	// different level, so the closure only completes on the last slice.
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	// n1 (CS {p}) -> n2 (CS {p,q}) -> n3 (CS {p,q,r}): levels 1,2,3.
	g.Add(iri("n1"), iri("p"), iri("n2"))
	g.Add(iri("n2"), iri("p"), iri("n3"))
	g.Add(iri("n2"), iri("q"), iri("x"))
	g.Add(iri("n3"), iri("p"), iri("n4"))
	g.Add(iri("n3"), iri("q"), iri("x"))
	g.Add(iri("n3"), iri("r"), iri("x"))
	g.Dedup()
	lay := mustPartition(t, g)
	if lay.NumLevels != 3 {
		t.Fatalf("levels = %d", lay.NumLevels)
	}
	proc := NewProcessor(lay, Options{})
	q := sparql.MustParse(`SELECT * WHERE { <n1> <p>+ ?y }`)
	res, err := proc.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	// Full reachability: n2, n3, n4.
	if res.Final.Card() != 3 {
		t.Fatalf("final = %d answers, want 3", res.Final.Card())
	}
	// The first slice sees only L1[p] = {n1->n2}: 1 answer; reachability
	// deepens as levels load — the paper's "multiple iterations across
	// the impacted levels".
	if len(res.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(res.Steps))
	}
	if got := res.Steps[0].Answers.Card(); got != 1 {
		t.Errorf("slice 1 answers = %d, want 1", got)
	}
	if got := res.Steps[1].Answers.Card(); got != 2 {
		t.Errorf("slice 2 answers = %d, want 2", got)
	}
}

func TestPathWithBloomPruning(t *testing.T) {
	g := nestedGraph(55, 40, 4)
	lay := bloomLayout(t, g)
	proc := NewProcessor(lay, Options{UseBloomPruning: true})
	q := sparql.MustParse(`SELECT * WHERE { ?x <p0>+ ?y . ?x <p1> ?z }`)
	oracle := answerSet(pathOracle(t, g, q))
	rel, _, err := proc.EQA(q)
	if err != nil {
		t.Fatal(err)
	}
	got := answerSet(rel)
	if len(got) != len(oracle) || !subset(got, oracle) {
		t.Fatalf("bloom + path: %d answers, oracle %d", len(got), len(oracle))
	}
}
