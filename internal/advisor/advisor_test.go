package advisor

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ping/internal/dfs"
	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/ping"
	"ping/internal/rdf"
	"ping/internal/sparql"
	"ping/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureGraph builds a deterministic four-level hierarchy:
// CS {p,q} ⊂ {p,q,f1} ⊂ {p,q,f1,f2} ⊂ {p,q,f1,f2,f3}. Every level has p
// and q rows (so chain candidates span all levels and no pre-cover step
// merging applies), but the only p-edge that reaches a q-subject is
// l4s0 → l1s0: the hot chain query answers at the deepest step, levels
// 1–3 are cold for it, and the p⋈q reductions prune the dead-end
// sub-partitions on both sides.
func fixtureGraph() *rdf.Graph {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	levelProps := [][]string{
		{"p", "q"},
		{"p", "q", "f1"},
		{"p", "q", "f1", "f2"},
		{"p", "q", "f1", "f2", "f3"},
	}
	counts := []int{5, 4, 3, 2}
	for l, props := range levelProps {
		for i := 0; i < counts[l]; i++ {
			s := fmt.Sprintf("l%ds%d", l+1, i)
			for _, p := range props {
				// Objects are dead ends (never subjects) by default.
				g.Add(iri(s), iri(p), iri(fmt.Sprintf("%s-%s", s, p)))
			}
		}
	}
	// The one live chain edge: a deepest-level subject points at a
	// level-1 subject, so ?x <p> ?y . ?y <q> ?z answers only once the
	// schedule reaches level 4.
	g.Add(iri("l4s0"), iri("p"), iri("l1s0"))
	g.Dedup()
	return g
}

// fixtureStats is the recorded workload: the join query dominates, the
// point query rides along, plus one unparseable row that Analyze must
// skip (a foreign stats file may carry junk).
func fixtureStats() []workload.FingerprintStats {
	return []workload.FingerprintStats{
		{Fingerprint: "fp-chain", Canonical: `SELECT * WHERE { ?x <p> ?y . ?y <q> ?z }`,
			Shape: "chain", Count: 10, TotalMs: 100},
		{Fingerprint: "fp-point", Canonical: `SELECT * WHERE { ?x <f3> ?y }`,
			Shape: "point", Count: 5, TotalMs: 50},
		{Fingerprint: "fp-junk", Canonical: `NOT SPARQL AT ALL`, Count: 99, TotalMs: 1},
	}
}

func fixtureLayout(t *testing.T) (*rdf.Graph, *hpart.Layout) {
	t.Helper()
	g := fixtureGraph()
	lay, err := hpart.Partition(g, hpart.Options{FS: dfs.New(dfs.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	if lay.NumLevels != 4 {
		t.Fatalf("fixture levels = %d, want 4", lay.NumLevels)
	}
	return g, lay
}

// TestAnalyzeGolden locks the full recommendation document: hot table,
// cold levels, merge plan, join selection and the p95 estimate. Run with
// -update to regenerate testdata/advice.golden.json after an intended
// format or algorithm change.
func TestAnalyzeGolden(t *testing.T) {
	_, lay := fixtureLayout(t)
	adv, err := Analyze(lay, fixtureStats(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := adv.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "advice.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("advice drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// The text report must render without error too.
	if err := adv.WriteText(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeRecommendation(t *testing.T) {
	_, lay := fixtureLayout(t)
	adv, err := Analyze(lay, fixtureStats(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Hot) != 2 {
		t.Fatalf("hot = %d, want 2 (junk row skipped)", len(adv.Hot))
	}
	if got, want := fmt.Sprint(adv.ColdLevels), "[1 2 3]"; got != want {
		t.Errorf("cold levels %s, want %s", got, want)
	}
	if got, want := fmt.Sprint(adv.Merges), "[{2 1} {3 1}]"; got != want {
		t.Errorf("merges %s, want %s", got, want)
	}
	if len(adv.Joins) == 0 {
		t.Fatal("no join reduction selected; the a⋈d join should prune shallow a-sub-partitions")
	}
	pruned := 0
	for _, j := range adv.Joins {
		pruned += j.PrunedSubParts
	}
	if pruned < 4 {
		t.Errorf("joins pruned %d sub-partitions total, want >= 4 (the dead-end sides of p⋈q)", pruned)
	}
	if adv.P95StepsToFirstAfter >= adv.P95StepsToFirstBefore {
		t.Errorf("estimated p95 did not improve: before %.0f, after %.0f",
			adv.P95StepsToFirstBefore, adv.P95StepsToFirstAfter)
	}
}

// stepsToFirst runs PQA and returns the 1-based step of the first answer
// (0 when none) plus the exact final answer set.
func stepsToFirst(t *testing.T, proc *ping.Processor, q *sparql.Query) (int, *engine.Relation) {
	t.Helper()
	res, err := proc.PQA(q)
	if err != nil {
		t.Fatal(err)
	}
	first := 0
	for _, step := range res.Steps {
		if step.NewAnswers > 0 {
			first = step.Step
			break
		}
	}
	return first, res.Final
}

func answerSet(rel *engine.Relation) map[string]bool {
	set := make(map[string]bool, rel.Card())
	for _, row := range rel.Rows {
		key := ""
		for _, v := range row {
			key += fmt.Sprintf("%d|", v)
		}
		set[key] = true
	}
	return set
}

// TestApplyExactAndFaster is the acceptance property: applying the
// advice preserves exact answers for every query under every slice
// strategy, incremental on and off, join reductions on and off — and the
// measured (not estimated) steps-to-first of the hot queries drops.
func TestApplyExactAndFaster(t *testing.T) {
	g, lay := fixtureLayout(t)
	stats := fixtureStats()
	adv, err := Analyze(lay, stats, Config{})
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{
		stats[0].Canonical,
		stats[1].Canonical,
		`SELECT * WHERE { ?x <p> ?y }`,
		`SELECT * WHERE { ?x <f1> ?y . ?x <f2> ?z }`,
		`SELECT * WHERE { ?x <p> ?y . ?x <q> ?z . ?x <f1> ?w }`,
		`SELECT * WHERE { ?x <p> <l1s0> . ?x <f3> ?y }`,
		`SELECT * WHERE { ?x <q> ?y . ?y <q> ?z }`,
	}
	before := make(map[string]int)
	for _, qs := range queries {
		first, _ := stepsToFirst(t, ping.NewProcessor(lay, ping.Options{}), sparql.MustParse(qs))
		before[qs] = first
	}

	m, err := hpart.NewMaintainer(lay)
	if err != nil {
		t.Fatal(err)
	}
	if err := adv.Apply(m); err != nil {
		t.Fatal(err)
	}
	if len(lay.JoinReductions()) == 0 {
		t.Fatal("apply installed no join reductions")
	}

	for _, qs := range queries {
		q := sparql.MustParse(qs)
		oracle := answerSet(engine.Naive(g, q).Distinct())
		for _, strat := range []ping.SliceStrategy{ping.LevelCumulative, ping.ProductOrder, ping.LargestFirst, ping.SmallestFirst} {
			for _, noInc := range []bool{false, true} {
				for _, noJoin := range []bool{false, true} {
					proc := ping.NewProcessor(lay, ping.Options{
						Strategy:             strat,
						DisableIncremental:   noInc,
						DisableJoinReduction: noJoin,
					})
					_, final := stepsToFirst(t, proc, q)
					got := answerSet(final)
					if len(got) != len(oracle) {
						t.Fatalf("%q strat %v inc=%v join=%v: %d answers, oracle %d",
							qs, strat, !noInc, !noJoin, len(got), len(oracle))
					}
					for k := range oracle {
						if !got[k] {
							t.Fatalf("%q strat %v inc=%v join=%v: missing answer %s",
								qs, strat, !noInc, !noJoin, k)
						}
					}
				}
			}
		}
	}

	// Measured steps-to-first for the hot queries must improve (and never
	// regress for the others).
	proc := ping.NewProcessor(lay, ping.Options{})
	improved := false
	for _, qs := range queries {
		first, _ := stepsToFirst(t, proc, sparql.MustParse(qs))
		if first > before[qs] {
			t.Errorf("%q: steps-to-first regressed %d -> %d", qs, before[qs], first)
		}
		if first < before[qs] {
			improved = true
		}
	}
	if !improved {
		t.Error("no query's measured steps-to-first improved")
	}
	hotFirst, _ := stepsToFirst(t, proc, sparql.MustParse(stats[0].Canonical))
	if hotFirst >= before[stats[0].Canonical] {
		t.Errorf("hot join query steps-to-first %d, want < %d", hotFirst, before[stats[0].Canonical])
	}
}

// TestAnalyzeEmptyWorkload: no observations, no recommendation — and in
// particular no "merge the whole store into one level" degenerate plan.
func TestAnalyzeEmptyWorkload(t *testing.T) {
	_, lay := fixtureLayout(t)
	adv, err := Analyze(lay, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !adv.Empty() {
		t.Fatalf("empty workload produced advice: %d merges, %d joins", len(adv.Merges), len(adv.Joins))
	}
}
