// Package advisor closes the workload loop: it reads the workload
// profiler's per-fingerprint aggregates, replays the hot queries against
// the pinned layout to find which hierarchy levels actually produce their
// answers, and recommends two complementary layout changes:
//
//   - Level merges (Hierarchical Characteristic Set Merging): maximal runs
//     of adjacent occupied CS levels that are cold — they contribute no
//     answer to any hot fingerprint — collapse into the run's shallowest
//     level. Hot queries whose slice schedules used to step through every
//     cold level one slice at a time now cross the whole run in one step,
//     shortening steps-to-first-answer without changing any answer.
//
//   - Join reductions (WORQ-style): for the hot join patterns — two
//     concrete-predicate patterns sharing a variable — a Bloom filter over
//     the one side's join values proves some of the other side's
//     sub-partitions irrelevant to the join; the planner then drops them
//     from the candidate lists before loading.
//
// Recommendations are computed read-only (Analyze) and applied as one
// copy-on-write epoch through the hpart maintainer (Advice.Apply), so
// running queries and checkpointed cursors pinned to older epochs are
// never disturbed.
package advisor

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/ping"
	"ping/internal/rdf"
	"ping/internal/sparql"
	"ping/internal/workload"
)

// Config bounds an analysis.
type Config struct {
	// TopK is how many hot fingerprints to optimize for (default 5).
	TopK int
	// MinMergeRun is the minimum length of a cold level run worth merging
	// (default 2; a single cold level already costs only one step).
	MinMergeRun int
	// MaxReductions caps the number of join reductions built (default 8;
	// each one scans two properties' sub-partitions at advise time).
	MaxReductions int
	// Strategy is the slice order the hot queries are replayed with; it
	// should match the strategy the serving processor uses (default
	// LevelCumulative).
	Strategy ping.SliceStrategy
}

func (c Config) withDefaults() Config {
	if c.TopK <= 0 {
		c.TopK = 5
	}
	if c.MinMergeRun <= 0 {
		c.MinMergeRun = 2
	}
	if c.MaxReductions <= 0 {
		c.MaxReductions = 8
	}
	return c
}

// HotQuery is one optimized fingerprint and what the replay observed.
type HotQuery struct {
	Fingerprint string `json:"fingerprint"`
	Canonical   string `json:"canonical"`
	Shape       string `json:"shape"`
	Count       int64  `json:"count"`
	// StepsToFirst is the observed 1-based step of the first answer on
	// the current layout (0 when the query has no answers).
	StepsToFirst int `json:"steps_to_first"`
	// EstStepsToFirst estimates the same number after the advice is
	// applied (candidate pruning plus level remapping).
	EstStepsToFirst int `json:"est_steps_to_first"`
	Answers         int `json:"answers"`
}

// JoinAdvice is one selected join reduction.
type JoinAdvice struct {
	// Join renders the pattern with decoded property names.
	Join string `json:"join"`
	// Key is the reduction's planner key.
	Key hpart.JoinKey `json:"key"`
	// Weight is the total run count of the hot queries containing the
	// join.
	Weight int64 `json:"weight"`
	// PrunedSubParts is how many sub-partitions the reduction proved
	// irrelevant on the analyzed layout.
	PrunedSubParts int `json:"pruned_subparts"`
}

// Advice is one complete recommendation.
type Advice struct {
	// Epoch and Signature identify the analyzed snapshot.
	Epoch     uint64     `json:"epoch"`
	Signature string     `json:"signature"`
	Hot       []HotQuery `json:"hot"`
	// ColdLevels lists the occupied levels no hot query draws answers
	// from.
	ColdLevels []int `json:"cold_levels,omitempty"`
	// Merges is the level-merge plan (empty when nothing qualifies).
	Merges []hpart.LevelMerge `json:"merges,omitempty"`
	// Joins lists the selected join reductions, heaviest first.
	Joins []JoinAdvice `json:"joins,omitempty"`
	// P95StepsToFirstBefore / After are the count-weighted p95 of
	// steps-to-first-answer over the hot queries that have answers:
	// observed on the current layout, and estimated after applying.
	P95StepsToFirstBefore float64 `json:"p95_steps_to_first_before"`
	P95StepsToFirstAfter  float64 `json:"p95_steps_to_first_after"`
}

// Empty reports whether the advice recommends no change.
func (a *Advice) Empty() bool { return len(a.Merges) == 0 && len(a.Joins) == 0 }

// hotReplay is the per-query observation backing the estimates.
type hotReplay struct {
	query      *sparql.Query
	count      int64
	candidates [][]hpart.SubPartKey // per-pattern candidates on the layout
	firstLevel int                  // deepest level in the first answering step
	stepsFirst int                  // observed 1-based first-answer step
}

// Analyze replays the hot fingerprints of a workload snapshot against the
// layout and computes a recommendation. It only reads the layout (and its
// files); nothing is modified.
func Analyze(lay *hpart.Layout, stats []workload.FingerprintStats, cfg Config) (*Advice, error) {
	cfg = cfg.withDefaults()

	// Hot set: the snapshot order (total latency desc, count desc,
	// fingerprint asc), re-sorted here so callers may pass stats from any
	// source (live profiler, NDJSON file, replayed events) in any order.
	sorted := append([]workload.FingerprintStats(nil), stats...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].TotalMs != sorted[j].TotalMs {
			return sorted[i].TotalMs > sorted[j].TotalMs
		}
		if sorted[i].Count != sorted[j].Count {
			return sorted[i].Count > sorted[j].Count
		}
		return sorted[i].Fingerprint < sorted[j].Fingerprint
	})
	if len(sorted) > cfg.TopK {
		sorted = sorted[:cfg.TopK]
	}

	adv := &Advice{
		Epoch:     lay.Epoch(),
		Signature: fmt.Sprintf("%016x", lay.Signature()),
	}

	// Replay each hot query with an isolated processor: fresh metrics, no
	// shared cache installation, the serving strategy.
	proc := ping.NewProcessor(lay, ping.Options{
		Strategy:            cfg.Strategy,
		UseBloomPruning:     true,
		DisableSubPartCache: true,
		Metrics:             obs.NewRegistry(),
	})
	answering := make(map[int]bool) // level -> produced answers for a hot query
	var replays []*hotReplay
	for _, st := range sorted {
		q, err := sparql.Parse(st.Canonical)
		if err != nil {
			// Canonical forms are re-parseable by construction; a stats
			// file from a foreign source may still carry junk — skip it.
			continue
		}
		res, err := proc.PQA(q)
		if err != nil {
			return nil, fmt.Errorf("advisor: replay %s: %w", st.Fingerprint, err)
		}
		rep := &hotReplay{query: q, count: st.Count, candidates: proc.QuerySlices(q)}
		for _, step := range res.Steps {
			if step.NewAnswers > 0 {
				for _, k := range step.NewSubParts {
					answering[k.Level] = true
				}
				if rep.stepsFirst == 0 {
					rep.stepsFirst = step.Step
					rep.firstLevel = step.MaxLevel
				}
			}
		}
		replays = append(replays, rep)
		adv.Hot = append(adv.Hot, HotQuery{
			Fingerprint:  st.Fingerprint,
			Canonical:    st.Canonical,
			Shape:        st.Shape,
			Count:        st.Count,
			StepsToFirst: rep.stepsFirst,
			Answers:      res.Final.Card(),
		})
	}

	// Cold levels: occupied, but answering for no hot query. Without any
	// answering level there is nothing to optimize toward — merging
	// everything into one level would just rewrite the store — so the
	// merge plan stays empty.
	var occupied []int
	seen := make(map[int]bool)
	for _, k := range lay.SubPartitions() {
		if !seen[k.Level] {
			seen[k.Level] = true
			occupied = append(occupied, k.Level)
		}
	}
	sort.Ints(occupied)
	if len(answering) > 0 {
		for _, l := range occupied {
			if !answering[l] {
				adv.ColdLevels = append(adv.ColdLevels, l)
			}
		}
		// Merge maximal runs (>= MinMergeRun) of cold levels adjacent in
		// occupied-level order into the run's shallowest level.
		var run []int
		flush := func() {
			if len(run) >= cfg.MinMergeRun {
				for _, l := range run[1:] {
					adv.Merges = append(adv.Merges, hpart.LevelMerge{From: l, Into: run[0]})
				}
			}
			run = nil
		}
		for _, l := range occupied {
			if !answering[l] {
				run = append(run, l)
			} else {
				flush()
			}
		}
		flush()
	}

	// Join advice: weight every join pattern of the hot queries by run
	// count, then build the heaviest MaxReductions reductions for real
	// and keep the ones that prune anything.
	weights := make(map[hpart.JoinKey]int64)
	dv := lay.DictView()
	for _, rep := range replays {
		for _, key := range joinKeysOf(rep.query, dv) {
			weights[key] += rep.count
		}
	}
	wkeys := make([]hpart.JoinKey, 0, len(weights))
	for k := range weights {
		wkeys = append(wkeys, k)
	}
	sort.Slice(wkeys, func(i, j int) bool {
		if weights[wkeys[i]] != weights[wkeys[j]] {
			return weights[wkeys[i]] > weights[wkeys[j]]
		}
		return joinKeyLess(wkeys[i], wkeys[j])
	})
	if len(wkeys) > cfg.MaxReductions {
		wkeys = wkeys[:cfg.MaxReductions]
	}
	pruned := make(map[hpart.JoinKey]map[hpart.SubPartKey]bool)
	installed := lay.JoinReductions()
	for _, key := range wkeys {
		if installed[key] != nil {
			// Already precomputed on this layout (and still valid —
			// rewrites invalidate reductions). Re-advising it would make
			// an all-applied layout look perpetually improvable, so only
			// count it toward the estimate, not toward the plan.
			pruned[key] = installed[key].Pruned
			continue
		}
		red, err := lay.BuildJoinReduction(key)
		if err != nil {
			return nil, fmt.Errorf("advisor: reduce %v: %w", key, err)
		}
		if len(red.Pruned) == 0 {
			continue
		}
		pruned[key] = red.Pruned
		adv.Joins = append(adv.Joins, JoinAdvice{
			Join:           describeJoin(key, dv),
			Key:            key,
			Weight:         weights[key],
			PrunedSubParts: len(red.Pruned),
		})
	}

	// Estimate the post-advice steps-to-first per hot query: prune each
	// pattern's candidates with the selected reductions, remap the merge
	// sources, and count the distinct schedule levels up to the first
	// answering level. Answering levels are never merge sources, so the
	// first answer still appears when its (unmoved) level is reached.
	remap := make(map[int]int, len(adv.Merges))
	for _, mg := range adv.Merges {
		remap[mg.From] = mg.Into
	}
	resolve := func(l int) int {
		for {
			t, ok := remap[l]
			if !ok {
				return l
			}
			l = t
		}
	}
	for i, rep := range replays {
		if rep.stepsFirst == 0 {
			continue
		}
		est := estimateStepsToFirst(rep, pruned, resolve, dv)
		adv.Hot[i].EstStepsToFirst = est
	}
	adv.P95StepsToFirstBefore = weightedP95(adv.Hot, func(h HotQuery) int { return h.StepsToFirst })
	adv.P95StepsToFirstAfter = weightedP95(adv.Hot, func(h HotQuery) int { return h.EstStepsToFirst })
	return adv, nil
}

// joinKeysOf enumerates the join patterns of a query: every ordered pair
// of concrete-predicate patterns sharing a variable in a subject/object
// position, keyed for pruning the first pattern's side.
func joinKeysOf(q *sparql.Query, dv *rdf.DictView) []hpart.JoinKey {
	props := make([]rdf.ID, len(q.Patterns))
	for i, pat := range q.Patterns {
		props[i] = rdf.NoID
		if pat.P.IsConcrete() {
			props[i] = dv.Lookup(pat.P)
		}
	}
	roles := func(pat sparql.TriplePattern, v string) []byte {
		var out []byte
		if pat.S.IsVar() && pat.S.Value == v {
			out = append(out, hpart.JoinSubject)
		}
		if pat.O.IsVar() && pat.O.Value == v {
			out = append(out, hpart.JoinObject)
		}
		return out
	}
	var keys []hpart.JoinKey
	seen := make(map[hpart.JoinKey]bool)
	for i, patA := range q.Patterns {
		if props[i] == rdf.NoID {
			continue
		}
		for j, patB := range q.Patterns {
			if j == i || props[j] == rdf.NoID {
				continue
			}
			for _, v := range patA.Vars() {
				for _, ra := range roles(patA, v) {
					for _, rb := range roles(patB, v) {
						key := hpart.JoinKey{PropA: props[i], PropB: props[j], RoleA: ra, RoleB: rb}
						if !seen[key] {
							seen[key] = true
							keys = append(keys, key)
						}
					}
				}
			}
		}
	}
	return keys
}

func joinKeyLess(a, b hpart.JoinKey) bool {
	if a.PropA != b.PropA {
		return a.PropA < b.PropA
	}
	if a.PropB != b.PropB {
		return a.PropB < b.PropB
	}
	if a.RoleA != b.RoleA {
		return a.RoleA < b.RoleA
	}
	return a.RoleB < b.RoleB
}

func describeJoin(key hpart.JoinKey, dv *rdf.DictView) string {
	return fmt.Sprintf("%s.%c = %s.%c", dv.TermString(key.PropA), key.RoleA, dv.TermString(key.PropB), key.RoleB)
}

// estimateStepsToFirst predicts the 1-based first-answer step after the
// advice: candidates surviving the reductions, levels remapped by the
// merges, distinct levels counted in ascending order up to the first
// answering level. An estimate only — it mirrors the level-cumulative
// schedule and ignores cover-step merging, so the measured improvement
// (bench) is authoritative.
func estimateStepsToFirst(rep *hotReplay, pruned map[hpart.JoinKey]map[hpart.SubPartKey]bool, resolve func(int) int, dv *rdf.DictView) int {
	keys := joinKeysOf(rep.query, dv)
	levels := make(map[int]bool)
	// cover is the deepest "first candidate level" across patterns: the
	// scheduler collapses every step before all patterns are covered
	// into one, so levels at or above cover never add a step of their
	// own.
	cover := 0
	for _, cands := range rep.candidates {
		patMin := 0
		for _, sk := range cands {
			drop := false
			for _, jk := range keys {
				if p := pruned[jk]; p != nil && p[sk] && jk.PropA == sk.Prop {
					drop = true
					break
				}
			}
			if !drop {
				l := resolve(sk.Level)
				levels[l] = true
				if patMin == 0 || l < patMin {
					patMin = l
				}
			}
		}
		if patMin > cover {
			cover = patMin
		}
	}
	first := resolve(rep.firstLevel)
	if first < cover || !levels[first] {
		// The answering level vanished from the estimate (should not
		// happen — reductions never prune answering sub-partitions);
		// fall back to the observed value.
		return rep.stepsFirst
	}
	// One step reaches the cover level; each distinct remaining
	// candidate level up to the answering one adds a step.
	step := 1
	for l := range levels {
		if l > cover && l <= first {
			step++
		}
	}
	// Merges and prunes only ever shrink the schedule, so the estimate
	// can never honestly exceed what was observed on the current layout.
	if rep.stepsFirst > 0 && step > rep.stepsFirst {
		step = rep.stepsFirst
	}
	return step
}

// weightedP95 is the count-weighted 95th percentile of a per-query step
// count, over the hot queries that produced answers.
func weightedP95(hot []HotQuery, val func(HotQuery) int) float64 {
	type wv struct {
		v int
		w int64
	}
	var items []wv
	var total int64
	for _, h := range hot {
		v := val(h)
		if v <= 0 {
			continue
		}
		w := h.Count
		if w <= 0 {
			w = 1
		}
		items = append(items, wv{v, w})
		total += w
	}
	if total == 0 {
		return 0
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	threshold := float64(total) * 0.95
	var cum int64
	for _, it := range items {
		cum += it.w
		if float64(cum) >= threshold {
			return float64(it.v)
		}
	}
	return float64(items[len(items)-1].v)
}

// Apply installs the advice through the maintainer as one batch: the
// level merges, then join reductions rebuilt on the post-merge layout
// (the analysis-time reductions are only estimates; sub-partitions moved
// by the merges need fresh filters). In snapshot mode the batch publishes
// one new epoch and persists the reductions for reload.
func (a *Advice) Apply(m *hpart.Maintainer) error {
	if a.Empty() {
		return nil
	}
	keys := make([]hpart.JoinKey, len(a.Joins))
	for i, j := range a.Joins {
		keys[i] = j.Key
	}
	return m.Restructure(a.Merges, func(lay *hpart.Layout) (map[hpart.JoinKey]*hpart.JoinReduction, error) {
		joins := make(map[hpart.JoinKey]*hpart.JoinReduction, len(keys))
		for _, k := range keys {
			red, err := lay.BuildJoinReduction(k)
			if err != nil {
				return nil, err
			}
			if len(red.Pruned) > 0 {
				joins[k] = red
			}
		}
		if len(joins) == 0 {
			return nil, nil
		}
		return joins, nil
	})
}

// WriteJSON writes the advice as indented JSON (the golden-file format).
func (a *Advice) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteText writes the human-readable dry-run report.
func (a *Advice) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "advisor report\tepoch %d\tsignature %s\n", a.Epoch, a.Signature)
	fmt.Fprintf(tw, "\nhot fingerprints (%d):\n", len(a.Hot))
	fmt.Fprintf(tw, "FP\tSHAPE\tCOUNT\tSTEPS→1st\tEST AFTER\tANSWERS\tQUERY\n")
	for _, h := range a.Hot {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
			h.Fingerprint, h.Shape, h.Count, h.StepsToFirst, h.EstStepsToFirst, h.Answers, oneLine(h.Canonical))
	}
	if len(a.ColdLevels) > 0 {
		fmt.Fprintf(tw, "\ncold levels: %v\n", a.ColdLevels)
	}
	if len(a.Merges) > 0 {
		fmt.Fprintf(tw, "\nlevel merges (%d):\n", len(a.Merges))
		for _, mg := range a.Merges {
			fmt.Fprintf(tw, "  L%d -> L%d\n", mg.From, mg.Into)
		}
	}
	if len(a.Joins) > 0 {
		fmt.Fprintf(tw, "\njoin reductions (%d):\n", len(a.Joins))
		fmt.Fprintf(tw, "JOIN\tWEIGHT\tPRUNED SUBPARTS\n")
		for _, j := range a.Joins {
			fmt.Fprintf(tw, "%s\t%d\t%d\n", j.Join, j.Weight, j.PrunedSubParts)
		}
	}
	fmt.Fprintf(tw, "\np95 steps-to-first-answer: %.0f before, %.0f after (estimated)\n",
		a.P95StepsToFirstBefore, a.P95StepsToFirstAfter)
	if a.Empty() {
		fmt.Fprintf(tw, "no changes recommended\n")
	}
	return tw.Flush()
}

func oneLine(s string) string {
	const max = 80
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '\n' || r == '\t' {
			r = ' '
		}
		out = append(out, r)
	}
	if len(out) > max {
		out = append(out[:max-1], '…')
	}
	return string(out)
}
