package dfs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewOnDisk(dir, Config{BlockSize: 64, DataNodes: 3, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{
		"levels/L01/p1.pcol": bytes.Repeat([]byte{1}, 200),
		"levels/L02/p1.pcol": bytes.Repeat([]byte{2}, 30),
		"indexes/vp.pcol":    bytes.Repeat([]byte{3}, 100),
	}
	for p, data := range files {
		if err := fs.WriteFile(p, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.SaveManifest(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenOnDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for p, want := range files {
		got, err := reopened.ReadFile(p)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", p, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: content mismatch after reopen", p)
		}
	}
	// Usage accounting must be rebuilt.
	u := reopened.Usage()
	if u.Files != len(files) {
		t.Errorf("Files = %d, want %d", u.Files, len(files))
	}
	if u.PhysicalBytes != 2*(200+30+100) {
		t.Errorf("PhysicalBytes = %d, want %d", u.PhysicalBytes, 2*330)
	}
	// New writes must not collide with old block IDs.
	if err := reopened.WriteFile("new.bin", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	for p, want := range files {
		got, _ := reopened.ReadFile(p)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: corrupted by post-reopen write", p)
		}
	}
}

func TestSaveManifestRequiresDisk(t *testing.T) {
	fs := New(Config{})
	if err := fs.SaveManifest(); err == nil {
		t.Error("SaveManifest succeeded on in-memory FS")
	}
}

func TestOpenOnDiskErrors(t *testing.T) {
	if _, err := OpenOnDisk(t.TempDir()); err == nil {
		t.Error("OpenOnDisk succeeded without a manifest")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenOnDisk(dir); err == nil {
		t.Error("OpenOnDisk accepted a corrupt manifest")
	}
	// Manifest referencing an out-of-range node.
	bad := `{"config":{"BlockSize":64,"Replication":1,"DataNodes":2},"next_block":1,` +
		`"files":[{"path":"f","size":4,"blocks":[{"id":0,"size":4,"nodes":[9]}]}]}`
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, manifestName), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenOnDisk(dir2); err == nil {
		t.Error("OpenOnDisk accepted a manifest with invalid node placement")
	}
}
