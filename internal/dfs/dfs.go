// Package dfs implements a miniature distributed file system standing in
// for HDFS in the paper's stack. Files are split into fixed-size blocks,
// each block is replicated across a configurable number of simulated data
// nodes, and a namenode tracks the block map. Two block-store backends are
// provided: in-memory (default, used by tests and benchmarks) and on-disk
// (used by the CLI tools so partitions persist between runs).
//
// The partitioner writes level sub-partitions and indexes here; the query
// processor reads them back, and the harness uses the byte accounting for
// the storage-footprint (reduction factor) experiments.
package dfs

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Config controls block placement.
type Config struct {
	// BlockSize is the maximum block payload size in bytes (default 1 MiB).
	BlockSize int64
	// Replication is the number of copies per block (default 1, clamped to
	// the number of data nodes).
	Replication int
	// DataNodes is the number of simulated data nodes (default 4, matching
	// the paper's 4-machine cluster).
	DataNodes int
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 1 << 20
	}
	if c.DataNodes <= 0 {
		c.DataNodes = 4
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if c.Replication > c.DataNodes {
		c.Replication = c.DataNodes
	}
	return c
}

// FileInfo describes a stored file.
type FileInfo struct {
	Path   string
	Size   int64
	Blocks int
}

// Usage summarizes cluster storage state.
type Usage struct {
	Files         int
	LogicalBytes  int64   // sum of file sizes
	PhysicalBytes int64   // logical × replication actually placed
	NodeBytes     []int64 // bytes per data node
}

// blockStore abstracts where block payloads live.
type blockStore interface {
	put(node int, id uint64, data []byte) error
	get(node int, id uint64) ([]byte, error)
	del(node int, id uint64) error
}

type fileMeta struct {
	size   int64
	blocks []blockMeta
}

type blockMeta struct {
	id    uint64
	size  int64
	nodes []int // replica placements
}

// FS is the namenode plus its block store. All methods are safe for
// concurrent use.
type FS struct {
	cfg   Config
	store blockStore

	mu        sync.RWMutex
	files     map[string]fileMeta
	nextBlock uint64
	nodeBytes []int64
	bytesRead int64
}

// New returns an in-memory file system.
func New(cfg Config) *FS {
	cfg = cfg.withDefaults()
	return &FS{
		cfg:       cfg,
		store:     newMemStore(cfg.DataNodes),
		files:     make(map[string]fileMeta),
		nodeBytes: make([]int64, cfg.DataNodes),
	}
}

// NewOnDisk returns a file system whose blocks are persisted under dir,
// one subdirectory per simulated data node.
func NewOnDisk(dir string, cfg Config) (*FS, error) {
	cfg = cfg.withDefaults()
	ds, err := newDiskStore(dir, cfg.DataNodes)
	if err != nil {
		return nil, err
	}
	return &FS{
		cfg:       cfg,
		store:     ds,
		files:     make(map[string]fileMeta),
		nodeBytes: make([]int64, cfg.DataNodes),
	}, nil
}

func cleanPath(p string) string {
	return strings.TrimPrefix(filepath.ToSlash(filepath.Clean("/"+p)), "/")
}

// WriteFile stores data under path, replacing any existing file.
func (f *FS) WriteFile(path string, data []byte) error {
	w, err := f.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// ReadFile returns the whole content of path. It bypasses the streaming
// reader: blocks are assembled into one pre-sized buffer and the byte
// accounting takes a single lock, which matters for workloads that open
// many small sub-partition files.
func (f *FS) ReadFile(path string) ([]byte, error) {
	path = cleanPath(path)
	f.mu.RLock()
	meta, ok := f.files[path]
	f.mu.RUnlock()
	if !ok {
		return nil, &os.PathError{Op: "open", Path: path, Err: os.ErrNotExist}
	}
	buf := make([]byte, 0, meta.size)
	for _, b := range meta.blocks {
		data, err := f.store.get(b.nodes[0], b.id)
		if err != nil {
			return nil, fmt.Errorf("dfs: block %d: %w", b.id, err)
		}
		buf = append(buf, data...)
	}
	f.mu.Lock()
	f.bytesRead += int64(len(buf))
	f.mu.Unlock()
	return buf, nil
}

// Create opens path for writing. The file becomes visible atomically when
// the returned writer is closed; a previous file at the same path is
// replaced at that point.
func (f *FS) Create(path string) (io.WriteCloser, error) {
	path = cleanPath(path)
	if path == "" {
		return nil, fmt.Errorf("dfs: empty path")
	}
	return &fileWriter{fs: f, path: path}, nil
}

type fileWriter struct {
	fs     *FS
	path   string
	buf    bytes.Buffer
	meta   fileMeta
	closed bool
}

func (w *fileWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("dfs: write after close on %q", w.path)
	}
	n, _ := w.buf.Write(p)
	for int64(w.buf.Len()) >= w.fs.cfg.BlockSize {
		if err := w.flushBlock(w.fs.cfg.BlockSize); err != nil {
			return n, err
		}
	}
	return n, nil
}

func (w *fileWriter) flushBlock(size int64) error {
	data := make([]byte, size)
	if _, err := io.ReadFull(&w.buf, data); err != nil {
		return err
	}
	bm, err := w.fs.placeBlock(data)
	if err != nil {
		return err
	}
	w.meta.blocks = append(w.meta.blocks, bm)
	w.meta.size += size
	return nil
}

func (w *fileWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.buf.Len() > 0 {
		if err := w.flushBlock(int64(w.buf.Len())); err != nil {
			return err
		}
	}
	w.fs.commit(w.path, w.meta)
	return nil
}

// placeBlock writes one block to Replication nodes chosen round-robin.
func (f *FS) placeBlock(data []byte) (blockMeta, error) {
	f.mu.Lock()
	id := f.nextBlock
	f.nextBlock++
	nodes := make([]int, f.cfg.Replication)
	for i := range nodes {
		nodes[i] = int((id + uint64(i)) % uint64(f.cfg.DataNodes))
	}
	for _, n := range nodes {
		f.nodeBytes[n] += int64(len(data))
	}
	f.mu.Unlock()
	for _, n := range nodes {
		if err := f.store.put(n, id, data); err != nil {
			return blockMeta{}, err
		}
	}
	return blockMeta{id: id, size: int64(len(data)), nodes: nodes}, nil
}

func (f *FS) commit(path string, meta fileMeta) {
	f.mu.Lock()
	old, existed := f.files[path]
	f.files[path] = meta
	f.mu.Unlock()
	if existed {
		f.releaseBlocks(old)
	}
}

func (f *FS) releaseBlocks(meta fileMeta) {
	for _, b := range meta.blocks {
		for _, n := range b.nodes {
			_ = f.store.del(n, b.id)
			f.mu.Lock()
			f.nodeBytes[n] -= b.size
			f.mu.Unlock()
		}
	}
}

// Open returns a reader over the file at path.
func (f *FS) Open(path string) (io.ReadCloser, error) {
	path = cleanPath(path)
	f.mu.RLock()
	meta, ok := f.files[path]
	f.mu.RUnlock()
	if !ok {
		return nil, &os.PathError{Op: "open", Path: path, Err: os.ErrNotExist}
	}
	return &fileReader{fs: f, meta: meta}, nil
}

type fileReader struct {
	fs   *FS
	meta fileMeta
	idx  int
	cur  *bytes.Reader
}

func (r *fileReader) Read(p []byte) (int, error) {
	for {
		if r.cur != nil && r.cur.Len() > 0 {
			n, _ := r.cur.Read(p)
			r.fs.mu.Lock()
			r.fs.bytesRead += int64(n)
			r.fs.mu.Unlock()
			return n, nil
		}
		if r.idx >= len(r.meta.blocks) {
			return 0, io.EOF
		}
		b := r.meta.blocks[r.idx]
		r.idx++
		// Read from the first replica; replicas are identical by
		// construction, this just models HDFS short-circuit reads.
		data, err := r.fs.store.get(b.nodes[0], b.id)
		if err != nil {
			return 0, fmt.Errorf("dfs: block %d: %w", b.id, err)
		}
		r.cur = bytes.NewReader(data)
	}
}

func (r *fileReader) Close() error { return nil }

// Stat returns metadata for path.
func (f *FS) Stat(path string) (FileInfo, error) {
	path = cleanPath(path)
	f.mu.RLock()
	defer f.mu.RUnlock()
	meta, ok := f.files[path]
	if !ok {
		return FileInfo{}, &os.PathError{Op: "stat", Path: path, Err: os.ErrNotExist}
	}
	return FileInfo{Path: path, Size: meta.size, Blocks: len(meta.blocks)}, nil
}

// Exists reports whether a file exists at path.
func (f *FS) Exists(path string) bool {
	_, err := f.Stat(path)
	return err == nil
}

// List returns the files whose path starts with prefix, sorted by path.
func (f *FS) List(prefix string) []FileInfo {
	prefix = cleanPath(prefix)
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []FileInfo
	for p, meta := range f.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, FileInfo{Path: p, Size: meta.size, Blocks: len(meta.blocks)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Remove deletes the file at path and releases its blocks.
func (f *FS) Remove(path string) error {
	path = cleanPath(path)
	f.mu.Lock()
	meta, ok := f.files[path]
	if ok {
		delete(f.files, path)
	}
	f.mu.Unlock()
	if !ok {
		return &os.PathError{Op: "remove", Path: path, Err: os.ErrNotExist}
	}
	f.releaseBlocks(meta)
	return nil
}

// Usage returns cluster storage statistics.
func (f *FS) Usage() Usage {
	f.mu.RLock()
	defer f.mu.RUnlock()
	u := Usage{Files: len(f.files), NodeBytes: append([]int64(nil), f.nodeBytes...)}
	for _, meta := range f.files {
		u.LogicalBytes += meta.size
	}
	for _, nb := range u.NodeBytes {
		u.PhysicalBytes += nb
	}
	return u
}

// BytesRead returns the cumulative bytes served to readers, an I/O metric
// surfaced by the benchmark harness.
func (f *FS) BytesRead() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.bytesRead
}

// memStore keeps blocks in per-node maps.
type memStore struct {
	mu    sync.RWMutex
	nodes []map[uint64][]byte
}

func newMemStore(n int) *memStore {
	s := &memStore{nodes: make([]map[uint64][]byte, n)}
	for i := range s.nodes {
		s.nodes[i] = make(map[uint64][]byte)
	}
	return s
}

func (s *memStore) put(node int, id uint64, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.nodes[node][id] = cp
	s.mu.Unlock()
	return nil
}

func (s *memStore) get(node int, id uint64) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.nodes[node][id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("missing block %d on node %d", id, node)
	}
	return data, nil
}

func (s *memStore) del(node int, id uint64) error {
	s.mu.Lock()
	delete(s.nodes[node], id)
	s.mu.Unlock()
	return nil
}

// diskStore persists blocks as files under dir/node<N>/<id>.blk.
type diskStore struct {
	dir string
}

func newDiskStore(dir string, n int) (*diskStore, error) {
	for i := 0; i < n; i++ {
		if err := os.MkdirAll(filepath.Join(dir, fmt.Sprintf("node%d", i)), 0o755); err != nil {
			return nil, fmt.Errorf("dfs: %w", err)
		}
	}
	return &diskStore{dir: dir}, nil
}

func (s *diskStore) path(node int, id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("node%d", node), fmt.Sprintf("%016x.blk", id))
}

func (s *diskStore) put(node int, id uint64, data []byte) error {
	return os.WriteFile(s.path(node, id), data, 0o644)
}

func (s *diskStore) get(node int, id uint64) ([]byte, error) {
	return os.ReadFile(s.path(node, id))
}

func (s *diskStore) del(node int, id uint64) error {
	err := os.Remove(s.path(node, id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
