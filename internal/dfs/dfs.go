// Package dfs implements a miniature distributed file system standing in
// for HDFS in the paper's stack. Files are split into fixed-size blocks,
// each block is replicated across a configurable number of simulated data
// nodes, and a namenode tracks the block map. Two block-store backends are
// provided: in-memory (default, used by tests and benchmarks) and on-disk
// (used by the CLI tools so partitions persist between runs).
//
// Like HDFS, the read path is fault tolerant: every block carries a CRC32
// checksum verified on read, and a failed or corrupt read fails over to
// the remaining replicas with capped exponential backoff between rounds.
// Corrupt replicas can optionally be re-written from a healthy copy
// (read-repair). Per-node health counters are surfaced through Usage so
// callers can observe which nodes are misbehaving. The faults package
// interposes on the BlockStore interface to inject deterministic failures
// for chaos testing.
//
// The partitioner writes level sub-partitions and indexes here; the query
// processor reads them back, and the harness uses the byte accounting for
// the storage-footprint (reduction factor) experiments.
package dfs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ping/internal/obs"
	"ping/internal/obs/prof"
)

// Typed read-path errors. Failures returned by block reads wrap one of
// these so callers can distinguish corruption from unavailability with
// errors.Is.
var (
	// ErrBlockCorrupt marks a replica whose payload failed checksum
	// verification.
	ErrBlockCorrupt = errors.New("dfs: block corrupt")
	// ErrNodeDown marks a replica read rejected because the data node is
	// unavailable (used by fault injectors; a real backend surfaces its
	// own I/O errors, treated the same way by the failover loop).
	ErrNodeDown = errors.New("dfs: node down")
	// ErrNoHealthyReplica is returned when every replica of a block
	// failed after all retries.
	ErrNoHealthyReplica = errors.New("dfs: no healthy replica")
)

// Config controls block placement and the read retry policy.
type Config struct {
	// BlockSize is the maximum block payload size in bytes (default 1 MiB).
	BlockSize int64
	// Replication is the number of copies per block (default 1, clamped to
	// the number of data nodes).
	Replication int
	// DataNodes is the number of simulated data nodes (default 4, matching
	// the paper's 4-machine cluster).
	DataNodes int

	// MaxRetries is the number of extra failover rounds after the first
	// pass over the replicas fails (default 2; negative disables retries).
	MaxRetries int
	// RetryBase is the backoff before the first retry round; it doubles
	// every round up to RetryMax, with deterministic jitter (default
	// 500µs, capped at 50ms). Zero RetryBase keeps the defaults; retries
	// without sleeping require a negative RetryBase.
	RetryBase time.Duration
	// RetryMax caps the exponential backoff (default 50ms).
	RetryMax time.Duration
	// ReadRepair re-writes replicas that failed checksum verification
	// from a healthy copy encountered during the same read.
	ReadRepair bool
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 1 << 20
	}
	if c.DataNodes <= 0 {
		c.DataNodes = 4
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if c.Replication > c.DataNodes {
		c.Replication = c.DataNodes
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBase == 0 {
		c.RetryBase = 500 * time.Microsecond
	}
	if c.RetryBase < 0 {
		c.RetryBase = 0
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 50 * time.Millisecond
	}
	return c
}

// FileInfo describes a stored file.
type FileInfo struct {
	Path   string
	Size   int64
	Blocks int
}

// Usage summarizes cluster storage state and read-path health. The
// health counters (NodeReads, NodeReadErrors, BlocksRepaired,
// FailedBlockReads) are snapshot together under one lock, and each read
// attempt records its outcome in the same critical section, so a
// snapshot is consistent across nodes: it never shows an attempt whose
// success/failure outcome is missing, and NodeReadErrors[i] <=
// NodeReads[i] always holds.
type Usage struct {
	Files         int
	LogicalBytes  int64   // sum of file sizes
	PhysicalBytes int64   // logical × replication actually placed
	NodeBytes     []int64 // bytes per data node

	// NodeReads counts block read attempts per data node (including
	// failed ones); NodeReadErrors counts the failed or corrupt ones.
	NodeReads      []int64
	NodeReadErrors []int64
	// BlocksRepaired counts corrupt replicas re-written from a healthy
	// copy (read-repair).
	BlocksRepaired int64
	// FailedBlockReads counts block reads that exhausted every replica
	// and every retry.
	FailedBlockReads int64
}

// BlockStore abstracts where block payloads live. Implementations must be
// safe for concurrent use. The faults package wraps a BlockStore to
// inject deterministic failures.
type BlockStore interface {
	Put(node int, id uint64, data []byte) error
	Get(node int, id uint64) ([]byte, error)
	Del(node int, id uint64) error
}

type fileMeta struct {
	size   int64
	blocks []blockMeta
}

type blockMeta struct {
	id    uint64
	size  int64
	nodes []int // replica placements
	// crc is the CRC32 (IEEE) of the payload; hasCRC distinguishes a
	// genuine checksum from a pre-checksum manifest entry (legacy stores
	// reopened from disk are read unverified).
	crc    uint32
	hasCRC bool
}

// FS is the namenode plus its block store. All methods are safe for
// concurrent use.
type FS struct {
	cfg   Config
	store BlockStore

	mu        sync.RWMutex
	files     map[string]fileMeta
	nextBlock uint64
	nodeBytes []int64

	bytesRead atomic.Int64

	// healthMu guards the read-path health counters as one unit so Usage
	// snapshots are consistent across nodes (see Usage).
	healthMu    sync.Mutex
	nodeReads   []int64
	nodeErrs    []int64
	repaired    int64
	failedReads int64

	// metrics mirrors the health counters into named obs series; swapped
	// atomically by SetMetrics.
	metrics atomic.Pointer[fsMetrics]
}

// fsMetrics holds the resolved obs handles for one registry, so hot-path
// recording is a single atomic add per event.
type fsMetrics struct {
	nodeReads   []*obs.Counter
	nodeErrs    []*obs.Counter
	retryRounds *obs.Counter
	failovers   *obs.Counter
	failedReads *obs.Counter
	repaired    *obs.Counter
	bytesRead   *obs.Counter
}

func newFSMetrics(reg *obs.Registry, nodes int) *fsMetrics {
	if reg == nil {
		return nil
	}
	reg.Describe("dfs_node_reads_total", "block read attempts per data node")
	reg.Describe("dfs_node_read_errors_total", "failed or corrupt block read attempts per data node")
	reg.Describe("dfs_retry_rounds_total", "extra failover rounds entered after a full replica pass failed")
	reg.Describe("dfs_failovers_total", "block reads that succeeded only after at least one replica attempt failed")
	reg.Describe("dfs_failed_block_reads_total", "block reads that exhausted every replica and retry")
	reg.Describe("dfs_blocks_repaired_total", "corrupt replicas re-written from a healthy copy")
	reg.Describe("dfs_bytes_read_total", "payload bytes served to readers")
	m := &fsMetrics{
		nodeReads:   make([]*obs.Counter, nodes),
		nodeErrs:    make([]*obs.Counter, nodes),
		retryRounds: reg.Counter("dfs_retry_rounds_total", nil),
		failovers:   reg.Counter("dfs_failovers_total", nil),
		failedReads: reg.Counter("dfs_failed_block_reads_total", nil),
		repaired:    reg.Counter("dfs_blocks_repaired_total", nil),
		bytesRead:   reg.Counter("dfs_bytes_read_total", nil),
	}
	for i := 0; i < nodes; i++ {
		labels := obs.Labels{"node": strconv.Itoa(i)}
		m.nodeReads[i] = reg.Counter("dfs_node_reads_total", labels)
		m.nodeErrs[i] = reg.Counter("dfs_node_read_errors_total", labels)
	}
	return m
}

// SetMetrics redirects the FS's named metrics to reg (nil disables
// them). New file systems default to obs.Default.
func (f *FS) SetMetrics(reg *obs.Registry) {
	f.metrics.Store(newFSMetrics(reg, f.cfg.DataNodes))
}

// New returns an in-memory file system.
func New(cfg Config) *FS {
	cfg = cfg.withDefaults()
	return newFS(cfg, newMemStore(cfg.DataNodes))
}

// NewOnDisk returns a file system whose blocks are persisted under dir,
// one subdirectory per simulated data node.
func NewOnDisk(dir string, cfg Config) (*FS, error) {
	cfg = cfg.withDefaults()
	ds, err := newDiskStore(dir, cfg.DataNodes)
	if err != nil {
		return nil, err
	}
	return newFS(cfg, ds), nil
}

func newFS(cfg Config, store BlockStore) *FS {
	f := &FS{
		cfg:       cfg,
		store:     store,
		files:     make(map[string]fileMeta),
		nodeBytes: make([]int64, cfg.DataNodes),
		nodeReads: make([]int64, cfg.DataNodes),
		nodeErrs:  make([]int64, cfg.DataNodes),
	}
	f.metrics.Store(newFSMetrics(obs.Default, cfg.DataNodes))
	return f
}

// WrapStore replaces the block store with wrap(current store). It exists
// so fault injectors can interpose on block I/O; call it before the FS is
// shared between goroutines.
func (f *FS) WrapStore(wrap func(BlockStore) BlockStore) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.store = wrap(f.store)
}

// SetRetryPolicy overrides the read retry policy of an existing FS (the
// CLI uses it after reopening a store whose manifest carries the build-
// time configuration). maxRetries < 0 disables retries; base < 0 retries
// without sleeping.
func (f *FS) SetRetryPolicy(maxRetries int, base, max time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg.MaxRetries = maxRetries
	if f.cfg.MaxRetries < 0 {
		f.cfg.MaxRetries = 0
	}
	f.cfg.RetryBase = base
	if f.cfg.RetryBase < 0 {
		f.cfg.RetryBase = 0
	}
	if max > 0 {
		f.cfg.RetryMax = max
	}
}

func cleanPath(p string) string {
	return strings.TrimPrefix(filepath.ToSlash(filepath.Clean("/"+p)), "/")
}

// WriteFile stores data under path, replacing any existing file.
func (f *FS) WriteFile(path string, data []byte) error {
	w, err := f.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// ReadFile returns the whole content of path. It bypasses the streaming
// reader: blocks are assembled into one pre-sized buffer, which matters
// for workloads that open many small sub-partition files.
func (f *FS) ReadFile(path string) ([]byte, error) {
	return f.ReadFileCtx(context.Background(), path)
}

// ReadFileCtx is ReadFile honouring context cancellation: a cancelled or
// expired ctx aborts the read (including retry backoff sleeps) with
// ctx.Err(), so a stuck store cannot hang the caller past its deadline.
func (f *FS) ReadFileCtx(ctx context.Context, path string) ([]byte, error) {
	path = cleanPath(path)
	_, sp := obs.StartSpan(ctx, "dfs.read")
	defer sp.End()
	sp.SetAttr("path", path)
	f.mu.RLock()
	meta, ok := f.files[path]
	f.mu.RUnlock()
	if !ok {
		sp.SetAttr("error", "not found")
		return nil, &os.PathError{Op: "open", Path: path, Err: os.ErrNotExist}
	}
	sp.SetAttr("blocks", len(meta.blocks))
	buf := make([]byte, 0, meta.size)
	for _, b := range meta.blocks {
		data, err := f.readBlock(ctx, b)
		if err != nil {
			sp.SetAttr("error", err.Error())
			return nil, err
		}
		buf = append(buf, data...)
	}
	f.countBytesRead(int64(len(buf)))
	prof.LedgerFrom(ctx).AddStorageBytesRead(int64(len(buf)))
	sp.SetAttr("bytes", len(buf))
	return buf, nil
}

// countBytesRead records served payload bytes in both the local
// accounting and the named metric.
func (f *FS) countBytesRead(n int64) {
	f.bytesRead.Add(n)
	if m := f.metrics.Load(); m != nil {
		m.bytesRead.Add(n)
	}
}

// recordAttempt records one replica read attempt and its outcome in a
// single critical section, keeping Usage snapshots consistent.
func (f *FS) recordAttempt(node int, failed bool) {
	f.healthMu.Lock()
	f.nodeReads[node]++
	if failed {
		f.nodeErrs[node]++
	}
	f.healthMu.Unlock()
	if m := f.metrics.Load(); m != nil {
		m.nodeReads[node].Inc()
		if failed {
			m.nodeErrs[node].Inc()
		}
	}
}

// readBlock reads one block, verifying its checksum and failing over
// across replicas. Replicas are tried round-robin starting from a
// different offset each retry round; between rounds the backoff doubles
// from RetryBase up to RetryMax with deterministic jitter keyed by the
// block id, so concurrent readers of different blocks do not retry in
// lockstep.
func (f *FS) readBlock(ctx context.Context, b blockMeta) ([]byte, error) {
	f.mu.RLock()
	cfg := f.cfg
	store := f.store
	f.mu.RUnlock()

	var lastErr error
	var corrupt []int // replica indexes that served corrupt data
	failedAttempts := 0
	for round := 0; round <= cfg.MaxRetries; round++ {
		if round > 0 {
			if err := sleepBackoff(ctx, cfg, b.id, round); err != nil {
				return nil, err
			}
			if m := f.metrics.Load(); m != nil {
				m.retryRounds.Inc()
			}
		}
		for i := range b.nodes {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			node := b.nodes[(i+round)%len(b.nodes)]
			data, err := store.Get(node, b.id)
			if err != nil {
				f.recordAttempt(node, true)
				failedAttempts++
				lastErr = err
				continue
			}
			if b.hasCRC && crc32.ChecksumIEEE(data) != b.crc {
				f.recordAttempt(node, true)
				failedAttempts++
				lastErr = fmt.Errorf("node %d: %w", node, ErrBlockCorrupt)
				corrupt = append(corrupt, node)
				continue
			}
			f.recordAttempt(node, false)
			if failedAttempts > 0 {
				// Success only after failover to another replica (or a
				// later retry round).
				if m := f.metrics.Load(); m != nil {
					m.failovers.Inc()
				}
			}
			if cfg.ReadRepair {
				f.repairReplicas(store, b, corrupt, data)
			}
			return data, nil
		}
	}
	f.healthMu.Lock()
	f.failedReads++
	f.healthMu.Unlock()
	if m := f.metrics.Load(); m != nil {
		m.failedReads.Inc()
	}
	if lastErr == nil {
		return nil, fmt.Errorf("dfs: block %d: %w", b.id, ErrNoHealthyReplica)
	}
	return nil, fmt.Errorf("dfs: block %d: %w (last error: %w)", b.id, ErrNoHealthyReplica, lastErr)
}

// repairReplicas re-writes replicas that served corrupt data with a
// verified copy. Repair failures are ignored: the node may be down, and
// the next read will fail over again.
func (f *FS) repairReplicas(store BlockStore, b blockMeta, corrupt []int, good []byte) {
	for _, node := range corrupt {
		if err := store.Put(node, b.id, good); err == nil {
			f.healthMu.Lock()
			f.repaired++
			f.healthMu.Unlock()
			if m := f.metrics.Load(); m != nil {
				m.repaired.Inc()
			}
		}
	}
}

// sleepBackoff sleeps for the round's backoff duration or until ctx is
// done. The jitter is deterministic — a hash of the block id and round —
// so retry schedules are reproducible under fault injection.
func sleepBackoff(ctx context.Context, cfg Config, id uint64, round int) error {
	d := cfg.RetryBase << (round - 1)
	if d > cfg.RetryMax {
		d = cfg.RetryMax
	}
	if d <= 0 {
		return ctx.Err()
	}
	// Jitter in [d/2, d]: full backoff minus a deterministic slice.
	half := d / 2
	d = half + time.Duration(mix64(id*0x9e3779b97f4a7c15+uint64(round))%uint64(half+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Create opens path for writing. The file becomes visible atomically when
// the returned writer is closed; a previous file at the same path is
// replaced at that point.
func (f *FS) Create(path string) (io.WriteCloser, error) {
	path = cleanPath(path)
	if path == "" {
		return nil, fmt.Errorf("dfs: empty path")
	}
	return &fileWriter{fs: f, path: path}, nil
}

type fileWriter struct {
	fs     *FS
	path   string
	buf    bytes.Buffer
	meta   fileMeta
	closed bool
}

func (w *fileWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("dfs: write after close on %q", w.path)
	}
	n, _ := w.buf.Write(p)
	for int64(w.buf.Len()) >= w.fs.cfg.BlockSize {
		if err := w.flushBlock(w.fs.cfg.BlockSize); err != nil {
			return n, err
		}
	}
	return n, nil
}

func (w *fileWriter) flushBlock(size int64) error {
	data := make([]byte, size)
	if _, err := io.ReadFull(&w.buf, data); err != nil {
		return err
	}
	bm, err := w.fs.placeBlock(data)
	if err != nil {
		return err
	}
	w.meta.blocks = append(w.meta.blocks, bm)
	w.meta.size += size
	return nil
}

func (w *fileWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.buf.Len() > 0 {
		if err := w.flushBlock(int64(w.buf.Len())); err != nil {
			return err
		}
	}
	w.fs.commit(w.path, w.meta)
	return nil
}

// placeBlock writes one block to Replication nodes chosen round-robin.
func (f *FS) placeBlock(data []byte) (blockMeta, error) {
	f.mu.Lock()
	id := f.nextBlock
	f.nextBlock++
	nodes := make([]int, f.cfg.Replication)
	for i := range nodes {
		nodes[i] = int((id + uint64(i)) % uint64(f.cfg.DataNodes))
	}
	for _, n := range nodes {
		f.nodeBytes[n] += int64(len(data))
	}
	store := f.store
	f.mu.Unlock()
	for _, n := range nodes {
		if err := store.Put(n, id, data); err != nil {
			return blockMeta{}, err
		}
	}
	return blockMeta{
		id:     id,
		size:   int64(len(data)),
		nodes:  nodes,
		crc:    crc32.ChecksumIEEE(data),
		hasCRC: true,
	}, nil
}

func (f *FS) commit(path string, meta fileMeta) {
	f.mu.Lock()
	old, existed := f.files[path]
	f.files[path] = meta
	f.mu.Unlock()
	if existed {
		f.releaseBlocks(old)
	}
}

func (f *FS) releaseBlocks(meta fileMeta) {
	for _, b := range meta.blocks {
		for _, n := range b.nodes {
			_ = f.store.Del(n, b.id)
			f.mu.Lock()
			f.nodeBytes[n] -= b.size
			f.mu.Unlock()
		}
	}
}

// Open returns a reader over the file at path. The reader fails over
// across replicas like ReadFile; it reads with a background context.
func (f *FS) Open(path string) (io.ReadCloser, error) {
	path = cleanPath(path)
	f.mu.RLock()
	meta, ok := f.files[path]
	f.mu.RUnlock()
	if !ok {
		return nil, &os.PathError{Op: "open", Path: path, Err: os.ErrNotExist}
	}
	return &fileReader{fs: f, meta: meta}, nil
}

type fileReader struct {
	fs   *FS
	meta fileMeta
	idx  int
	cur  *bytes.Reader
}

func (r *fileReader) Read(p []byte) (int, error) {
	for {
		if r.cur != nil && r.cur.Len() > 0 {
			n, _ := r.cur.Read(p)
			r.fs.countBytesRead(int64(n))
			return n, nil
		}
		if r.idx >= len(r.meta.blocks) {
			return 0, io.EOF
		}
		b := r.meta.blocks[r.idx]
		r.idx++
		data, err := r.fs.readBlock(context.Background(), b)
		if err != nil {
			return 0, err
		}
		r.cur = bytes.NewReader(data)
	}
}

func (r *fileReader) Close() error { return nil }

// Stat returns metadata for path.
func (f *FS) Stat(path string) (FileInfo, error) {
	path = cleanPath(path)
	f.mu.RLock()
	defer f.mu.RUnlock()
	meta, ok := f.files[path]
	if !ok {
		return FileInfo{}, &os.PathError{Op: "stat", Path: path, Err: os.ErrNotExist}
	}
	return FileInfo{Path: path, Size: meta.size, Blocks: len(meta.blocks)}, nil
}

// Exists reports whether a file exists at path.
func (f *FS) Exists(path string) bool {
	_, err := f.Stat(path)
	return err == nil
}

// List returns the files whose path starts with prefix, sorted by path.
func (f *FS) List(prefix string) []FileInfo {
	prefix = cleanPath(prefix)
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []FileInfo
	for p, meta := range f.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, FileInfo{Path: p, Size: meta.size, Blocks: len(meta.blocks)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Remove deletes the file at path and releases its blocks.
func (f *FS) Remove(path string) error {
	path = cleanPath(path)
	f.mu.Lock()
	meta, ok := f.files[path]
	if ok {
		delete(f.files, path)
	}
	f.mu.Unlock()
	if !ok {
		return &os.PathError{Op: "remove", Path: path, Err: os.ErrNotExist}
	}
	f.releaseBlocks(meta)
	return nil
}

// Usage returns cluster storage statistics and read-path health
// counters. The health counters are copied in one critical section of
// the lock that also guards their updates, so the snapshot is consistent
// across nodes (see the Usage type documentation).
func (f *FS) Usage() Usage {
	f.mu.RLock()
	u := Usage{Files: len(f.files), NodeBytes: append([]int64(nil), f.nodeBytes...)}
	for _, meta := range f.files {
		u.LogicalBytes += meta.size
	}
	f.mu.RUnlock()
	for _, nb := range u.NodeBytes {
		u.PhysicalBytes += nb
	}
	f.healthMu.Lock()
	u.NodeReads = append([]int64(nil), f.nodeReads...)
	u.NodeReadErrors = append([]int64(nil), f.nodeErrs...)
	u.BlocksRepaired = f.repaired
	u.FailedBlockReads = f.failedReads
	f.healthMu.Unlock()
	return u
}

// BytesRead returns the cumulative bytes served to readers, an I/O metric
// surfaced by the benchmark harness.
func (f *FS) BytesRead() int64 {
	return f.bytesRead.Load()
}

// memStore keeps blocks in per-node maps.
type memStore struct {
	mu    sync.RWMutex
	nodes []map[uint64][]byte
}

func newMemStore(n int) *memStore {
	s := &memStore{nodes: make([]map[uint64][]byte, n)}
	for i := range s.nodes {
		s.nodes[i] = make(map[uint64][]byte)
	}
	return s
}

func (s *memStore) Put(node int, id uint64, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.nodes[node][id] = cp
	s.mu.Unlock()
	return nil
}

func (s *memStore) Get(node int, id uint64) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.nodes[node][id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("missing block %d on node %d", id, node)
	}
	return data, nil
}

func (s *memStore) Del(node int, id uint64) error {
	s.mu.Lock()
	delete(s.nodes[node], id)
	s.mu.Unlock()
	return nil
}

// diskStore persists blocks as files under dir/node<N>/<id>.blk.
type diskStore struct {
	dir string
}

func newDiskStore(dir string, n int) (*diskStore, error) {
	for i := 0; i < n; i++ {
		if err := os.MkdirAll(filepath.Join(dir, fmt.Sprintf("node%d", i)), 0o755); err != nil {
			return nil, fmt.Errorf("dfs: %w", err)
		}
	}
	return &diskStore{dir: dir}, nil
}

// BlockPath returns where a replica of block id on node lives on disk.
// Exposed so corruption tests and offline tooling can reach block files.
func (s *diskStore) BlockPath(node int, id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("node%d", node), fmt.Sprintf("%016x.blk", id))
}

func (s *diskStore) Put(node int, id uint64, data []byte) error {
	return os.WriteFile(s.BlockPath(node, id), data, 0o644)
}

func (s *diskStore) Get(node int, id uint64) ([]byte, error) {
	return os.ReadFile(s.BlockPath(node, id))
}

func (s *diskStore) Del(node int, id uint64) error {
	err := os.Remove(s.BlockPath(node, id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// BlockLocations returns, for every block of path, the on-disk file of
// each replica. It only applies to disk-backed stores and exists for
// corruption tests and offline tooling.
func (f *FS) BlockLocations(path string) ([][]string, error) {
	f.mu.RLock()
	ds, ok := f.store.(*diskStore)
	meta, found := f.files[cleanPath(path)]
	f.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dfs: BlockLocations requires an on-disk store")
	}
	if !found {
		return nil, &os.PathError{Op: "stat", Path: path, Err: os.ErrNotExist}
	}
	out := make([][]string, len(meta.blocks))
	for i, b := range meta.blocks {
		for _, n := range b.nodes {
			out[i] = append(out[i], ds.BlockPath(n, b.id))
		}
	}
	return out, nil
}
