package dfs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"
)

// flakyStore is a test double that makes chosen nodes unavailable or
// corrupt without touching the wrapped store's data.
type flakyStore struct {
	inner   BlockStore
	down    map[int]bool
	corrupt map[int]bool
}

func (s *flakyStore) Put(node int, id uint64, data []byte) error {
	if s.down[node] {
		return fmt.Errorf("flaky: %w", ErrNodeDown)
	}
	return s.inner.Put(node, id, data)
}

func (s *flakyStore) Get(node int, id uint64) ([]byte, error) {
	if s.down[node] {
		return nil, fmt.Errorf("flaky: %w", ErrNodeDown)
	}
	data, err := s.inner.Get(node, id)
	if err != nil {
		return nil, err
	}
	if s.corrupt[node] {
		cp := append([]byte(nil), data...)
		if len(cp) > 0 {
			cp[len(cp)/2] ^= 0xff
		}
		return cp, nil
	}
	return data, nil
}

func (s *flakyStore) Del(node int, id uint64) error {
	return s.inner.Del(node, id)
}

// fastRetry keeps tests quick: retries without sleeping.
var fastRetry = Config{MaxRetries: 1, RetryBase: -1}

func wrapFlaky(fs *FS) *flakyStore {
	fl := &flakyStore{down: map[int]bool{}, corrupt: map[int]bool{}}
	fs.WrapStore(func(inner BlockStore) BlockStore {
		fl.inner = inner
		return fl
	})
	return fl
}

func TestFailoverOnNodeDown(t *testing.T) {
	cfg := fastRetry
	cfg.BlockSize = 64
	cfg.DataNodes = 3
	cfg.Replication = 2
	fs := New(cfg)
	want := make([]byte, 1000)
	rand.New(rand.NewSource(1)).Read(want)
	if err := fs.WriteFile("f.bin", want); err != nil {
		t.Fatal(err)
	}

	fl := wrapFlaky(fs)
	fl.down[0] = true
	got, err := fs.ReadFile("f.bin")
	if err != nil {
		t.Fatalf("read with node 0 down: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("content mismatch after failover")
	}
	u := fs.Usage()
	if u.NodeReadErrors[0] == 0 {
		t.Error("expected read errors recorded against node 0")
	}
	if u.FailedBlockReads != 0 {
		t.Errorf("FailedBlockReads = %d, want 0", u.FailedBlockReads)
	}
}

func TestChecksumCatchesCorruptReplica(t *testing.T) {
	cfg := fastRetry
	cfg.BlockSize = 128
	cfg.DataNodes = 2
	cfg.Replication = 2
	fs := New(cfg)
	want := make([]byte, 700)
	rand.New(rand.NewSource(2)).Read(want)
	if err := fs.WriteFile("c.bin", want); err != nil {
		t.Fatal(err)
	}

	fl := wrapFlaky(fs)
	fl.corrupt[0] = true
	got, err := fs.ReadFile("c.bin")
	if err != nil {
		t.Fatalf("read with node 0 corrupt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("checksum failed to reject corrupt replica")
	}
	if u := fs.Usage(); u.NodeReadErrors[0] == 0 {
		t.Error("expected corrupt reads recorded against node 0")
	}
}

func TestNoHealthyReplica(t *testing.T) {
	cfg := fastRetry
	cfg.DataNodes = 2
	cfg.Replication = 1
	fs := New(cfg)
	if err := fs.WriteFile("x.bin", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	fl := wrapFlaky(fs)
	fl.down[0] = true
	fl.down[1] = true
	_, err := fs.ReadFile("x.bin")
	if !errors.Is(err, ErrNoHealthyReplica) {
		t.Fatalf("err = %v, want ErrNoHealthyReplica", err)
	}
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want wrapped ErrNodeDown", err)
	}
	if u := fs.Usage(); u.FailedBlockReads == 0 {
		t.Error("expected a failed block read recorded")
	}
}

func TestCorruptionErrorSurfacesWithoutReplica(t *testing.T) {
	cfg := fastRetry
	cfg.DataNodes = 1
	cfg.Replication = 1
	fs := New(cfg)
	if err := fs.WriteFile("x.bin", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	fl := wrapFlaky(fs)
	fl.corrupt[0] = true
	_, err := fs.ReadFile("x.bin")
	if !errors.Is(err, ErrBlockCorrupt) {
		t.Fatalf("err = %v, want wrapped ErrBlockCorrupt", err)
	}
}

func TestReadRepairFixesCorruptReplica(t *testing.T) {
	cfg := fastRetry
	cfg.BlockSize = 1 << 20
	cfg.DataNodes = 2
	cfg.Replication = 2
	cfg.ReadRepair = true
	fs := New(cfg)
	want := []byte("read-repair payload")
	if err := fs.WriteFile("r.bin", want); err != nil {
		t.Fatal(err)
	}

	// Corrupt node 0's copy in place, then clear the fault: the repair
	// writes through to the inner store.
	mem := fs.store.(*memStore)
	var blockID uint64
	for id, data := range mem.nodes[0] {
		blockID = id
		data[0] ^= 0xff
	}

	got, err := fs.ReadFile("r.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("content mismatch")
	}
	if u := fs.Usage(); u.BlocksRepaired != 1 {
		t.Errorf("BlocksRepaired = %d, want 1", u.BlocksRepaired)
	}
	fixed, err := mem.Get(0, blockID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fixed, want) {
		t.Error("read-repair did not rewrite the corrupt replica")
	}
}

func TestReadFileCtxCancelled(t *testing.T) {
	cfg := Config{DataNodes: 2, Replication: 1, MaxRetries: 100, RetryBase: time.Hour}
	fs := New(cfg)
	if err := fs.WriteFile("slow.bin", []byte("data")); err != nil {
		t.Fatal(err)
	}
	fl := wrapFlaky(fs)
	fl.down[0] = true
	fl.down[1] = true

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := fs.ReadFileCtx(ctx, "slow.bin")
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled read did not return (stuck in retry backoff)")
	}
}

// TestOnDiskCorruptionAndTruncation covers the on-disk satellite: a
// truncated replica and a bit-flipped replica are both caught by the
// checksum and served from the healthy copy.
func TestOnDiskCorruptionAndTruncation(t *testing.T) {
	dir := t.TempDir()
	cfg := fastRetry
	cfg.BlockSize = 256
	cfg.DataNodes = 2
	cfg.Replication = 2
	fs, err := NewOnDisk(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 2000)
	rand.New(rand.NewSource(3)).Read(want)
	if err := fs.WriteFile("part/level1.pcol", want); err != nil {
		t.Fatal(err)
	}

	locs, err := fs.BlockLocations("part/level1.pcol")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) < 2 {
		t.Fatalf("expected >=2 blocks, got %d", len(locs))
	}
	// Truncate the first replica of block 0.
	if err := os.Truncate(locs[0][0], 3); err != nil {
		t.Fatal(err)
	}
	// Bit-flip the first replica of block 1.
	data, err := os.ReadFile(locs[1][0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x01
	if err := os.WriteFile(locs[1][0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := fs.ReadFile("part/level1.pcol")
	if err != nil {
		t.Fatalf("read over corrupt replicas: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("content mismatch after on-disk corruption failover")
	}
	u := fs.Usage()
	var errs int64
	for _, e := range u.NodeReadErrors {
		errs += e
	}
	if errs < 2 {
		t.Errorf("NodeReadErrors sum = %d, want >= 2 (truncation + bit flip)", errs)
	}

	// With every replica of a block corrupted, the checksum must refuse
	// to serve the data rather than return garbage.
	for _, p := range locs[0] {
		if err := os.Truncate(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.ReadFile("part/level1.pcol"); !errors.Is(err, ErrNoHealthyReplica) {
		t.Fatalf("err = %v, want ErrNoHealthyReplica", err)
	}
}

// TestManifestPreservesChecksums ensures CRCs round-trip through the
// manifest so reopened stores still verify reads.
func TestManifestPreservesChecksums(t *testing.T) {
	dir := t.TempDir()
	cfg := fastRetry
	cfg.BlockSize = 128
	cfg.DataNodes = 2
	cfg.Replication = 1
	fs, err := NewOnDisk(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 500)
	rand.New(rand.NewSource(4)).Read(want)
	if err := fs.WriteFile("a.bin", want); err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveManifest(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenOnDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	locs, err := re.BlockLocations("a.bin")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(locs[0][0])
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(locs[0][0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := re.ReadFile("a.bin"); !errors.Is(err, ErrBlockCorrupt) {
		t.Fatalf("reopened store err = %v, want wrapped ErrBlockCorrupt", err)
	}
}
